file(REMOVE_RECURSE
  "CMakeFiles/test_lorenzo.dir/test_lorenzo.cpp.o"
  "CMakeFiles/test_lorenzo.dir/test_lorenzo.cpp.o.d"
  "test_lorenzo"
  "test_lorenzo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lorenzo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
