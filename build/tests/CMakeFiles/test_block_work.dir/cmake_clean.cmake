file(REMOVE_RECURSE
  "CMakeFiles/test_block_work.dir/test_block_work.cpp.o"
  "CMakeFiles/test_block_work.dir/test_block_work.cpp.o.d"
  "test_block_work"
  "test_block_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
