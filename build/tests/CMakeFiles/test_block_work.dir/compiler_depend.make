# Empty compiler generated dependencies file for test_block_work.
# This may be replaced when dependencies are built.
