file(REMOVE_RECURSE
  "CMakeFiles/test_stream_codec.dir/test_stream_codec.cpp.o"
  "CMakeFiles/test_stream_codec.dir/test_stream_codec.cpp.o.d"
  "test_stream_codec"
  "test_stream_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
