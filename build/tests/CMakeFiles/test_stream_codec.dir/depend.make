# Empty dependencies file for test_stream_codec.
# This may be replaced when dependencies are built.
