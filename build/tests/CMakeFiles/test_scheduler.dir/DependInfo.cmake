
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/test_scheduler.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/test_scheduler.dir/test_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapping/CMakeFiles/ceresz_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ceresz_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/ceresz_io.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ceresz_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ceresz_data.dir/DependInfo.cmake"
  "/root/repo/build/src/huffman/CMakeFiles/ceresz_huffman.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ceresz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/wse/CMakeFiles/ceresz_wse.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ceresz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
