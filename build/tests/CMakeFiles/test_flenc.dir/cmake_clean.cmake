file(REMOVE_RECURSE
  "CMakeFiles/test_flenc.dir/test_flenc.cpp.o"
  "CMakeFiles/test_flenc.dir/test_flenc.cpp.o.d"
  "test_flenc"
  "test_flenc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flenc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
