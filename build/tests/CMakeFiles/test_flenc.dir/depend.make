# Empty dependencies file for test_flenc.
# This may be replaced when dependencies are built.
