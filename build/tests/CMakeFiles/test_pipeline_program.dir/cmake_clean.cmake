file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_program.dir/test_pipeline_program.cpp.o"
  "CMakeFiles/test_pipeline_program.dir/test_pipeline_program.cpp.o.d"
  "test_pipeline_program"
  "test_pipeline_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
