# Empty dependencies file for test_lorenzo2d.
# This may be replaced when dependencies are built.
