file(REMOVE_RECURSE
  "CMakeFiles/test_lorenzo2d.dir/test_lorenzo2d.cpp.o"
  "CMakeFiles/test_lorenzo2d.dir/test_lorenzo2d.cpp.o.d"
  "test_lorenzo2d"
  "test_lorenzo2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lorenzo2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
