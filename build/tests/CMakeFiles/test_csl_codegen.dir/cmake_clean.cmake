file(REMOVE_RECURSE
  "CMakeFiles/test_csl_codegen.dir/test_csl_codegen.cpp.o"
  "CMakeFiles/test_csl_codegen.dir/test_csl_codegen.cpp.o.d"
  "test_csl_codegen"
  "test_csl_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csl_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
