# Empty dependencies file for test_csl_codegen.
# This may be replaced when dependencies are built.
