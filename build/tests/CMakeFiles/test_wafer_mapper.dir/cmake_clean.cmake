file(REMOVE_RECURSE
  "CMakeFiles/test_wafer_mapper.dir/test_wafer_mapper.cpp.o"
  "CMakeFiles/test_wafer_mapper.dir/test_wafer_mapper.cpp.o.d"
  "test_wafer_mapper"
  "test_wafer_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wafer_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
