# Empty compiler generated dependencies file for test_wafer_mapper.
# This may be replaced when dependencies are built.
