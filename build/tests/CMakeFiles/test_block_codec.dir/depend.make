# Empty dependencies file for test_block_codec.
# This may be replaced when dependencies are built.
