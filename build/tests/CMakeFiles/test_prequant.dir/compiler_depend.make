# Empty compiler generated dependencies file for test_prequant.
# This may be replaced when dependencies are built.
