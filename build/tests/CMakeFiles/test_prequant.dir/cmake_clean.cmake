file(REMOVE_RECURSE
  "CMakeFiles/test_prequant.dir/test_prequant.cpp.o"
  "CMakeFiles/test_prequant.dir/test_prequant.cpp.o.d"
  "test_prequant"
  "test_prequant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prequant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
