# Empty dependencies file for test_wafer_params.
# This may be replaced when dependencies are built.
