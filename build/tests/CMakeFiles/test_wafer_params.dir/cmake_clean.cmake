file(REMOVE_RECURSE
  "CMakeFiles/test_wafer_params.dir/test_wafer_params.cpp.o"
  "CMakeFiles/test_wafer_params.dir/test_wafer_params.cpp.o.d"
  "test_wafer_params"
  "test_wafer_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wafer_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
