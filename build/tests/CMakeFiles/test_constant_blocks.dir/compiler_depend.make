# Empty compiler generated dependencies file for test_constant_blocks.
# This may be replaced when dependencies are built.
