file(REMOVE_RECURSE
  "CMakeFiles/test_constant_blocks.dir/test_constant_blocks.cpp.o"
  "CMakeFiles/test_constant_blocks.dir/test_constant_blocks.cpp.o.d"
  "test_constant_blocks"
  "test_constant_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_constant_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
