# Empty dependencies file for ceresz_cli.
# This may be replaced when dependencies are built.
