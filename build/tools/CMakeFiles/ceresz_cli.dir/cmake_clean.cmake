file(REMOVE_RECURSE
  "CMakeFiles/ceresz_cli.dir/ceresz_cli.cpp.o"
  "CMakeFiles/ceresz_cli.dir/ceresz_cli.cpp.o.d"
  "ceresz"
  "ceresz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceresz_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
