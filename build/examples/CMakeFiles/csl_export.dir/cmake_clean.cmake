file(REMOVE_RECURSE
  "CMakeFiles/csl_export.dir/csl_export.cpp.o"
  "CMakeFiles/csl_export.dir/csl_export.cpp.o.d"
  "csl_export"
  "csl_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csl_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
