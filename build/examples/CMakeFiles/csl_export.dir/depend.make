# Empty dependencies file for csl_export.
# This may be replaced when dependencies are built.
