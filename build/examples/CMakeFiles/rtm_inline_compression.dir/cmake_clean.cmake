file(REMOVE_RECURSE
  "CMakeFiles/rtm_inline_compression.dir/rtm_inline_compression.cpp.o"
  "CMakeFiles/rtm_inline_compression.dir/rtm_inline_compression.cpp.o.d"
  "rtm_inline_compression"
  "rtm_inline_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtm_inline_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
