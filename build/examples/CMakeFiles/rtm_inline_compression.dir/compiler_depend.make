# Empty compiler generated dependencies file for rtm_inline_compression.
# This may be replaced when dependencies are built.
