# Empty dependencies file for wse_pipeline_demo.
# This may be replaced when dependencies are built.
