file(REMOVE_RECURSE
  "CMakeFiles/wse_pipeline_demo.dir/wse_pipeline_demo.cpp.o"
  "CMakeFiles/wse_pipeline_demo.dir/wse_pipeline_demo.cpp.o.d"
  "wse_pipeline_demo"
  "wse_pipeline_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wse_pipeline_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
