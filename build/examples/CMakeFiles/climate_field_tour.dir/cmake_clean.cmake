file(REMOVE_RECURSE
  "CMakeFiles/climate_field_tour.dir/climate_field_tour.cpp.o"
  "CMakeFiles/climate_field_tour.dir/climate_field_tour.cpp.o.d"
  "climate_field_tour"
  "climate_field_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_field_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
