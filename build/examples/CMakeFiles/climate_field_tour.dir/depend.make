# Empty dependencies file for climate_field_tour.
# This may be replaced when dependencies are built.
