# Empty compiler generated dependencies file for bench_table5_compression_ratio.
# This may be replaced when dependencies are built.
