# Empty dependencies file for bench_fig13_pipeline_length.
# This may be replaced when dependencies are built.
