# Empty dependencies file for bench_ablation_header_width.
# This may be replaced when dependencies are built.
