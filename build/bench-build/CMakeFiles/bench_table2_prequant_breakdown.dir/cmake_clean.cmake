file(REMOVE_RECURSE
  "../bench/bench_table2_prequant_breakdown"
  "../bench/bench_table2_prequant_breakdown.pdb"
  "CMakeFiles/bench_table2_prequant_breakdown.dir/bench_table2_prequant_breakdown.cpp.o"
  "CMakeFiles/bench_table2_prequant_breakdown.dir/bench_table2_prequant_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_prequant_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
