# Empty dependencies file for bench_fig14_wse_size.
# This may be replaced when dependencies are built.
