file(REMOVE_RECURSE
  "../bench/bench_fig14_wse_size"
  "../bench/bench_fig14_wse_size.pdb"
  "CMakeFiles/bench_fig14_wse_size.dir/bench_fig14_wse_size.cpp.o"
  "CMakeFiles/bench_fig14_wse_size.dir/bench_fig14_wse_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_wse_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
