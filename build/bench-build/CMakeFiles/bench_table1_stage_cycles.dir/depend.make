# Empty dependencies file for bench_table1_stage_cycles.
# This may be replaced when dependencies are built.
