file(REMOVE_RECURSE
  "../bench/bench_table1_stage_cycles"
  "../bench/bench_table1_stage_cycles.pdb"
  "CMakeFiles/bench_table1_stage_cycles.dir/bench_table1_stage_cycles.cpp.o"
  "CMakeFiles/bench_table1_stage_cycles.dir/bench_table1_stage_cycles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_stage_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
