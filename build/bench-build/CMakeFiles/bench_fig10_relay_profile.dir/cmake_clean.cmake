file(REMOVE_RECURSE
  "../bench/bench_fig10_relay_profile"
  "../bench/bench_fig10_relay_profile.pdb"
  "CMakeFiles/bench_fig10_relay_profile.dir/bench_fig10_relay_profile.cpp.o"
  "CMakeFiles/bench_fig10_relay_profile.dir/bench_fig10_relay_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_relay_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
