# Empty compiler generated dependencies file for bench_fig10_relay_profile.
# This may be replaced when dependencies are built.
