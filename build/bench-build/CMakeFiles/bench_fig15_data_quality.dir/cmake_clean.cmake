file(REMOVE_RECURSE
  "../bench/bench_fig15_data_quality"
  "../bench/bench_fig15_data_quality.pdb"
  "CMakeFiles/bench_fig15_data_quality.dir/bench_fig15_data_quality.cpp.o"
  "CMakeFiles/bench_fig15_data_quality.dir/bench_fig15_data_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_data_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
