file(REMOVE_RECURSE
  "../bench/bench_rate_distortion"
  "../bench/bench_rate_distortion.pdb"
  "CMakeFiles/bench_rate_distortion.dir/bench_rate_distortion.cpp.o"
  "CMakeFiles/bench_rate_distortion.dir/bench_rate_distortion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rate_distortion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
