# Empty compiler generated dependencies file for bench_rate_distortion.
# This may be replaced when dependencies are built.
