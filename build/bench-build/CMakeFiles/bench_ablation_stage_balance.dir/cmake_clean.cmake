file(REMOVE_RECURSE
  "../bench/bench_ablation_stage_balance"
  "../bench/bench_ablation_stage_balance.pdb"
  "CMakeFiles/bench_ablation_stage_balance.dir/bench_ablation_stage_balance.cpp.o"
  "CMakeFiles/bench_ablation_stage_balance.dir/bench_ablation_stage_balance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stage_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
