file(REMOVE_RECURSE
  "../bench/bench_ablation_zero_blocks"
  "../bench/bench_ablation_zero_blocks.pdb"
  "CMakeFiles/bench_ablation_zero_blocks.dir/bench_ablation_zero_blocks.cpp.o"
  "CMakeFiles/bench_ablation_zero_blocks.dir/bench_ablation_zero_blocks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_zero_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
