# Empty dependencies file for bench_ablation_zero_blocks.
# This may be replaced when dependencies are built.
