file(REMOVE_RECURSE
  "../bench/bench_table3_flenc_breakdown"
  "../bench/bench_table3_flenc_breakdown.pdb"
  "CMakeFiles/bench_table3_flenc_breakdown.dir/bench_table3_flenc_breakdown.cpp.o"
  "CMakeFiles/bench_table3_flenc_breakdown.dir/bench_table3_flenc_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_flenc_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
