
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cusz.cpp" "src/baselines/CMakeFiles/ceresz_baselines.dir/cusz.cpp.o" "gcc" "src/baselines/CMakeFiles/ceresz_baselines.dir/cusz.cpp.o.d"
  "/root/repo/src/baselines/device_model.cpp" "src/baselines/CMakeFiles/ceresz_baselines.dir/device_model.cpp.o" "gcc" "src/baselines/CMakeFiles/ceresz_baselines.dir/device_model.cpp.o.d"
  "/root/repo/src/baselines/sz3.cpp" "src/baselines/CMakeFiles/ceresz_baselines.dir/sz3.cpp.o" "gcc" "src/baselines/CMakeFiles/ceresz_baselines.dir/sz3.cpp.o.d"
  "/root/repo/src/baselines/szp.cpp" "src/baselines/CMakeFiles/ceresz_baselines.dir/szp.cpp.o" "gcc" "src/baselines/CMakeFiles/ceresz_baselines.dir/szp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ceresz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/huffman/CMakeFiles/ceresz_huffman.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ceresz_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ceresz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
