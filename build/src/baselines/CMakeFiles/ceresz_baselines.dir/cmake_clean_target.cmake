file(REMOVE_RECURSE
  "libceresz_baselines.a"
)
