file(REMOVE_RECURSE
  "CMakeFiles/ceresz_baselines.dir/cusz.cpp.o"
  "CMakeFiles/ceresz_baselines.dir/cusz.cpp.o.d"
  "CMakeFiles/ceresz_baselines.dir/device_model.cpp.o"
  "CMakeFiles/ceresz_baselines.dir/device_model.cpp.o.d"
  "CMakeFiles/ceresz_baselines.dir/sz3.cpp.o"
  "CMakeFiles/ceresz_baselines.dir/sz3.cpp.o.d"
  "CMakeFiles/ceresz_baselines.dir/szp.cpp.o"
  "CMakeFiles/ceresz_baselines.dir/szp.cpp.o.d"
  "libceresz_baselines.a"
  "libceresz_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceresz_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
