# Empty dependencies file for ceresz_baselines.
# This may be replaced when dependencies are built.
