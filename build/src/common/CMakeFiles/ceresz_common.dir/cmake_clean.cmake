file(REMOVE_RECURSE
  "CMakeFiles/ceresz_common.dir/error.cpp.o"
  "CMakeFiles/ceresz_common.dir/error.cpp.o.d"
  "CMakeFiles/ceresz_common.dir/format.cpp.o"
  "CMakeFiles/ceresz_common.dir/format.cpp.o.d"
  "CMakeFiles/ceresz_common.dir/stats.cpp.o"
  "CMakeFiles/ceresz_common.dir/stats.cpp.o.d"
  "libceresz_common.a"
  "libceresz_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceresz_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
