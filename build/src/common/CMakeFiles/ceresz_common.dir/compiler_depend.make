# Empty compiler generated dependencies file for ceresz_common.
# This may be replaced when dependencies are built.
