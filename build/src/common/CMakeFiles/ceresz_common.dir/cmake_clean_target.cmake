file(REMOVE_RECURSE
  "libceresz_common.a"
)
