file(REMOVE_RECURSE
  "libceresz_data.a"
)
