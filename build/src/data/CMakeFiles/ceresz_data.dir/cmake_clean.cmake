file(REMOVE_RECURSE
  "CMakeFiles/ceresz_data.dir/generators.cpp.o"
  "CMakeFiles/ceresz_data.dir/generators.cpp.o.d"
  "libceresz_data.a"
  "libceresz_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceresz_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
