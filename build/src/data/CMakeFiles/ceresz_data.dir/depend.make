# Empty dependencies file for ceresz_data.
# This may be replaced when dependencies are built.
