
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/block_codec.cpp" "src/core/CMakeFiles/ceresz_core.dir/block_codec.cpp.o" "gcc" "src/core/CMakeFiles/ceresz_core.dir/block_codec.cpp.o.d"
  "/root/repo/src/core/costmodel.cpp" "src/core/CMakeFiles/ceresz_core.dir/costmodel.cpp.o" "gcc" "src/core/CMakeFiles/ceresz_core.dir/costmodel.cpp.o.d"
  "/root/repo/src/core/flenc.cpp" "src/core/CMakeFiles/ceresz_core.dir/flenc.cpp.o" "gcc" "src/core/CMakeFiles/ceresz_core.dir/flenc.cpp.o.d"
  "/root/repo/src/core/lorenzo.cpp" "src/core/CMakeFiles/ceresz_core.dir/lorenzo.cpp.o" "gcc" "src/core/CMakeFiles/ceresz_core.dir/lorenzo.cpp.o.d"
  "/root/repo/src/core/lorenzo2d.cpp" "src/core/CMakeFiles/ceresz_core.dir/lorenzo2d.cpp.o" "gcc" "src/core/CMakeFiles/ceresz_core.dir/lorenzo2d.cpp.o.d"
  "/root/repo/src/core/prequant.cpp" "src/core/CMakeFiles/ceresz_core.dir/prequant.cpp.o" "gcc" "src/core/CMakeFiles/ceresz_core.dir/prequant.cpp.o.d"
  "/root/repo/src/core/stage.cpp" "src/core/CMakeFiles/ceresz_core.dir/stage.cpp.o" "gcc" "src/core/CMakeFiles/ceresz_core.dir/stage.cpp.o.d"
  "/root/repo/src/core/stream_codec.cpp" "src/core/CMakeFiles/ceresz_core.dir/stream_codec.cpp.o" "gcc" "src/core/CMakeFiles/ceresz_core.dir/stream_codec.cpp.o.d"
  "/root/repo/src/core/tiled_codec.cpp" "src/core/CMakeFiles/ceresz_core.dir/tiled_codec.cpp.o" "gcc" "src/core/CMakeFiles/ceresz_core.dir/tiled_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ceresz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
