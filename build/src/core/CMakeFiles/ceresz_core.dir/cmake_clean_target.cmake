file(REMOVE_RECURSE
  "libceresz_core.a"
)
