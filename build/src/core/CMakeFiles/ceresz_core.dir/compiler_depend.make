# Empty compiler generated dependencies file for ceresz_core.
# This may be replaced when dependencies are built.
