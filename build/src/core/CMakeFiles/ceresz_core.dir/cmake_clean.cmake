file(REMOVE_RECURSE
  "CMakeFiles/ceresz_core.dir/block_codec.cpp.o"
  "CMakeFiles/ceresz_core.dir/block_codec.cpp.o.d"
  "CMakeFiles/ceresz_core.dir/costmodel.cpp.o"
  "CMakeFiles/ceresz_core.dir/costmodel.cpp.o.d"
  "CMakeFiles/ceresz_core.dir/flenc.cpp.o"
  "CMakeFiles/ceresz_core.dir/flenc.cpp.o.d"
  "CMakeFiles/ceresz_core.dir/lorenzo.cpp.o"
  "CMakeFiles/ceresz_core.dir/lorenzo.cpp.o.d"
  "CMakeFiles/ceresz_core.dir/lorenzo2d.cpp.o"
  "CMakeFiles/ceresz_core.dir/lorenzo2d.cpp.o.d"
  "CMakeFiles/ceresz_core.dir/prequant.cpp.o"
  "CMakeFiles/ceresz_core.dir/prequant.cpp.o.d"
  "CMakeFiles/ceresz_core.dir/stage.cpp.o"
  "CMakeFiles/ceresz_core.dir/stage.cpp.o.d"
  "CMakeFiles/ceresz_core.dir/stream_codec.cpp.o"
  "CMakeFiles/ceresz_core.dir/stream_codec.cpp.o.d"
  "CMakeFiles/ceresz_core.dir/tiled_codec.cpp.o"
  "CMakeFiles/ceresz_core.dir/tiled_codec.cpp.o.d"
  "libceresz_core.a"
  "libceresz_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceresz_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
