# Empty compiler generated dependencies file for ceresz_huffman.
# This may be replaced when dependencies are built.
