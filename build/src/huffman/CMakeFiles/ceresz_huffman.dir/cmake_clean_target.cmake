file(REMOVE_RECURSE
  "libceresz_huffman.a"
)
