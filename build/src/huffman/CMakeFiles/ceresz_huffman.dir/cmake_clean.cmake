file(REMOVE_RECURSE
  "CMakeFiles/ceresz_huffman.dir/huffman.cpp.o"
  "CMakeFiles/ceresz_huffman.dir/huffman.cpp.o.d"
  "libceresz_huffman.a"
  "libceresz_huffman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceresz_huffman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
