
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/archive.cpp" "src/io/CMakeFiles/ceresz_io.dir/archive.cpp.o" "gcc" "src/io/CMakeFiles/ceresz_io.dir/archive.cpp.o.d"
  "/root/repo/src/io/file_io.cpp" "src/io/CMakeFiles/ceresz_io.dir/file_io.cpp.o" "gcc" "src/io/CMakeFiles/ceresz_io.dir/file_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ceresz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ceresz_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ceresz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
