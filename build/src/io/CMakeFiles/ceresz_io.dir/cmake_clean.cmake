file(REMOVE_RECURSE
  "CMakeFiles/ceresz_io.dir/archive.cpp.o"
  "CMakeFiles/ceresz_io.dir/archive.cpp.o.d"
  "CMakeFiles/ceresz_io.dir/file_io.cpp.o"
  "CMakeFiles/ceresz_io.dir/file_io.cpp.o.d"
  "libceresz_io.a"
  "libceresz_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceresz_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
