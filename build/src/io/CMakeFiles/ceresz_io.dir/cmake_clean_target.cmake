file(REMOVE_RECURSE
  "libceresz_io.a"
)
