# Empty dependencies file for ceresz_io.
# This may be replaced when dependencies are built.
