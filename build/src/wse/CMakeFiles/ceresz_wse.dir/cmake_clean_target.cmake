file(REMOVE_RECURSE
  "libceresz_wse.a"
)
