file(REMOVE_RECURSE
  "CMakeFiles/ceresz_wse.dir/fabric.cpp.o"
  "CMakeFiles/ceresz_wse.dir/fabric.cpp.o.d"
  "libceresz_wse.a"
  "libceresz_wse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceresz_wse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
