# Empty dependencies file for ceresz_wse.
# This may be replaced when dependencies are built.
