file(REMOVE_RECURSE
  "libceresz_mapping.a"
)
