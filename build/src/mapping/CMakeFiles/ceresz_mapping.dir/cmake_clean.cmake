file(REMOVE_RECURSE
  "CMakeFiles/ceresz_mapping.dir/block_work.cpp.o"
  "CMakeFiles/ceresz_mapping.dir/block_work.cpp.o.d"
  "CMakeFiles/ceresz_mapping.dir/csl_codegen.cpp.o"
  "CMakeFiles/ceresz_mapping.dir/csl_codegen.cpp.o.d"
  "CMakeFiles/ceresz_mapping.dir/perf_model.cpp.o"
  "CMakeFiles/ceresz_mapping.dir/perf_model.cpp.o.d"
  "CMakeFiles/ceresz_mapping.dir/pipeline_program.cpp.o"
  "CMakeFiles/ceresz_mapping.dir/pipeline_program.cpp.o.d"
  "CMakeFiles/ceresz_mapping.dir/profile.cpp.o"
  "CMakeFiles/ceresz_mapping.dir/profile.cpp.o.d"
  "CMakeFiles/ceresz_mapping.dir/report.cpp.o"
  "CMakeFiles/ceresz_mapping.dir/report.cpp.o.d"
  "CMakeFiles/ceresz_mapping.dir/scheduler.cpp.o"
  "CMakeFiles/ceresz_mapping.dir/scheduler.cpp.o.d"
  "CMakeFiles/ceresz_mapping.dir/wafer_mapper.cpp.o"
  "CMakeFiles/ceresz_mapping.dir/wafer_mapper.cpp.o.d"
  "libceresz_mapping.a"
  "libceresz_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceresz_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
