# Empty compiler generated dependencies file for ceresz_mapping.
# This may be replaced when dependencies are built.
