
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/block_work.cpp" "src/mapping/CMakeFiles/ceresz_mapping.dir/block_work.cpp.o" "gcc" "src/mapping/CMakeFiles/ceresz_mapping.dir/block_work.cpp.o.d"
  "/root/repo/src/mapping/csl_codegen.cpp" "src/mapping/CMakeFiles/ceresz_mapping.dir/csl_codegen.cpp.o" "gcc" "src/mapping/CMakeFiles/ceresz_mapping.dir/csl_codegen.cpp.o.d"
  "/root/repo/src/mapping/perf_model.cpp" "src/mapping/CMakeFiles/ceresz_mapping.dir/perf_model.cpp.o" "gcc" "src/mapping/CMakeFiles/ceresz_mapping.dir/perf_model.cpp.o.d"
  "/root/repo/src/mapping/pipeline_program.cpp" "src/mapping/CMakeFiles/ceresz_mapping.dir/pipeline_program.cpp.o" "gcc" "src/mapping/CMakeFiles/ceresz_mapping.dir/pipeline_program.cpp.o.d"
  "/root/repo/src/mapping/profile.cpp" "src/mapping/CMakeFiles/ceresz_mapping.dir/profile.cpp.o" "gcc" "src/mapping/CMakeFiles/ceresz_mapping.dir/profile.cpp.o.d"
  "/root/repo/src/mapping/report.cpp" "src/mapping/CMakeFiles/ceresz_mapping.dir/report.cpp.o" "gcc" "src/mapping/CMakeFiles/ceresz_mapping.dir/report.cpp.o.d"
  "/root/repo/src/mapping/scheduler.cpp" "src/mapping/CMakeFiles/ceresz_mapping.dir/scheduler.cpp.o" "gcc" "src/mapping/CMakeFiles/ceresz_mapping.dir/scheduler.cpp.o.d"
  "/root/repo/src/mapping/wafer_mapper.cpp" "src/mapping/CMakeFiles/ceresz_mapping.dir/wafer_mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/ceresz_mapping.dir/wafer_mapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ceresz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/wse/CMakeFiles/ceresz_wse.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ceresz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
