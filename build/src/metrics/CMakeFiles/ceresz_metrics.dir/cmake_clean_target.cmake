file(REMOVE_RECURSE
  "libceresz_metrics.a"
)
