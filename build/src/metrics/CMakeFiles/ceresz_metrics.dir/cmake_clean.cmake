file(REMOVE_RECURSE
  "CMakeFiles/ceresz_metrics.dir/quality.cpp.o"
  "CMakeFiles/ceresz_metrics.dir/quality.cpp.o.d"
  "libceresz_metrics.a"
  "libceresz_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceresz_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
