# Empty compiler generated dependencies file for ceresz_metrics.
# This may be replaced when dependencies are built.
