// Trace-analytics tests: Chrome-trace round trips, span-tree nesting,
// per-PE occupancy attribution (fractions must partition the makespan),
// pipeline bottleneck extraction against the scheduler's ground truth,
// cost-model validation residuals (Formulas 2-4) on a fault-free run,
// relay-span/counter agreement under degraded placement, the P-squared
// streaming quantile digests, and the perf-regression gate semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/costmodel.h"
#include "core/stage.h"
#include "mapping/wafer_mapper.h"
#include "obs/analysis/digest.h"
#include "obs/analysis/model_check.h"
#include "obs/analysis/perfgate.h"
#include "obs/analysis/report.h"
#include "obs/analysis/trace_analysis.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"
#include "wse/fabric.h"

namespace ceresz {
namespace {

namespace oa = obs::analysis;

// ---------------------------------------------------------------------------
// Span trees.

oa::Span make_span(const char* name, u64 ts, u64 dur, u32 tid = 1) {
  oa::Span s;
  s.name = name;
  s.cat = "test";
  s.pid = obs::kHostPid;
  s.tid = tid;
  s.ts_ns = ts;
  s.dur_ns = dur;
  return s;
}

TEST(SpanTree, NestsByContainmentAndAccountsSelfTime) {
  const std::vector<oa::Span> spans = {
      make_span("outer", 0, 100),
      make_span("child", 10, 30),
      make_span("grandchild", 15, 5),
      make_span("sibling", 50, 30),
  };
  std::vector<const oa::Span*> ptrs;
  for (const auto& s : spans) ptrs.push_back(&s);

  const std::vector<oa::SpanNode> roots = oa::build_span_tree(ptrs);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].span->name, "outer");
  // outer loses [10,40) and [50,80) to children: 100 - 30 - 30.
  EXPECT_EQ(roots[0].self_ns, 40u);
  ASSERT_EQ(roots[0].children.size(), 2u);
  EXPECT_EQ(roots[0].children[0].span->name, "child");
  EXPECT_EQ(roots[0].children[0].self_ns, 25u);  // 30 - grandchild's 5
  ASSERT_EQ(roots[0].children[0].children.size(), 1u);
  EXPECT_EQ(roots[0].children[0].children[0].span->name, "grandchild");
  EXPECT_EQ(roots[0].children[0].children[0].self_ns, 5u);
  EXPECT_EQ(roots[0].children[1].span->name, "sibling");
  EXPECT_EQ(roots[0].children[1].self_ns, 30u);
}

TEST(SpanTree, DisjointSpansStaySiblingRoots) {
  const std::vector<oa::Span> spans = {
      make_span("b", 200, 50),
      make_span("a", 0, 100),
  };
  std::vector<const oa::Span*> ptrs = {&spans[0], &spans[1]};
  const auto roots = oa::build_span_tree(ptrs);
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(roots[0].span->name, "a");  // ordering normalized by ts
  EXPECT_EQ(roots[1].span->name, "b");
}

// ---------------------------------------------------------------------------
// Thread-name parsing (the mapper's stage-attribution channel).

TEST(PeThreadName, ParsesEnrichedName) {
  const auto pe = oa::parse_pe_thread_name(
      "pe[2,7] pipe=3 stage=1 stages=Lorenzo:100.5+Sign:20.0");
  ASSERT_TRUE(pe.has_value());
  EXPECT_EQ(pe->row, 2u);
  EXPECT_EQ(pe->col, 7u);
  EXPECT_EQ(pe->pipe, 3);
  EXPECT_EQ(pe->stage_pos, 1);
  ASSERT_EQ(pe->stages.size(), 2u);
  EXPECT_EQ(pe->stages[0].name, "Lorenzo");
  EXPECT_DOUBLE_EQ(pe->stages[0].cycles, 100.5);
  EXPECT_EQ(pe->stages[1].name, "Sign");
  EXPECT_DOUBLE_EQ(pe->stages[1].cycles, 20.0);
}

TEST(PeThreadName, PlainFabricNameHasNoSchedulePosition) {
  const auto pe = oa::parse_pe_thread_name("pe[0,15]");
  ASSERT_TRUE(pe.has_value());
  EXPECT_EQ(pe->row, 0u);
  EXPECT_EQ(pe->col, 15u);
  EXPECT_EQ(pe->pipe, -1);
  EXPECT_EQ(pe->stage_pos, -1);
  EXPECT_TRUE(pe->stages.empty());
}

TEST(PeThreadName, NonPeNamesAreRejected) {
  EXPECT_FALSE(oa::parse_pe_thread_name("worker-3").has_value());
  EXPECT_FALSE(oa::parse_pe_thread_name("").has_value());
  EXPECT_FALSE(oa::parse_pe_thread_name("pe[").has_value());
}

// ---------------------------------------------------------------------------
// Chrome trace round trip.

TEST(ChromeTrace, RoundTripsSpansNamesAndDrops) {
  obs::Tracer tracer;
  tracer.set_process_name(obs::kFabricPid, "wse-fabric");
  tracer.set_thread_name(obs::kFabricPid, 3, "pe[0,2]");
  obs::TraceEvent ev;
  ev.name = "task";
  ev.cat = "fabric";
  ev.pid = obs::kFabricPid;
  ev.tid = 3;
  ev.ts_ns = 2500;
  ev.dur_ns = 1500;
  ev.arg1_name = "color";
  ev.arg1 = 7;
  tracer.record(ev);
  tracer.instant("tick", "fabric");

  const oa::TraceData trace =
      oa::load_chrome_trace(tracer.chrome_trace_json());
  EXPECT_EQ(trace.dropped_events, 0u);
  ASSERT_EQ(trace.spans.size(), 1u);
  const oa::Span& s = trace.spans[0];
  EXPECT_EQ(s.name, "task");
  EXPECT_EQ(s.cat, "fabric");
  EXPECT_EQ(s.pid, obs::kFabricPid);
  EXPECT_EQ(s.tid, 3u);
  EXPECT_EQ(s.ts_ns, 2500u);
  EXPECT_EQ(s.dur_ns, 1500u);
  EXPECT_EQ(s.arg_or("color", -1), 7);
  EXPECT_EQ(trace.instants.size(), 1u);
  ASSERT_NE(trace.thread_name(obs::kFabricPid, 3), nullptr);
  EXPECT_EQ(*trace.thread_name(obs::kFabricPid, 3), "pe[0,2]");
  EXPECT_EQ(trace.process_names.at(obs::kFabricPid), "wse-fabric");

  // from_tracer is the same parse applied to the live tracer.
  const oa::TraceData live = oa::from_tracer(tracer);
  EXPECT_EQ(live.spans.size(), trace.spans.size());
}

TEST(ChromeTrace, MalformedInputThrows) {
  EXPECT_THROW(oa::load_chrome_trace("not json"), Error);
  EXPECT_THROW(oa::load_chrome_trace("{\"traceEvents\": 5}"), Error);
}

TEST(MetricsJson, SnapshotRoundTripsThroughJson) {
  obs::MetricsRegistry reg;
  reg.counter("c_total").add(17);
  reg.gauge("g_value").set(-3.25);
  obs::Histogram& h = reg.histogram("h_seconds", {1.0, 2.0});
  h.observe(0.5);
  h.observe(99.0);  // overflow bucket

  const obs::MetricsSnapshot back =
      oa::snapshot_from_json(obs::to_json(reg.snapshot()));
  EXPECT_EQ(back.counter_value("c_total"), 17u);
  EXPECT_DOUBLE_EQ(back.gauge_value("g_value"), -3.25);
  ASSERT_EQ(back.histograms.size(), 1u);
  EXPECT_EQ(back.histograms[0].count, 2u);
  ASSERT_EQ(back.histograms[0].bounds.size(), 2u);
  ASSERT_EQ(back.histograms[0].counts.size(), 3u);
  EXPECT_EQ(back.histograms[0].counts[0], 1u);
  EXPECT_EQ(back.histograms[0].counts[2], 1u);

  EXPECT_THROW(oa::snapshot_from_json("[]"), Error);
}

// ---------------------------------------------------------------------------
// End-to-end fabric analytics on an instrumented wafer run.

/// The label the mapper publishes for each compression sub-stage family
/// (the public naming contract of the enriched thread names).
const char* expected_label(core::SubStageKind kind) {
  switch (kind) {
    case core::SubStageKind::kPrequantMul: return "Multiplication";
    case core::SubStageKind::kPrequantAdd: return "Addition";
    case core::SubStageKind::kLorenzo: return "Lorenzo";
    case core::SubStageKind::kSign: return "Sign";
    case core::SubStageKind::kMax: return "Max";
    case core::SubStageKind::kGetLength: return "GetLength";
    case core::SubStageKind::kShuffleBit: return "Bitshuffle";
    default: return "?";
  }
}

/// The longest consecutive same-label run inside the plan's bottleneck
/// group — what the report must name as the bottleneck sub-stage.
std::string plan_bottleneck_substage(const mapping::PipelinePlan& plan,
                                     const core::PeCostModel& cost) {
  const auto it = std::max_element(
      plan.groups.begin(), plan.groups.end(),
      [](const auto& a, const auto& b) { return a.cycles < b.cycles; });
  std::string best_label;
  f64 best_cycles = -1.0;
  std::string cur_label;
  f64 cur_cycles = 0.0;
  auto flush = [&] {
    if (!cur_label.empty() && cur_cycles > best_cycles) {
      best_cycles = cur_cycles;
      best_label = cur_label;
    }
  };
  for (const core::SubStage& s : it->stages) {
    const std::string label = expected_label(s.kind);
    if (label != cur_label) {
      flush();
      cur_label = label;
      cur_cycles = 0.0;
    }
    cur_cycles += static_cast<f64>(cost.substage_cycles(s, 32));
  }
  flush();
  return best_label;
}

struct InstrumentedFixture {
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  mapping::WaferRunResult result;

  explicit InstrumentedFixture(u32 cols, u32 pl,
                               wse::FaultPlan faults = {}) {
    mapping::MapperOptions opt;
    opt.rows = 1;
    opt.cols = cols;
    opt.pipeline_length = pl;
    opt.max_exact_rows = 1;
    opt.collect_output = false;
    opt.fault_plan = faults;
    opt.tracer = &tracer;
    opt.metrics = &registry;
    const mapping::WaferMapper mapper(opt);
    const auto data = test::smooth_signal(32 * 64);  // 64 blocks
    result = mapper.compress(data, core::ErrorBound::absolute(1e-3));
  }
};

TEST(FabricOccupancy, FractionsPartitionTheMakespan) {
  InstrumentedFixture fx(/*cols=*/8, /*pl=*/2);
  const oa::FabricOccupancy occ =
      oa::fabric_occupancy(oa::from_tracer(fx.tracer));

  EXPECT_EQ(occ.makespan_ns,
            fx.result.makespan * oa::kTraceNsPerCycle);
  ASSERT_EQ(occ.pes.size(), 8u);
  for (std::size_t i = 0; i < occ.pes.size(); ++i) {
    const oa::PeOccupancy& pe = occ.pes[i];
    EXPECT_EQ(pe.pe.row, 0u);
    EXPECT_EQ(pe.pe.col, static_cast<u32>(i));  // (row, col) ordered
    // The four categories partition the PE's occupied time.
    for (f64 f : {pe.compute_frac, pe.relay_frac, pe.recv_frac,
                  pe.send_frac}) {
      EXPECT_GE(f, 0.0);
    }
    const f64 sum =
        pe.compute_frac + pe.relay_frac + pe.recv_frac + pe.send_frac;
    EXPECT_NEAR(pe.busy_frac, sum, 1e-12);
    EXPECT_LE(pe.busy_frac, 1.0 + 1e-12) << "pe[" << pe.pe.row << ","
                                         << pe.pe.col << "]";
    // Mapper-enriched schedule position: col = pipe * PL + stage.
    ASSERT_GE(pe.pe.pipe, 0);
    ASSERT_GE(pe.pe.stage_pos, 0);
    EXPECT_EQ(static_cast<u32>(pe.pe.pipe) * 2 +
                  static_cast<u32>(pe.pe.stage_pos),
              pe.pe.col);
    EXPECT_FALSE(pe.pe.stages.empty());
    EXPECT_GT(pe.compute_tasks, 0u);  // every PE computed blocks
  }
  ASSERT_NE(occ.find(0, 3), nullptr);
  EXPECT_EQ(occ.find(0, 3)->pe.col, 3u);
  EXPECT_EQ(occ.find(5, 0), nullptr);

  // Head 0 ingests one kept block per round: 64 blocks / 4 pipelines.
  EXPECT_EQ(occ.find(0, 0)->recv_ops, 16u);
  // Heads relay traffic for the eastern pipelines; the last head none.
  EXPECT_GT(occ.find(0, 0)->relay_ops, 0u);
}

TEST(PipelineBottlenecks, NamesTheSchedulersLongestSubStage) {
  InstrumentedFixture fx(/*cols=*/8, /*pl=*/2);
  const oa::FabricOccupancy occ =
      oa::fabric_occupancy(oa::from_tracer(fx.tracer));
  const auto bottlenecks = oa::pipeline_bottlenecks(occ);
  ASSERT_EQ(bottlenecks.size(), 4u);  // one per pipeline

  // Ground truth from the scheduler's own plan (for this noisy signal the
  // shuffle planes dominate; for Fig. 10's QMCPack data it would be
  // Multiplication — the report must track the plan either way).
  const std::string expected =
      plan_bottleneck_substage(fx.result.plan, core::PeCostModel{});
  EXPECT_FALSE(expected.empty());
  for (const auto& b : bottlenecks) {
    EXPECT_EQ(b.row, 0u);
    EXPECT_EQ(b.bottleneck_substage, expected);
    EXPECT_EQ(b.col, b.pipe * 2 + b.stage_pos);
    EXPECT_GT(b.compute_frac, 0.0);
    EXPECT_GT(b.cycles_per_block, 0.0);
    EXPECT_GT(b.substage_cycles, 0.0);
    EXPECT_NE(b.stage_group.find(expected), std::string::npos);
  }
}

TEST(ModelValidation, FaultFreeResidualsAreSmall) {
  InstrumentedFixture fx(/*cols=*/8, /*pl=*/2);
  const oa::FabricOccupancy occ =
      oa::fabric_occupancy(oa::from_tracer(fx.tracer));
  const oa::ModelValidation mv =
      oa::validate_model(occ, fx.registry.snapshot());

  ASSERT_TRUE(mv.available) << mv.unavailable_reason;
  EXPECT_EQ(mv.rounds_measured, 16u);
  ASSERT_GE(mv.terms.size(), 3u);
  bool saw_relay = false, saw_compute = false, saw_total = false;
  for (const oa::TermCheck& t : mv.terms) {
    EXPECT_GT(t.predicted, 0.0) << t.name;
    EXPECT_GT(t.measured, 0.0) << t.name;
    if (t.name == "total_cycles") {
      // Formula 4 is a steady-state estimate; pipeline fill/drain makes
      // it a lower bound, so only sanity-bound it here.
      saw_total = true;
      EXPECT_GT(t.residual, -0.05) << "model must not over-predict much";
      EXPECT_LT(t.residual, 1.0);
      continue;
    }
    // Formula 2/3 terms: within 10% on a fault-free run (the paper's
    // model-accuracy claim, Section 4.3).
    EXPECT_LT(std::abs(t.residual), 0.10)
        << t.name << ": predicted " << t.predicted << " measured "
        << t.measured;
    saw_relay = saw_relay || t.name == "relay_per_round";
    saw_compute = saw_compute || t.name == "compute_per_block";
  }
  EXPECT_TRUE(saw_relay);
  EXPECT_TRUE(saw_compute);
  EXPECT_TRUE(saw_total);
}

TEST(ModelValidation, UnavailableWithoutPredictions) {
  // A trace without the mapper's predicted gauges (raw fabric user).
  InstrumentedFixture fx(/*cols=*/8, /*pl=*/2);
  const oa::FabricOccupancy occ =
      oa::fabric_occupancy(oa::from_tracer(fx.tracer));
  const obs::MetricsRegistry empty;
  const oa::ModelValidation mv = oa::validate_model(occ, empty.snapshot());
  EXPECT_FALSE(mv.available);
  EXPECT_FALSE(mv.unavailable_reason.empty());
}

// Degraded placement: relay spans and fabric counters must agree with
// the simulator's own RunStats when PEs are dead.
TEST(FabricOccupancy, DegradedRelaySpansAgreeWithCounters) {
  wse::FaultPlan faults;
  faults.kill_pe(0, 5);  // cols [0,5) usable -> 2 of 4 pipelines survive
  InstrumentedFixture fx(/*cols=*/8, /*pl=*/2, faults);
  ASSERT_TRUE(fx.result.degraded);
  EXPECT_EQ(fx.result.pipelines_lost, 2u);

  const oa::FabricOccupancy occ =
      oa::fabric_occupancy(oa::from_tracer(fx.tracer));
  // No spans on or east of the dead PE.
  EXPECT_EQ(occ.find(0, 5), nullptr);
  EXPECT_EQ(occ.find(0, 6), nullptr);

  u64 relay_spans = 0, recv_spans = 0;
  for (const oa::PeOccupancy& pe : occ.pes) {
    relay_spans += pe.relay_ops;
    recv_spans += pe.recv_ops;
  }
  EXPECT_GT(relay_spans, 0u);  // head 0 still relays for pipeline 1

  u64 relayed = 0, received = 0;
  for (const wse::PeStats& s : fx.result.row0_stats) {
    relayed += s.messages_relayed;
    received += s.messages_received;
  }
  EXPECT_EQ(relay_spans, relayed);
  EXPECT_EQ(recv_spans, received);

  // The exported fabric counters tell the same story (rows == 1, so the
  // mesh totals equal the row-0 totals).
  const obs::MetricsSnapshot snap = fx.registry.snapshot();
  EXPECT_EQ(snap.counter_value(wse::kMetricFabricRelayed), relayed);
  EXPECT_EQ(snap.counter_value(wse::kMetricFabricReceived), received);
}

// ---------------------------------------------------------------------------
// The assembled report.

TEST(Report, BuildsAndRendersBothFormats) {
  InstrumentedFixture fx(/*cols=*/8, /*pl=*/2);
  const oa::TraceData trace = oa::from_tracer(fx.tracer);
  const oa::Report report =
      oa::build_report(trace, fx.registry.snapshot());

  EXPECT_EQ(report.occupancy.pes.size(), 8u);
  EXPECT_EQ(report.bottlenecks.size(), 4u);
  EXPECT_TRUE(report.model.available);
  EXPECT_EQ(report.trace_dropped, 0u);

  const std::string text = oa::render_text(report);
  EXPECT_NE(text.find("Fabric occupancy"), std::string::npos);
  EXPECT_NE(text.find("Pipeline bottlenecks"), std::string::npos);
  EXPECT_NE(text.find("Formulas 2-4"), std::string::npos);
  EXPECT_NE(text.find("pe[0,0]"), std::string::npos);

  const std::string json = oa::render_json(report);
  EXPECT_NE(json.find("\"makespan_cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"occupancy\""), std::string::npos);
  EXPECT_NE(json.find("\"bottlenecks\""), std::string::npos);
  // The JSON report parses back with the same mini-parser the metrics
  // round trip uses (it is a JSON object of numbers/arrays).
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back() == '\n' ? json[json.size() - 2] : json.back(), '}');
}

// ---------------------------------------------------------------------------
// Streaming quantile digests (P-squared).

TEST(QuantileEstimator, ExactForFewObservations) {
  oa::QuantileEstimator q(0.5);
  EXPECT_TRUE(std::isnan(q.estimate()));
  q.observe(5.0);
  EXPECT_DOUBLE_EQ(q.estimate(), 5.0);
  q.observe(1.0);
  q.observe(3.0);
  EXPECT_DOUBLE_EQ(q.estimate(), 3.0);  // exact median of {1,3,5}
  EXPECT_EQ(q.count(), 3u);
}

TEST(QuantileEstimator, RejectsDegenerateProbability) {
  EXPECT_THROW(oa::QuantileEstimator(0.0), Error);
  EXPECT_THROW(oa::QuantileEstimator(1.0), Error);
}

TEST(QuantileEstimator, ConvergesOnUniformStream) {
  // Deterministic LCG; P-squared should land close to the true quantiles
  // of U[0,1) after 10k observations.
  oa::LatencyDigest digest;
  u64 x = 12345;
  for (int i = 0; i < 10000; ++i) {
    x = (6364136223846793005ull * x + 1442695040888963407ull);
    digest.observe(static_cast<f64>(x >> 11) /
                   static_cast<f64>(1ull << 53));
  }
  EXPECT_EQ(digest.count(), 10000u);
  EXPECT_NEAR(digest.p50(), 0.50, 0.03);
  EXPECT_NEAR(digest.p95(), 0.95, 0.02);
  EXPECT_NEAR(digest.p99(), 0.99, 0.01);
  EXPECT_NEAR(digest.mean(), 0.50, 0.02);
  EXPECT_GE(digest.min(), 0.0);
  EXPECT_LT(digest.max(), 1.0);
}

// ---------------------------------------------------------------------------
// Perf-regression gate.

oa::HistoryRecord record(const std::string& metric, f64 value,
                         const std::string& better = "higher",
                         f64 noise = 0.10) {
  oa::HistoryRecord r;
  r.bench = "bench";
  r.metric = metric;
  r.value = value;
  r.unit = "GB/s";
  r.better = better;
  r.noise = noise;
  return r;
}

TEST(PerfGate, HistoryRecordsRoundTripThroughJsonl) {
  const oa::HistoryRecord r = record("compress_gbps", 12.5, "higher", 0.25);
  const auto parsed = oa::parse_history_jsonl(r.to_jsonl() + "\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].bench, "bench");
  EXPECT_EQ(parsed[0].metric, "compress_gbps");
  EXPECT_DOUBLE_EQ(parsed[0].value, 12.5);
  EXPECT_EQ(parsed[0].unit, "GB/s");
  EXPECT_EQ(parsed[0].better, "higher");
  EXPECT_DOUBLE_EQ(parsed[0].noise, 0.25);

  EXPECT_THROW(oa::parse_history_jsonl("{\"bench\": \"b\"}"), Error);
  EXPECT_THROW(
      oa::parse_history_jsonl(
          "{\"bench\": \"b\", \"metric\": \"m\", \"value\": 1, "
          "\"better\": \"sideways\"}"),
      Error);
}

TEST(PerfGate, TwoTimesThroughputRegressionFails) {
  // The acceptance scenario: throughput halves -> 50% deviation, far
  // beyond the 10% band x 3 -> FAIL, and the tool's exit keys on it.
  const std::vector<oa::HistoryRecord> baseline = {
      record("compress_gbps", 10.0)};
  const std::vector<oa::HistoryRecord> current = {
      record("compress_gbps", 5.0)};
  const oa::GateReport report = oa::evaluate_gate(baseline, current);
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_EQ(report.results[0].status, oa::GateStatus::kFail);
  EXPECT_NEAR(report.results[0].deviation, 0.5, 1e-12);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_NE(oa::render_gate(report).find("RESULT: FAIL"),
            std::string::npos);
}

TEST(PerfGate, NoiseBandAndHardFactorSplitOkWarnFail) {
  const std::vector<oa::HistoryRecord> baseline = {
      record("in_band", 10.0), record("warn_band", 10.0),
      record("hard_fail", 10.0), record("improved", 10.0),
      record("gone", 10.0)};
  const std::vector<oa::HistoryRecord> current = {
      record("in_band", 9.5),    // -5% < 10% noise -> ok
      record("warn_band", 8.0),  // -20%: inside 10% x 3 -> warn
      record("hard_fail", 6.0),  // -40%: beyond 30% -> fail
      record("improved", 20.0),  // improvements never trip the gate
  };
  const oa::GateReport report = oa::evaluate_gate(baseline, current);
  ASSERT_EQ(report.results.size(), 5u);
  std::map<std::string, oa::GateStatus> by_metric;
  for (const auto& r : report.results) {
    by_metric[r.baseline.metric] = r.status;
  }
  EXPECT_EQ(by_metric["in_band"], oa::GateStatus::kOk);
  EXPECT_EQ(by_metric["warn_band"], oa::GateStatus::kWarn);
  EXPECT_EQ(by_metric["hard_fail"], oa::GateStatus::kFail);
  EXPECT_EQ(by_metric["improved"], oa::GateStatus::kOk);
  EXPECT_EQ(by_metric["gone"], oa::GateStatus::kMissing);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.missing, 1u);
}

TEST(PerfGate, LowerIsBetterMetricsInvertTheDirection) {
  const std::vector<oa::HistoryRecord> baseline = {
      record("makespan", 1000.0, "lower", 0.01)};
  // 2x slower on a lower-is-better metric: +100% deviation -> fail.
  const auto worse =
      oa::evaluate_gate(baseline, {record("makespan", 2000.0, "lower")});
  EXPECT_EQ(worse.results[0].status, oa::GateStatus::kFail);
  // 2x faster is an improvement -> ok.
  const auto faster =
      oa::evaluate_gate(baseline, {record("makespan", 500.0, "lower")});
  EXPECT_EQ(faster.results[0].status, oa::GateStatus::kOk);
}

}  // namespace
}  // namespace ceresz
