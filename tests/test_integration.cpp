// End-to-end integration: synthetic SDRBench datasets through the full
// pipeline — generation, wafer compression, wafer decompression, quality
// metrics, and cross-compressor comparisons mirroring Section 5.
#include <gtest/gtest.h>

#include "baselines/compressor.h"
#include "core/stream_codec.h"
#include "data/generators.h"
#include "mapping/perf_model.h"
#include "mapping/wafer_mapper.h"
#include "metrics/quality.h"
#include "test_util.h"

namespace ceresz {
namespace {

TEST(Integration, DatasetThroughWaferRoundTrip) {
  const data::Field field =
      data::generate_field(data::DatasetId::kHurricane, 0, 42, 0.2);
  mapping::MapperOptions opt;
  opt.rows = 2;
  opt.cols = 4;
  const mapping::WaferMapper mapper(opt);
  const auto comp =
      mapper.compress(field.view(), core::ErrorBound::relative(1e-3));
  const auto decomp = mapper.decompress(comp.stream);
  ASSERT_EQ(decomp.output.size(), field.size());
  EXPECT_LE(test::max_err(field.view(), decomp.output),
            comp.eps_abs + test::f32_ulp_slack(field.view()));

  const f64 q = metrics::psnr(field.view(), decomp.output);
  EXPECT_GT(q, 50.0);  // REL 1e-3 should be visually lossless
}

TEST(Integration, CereszAndCuszpIdenticalQuality) {
  // Section 5.4 / Fig. 15: same pre-quantization => same reconstruction,
  // PSNR, and SSIM; only the ratio differs (header width).
  const data::Field field =
      data::generate_field(data::DatasetId::kNyx, 1, 42, 0.35);  // velocity_x
  const core::ErrorBound bound = core::ErrorBound::relative(1e-4);

  const core::StreamCodec ceresz_codec;  // 4-byte headers
  const auto ceresz_result = ceresz_codec.compress(field.view(), bound);
  const auto ceresz_back = ceresz_codec.decompress(ceresz_result.stream);

  const auto cuszp = baselines::make_cuszp();
  baselines::BaselineStats cuszp_stats;
  const auto cuszp_stream = cuszp->compress(field, bound, &cuszp_stats);
  const auto cuszp_back = cuszp->decompress(cuszp_stream);

  // Bit-identical reconstructions.
  EXPECT_EQ(ceresz_back, cuszp_back);
  EXPECT_EQ(metrics::psnr(field.view(), ceresz_back),
            metrics::psnr(field.view(), cuszp_back));
  // CereSZ's 4-byte headers cost some ratio (Fig. 15: 3.10 vs 3.35).
  EXPECT_LE(ceresz_result.compression_ratio(),
            cuszp_stats.compression_ratio());
}

TEST(Integration, RatioOrderingAcrossCompressors) {
  // Table 5's qualitative ordering on a smooth 3-D field: SZ highest;
  // SZp/cuSZp above CereSZ (1-byte headers).
  const data::Field field =
      data::generate_field(data::DatasetId::kHurricane, 2, 42, 0.2);
  const core::ErrorBound bound = core::ErrorBound::relative(1e-3);

  const core::StreamCodec ceresz_codec;
  const f64 ceresz_ratio =
      ceresz_codec.compress(field.view(), bound).compression_ratio();

  baselines::BaselineStats sz, szp;
  baselines::make_sz3()->compress(field, bound, &sz);
  baselines::make_szp()->compress(field, bound, &szp);

  EXPECT_GT(sz.compression_ratio(), szp.compression_ratio());
  EXPECT_GT(szp.compression_ratio(), ceresz_ratio);
}

TEST(Integration, AllDatasetsSurviveWaferCompression) {
  for (data::DatasetId id : data::kAllDatasets) {
    const data::Field field = data::generate_field(id, 0, 42, 0.12);
    mapping::MapperOptions opt;
    opt.rows = 1;
    opt.cols = 4;
    const mapping::WaferMapper mapper(opt);
    const auto comp =
        mapper.compress(field.view(), core::ErrorBound::relative(1e-3));
    const auto decomp = mapper.decompress(comp.stream);
    EXPECT_LE(test::max_err(field.view(), decomp.output),
              comp.eps_abs + test::f32_ulp_slack(field.view()))
        << data::dataset_spec(id).name;
  }
}

TEST(Integration, SaturatedMeshThroughputMatchesScaledPaperRate) {
  // A saturated 32x32 mesh at PL = 1. The paper's 512x512 runs average
  // ~457 GB/s, i.e. ~1.7 MB/s per PE (relay-bound rows are slightly
  // cheaper per PE at 32 columns than 512, so the per-PE rate here is a
  // bit higher). Expect the 1024-PE mesh in the low GB/s.
  const data::Field field =
      data::generate_field(data::DatasetId::kQmcpack, 0, 42, 0.5);
  mapping::MapperOptions opt;
  opt.rows = 32;
  opt.cols = 32;
  opt.max_exact_rows = 1;
  opt.collect_output = false;
  const mapping::WaferMapper mapper(opt);
  const auto run =
      mapper.compress(field.view(), core::ErrorBound::relative(1e-3));
  EXPECT_TRUE(run.extrapolated);
  EXPECT_GT(run.throughput_gbps, 1.0);
  EXPECT_LT(run.throughput_gbps, 12.0);
}

TEST(Integration, FullWaferModelInPaperRange) {
  // Formulas 2-4 at the paper's 512x512 / PL = 1 configuration must land
  // in the reported 227.93-773.8 GB/s band.
  const data::Field field =
      data::generate_field(data::DatasetId::kQmcpack, 0, 42, 0.5);
  mapping::StageProfiler profiler(core::CodecConfig{}, core::PeCostModel{});
  const auto profile =
      profiler.profile(field.view(), core::ErrorBound::relative(1e-3));
  mapping::GreedyScheduler sched(core::PeCostModel{}, 32);
  const auto plan =
      sched.distribute(core::compression_substages(profile.est_fixed_length),
                       1);
  const mapping::PerfModel model(wse::WseConfig{});
  const auto pred = model.predict(plan, 512, 512, 1u << 20, 32, 128);
  EXPECT_GT(pred.throughput_gbps, 200.0);
  EXPECT_LT(pred.throughput_gbps, 900.0);
}

TEST(Integration, SsimNearOneAtTightBound) {
  const data::Field field =
      data::generate_field(data::DatasetId::kCesmAtm, 0, 42, 0.35);
  const core::StreamCodec codec;
  const auto r = codec.compress(field.view(), core::ErrorBound::relative(1e-4));
  const auto back = codec.decompress(r.stream);
  const f64 ssim = metrics::ssim_2d(field.view(), back, field.dims[1],
                                    field.dims[0]);
  EXPECT_GT(ssim, 0.999);
}

}  // namespace
}  // namespace ceresz
