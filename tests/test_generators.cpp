#include "data/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "core/stream_codec.h"

namespace ceresz::data {
namespace {

TEST(Catalog, HasAllSixDatasets) {
  const auto& catalog = dataset_catalog();
  ASSERT_EQ(catalog.size(), 6u);
  // Table 4 shapes.
  EXPECT_STREQ(dataset_spec(DatasetId::kCesmAtm).name, "CESM-ATM");
  EXPECT_EQ(dataset_spec(DatasetId::kCesmAtm).fields_full, 79u);
  EXPECT_EQ(dataset_spec(DatasetId::kNyx).dims_full,
            (std::vector<std::size_t>{512, 512, 512}));
  EXPECT_EQ(dataset_spec(DatasetId::kHacc).dims_full,
            (std::vector<std::size_t>{280953867}));
  EXPECT_EQ(dataset_spec(DatasetId::kQmcpack).fields_full, 2u);
}

TEST(Generators, Deterministic) {
  const Field a = generate_field(DatasetId::kNyx, 1, 42);
  const Field b = generate_field(DatasetId::kNyx, 1, 42);
  EXPECT_EQ(a.values, b.values);
  const Field c = generate_field(DatasetId::kNyx, 1, 43);
  EXPECT_NE(a.values, c.values);
}

TEST(Generators, FieldsDiffer) {
  const Field a = generate_field(DatasetId::kCesmAtm, 0);
  const Field b = generate_field(DatasetId::kCesmAtm, 1);
  EXPECT_NE(a.values, b.values);
  EXPECT_NE(a.name, b.name);
}

TEST(Generators, DimsMatchCatalog) {
  for (DatasetId id : kAllDatasets) {
    const Field f = generate_field(id, 0);
    EXPECT_EQ(f.dims, dataset_spec(id).dims_generated);
    EXPECT_EQ(f.values.size(), f.dim_product());
    EXPECT_FALSE(f.values.empty());
  }
}

TEST(Generators, ScaleShrinksFields) {
  const Field full = generate_field(DatasetId::kHurricane, 0, 42, 1.0);
  const Field half = generate_field(DatasetId::kHurricane, 0, 42, 0.5);
  EXPECT_LT(half.values.size(), full.values.size());
}

TEST(Generators, ValuesAreFinite) {
  for (DatasetId id : kAllDatasets) {
    const Field f = generate_field(id, 0, 7, 0.5);
    for (f32 v : f.values) {
      ASSERT_TRUE(std::isfinite(v)) << dataset_spec(id).name;
    }
  }
}

TEST(Generators, RtmIsSparse) {
  // The seismic wavefront leaves most of the volume exactly zero — the
  // mechanism behind RTM's near-cap ratios in Table 5.
  const Field f = generate_field(DatasetId::kRtm, 0);
  std::size_t zeros = 0;
  for (f32 v : f.values) zeros += v == 0.0f;
  EXPECT_GT(static_cast<f64>(zeros) / f.values.size(), 0.5);
}

TEST(Generators, HaccIsRough) {
  // HACC barely compresses (Table 5: 2.8-6.8x): neighboring elements are
  // weakly correlated, so CereSZ ratio stays low even at REL 1e-2.
  const Field f = generate_field(DatasetId::kHacc, 3);
  const core::StreamCodec codec;
  const auto r = codec.compress(f.view(), core::ErrorBound::relative(1e-2));
  EXPECT_LT(r.compression_ratio(), 12.0);
}

TEST(Generators, CesmIsSmooth) {
  const Field f = generate_field(DatasetId::kCesmAtm, 0);
  const core::StreamCodec codec;
  const auto r = codec.compress(f.view(), core::ErrorBound::relative(1e-2));
  EXPECT_GT(r.compression_ratio(), 4.0);
}

TEST(Generators, OutOfRangeFieldThrows) {
  EXPECT_THROW(generate_field(DatasetId::kQmcpack, 99), Error);
  EXPECT_THROW(generate_field(DatasetId::kNyx, 0, 42, -1.0), Error);
}

TEST(Generators, WholeDataset) {
  const auto fields = generate_dataset(DatasetId::kQmcpack, 42, 0.5);
  EXPECT_EQ(fields.size(), dataset_spec(DatasetId::kQmcpack).fields_generated);
}

// Property: every dataset compresses at every REL bound with the bound
// honored (ratio ordering loose->tight checked too).
class DatasetCompressProperty : public ::testing::TestWithParam<int> {};

TEST_P(DatasetCompressProperty, BoundsAndOrdering) {
  const DatasetId id = kAllDatasets[GetParam()];
  const Field f = generate_field(id, 0, 42, 0.35);
  const core::StreamCodec codec;
  f64 prev_ratio = 1e30;
  for (f64 rel : {1e-2, 1e-3, 1e-4}) {
    const auto r = codec.compress(f.view(), core::ErrorBound::relative(rel));
    const auto back = codec.decompress(r.stream);
    const f64 worst = max_abs_diff(f.view(), back);
    EXPECT_LE(worst, r.eps_abs * 1.001 + 1e-12) << dataset_spec(id).name;
    EXPECT_LE(r.compression_ratio(), prev_ratio * 1.001);
    prev_ratio = r.compression_ratio();
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetCompressProperty,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace ceresz::data
