#include "mapping/scheduler.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/costmodel.h"
#include "core/stage.h"

namespace ceresz::mapping {
namespace {

using core::PeCostModel;
using core::SubStage;
using core::SubStageKind;
using core::compression_substages;
using core::decompression_substages;

TEST(StageTable, CompressionSubStages) {
  const auto stages = compression_substages(17);
  // 6 fixed stages + 17 one-bit shuffles.
  ASSERT_EQ(stages.size(), 23u);
  EXPECT_EQ(stages[0].kind, SubStageKind::kPrequantMul);
  EXPECT_EQ(stages[1].kind, SubStageKind::kPrequantAdd);
  EXPECT_EQ(stages[2].kind, SubStageKind::kLorenzo);
  EXPECT_EQ(stages[5].kind, SubStageKind::kGetLength);
  EXPECT_EQ(stages[6].kind, SubStageKind::kShuffleBit);
  EXPECT_EQ(stages[6].bit_index, 0u);
  EXPECT_EQ(stages[22].bit_index, 16u);
}

TEST(StageTable, DecompressionSubStages) {
  const auto stages = decompression_substages(12);
  ASSERT_EQ(stages.size(), 14u);
  EXPECT_EQ(stages[0].kind, SubStageKind::kUnshuffleBit);
  EXPECT_EQ(stages[12].kind, SubStageKind::kPrefixSum);
  EXPECT_EQ(stages[13].kind, SubStageKind::kDequantMul);
}

TEST(CostModel, MatchesPaperTables) {
  // Table 1-3 calibration at block size 32, fl = 17 (CESM-ATM).
  const PeCostModel cost;
  const auto cyc = [&](SubStageKind k, u32 bit = 0) {
    return cost.substage_cycles(SubStage{k, bit}, 32);
  };
  EXPECT_NEAR(cyc(SubStageKind::kPrequantMul), 5074, 5);       // Table 2
  EXPECT_NEAR(cyc(SubStageKind::kPrequantAdd), 1040, 5);       // Table 2
  EXPECT_NEAR(cyc(SubStageKind::kLorenzo), 975, 2);            // Table 1
  EXPECT_NEAR(cyc(SubStageKind::kSign), 1044, 2);              // Table 3
  EXPECT_NEAR(cyc(SubStageKind::kMax), 1037, 2);               // Table 3
  EXPECT_NEAR(cyc(SubStageKind::kGetLength), 1380, 10);        // Table 3
  // Bit-shuffle at fl=17 should land near CESM-ATM's 33609 cycles.
  Cycles shuffle17 = 0;
  for (u32 k = 0; k < 17; ++k) shuffle17 += cyc(SubStageKind::kShuffleBit, k);
  EXPECT_NEAR(shuffle17, 33609, 150);
  // fl=13 ~ HACC's 25675; fl=12 ~ QMCPack's 23694.
  EXPECT_NEAR(13 * cyc(SubStageKind::kShuffleBit), 25675, 120);
  EXPECT_NEAR(12 * cyc(SubStageKind::kShuffleBit), 23694, 120);
}

TEST(CostModel, DecompressionCheaperThanCompression) {
  const PeCostModel cost;
  for (u32 fl : {4u, 8u, 12u, 17u, 24u}) {
    EXPECT_LT(cost.decompress_block_cycles(32, fl, false),
              cost.compress_block_cycles(32, fl, false))
        << "fl=" << fl;
  }
}

TEST(CostModel, ZeroBlockIsMuchCheaper) {
  const PeCostModel cost;
  EXPECT_LT(cost.compress_block_cycles(32, 0, true),
            cost.compress_block_cycles(32, 12, false) / 2);
}

TEST(GreedyScheduler, SingleGroupTakesEverything) {
  const GreedyScheduler sched(PeCostModel{}, 32);
  const auto stages = compression_substages(10);
  const PipelinePlan plan = sched.distribute(stages, 1);
  ASSERT_EQ(plan.length(), 1u);
  EXPECT_EQ(plan.groups[0].stages.size(), stages.size());
  EXPECT_EQ(plan.total_cycles(), plan.groups[0].cycles);
}

TEST(GreedyScheduler, PreservesOrderAndCoversAllStages) {
  const GreedyScheduler sched(PeCostModel{}, 32);
  const auto stages = compression_substages(17);
  for (u32 m : {2u, 3u, 4u, 5u, 8u}) {
    const PipelinePlan plan = sched.distribute(stages, m);
    ASSERT_EQ(plan.length(), m);
    std::size_t idx = 0;
    for (const auto& g : plan.groups) {
      EXPECT_FALSE(g.stages.empty());
      for (const auto& s : g.stages) {
        EXPECT_EQ(static_cast<int>(s.kind), static_cast<int>(stages[idx].kind));
        EXPECT_EQ(s.bit_index, stages[idx].bit_index);
        ++idx;
      }
    }
    EXPECT_EQ(idx, stages.size());
  }
}

TEST(GreedyScheduler, BalancesWithinOneStage) {
  // No group may exceed target + the largest single stage (greedy bound).
  const PeCostModel cost;
  const GreedyScheduler sched(cost, 32);
  const auto stages = compression_substages(17);
  Cycles t1 = 0;
  for (const auto& s : stages) {
    t1 = std::max(t1, cost.substage_cycles(s, 32));
  }
  for (u32 m : {2u, 3u, 4u}) {
    const PipelinePlan plan = sched.distribute(stages, m);
    const f64 target =
        static_cast<f64>(plan.total_cycles()) / static_cast<f64>(m);
    for (std::size_t g = 0; g + 1 < plan.groups.size(); ++g) {
      EXPECT_LE(plan.groups[g].cycles, static_cast<Cycles>(target) + t1);
    }
  }
}

TEST(GreedyScheduler, ClampsToStageCount) {
  const GreedyScheduler sched(PeCostModel{}, 32);
  std::vector<SubStage> three = {{SubStageKind::kPrequantMul},
                                 {SubStageKind::kPrequantAdd},
                                 {SubStageKind::kLorenzo}};
  const PipelinePlan plan = sched.distribute(three, 10);
  EXPECT_EQ(plan.length(), 3u);
}

TEST(GreedyScheduler, ClampsWhenRequestedLengthFarExceedsStageCount) {
  // m beyond the sub-stage count (the tenant coordinator can ask for
  // cols-many PEs on a short decompression table): one stage per group,
  // no empty groups, order preserved.
  const GreedyScheduler sched(PeCostModel{}, 32);
  const auto stages = decompression_substages(2);  // 4 sub-stages
  const PipelinePlan plan = sched.distribute(stages, 1000);
  ASSERT_EQ(plan.length(), stages.size());
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    ASSERT_EQ(plan.groups[g].stages.size(), 1u);
    EXPECT_EQ(static_cast<int>(plan.groups[g].stages[0].kind),
              static_cast<int>(stages[g].kind));
  }
}

TEST(GreedyScheduler, ZeroCycleSubStagesStillCoverEveryStage) {
  // A cost model that prices some sub-stages at zero (an accelerator
  // with free adds, or a fused kernel) must not starve any group or
  // drop a stage: the greedy fill is driven by position, not cost.
  PeCostModel cost;
  cost.add_per_elem = 0.0;
  cost.sign_per_elem = 0.0;
  cost.getlength_per_block = 0;
  const GreedyScheduler sched(cost, 32);
  const auto stages = compression_substages(4);
  for (u32 m : {2u, 3u, 5u}) {
    const PipelinePlan plan = sched.distribute(stages, m);
    ASSERT_EQ(plan.length(), m);
    std::size_t covered = 0;
    Cycles total = 0;
    for (const auto& g : plan.groups) {
      EXPECT_FALSE(g.stages.empty());
      covered += g.stages.size();
      total += g.cycles;
    }
    EXPECT_EQ(covered, stages.size());
    EXPECT_EQ(total, plan.total_cycles());
    EXPECT_GT(plan.bottleneck_cycles(), 0u);
  }
}

TEST(GreedyScheduler, AllZeroCostStagesMakeMaxFeasibleLengthThrow) {
  // An all-free stage table has no meaningful ⌊C/t1⌋ bound; the
  // scheduler refuses instead of dividing by zero.
  PeCostModel free_cost;
  free_cost.mul_per_elem = 0.0;
  free_cost.add_per_elem = 0.0;
  free_cost.lorenzo_per_elem = 0.0;
  free_cost.sign_per_elem = 0.0;
  free_cost.max_per_elem = 0.0;
  free_cost.getlength_per_block = 0;
  free_cost.shuffle_per_elem_bit = 0.0;
  const GreedyScheduler sched(free_cost, 32);
  EXPECT_THROW(sched.max_feasible_length(compression_substages(4)), Error);
  // distribute still works — every group just costs zero.
  const PipelinePlan plan = sched.distribute(compression_substages(4), 3);
  EXPECT_EQ(plan.length(), 3u);
  EXPECT_EQ(plan.total_cycles(), 0u);
}

TEST(GreedyScheduler, MaxFeasibleLengthIsTotalOverLongest) {
  const PeCostModel cost;
  const GreedyScheduler sched(cost, 32);
  const auto stages = compression_substages(17);
  Cycles total = 0, t1 = 0;
  for (const auto& s : stages) {
    const Cycles c = cost.substage_cycles(s, 32);
    total += c;
    t1 = std::max(t1, c);
  }
  EXPECT_EQ(sched.max_feasible_length(stages), total / t1);
  // Multiplication dominates: 5074 cycles vs ~44k total -> ~8.
  EXPECT_GE(sched.max_feasible_length(stages), 6u);
  EXPECT_LE(sched.max_feasible_length(stages), 10u);
}

TEST(GreedyScheduler, EmptyStagesThrow) {
  const GreedyScheduler sched(PeCostModel{}, 32);
  EXPECT_THROW(sched.distribute({}, 2), Error);
}

}  // namespace
}  // namespace ceresz::mapping
