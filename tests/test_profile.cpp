#include "mapping/profile.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/stream_codec.h"
#include "test_util.h"

namespace ceresz::mapping {
namespace {

StageProfiler default_profiler(f64 fraction = 0.05) {
  return StageProfiler(core::CodecConfig{}, core::PeCostModel{}, fraction);
}

TEST(StageProfiler, ResolvesRelativeBound) {
  const auto data = test::smooth_signal(32 * 128);
  const auto p = default_profiler().profile(
      data, core::ErrorBound::relative(1e-3));
  f32 lo = data[0], hi = data[0];
  for (f32 v : data) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_NEAR(p.eps_abs, (hi - lo) * 1e-3, 1e-9);
}

TEST(StageProfiler, EstimateTracksTrueFixedLength) {
  // With full sampling the estimate equals the stream's true maximum.
  const auto data = test::smooth_signal(32 * 200, 3);
  const core::ErrorBound bound = core::ErrorBound::absolute(1e-3);
  const auto p = default_profiler(1.0).profile(data, bound);

  const core::StreamCodec codec;
  const auto r = codec.compress(data, bound);
  EXPECT_EQ(p.est_fixed_length, r.stats.max_fixed_length);
}

TEST(StageProfiler, SampledEstimateIsReasonable) {
  const auto data = test::smooth_signal(32 * 1000, 5);
  const core::ErrorBound bound = core::ErrorBound::absolute(1e-3);
  const auto p = default_profiler(0.05).profile(data, bound);
  const core::StreamCodec codec;
  const auto r = codec.compress(data, bound);
  EXPECT_GE(p.est_fixed_length, 1u);
  EXPECT_LE(p.est_fixed_length, r.stats.max_fixed_length);
  EXPECT_GE(p.est_fixed_length + 3, r.stats.max_fixed_length);
}

TEST(StageProfiler, DetectsZeroBlocks) {
  const std::vector<f32> zeros(32 * 64, 0.0f);
  const auto p = default_profiler(1.0).profile(
      zeros, core::ErrorBound::absolute(1e-2));
  EXPECT_NEAR(p.zero_fraction, 1.0, 1e-12);
}

TEST(StageProfiler, TighterBoundRaisesCycleBudget) {
  const auto data = test::smooth_signal(32 * 256, 7);
  const auto loose = default_profiler(1.0).profile(
      data, core::ErrorBound::absolute(1e-2));
  const auto tight = default_profiler(1.0).profile(
      data, core::ErrorBound::absolute(1e-5));
  EXPECT_GT(tight.est_fixed_length, loose.est_fixed_length);
  EXPECT_GT(tight.compress_cycles, loose.compress_cycles);
  EXPECT_GT(tight.decompress_cycles, loose.decompress_cycles);
}

TEST(StageProfiler, TinyInputFallsBack) {
  const std::vector<f32> few = {1.0f, 2.0f};
  const auto p = default_profiler().profile(
      few, core::ErrorBound::absolute(1e-3));
  EXPECT_GT(p.est_fixed_length, 0u);
  EXPECT_GT(p.compress_cycles, 0u);
}

TEST(StageProfiler, InvalidFractionThrows) {
  const auto data = test::smooth_signal(64);
  EXPECT_THROW(default_profiler(0.0).profile(
                   data, core::ErrorBound::absolute(1e-3)),
               Error);
  EXPECT_THROW(default_profiler(1.5).profile(
                   data, core::ErrorBound::absolute(1e-3)),
               Error);
}

}  // namespace
}  // namespace ceresz::mapping
