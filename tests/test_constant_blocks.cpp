// The constant-block extension (cuSZx-inspired): blocks whose quantized
// values are all equal encode as a header marker plus one value.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/stream_codec.h"
#include "mapping/wafer_mapper.h"
#include "test_util.h"

namespace ceresz::core {
namespace {

CodecConfig with_constant(bool on = true) {
  CodecConfig cfg;
  cfg.constant_block_shortcut = on;
  return cfg;
}

TEST(ConstantBlocks, DetectedAndRoundTripped) {
  const BlockCodec codec(with_constant());
  const std::vector<f32> flat(32, 7.25f);
  std::vector<u8> stream;
  const BlockInfo info = codec.compress(flat, 1e-3, stream);
  EXPECT_TRUE(info.constant_block);
  EXPECT_FALSE(info.zero_block);
  EXPECT_EQ(stream.size(), codec.config().header_bytes + 4u);

  std::vector<f32> back(32);
  const std::size_t consumed = codec.decompress(stream, 1e-3, back);
  EXPECT_EQ(consumed, stream.size());
  for (f32 v : back) EXPECT_NEAR(v, 7.25f, 1e-3);
}

TEST(ConstantBlocks, ZeroBlockTakesPrecedence) {
  const BlockCodec codec(with_constant());
  const std::vector<f32> zeros(32, 0.0f);
  std::vector<u8> stream;
  const BlockInfo info = codec.compress(zeros, 1e-3, stream);
  EXPECT_TRUE(info.zero_block);
  EXPECT_FALSE(info.constant_block);
  EXPECT_EQ(stream.size(), codec.config().header_bytes);
}

TEST(ConstantBlocks, NearConstantWithinEpsAlsoDetected) {
  // Values within one quantization bin of each other collapse to the same
  // quantized value.
  const BlockCodec codec(with_constant());
  std::vector<f32> nearly(32, 5.0f);
  for (std::size_t i = 0; i < nearly.size(); ++i) {
    nearly[i] += static_cast<f32>((i % 2) ? 1e-4 : -1e-4);
  }
  std::vector<u8> stream;
  const BlockInfo info = codec.compress(nearly, 1e-2, stream);
  EXPECT_TRUE(info.constant_block);
}

TEST(ConstantBlocks, NonConstantUntouched) {
  const BlockCodec codec(with_constant());
  const auto data = test::smooth_signal(32);
  std::vector<u8> stream;
  const BlockInfo info = codec.compress(data, 1e-5, stream);
  EXPECT_FALSE(info.constant_block);

  // And identical bytes to the baseline codec without the extension.
  const BlockCodec plain(with_constant(false));
  std::vector<u8> plain_stream;
  plain.compress(data, 1e-5, plain_stream);
  EXPECT_EQ(stream, plain_stream);
}

TEST(ConstantBlocks, MarkerRejectedWhenDisabled) {
  // A stream using the marker must not decode under a codec configured
  // without the extension.
  const BlockCodec ext(with_constant());
  const std::vector<f32> flat(32, 3.0f);
  std::vector<u8> stream;
  ext.compress(flat, 1e-3, stream);

  const BlockCodec plain(with_constant(false));
  std::vector<f32> back(32);
  EXPECT_THROW(plain.decompress(stream, 1e-3, back), Error);
}

TEST(ConstantBlocks, ImprovesRatioOnPlateauData) {
  // Piecewise-constant data (e.g. masked or quantized sensor fields):
  // every block is constant but non-zero, where the paper format pays for
  // the full quantized magnitude.
  std::vector<f32> plateau(32 * 256);
  for (std::size_t i = 0; i < plateau.size(); ++i) {
    plateau[i] = static_cast<f32>(100 + static_cast<int>(i / (32 * 16)));
  }
  const StreamCodec ext(with_constant());
  const StreamCodec plain(with_constant(false));
  const auto bound = ErrorBound::absolute(1e-4);
  const auto r_ext = ext.compress(plateau, bound);
  const auto r_plain = plain.compress(plateau, bound);
  EXPECT_GT(r_ext.compression_ratio(), 2.0 * r_plain.compression_ratio());
  EXPECT_EQ(r_ext.stats.constant_blocks, 256u);

  const auto back = ext.decompress(r_ext.stream);
  EXPECT_LE(test::max_err(plateau, back),
            1e-4 + test::f32_ulp_slack(plateau));
}

TEST(ConstantBlocks, WaferMappingRejectsExtension) {
  mapping::MapperOptions opt;
  opt.rows = 1;
  opt.cols = 1;
  opt.codec = with_constant();
  EXPECT_THROW(mapping::WaferMapper{opt}, Error);
}

class ConstantBlockProperty : public ::testing::TestWithParam<f64> {};

TEST_P(ConstantBlockProperty, MixedStreamsHoldBound) {
  // Alternating constant plateaus and smooth segments.
  const f64 rel = GetParam();
  std::vector<f32> data;
  const auto smooth = test::smooth_signal(32 * 8, 3);
  for (int seg = 0; seg < 8; ++seg) {
    if (seg % 2 == 0) {
      data.insert(data.end(), 32 * 8, static_cast<f32>(seg) * 2.5f);
    } else {
      data.insert(data.end(), smooth.begin(), smooth.end());
    }
  }
  const StreamCodec codec(with_constant());
  const auto result = codec.compress(data, ErrorBound::relative(rel));
  const auto back = codec.decompress(result.stream);
  EXPECT_LE(test::max_err(data, back),
            result.eps_abs + test::f32_ulp_slack(data));
  EXPECT_GT(result.stats.constant_blocks, 0u);
}

INSTANTIATE_TEST_SUITE_P(Bounds, ConstantBlockProperty,
                         ::testing::Values(1e-2, 1e-3, 1e-4));

}  // namespace
}  // namespace ceresz::core
