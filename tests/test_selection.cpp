// Section 4.4's configuration machinery: ingress-rate modeling
// (assumption 1) and memory-driven pipeline-length selection
// (assumption 2).
#include <gtest/gtest.h>

#include "mapping/pipeline_program.h"
#include "mapping/wafer_mapper.h"
#include "test_util.h"

namespace ceresz::mapping {
namespace {

TEST(IngressRate, SlowProducerCapsThroughput) {
  // At 8 columns a saturated row computes ~28 MB/s; a producer at one
  // wavelet per 512 cycles supplies only ~6.6 MB/s, so the run must be
  // ingress-bound regardless of the PE count (Section 4.4, assumption 1).
  const auto data = test::smooth_signal(32 * 256);
  MapperOptions fast;
  fast.rows = 1;
  fast.cols = 8;
  fast.collect_output = false;
  MapperOptions slow = fast;
  slow.ingress_cycles_per_wavelet = 512.0;

  const auto run_fast =
      WaferMapper(fast).compress(data, core::ErrorBound::absolute(1e-3));
  const auto run_slow =
      WaferMapper(slow).compress(data, core::ErrorBound::absolute(1e-3));
  EXPECT_LT(run_slow.throughput_gbps, run_fast.throughput_gbps / 3.0);

  // Ingress bound: 4 bytes / (512 cycles / 850 MHz) = ~6.6 MB/s.
  const f64 ingress_gbps = 4.0 * 850.0e6 / 512.0 / 1.0e9;
  EXPECT_LE(run_slow.throughput_gbps, ingress_gbps * 1.05);
  EXPECT_GE(run_slow.throughput_gbps, ingress_gbps * 0.5);
}

TEST(IngressRate, SaturatedIsDefault) {
  MapperOptions opt;
  EXPECT_EQ(opt.ingress_cycles_per_wavelet, 1.0);
}

TEST(IngressRate, SubFabricRateRejected) {
  const auto data = test::smooth_signal(64);
  MapperOptions opt;
  opt.rows = 1;
  opt.cols = 1;
  opt.ingress_cycles_per_wavelet = 0.5;  // faster than 1 wavelet/cycle
  EXPECT_THROW(
      WaferMapper(opt).compress(data, core::ErrorBound::absolute(1e-3)),
      Error);
}

TEST(PipelineSelection, SmallBlockFitsSinglePe) {
  const GreedyScheduler sched(core::PeCostModel{}, 32);
  const auto stages = core::compression_substages(17);
  EXPECT_EQ(choose_pipeline_length(sched, stages, 32,
                                   PipeDirection::kCompress, 48 * 1024),
            1u);
}

TEST(PipelineSelection, LargeBlockForcesLongerPipeline) {
  // A 4K-element block's working set cannot fit one PE's 48 KB; the
  // SRAM-aware planner must split it, and every group of the returned
  // plan must fit.
  const u32 L = 4096;
  const GreedyScheduler sched(core::PeCostModel{}, L);
  const auto stages = core::compression_substages(17);
  const PipelinePlan plan = plan_with_sram(sched, stages, L,
                                           PipeDirection::kCompress,
                                           48 * 1024);
  EXPECT_GT(plan.length(), 1u);
  for (const auto& group : plan.groups) {
    EXPECT_LE(estimate_group_memory(group, L, PipeDirection::kCompress),
              48u * 1024);
  }
  // The plan covers every sub-stage, in order.
  std::size_t idx = 0;
  for (const auto& group : plan.groups) {
    for (const auto& s : group.stages) {
      EXPECT_EQ(static_cast<int>(s.kind), static_cast<int>(stages[idx].kind));
      ++idx;
    }
  }
  EXPECT_EQ(idx, stages.size());
}

TEST(PipelineSelection, SelectionIsMinimal) {
  const u32 L = 4096;
  const GreedyScheduler sched(core::PeCostModel{}, L);
  const auto stages = core::compression_substages(17);
  const u32 pl = choose_pipeline_length(sched, stages, L,
                                        PipeDirection::kCompress, 48 * 1024);
  if (pl > 1) {
    const PipelinePlan shorter = sched.distribute(stages, pl - 1);
    std::size_t widest = 0;
    for (const auto& group : shorter.groups) {
      widest = std::max(widest,
                        estimate_group_memory(group, L,
                                              PipeDirection::kCompress));
    }
    EXPECT_GT(widest, 48u * 1024);
  }
}

TEST(PipelineSelection, ImpossibleBlockThrows) {
  // Even the most finely split pipeline cannot host a block whose single
  // sub-stage buffers exceed SRAM.
  const u32 L = 1 << 16;  // 64K floats: 512 KB of f64 scratch in one stage
  const GreedyScheduler sched(core::PeCostModel{}, L);
  const auto stages = core::compression_substages(17);
  EXPECT_THROW(choose_pipeline_length(sched, stages, L,
                                      PipeDirection::kCompress, 48 * 1024),
               Error);
}

TEST(PipelineSelection, MemoryEstimateScalesWithBlockSize) {
  const GreedyScheduler sched(core::PeCostModel{}, 32);
  const PipelinePlan plan =
      sched.distribute(core::compression_substages(12), 1);
  const std::size_t small =
      estimate_group_memory(plan.groups[0], 32, PipeDirection::kCompress);
  const std::size_t large =
      estimate_group_memory(plan.groups[0], 1024, PipeDirection::kCompress);
  EXPECT_GT(large, 16 * small);
}

TEST(PipelineSelection, EndToEndWithSramPlanning) {
  // A 512-element block cannot run at PL = 1 on an 8 KB PE; with
  // plan_for_sram the mapper must pick a longer pipeline that both builds
  // and round-trips on the simulated wafer.
  const u32 L = 512;
  core::CodecConfig codec;
  codec.block_size = L;
  const std::size_t sram = 8 * 1024;

  MapperOptions opt;
  opt.rows = 1;
  opt.cols = 8;
  opt.codec = codec;
  opt.wse.sram_bytes = sram;
  opt.plan_for_sram = true;
  const WaferMapper mapper(opt);
  const auto data = test::smooth_signal(L * 8);
  const auto comp = mapper.compress(data, core::ErrorBound::absolute(1e-3));
  EXPECT_GT(comp.plan.length(), 1u);
  const auto decomp = mapper.decompress(comp.stream);
  EXPECT_LE(test::max_err(data, decomp.output), 1e-3);
}

}  // namespace
}  // namespace ceresz::mapping
