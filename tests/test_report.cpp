#include "mapping/report.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ceresz::mapping {
namespace {

WaferRunResult small_run() {
  MapperOptions opt;
  opt.rows = 1;
  opt.cols = 4;
  const WaferMapper mapper(opt);
  const auto data = test::smooth_signal(32 * 16);
  return mapper.compress(data, core::ErrorBound::absolute(1e-3));
}

TEST(Report, UtilizationCoversEveryColumn) {
  const auto run = small_run();
  const std::string report = utilization_report(run);
  for (int c = 0; c < 4; ++c) {
    EXPECT_NE(report.find("| " + std::to_string(c) + " "),
              std::string::npos)
        << report;
  }
  EXPECT_NE(report.find("busy %"), std::string::npos);
}

TEST(Report, BusyFractionsAreSane) {
  const auto run = small_run();
  for (const auto& st : run.row0_stats) {
    EXPECT_LE(st.busy_cycles, run.makespan);
  }
}

TEST(Report, SummaryMentionsKeyFacts) {
  const auto run = small_run();
  const std::string summary = run_summary(run, 1, 4);
  EXPECT_NE(summary.find("mesh 1x4"), std::string::npos);
  EXPECT_NE(summary.find("GB/s"), std::string::npos);
  EXPECT_NE(summary.find("850 MHz"), std::string::npos);
}

}  // namespace
}  // namespace ceresz::mapping
