#include "core/block_codec.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "test_util.h"

namespace ceresz::core {
namespace {

CodecConfig config_with(u32 header_bytes, bool shortcut = true,
                        u32 block = 32) {
  CodecConfig cfg;
  cfg.block_size = block;
  cfg.header_bytes = header_bytes;
  cfg.zero_block_shortcut = shortcut;
  return cfg;
}

TEST(BlockCodec, CompressedSizeFormula) {
  // L = 32: header + L/8 signs + fl * L/8 payload.
  const BlockCodec codec(config_with(4));
  EXPECT_EQ(codec.compressed_size(0), 4u);         // zero block
  EXPECT_EQ(codec.compressed_size(1), 4u + 4 + 4);
  EXPECT_EQ(codec.compressed_size(17), 4u + 4 + 68);
  const BlockCodec szp(config_with(1));
  EXPECT_EQ(szp.compressed_size(0), 1u);  // SZp's 128x sparse-data cap
}

TEST(BlockCodec, PaperRatioExample) {
  // Section 3: an 8-element block with fl 4 compresses 32 bytes -> 6
  // bytes (1 header + 1 signs + 4 payload) at 1-byte headers.
  const BlockCodec codec(config_with(1, true, 8));
  EXPECT_EQ(codec.compressed_size(4), 6u);
  EXPECT_NEAR(32.0 / 6.0, 5.33, 0.01);
}

TEST(BlockCodec, RoundTripSmooth) {
  const BlockCodec codec(config_with(4));
  const auto data = test::smooth_signal(32);
  const f64 eps = 1e-3;
  std::vector<u8> stream;
  const BlockInfo info = codec.compress(data, eps, stream);
  EXPECT_FALSE(info.zero_block);
  EXPECT_EQ(stream.size(), info.compressed_bytes);

  std::vector<f32> back(32);
  const std::size_t consumed = codec.decompress(stream, eps, back);
  EXPECT_EQ(consumed, stream.size());
  EXPECT_LE(test::max_err(data, back), eps);
}

TEST(BlockCodec, ZeroBlockShortcut) {
  const BlockCodec codec(config_with(4));
  const std::vector<f32> zeros(32, 0.0f);
  std::vector<u8> stream;
  const BlockInfo info = codec.compress(zeros, 1e-2, stream);
  EXPECT_TRUE(info.zero_block);
  EXPECT_EQ(info.fixed_length, 0u);
  EXPECT_EQ(stream.size(), 4u);

  std::vector<f32> back(32);
  codec.decompress(stream, 1e-2, back);
  for (f32 v : back) EXPECT_EQ(v, 0.0f);
}

TEST(BlockCodec, NearZeroValuesBecomeZeroBlock) {
  // Values within eps of zero quantize to bin 0 -> zero block.
  const BlockCodec codec(config_with(4));
  std::vector<f32> tiny(32, 0.4e-2f);
  std::vector<u8> stream;
  const BlockInfo info = codec.compress(tiny, 1e-2, stream);
  EXPECT_TRUE(info.zero_block);
}

TEST(BlockCodec, ShortcutDisabledStillRoundTrips) {
  const BlockCodec codec(config_with(4, /*shortcut=*/false));
  const std::vector<f32> zeros(32, 0.0f);
  std::vector<u8> stream;
  const BlockInfo info = codec.compress(zeros, 1e-2, stream);
  EXPECT_FALSE(info.zero_block);
  EXPECT_EQ(info.fixed_length, 1u);  // explicit single zero plane
  std::vector<f32> back(32);
  codec.decompress(stream, 1e-2, back);
  for (f32 v : back) EXPECT_EQ(v, 0.0f);
}

TEST(BlockCodec, TruncatedStreamThrows) {
  const BlockCodec codec(config_with(4));
  const auto data = test::smooth_signal(32);
  std::vector<u8> stream;
  codec.compress(data, 1e-3, stream);
  std::vector<f32> back(32);
  EXPECT_THROW(
      codec.decompress(std::span<const u8>(stream.data(), stream.size() - 1),
                       1e-3, back),
      Error);
  EXPECT_THROW(codec.decompress(std::span<const u8>(stream.data(), 2), 1e-3,
                                back),
               Error);
}

TEST(BlockCodec, CorruptHeaderThrows) {
  const BlockCodec codec(config_with(4));
  std::vector<u8> bogus = {0xFF, 0xFF, 0xFF, 0xFF};
  std::vector<f32> back(32);
  EXPECT_THROW(codec.decompress(bogus, 1e-3, back), Error);
}

TEST(BlockCodec, RecordSizeMatchesCompress) {
  const BlockCodec codec(config_with(4));
  const auto data = test::random_signal(32);
  std::vector<u8> stream;
  codec.compress(data, 1e-4, stream);
  EXPECT_EQ(codec.record_size(stream), stream.size());
}

TEST(BlockCodec, InvalidConfigThrows) {
  EXPECT_THROW(BlockCodec(config_with(3)), Error);          // header width
  EXPECT_THROW(BlockCodec(config_with(4, true, 12)), Error);  // block size
  EXPECT_THROW(BlockCodec(config_with(4, true, 0)), Error);
}

struct RoundTripCase {
  f64 eps;
  u64 seed;
  const char* kind;
};

class BlockRoundTrip
    : public ::testing::TestWithParam<std::tuple<f64, int>> {};

TEST_P(BlockRoundTrip, ErrorBoundHolds) {
  const auto [eps, kind] = GetParam();
  std::vector<f32> data;
  switch (kind) {
    case 0: data = test::smooth_signal(32); break;
    case 1: data = test::random_signal(32, 5, -30.0, 30.0); break;
    case 2: data = test::sparse_signal(32, 9, 0.2); break;
    default: data.assign(32, -7.25f); break;  // constant block
  }
  for (u32 header : {1u, 2u, 4u}) {
    const BlockCodec codec(config_with(header));
    std::vector<u8> stream;
    codec.compress(data, eps, stream);
    std::vector<f32> back(32);
    const std::size_t consumed = codec.decompress(stream, eps, back);
    EXPECT_EQ(consumed, stream.size());
    // Exact up to f32 output representation (half an ulp).
    EXPECT_LE(test::max_err(data, back), eps + test::f32_ulp_slack(data))
        << "kind=" << kind << " header=" << header << " eps=" << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockRoundTrip,
    ::testing::Combine(::testing::Values(1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
                       ::testing::Values(0, 1, 2, 3)));

}  // namespace
}  // namespace ceresz::core
