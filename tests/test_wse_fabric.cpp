#include "wse/fabric.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ceresz::wse {
namespace {

WseConfig small_mesh(u32 rows, u32 cols) {
  WseConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  return cfg;
}

// Figure 3/4: route an array from PE (0,0) to PE (0,1) and consume it with
// a data-triggered task.
TEST(Fabric, RouteArrayToNeighbor) {
  Fabric fabric(small_mesh(1, 2));
  const Color c = 4;
  fabric.router(0, 0).set_route(c, {Direction::kRamp}, {Direction::kEast});
  fabric.router(0, 1).set_route(c, {Direction::kWest}, {Direction::kRamp});

  std::vector<u32> received;
  const Color sender_task = 9;
  fabric.bind_task(0, 0, sender_task, [c](PeContext& ctx) {
    ctx.consume(10);
    ctx.send_async(c, Message::make(c, {11, 22, 33}, 1));
  });
  fabric.bind_task(
      0, 1, c,
      [&received, c](PeContext& ctx) {
        Message m = ctx.take_delivered(c);
        ASSERT_NE(m.payload, nullptr);
        received = *m.payload;
      },
      TaskTrigger::kDataTriggered);

  fabric.activate_at(0, 0, sender_task, 0);
  const RunStats rs = fabric.run();
  EXPECT_EQ(received, (std::vector<u32>{11, 22, 33}));
  EXPECT_EQ(rs.tasks_run, 2u);
  EXPECT_GT(rs.makespan, 0u);
}

TEST(Fabric, MulticastAlongRow) {
  // Broadcast: middle PEs deliver to RAMP and forward east.
  Fabric fabric(small_mesh(1, 4));
  const Color c = 2;
  fabric.router(0, 0).set_route(c, {Direction::kRamp}, {Direction::kEast});
  for (u32 col = 1; col < 4; ++col) {
    if (col < 3) {
      fabric.router(0, col).set_route(c, {Direction::kWest},
                                      {Direction::kRamp, Direction::kEast});
    } else {
      fabric.router(0, col).set_route(c, {Direction::kWest},
                                      {Direction::kRamp});
    }
  }
  std::vector<u32> deliveries;
  for (u32 col = 1; col < 4; ++col) {
    fabric.bind_task(
        0, col, c,
        [&deliveries, c, col](PeContext& ctx) {
          ctx.take_delivered(c);
          deliveries.push_back(col);
        },
        TaskTrigger::kDataTriggered);
  }
  const Color go = 8;
  fabric.bind_task(0, 0, go, [c](PeContext& ctx) {
    ctx.send_async(c, Message::token(c, 16));
  });
  fabric.activate_at(0, 0, go, 0);
  fabric.run();
  ASSERT_EQ(deliveries.size(), 3u);
}

TEST(Fabric, HopLatencyAccumulates) {
  // Delivery time = send overhead + hops + extent; farther PE sees a later
  // arrival timestamp reflected in its finish time.
  WseConfig cfg = small_mesh(1, 5);
  Fabric fabric(cfg);
  const Color c = 1;
  fabric.router(0, 0).set_route(c, {Direction::kRamp}, {Direction::kEast});
  for (u32 col = 1; col < 5; ++col) {
    fabric.router(0, col).set_route(
        c, {Direction::kWest},
        col == 4 ? std::initializer_list<Direction>{Direction::kRamp}
                 : std::initializer_list<Direction>{Direction::kEast});
  }
  Cycles arrival_time = 0;
  fabric.bind_task(
      0, 4, c,
      [&arrival_time, c](PeContext& ctx) {
        ctx.take_delivered(c);
        arrival_time = ctx.now();
      },
      TaskTrigger::kDataTriggered);
  const Color go = 8;
  fabric.bind_task(0, 0, go, [c](PeContext& ctx) {
    ctx.send_async(c, Message::token(c, 32));
  });
  fabric.activate_at(0, 0, go, 0);
  fabric.run();
  // Send departs at task finish (task overhead 8), + send overhead 32 +
  // 4 hops + 32 extent = deliver at 76; data-triggered recv adds
  // recv overhead 4 + extent 32 before the task starts at 112.
  EXPECT_EQ(arrival_time, 8u + 32 + 4 + 32 + 4 + 32);
}

TEST(Fabric, UnroutedColorThrows) {
  Fabric fabric(small_mesh(1, 2));
  const Color c = 3;
  fabric.router(0, 0).set_route(c, {Direction::kRamp}, {Direction::kEast});
  // PE (0,1) has no route for c.
  const Color go = 8;
  fabric.bind_task(0, 0, go, [c](PeContext& ctx) {
    ctx.send_async(c, Message::token(c, 4));
  });
  fabric.activate_at(0, 0, go, 0);
  EXPECT_THROW(fabric.run(), Error);
}

TEST(Fabric, RoutingOffEdgeThrows) {
  Fabric fabric(small_mesh(1, 1));
  const Color c = 3;
  fabric.router(0, 0).set_route(c, {Direction::kRamp}, {Direction::kEast});
  const Color go = 8;
  fabric.bind_task(0, 0, go, [c](PeContext& ctx) {
    ctx.send_async(c, Message::token(c, 4));
  });
  fabric.activate_at(0, 0, go, 0);
  EXPECT_THROW(fabric.run(), Error);
}

TEST(Fabric, RecvAsyncDeliversInOrder) {
  Fabric fabric(small_mesh(1, 1));
  const Color data = 5;
  const Color recv_task = 10;
  const Color on_data = 11;
  std::vector<u64> tags;
  fabric.bind_task(0, 0, recv_task, [data](PeContext& ctx) {
    ctx.recv_async(data, /*activate=*/11);
  });
  fabric.bind_task(0, 0, on_data, [&tags, data](PeContext& ctx) {
    Message m = ctx.take_delivered(data);
    tags.push_back(m.tag);
    if (tags.size() < 3) ctx.activate(10);
  });
  for (u64 i = 0; i < 3; ++i) {
    fabric.inject(0, 0, Message::token(data, 8, i), /*arrival=*/i * 100);
  }
  fabric.activate_at(0, 0, recv_task, 0);
  fabric.run();
  EXPECT_EQ(tags, (std::vector<u64>{0, 1, 2}));
}

TEST(Fabric, ForwardAsyncRelaysWithCounting) {
  // The Figure 9(b) idiom: PE (0,0) forwards two messages east, keeps the
  // third.
  Fabric fabric(small_mesh(1, 2));
  const Color raw_in = 0;
  const Color raw_out = 1;
  fabric.router(0, 0).set_route(raw_out, {Direction::kRamp},
                                {Direction::kEast});
  fabric.router(0, 1).set_route(raw_out, {Direction::kWest},
                                {Direction::kRamp});

  const Color relay_task = 10;
  const Color compute_task = 11;
  auto count = std::make_shared<int>(0);
  u64 kept_tag = 999;
  std::vector<u64> neighbor_tags;

  fabric.bind_task(0, 0, relay_task,
                   [count, raw_in, raw_out](PeContext& ctx) {
                     if (*count < 2) {
                       ++*count;
                       ctx.forward_async(raw_in, raw_out, 10);
                     } else {
                       ctx.recv_async(raw_in, 11);
                     }
                   });
  fabric.bind_task(0, 0, compute_task, [&kept_tag, raw_in](PeContext& ctx) {
    kept_tag = ctx.take_delivered(raw_in).tag;
  });
  fabric.bind_task(
      0, 1, raw_out,
      [&neighbor_tags, raw_out](PeContext& ctx) {
        neighbor_tags.push_back(ctx.take_delivered(raw_out).tag);
      },
      TaskTrigger::kDataTriggered);

  for (u64 i = 0; i < 3; ++i) {
    fabric.inject(0, 0, Message::token(raw_in, 8, i), i * 8);
  }
  fabric.activate_at(0, 0, relay_task, 0);
  fabric.run();
  EXPECT_EQ(neighbor_tags, (std::vector<u64>{0, 1}));
  EXPECT_EQ(kept_tag, 2u);
  EXPECT_EQ(fabric.stats(0, 0).messages_relayed, 2u);
  EXPECT_EQ(fabric.stats(0, 0).messages_received, 1u);
}

TEST(Fabric, TasksSerializeOnOnePe) {
  // Two activations of a 100-cycle task must not overlap.
  Fabric fabric(small_mesh(1, 1));
  const Color t = 6;
  std::vector<Cycles> starts;
  fabric.bind_task(0, 0, t, [&starts](PeContext& ctx) {
    starts.push_back(ctx.now());
    ctx.consume(100);
  });
  fabric.activate_at(0, 0, t, 0);
  fabric.activate_at(0, 0, t, 0);
  fabric.run();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_GE(starts[1], starts[0] + 100);
  EXPECT_EQ(fabric.stats(0, 0).tasks_run, 2u);
}

TEST(Fabric, DeterministicAcrossRuns) {
  auto run_once = [] {
    Fabric fabric(small_mesh(2, 2));
    const Color c = 1;
    fabric.router(0, 0).set_route(c, {Direction::kRamp}, {Direction::kEast});
    fabric.router(0, 1).set_route(c, {Direction::kWest}, {Direction::kRamp});
    fabric.bind_task(
        0, 1, c, [c](PeContext& ctx) { ctx.take_delivered(c); },
        TaskTrigger::kDataTriggered);
    const Color go = 9;
    fabric.bind_task(0, 0, go, [c](PeContext& ctx) {
      ctx.consume(17);
      ctx.send_async(c, Message::token(c, 12));
    });
    fabric.activate_at(0, 0, go, 0);
    return fabric.run().makespan;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Fabric, ActivatingUnboundColorThrows) {
  Fabric fabric(small_mesh(1, 1));
  fabric.activate_at(0, 0, 5, 0);
  EXPECT_THROW(fabric.run(), Error);
}

TEST(Fabric, RunTwiceThrows) {
  Fabric fabric(small_mesh(1, 1));
  fabric.run();
  EXPECT_THROW(fabric.run(), Error);
}

TEST(Fabric, EmitResultsCollected) {
  Fabric fabric(small_mesh(1, 1));
  const Color t = 2;
  fabric.bind_task(0, 0, t, [](PeContext& ctx) {
    ctx.emit_result(42, {1, 2, 3});
  });
  fabric.activate_at(0, 0, t, 0);
  fabric.run();
  ASSERT_EQ(fabric.results().size(), 1u);
  EXPECT_EQ(fabric.results()[0].tag, 42u);
  EXPECT_EQ(fabric.results()[0].bytes, (std::vector<u8>{1, 2, 3}));
}

TEST(Fabric, OutOfRangeCoordinateThrows) {
  Fabric fabric(small_mesh(2, 3));
  EXPECT_THROW(fabric.router(2, 0), Error);
  EXPECT_THROW(fabric.router(0, 3), Error);
  EXPECT_THROW(fabric.memory(5, 5), Error);
}

TEST(Fabric, LinkContentionSerializesBursts) {
  // Two different PEs inject bursts that share the (0,1) -> (0,2) link:
  // PE (0,0)'s burst passes through (0,1) in the fabric while (0,1) sends
  // its own. With contention modeled, the loser queues behind the winner.
  auto run_with = [](bool contention) {
    WseConfig cfg = small_mesh(1, 3);
    cfg.model_link_contention = contention;
    Fabric fabric(cfg);
    const Color a = 1;  // (0,0) -> (0,2), pass-through at (0,1)
    const Color b = 2;  // (0,1) -> (0,2)
    fabric.router(0, 0).set_route(a, {Direction::kRamp}, {Direction::kEast});
    fabric.router(0, 1).set_route(a, {Direction::kWest}, {Direction::kEast});
    fabric.router(0, 2).set_route(a, {Direction::kWest}, {Direction::kRamp});
    fabric.router(0, 1).set_route(b, {Direction::kRamp}, {Direction::kEast});
    fabric.router(0, 2).set_route(b, {Direction::kWest}, {Direction::kRamp});

    Cycles last_arrival = 0;
    for (Color c : {a, b}) {
      fabric.bind_task(
          0, 2, c,
          [&last_arrival, c](PeContext& ctx) {
            ctx.take_delivered(c);
            last_arrival = std::max(last_arrival, ctx.now());
          },
          TaskTrigger::kDataTriggered);
    }
    const Color go = 9;
    fabric.bind_task(0, 0, go, [a](PeContext& ctx) {
      ctx.send_async(a, Message::token(a, 256));
    });
    fabric.bind_task(0, 1, go, [b](PeContext& ctx) {
      ctx.send_async(b, Message::token(b, 256));
    });
    fabric.activate_at(0, 0, go, 0);
    fabric.activate_at(0, 1, go, 0);
    fabric.run();
    return last_arrival;
  };
  const Cycles without = run_with(false);
  const Cycles with = run_with(true);
  EXPECT_GT(with, without);
}

TEST(Fabric, LinkContentionPreservesUncontendedTiming) {
  // A single burst sees identical timing with and without the model.
  auto run_with = [](bool contention) {
    WseConfig cfg = small_mesh(1, 3);
    cfg.model_link_contention = contention;
    Fabric fabric(cfg);
    const Color c = 1;
    fabric.router(0, 0).set_route(c, {Direction::kRamp}, {Direction::kEast});
    fabric.router(0, 1).set_route(c, {Direction::kWest}, {Direction::kEast});
    fabric.router(0, 2).set_route(c, {Direction::kWest}, {Direction::kRamp});
    Cycles arrival = 0;
    fabric.bind_task(
        0, 2, c,
        [&arrival, c](PeContext& ctx) {
          ctx.take_delivered(c);
          arrival = ctx.now();
        },
        TaskTrigger::kDataTriggered);
    const Color go = 9;
    fabric.bind_task(0, 0, go, [c](PeContext& ctx) {
      ctx.send_async(c, Message::token(c, 32));
    });
    fabric.activate_at(0, 0, go, 0);
    fabric.run();
    return arrival;
  };
  EXPECT_EQ(run_with(false), run_with(true));
}

TEST(Fabric, ColumnRoutingNorthSouth) {
  // Route down a column: (0,0) -> (2,0) via southward hops.
  Fabric fabric(small_mesh(3, 1));
  const Color c = 5;
  fabric.router(0, 0).set_route(c, {Direction::kRamp}, {Direction::kSouth});
  fabric.router(1, 0).set_route(c, {Direction::kNorth}, {Direction::kSouth});
  fabric.router(2, 0).set_route(c, {Direction::kNorth}, {Direction::kRamp});
  u64 got_tag = 0;
  fabric.bind_task(
      2, 0, c,
      [&got_tag, c](PeContext& ctx) { got_tag = ctx.take_delivered(c).tag; },
      TaskTrigger::kDataTriggered);
  const Color go = 9;
  fabric.bind_task(0, 0, go, [c](PeContext& ctx) {
    ctx.send_async(c, Message::token(c, 8, 77));
  });
  fabric.activate_at(0, 0, go, 0);
  fabric.run();
  EXPECT_EQ(got_tag, 77u);
}

TEST(Fabric, WrongArrivalDirectionThrows) {
  // (0,1) only accepts the color from the NORTH; a westward arrival must
  // be rejected by the router validation.
  Fabric fabric(small_mesh(1, 2));
  const Color c = 4;
  fabric.router(0, 0).set_route(c, {Direction::kRamp}, {Direction::kEast});
  fabric.router(0, 1).set_route(c, {Direction::kNorth}, {Direction::kRamp});
  const Color go = 9;
  fabric.bind_task(0, 0, go, [c](PeContext& ctx) {
    ctx.send_async(c, Message::token(c, 4));
  });
  fabric.activate_at(0, 0, go, 0);
  EXPECT_THROW(fabric.run(), Error);
}

}  // namespace
}  // namespace ceresz::wse
