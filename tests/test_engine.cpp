#include "engine/parallel_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>

#include "common/checksum.h"
#include "common/error.h"
#include "core/stream_codec.h"
#include "engine/bounded_queue.h"
#include "engine/thread_pool.h"
#include "io/chunk_container.h"
#include "test_util.h"

namespace ceresz::engine {
namespace {

EngineOptions small_chunks(u32 threads, u64 chunk_elems = 2048,
                           bool lenient = false) {
  EngineOptions opt;
  opt.threads = threads;
  opt.chunk_elems = chunk_elems;
  opt.lenient = lenient;
  return opt;
}

// --- container parity with the single-stream codec -------------------------

TEST(ParallelEngine, ChunkPayloadsBitIdenticalToStreamCodec) {
  const auto data = test::smooth_signal(100000);
  const core::StreamCodec codec;
  const auto single = codec.compress(data, core::ErrorBound::relative(1e-3));

  const ParallelEngine eng(small_chunks(4));
  const auto chunked = eng.compress(data, core::ErrorBound::relative(1e-3));

  EXPECT_EQ(chunked.eps_abs, single.eps_abs);
  const auto parsed = io::parse_container(chunked.stream);
  ASSERT_FALSE(parsed.entries.empty());

  // The concatenated chunk payloads must equal the single-stream body.
  std::span<const u8> body(single.stream.data() + core::StreamCodec::header_size(),
                           single.stream.size() - core::StreamCodec::header_size());
  std::span<const u8> payloads(chunked.stream.data() + parsed.entries[0].offset,
                               chunked.stream.size() - parsed.entries[0].offset);
  ASSERT_EQ(payloads.size(), body.size());
  EXPECT_TRUE(std::equal(payloads.begin(), payloads.end(), body.begin()));
}

TEST(ParallelEngine, MergedStatsMatchStreamCodec) {
  const auto data = test::sparse_signal(32 * 3000, 17, 0.02);
  const core::StreamCodec codec;
  const auto single = codec.compress(data, core::ErrorBound::absolute(1e-1));
  const ParallelEngine eng(small_chunks(3, 1024));
  const auto chunked = eng.compress(data, core::ErrorBound::absolute(1e-1));

  const auto& a = chunked.stats.stream;
  const auto& b = single.stats;
  EXPECT_EQ(a.total_blocks, b.total_blocks);
  EXPECT_EQ(a.zero_blocks, b.zero_blocks);
  EXPECT_EQ(a.constant_blocks, b.constant_blocks);
  EXPECT_EQ(a.max_fixed_length, b.max_fixed_length);
  EXPECT_DOUBLE_EQ(a.mean_fixed_length, b.mean_fixed_length);
  EXPECT_EQ(a.fl_histogram, b.fl_histogram);
}

// --- round trips ------------------------------------------------------------

TEST(ParallelEngine, RoundTripOddSizes) {
  const ParallelEngine eng(small_chunks(3, 256));
  for (std::size_t n : {0u, 1u, 31u, 32u, 33u, 255u, 256u, 257u, 1000u,
                        4096u, 4097u}) {
    const auto data = test::smooth_signal(n);
    const auto result = eng.compress(data, core::ErrorBound::absolute(1e-3));
    EXPECT_EQ(result.element_count, n);
    const auto back = eng.decompress(result.stream);
    ASSERT_EQ(back.values.size(), n) << "n=" << n;
    EXPECT_TRUE(back.corrupt_chunks.empty());
    EXPECT_LE(test::max_err(data, back.values), 1e-3) << "n=" << n;
  }
}

TEST(ParallelEngine, EmptyInputRoundTrip) {
  const ParallelEngine eng(small_chunks(2));
  const std::vector<f32> empty;
  const auto result = eng.compress(empty, core::ErrorBound::relative(1e-3));
  EXPECT_EQ(result.element_count, 0u);
  const auto back = eng.decompress(result.stream);
  EXPECT_TRUE(back.values.empty());
  EXPECT_EQ(back.stats.chunks, 0u);
}

TEST(ParallelEngine, DeterministicAcrossThreadCounts) {
  const auto data = test::random_signal(50000, 5, -50.0, 50.0);
  std::vector<u8> reference;
  for (u32 threads : {1u, 2u, 5u, 8u}) {
    const ParallelEngine eng(small_chunks(threads, 4096));
    const auto result = eng.compress(data, core::ErrorBound::relative(1e-3));
    if (reference.empty()) {
      reference = result.stream;
    } else {
      EXPECT_EQ(result.stream, reference) << "threads=" << threads;
    }
  }
}

TEST(ParallelEngine, RelativeBoundMatchesStreamCodecEps) {
  // The parallel min/max reduction must resolve REL bounds to the exact
  // same eps as the single-threaded Welford pass.
  auto data = test::smooth_signal(10000);
  for (auto& v : data) v *= 321.0f;
  const core::StreamCodec codec;
  const auto single = codec.compress(data, core::ErrorBound::relative(1e-4));
  const ParallelEngine eng(small_chunks(4, 512));
  const auto chunked = eng.compress(data, core::ErrorBound::relative(1e-4));
  EXPECT_EQ(chunked.eps_abs, single.eps_abs);
  EXPECT_EQ(chunked.stream,
            eng.compress(data, core::ErrorBound::absolute(single.eps_abs))
                .stream);
}

// --- corruption handling ----------------------------------------------------

// Flip one payload byte of the given chunk; returns the flipped offset.
std::size_t corrupt_chunk(std::vector<u8>& stream, u64 chunk) {
  const auto parsed = io::parse_container(stream);
  const auto& e = parsed.entries[chunk];
  const std::size_t victim = e.offset + e.compressed_bytes / 2;
  stream[victim] ^= 0x5a;
  return victim;
}

TEST(ParallelEngine, StrictModeThrowsNamingTheCorruptChunk) {
  const auto data = test::smooth_signal(10000);
  const ParallelEngine eng(small_chunks(4, 1024));
  auto result = eng.compress(data, core::ErrorBound::absolute(1e-3));
  corrupt_chunk(result.stream, 3);
  try {
    eng.decompress(result.stream);
    FAIL() << "corrupt chunk was not detected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("chunk 3"), std::string::npos)
        << "error does not localize the corruption: " << e.what();
  }
}

TEST(ParallelEngine, LenientModeZeroFillsOnlyTheCorruptChunk) {
  const auto data = test::smooth_signal(10000);
  const u64 chunk_elems = 1024;
  const ParallelEngine strict(small_chunks(4, chunk_elems));
  auto result = strict.compress(data, core::ErrorBound::absolute(1e-3));
  corrupt_chunk(result.stream, 3);

  const ParallelEngine lenient(small_chunks(4, chunk_elems, true));
  const auto back = lenient.decompress(result.stream);
  ASSERT_EQ(back.values.size(), data.size());
  ASSERT_EQ(back.corrupt_chunks, (std::vector<u64>{3}));

  for (std::size_t i = 0; i < data.size(); ++i) {
    const u64 chunk = i / chunk_elems;
    if (chunk == 3) {
      EXPECT_EQ(back.values[i], 0.0f) << "i=" << i;
    } else {
      EXPECT_LE(std::fabs(static_cast<f64>(data[i]) - back.values[i]), 1e-3)
          << "i=" << i;
    }
  }
}

TEST(ParallelEngine, EveryChunkIsIndividuallyProtected) {
  const auto data = test::smooth_signal(4096);
  const ParallelEngine eng(small_chunks(2, 1024));
  const auto clean = eng.compress(data, core::ErrorBound::absolute(1e-3));
  const auto parsed = io::parse_container(clean.stream);
  for (u64 c = 0; c < parsed.entries.size(); ++c) {
    auto stream = clean.stream;
    corrupt_chunk(stream, c);
    EXPECT_THROW(eng.decompress(stream), Error) << "chunk " << c;
  }
}

TEST(ParallelEngine, HeaderAndTableCorruptionDetected) {
  const auto data = test::smooth_signal(4096);
  const ParallelEngine eng(small_chunks(2, 1024));
  const auto clean = eng.compress(data, core::ErrorBound::absolute(1e-3));
  // Header field (element count).
  auto bad_header = clean.stream;
  bad_header[17] ^= 0xff;
  EXPECT_THROW(eng.decompress(bad_header), Error);
  // Chunk table entry (first chunk's CRC field).
  auto bad_table = clean.stream;
  bad_table[io::ChunkedHeader::kHeaderBytes + 24] ^= 0xff;
  EXPECT_THROW(eng.decompress(bad_table), Error);
  // Truncation.
  auto cut = clean.stream;
  cut.resize(cut.size() - 1);
  EXPECT_THROW(eng.decompress(cut), Error);
}

// --- hostile (crafted) container inputs ------------------------------------
// These streams carry *valid* header and table CRCs — the tampering happens
// before the CRCs are recomputed — so only the semantic validation in
// parse_container stands between them and the decoder.

void patch_u64(std::vector<u8>& s, std::size_t off, u64 v) {
  for (int b = 0; b < 8; ++b) s[off + b] = static_cast<u8>((v >> (8 * b)) & 0xff);
}

void patch_u32(std::vector<u8>& s, std::size_t off, u32 v) {
  for (int b = 0; b < 4; ++b) s[off + b] = static_cast<u8>((v >> (8 * b)) & 0xff);
}

// Recompute the header and chunk-table CRCs after tampering with fields.
void reseal(std::vector<u8>& s) {
  patch_u32(s, 44, crc32c(std::span<const u8>(s.data(), 44)));
  u32 chunk_count = 0;
  for (int b = 0; b < 4; ++b) chunk_count |= static_cast<u32>(s[12 + b]) << (8 * b);
  const std::size_t entry_bytes =
      static_cast<std::size_t>(chunk_count) * io::ChunkedHeader::kEntryBytes;
  patch_u32(s, io::ChunkedHeader::kHeaderBytes + entry_bytes,
            crc32c(std::span<const u8>(s.data() + io::ChunkedHeader::kHeaderBytes,
                                       entry_bytes)));
}

TEST(ParallelEngine, RejectsElementCountOverflowInChunkTable) {
  // Two chunks whose element counts wrap u64 back to the true total. With
  // unchecked accumulation this passes the sum check and turns into an
  // out-of-bounds write in decompress.
  const auto data = test::smooth_signal(2048);
  const ParallelEngine eng(small_chunks(2, 1024));
  auto stream = eng.compress(data, core::ErrorBound::absolute(1e-3)).stream;
  const auto parsed = io::parse_container(stream);
  ASSERT_EQ(parsed.entries.size(), 2u);
  const u64 huge = u64(1) << 63;
  patch_u64(stream, 24, huge);  // header chunk_elems
  const std::size_t t = io::ChunkedHeader::kHeaderBytes;
  patch_u64(stream, t + 16, huge);  // entry 0 element_count
  patch_u64(stream, t + io::ChunkedHeader::kEntryBytes + 16,
            2048 - 2 * huge);  // entry 1: wraps the sum back to 2048
  reseal(stream);
  EXPECT_THROW(io::parse_container(stream), Error);
  EXPECT_THROW(eng.decompress(stream), Error);
}

TEST(ParallelEngine, RejectsDecompressionBomb) {
  // A ~200-byte container claiming 2^40 elements must be rejected during
  // parsing, before decompress allocates terabytes for the output.
  const auto data = test::smooth_signal(1024);
  const ParallelEngine eng(small_chunks(2, 1024));
  auto stream = eng.compress(data, core::ErrorBound::absolute(1e-3)).stream;
  const u64 bomb = u64(1) << 40;
  patch_u64(stream, 16, bomb);  // header element_count
  patch_u64(stream, 24, bomb);  // header chunk_elems (keeps chunk_count = 1)
  patch_u64(stream, io::ChunkedHeader::kHeaderBytes + 16, bomb);  // entry
  reseal(stream);
  EXPECT_THROW(io::parse_container(stream), Error);
  EXPECT_THROW(eng.decompress(stream), Error);
}

TEST(ParallelEngine, RejectsInconsistentChunkCount) {
  const auto data = test::smooth_signal(2048);
  const ParallelEngine eng(small_chunks(2, 1024));
  auto stream = eng.compress(data, core::ErrorBound::absolute(1e-3)).stream;
  // Claim one huge chunk covers everything while two table entries remain.
  patch_u64(stream, 24, u64(1) << 32);  // header chunk_elems
  reseal(stream);
  EXPECT_THROW(io::parse_container(stream), Error);
}

TEST(ParallelEngine, RejectsPayloadLengthOverflow) {
  // compressed_bytes near 2^64 would wrap `offset + compressed_bytes` past
  // the stream-size bound and feed an out-of-range subspan to the reader.
  const auto data = test::smooth_signal(2048);
  const ParallelEngine eng(small_chunks(2, 1024));
  auto stream = eng.compress(data, core::ErrorBound::absolute(1e-3)).stream;
  patch_u64(stream, io::ChunkedHeader::kHeaderBytes + 8, ~u64(0) - 8);
  reseal(stream);
  EXPECT_THROW(io::parse_container(stream), Error);
}

TEST(ChunkContainer, WriterRejectsFieldsThatDoNotFitTheirEncoding) {
  std::vector<u8> out;
  io::ChunkedHeader header;
  header.chunk_count = 0;
  header.block_size = 0x10000;  // does not fit the u16 field
  EXPECT_THROW(io::write_container_prefix(out, header, {}), Error);
  out.clear();
  header.block_size = 32;
  header.codec_header_bytes = 0x100;  // does not fit the u8 field
  EXPECT_THROW(io::write_container_prefix(out, header, {}), Error);
}

TEST(ParallelEngine, RejectsLegacyStreamAndMismatchedConfig) {
  const auto data = test::smooth_signal(1024);
  const core::StreamCodec codec;
  const auto legacy = codec.compress(data, core::ErrorBound::absolute(1e-3));
  const ParallelEngine eng(small_chunks(2));
  EXPECT_FALSE(ParallelEngine::is_chunked_stream(legacy.stream));
  EXPECT_THROW(eng.decompress(legacy.stream), Error);

  const auto chunked = eng.compress(data, core::ErrorBound::absolute(1e-3));
  EXPECT_TRUE(ParallelEngine::is_chunked_stream(chunked.stream));
  EngineOptions other = small_chunks(2);
  other.codec.header_bytes = 1;
  const ParallelEngine reader(other);
  EXPECT_THROW(reader.decompress(chunked.stream), Error);
}

TEST(ParallelEngine, RejectsChunkElemsNotMultipleOfBlockSize) {
  EngineOptions opt;
  opt.chunk_elems = 100;  // not a multiple of 32
  EXPECT_THROW(ParallelEngine{opt}, Error);
}

// --- metrics ----------------------------------------------------------------

TEST(ParallelEngine, StatsSurfaceIsPopulated) {
  const auto data = test::smooth_signal(32768);
  const ParallelEngine eng(small_chunks(3, 1024));
  const auto result = eng.compress(data, core::ErrorBound::absolute(1e-3));
  const auto& s = result.stats;
  EXPECT_EQ(s.threads, 3u);
  EXPECT_EQ(s.chunks, 32u);
  EXPECT_EQ(s.uncompressed_bytes, data.size() * sizeof(f32));
  EXPECT_EQ(s.compressed_bytes, result.stream.size());
  EXPECT_EQ(s.worker_busy_seconds.size(), 3u);
  EXPECT_GT(s.busy_seconds_total(), 0.0);
  EXPECT_GT(s.wall_seconds, 0.0);
  EXPECT_GT(s.throughput_gbps(), 0.0);
  EXPECT_GE(s.queue_high_water, 1u);
  // Queue capacity defaults to 2 * threads; backpressure caps the backlog.
  EXPECT_LE(s.queue_high_water, 6u);

  const auto back = eng.decompress(result.stream);
  EXPECT_EQ(back.stats.chunks, 32u);
  EXPECT_EQ(back.stats.uncompressed_bytes, data.size() * sizeof(f32));
  EXPECT_GT(back.stats.wall_seconds, 0.0);
}

TEST(ParallelEngine, MetricsAccumulateAcrossRepeatedRuns) {
  // A long-running caller (the compression service, a batch loop) reuses
  // one engine for many compress()/decompress() calls against one
  // registry: every run must ADD to the counters, never reset them, and
  // totals must be exactly per-run value x runs.
  const auto data = test::smooth_signal(8192);
  obs::MetricsRegistry reg;
  EngineOptions opt = small_chunks(2, 1024);  // 8 chunks per compress
  opt.metrics = &reg;
  const ParallelEngine eng(opt);

  std::vector<u8> stream;
  for (int run = 1; run <= 3; ++run) {
    const auto result = eng.compress(data, core::ErrorBound::absolute(1e-3));
    stream = result.stream;
    EXPECT_EQ(reg.counter(kMetricChunks).value(),
              static_cast<u64>(run) * 8u)
        << "run " << run;
    EXPECT_EQ(reg.counter(kMetricUncompressedBytes).value(),
              static_cast<u64>(run) * data.size() * sizeof(f32));
    EXPECT_EQ(reg.counter(kMetricCompressedBytes).value(),
              static_cast<u64>(run) * stream.size());
  }
  for (int run = 1; run <= 2; ++run) {
    (void)eng.decompress(stream);
    // Decompress runs count their chunks into the same family.
    EXPECT_EQ(reg.counter(kMetricChunks).value(),
              (3u + static_cast<u64>(run)) * 8u)
        << "decompress run " << run;
  }

  // Concurrent reuse of ONE engine against one registry: totals still
  // come out exact (counters are sharded, merges are atomic).
  obs::MetricsRegistry shared;
  EngineOptions copt = small_chunks(2, 1024);
  copt.metrics = &shared;
  const ParallelEngine shared_eng(copt);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 3; ++i) {
        (void)shared_eng.compress(data, core::ErrorBound::absolute(1e-3));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(shared.counter(kMetricChunks).value(), 4u * 3u * 8u);
}

// --- thread pool / bounded queue -------------------------------------------

TEST(BoundedQueue, BlocksProducersAtCapacityAndTracksHighWater) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    q.push(3);  // must block until a pop frees a slot
    third_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(q.high_water(), 2u);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
  q.close();
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.push(4));
}

TEST(ThreadPool, RunsEveryTaskAndReportsBusyTime) {
  ThreadPool pool(4, 2);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.submit([&sum, i] { sum += i; });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 5050);
  EXPECT_EQ(pool.busy_seconds().size(), 4u);
  EXPECT_GE(pool.queue_high_water(), 1u);
  EXPECT_LE(pool.queue_high_water(), 2u);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.wait_idle();  // no tasks: returns immediately
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) pool.submit([&] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

}  // namespace
}  // namespace ceresz::engine
