// Robustness / failure-injection suite: corrupt, truncate, and mangle
// compressed streams. Every decoder in the library must either reproduce
// data or throw ceresz::Error — never crash, hang, or read out of bounds.
#include <gtest/gtest.h>

#include "baselines/compressor.h"
#include "common/rng.h"
#include "core/stream_codec.h"
#include "core/tiled_codec.h"
#include "engine/parallel_engine.h"
#include "io/chunk_container.h"
#include "net/protocol.h"
#include "test_util.h"

namespace ceresz {
namespace {

// Decode and ignore the outcome; only crashes/UB are failures. Bit flips
// can produce a stream that still parses (flipping payload bits changes
// values, not structure), so a successful decode is acceptable.
template <typename Fn>
void expect_no_crash(Fn&& decode) {
  try {
    decode();
  } catch (const Error&) {
    // Structured rejection is the expected failure mode.
  }
}

class StreamFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(StreamFuzz, BitFlipsNeverCrashStreamCodec) {
  const core::StreamCodec codec;
  const auto data = test::smooth_signal(32 * 64, GetParam());
  auto result = codec.compress(data, core::ErrorBound::absolute(1e-3));
  Rng rng(GetParam() * 977 + 1);
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = result.stream;
    const int flips = 1 + static_cast<int>(rng.next_below(8));
    for (int f = 0; f < flips; ++f) {
      const std::size_t byte = rng.next_below(corrupted.size());
      corrupted[byte] ^= static_cast<u8>(1u << rng.next_below(8));
    }
    expect_no_crash([&] { codec.decompress(corrupted); });
  }
}

TEST_P(StreamFuzz, TruncationsNeverCrashStreamCodec) {
  const core::StreamCodec codec;
  const auto data = test::smooth_signal(32 * 64, GetParam());
  const auto result = codec.compress(data, core::ErrorBound::absolute(1e-3));
  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t cut = rng.next_below(result.stream.size());
    std::span<const u8> truncated(result.stream.data(), cut);
    expect_no_crash([&] { codec.decompress(truncated); });
  }
}

TEST_P(StreamFuzz, RandomBytesNeverCrashAnyDecoder) {
  Rng rng(GetParam() * 131 + 3);
  const core::StreamCodec stream_codec;
  const core::Tiled2dCodec tiled_codec;
  const auto sz3 = baselines::make_sz3();
  const auto cusz = baselines::make_cusz();
  const auto szp = baselines::make_szp();
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<u8> junk(16 + rng.next_below(4096));
    for (auto& b : junk) b = static_cast<u8>(rng.next_u64());
    expect_no_crash([&] { stream_codec.decompress(junk); });
    expect_no_crash([&] {
      std::size_t w, h;
      tiled_codec.decompress(junk, w, h);
    });
    expect_no_crash([&] { sz3->decompress(junk); });
    expect_no_crash([&] { cusz->decompress(junk); });
    expect_no_crash([&] { szp->decompress(junk); });
  }
}

TEST_P(StreamFuzz, BitFlipsNeverCrashBaselines) {
  data::Field f;
  f.dataset = "fuzz";
  f.name = "x";
  f.values = test::smooth_signal(4000, GetParam());
  f.dims = {f.values.size()};
  const auto sz3 = baselines::make_sz3();
  const auto stream = sz3->compress(f, core::ErrorBound::absolute(1e-3),
                                    nullptr);
  Rng rng(GetParam() * 17 + 5);
  for (int trial = 0; trial < 60; ++trial) {
    auto corrupted = stream;
    corrupted[rng.next_below(corrupted.size())] ^=
        static_cast<u8>(1u << rng.next_below(8));
    expect_no_crash([&] { sz3->decompress(corrupted); });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamFuzz, ::testing::Values(1, 2, 3, 4));

// ---- Chunked "CSZC" container fuzz ----

engine::EngineOptions chunked_options(bool lenient = false) {
  engine::EngineOptions opt;
  opt.threads = 2;
  opt.chunk_elems = 256;  // 8 chunks for the 2048-element inputs below
  opt.lenient = lenient;
  return opt;
}

std::vector<u8> make_chunked_stream(u64 seed) {
  const engine::ParallelEngine eng(chunked_options());
  const auto data = test::smooth_signal(2048, seed);
  return eng.compress(data, core::ErrorBound::absolute(1e-3)).stream;
}

TEST_P(StreamFuzz, ChunkedHeaderAndTableFlipsAreRejectedStructurally) {
  const auto stream = make_chunked_stream(GetParam());
  // Every byte of the header and chunk table is covered by a CRC (or is
  // the magic/CRC itself), so ANY flip there must throw — in strict AND
  // lenient mode: lenient only forgives payload corruption, never a
  // container whose structure cannot be trusted.
  const std::size_t prefix = io::parse_container(stream).header.payload_start();
  const engine::ParallelEngine strict(chunked_options(false));
  const engine::ParallelEngine lenient(chunked_options(true));
  Rng rng(GetParam() * 271 + 9);
  for (int trial = 0; trial < 150; ++trial) {
    auto corrupted = stream;
    const std::size_t byte = rng.next_below(prefix);
    corrupted[byte] ^= static_cast<u8>(1u << rng.next_below(8));
    EXPECT_THROW(strict.decompress(corrupted), Error) << "byte " << byte;
    EXPECT_THROW(lenient.decompress(corrupted), Error) << "byte " << byte;
  }
}

TEST_P(StreamFuzz, ChunkedPayloadFlipsAreDetectedPerChunk) {
  const auto stream = make_chunked_stream(GetParam());
  const std::size_t prefix = io::parse_container(stream).header.payload_start();
  const engine::ParallelEngine strict(chunked_options(false));
  const engine::ParallelEngine lenient(chunked_options(true));
  Rng rng(GetParam() * 83 + 11);
  for (int trial = 0; trial < 40; ++trial) {
    auto corrupted = stream;
    const std::size_t byte =
        prefix + rng.next_below(corrupted.size() - prefix);
    corrupted[byte] ^= static_cast<u8>(1u << rng.next_below(8));
    // A single payload flip always changes the chunk's CRC32C: strict
    // throws, lenient quarantines exactly the flipped chunk.
    EXPECT_THROW(strict.decompress(corrupted), Error) << "byte " << byte;
    const auto recovered = lenient.decompress(corrupted);
    EXPECT_EQ(recovered.corrupt_chunks.size(), 1u) << "byte " << byte;
    EXPECT_EQ(recovered.stats.quarantined, 1u);
  }
}

TEST_P(StreamFuzz, ChunkedTruncationsAreRejectedStructurally) {
  const auto stream = make_chunked_stream(GetParam());
  const engine::ParallelEngine strict(chunked_options(false));
  const engine::ParallelEngine lenient(chunked_options(true));
  Rng rng(GetParam() * 47 + 13);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t cut = rng.next_below(stream.size());
    const std::vector<u8> truncated(stream.begin(), stream.begin() + cut);
    // The last chunk's payload runs to the final byte, so every proper
    // prefix breaks either the table or a chunk's recorded extent.
    EXPECT_THROW(strict.decompress(truncated), Error) << "cut " << cut;
    EXPECT_THROW(lenient.decompress(truncated), Error) << "cut " << cut;
  }
}

// ---- CSNP service-frame fuzz ----
// The network protocol parsers face bytes straight off a socket, so they
// get the same treatment as the stream decoders: flips, truncations, and
// junk must throw ceresz::Error — never crash or read out of bounds.

TEST_P(StreamFuzz, ServiceFramesNeverCrashTheProtocolParsers) {
  const auto data = test::smooth_signal(512, GetParam());
  net::CompressRequest creq;
  creq.bound = core::ErrorBound::relative(1e-3);
  creq.data = data;
  std::vector<u8> payload;
  net::append_compress_request(payload, creq);
  std::vector<u8> frame;
  net::append_frame(frame, net::Opcode::kCompress, net::Status::kOk,
                    /*request_id=*/7, payload);

  Rng rng(GetParam() * 193 + 21);
  for (int trial = 0; trial < 200; ++trial) {
    auto fuzzed = frame;
    const int flips = 1 + static_cast<int>(rng.next_below(8));
    for (int f = 0; f < flips; ++f) {
      fuzzed[rng.next_below(fuzzed.size())] ^=
          static_cast<u8>(1u << rng.next_below(8));
    }
    if (rng.next_below(3) == 0) fuzzed.resize(rng.next_below(fuzzed.size()));
    expect_no_crash([&] {
      const net::FrameHeader h = net::parse_frame_header(
          std::span<const u8>(fuzzed).subspan(
              0, std::min(fuzzed.size(), net::kFrameHeaderBytes)),
          net::kDefaultMaxPayload);
      // Only decode as much payload as actually exists — exactly what a
      // reader does after read_exact() succeeds; the decoder must then
      // reconcile the declared counts with the real size on its own.
      const std::size_t have =
          std::min<std::size_t>(fuzzed.size() - net::kFrameHeaderBytes,
                                static_cast<std::size_t>(h.payload_bytes));
      (void)net::decode_compress_request(
          std::span<const u8>(fuzzed).subspan(net::kFrameHeaderBytes, have));
    });
  }
}

// ---- Magic-value cross-feeding: every decoder rejects every other
// codec's streams. ----

TEST(CrossFeed, DecodersRejectEachOthersStreams) {
  data::Field f;
  f.dataset = "x";
  f.name = "y";
  f.values = test::smooth_signal(2048);
  f.dims = {f.values.size()};
  const core::ErrorBound bound = core::ErrorBound::absolute(1e-3);

  const core::StreamCodec ceresz_codec;
  const auto ceresz_stream = ceresz_codec.compress(f.values, bound).stream;
  const auto sz3 = baselines::make_sz3();
  const auto sz3_stream = sz3->compress(f, bound, nullptr);
  const auto cusz = baselines::make_cusz();
  const auto cusz_stream = cusz->compress(f, bound, nullptr);

  EXPECT_THROW(ceresz_codec.decompress(sz3_stream), Error);
  EXPECT_THROW(ceresz_codec.decompress(cusz_stream), Error);
  EXPECT_THROW(sz3->decompress(ceresz_stream), Error);
  EXPECT_THROW(sz3->decompress(cusz_stream), Error);
  EXPECT_THROW(cusz->decompress(sz3_stream), Error);
  EXPECT_THROW(cusz->decompress(ceresz_stream), Error);
}

// ---- Extreme inputs ----

TEST(ExtremeInputs, HugeValuesAtTightBoundThrowCleanly) {
  const core::StreamCodec codec;
  std::vector<f32> huge(64, 3.0e9f);
  huge[0] = 0.0f;  // force a nonzero value range
  EXPECT_THROW(codec.compress(huge, core::ErrorBound::absolute(1e-6)), Error);
}

TEST(ExtremeInputs, DenormalsAndTinyValuesRoundTrip) {
  std::vector<f32> tiny(320);
  Rng rng(5);
  for (auto& v : tiny) {
    v = static_cast<f32>(rng.uniform(-1e-38, 1e-38));
  }
  const core::StreamCodec codec;
  const auto result = codec.compress(tiny, core::ErrorBound::absolute(1e-20));
  const auto back = codec.decompress(result.stream);
  EXPECT_LE(test::max_err(tiny, back), 1e-20 + test::f32_ulp_slack(tiny));
}

TEST(ExtremeInputs, AlternatingExtremesRoundTrip) {
  std::vector<f32> data(320);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = (i % 2) ? 1000.0f : -1000.0f;
  }
  const core::StreamCodec codec;
  const auto result = codec.compress(data, core::ErrorBound::relative(1e-4));
  const auto back = codec.decompress(result.stream);
  EXPECT_LE(test::max_err(data, back),
            result.eps_abs + test::f32_ulp_slack(data));
}

TEST(ExtremeInputs, SingleElementStream) {
  const core::StreamCodec codec;
  const std::vector<f32> one = {42.0f};
  const auto result = codec.compress(one, core::ErrorBound::absolute(0.5));
  const auto back = codec.decompress(result.stream);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_NEAR(back[0], 42.0f, 0.5);
}

}  // namespace
}  // namespace ceresz
