#include "core/lorenzo.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace ceresz::core {
namespace {

TEST(Lorenzo, ForwardFirstOrderDifference) {
  const std::vector<i32> in = {5, 7, 4, 4, -2};
  std::vector<i32> out(in.size());
  lorenzo_forward(in, out);
  EXPECT_EQ(out, (std::vector<i32>{5, 2, -3, 0, -6}));
}

TEST(Lorenzo, InverseIsPrefixSum) {
  const std::vector<i32> in = {5, 2, -3, 0, -6};
  std::vector<i32> out(in.size());
  lorenzo_inverse(in, out);
  EXPECT_EQ(out, (std::vector<i32>{5, 7, 4, 4, -2}));
}

TEST(Lorenzo, RoundTripInPlace) {
  Rng rng(3);
  std::vector<i32> data(512);
  for (auto& v : data) v = static_cast<i32>(rng.next_below(20001)) - 10000;
  const std::vector<i32> original = data;
  lorenzo_forward(data, data);
  lorenzo_inverse(data, data);
  EXPECT_EQ(data, original);
}

TEST(Lorenzo, EmptyIsNoop) {
  std::vector<i32> empty;
  lorenzo_forward(empty, empty);
  lorenzo_inverse(empty, empty);
  EXPECT_TRUE(empty.empty());
}

TEST(Lorenzo, SingleElement) {
  std::vector<i32> one = {42};
  lorenzo_forward(one, one);
  EXPECT_EQ(one[0], 42);
  lorenzo_inverse(one, one);
  EXPECT_EQ(one[0], 42);
}

TEST(Lorenzo, ForwardOverflowThrows) {
  const std::vector<i32> in = {-2000000000, 2000000000};
  std::vector<i32> out(2);
  EXPECT_THROW(lorenzo_forward(in, out), Error);
}

TEST(Lorenzo, SizeMismatchThrows) {
  const std::vector<i32> in = {1, 2};
  std::vector<i32> out(1);
  EXPECT_THROW(lorenzo_forward(in, out), Error);
  EXPECT_THROW(lorenzo_inverse(in, out), Error);
}

// Property: round trip holds for adversarial block contents.
class LorenzoRoundTrip : public ::testing::TestWithParam<u64> {};

TEST_P(LorenzoRoundTrip, Holds) {
  Rng rng(GetParam());
  std::vector<i32> data(256);
  for (auto& v : data) {
    v = static_cast<i32>(rng.next_below(1u << 20)) - (1 << 19);
  }
  std::vector<i32> fwd(data.size()), back(data.size());
  lorenzo_forward(data, fwd);
  lorenzo_inverse(fwd, back);
  EXPECT_EQ(back, data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LorenzoRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ceresz::core
