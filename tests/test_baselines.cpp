#include "baselines/compressor.h"

#include <gtest/gtest.h>

#include "baselines/device_model.h"
#include "common/error.h"
#include "common/stats.h"
#include "core/stream_codec.h"
#include "data/generators.h"
#include "test_util.h"

namespace ceresz::baselines {
namespace {

data::Field field_1d(std::vector<f32> values, std::string name = "f") {
  data::Field f;
  f.dataset = "test";
  f.name = std::move(name);
  f.dims = {values.size()};
  f.values = std::move(values);
  return f;
}

data::Field field_2d(std::size_t h, std::size_t w, u64 seed = 3) {
  data::Field f;
  f.dataset = "test";
  f.name = "grid";
  f.dims = {h, w};
  f.values.resize(h * w);
  Rng rng(seed);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      f.values[y * w + x] = static_cast<f32>(
          std::sin(x / 9.0) * std::cos(y / 7.0) + 0.0002 * rng.next_gaussian());
    }
  }
  return f;
}

// Round trip + bound for every baseline, every bound, 1-D and 2-D.
class BaselineRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, f64, int>> {
 protected:
  std::unique_ptr<Compressor> make(int which) {
    switch (which) {
      case 0: return make_szp();
      case 1: return make_cuszp();
      case 2: return make_sz3();
      default: return make_cusz();
    }
  }
};

TEST_P(BaselineRoundTrip, ErrorBoundHolds) {
  const auto [which, rel, shape] = GetParam();
  const auto codec = make(which);
  data::Field f;
  switch (shape) {
    case 0: f = field_1d(test::smooth_signal(5000)); break;
    case 1: f = field_2d(50, 80); break;
    default: f = field_1d(test::sparse_signal(5000, 7, 0.05)); break;
  }
  BaselineStats stats;
  const auto stream = codec->compress(f, core::ErrorBound::relative(rel),
                                      &stats);
  EXPECT_EQ(stats.element_count, f.values.size());
  EXPECT_EQ(stats.compressed_bytes, stream.size());
  const auto back = codec->decompress(stream);
  ASSERT_EQ(back.size(), f.values.size());
  EXPECT_LE(test::max_err(f.values, back),
            stats.eps_abs + test::f32_ulp_slack(f.values))
      << codec->name();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineRoundTrip,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(1e-2, 1e-3, 1e-4),
                       ::testing::Range(0, 3)));

TEST(Baselines, SzpBeatsCereszHeaderCapOnSparseData) {
  // All-zero data: SZp's 1-byte headers cap at 128x (Section 5.3).
  const auto szp = make_szp();
  data::Field zeros = field_1d(std::vector<f32>(32 * 1024, 0.0f));
  BaselineStats stats;
  szp->compress(zeros, core::ErrorBound::absolute(1e-3), &stats);
  EXPECT_NEAR(stats.compression_ratio(), 128.0, 3.0);
}

TEST(Baselines, CuszpOffsetTableCostsALittle) {
  const auto szp = make_szp();
  const auto cuszp = make_cuszp();
  const data::Field f = field_1d(test::smooth_signal(32 * 512));
  BaselineStats s1, s2;
  szp->compress(f, core::ErrorBound::relative(1e-3), &s1);
  cuszp->compress(f, core::ErrorBound::relative(1e-3), &s2);
  EXPECT_GE(s1.compression_ratio(), s2.compression_ratio());
  EXPECT_NEAR(s1.compression_ratio(), s2.compression_ratio(),
              0.05 * s1.compression_ratio());
}

TEST(Baselines, Sz3HighestRatioOnSmoothMultiDimData) {
  // Table 5's headline: SZ's spatial prediction + entropy coding dominates
  // ratio on smooth fields.
  const data::Field f = field_2d(96, 96, 11);
  BaselineStats sz3_stats, szp_stats, cusz_stats;
  make_sz3()->compress(f, core::ErrorBound::relative(1e-3), &sz3_stats);
  make_szp()->compress(f, core::ErrorBound::relative(1e-3), &szp_stats);
  make_cusz()->compress(f, core::ErrorBound::relative(1e-3), &cusz_stats);
  EXPECT_GT(sz3_stats.compression_ratio(), szp_stats.compression_ratio());
  EXPECT_GT(sz3_stats.compression_ratio(), cusz_stats.compression_ratio());
}

TEST(Baselines, Sz3HandlesOutliers) {
  // Spikes exceed the bin radius -> outlier path, still bounded.
  auto values = test::smooth_signal(4000);
  values[100] = 5.0e8f;
  values[2000] = -7.0e8f;
  const data::Field f = field_1d(std::move(values));
  const auto sz3 = make_sz3();
  BaselineStats stats;
  const auto stream = sz3->compress(f, core::ErrorBound::absolute(1e-4),
                                    &stats);
  EXPECT_GT(stats.outliers, 0u);
  const auto back = sz3->decompress(stream);
  EXPECT_LE(test::max_err(f.values, back),
            1e-4 + test::f32_ulp_slack(f.values));
}

TEST(Baselines, CuszMatchesCereszReconstructionExactly) {
  // Both use the same pre-quantization, so the reconstructed values are
  // identical under the same absolute bound (Section 5.4).
  const data::Field f = field_1d(test::smooth_signal(32 * 64));
  const core::ErrorBound bound = core::ErrorBound::absolute(1e-3);
  const auto cusz = make_cusz();
  const auto cusz_back = cusz->decompress(cusz->compress(f, bound, nullptr));

  core::StreamCodec ceresz_codec;
  const auto ceresz_back =
      ceresz_codec.decompress(ceresz_codec.compress(f.values, bound).stream);
  EXPECT_EQ(cusz_back, ceresz_back);
}

TEST(Baselines, RejectForeignStreams) {
  const std::vector<u8> junk = {'X', 'X', 'X', 'X', 1, 2, 3};
  EXPECT_THROW(make_sz3()->decompress(junk), Error);
  EXPECT_THROW(make_cusz()->decompress(junk), Error);
  EXPECT_THROW(make_szp()->decompress(junk), Error);
}

TEST(DeviceModel, OrderingMatchesPaper) {
  BaselineStats dense;
  dense.zero_fraction = 0.0;
  dense.mean_code_bits = 10.0;
  const f64 cuszp = cuszp_model().compress_gbps(dense);
  const f64 szp = szp_model().compress_gbps(dense);
  const f64 cusz = cusz_model().compress_gbps(dense);
  const f64 sz3 = sz3_model().compress_gbps(dense);
  // Fig. 11: cuSZp > cuSZ > SZp > SZ.
  EXPECT_GT(cuszp, cusz);
  EXPECT_GT(cusz, szp);
  EXPECT_GT(szp, sz3);
  EXPECT_LT(sz3, 1.0);  // "routinely less than 1 GB/s"
  // Dense-data cuSZp sits below the ~93 GB/s paper-implied average (the
  // average includes zero-block-boosted sparse datasets).
  EXPECT_GT(cuszp, 55.0);
  EXPECT_LT(cuszp, 95.0);
}

TEST(DeviceModel, ZeroBlocksSpeedUpBlockwiseCodecs) {
  BaselineStats dense, sparse;
  dense.zero_fraction = 0.0;
  dense.mean_code_bits = 10.0;
  sparse.zero_fraction = 0.9;
  sparse.mean_code_bits = 2.0;
  EXPECT_GT(cuszp_model().compress_gbps(sparse),
            cuszp_model().compress_gbps(dense));
}

TEST(DeviceModel, DecompressionFactors) {
  BaselineStats s;
  s.mean_code_bits = 8.0;
  EXPECT_GT(cuszp_model().decompress_gbps(s), cuszp_model().compress_gbps(s));
  EXPECT_LT(cusz_model().decompress_gbps(s), cusz_model().compress_gbps(s));
}

}  // namespace
}  // namespace ceresz::baselines
