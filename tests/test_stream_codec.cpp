#include "core/stream_codec.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "test_util.h"

namespace ceresz::core {
namespace {

TEST(StreamCodec, RoundTripSmooth) {
  const StreamCodec codec;
  const auto data = test::smooth_signal(10000);
  const auto result = codec.compress(data, ErrorBound::absolute(1e-3));
  EXPECT_EQ(result.element_count, data.size());
  EXPECT_GT(result.compression_ratio(), 1.0);

  const auto back = codec.decompress(result.stream);
  ASSERT_EQ(back.size(), data.size());
  EXPECT_LE(test::max_err(data, back), 1e-3);
}

TEST(StreamCodec, RelativeBoundUsesValueRange) {
  const StreamCodec codec;
  auto data = test::smooth_signal(4096);
  // Scale so the value range is ~200; REL 1e-3 -> eps ~0.2.
  for (auto& v : data) v *= 100.0f;
  const auto result = codec.compress(data, ErrorBound::relative(1e-3));
  f32 lo = data[0], hi = data[0];
  for (f32 v : data) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_NEAR(result.eps_abs, (hi - lo) * 1e-3, 1e-9);
  const auto back = codec.decompress(result.stream);
  EXPECT_LE(test::max_err(data, back), result.eps_abs);
}

TEST(StreamCodec, TailBlockHandled) {
  const StreamCodec codec;
  for (std::size_t n : {1u, 31u, 32u, 33u, 100u, 1023u}) {
    const auto data = test::smooth_signal(n);
    const auto result = codec.compress(data, ErrorBound::absolute(1e-2));
    const auto back = codec.decompress(result.stream);
    ASSERT_EQ(back.size(), n) << "n=" << n;
    EXPECT_LE(test::max_err(data, back), 1e-2) << "n=" << n;
  }
}

TEST(StreamCodec, SparseDataApproachesHeaderCap) {
  // All-zero data: every block is a bare header. With 4-byte headers the
  // cap is 32x (CereSZ); with 1-byte headers 128x (SZp/cuSZp).
  const std::vector<f32> zeros(32 * 4096, 0.0f);

  const StreamCodec ceresz_codec;  // default: 4-byte headers
  const auto r4 = ceresz_codec.compress(zeros, ErrorBound::absolute(1e-2));
  EXPECT_NEAR(r4.compression_ratio(), 32.0, 0.5);

  CodecConfig szp;
  szp.header_bytes = 1;
  const StreamCodec szp_codec(szp);
  const auto r1 = szp_codec.compress(zeros, ErrorBound::absolute(1e-2));
  EXPECT_NEAR(r1.compression_ratio(), 128.0, 2.0);
}

TEST(StreamCodec, StatsTrackZeroBlocks) {
  const StreamCodec codec;
  auto data = test::sparse_signal(32 * 100, 21, 0.01);
  const auto result = codec.compress(data, ErrorBound::absolute(1e-1));
  EXPECT_EQ(result.stats.total_blocks, 100u);
  EXPECT_GT(result.stats.zero_blocks, 0u);
  EXPECT_LT(result.stats.zero_blocks, 100u);
  u64 hist_total = 0;
  for (u64 c : result.stats.fl_histogram) hist_total += c;
  EXPECT_EQ(hist_total, result.stats.total_blocks);
}

TEST(StreamCodec, LargerBoundNeverLowersRatio) {
  const StreamCodec codec;
  const auto data = test::smooth_signal(32 * 512);
  f64 prev_ratio = 0.0;
  for (f64 rel : {1e-4, 1e-3, 1e-2}) {
    const auto r = codec.compress(data, ErrorBound::relative(rel));
    EXPECT_GE(r.compression_ratio(), prev_ratio);
    prev_ratio = r.compression_ratio();
  }
}

TEST(StreamCodec, RejectsForeignStream) {
  const StreamCodec codec;
  std::vector<u8> junk = {'N', 'O', 'P', 'E', 0, 0, 0, 0, 0, 0, 0, 0,
                          0,   0,   0,   0,   0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_THROW(codec.decompress(junk), Error);
}

TEST(StreamCodec, RejectsMismatchedConfig) {
  const StreamCodec writer;  // 4-byte headers
  CodecConfig other;
  other.header_bytes = 1;
  const StreamCodec reader(other);
  const auto data = test::smooth_signal(64);
  const auto result = writer.compress(data, ErrorBound::absolute(1e-2));
  EXPECT_THROW(reader.decompress(result.stream), Error);
}

TEST(StreamCodec, RejectsTruncatedStream) {
  const StreamCodec codec;
  const auto data = test::smooth_signal(4096);
  const auto result = codec.compress(data, ErrorBound::absolute(1e-3));
  std::span<const u8> cut(result.stream.data(), result.stream.size() / 2);
  EXPECT_THROW(codec.decompress(cut), Error);
}

TEST(StreamCodec, EmptyInput) {
  const StreamCodec codec;
  const std::vector<f32> empty;
  const auto result = codec.compress(empty, ErrorBound::absolute(1e-3));
  EXPECT_EQ(result.element_count, 0u);
  const auto back = codec.decompress(result.stream);
  EXPECT_TRUE(back.empty());
}

TEST(StreamCodec, ConstantFieldWithRelativeBound) {
  // A constant field has zero value range; REL bounds must still work.
  const StreamCodec codec;
  const std::vector<f32> flat(320, 3.5f);
  const auto result = codec.compress(flat, ErrorBound::relative(1e-3));
  const auto back = codec.decompress(result.stream);
  EXPECT_LE(test::max_err(flat, back), result.eps_abs);
}

// Property sweep: bound x signal shape x block size.
class StreamRoundTrip
    : public ::testing::TestWithParam<std::tuple<f64, int, u32>> {};

TEST_P(StreamRoundTrip, ErrorBoundHolds) {
  const auto [rel, kind, block_size] = GetParam();
  std::vector<f32> data;
  switch (kind) {
    case 0: data = test::smooth_signal(5000); break;
    case 1: data = test::random_signal(5000, 3, -1000.0, 1000.0); break;
    default: data = test::sparse_signal(5000, 5, 0.1); break;
  }
  CodecConfig cfg;
  cfg.block_size = block_size;
  const StreamCodec codec(cfg);
  const auto result = codec.compress(data, ErrorBound::relative(rel));
  const auto back = codec.decompress(result.stream);
  ASSERT_EQ(back.size(), data.size());
  EXPECT_LE(test::max_err(data, back), result.eps_abs);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StreamRoundTrip,
    ::testing::Combine(::testing::Values(1e-2, 1e-3, 1e-4),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values(16u, 32u, 64u, 128u)));

}  // namespace
}  // namespace ceresz::core
