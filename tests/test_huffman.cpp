#include "huffman/huffman.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace ceresz::huffman {
namespace {

std::vector<u32> encode_decode(const std::vector<u32>& symbols) {
  const HuffmanCodec codec = HuffmanCodec::from_symbols(symbols);
  BitWriter w;
  codec.encode(symbols, w);
  const auto bytes = w.finish();
  BitReader r(bytes.data(), bytes.size());
  return codec.decode(r, symbols.size());
}

TEST(Huffman, RoundTripSmallAlphabet) {
  const std::vector<u32> symbols = {1, 2, 2, 3, 3, 3, 3, 1, 2, 3};
  EXPECT_EQ(encode_decode(symbols), symbols);
}

TEST(Huffman, SingleSymbolAlphabet) {
  const std::vector<u32> symbols(100, 42);
  EXPECT_EQ(encode_decode(symbols), symbols);
  const HuffmanCodec codec = HuffmanCodec::from_symbols(symbols);
  EXPECT_EQ(codec.code_length(42), 1);
}

TEST(Huffman, SkewedDistributionGetsShortCodes) {
  std::vector<u32> symbols(10000, 7);
  symbols.push_back(1);
  symbols.push_back(2);
  const HuffmanCodec codec = HuffmanCodec::from_symbols(symbols);
  EXPECT_LT(codec.code_length(7), codec.code_length(1));
  EXPECT_EQ(codec.code_length(7), 1);
}

TEST(Huffman, CompressesSkewedData) {
  Rng rng(5);
  std::vector<u32> symbols(20000);
  for (auto& s : symbols) {
    // Geometric-ish: mostly 0.
    const u64 r = rng.next_below(100);
    s = r < 80 ? 0 : (r < 95 ? 1 : static_cast<u32>(rng.next_below(50)));
  }
  const HuffmanCodec codec = HuffmanCodec::from_symbols(symbols);
  BitWriter w;
  codec.encode(symbols, w);
  const auto bytes = w.finish();
  // Entropy is well under 2 bits/symbol; Huffman should get close.
  EXPECT_LT(bytes.size() * 8, symbols.size() * 2);
  BitReader r(bytes.data(), bytes.size());
  EXPECT_EQ(codec.decode(r, symbols.size()), symbols);
}

TEST(Huffman, LargeRandomAlphabetRoundTrip) {
  Rng rng(17);
  std::vector<u32> symbols(5000);
  for (auto& s : symbols) s = static_cast<u32>(rng.next_below(1000));
  EXPECT_EQ(encode_decode(symbols), symbols);
}

TEST(Huffman, TableSerializationRoundTrip) {
  Rng rng(23);
  std::vector<u32> symbols(3000);
  for (auto& s : symbols) s = static_cast<u32>(rng.next_below(200));
  const HuffmanCodec codec = HuffmanCodec::from_symbols(symbols);

  std::vector<u8> table;
  codec.serialize_table(table);
  std::size_t consumed = 0;
  const HuffmanCodec parsed =
      HuffmanCodec::deserialize_table(table, consumed);
  EXPECT_EQ(consumed, table.size());
  EXPECT_EQ(parsed.alphabet_size(), codec.alphabet_size());

  BitWriter w;
  codec.encode(symbols, w);
  const auto bytes = w.finish();
  BitReader r(bytes.data(), bytes.size());
  EXPECT_EQ(parsed.decode(r, symbols.size()), symbols);
}

TEST(Huffman, UnknownSymbolThrows) {
  const std::vector<u32> symbols = {1, 2, 3};
  const HuffmanCodec codec = HuffmanCodec::from_symbols(symbols);
  BitWriter w;
  const std::vector<u32> bad = {99};
  EXPECT_THROW(codec.encode(bad, w), Error);
  EXPECT_EQ(codec.code_length(99), 0);
}

TEST(Huffman, EmptyHistogramThrows) {
  EXPECT_THROW(HuffmanCodec::from_histogram({}), Error);
}

TEST(Huffman, CorruptTableThrows) {
  std::vector<u8> junk = {1, 0, 0};
  std::size_t consumed;
  EXPECT_THROW(HuffmanCodec::deserialize_table(junk, consumed), Error);
}

TEST(Huffman, KraftInequalityHolds) {
  Rng rng(31);
  std::vector<u32> symbols(4000);
  for (auto& s : symbols) s = static_cast<u32>(rng.next_below(500));
  const HuffmanCodec codec = HuffmanCodec::from_symbols(symbols);
  long double kraft = 0;
  for (u32 s = 0; s < 500; ++s) {
    const int len = codec.code_length(s);
    if (len > 0) kraft += std::pow(2.0L, -len);
  }
  EXPECT_LE(kraft, 1.0L + 1e-12L);
}

// Property: round trip across seeds and alphabet sizes.
class HuffmanRoundTrip
    : public ::testing::TestWithParam<std::tuple<u64, u32>> {};

TEST_P(HuffmanRoundTrip, Holds) {
  const auto [seed, alphabet] = GetParam();
  Rng rng(seed);
  std::vector<u32> symbols(2000);
  for (auto& s : symbols) s = static_cast<u32>(rng.next_below(alphabet));
  EXPECT_EQ(encode_decode(symbols), symbols);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HuffmanRoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(2u, 10u, 256u, 65536u)));

}  // namespace
}  // namespace ceresz::huffman
