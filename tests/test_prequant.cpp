#include "core/prequant.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "test_util.h"

namespace ceresz::core {
namespace {

TEST(Prequant, PaperExample) {
  // Section 3: eps = 0.1, value 0.83 -> round(0.83/0.2) = 4, error 0.03.
  const std::vector<f32> in = {0.83f};
  std::vector<i32> out(1);
  prequant(in, out, 0.2);
  EXPECT_EQ(out[0], 4);
  std::vector<f32> back(1);
  dequant(out, back, 0.2);
  EXPECT_NEAR(back[0], 0.8, 1e-6);
  EXPECT_LE(std::fabs(back[0] - in[0]), 0.1);
}

TEST(Prequant, RoundsToNearest) {
  const std::vector<f32> in = {0.0f, 0.99f, 1.01f, -0.99f, -1.01f, 2.5f};
  std::vector<i32> out(in.size());
  prequant(in, out, 2.0);  // eps = 1
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 0);   // 0.495 + 0.5 = 0.995 -> floor 0
  EXPECT_EQ(out[2], 1);   // 0.505 + 0.5 = 1.005 -> floor 1
  EXPECT_EQ(out[3], 0);   // -0.495 + 0.5 = 0.005 -> floor 0
  EXPECT_EQ(out[4], -1);  // -0.505 + 0.5 = -0.005 -> floor -1
  EXPECT_EQ(out[5], 1);   // 1.25 + 0.5 = 1.75 -> floor 1
}

TEST(Prequant, SubStagesComposeToFused) {
  const auto in = test::smooth_signal(256);
  const f64 eps = 1e-3;
  std::vector<f64> scratch(in.size());
  std::vector<i32> split(in.size()), fused(in.size());
  prequant_multiply(in, scratch, 1.0 / (2.0 * eps));
  prequant_add_floor(scratch, split);
  prequant(in, fused, 2.0 * eps);
  EXPECT_EQ(split, fused);
}

TEST(Prequant, ThrowsOnOverflow) {
  const std::vector<f32> in = {3.0e9f};
  std::vector<i32> out(1);
  EXPECT_THROW(prequant(in, out, 1e-3), Error);
}

TEST(Prequant, ThrowsOnNonPositiveBound) {
  const std::vector<f32> in = {1.0f};
  std::vector<i32> out(1);
  EXPECT_THROW(prequant(in, out, 0.0), Error);
  EXPECT_THROW(prequant(in, out, -1.0), Error);
}

TEST(Prequant, SizeMismatchThrows) {
  const std::vector<f32> in = {1.0f, 2.0f};
  std::vector<i32> out(1);
  EXPECT_THROW(prequant(in, out, 0.1), Error);
}

// Property: for every element, |dequant(prequant(x)) - x| <= eps.
class PrequantBoundProperty : public ::testing::TestWithParam<f64> {};

TEST_P(PrequantBoundProperty, ErrorWithinBound) {
  const f64 eps = GetParam();
  for (u64 seed : {1ull, 2ull, 3ull}) {
    const auto in = test::random_signal(1024, seed, -50.0, 50.0);
    std::vector<i32> q(in.size());
    std::vector<f32> back(in.size());
    prequant(in, q, 2.0 * eps);
    dequant(q, back, 2.0 * eps);
    // The bound is exact up to the f32 output representation (half an ulp
    // at the data's magnitude) — the same caveat every f32 codec carries.
    EXPECT_LE(test::max_err(in, back), eps + test::f32_ulp_slack(in))
        << "eps=" << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PrequantBoundProperty,
                         ::testing::Values(1e-1, 1e-2, 1e-3, 1e-4, 0.5, 2.0));

}  // namespace
}  // namespace ceresz::core
