#include "mapping/pipeline_program.h"

#include <gtest/gtest.h>

#include "core/stream_codec.h"
#include "mapping/wafer_mapper.h"
#include "test_util.h"

namespace ceresz::mapping {
namespace {

// Build a single-row fabric by hand to probe program-level behavior that
// the WaferMapper tests do not see directly.

std::vector<RowBlock> make_blocks(const std::vector<f32>& data, u32 L) {
  std::vector<RowBlock> blocks;
  for (std::size_t b = 0; b * L < data.size(); ++b) {
    RowBlock rb;
    rb.extent = L;
    rb.tag = b;
    rb.work = std::make_shared<BlockWork>();
    rb.work->input.assign(data.begin() + b * L, data.begin() + (b + 1) * L);
    blocks.push_back(std::move(rb));
  }
  return blocks;
}

PipelinePlan make_plan(u32 fl, u32 pl) {
  GreedyScheduler sched(core::PeCostModel{}, 32);
  return sched.distribute(core::compression_substages(fl), pl);
}

TEST(PipelineProgram, EveryPipelineHeadKeepsItsShare) {
  // 4 pipelines of length 1, 8 blocks -> 2 rounds; each head emits 2.
  const auto data = test::smooth_signal(32 * 8);
  wse::WseConfig cfg;
  cfg.rows = 1;
  cfg.cols = 4;
  wse::Fabric fabric(cfg);
  auto exec = std::make_shared<const SubStageExecutor>(
      core::CodecConfig{}, core::PeCostModel{}, 1e-3);
  const PipelinePlan plan = make_plan(8, 1);
  build_row_program(fabric, 0, plan, PipeDirection::kCompress, exec,
                    make_blocks(data, 32));
  fabric.run();
  ASSERT_EQ(fabric.results().size(), 8u);
  std::vector<int> per_col(4, 0);
  for (const auto& r : fabric.results()) ++per_col[r.col];
  for (int c = 0; c < 4; ++c) EXPECT_EQ(per_col[c], 2) << "col " << c;
}

TEST(PipelineProgram, HeadRelayCountsMatchFig9) {
  // Head h forwards (n_pipes - 1 - h) blocks per round.
  const auto data = test::smooth_signal(32 * 6);
  wse::WseConfig cfg;
  cfg.rows = 1;
  cfg.cols = 3;
  wse::Fabric fabric(cfg);
  auto exec = std::make_shared<const SubStageExecutor>(
      core::CodecConfig{}, core::PeCostModel{}, 1e-3);
  const PipelinePlan plan = make_plan(8, 1);
  build_row_program(fabric, 0, plan, PipeDirection::kCompress, exec,
                    make_blocks(data, 32));
  fabric.run();
  // 2 rounds: head 0 relays 2 per round, head 1 relays 1, head 2 none.
  EXPECT_EQ(fabric.stats(0, 0).messages_relayed, 4u);
  EXPECT_EQ(fabric.stats(0, 1).messages_relayed, 2u);
  EXPECT_EQ(fabric.stats(0, 2).messages_relayed, 0u);
}

TEST(PipelineProgram, StagePesOnlyTouchTheirGroup) {
  // With PL = 2 over 4 columns, results come from the last PE of each
  // pipeline (columns 1 and 3).
  const auto data = test::smooth_signal(32 * 4);
  wse::WseConfig cfg;
  cfg.rows = 1;
  cfg.cols = 4;
  wse::Fabric fabric(cfg);
  auto exec = std::make_shared<const SubStageExecutor>(
      core::CodecConfig{}, core::PeCostModel{}, 1e-3);
  const PipelinePlan plan = make_plan(8, 2);
  build_row_program(fabric, 0, plan, PipeDirection::kCompress, exec,
                    make_blocks(data, 32));
  fabric.run();
  ASSERT_EQ(fabric.results().size(), 4u);
  for (const auto& r : fabric.results()) {
    EXPECT_TRUE(r.col == 1 || r.col == 3) << "col " << r.col;
  }
  // Heads computed (busy) and stage PEs computed: all 4 PEs ran tasks.
  for (u32 c = 0; c < 4; ++c) {
    EXPECT_GT(fabric.stats(0, c).busy_cycles, 0u) << "col " << c;
  }
}

TEST(PipelineProgram, MemoryAccountingEnforced) {
  // A block too large for 48 KB SRAM must be rejected at program build,
  // exactly as assumption 2 of Section 4.4 demands.
  wse::WseConfig cfg;
  cfg.rows = 1;
  cfg.cols = 1;
  wse::Fabric fabric(cfg);
  core::CodecConfig codec;
  codec.block_size = 8192;  // 8K floats: scratch alone is 64 KB
  auto exec = std::make_shared<const SubStageExecutor>(
      codec, core::PeCostModel{}, 1e-3);
  GreedyScheduler sched(core::PeCostModel{}, codec.block_size);
  const PipelinePlan plan =
      sched.distribute(core::compression_substages(8), 1);
  std::vector<RowBlock> blocks(1);
  blocks[0].extent = 8192;
  blocks[0].tag = 0;
  blocks[0].work = std::make_shared<BlockWork>();
  blocks[0].work->input.assign(8192, 0.0f);
  EXPECT_THROW(build_row_program(fabric, 0, plan, PipeDirection::kCompress,
                                 exec, std::move(blocks)),
               Error);
}

TEST(PipelineProgram, RejectsUnevenBlockCount) {
  wse::WseConfig cfg;
  cfg.rows = 1;
  cfg.cols = 2;
  wse::Fabric fabric(cfg);
  auto exec = std::make_shared<const SubStageExecutor>(
      core::CodecConfig{}, core::PeCostModel{}, 1e-3);
  const PipelinePlan plan = make_plan(8, 1);
  const auto data = test::smooth_signal(32 * 3);  // 3 blocks, 2 pipes
  EXPECT_THROW(build_row_program(fabric, 0, plan, PipeDirection::kCompress,
                                 exec, make_blocks(data, 32)),
               Error);
}

TEST(PipelineProgram, LongerPipelineUsesLowerPeakMemory) {
  // The motivation for pipelines (Section 4.4): splitting stages across
  // PEs splits the working set.
  auto peak_for = [](u32 pl) {
    wse::WseConfig cfg;
    cfg.rows = 1;
    cfg.cols = pl;
    cfg.sram_bytes = 1 << 20;  // plenty, we only observe accounting
    wse::Fabric fabric(cfg);
    auto exec = std::make_shared<const SubStageExecutor>(
        core::CodecConfig{}, core::PeCostModel{}, 1e-3);
    GreedyScheduler sched(core::PeCostModel{}, 32);
    const PipelinePlan plan =
        sched.distribute(core::compression_substages(16), pl);
    const auto data = test::smooth_signal(32);
    build_row_program(fabric, 0, plan, PipeDirection::kCompress, exec,
                      make_blocks(data, 32));
    std::size_t peak = 0;
    for (u32 c = 0; c < pl; ++c) {
      peak = std::max(peak, fabric.memory(0, c).peak());
    }
    return peak;
  };
  EXPECT_GT(peak_for(1), peak_for(4));
}

}  // namespace
}  // namespace ceresz::mapping
