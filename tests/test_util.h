// Shared helpers for the CereSZ test suite.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace ceresz::test {

/// Smooth sine wave plus mild noise: typical "scientific" data.
inline std::vector<f32> smooth_signal(std::size_t n, u64 seed = 7,
                                      f64 noise = 0.01) {
  Rng rng(seed);
  std::vector<f32> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const f64 x = static_cast<f64>(i) / 64.0;
    v[i] = static_cast<f32>(std::sin(x) + 0.4 * std::cos(2.7 * x) +
                            noise * rng.next_gaussian());
  }
  return v;
}

/// Uniform random values in [lo, hi): worst case for prediction.
inline std::vector<f32> random_signal(std::size_t n, u64 seed = 11,
                                      f64 lo = -1.0, f64 hi = 1.0) {
  Rng rng(seed);
  std::vector<f32> v(n);
  for (auto& x : v) x = static_cast<f32>(rng.uniform(lo, hi));
  return v;
}

/// Mostly-zero signal with a few bursts: exercises the zero-block path.
inline std::vector<f32> sparse_signal(std::size_t n, u64 seed = 13,
                                      f64 density = 0.05) {
  Rng rng(seed);
  std::vector<f32> v(n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.next_double() < density) {
      v[i] = static_cast<f32>(rng.uniform(-100.0, 100.0));
    }
  }
  return v;
}

/// Assert-friendly max |a - b|.
inline f64 max_err(std::span<const f32> a, std::span<const f32> b) {
  f64 worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(static_cast<f64>(a[i]) - b[i]));
  }
  return worst;
}

/// Half an f32 ulp at the data's largest magnitude: the unavoidable output
/// representation error of any single-precision codec. When ε approaches
/// the data's ulp, the reconstruction can miss the bound by up to this
/// much even though the quantization itself is exact.
inline f64 f32_ulp_slack(std::span<const f32> data) {
  f32 amax = 0.0f;
  for (f32 v : data) amax = std::max(amax, std::fabs(v));
  const f32 next = std::nextafter(amax, 4.0f * amax + 1.0f);
  return (static_cast<f64>(next) - amax) / 2.0;
}

}  // namespace ceresz::test
