#include "core/flenc.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.h"
#include "common/rng.h"

namespace ceresz::core {
namespace {

TEST(Flenc, SignSplitAndReapply) {
  const std::vector<i32> in = {0, -1, 2, -3, 4, -5, 6, -7};
  std::vector<u32> absv(8);
  std::vector<u8> signs(1);
  split_sign(in, absv, signs);
  EXPECT_EQ(absv, (std::vector<u32>{0, 1, 2, 3, 4, 5, 6, 7}));
  // Negative at indices 1,3,5,7 -> bits 0b10101010.
  EXPECT_EQ(signs[0], 0xAA);

  std::vector<i32> back(8);
  apply_sign(absv, signs, back);
  EXPECT_EQ(back, in);
}

TEST(Flenc, BlockMax) {
  EXPECT_EQ(block_max(std::vector<u32>{}), 0u);
  EXPECT_EQ(block_max(std::vector<u32>{3, 8, 1}), 8u);
}

TEST(Flenc, EffectiveBits) {
  EXPECT_EQ(effective_bits(0), 0u);
  EXPECT_EQ(effective_bits(1), 1u);
  EXPECT_EQ(effective_bits(7), 3u);
  EXPECT_EQ(effective_bits(8), 4u);  // paper: max 8 stored in four bits
  EXPECT_EQ(effective_bits(0xFFFFFFFFu), 32u);
}

TEST(Flenc, PaperFigure8Example) {
  // Figure 5(b)/8: block {8,-7,2,0,-3,4,2,1}, max abs 8 -> fl 4.
  const std::vector<i32> in = {8, -7, 2, 0, -3, 4, 2, 1};
  std::vector<u32> absv(8);
  std::vector<u8> signs(1);
  split_sign(in, absv, signs);
  EXPECT_EQ(block_max(absv), 8u);
  EXPECT_EQ(effective_bits(8), 4u);

  std::vector<u8> planes(4);  // 4 planes x 1 byte for L = 8
  bit_shuffle(absv, 4, planes);
  // Plane 0 (bit 0 of 8,7,2,0,3,4,2,1) = 0,1,0,0,1,0,0,1 -> 0b10010010.
  EXPECT_EQ(planes[0], 0x92);
  // Plane 3 (bit 3) only of value 8 (index 0) -> 0b00000001.
  EXPECT_EQ(planes[3], 0x01);

  std::vector<u32> back(8);
  bit_unshuffle(planes, 4, back);
  EXPECT_EQ(back, absv);
}

TEST(Flenc, SingleBitPlaneMatchesFullShuffle) {
  Rng rng(17);
  std::vector<u32> absv(32);
  for (auto& v : absv) v = static_cast<u32>(rng.next_below(1u << 13));
  const u32 fl = 13;
  std::vector<u8> full(fl * 4);
  bit_shuffle(absv, fl, full);
  for (u32 k = 0; k < fl; ++k) {
    std::vector<u8> plane(4);
    bit_shuffle_plane(absv, k, plane);
    for (int b = 0; b < 4; ++b) EXPECT_EQ(plane[b], full[k * 4 + b]);
  }
}

TEST(Flenc, NonMultipleOf8Throws) {
  std::vector<i32> in(7);
  std::vector<u32> absv(7);
  std::vector<u8> signs(1);
  EXPECT_THROW(split_sign(in, absv, signs), Error);
}

TEST(Flenc, WrongBufferSizesThrow) {
  std::vector<u32> absv(8);
  std::vector<u8> small(3);
  EXPECT_THROW(bit_shuffle(absv, 4, small), Error);
  std::vector<u32> out(8);
  EXPECT_THROW(bit_unshuffle(small, 4, out), Error);
}

TEST(Flenc, Int32MinimumMagnitudeIsExact) {
  // |INT32_MIN| overflows i32 but split_sign widens internally.
  const std::vector<i32> in = {std::numeric_limits<i32>::min(), 0, 0, 0,
                               0, 0, 0, 0};
  std::vector<u32> absv(8);
  std::vector<u8> signs(1);
  split_sign(in, absv, signs);
  EXPECT_EQ(absv[0], 2147483648u);
}

// Property: shuffle/unshuffle round trip across fixed lengths.
class ShuffleRoundTrip : public ::testing::TestWithParam<u32> {};

TEST_P(ShuffleRoundTrip, Holds) {
  const u32 fl = GetParam();
  Rng rng(fl + 100);
  std::vector<u32> absv(64);
  const u32 mask = fl >= 32 ? 0xFFFFFFFFu : ((1u << fl) - 1);
  for (auto& v : absv) v = static_cast<u32>(rng.next_u64()) & mask;
  std::vector<u8> planes(fl * 8);
  bit_shuffle(absv, fl, planes);
  std::vector<u32> back(64);
  bit_unshuffle(planes, fl, back);
  EXPECT_EQ(back, absv);
}

INSTANTIATE_TEST_SUITE_P(FixedLengths, ShuffleRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 12, 13, 16, 17,
                                           24, 31, 32));

}  // namespace
}  // namespace ceresz::core
