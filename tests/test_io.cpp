#include "io/file_io.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/error.h"
#include "core/stream_codec.h"
#include "data/generators.h"
#include "test_util.h"

namespace ceresz::io {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "ceresz_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(IoTest, BytesRoundTrip) {
  const std::vector<u8> bytes = {0, 1, 2, 254, 255};
  write_bytes(dir_ / "x.bin", bytes);
  EXPECT_EQ(read_bytes(dir_ / "x.bin"), bytes);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(read_bytes(dir_ / "missing.bin"), Error);
}

TEST_F(IoTest, RawFieldRoundTrip) {
  const data::Field f = data::generate_field(data::DatasetId::kQmcpack, 0,
                                             42, 0.3);
  write_raw_f32(dir_ / "field.f32", f);
  const data::Field back =
      read_raw_f32(dir_ / "field.f32", f.dims, "QMCPack", f.name);
  EXPECT_EQ(back.values, f.values);
  EXPECT_EQ(back.dims, f.dims);
}

TEST_F(IoTest, RawFieldDimMismatchThrows) {
  const data::Field f = data::generate_field(data::DatasetId::kQmcpack, 0,
                                             42, 0.3);
  write_raw_f32(dir_ / "field.f32", f);
  EXPECT_THROW(read_raw_f32(dir_ / "field.f32", {3, 3}), Error);
}

TEST_F(IoTest, CompressedStreamPersists) {
  const auto data = test::smooth_signal(32 * 100);
  const core::StreamCodec codec;
  const auto result = codec.compress(data, core::ErrorBound::relative(1e-3));
  write_bytes(dir_ / "stream.csz", result.stream);
  const auto loaded = read_bytes(dir_ / "stream.csz");
  const auto back = codec.decompress(loaded);
  EXPECT_LE(test::max_err(data, back), result.eps_abs);
}

}  // namespace
}  // namespace ceresz::io
