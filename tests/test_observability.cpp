// Observability suite: structured logging (obs::Logger), the ambient
// trace context, the SpanLog/TelemetryEndpoint live plane, the CSNP v4
// trace wire (fuzz + v3-client-vs-v4-server compat), the cross-process
// trace stitcher, and perfgate record provenance.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/chaos.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/analysis/stitch.h"
#include "obs/analysis/trace_analysis.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "test_util.h"

namespace ceresz {
namespace {

using namespace obs;
using namespace obs::analysis;

// --- structured logging -----------------------------------------------------

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(Logger, EmitsOneJsonObjectPerLineWithTypedFields) {
  std::ostringstream sink;
  LoggerOptions opt;
  opt.min_level = LogLevel::kInfo;
  opt.max_events_per_sec = 0;  // no rate limit
  opt.sink = &sink;
  Logger log(opt);

  log.info("server.started", {{"port", u32{9000}}, {"mode", "drain"}});
  log.warn("conn.reset", {{"request_id", u64{42}}, {"rate", 0.5}});
  log.debug("noise", {});  // below min_level: dropped silently

  const auto lines = lines_of(sink.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"event\":\"server.started\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"port\":9000"), std::string::npos);
  EXPECT_NE(lines[0].find("\"mode\":\"drain\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"request_id\":42"), std::string::npos);
  // Every line is a complete JSON object.
  for (const auto& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
  EXPECT_EQ(log.emitted(), 2u);
}

TEST(Logger, RateLimitShedsButErrorsAlwaysPass) {
  std::ostringstream sink;
  LoggerOptions opt;
  opt.max_events_per_sec = 5;  // 5-token bucket, refilled per second
  opt.sink = &sink;
  Logger log(opt);

  for (int i = 0; i < 50; ++i) log.info("flood", {{"i", i}});
  EXPECT_LE(log.emitted(), 6u);  // burst-bounded (tiny refill slack)
  EXPECT_GE(log.suppressed(), 40u);

  // Errors bypass the limiter even with the bucket empty — and the
  // first record through also flushes the "log.suppressed" accounting
  // line, so the shed records are visible in the log itself.
  const u64 before = log.emitted();
  log.error("crash", {{"what", "boom"}});
  EXPECT_EQ(log.emitted(), before + 2);
  EXPECT_NE(sink.str().find("\"event\":\"crash\""), std::string::npos);
  EXPECT_NE(sink.str().find("\"event\":\"log.suppressed\""),
            std::string::npos);
}

TEST(Logger, ConcurrentWritersNeverInterleaveWithinALine) {
  std::ostringstream sink;
  LoggerOptions opt;
  opt.max_events_per_sec = 0;
  opt.sink = &sink;
  Logger log(opt);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.info("tick", {{"writer", t}, {"seq", i}});
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto lines = lines_of(sink.str());
  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  for (const auto& l : lines) {
    // A torn line would break the one-object-per-line shape.
    ASSERT_EQ(l.front(), '{');
    ASSERT_EQ(l.back(), '}');
    ASSERT_NE(l.find("\"event\":\"tick\""), std::string::npos);
  }
  EXPECT_EQ(log.emitted(), static_cast<u64>(kThreads * kPerThread));
  EXPECT_EQ(log.suppressed(), 0u);
}

TEST(Logger, ParseLogLevel) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(parse_log_level("debug", level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(parse_log_level("error", level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(parse_log_level("loud", level));
  EXPECT_EQ(level, LogLevel::kError);  // untouched on failure
}

// --- ambient trace context --------------------------------------------------

TEST(TraceContext, AmbientContextFillsUntaggedEvents) {
  Tracer tracer;
  {
    const TraceContextScope scope(TraceContext{0xabc123, 77});
    TraceEvent ev;
    ev.name = "work";
    ev.dur_ns = 10;
    tracer.record(ev);  // trace_id == 0: inherits the ambient pair

    TraceEvent tagged;
    tagged.name = "explicit";
    tagged.trace_id = 0x999;
    tagged.parent_span_id = 5;
    tracer.record(tagged);  // already tagged: left alone
  }
  TraceEvent outside;
  outside.name = "after";
  tracer.record(outside);  // no ambient context: stays zero

  const auto events = tracer.snapshot_events();
  ASSERT_EQ(events.size(), 3u);
  const auto find = [&](const char* name) {
    return *std::find_if(events.begin(), events.end(), [&](const auto& e) {
      return std::string(e.name) == name;
    });
  };
  EXPECT_EQ(find("work").trace_id, 0xabc123u);
  EXPECT_EQ(find("work").parent_span_id, 77u);
  EXPECT_EQ(find("explicit").trace_id, 0x999u);
  EXPECT_EQ(find("explicit").parent_span_id, 5u);
  EXPECT_EQ(find("after").trace_id, 0u);
}

TEST(TraceContext, ScopesNestAndRestore) {
  EXPECT_FALSE(current_trace_context().active());
  {
    const TraceContextScope outer(TraceContext{1, 10});
    EXPECT_EQ(current_trace_context().trace_id, 1u);
    {
      const TraceContextScope inner(TraceContext{2, 20});
      EXPECT_EQ(current_trace_context().trace_id, 2u);
      EXPECT_EQ(current_trace_context().span_id, 20u);
    }
    EXPECT_EQ(current_trace_context().trace_id, 1u);
    EXPECT_EQ(current_trace_context().span_id, 10u);
  }
  EXPECT_FALSE(current_trace_context().active());
}

TEST(TraceContext, IdsAreUniqueNonzeroAnd48Bit) {
  std::set<u64> trace_ids;
  std::set<u64> span_ids;
  for (int i = 0; i < 1000; ++i) {
    const u64 t = next_trace_id();
    const u64 s = next_span_id();
    EXPECT_NE(t, 0u);
    EXPECT_NE(s, 0u);
    EXPECT_LT(t, u64{1} << 48);  // survives f64-backed JSON tooling
    trace_ids.insert(t);
    span_ids.insert(s);
  }
  EXPECT_EQ(trace_ids.size(), 1000u);
  EXPECT_EQ(span_ids.size(), 1000u);
}

// --- SpanLog and the telemetry endpoint -------------------------------------

TEST(SpanLog, DropsOldestKeepsCountAndRendersJson) {
  SpanLog log(/*capacity=*/4);
  for (u64 i = 1; i <= 6; ++i) {
    SpanRecord rec;
    rec.trace_id = i;
    rec.request_id = i;
    rec.name = "server.request";
    rec.status = "OK";
    log.push(rec);
  }
  EXPECT_EQ(log.pushed(), 6u);
  const auto snap = log.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().trace_id, 3u);  // 1 and 2 dropped
  EXPECT_EQ(snap.back().trace_id, 6u);
  const std::string json = log.to_json();
  EXPECT_NE(json.find("\"pushed\":6"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":6"), std::string::npos);
}

/// Minimal loopback HTTP GET, enough for the telemetry endpoint.
std::string http_get(u16 port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(Telemetry, ServesMetricsHealthzAndTracez) {
  MetricsRegistry reg;
  reg.counter("ceresz_test_requests_total").add(3);
  SpanLog spans;
  SpanRecord rec;
  rec.trace_id = 0xfeed;
  rec.request_id = 9;
  rec.name = "server.request";
  rec.status = "OK";
  spans.push(rec);

  TelemetryOptions opt;
  opt.port = 0;
  opt.metrics = &reg;
  opt.spans = &spans;
  TelemetryEndpoint endpoint(opt);
  endpoint.start();
  ASSERT_NE(endpoint.port(), 0);

  const std::string metrics = http_get(endpoint.port(), "/metrics");
  EXPECT_NE(metrics.find("200"), std::string::npos);
  EXPECT_NE(metrics.find("ceresz_test_requests_total 3"),
            std::string::npos);

  EXPECT_NE(http_get(endpoint.port(), "/healthz").find("ok"),
            std::string::npos);
  endpoint.set_draining(true);
  const std::string drained = http_get(endpoint.port(), "/healthz");
  EXPECT_NE(drained.find("503"), std::string::npos);
  EXPECT_NE(drained.find("draining"), std::string::npos);
  endpoint.set_draining(false);

  const std::string tracez = http_get(endpoint.port(), "/tracez");
  EXPECT_NE(tracez.find("\"request_id\":9"), std::string::npos);

  EXPECT_NE(http_get(endpoint.port(), "/nope").find("404"),
            std::string::npos);
  EXPECT_GE(endpoint.requests_served(), 5u);
  endpoint.stop();
}

// --- CSNP v4 wire -----------------------------------------------------------

TEST(ProtocolV4, HeaderFuzzNeverCrashesOrMisparses) {
  net::FrameHeader h;
  h.opcode = net::Opcode::kCompress;
  h.request_id = 7;
  h.trace = net::TraceTag{0x1234, 0x5678};
  std::vector<u8> good;
  net::append_frame_header(good, h);
  ASSERT_EQ(good.size(), net::kFrameHeaderBytesV4);

  // Every truncation of a valid v4 header is rejected, not read OOB.
  for (std::size_t n = 0; n < good.size(); ++n) {
    EXPECT_THROW(net::parse_frame_header(
                     std::span<const u8>(good.data(), n),
                     net::kDefaultMaxPayload),
                 Error)
        << "length " << n;
  }
  // Nonzero reserved bytes are rejected in v4 exactly as in v3.
  for (int i = 33; i < 36; ++i) {
    auto bad = good;
    bad[static_cast<std::size_t>(i)] = 1;
    EXPECT_THROW(net::parse_frame_header(bad, net::kDefaultMaxPayload),
                 Error);
  }
  // Random garbage either parses to a fully-validated header or throws;
  // it never crashes.
  Rng rng(20260807);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<u8> fuzz(net::kFrameHeaderBytesV4);
    for (auto& b : fuzz) b = static_cast<u8>(rng.next_u64());
    if (iter % 4 == 0) {  // bias toward near-valid frames
      fuzz = good;
      fuzz[rng.next_u64() % fuzz.size()] ^=
          static_cast<u8>(1u << (rng.next_u64() % 8));
    }
    try {
      const net::FrameHeader parsed =
          net::parse_frame_header(fuzz, net::kDefaultMaxPayload);
      EXPECT_TRUE(parsed.version == net::kProtocolVersion ||
                  parsed.version == net::kProtocolVersionV3);
      EXPECT_LE(parsed.payload_bytes, net::kDefaultMaxPayload);
    } catch (const Error&) {
      // Rejection is the expected outcome for most mutations.
    }
  }
}

TEST(ProtocolV4, ResponsesEchoTheRequestVersionAndTrace) {
  net::FrameHeader v3;
  v3.version = net::kProtocolVersionV3;
  v3.opcode = net::Opcode::kPing;
  v3.request_id = 11;
  const net::FrameMeta m3 = net::echo_meta(v3);
  EXPECT_EQ(m3.version, net::kProtocolVersionV3);
  std::vector<u8> frame;
  net::append_frame(frame, net::Opcode::kPing, net::Status::kOk, 11, {},
                    m3);
  // A v3 client must get a byte-exact 36-byte v3 header back.
  ASSERT_EQ(frame.size(), net::kFrameHeaderBytes);
  EXPECT_EQ(frame[4], net::kProtocolVersionV3);

  net::FrameHeader v4;
  v4.opcode = net::Opcode::kPing;
  v4.request_id = 12;
  v4.trace = net::TraceTag{0xaa55, 0x77};
  const net::FrameMeta m4 = net::echo_meta(v4);
  frame.clear();
  net::append_frame(frame, net::Opcode::kPing, net::Status::kOk, 12, {},
                    m4);
  ASSERT_EQ(frame.size(), net::kFrameHeaderBytesV4);
  const net::FrameHeader back =
      net::parse_frame_header(frame, net::kDefaultMaxPayload);
  EXPECT_EQ(back.trace.trace_id, 0xaa55u);
  EXPECT_EQ(back.trace.parent_span_id, 0x77u);
}

TEST(ProtocolV4, V3ClientAgainstV4ServerRoundTripsByteIdentically) {
  net::ServerOptions opt;
  opt.port = 0;
  opt.workers = 2;
  opt.engine.threads = 2;
  opt.engine.chunk_elems = 2048;
  SpanLog span_log;
  opt.span_log = &span_log;
  net::ServiceServer server(std::move(opt));
  server.start();

  const auto data = test::smooth_signal(4000);
  const auto bound = core::ErrorBound::relative(1e-3);
  const engine::ParallelEngine local{server.options().engine};
  const auto reference = local.compress(data, bound);

  net::CereszClient v4_client;
  v4_client.connect("127.0.0.1", server.port());
  const auto via_v4 = v4_client.compress(data, bound);

  net::CereszClient v3_client;
  v3_client.set_protocol_version(net::kProtocolVersionV3);
  v3_client.connect("127.0.0.1", server.port());
  const auto via_v3 = v3_client.compress(data, bound);
  const auto values = v3_client.decompress(via_v3);

  // The v3 path is served byte-identically to the v4 path and the local
  // engine; the local decompress of the reference matches too.
  EXPECT_EQ(via_v3, reference.stream);
  EXPECT_EQ(via_v4, reference.stream);
  EXPECT_EQ(values.size(), data.size());

  // The v3 frames carried no trace context, but the server synthesized
  // a trace id: every completed request is attributable regardless of
  // the client's wire version. (Records are pushed after the response
  // write — stop() joins the workers so all three are visible.)
  server.stop();
  const auto spans = span_log.snapshot();
  ASSERT_GE(spans.size(), 3u);
  for (const auto& s : spans) {
    EXPECT_NE(s.trace_id, 0u) << s.name;
  }
}

// --- the stitcher -----------------------------------------------------------

/// Hand-built golden: two client requests, the second with a RETRIED
/// attempt whose first try also executed server-side (truncated
/// response), so two server trees join to the same logical request 1:1.
TEST(Stitch, GoldenJoinIncludingDuplicateRetriedAttempts) {
  const auto span = [](const char* name, u32 tid, u64 ts, u64 dur,
                       std::map<std::string, i64> args) {
    Span s;
    s.name = name;
    s.tid = tid;
    s.ts_ns = ts;
    s.dur_ns = dur;
    s.args = std::move(args);
    return s;
  };
  constexpr i64 kTrace1 = 0x111, kTrace2 = 0x222;

  TraceData client;
  // Request 1: one attempt (span 101 under root 100).
  client.spans.push_back(span("client.request", 1, 1000, 9000,
                              {{"trace_id", kTrace1},
                               {"span_id", 100},
                               {"request_id", 1}}));
  client.spans.push_back(span("client.attempt", 1, 1500, 8000,
                              {{"trace_id", kTrace1},
                               {"span_id", 101},
                               {"parent_span_id", 100},
                               {"attempt", 1}}));
  // Request 2: attempt 201 dies (truncated response), attempt 202 wins.
  client.spans.push_back(span("client.request", 1, 20000, 30000,
                              {{"trace_id", kTrace2},
                               {"span_id", 200},
                               {"request_id", 2}}));
  client.spans.push_back(span("client.attempt", 1, 21000, 10000,
                              {{"trace_id", kTrace2},
                               {"span_id", 201},
                               {"parent_span_id", 200},
                               {"attempt", 1}}));
  client.spans.push_back(span("client.attempt", 1, 38000, 12000,
                              {{"trace_id", kTrace2},
                               {"span_id", 202},
                               {"parent_span_id", 200},
                               {"attempt", 2}}));

  TraceData server;  // its own clock: offsets don't matter for the join
  const auto server_tree = [&](i64 trace, i64 wire_parent, i64 root,
                               u64 ts, u64 dur) {
    server.spans.push_back(span("server.request", 2, ts, dur,
                                {{"trace_id", trace},
                                 {"span_id", root},
                                 {"parent_span_id", wire_parent},
                                 {"request_id", trace}}));
    server.spans.push_back(span("server.queue_wait", 2, ts, 500,
                                {{"trace_id", trace},
                                 {"parent_span_id", root}}));
    server.spans.push_back(span("server.engine", 2, ts + 600, dur - 1000,
                                {{"trace_id", trace},
                                 {"parent_span_id", root}}));
  };
  server_tree(kTrace1, 101, 1, 500, 6000);
  server_tree(kTrace2, 201, 2, 9000, 8000);   // executed, answer lost
  server_tree(kTrace2, 202, 3, 25000, 9000);  // the retry, also executed

  const StitchReport report = stitch_traces(client, server);
  ASSERT_EQ(report.requests.size(), 2u);
  EXPECT_EQ(report.totals.attempts, 3u);
  EXPECT_EQ(report.totals.matched_attempts, 3u);  // duplicates join 1:1
  EXPECT_EQ(report.totals.server_roots, 3u);
  EXPECT_DOUBLE_EQ(report.totals.match_rate, 1.0);

  const StitchedRequest& r1 = report.requests[0];
  EXPECT_EQ(r1.trace_id, static_cast<u64>(kTrace1));
  ASSERT_EQ(r1.attempts.size(), 1u);
  EXPECT_TRUE(r1.attempts[0].matched);
  EXPECT_EQ(r1.attempts[0].server_dur_ns, 6000u);
  EXPECT_EQ(r1.attempts[0].network_ns, 2000u);  // 8000 - 6000
  EXPECT_EQ(r1.attempts[0].queue_wait_ns, 500u);
  EXPECT_EQ(r1.attempts[0].engine_ns, 5000u);
  EXPECT_EQ(r1.retry_overhead_ns, 0u);

  const StitchedRequest& r2 = report.requests[1];
  ASSERT_EQ(r2.attempts.size(), 2u);
  EXPECT_TRUE(r2.attempts[0].matched);
  EXPECT_TRUE(r2.attempts[1].matched);
  // Each attempt joined its OWN server tree, in attempt order.
  EXPECT_EQ(r2.attempts[0].server_dur_ns, 8000u);
  EXPECT_EQ(r2.attempts[1].server_dur_ns, 9000u);
  // Retry overhead: request duration minus the final attempt.
  EXPECT_EQ(r2.retry_overhead_ns, 30000u - 12000u);

  // An unmatched attempt (server never saw it) lowers the match rate
  // but breaks nothing.
  client.spans.push_back(span("client.request", 1, 60000, 1000,
                              {{"trace_id", 0x333},
                               {"span_id", 300},
                               {"request_id", 3}}));
  client.spans.push_back(span("client.attempt", 1, 60000, 900,
                              {{"trace_id", 0x333},
                               {"span_id", 301},
                               {"parent_span_id", 300},
                               {"attempt", 1}}));
  const StitchReport partial = stitch_traces(client, server);
  EXPECT_EQ(partial.totals.attempts, 4u);
  EXPECT_EQ(partial.totals.matched_attempts, 3u);
  EXPECT_FALSE(partial.requests[2].attempts[0].matched);

  // The render and the history records digest the same totals.
  const std::string rendered = render_stitch_report(report);
  EXPECT_NE(rendered.find("match rate 1.000"), std::string::npos);
  const auto records = stitch_history_records(report);
  ASSERT_GE(records.size(), 2u);
  EXPECT_EQ(records[0].bench, "service_trace");
  EXPECT_EQ(records[0].metric, "match_rate");
  EXPECT_DOUBLE_EQ(records[0].value, 1.0);
}

TEST(Stitch, CoverageCountsOnlyRequestTaggedRootTrees) {
  const auto span = [](const char* name, u32 tid, u64 ts, u64 dur,
                       std::map<std::string, i64> args) {
    Span s;
    s.name = name;
    s.tid = tid;
    s.ts_ns = ts;
    s.dur_ns = dur;
    s.args = std::move(args);
    return s;
  };
  TraceData server;
  // Tagged root: counts fully.
  server.spans.push_back(
      span("server.request", 1, 0, 7000, {{"trace_id", 0x1}}));
  // Untagged root with a TAGGED descendant: the tree is attributable.
  server.spans.push_back(span("task", 2, 0, 2000, {}));
  server.spans.push_back(
      span("chunk.compress", 2, 100, 1000, {{"trace_id", 0x1}}));
  // Untagged root, nothing tagged below: unattributable busy time.
  server.spans.push_back(span("task", 3, 0, 1000, {}));
  EXPECT_DOUBLE_EQ(request_span_coverage(server), 9000.0 / 10000.0);

  // An empty server trace is vacuously covered.
  EXPECT_DOUBLE_EQ(request_span_coverage(TraceData{}), 1.0);
}

TEST(Stitch, LiveRetriedRequestJoinsBothAttempts) {
  // End-to-end: a chaos proxy truncates the first response mid-frame, so
  // the request EXECUTES server-side twice; the stitcher must join each
  // wire attempt to its own server tree.
  net::ServerOptions opt;
  opt.port = 0;
  opt.workers = 2;
  opt.engine.threads = 2;
  opt.engine.chunk_elems = 1024;
  Tracer server_tracer;
  opt.tracer = &server_tracer;
  net::ServiceServer server(std::move(opt));
  server.start();

  net::NetFaultPlan plan;
  // Connection 0: let the request through, truncate the response after
  // the header starts flowing back; connection 1 (the reconnect): clean.
  plan.truncate(0, net::ChaosDir::kServerToClient, 16);
  net::ChaosProxy proxy("127.0.0.1", server.port(), std::move(plan));
  proxy.start();

  net::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_us = 100;
  policy.attempt_timeout_ms = 5'000;
  Tracer client_tracer;
  net::CereszClient client(policy, nullptr, &client_tracer);
  client.connect("127.0.0.1", proxy.port());

  const auto data = test::smooth_signal(2000);
  const auto stream = client.compress(data, core::ErrorBound::relative(1e-3));
  EXPECT_FALSE(stream.empty());
  EXPECT_GE(client.stats().retries, 1u);

  proxy.stop();
  server.stop();

  const StitchReport report = stitch_traces(from_tracer(client_tracer),
                                            from_tracer(server_tracer));
  ASSERT_EQ(report.requests.size(), 1u);
  const StitchedRequest& req = report.requests[0];
  EXPECT_EQ(req.trace_id, client.last_trace_id());
  ASSERT_GE(req.attempts.size(), 2u);
  // The truncated attempt still executed server-side: both the failed
  // and the winning attempt have their own matched server tree.
  u64 matched = 0;
  for (const auto& att : req.attempts) matched += att.matched ? 1 : 0;
  EXPECT_EQ(matched, req.attempts.size());
  EXPECT_GT(req.retry_overhead_ns, 0u);
  EXPECT_GE(report.totals.server_coverage, 0.95);
}

// --- perfgate provenance ----------------------------------------------------

TEST(Perfgate, ParserIgnoresUnknownKeysAndRoundTripsMetadata) {
  HistoryRecord rec;
  rec.bench = "service_trace";
  rec.metric = "match_rate";
  rec.value = 1.0;
  rec.unit = "ratio";
  rec.better = "higher";
  rec.noise = 0.01;
  rec.timestamp = "2026-08-07T00:00:00Z";
  rec.git_sha = "abc123";
  rec.host = "ci-runner";
  const std::string line = rec.to_jsonl();
  EXPECT_NE(line.find("\"timestamp\": \"2026-08-07T00:00:00Z\""),
            std::string::npos);
  EXPECT_NE(line.find("\"git_sha\": \"abc123\""), std::string::npos);

  const auto back = parse_history_jsonl(line);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].bench, "service_trace");
  EXPECT_EQ(back[0].timestamp, rec.timestamp);
  EXPECT_EQ(back[0].git_sha, rec.git_sha);
  EXPECT_EQ(back[0].host, rec.host);

  // Unknown keys — from a NEWER writer — must not break parsing, and
  // records without the provenance keys still parse (older history).
  const std::string future =
      "{\"bench\": \"b\", \"metric\": \"m\", \"value\": 2.5, "
      "\"unit\": \"x\", \"better\": \"lower\", \"noise\": 0.1, "
      "\"flux_capacitor\": \"1.21GW\", \"shard\": 7}\n"
      "{\"bench\": \"old\", \"metric\": \"m\", \"value\": 1.0, "
      "\"unit\": \"x\", \"better\": \"higher\", \"noise\": 0.2}";
  const auto parsed = parse_history_jsonl(future);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].bench, "b");
  EXPECT_DOUBLE_EQ(parsed[0].value, 2.5);
  EXPECT_TRUE(parsed[1].timestamp.empty());

  // Empty provenance fields are omitted from the line entirely.
  HistoryRecord bare;
  bare.bench = "b";
  bare.metric = "m";
  EXPECT_EQ(bare.to_jsonl().find("timestamp"), std::string::npos);
}

TEST(Perfgate, StampFillsWellFormedProvenance) {
  HistoryRecord rec;
  rec.bench = "b";
  rec.metric = "m";
  stamp_history_metadata(rec);
  // 2026-08-07T12:34:56Z — fixed-width ISO-8601 UTC.
  ASSERT_EQ(rec.timestamp.size(), 20u);
  EXPECT_EQ(rec.timestamp[4], '-');
  EXPECT_EQ(rec.timestamp[10], 'T');
  EXPECT_EQ(rec.timestamp.back(), 'Z');
  EXPECT_FALSE(rec.host.empty());
}

}  // namespace
}  // namespace ceresz
