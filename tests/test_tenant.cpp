// Multi-tenant wafer coordinator suite (docs/tenancy.md): admission
// control against the Formula (2)-(4) prediction, space-shared leases,
// elastic remapping under fault storms, the CSNP v3 tenant fields, and
// the live tenancy-enabled ServiceServer.
//
// The load-bearing acceptance properties:
//   1. each tenant's output under space-sharing is byte-identical to a
//      solo run at the same error bound (placement-independence);
//   2. a fault storm inside one lease remaps only that lease — the
//      neighbors keep their rows and their bytes — and the remapped
//      lease's prediction recovers its quota;
//   3. a quota even the whole healthy wafer cannot meet is rejected
//      outright, visibly in the ceresz_tenant_* metrics.
#include "tenant/coordinator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "mapping/wafer_mapper.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "test_util.h"
#include "wse/fault_plan.h"

namespace ceresz::tenant {
namespace {

CoordinatorOptions small_wafer(obs::MetricsRegistry* reg = nullptr) {
  CoordinatorOptions opt;
  opt.rows = 12;
  opt.cols = 8;
  opt.metrics = reg;
  return opt;
}

TenantSpec spec_for(TenantId id, f64 quota_gbps = 0.0,
                    Priority prio = Priority::kStandard) {
  TenantSpec spec;
  spec.id = id;
  spec.priority = prio;
  spec.min_throughput_gbps = quota_gbps;
  return spec;
}

/// Predicted throughput of a single-row lease on a healthy small_wafer()
/// — the unit the quota-driven tests size their demands in.
f64 one_row_gbps() {
  WaferCoordinator probe(small_wafer());
  const AdmissionResult r = probe.admit(spec_for(1));
  EXPECT_EQ(r.verdict, AdmissionVerdict::kAdmitted);
  EXPECT_EQ(r.lease->row_count, 1u);
  return r.lease->predicted.throughput_gbps;
}

/// Solo reference run: the tenant alone on a mesh with a DIFFERENT
/// geometry than any lease it will get, proving the stream does not
/// depend on placement.
std::vector<u8> solo_stream(const TenantSpec& spec,
                            std::span<const f32> data) {
  mapping::MapperOptions opt;
  opt.rows = 3;
  opt.cols = 4;
  opt.pipeline_length = spec.pipeline_length;
  opt.codec = spec.codec;
  opt.max_exact_rows = opt.rows;
  opt.collect_output = true;
  const mapping::WaferMapper mapper(opt);
  return mapper.compress(data, spec.bound).stream;
}

void expect_disjoint_leases(const WaferCoordinator& coord) {
  std::vector<bool> owned(coord.options().rows, false);
  for (const Lease& lease : coord.leases()) {
    ASSERT_LE(lease.row_begin + lease.row_count, coord.options().rows);
    for (u32 r = lease.row_begin; r < lease.row_begin + lease.row_count;
         ++r) {
      EXPECT_FALSE(owned[r]) << "row " << r << " leased twice";
      owned[r] = true;
    }
  }
}

// --- admission --------------------------------------------------------------

TEST(Coordinator, AdmitsDisjointLeasesAndTracksMetrics) {
  obs::MetricsRegistry reg;
  WaferCoordinator coord(small_wafer(&reg));

  for (TenantId id : {1u, 2u, 3u}) {
    const AdmissionResult r = coord.admit(spec_for(id));
    EXPECT_EQ(r.verdict, AdmissionVerdict::kAdmitted) << r.reason;
    ASSERT_TRUE(r.lease.has_value());
    EXPECT_TRUE(r.lease->predicted.feasible);
    EXPECT_GT(r.lease->predicted.throughput_gbps, 0.0);
  }
  EXPECT_EQ(coord.active_count(), 3u);
  EXPECT_EQ(coord.free_rows(), 12u - 3u);
  expect_disjoint_leases(coord);

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value(kMetricTenantAdmitted), 3u);
  EXPECT_EQ(snap.gauge_value(kMetricTenantActive), 3.0);
  // Per-tenant lease gauges: 1 row x 8 cols, all healthy.
  EXPECT_EQ(snap.gauge_value(tenant_metric_name(1, "lease_pes")), 8.0);
}

TEST(Coordinator, RejectsInvalidSpecs) {
  WaferCoordinator coord(small_wafer());
  EXPECT_EQ(coord.admit(spec_for(0)).verdict, AdmissionVerdict::kRejected);

  ASSERT_EQ(coord.admit(spec_for(5)).verdict, AdmissionVerdict::kAdmitted);
  EXPECT_EQ(coord.admit(spec_for(5)).verdict, AdmissionVerdict::kRejected)
      << "double admission must be rejected, not double-leased";

  TenantSpec bad_codec = spec_for(6);
  bad_codec.codec.block_size = 7;  // not a multiple of 8
  const AdmissionResult r = coord.admit(bad_codec);
  EXPECT_EQ(r.verdict, AdmissionVerdict::kRejected);
  EXPECT_NE(r.reason.find("block_size"), std::string::npos) << r.reason;

  TenantSpec bad_pl = spec_for(7);
  bad_pl.pipeline_length = 99;  // > cols
  EXPECT_EQ(coord.admit(bad_pl).verdict, AdmissionVerdict::kRejected);
}

// Acceptance 3: a quota the Formula (2)-(4) prediction cannot meet even
// on the whole healthy wafer is rejected outright, and the rejection is
// visible in the metrics.
TEST(Coordinator, RejectsQuotaBeyondWholeWaferPrediction) {
  obs::MetricsRegistry reg;
  WaferCoordinator coord(small_wafer(&reg));

  const AdmissionResult r = coord.admit(spec_for(1, /*quota_gbps=*/1e6));
  EXPECT_EQ(r.verdict, AdmissionVerdict::kRejected);
  EXPECT_FALSE(r.lease.has_value());
  EXPECT_NE(r.reason.find("whole healthy wafer"), std::string::npos)
      << r.reason;
  EXPECT_EQ(coord.active_count(), 0u);
  EXPECT_GE(reg.snapshot().counter_value(kMetricTenantRejected), 1u);
}

TEST(Coordinator, QuotaSizesTheLease) {
  const f64 t1 = one_row_gbps();
  WaferCoordinator coord(small_wafer());
  // ~2.5 rows of demand must get at least a 3-row lease.
  const AdmissionResult r = coord.admit(spec_for(1, 2.5 * t1));
  ASSERT_EQ(r.verdict, AdmissionVerdict::kAdmitted) << r.reason;
  EXPECT_GE(r.lease->row_count, 3u);
  EXPECT_GE(r.lease->predicted.throughput_gbps, 2.5 * t1);
}

// --- queueing + departure rebalance -----------------------------------------

TEST(Coordinator, QueuesWhenFullAndDrainsByPriorityOnRelease) {
  obs::MetricsRegistry reg;
  CoordinatorOptions opt = small_wafer(&reg);
  opt.rows = 1;  // one lease fits
  WaferCoordinator coord(opt);

  ASSERT_EQ(coord.admit(spec_for(1)).verdict, AdmissionVerdict::kAdmitted);
  // Batch arrives first, interactive second; both wait.
  EXPECT_EQ(coord.admit(spec_for(2, 0.0, Priority::kBatch)).verdict,
            AdmissionVerdict::kQueued);
  EXPECT_EQ(coord.admit(spec_for(3, 0.0, Priority::kInteractive)).verdict,
            AdmissionVerdict::kQueued);
  EXPECT_EQ(coord.queued_count(), 2u);
  EXPECT_EQ(coord.admit(spec_for(2)).verdict, AdmissionVerdict::kRejected)
      << "a queued tenant must not be queued twice";

  // Departure admits the INTERACTIVE tenant despite its later arrival.
  EXPECT_TRUE(coord.release(1));
  EXPECT_TRUE(coord.lease_of(3).has_value());
  EXPECT_FALSE(coord.lease_of(2).has_value());
  EXPECT_EQ(coord.queued_count(), 1u);

  // Releasing a queued id drops it from the queue; unknown ids say no.
  EXPECT_TRUE(coord.release(2));
  EXPECT_EQ(coord.queued_count(), 0u);
  EXPECT_FALSE(coord.release(99));

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value(kMetricTenantQueued), 2u);
  EXPECT_GE(snap.counter_value(kMetricTenantReleased), 1u);
}

TEST(Coordinator, ShedsInsteadOfQueueingWhenDisabled) {
  CoordinatorOptions opt = small_wafer();
  opt.rows = 1;
  opt.queue_when_full = false;
  WaferCoordinator coord(opt);
  ASSERT_EQ(coord.admit(spec_for(1)).verdict, AdmissionVerdict::kAdmitted);
  const AdmissionResult r = coord.admit(spec_for(2));
  EXPECT_EQ(r.verdict, AdmissionVerdict::kRejected);
  EXPECT_NE(r.reason.find("queueing is disabled"), std::string::npos)
      << r.reason;
}

// --- byte identity under space-sharing --------------------------------------

// Acceptance 1: every tenant's stream equals its solo run at the same
// error bound, independent of which rows it leased.
TEST(Coordinator, SharedOutputByteIdenticalToSoloRuns) {
  WaferCoordinator coord(small_wafer());

  struct Job {
    TenantSpec spec;
    std::vector<f32> data;
  };
  std::vector<Job> jobs;
  for (TenantId id : {1u, 2u, 3u}) {
    TenantSpec spec = spec_for(id);
    spec.bound = core::ErrorBound::relative(1e-2 / static_cast<f64>(id));
    jobs.push_back({spec, test::smooth_signal(32 * 40 + 5 * id, 100 + id)});
    ASSERT_EQ(coord.admit(spec).verdict, AdmissionVerdict::kAdmitted);
  }

  for (const Job& job : jobs) {
    const mapping::WaferRunResult shared =
        coord.compress(job.spec.id, job.data);
    EXPECT_EQ(shared.stream, solo_stream(job.spec, job.data))
        << "tenant " << job.spec.id
        << ": shared stream differs from the solo run";

    const mapping::WaferRunResult back =
        coord.decompress(job.spec.id, shared.stream);
    ASSERT_EQ(back.output.size(), job.data.size());
    EXPECT_LE(test::max_err(job.data, back.output), shared.eps_abs * 1.0001);
  }
}

// --- elastic remapping ------------------------------------------------------

TEST(Coordinator, RemapGrowsIntoAdjacentFreeRows) {
  const f64 t1 = one_row_gbps();
  obs::MetricsRegistry reg;
  WaferCoordinator coord(small_wafer(&reg));

  ASSERT_EQ(coord.admit(spec_for(1, 0.9 * t1)).verdict,
            AdmissionVerdict::kAdmitted);
  const Lease before = *coord.lease_of(1);
  ASSERT_EQ(before.row_count, 1u);

  // Kill the lease row's column 0: traffic streams west to east, so the
  // whole row is unusable and the quota can only be recovered by
  // annexing a neighbor row.
  coord.kill_pe(before.row_begin, 0);

  const Lease after = *coord.lease_of(1);
  EXPECT_GE(after.remaps, 1u);
  EXPECT_GT(after.row_count, before.row_count);
  EXPECT_TRUE(after.predicted.feasible);
  EXPECT_GE(after.predicted.throughput_gbps, 0.9 * t1);
  EXPECT_EQ(after.live_pes, after.row_count * 8 - 1);
  EXPECT_GE(reg.snapshot().counter_value(kMetricTenantRemapped), 1u);
  expect_disjoint_leases(coord);
}

// Acceptance 2: a fixed-seed fault storm inside ONE lease remaps only
// that lease; the neighbors keep their rows and every tenant's output
// stays byte-identical to its solo run.
TEST(Coordinator, FaultStormRemapsOnlyTheHitLease) {
  const f64 t1 = one_row_gbps();
  obs::MetricsRegistry reg;
  WaferCoordinator coord(small_wafer(&reg));

  struct Job {
    TenantSpec spec;
    std::vector<f32> data;
  };
  std::vector<Job> jobs;
  for (TenantId id : {1u, 2u, 3u}) {
    TenantSpec spec = spec_for(id, 0.9 * t1);
    spec.bound = core::ErrorBound::relative(1e-3);
    jobs.push_back({spec, test::smooth_signal(32 * 32, 200 + id)});
    ASSERT_EQ(coord.admit(spec).verdict, AdmissionVerdict::kAdmitted);
  }
  const Lease a0 = *coord.lease_of(1);
  const Lease b0 = *coord.lease_of(2);
  const Lease c0 = *coord.lease_of(3);

  // A deterministic storm confined to tenant 2's single row: kill its
  // head column (the whole row dies) plus a mid-row PE.
  wse::FaultPlan storm(/*seed=*/42);
  storm.kill_pe(b0.row_begin, 0);
  storm.kill_pe(b0.row_begin, 4);
  coord.inject_faults(storm);

  // Tenant 2 was remapped (its row is boxed in between tenants 1 and 3,
  // so it must have been re-placed elsewhere); 1 and 3 are untouched.
  const Lease a1 = *coord.lease_of(1);
  const Lease b1 = *coord.lease_of(2);
  const Lease c1 = *coord.lease_of(3);
  EXPECT_EQ(a1.row_begin, a0.row_begin);
  EXPECT_EQ(a1.row_count, a0.row_count);
  EXPECT_EQ(a1.remaps, 0u);
  EXPECT_EQ(c1.row_begin, c0.row_begin);
  EXPECT_EQ(c1.row_count, c0.row_count);
  EXPECT_EQ(c1.remaps, 0u);
  EXPECT_GE(b1.remaps, 1u);
  EXPECT_NE(b1.row_begin, b0.row_begin);
  expect_disjoint_leases(coord);

  // Bounded predicted loss: the re-placed lease meets its quota again.
  EXPECT_TRUE(b1.predicted.feasible);
  EXPECT_GE(b1.predicted.throughput_gbps, 0.9 * t1);
  EXPECT_GE(reg.snapshot().counter_value(kMetricTenantRemapped), 1u);

  // Zero impact on anyone's bytes — including the remapped tenant's.
  for (const Job& job : jobs) {
    EXPECT_EQ(coord.compress(job.spec.id, job.data).stream,
              solo_stream(job.spec, job.data))
        << "tenant " << job.spec.id << " after the storm";
  }
}

TEST(Coordinator, BoxedInLeaseDegradesLoudly) {
  const f64 t1 = one_row_gbps();
  obs::MetricsRegistry reg;
  CoordinatorOptions opt = small_wafer(&reg);
  opt.rows = 1;  // nowhere to grow, nowhere to re-place
  WaferCoordinator coord(opt);
  ASSERT_EQ(coord.admit(spec_for(1, 0.9 * t1)).verdict,
            AdmissionVerdict::kAdmitted);

  coord.kill_pe(0, 0);

  const Lease lease = *coord.lease_of(1);
  EXPECT_FALSE(lease.predicted.feasible)
      << "the only row is dead; the prediction must say so";
  EXPECT_EQ(lease.predicted.throughput_gbps, 0.0);
  EXPECT_GE(reg.snapshot().counter_value(kMetricTenantQuotaViolations), 1u);
  EXPECT_EQ(coord.active_count(), 1u) << "degraded, not evicted";
}

TEST(Coordinator, FaultsOnFreeRowsSteerLaterPlacements) {
  WaferCoordinator coord(small_wafer());
  // Rows 0-2 die before any tenant arrives; the first admission must
  // land south of them (prediction sees zero pipelines there).
  wse::FaultPlan plan;
  for (u32 r = 0; r < 3; ++r) plan.kill_pe(r, 0);
  coord.inject_faults(plan);
  const AdmissionResult r = coord.admit(spec_for(1, 1e-6));
  ASSERT_EQ(r.verdict, AdmissionVerdict::kAdmitted) << r.reason;
  EXPECT_GE(r.lease->row_begin, 3u);
}

// --- CSNP v3 tenant fields --------------------------------------------------

TEST(ProtocolV3, TenantTagRoundTrips) {
  net::FrameHeader h;
  h.version = net::kProtocolVersionV3;
  h.opcode = net::Opcode::kCompress;
  h.request_id = 77;
  h.payload_bytes = 0;
  h.tenant = net::TenantTag{0xdeadbeefu, net::kPriorityInteractive};
  std::vector<u8> bytes;
  net::append_frame_header(bytes, h);
  ASSERT_EQ(bytes.size(), net::kFrameHeaderBytes);

  const net::FrameHeader back =
      net::parse_frame_header(bytes, net::kDefaultMaxPayload);
  EXPECT_EQ(back.version, 3u);
  EXPECT_EQ(back.tenant.tenant_id, 0xdeadbeefu);
  EXPECT_EQ(back.tenant.priority, net::kPriorityInteractive);
}

TEST(ProtocolV3, DefaultTagIsUntenanted) {
  net::FrameHeader h;
  std::vector<u8> bytes;
  net::append_frame_header(bytes, h);
  const net::FrameHeader back =
      net::parse_frame_header(bytes, net::kDefaultMaxPayload);
  EXPECT_EQ(back.tenant.tenant_id, 0u);
  EXPECT_EQ(back.tenant.priority, net::kPriorityStandard);
}

TEST(ProtocolV3, RejectsUnknownPriorityAndReservedBytes) {
  net::FrameHeader h;
  std::vector<u8> good;
  net::append_frame_header(good, h);

  auto bad = good;
  bad[32] = net::kPriorityMax + 1;
  EXPECT_THROW(net::parse_frame_header(bad, net::kDefaultMaxPayload), Error);
  for (int i = 33; i <= 35; ++i) {
    bad = good;
    bad[i] = 1;
    EXPECT_THROW(net::parse_frame_header(bad, net::kDefaultMaxPayload), Error)
        << "reserved byte " << i << " must be zero";
  }
}

// --- live tenancy-enabled server --------------------------------------------

TEST(TenantService, ServerAdmitsFirstTenantAndShedsTheSecond) {
  net::ServerOptions opt;
  opt.port = 0;
  opt.workers = 2;
  opt.engine.threads = 2;
  opt.tenancy.enabled = true;
  opt.tenancy.wafer_rows = 4;
  opt.tenancy.max_tenants = 1;
  net::ServiceServer server(std::move(opt));
  server.start();
  ASSERT_NE(server.coordinator(), nullptr);

  const auto data = test::smooth_signal(8192);
  const auto bound = core::ErrorBound::relative(1e-3);

  net::CereszClient first;
  first.set_tenant(1, net::kPriorityInteractive);
  first.connect("127.0.0.1", server.port());
  const auto stream = first.compress(data, bound);
  EXPECT_FALSE(stream.empty());
  EXPECT_EQ(server.coordinator()->active_count(), 1u);
  const std::optional<Lease> lease = server.coordinator()->lease_of(1);
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->spec.priority, Priority::kInteractive);

  // Tenant 2 cannot get a lease (max_tenants = 1): shed with BUSY, the
  // standing load-shedding contract.
  net::CereszClient second;
  second.set_tenant(2);
  second.connect("127.0.0.1", server.port());
  try {
    (void)second.compress(data, bound);
    FAIL() << "expected a BUSY shed for the unplaceable tenant";
  } catch (const net::ServiceError& e) {
    EXPECT_EQ(e.status(), net::Status::kBusy);
  }

  // Untenanted traffic (tenant 0) bypasses the coordinator entirely.
  net::CereszClient legacy;
  legacy.connect("127.0.0.1", server.port());
  EXPECT_EQ(legacy.compress(data, bound), stream);

  // Tenant departure frees the lease; the shed tenant can now come in.
  ASSERT_TRUE(server.coordinator()->release(2))
      << "the shed tenant was queued and must be droppable";
  ASSERT_TRUE(server.coordinator()->release(1));
  EXPECT_FALSE(second.compress(data, bound).empty());

  server.stop();
  const auto snap = server.metrics().snapshot();
  EXPECT_GE(snap.counter_value(net::kMetricTenantShed), 1u);
  EXPECT_GE(snap.counter_value(kMetricTenantAdmitted), 2u);
  EXPECT_GE(
      snap.counter_value(tenant_metric_name(1, "requests_total")), 1u);
}

}  // namespace
}  // namespace ceresz::tenant
