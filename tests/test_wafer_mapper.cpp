#include "mapping/wafer_mapper.h"

#include <gtest/gtest.h>

#include "core/stream_codec.h"
#include "test_util.h"

namespace ceresz::mapping {
namespace {

MapperOptions options(u32 rows, u32 cols, u32 pl = 1) {
  MapperOptions opt;
  opt.rows = rows;
  opt.cols = cols;
  opt.pipeline_length = pl;
  return opt;
}

// The central fidelity property: the bytes that come off the simulated
// wafer are identical to the host StreamCodec's output.
TEST(WaferMapper, StreamBitIdenticalToHostCodec) {
  const auto data = test::smooth_signal(32 * 64);
  const core::ErrorBound bound = core::ErrorBound::absolute(1e-3);

  const WaferMapper mapper(options(2, 8));
  const WaferRunResult wafer = mapper.compress(data, bound);

  const core::StreamCodec host;
  const auto host_result = host.compress(data, bound);

  EXPECT_FALSE(wafer.extrapolated);
  ASSERT_EQ(wafer.stream.size(), host_result.stream.size());
  EXPECT_EQ(wafer.stream, host_result.stream);
}

TEST(WaferMapper, StreamIdenticalAcrossPipelineLengths) {
  const auto data = test::smooth_signal(32 * 48, 3);
  const core::ErrorBound bound = core::ErrorBound::relative(1e-3);
  const core::StreamCodec host;
  const auto host_result = host.compress(data, bound);
  for (u32 pl : {1u, 2u, 3u, 4u}) {
    const WaferMapper mapper(options(1, 12, pl));
    const WaferRunResult wafer = mapper.compress(data, bound);
    EXPECT_EQ(wafer.stream, host_result.stream) << "pl=" << pl;
  }
}

TEST(WaferMapper, DecompressRoundTrip) {
  const auto data = test::smooth_signal(32 * 40, 5);
  const core::ErrorBound bound = core::ErrorBound::absolute(5e-4);
  const WaferMapper mapper(options(2, 6));
  const WaferRunResult comp = mapper.compress(data, bound);
  const WaferRunResult decomp = mapper.decompress(comp.stream);
  ASSERT_EQ(decomp.output.size(), data.size());
  EXPECT_LE(test::max_err(data, decomp.output), 5e-4);

  // And identical to the host decoder.
  const core::StreamCodec host;
  const auto host_back = host.decompress(comp.stream);
  EXPECT_EQ(decomp.output, host_back);
}

TEST(WaferMapper, DecompressionFasterThanCompression) {
  // Section 5.2: decompression does strictly less work per block.
  const auto data = test::smooth_signal(32 * 128, 7);
  const WaferMapper mapper(options(1, 8));
  const auto comp = mapper.compress(data, core::ErrorBound::absolute(1e-3));
  const auto decomp = mapper.decompress(comp.stream);
  EXPECT_GT(decomp.throughput_gbps, comp.throughput_gbps);
}

TEST(WaferMapper, TailBlockRoundTrips) {
  const auto data = test::smooth_signal(32 * 10 + 7, 9);
  const WaferMapper mapper(options(1, 4));
  const auto comp = mapper.compress(data, core::ErrorBound::absolute(1e-3));
  const auto decomp = mapper.decompress(comp.stream);
  ASSERT_EQ(decomp.output.size(), data.size());
  EXPECT_LE(test::max_err(data, decomp.output), 1e-3);
}

TEST(WaferMapper, MoreRowsMoreThroughput) {
  // Strategy 1 (Fig. 7): rows are independent -> near-linear scaling.
  const auto data = test::smooth_signal(32 * 256, 11);
  const core::ErrorBound bound = core::ErrorBound::absolute(1e-3);
  MapperOptions base = options(1, 4);
  base.collect_output = false;

  f64 t1 = 0, t4 = 0;
  {
    WaferMapper mapper(base);
    t1 = mapper.compress(data, bound).throughput_gbps;
  }
  {
    MapperOptions opt = base;
    opt.rows = 4;
    WaferMapper mapper(opt);
    t4 = mapper.compress(data, bound).throughput_gbps;
  }
  EXPECT_GT(t4, 3.0 * t1);
  EXPECT_LT(t4, 5.0 * t1);
}

TEST(WaferMapper, MoreColumnsMoreThroughput) {
  // Strategy 3: more pipelines per row raise throughput despite relaying.
  const auto data = test::smooth_signal(32 * 512, 13);
  const core::ErrorBound bound = core::ErrorBound::absolute(1e-3);
  MapperOptions narrow = options(1, 2);
  narrow.collect_output = false;
  MapperOptions wide = options(1, 16);
  wide.collect_output = false;
  const f64 t2 = WaferMapper(narrow).compress(data, bound).throughput_gbps;
  const f64 t16 = WaferMapper(wide).compress(data, bound).throughput_gbps;
  EXPECT_GT(t16, 4.0 * t2);  // near-linear up to relay overhead
}

TEST(WaferMapper, PipelineLengthOneIsFastest) {
  // Fig. 13: the full kernel on a single PE beats longer pipelines.
  const auto data = test::smooth_signal(32 * 256, 17);
  const core::ErrorBound bound = core::ErrorBound::absolute(1e-3);
  f64 prev = 1e30;
  for (u32 pl : {1u, 2u, 4u}) {
    MapperOptions opt = options(1, 8, pl);
    opt.collect_output = false;
    const f64 t = WaferMapper(opt).compress(data, bound).throughput_gbps;
    EXPECT_LT(t, prev * 1.05) << "pl=" << pl;  // non-increasing (5% slack)
    prev = t;
  }
}

TEST(WaferMapper, ExtrapolatedModeMatchesExactTiming) {
  // Simulating 2 of 4 rows must give (nearly) the same makespan as
  // simulating all 4 — rows are symmetric by construction.
  const auto data = test::smooth_signal(32 * 128, 19);
  const core::ErrorBound bound = core::ErrorBound::absolute(1e-3);
  MapperOptions exact = options(4, 4);
  exact.max_exact_rows = 4;
  exact.collect_output = false;
  MapperOptions extra = options(4, 4);
  extra.max_exact_rows = 2;
  extra.collect_output = false;
  const auto exact_run = WaferMapper(exact).compress(data, bound);
  const auto extra_run = WaferMapper(extra).compress(data, bound);
  EXPECT_FALSE(exact_run.extrapolated);
  EXPECT_TRUE(extra_run.extrapolated);
  const f64 ratio = static_cast<f64>(extra_run.makespan) /
                    static_cast<f64>(exact_run.makespan);
  EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(WaferMapper, ZeroBlocksRaiseThroughput) {
  // Section 5.2's error-bound/throughput coupling, reproduced causally:
  // the same data at a looser bound has more zero blocks and runs faster.
  const auto data = test::sparse_signal(32 * 256, 23, 0.02);
  MapperOptions opt = options(1, 4);
  opt.collect_output = false;
  const WaferMapper mapper(opt);
  const auto tight = mapper.compress(data, core::ErrorBound::relative(1e-4));
  const auto loose = mapper.compress(data, core::ErrorBound::relative(1e-1));
  EXPECT_GT(loose.throughput_gbps, tight.throughput_gbps);
}

TEST(WaferMapper, PlanRespectsPipelineLength) {
  const auto data = test::smooth_signal(32 * 16);
  const WaferMapper mapper(options(1, 6, 3));
  const auto run = mapper.compress(data, core::ErrorBound::absolute(1e-3));
  EXPECT_EQ(run.plan.length(), 3u);
  EXPECT_EQ(run.pipelines_per_row, 2u);
}

TEST(WaferMapper, InvalidConfigThrows) {
  EXPECT_THROW(WaferMapper(options(0, 4)), Error);
  EXPECT_THROW(WaferMapper(options(1, 4, 5)), Error);  // PL > cols
}

// Property sweep: round trip through the wafer across bounds and shapes.
class WaferRoundTrip
    : public ::testing::TestWithParam<std::tuple<f64, int, u32>> {};

TEST_P(WaferRoundTrip, ErrorBoundHolds) {
  const auto [rel, kind, pl] = GetParam();
  std::vector<f32> data;
  switch (kind) {
    case 0: data = test::smooth_signal(32 * 32); break;
    case 1: data = test::random_signal(32 * 32, 3, -10.0, 10.0); break;
    default: data = test::sparse_signal(32 * 32, 5, 0.1); break;
  }
  const WaferMapper mapper(options(1, 2 * pl, pl));
  const auto comp = mapper.compress(data, core::ErrorBound::relative(rel));
  const auto decomp = mapper.decompress(comp.stream);
  ASSERT_EQ(decomp.output.size(), data.size());
  EXPECT_LE(test::max_err(data, decomp.output),
            comp.eps_abs + test::f32_ulp_slack(data));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WaferRoundTrip,
    ::testing::Combine(::testing::Values(1e-2, 1e-3, 1e-4),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values(1u, 2u, 4u)));

}  // namespace
}  // namespace ceresz::mapping
