// Service-layer suite: CSNP protocol codecs, BufferPool, and live
// loopback ServiceServer/CereszClient round trips — including the
// load-shedding (BUSY), deadline, and hostile-input paths.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "engine/parallel_engine.h"
#include "net/buffer_pool.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "test_util.h"

namespace ceresz::net {
namespace {

// --- protocol codecs --------------------------------------------------------

TEST(Protocol, FrameHeaderRoundTrip) {
  FrameHeader h;
  h.opcode = Opcode::kCompress;
  h.status = Status::kBusy;
  h.request_id = 0x0123456789abcdefull;
  h.payload_bytes = 12345;
  h.trace = TraceTag{0x123456789abcull, 42};
  std::vector<u8> bytes;
  append_frame_header(bytes, h);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytesV4);
  const FrameHeader back = parse_frame_header(bytes, kDefaultMaxPayload);
  EXPECT_EQ(back.version, kProtocolVersion);
  EXPECT_EQ(back.opcode, Opcode::kCompress);
  EXPECT_EQ(back.status, Status::kBusy);
  EXPECT_EQ(back.request_id, h.request_id);
  EXPECT_EQ(back.payload_bytes, h.payload_bytes);
  EXPECT_EQ(back.trace.trace_id, h.trace.trace_id);
  EXPECT_EQ(back.trace.parent_span_id, h.trace.parent_span_id);
}

TEST(Protocol, HeaderRejectsBadMagicVersionOpcodeAndOversize) {
  FrameHeader h;
  h.payload_bytes = 64;
  std::vector<u8> good;
  append_frame_header(good, h);

  auto bad = good;
  bad[0] ^= 0xff;  // magic
  EXPECT_THROW(parse_frame_header(bad, kDefaultMaxPayload), Error);
  bad = good;
  bad[4] = 99;  // version
  EXPECT_THROW(parse_frame_header(bad, kDefaultMaxPayload), Error);
  bad = good;
  bad[5] = 0;  // opcode below range
  EXPECT_THROW(parse_frame_header(bad, kDefaultMaxPayload), Error);
  bad[5] = 200;  // opcode above range
  EXPECT_THROW(parse_frame_header(bad, kDefaultMaxPayload), Error);
  // Anti-bomb: payload larger than the cap, including the u64 extremes.
  EXPECT_THROW(parse_frame_header(good, 63), Error);
  bad = good;
  for (int i = 16; i < 24; ++i) bad[i] = 0xff;  // payload_bytes = 2^64-1
  EXPECT_THROW(parse_frame_header(bad, kDefaultMaxPayload), Error);
  // Truncated header buffer.
  EXPECT_THROW(
      parse_frame_header(std::span<const u8>(good.data(), 23), kDefaultMaxPayload),
      Error);
}

TEST(Protocol, CompressRequestRoundTrip) {
  const auto data = test::smooth_signal(1000);
  CompressRequest req;
  req.bound = core::ErrorBound::relative(1e-3);
  req.deadline_ms = 250;
  req.data = data;
  std::vector<u8> payload;
  append_compress_request(payload, req);

  const CompressRequest back = decode_compress_request(payload);
  EXPECT_EQ(back.deadline_ms, 250u);
  EXPECT_EQ(back.bound.mode, req.bound.mode);
  EXPECT_EQ(back.bound.value, req.bound.value);
  ASSERT_EQ(back.data.size(), data.size());
  EXPECT_EQ(std::memcmp(back.data.data(), data.data(),
                        data.size() * sizeof(f32)),
            0);
}

TEST(Protocol, CompressRequestRejectsHostilePayloads) {
  const auto data = test::smooth_signal(64);
  CompressRequest req;
  req.bound = core::ErrorBound::absolute(1e-3);
  req.data = data;
  std::vector<u8> payload;
  append_compress_request(payload, req);

  // Truncated fixed part, truncated data, padded data.
  EXPECT_THROW(
      decode_compress_request(std::span<const u8>(payload.data(), 10)), Error);
  EXPECT_THROW(decode_compress_request(
                   std::span<const u8>(payload.data(), payload.size() - 4)),
               Error);
  auto padded = payload;
  padded.push_back(0);
  EXPECT_THROW(decode_compress_request(padded), Error);

  // element_count lying about the payload, including the wrap-around
  // value that an unchecked `count * 4` would accept.
  auto lied = payload;
  for (int b = 0; b < 8; ++b) lied[16 + b] = 0xff;
  EXPECT_THROW(decode_compress_request(lied), Error);
  lied = payload;
  const u64 wrap = u64{1} << 62;  // *4 wraps to 0
  for (int b = 0; b < 8; ++b) {
    lied[16 + b] = static_cast<u8>((wrap >> (8 * b)) & 0xff);
  }
  EXPECT_THROW(decode_compress_request(lied), Error);

  // Non-finite / non-positive bounds.
  auto bad_bound = payload;
  const f64 nan = std::numeric_limits<f64>::quiet_NaN();
  u64 bits;
  std::memcpy(&bits, &nan, sizeof(bits));
  for (int b = 0; b < 8; ++b) {
    bad_bound[8 + b] = static_cast<u8>((bits >> (8 * b)) & 0xff);
  }
  EXPECT_THROW(decode_compress_request(bad_bound), Error);
}

TEST(Protocol, DecompressRequestAndResponseRoundTrip) {
  std::vector<u8> stream(333);
  Rng rng(3);
  for (auto& b : stream) b = static_cast<u8>(rng.next_u64());
  DecompressRequest req;
  req.deadline_ms = 42;
  req.stream = stream;
  std::vector<u8> payload;
  append_decompress_request(payload, req);
  const DecompressRequest back = decode_decompress_request(payload);
  EXPECT_EQ(back.deadline_ms, 42u);
  ASSERT_EQ(back.stream.size(), stream.size());
  EXPECT_EQ(std::memcmp(back.stream.data(), stream.data(), stream.size()), 0);

  // stream_bytes must match the remaining payload exactly.
  auto cut = payload;
  cut.pop_back();
  EXPECT_THROW(decode_decompress_request(cut), Error);
  auto padded = payload;
  padded.push_back(0);
  EXPECT_THROW(decode_decompress_request(padded), Error);

  const auto values = test::smooth_signal(100);
  std::vector<u8> resp;
  append_decompress_response(resp, values);
  std::vector<f32> decoded;
  decode_decompress_response(resp, decoded);
  ASSERT_EQ(decoded.size(), values.size());
  EXPECT_EQ(std::memcmp(decoded.data(), values.data(),
                        values.size() * sizeof(f32)),
            0);
  resp.pop_back();
  EXPECT_THROW(decode_decompress_response(resp, decoded), Error);
}

TEST(Protocol, HostileBytesNeverCrashTheDecoders) {
  // test_robustness-style fuzz: random mutations of valid frames, plus
  // pure junk, must throw ceresz::Error — never crash or read OOB.
  const auto data = test::smooth_signal(256);
  CompressRequest creq;
  creq.bound = core::ErrorBound::relative(1e-3);
  creq.data = data;
  std::vector<u8> compress_payload;
  append_compress_request(compress_payload, creq);

  Rng rng(1234);
  for (int trial = 0; trial < 400; ++trial) {
    auto fuzzed = compress_payload;
    const int flips = 1 + static_cast<int>(rng.next_below(16));
    for (int f = 0; f < flips; ++f) {
      fuzzed[rng.next_below(fuzzed.size())] ^=
          static_cast<u8>(1u << rng.next_below(8));
    }
    if (rng.next_below(4) == 0) fuzzed.resize(rng.next_below(fuzzed.size()));
    try {
      (void)decode_compress_request(fuzzed);
    } catch (const Error&) {
    }
  }
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<u8> junk(rng.next_below(256));
    for (auto& b : junk) b = static_cast<u8>(rng.next_u64());
    try {
      (void)parse_frame_header(junk, kDefaultMaxPayload);
    } catch (const Error&) {
    }
    try {
      (void)decode_compress_request(junk);
    } catch (const Error&) {
    }
    try {
      (void)decode_decompress_request(junk);
    } catch (const Error&) {
    }
    try {
      std::vector<f32> out;
      decode_decompress_response(junk, out);
    } catch (const Error&) {
    }
  }
}

// --- BufferPool -------------------------------------------------------------

TEST(BufferPool, ReusesCapacityAndCountsHitsAndMisses) {
  obs::Counter hits, misses;
  BufferPool pool(4, &hits, &misses);
  const u8* grown = nullptr;
  {
    PooledBuffer buf = pool.acquire();
    EXPECT_EQ(misses.value(), 1u);  // empty pool: a miss
    buf->resize(1 << 16);
    grown = buf->data();
  }  // released back to the pool, capacity intact
  EXPECT_EQ(pool.pooled(), 1u);
  {
    PooledBuffer buf = pool.acquire();
    EXPECT_EQ(hits.value(), 1u);
    EXPECT_TRUE(buf->empty());  // size reset...
    EXPECT_GE(buf->capacity(), std::size_t{1} << 16);  // ...capacity kept
    EXPECT_EQ(buf->data(), grown) << "hit did not reuse the same allocation";
  }
}

TEST(BufferPool, FreeListIsBounded) {
  BufferPool pool(2);
  {
    std::vector<PooledBuffer> held;
    for (int i = 0; i < 5; ++i) held.push_back(pool.acquire());
  }
  EXPECT_EQ(pool.pooled(), 2u);  // 3 of the 5 were freed, not pooled
}

// --- live server round trips ------------------------------------------------

ServerOptions test_server(u32 workers = 2) {
  ServerOptions opt;
  opt.port = 0;  // ephemeral
  opt.workers = workers;
  opt.engine.threads = 2;
  opt.engine.chunk_elems = 2048;
  return opt;
}

TEST(Service, RoundTripMatchesLocalEngineByteForByte) {
  ServiceServer server(test_server());
  server.start();

  CereszClient client;
  client.connect("127.0.0.1", server.port());
  EXPECT_GT(client.ping(), 0.0);

  const auto data = test::smooth_signal(10000);
  const auto bound = core::ErrorBound::relative(1e-3);
  const std::vector<u8> remote = client.compress(data, bound);

  engine::EngineOptions local_opt;
  local_opt.threads = 2;
  local_opt.chunk_elems = 2048;
  const engine::ParallelEngine local(local_opt);
  const auto reference = local.compress(data, bound);
  EXPECT_EQ(remote, reference.stream)
      << "service container differs from the CLI/engine path";

  const std::vector<f32> values = client.decompress(remote);
  ASSERT_EQ(values.size(), data.size());
  const auto local_back = local.decompress(reference.stream);
  EXPECT_EQ(std::memcmp(values.data(), local_back.values.data(),
                        values.size() * sizeof(f32)),
            0);

  const std::string stats = client.stats_json();
  EXPECT_NE(stats.find(kMetricRequests), std::string::npos);
  EXPECT_NE(stats.find("ceresz_engine_chunks_total"), std::string::npos);

  server.stop();
  EXPECT_EQ(server.metrics().counter(kMetricCompressRequests).value(), 1u);
  EXPECT_EQ(server.metrics().counter(kMetricDecompressRequests).value(), 1u);
  EXPECT_EQ(server.metrics().counter(kMetricErrorResponses).value(), 0u);
}

TEST(Service, EmptyDataRoundTrip) {
  ServiceServer server(test_server());
  server.start();
  CereszClient client;
  client.connect("127.0.0.1", server.port());
  const std::vector<f32> empty;
  const auto stream = client.compress(empty, core::ErrorBound::absolute(1e-3));
  EXPECT_TRUE(client.decompress(stream).empty());
}

TEST(Service, ConcurrentClientsAllRoundTrip) {
  ServiceServer server(test_server(/*workers=*/4));
  server.start();
  const u16 port = server.port();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&, c] {
      try {
        CereszClient client;
        client.connect("127.0.0.1", port);
        const auto data = test::smooth_signal(8192, 100 + c);
        for (int r = 0; r < 3; ++r) {
          const auto stream =
              client.compress(data, core::ErrorBound::relative(1e-3));
          const auto values = client.decompress(stream);
          if (values.size() != data.size() ||
              test::max_err(data, values) > 1e-2) {
            ++failures;
          }
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.metrics().counter(kMetricCompressRequests).value(), 12u);
  EXPECT_EQ(server.metrics().counter(kMetricConnections).value(), 4u);
}

TEST(Service, ShedsLoadWithBusyWhenInflightLimitIsReached) {
  // One worker, in-flight limit 1, and a fault plan that stalls the only
  // chunk's first attempt: while client A's request occupies the limit,
  // client B must be rejected with an immediate BUSY error frame.
  ServerOptions opt = test_server(/*workers=*/1);
  opt.max_inflight = 1;
  opt.engine.chunk_elems = 65536;  // one chunk
  opt.engine.faults.stall_chunk(0, /*attempts=*/1);
  opt.engine.faults.stall_ms = 400;
  ServiceServer server(std::move(opt));
  server.start();
  const u16 port = server.port();

  const auto data = test::smooth_signal(4096);
  std::atomic<bool> a_ok{false};
  std::thread slow([&] {
    CereszClient a;
    a.connect("127.0.0.1", port);
    const auto stream = a.compress(data, core::ErrorBound::absolute(1e-3));
    a_ok = !stream.empty();
  });

  // Give A's request time to be admitted and start stalling.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  CereszClient b;
  b.connect("127.0.0.1", port);
  try {
    (void)b.compress(data, core::ErrorBound::absolute(1e-3));
    FAIL() << "expected a BUSY rejection while the server was saturated";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.status(), Status::kBusy);
  }
  slow.join();
  EXPECT_TRUE(a_ok.load()) << "the admitted request must still complete";
  EXPECT_GE(server.metrics().counter(kMetricBusyRejected).value(), 1u);

  // The rejected client's connection survives; once the stall is over it
  // can retry successfully — BUSY is backpressure, not a hang-up.
  const auto retry = b.compress(data, core::ErrorBound::absolute(1e-3));
  EXPECT_FALSE(retry.empty());
}

TEST(Service, DeadlineExpiryProducesAnErrorFrameNotAHang) {
  // Every attempt at the only chunk stalls for far longer than the
  // request deadline: the engine watchdog (clamped to the remaining
  // budget) cancels the attempts and the client gets DEADLINE_EXPIRED.
  ServerOptions opt = test_server(/*workers=*/1);
  opt.engine.chunk_elems = 65536;
  opt.engine.faults.stall_chunk(0, /*attempts=*/3);
  opt.engine.faults.stall_ms = 1000;
  ServiceServer server(std::move(opt));
  server.start();

  CereszClient client;
  client.connect("127.0.0.1", server.port());
  const auto data = test::smooth_signal(4096);
  const u64 t0 = now_ns();
  try {
    (void)client.compress(data, core::ErrorBound::absolute(1e-3),
                          /*deadline_ms=*/60);
    FAIL() << "expected DEADLINE_EXPIRED";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.status(), Status::kDeadlineExpired) << e.what();
  }
  // The rejection must come from the deadline machinery, not from the
  // stall running to completion (1 s x 3 attempts).
  EXPECT_LT(static_cast<f64>(now_ns() - t0) * 1e-9, 1.5);
  EXPECT_GE(server.metrics().counter(kMetricDeadlineExpired).value(), 1u);

  // The connection is still usable for an undeadlined request (attempt 3
  // of chunk 0 is past the fault plan, but a fresh request starts at
  // attempt 0 again — so give this one room to outlive one stall).
  const auto ok = client.compress(data, core::ErrorBound::absolute(1e-3));
  EXPECT_FALSE(ok.empty());
}

TEST(Service, CorruptStreamGetsTypedErrorAndConnectionSurvives) {
  ServiceServer server(test_server());
  server.start();
  CereszClient client;
  client.connect("127.0.0.1", server.port());

  std::vector<u8> junk(500);
  Rng rng(9);
  for (auto& b : junk) b = static_cast<u8>(rng.next_u64());
  try {
    (void)client.decompress(junk);
    FAIL() << "expected CORRUPT_STREAM";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.status(), Status::kCorruptStream) << e.what();
  }

  // Error frames are responses, not hang-ups: the same connection then
  // serves a valid round trip.
  const auto data = test::smooth_signal(2048);
  const auto stream = client.compress(data, core::ErrorBound::relative(1e-3));
  const auto values = client.decompress(stream);
  EXPECT_EQ(values.size(), data.size());
  EXPECT_EQ(server.metrics().counter(kMetricErrorResponses).value(), 1u);
}

TEST(Service, OversizedFrameIsRejectedAsMalformed) {
  ServerOptions opt = test_server();
  opt.max_frame_payload = 1 << 16;  // 64 KiB cap
  ServiceServer server(std::move(opt));
  server.start();

  CereszClient client;
  client.connect("127.0.0.1", server.port());
  const auto big = test::smooth_signal(1 << 15);  // 128 KiB of f32 payload
  try {
    (void)client.compress(big, core::ErrorBound::absolute(1e-3));
    FAIL() << "expected a MALFORMED rejection";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.status(), Status::kMalformed) << e.what();
  } catch (const Error&) {
    // Equally acceptable: the server hung up after the error frame and
    // the client saw the closed socket first.
  }
  EXPECT_GE(server.metrics().counter(kMetricMalformed).value(), 1u);
}

TEST(Service, GarbageBytesDoNotKillTheServer) {
  ServiceServer server(test_server());
  server.start();
  const u16 port = server.port();

  // Blast junk at the listener from several raw sockets. The readers
  // must answer with a malformed error frame and/or hang up — and the
  // server must keep serving well-formed clients afterwards.
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    Socket raw = connect_to("127.0.0.1", port);
    std::vector<u8> junk(1 + rng.next_below(256));
    for (auto& b : junk) b = static_cast<u8>(rng.next_u64());
    try {
      raw.write_all(junk);
      raw.shutdown_both();
    } catch (const Error&) {
      // The server may hang up mid-write; that is fine.
    }
  }

  CereszClient client;
  client.connect("127.0.0.1", port);
  const auto data = test::smooth_signal(2048);
  const auto stream = client.compress(data, core::ErrorBound::relative(1e-3));
  EXPECT_EQ(client.decompress(stream).size(), data.size());
}

TEST(Service, StopUnblocksIdleConnectionsAndIsIdempotent) {
  auto server = std::make_unique<ServiceServer>(test_server());
  server->start();
  CereszClient idle;
  idle.connect("127.0.0.1", server->port());  // connected, never sends
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server->stop();
  server->stop();  // idempotent
  EXPECT_FALSE(server->running());
  server.reset();  // destructor after explicit stop is fine too
}

TEST(Service, StopWithRequestsInFlightDoesNotHang) {
  // A request is mid-execution (stalled chunk) when stop() lands. The
  // shutdown sequence lets workers drain what was queued, so stop()
  // must return promptly — after the stall, never wedged.
  ServerOptions opt = test_server(/*workers=*/1);
  opt.engine.chunk_elems = 65536;  // one chunk
  opt.engine.faults.stall_chunk(0, /*attempts=*/1);
  opt.engine.faults.stall_ms = 300;
  ServiceServer server(std::move(opt));
  server.start();
  const u16 port = server.port();

  const auto data = test::smooth_signal(4096);
  std::thread slow([&] {
    try {
      CereszClient a;
      a.connect("127.0.0.1", port);
      (void)a.compress(data, core::ErrorBound::absolute(1e-3));
    } catch (const Error&) {
      // stop() may hang up before the response; either way is fine —
      // the point is that nothing hangs or crashes.
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const u64 t0 = now_ns();
  server.stop();
  EXPECT_LT(static_cast<f64>(now_ns() - t0) * 1e-9, 5.0)
      << "stop() wedged behind an in-flight request";
  slow.join();
}

TEST(Service, RestartOnTheSamePortWorks) {
  // Stop must release the port completely: a new server (and a
  // restarted one) binds the same port and serves.
  const auto data = test::smooth_signal(2048);
  const auto bound = core::ErrorBound::relative(1e-3);
  u16 port = 0;
  {
    ServiceServer first(test_server());
    first.start();
    port = first.port();
    CereszClient client;
    client.connect("127.0.0.1", port);
    EXPECT_FALSE(client.compress(data, bound).empty());
    first.stop();
  }

  ServerOptions opt = test_server();
  opt.port = port;  // the exact port the first server just released
  ServiceServer second(std::move(opt));
  second.start();
  EXPECT_EQ(second.port(), port);
  CereszClient client;
  client.connect("127.0.0.1", port);
  EXPECT_FALSE(client.compress(data, bound).empty());
  second.stop();

  // Same OBJECT restarted: start/stop/start on one ServiceServer.
  second.start();
  CereszClient again;
  again.connect("127.0.0.1", second.port());
  EXPECT_FALSE(again.compress(data, bound).empty());
  second.stop();
}

}  // namespace
}  // namespace ceresz::net
