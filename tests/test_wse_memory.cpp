#include "wse/memory.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ceresz::wse {
namespace {

TEST(PeMemory, TracksUsage) {
  PeMemory mem(48 * 1024);
  EXPECT_EQ(mem.capacity(), 48u * 1024);
  EXPECT_EQ(mem.used(), 0u);
  mem.allocate("a", 1000);
  mem.allocate("b", 2000);
  EXPECT_EQ(mem.used(), 3000u);
  EXPECT_EQ(mem.available(), 48u * 1024 - 3000);
  mem.release("a");
  EXPECT_EQ(mem.used(), 2000u);
  EXPECT_EQ(mem.peak(), 3000u);
}

TEST(PeMemory, OverflowThrows) {
  PeMemory mem(1024);
  mem.allocate("a", 1000);
  EXPECT_THROW(mem.allocate("b", 100), ceresz::Error);
  // The failed allocation must not leak accounting.
  EXPECT_EQ(mem.used(), 1000u);
  mem.allocate("c", 24);
  EXPECT_EQ(mem.used(), 1024u);
}

TEST(PeMemory, DuplicateNameThrows) {
  PeMemory mem(1024);
  mem.allocate("buf", 10);
  EXPECT_THROW(mem.allocate("buf", 10), ceresz::Error);
}

TEST(PeMemory, UnknownReleaseThrows) {
  PeMemory mem(1024);
  EXPECT_THROW(mem.release("nope"), ceresz::Error);
}

TEST(PeMemory, ExactFit) {
  PeMemory mem(64);
  mem.allocate("all", 64);
  EXPECT_EQ(mem.available(), 0u);
}

}  // namespace
}  // namespace ceresz::wse
