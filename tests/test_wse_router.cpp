#include "wse/router.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ceresz::wse {
namespace {

TEST(Direction, Opposites) {
  EXPECT_EQ(opposite(Direction::kEast), Direction::kWest);
  EXPECT_EQ(opposite(Direction::kWest), Direction::kEast);
  EXPECT_EQ(opposite(Direction::kNorth), Direction::kSouth);
  EXPECT_EQ(opposite(Direction::kSouth), Direction::kNorth);
  EXPECT_EQ(opposite(Direction::kRamp), Direction::kRamp);
}

TEST(Direction, Deltas) {
  EXPECT_EQ(dcol(Direction::kEast), 1);
  EXPECT_EQ(dcol(Direction::kWest), -1);
  EXPECT_EQ(drow(Direction::kSouth), 1);
  EXPECT_EQ(drow(Direction::kNorth), -1);
  EXPECT_EQ(dcol(Direction::kRamp), 0);
  EXPECT_EQ(drow(Direction::kRamp), 0);
}

TEST(RouterConfig, SetAndQuery) {
  RouterConfig router;
  EXPECT_FALSE(router.is_configured(5));
  router.set_route(5, {Direction::kWest}, {Direction::kRamp, Direction::kEast});
  EXPECT_TRUE(router.is_configured(5));
  const RouteEntry& e = router.route(5);
  EXPECT_TRUE(e.has_input(Direction::kWest));
  EXPECT_FALSE(e.has_input(Direction::kEast));
  EXPECT_TRUE(e.has_output(Direction::kRamp));
  EXPECT_TRUE(e.has_output(Direction::kEast));
  EXPECT_FALSE(e.has_output(Direction::kSouth));
}

TEST(RouterConfig, ReconfigureRequiresClear) {
  RouterConfig router;
  router.set_route(3, {Direction::kWest}, {Direction::kEast});
  EXPECT_THROW(router.set_route(3, {Direction::kNorth}, {Direction::kSouth}),
               Error);
  router.clear_route(3);
  EXPECT_FALSE(router.is_configured(3));
  router.set_route(3, {Direction::kNorth}, {Direction::kSouth});
  EXPECT_TRUE(router.route(3).has_input(Direction::kNorth));
}

TEST(RouterConfig, RejectsEmptyOutputs) {
  RouterConfig router;
  EXPECT_THROW(router.set_route(1, {Direction::kWest}, {}), Error);
}

TEST(RouterConfig, RejectsOutOfRangeColor) {
  RouterConfig router;
  EXPECT_THROW(router.set_route(kNumColors, {}, {Direction::kEast}), Error);
  EXPECT_THROW(router.route(kNumColors), Error);
}

TEST(Message, MakeOwnsWords) {
  Message m = Message::make(7, {1, 2, 3}, 99);
  EXPECT_EQ(m.color, 7);
  EXPECT_EQ(m.extent, 3u);
  EXPECT_EQ(m.tag, 99u);
  ASSERT_NE(m.payload, nullptr);
  EXPECT_EQ((*m.payload)[2], 3u);
}

TEST(Message, TokenHasNoPayload) {
  Message m = Message::token(2, 32);
  EXPECT_EQ(m.extent, 32u);
  EXPECT_EQ(m.payload, nullptr);
}

}  // namespace
}  // namespace ceresz::wse
