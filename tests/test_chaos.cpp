// Network chaos suite: every fault the ChaosProxy can inject between
// CereszClient and ServiceServer must end in one of exactly two
// outcomes — a byte-identical round trip after retries, or a typed
// error the caller can reason about. Never a hang, never a crash, and
// above all never silently corrupted data (the frame CRC's job).
//
// All fault schedules are fixed-seed NetFaultPlans, so connection
// indices, injected faults, and therefore the exact counters asserted
// below are reproducible run to run — the wse::FaultPlan philosophy
// applied to TCP.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "engine/parallel_engine.h"
#include "net/chaos.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "test_util.h"

namespace ceresz::net {
namespace {

ServerOptions test_server(u32 workers = 2) {
  ServerOptions opt;
  opt.port = 0;  // ephemeral
  opt.workers = workers;
  opt.engine.threads = 2;
  opt.engine.chunk_elems = 2048;
  return opt;
}

/// A policy that fights: several attempts, fast deterministic backoff,
/// bounded per-attempt I/O so black holes cost milliseconds.
RetryPolicy resilient_policy(u32 attempts = 6, u32 attempt_timeout_ms = 500) {
  RetryPolicy p;
  p.max_attempts = attempts;
  p.backoff_us = 500;
  p.backoff_cap_us = 5'000;
  p.retry_budget = 1'000;
  p.connect_timeout_ms = 2'000;
  p.attempt_timeout_ms = attempt_timeout_ms;
  p.jitter_seed = 7;
  return p;
}

/// Reference bytes for the byte-identity assertions: the same engine
/// configuration the test server uses.
struct Reference {
  std::vector<f32> data;
  std::vector<u8> stream;
  std::vector<f32> values;

  explicit Reference(std::size_t n) : data(test::smooth_signal(n)) {
    engine::EngineOptions opt;
    opt.threads = 2;
    opt.chunk_elems = 2048;
    const engine::ParallelEngine eng(opt);
    stream = eng.compress(data, core::ErrorBound::relative(1e-3)).stream;
    values = eng.decompress(stream).values;
  }
};

bool identical(const std::vector<u8>& a, const std::vector<u8>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

bool identical_f32(const std::vector<f32>& a, const std::vector<f32>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(f32)) == 0);
}

// --- NetFaultPlan determinism -----------------------------------------------

TEST(NetFaultPlan, SameSeedSameSchedule) {
  NetChaosSpec spec;
  spec.reset_frac = 0.2;
  spec.blackhole_frac = 0.1;
  spec.delay_frac = 0.2;
  spec.short_write_frac = 0.1;
  spec.truncate_frac = 0.2;
  spec.corrupt_frac = 0.1;
  const NetFaultPlan a = NetFaultPlan::random(123, spec);
  const NetFaultPlan b = NetFaultPlan::random(123, spec);
  const NetFaultPlan c = NetFaultPlan::random(124, spec);

  int kinds_seen = 0;
  bool any_difference_from_c = false;
  for (u64 conn = 0; conn < 256; ++conn) {
    const ConnFault fa = a.fault_for(conn);
    const ConnFault fb = b.fault_for(conn);
    EXPECT_EQ(static_cast<int>(fa.kind), static_cast<int>(fb.kind));
    EXPECT_EQ(static_cast<int>(fa.dir), static_cast<int>(fb.dir));
    EXPECT_EQ(fa.trigger_offset, fb.trigger_offset);
    EXPECT_EQ(fa.delay_ms, fb.delay_ms);
    EXPECT_EQ(fa.slice_bytes, fb.slice_bytes);
    EXPECT_EQ(fa.bit, fb.bit);
    if (fa.kind != ChaosFaultKind::kNone) ++kinds_seen;
    if (fa.kind != c.fault_for(conn).kind) any_difference_from_c = true;
  }
  // With these fractions ~90% of connections carry a fault.
  EXPECT_GT(kinds_seen, 128);
  EXPECT_TRUE(any_difference_from_c) << "different seeds, same schedule?";

  // fault_for is a pure function of (seed, index): querying out of
  // order or repeatedly changes nothing.
  const ConnFault f10 = a.fault_for(10);
  (void)a.fault_for(200);
  EXPECT_EQ(static_cast<int>(a.fault_for(10).kind),
            static_cast<int>(f10.kind));
}

TEST(NetFaultPlan, ExplicitEntriesOverrideTheSpec) {
  NetChaosSpec spec;
  spec.delay_frac = 1.0;  // procedurally, everything delays
  NetFaultPlan plan = NetFaultPlan::random(5, spec);
  plan.reset_on_accept(3);
  EXPECT_EQ(static_cast<int>(plan.fault_for(3).kind),
            static_cast<int>(ChaosFaultKind::kResetOnAccept));
  EXPECT_EQ(static_cast<int>(plan.fault_for(4).kind),
            static_cast<int>(ChaosFaultKind::kDelay));

  NetFaultPlan empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(static_cast<int>(empty.fault_for(0).kind),
            static_cast<int>(ChaosFaultKind::kNone));
}

// --- ChaosProxy: faults in, contract out ------------------------------------

TEST(Chaos, PassthroughProxyIsByteIdentical) {
  ServiceServer server(test_server());
  server.start();
  ChaosProxy proxy("127.0.0.1", server.port(), NetFaultPlan{});
  proxy.start();

  const Reference ref(6000);
  CereszClient client;  // fail-fast: a clean proxy needs no retries
  client.connect("127.0.0.1", proxy.port());
  const auto stream = client.compress(ref.data, core::ErrorBound::relative(1e-3));
  EXPECT_TRUE(identical(stream, ref.stream));
  EXPECT_TRUE(identical_f32(client.decompress(stream), ref.values));
  EXPECT_EQ(proxy.stats().connections.load(), 1u);
  EXPECT_GT(proxy.stats().relayed_bytes.load(), 0u);
  proxy.stop();
}

TEST(Chaos, ResetOnAcceptIsRetriedToByteIdentity) {
  ServiceServer server(test_server());
  server.start();
  NetFaultPlan plan;
  plan.reset_on_accept(0);  // first connection dies, second is clean
  ChaosProxy proxy("127.0.0.1", server.port(), plan);
  proxy.start();

  const Reference ref(6000);
  CereszClient client(resilient_policy());
  client.connect("127.0.0.1", proxy.port());
  const auto stream = client.compress(ref.data, core::ErrorBound::relative(1e-3));
  EXPECT_TRUE(identical(stream, ref.stream));
  EXPECT_EQ(proxy.stats().resets.load(), 1u);
  EXPECT_EQ(client.stats().reconnects, 1u);
  EXPECT_EQ(client.stats().retries, 1u);
  proxy.stop();
}

TEST(Chaos, MidRequestTruncationRecovers) {
  ServiceServer server(test_server());
  server.start();
  NetFaultPlan plan;
  // Hang up 40 bytes into the client->server stream: mid-payload of the
  // first COMPRESS request. The server must shrug off the truncated
  // frame; the client must reconnect and succeed.
  plan.truncate(0, ChaosDir::kClientToServer, 40);
  ChaosProxy proxy("127.0.0.1", server.port(), plan);
  proxy.start();

  const Reference ref(6000);
  CereszClient client(resilient_policy());
  client.connect("127.0.0.1", proxy.port());
  const auto stream = client.compress(ref.data, core::ErrorBound::relative(1e-3));
  EXPECT_TRUE(identical(stream, ref.stream));
  EXPECT_EQ(proxy.stats().truncations.load(), 1u);
  // The truncated request never executed: exactly one compress ran.
  EXPECT_EQ(server.metrics().counter(kMetricCompressRequests).value(), 1u);
  proxy.stop();
}

TEST(Chaos, MidResponseTruncationRetriesAndDuplicateIsObservable) {
  ServiceServer server(test_server());
  server.start();
  NetFaultPlan plan;
  // Hang up 10 bytes into the server->client stream: the response
  // header is truncated AFTER the server fully executed the request.
  plan.truncate(0, ChaosDir::kServerToClient, 10);
  ChaosProxy proxy("127.0.0.1", server.port(), plan);
  proxy.start();

  const Reference ref(6000);
  CereszClient client(resilient_policy());
  client.connect("127.0.0.1", proxy.port());
  const auto stream = client.compress(ref.data, core::ErrorBound::relative(1e-3));
  EXPECT_TRUE(identical(stream, ref.stream));
  // The retry re-executed a request the server had already served: the
  // duplicate is OBSERVABLE (same request id, compress counter at 2) —
  // the at-least-once contract, honestly accounted.
  EXPECT_EQ(server.metrics().counter(kMetricCompressRequests).value(), 2u);
  EXPECT_EQ(client.stats().retries, 1u);
  proxy.stop();
}

TEST(Chaos, BlackholeTimesOutThenRecovers) {
  ServiceServer server(test_server());
  server.start();
  NetFaultPlan plan;
  plan.blackhole(0);  // first connection swallows everything
  ChaosProxy proxy("127.0.0.1", server.port(), plan);
  proxy.start();

  const Reference ref(6000);
  CereszClient client(resilient_policy(/*attempts=*/4,
                                       /*attempt_timeout_ms=*/200));
  client.connect("127.0.0.1", proxy.port());
  const u64 t0 = now_ns();
  const auto stream = client.compress(ref.data, core::ErrorBound::relative(1e-3));
  EXPECT_TRUE(identical(stream, ref.stream));
  EXPECT_EQ(client.stats().timeouts, 1u);
  EXPECT_EQ(proxy.stats().blackholes.load(), 1u);
  // Bounded by the attempt timeout, not the kernel's TCP patience.
  EXPECT_LT(static_cast<f64>(now_ns() - t0) * 1e-9, 5.0);
  proxy.stop();
}

TEST(Chaos, DelayedConnectionStillRoundTrips) {
  ServiceServer server(test_server());
  server.start();
  NetFaultPlan plan;
  plan.delay(0, 30);
  ChaosProxy proxy("127.0.0.1", server.port(), plan);
  proxy.start();

  const Reference ref(6000);
  CereszClient client(resilient_policy());
  client.connect("127.0.0.1", proxy.port());
  const auto stream = client.compress(ref.data, core::ErrorBound::relative(1e-3));
  EXPECT_TRUE(identical(stream, ref.stream));
  EXPECT_TRUE(identical_f32(client.decompress(stream), ref.values));
  EXPECT_GE(proxy.stats().delays.load(), 1u);
  EXPECT_EQ(client.stats().retries, 0u) << "a delay is not a failure";
  proxy.stop();
}

TEST(Chaos, DribbledBytesStillRoundTrip) {
  ServiceServer server(test_server());
  server.start();
  NetFaultPlan plan;
  // Forward the request 64 bytes at a time with 1 ms pauses: impolitely
  // slow, but bytes keep flowing — no timeout may trip.
  plan.short_write(0, ChaosDir::kClientToServer, 64, 1);
  ChaosProxy proxy("127.0.0.1", server.port(), plan);
  proxy.start();

  const Reference ref(1500);  // small payload: the dribble stays quick
  CereszClient client(resilient_policy());
  client.connect("127.0.0.1", proxy.port());
  const auto stream = client.compress(ref.data, core::ErrorBound::relative(1e-3));
  EXPECT_TRUE(identical(stream, ref.stream));
  EXPECT_GT(proxy.stats().short_write_slices.load(), 10u);
  EXPECT_EQ(client.stats().retries, 0u);
  proxy.stop();
}

TEST(Chaos, CorruptedResponseIsATypedTerminalError) {
  ServiceServer server(test_server());
  server.start();
  NetFaultPlan plan;
  // Flip one bit 100 bytes into the server->client stream: inside the
  // first response's payload (36-byte header + container bytes). In v1
  // this was SILENT data corruption; in v2 the frame CRC catches it.
  plan.corrupt_byte(0, ChaosDir::kServerToClient, 100, 3);
  ChaosProxy proxy("127.0.0.1", server.port(), plan);
  proxy.start();

  const Reference ref(6000);
  CereszClient client(resilient_policy());
  client.connect("127.0.0.1", proxy.port());
  EXPECT_THROW(client.compress(ref.data, core::ErrorBound::relative(1e-3)),
               CorruptResponse);
  EXPECT_EQ(client.stats().corrupt_responses, 1u);
  EXPECT_EQ(proxy.stats().corruptions.load(), 1u);

  // Terminal for that request — but the client recovers on the next
  // one (fresh connection, no fault scheduled on conn 1).
  const auto stream = client.compress(ref.data, core::ErrorBound::relative(1e-3));
  EXPECT_TRUE(identical(stream, ref.stream));
  proxy.stop();
}

TEST(Chaos, CorruptedRequestIsRejectedByTheServerCrc) {
  ServiceServer server(test_server());
  server.start();
  NetFaultPlan plan;
  // Flip a bit 100 bytes into the client->server stream: inside the
  // COMPRESS payload's raw f32 data (36-byte header + 24-byte fixed
  // part ends at 60). Without the frame CRC the server would compress
  // subtly wrong data and no one would ever know.
  plan.corrupt_byte(0, ChaosDir::kClientToServer, 100, 5);
  ChaosProxy proxy("127.0.0.1", server.port(), plan);
  proxy.start();

  const Reference ref(6000);
  CereszClient client;  // fail-fast: the rejection must surface typed
  client.connect("127.0.0.1", proxy.port());
  try {
    (void)client.compress(ref.data, core::ErrorBound::relative(1e-3));
    FAIL() << "expected a MALFORMED rejection from the server CRC check";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.status(), Status::kMalformed) << e.what();
  }
  EXPECT_EQ(server.metrics().counter(kMetricPayloadCrcRejected).value(), 1u);
  EXPECT_EQ(server.metrics().counter(kMetricCompressRequests).value(), 0u)
      << "corrupt data must never reach the engine";

  // Framing was intact, so the SAME connection still serves: the fault
  // fired once at its offset; the retry passes through untouched.
  const auto stream = client.compress(ref.data, core::ErrorBound::relative(1e-3));
  EXPECT_TRUE(identical(stream, ref.stream));
  proxy.stop();
}

TEST(Chaos, RetryBudgetBoundsTheFight) {
  ServiceServer server(test_server());
  server.start();
  NetChaosSpec spec;
  spec.reset_frac = 1.0;  // EVERY connection is reset
  ChaosProxy proxy("127.0.0.1", server.port(),
                   NetFaultPlan::random(9, spec));
  proxy.start();

  RetryPolicy p = resilient_policy(/*attempts=*/100);
  p.retry_budget = 5;
  CereszClient client(p);
  client.connect("127.0.0.1", proxy.port());
  const Reference ref(1500);
  EXPECT_THROW(client.compress(ref.data, core::ErrorBound::relative(1e-3)),
               Error);
  EXPECT_EQ(client.stats().retries, 5u);
  EXPECT_EQ(client.stats().budget_exhausted, 1u);
  EXPECT_EQ(client.stats().attempts, 6u);  // initial + 5 budgeted retries
  proxy.stop();
}

TEST(Chaos, OverallDeadlineBoundsTheFight) {
  ServiceServer server(test_server());
  server.start();
  NetChaosSpec spec;
  spec.blackhole_frac = 1.0;  // every connection swallows everything
  ChaosProxy proxy("127.0.0.1", server.port(),
                   NetFaultPlan::random(10, spec));
  proxy.start();

  RetryPolicy p = resilient_policy(/*attempts=*/100,
                                   /*attempt_timeout_ms=*/150);
  p.overall_deadline_ms = 500;
  CereszClient client(p);
  client.connect("127.0.0.1", proxy.port());
  const Reference ref(1500);
  const u64 t0 = now_ns();
  EXPECT_THROW(client.compress(ref.data, core::ErrorBound::relative(1e-3)),
               NetTimeout);
  const f64 elapsed = static_cast<f64>(now_ns() - t0) * 1e-9;
  EXPECT_LT(elapsed, 3.0) << "overall deadline did not bound the retries";
  EXPECT_GE(client.stats().timeouts, 2u);
  proxy.stop();
}

TEST(Chaos, StormEndsInByteIdentityOrTypedErrorsOnly) {
  // The integration storm: a seeded mix of every fault class against
  // concurrent clients. Each request must end byte-identical or in a
  // typed error — any untyped failure, hang, or silent mismatch fails.
  ServiceServer server(test_server(/*workers=*/4));
  server.start();
  NetChaosSpec spec;
  spec.reset_frac = 0.15;
  spec.blackhole_frac = 0.05;
  spec.delay_frac = 0.15;
  spec.short_write_frac = 0.05;
  spec.truncate_frac = 0.15;
  spec.corrupt_frac = 0.10;
  spec.max_delay_ms = 10;
  spec.slice_bytes = 2048;
  ChaosProxy proxy("127.0.0.1", server.port(),
                   NetFaultPlan::random(31337, spec));
  proxy.start();
  const u16 port = proxy.port();

  const Reference ref(6000);
  std::atomic<int> silent_corruption{0};
  std::atomic<int> untyped_failures{0};
  std::atomic<int> typed_errors{0};
  std::atomic<int> successes{0};

  std::vector<std::thread> threads;
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&, c] {
      RetryPolicy p = resilient_policy(/*attempts=*/8,
                                       /*attempt_timeout_ms=*/300);
      p.jitter_seed = 100 + c;
      CereszClient client(p);
      for (int r = 0; r < 4; ++r) {
        try {
          if (!client.connected()) client.connect("127.0.0.1", port);
          const auto stream =
              client.compress(ref.data, core::ErrorBound::relative(1e-3));
          if (!identical(stream, ref.stream)) {
            ++silent_corruption;
            continue;
          }
          const auto values = client.decompress(stream);
          if (!identical_f32(values, ref.values)) {
            ++silent_corruption;
          } else {
            ++successes;
          }
        } catch (const CorruptResponse&) {
          ++typed_errors;  // CRC caught in-flight corruption: contract held
        } catch (const ServiceError&) {
          ++typed_errors;  // typed error frame: contract held
        } catch (const NetTimeout&) {
          ++typed_errors;  // bounded give-up: contract held
        } catch (const Error&) {
          ++typed_errors;  // transport failure after retries: typed too
        } catch (const std::exception&) {
          ++untyped_failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(silent_corruption.load(), 0)
      << "a fault slipped through as wrong bytes";
  EXPECT_EQ(untyped_failures.load(), 0);
  EXPECT_GT(successes.load(), 0) << "the storm drowned every request";
  // The storm actually stormed: the proxy injected real faults.
  const auto& ps = proxy.stats();
  EXPECT_GT(ps.resets.load() + ps.truncations.load() +
                ps.corruptions.load() + ps.blackholes.load(),
            0u);
  proxy.stop();
  server.stop();
}

// --- server hardening: slow peers, idle peers, drain ------------------------

TEST(Hardening, SlowLorisIsReapedWhileOthersKeepServing) {
  ServerOptions opt = test_server();
  opt.io_timeout_ms = 150;  // mid-frame stalls die fast
  ServiceServer server(std::move(opt));
  server.start();
  const u16 port = server.port();

  // The attacker: sends 4 header bytes, then stalls forever.
  Socket loris = connect_to("127.0.0.1", port);
  const u8 partial[4] = {'C', 'S', 'N', 'P'};
  loris.write_all(std::span<const u8>(partial, 4));

  // A polite client keeps getting served while the loris stalls.
  const Reference ref(1500);
  CereszClient client;
  client.connect("127.0.0.1", port);
  const auto stream = client.compress(ref.data, core::ErrorBound::relative(1e-3));
  EXPECT_TRUE(identical(stream, ref.stream));

  // The loris is reaped within the timeout (poll for the counter, with
  // a generous deadline for slow CI).
  const u64 deadline = now_ns() + u64{5'000'000'000};
  while (server.metrics().counter(kMetricIoTimeouts).value() == 0 &&
         now_ns() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.metrics().counter(kMetricIoTimeouts).value(), 1u);
  // Its socket was hung up: readable-EOF, not a hang.
  EXPECT_TRUE(loris.wait_readable(2'000));

  // And the polite client still works afterwards.
  EXPECT_TRUE(identical_f32(client.decompress(stream), ref.values));
  server.stop();
}

TEST(Hardening, IdleConnectionsAreReaped) {
  ServerOptions opt = test_server();
  opt.idle_timeout_ms = 100;
  ServiceServer server(std::move(opt));
  server.start();

  Socket idler = connect_to("127.0.0.1", server.port());  // never sends
  const u64 deadline = now_ns() + u64{5'000'000'000};
  while (server.metrics().counter(kMetricIdleReaped).value() == 0 &&
         now_ns() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.metrics().counter(kMetricIdleReaped).value(), 1u);
  EXPECT_TRUE(idler.wait_readable(2'000));  // hung up: EOF is readable
  server.stop();
}

TEST(Hardening, DrainFinishesInFlightAndRejectsNewWork) {
  // One worker with a stalled first chunk attempt: the in-flight
  // request is still executing when drain() lands. It must complete;
  // new work must be rejected DRAINING; new connects must fail.
  ServerOptions opt = test_server(/*workers=*/1);
  opt.engine.chunk_elems = 65536;  // one chunk
  opt.engine.faults.stall_chunk(0, /*attempts=*/1);
  opt.engine.faults.stall_ms = 300;
  ServiceServer server(std::move(opt));
  server.start();
  const u16 port = server.port();

  const auto data = test::smooth_signal(4096);
  std::atomic<bool> inflight_ok{false};
  std::thread slow([&] {
    CereszClient a;
    a.connect("127.0.0.1", port);
    const auto stream = a.compress(data, core::ErrorBound::absolute(1e-3));
    inflight_ok = !stream.empty();
  });

  // B connects BEFORE the drain, then probes it.
  CereszClient b;
  b.connect("127.0.0.1", port);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(server.draining());
  server.drain();
  EXPECT_TRUE(server.draining());

  b.ping();
  EXPECT_EQ(b.server_state(), "DRAINING");
  try {
    (void)b.compress(data, core::ErrorBound::absolute(1e-3));
    FAIL() << "expected a DRAINING rejection";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.status(), Status::kDraining) << e.what();
  }
  // New connections are refused outright (the listener is down).
  EXPECT_THROW(connect_to("127.0.0.1", port, /*connect_timeout_ms=*/500),
               Error);

  // The admitted request finishes; drain reaches idle.
  EXPECT_TRUE(server.wait_idle(/*timeout_ms=*/5'000));
  slow.join();
  EXPECT_TRUE(inflight_ok.load())
      << "drain must let in-flight work complete";
  EXPECT_GE(server.metrics().counter(kMetricDrainRejected).value(), 1u);
  EXPECT_EQ(server.metrics().gauge(kMetricDraining).value(), 1.0);
  server.stop();
}

// --- connect timeout --------------------------------------------------------

TEST(ConnectTimeout, BlackholedAddressFailsFastNotForever) {
  // A listener whose accept backlog is saturated silently drops
  // further SYNs (the kernel just keeps re-transmitting) — the classic
  // unreachable-peer shape, reproduced deterministically on loopback.
  // With a connect timeout the attempt is bounded; without one it
  // would sit in the kernel's SYN retries for minutes.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::listen(lfd, /*backlog=*/0), 0);  // never accepted from
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const u16 port = ntohs(addr.sin_port);

  // Fill the (tiny) queue with connections nobody will ever accept.
  std::vector<int> fillers;
  for (int i = 0; i < 4; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    (void)::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    fillers.push_back(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const u64 t0 = now_ns();
  bool timed_out = false;
  try {
    (void)connect_to("127.0.0.1", port, /*connect_timeout_ms=*/300);
    FAIL() << "expected the connect to fail against a full backlog";
  } catch (const NetTimeout&) {
    timed_out = true;  // the bounded path under test
  } catch (const Error&) {
    // A host with tcp_abort_on_overflow answers with RST instead of
    // silence — still a prompt, typed failure.
  }
  const f64 elapsed = static_cast<f64>(now_ns() - t0) * 1e-9;
  if (timed_out) {
    EXPECT_GE(elapsed, 0.2);
  }
  EXPECT_LT(elapsed, 5.0);
  for (const int fd : fillers) ::close(fd);
  ::close(lfd);
}

}  // namespace
}  // namespace ceresz::net
