#include "mapping/csl_codegen.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/costmodel.h"
#include "core/stage.h"

namespace ceresz::mapping {
namespace {

PipelinePlan plan_for(u32 fl, u32 pl) {
  GreedyScheduler sched(core::PeCostModel{}, 32);
  return sched.distribute(core::compression_substages(fl), pl);
}

CslCodegen codegen(u32 rows = 4, u32 cols = 8) {
  wse::WseConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  return CslCodegen(cfg, 32);
}

TEST(CslCodegen, EmitsAllFourArtifacts) {
  const auto program = codegen().generate(plan_for(12, 2));
  EXPECT_FALSE(program.layout.empty());
  EXPECT_FALSE(program.head_pe.empty());
  EXPECT_FALSE(program.stage_pe.empty());
  EXPECT_FALSE(program.readme.empty());
}

TEST(CslCodegen, LayoutDeclaresMeshAndColors) {
  const auto program = codegen(16, 32).generate(plan_for(12, 4));
  EXPECT_NE(program.layout.find("@set_rectangle(32, 16)"), std::string::npos);
  EXPECT_NE(program.layout.find("RAW_A"), std::string::npos);
  EXPECT_NE(program.layout.find("INTER_B"), std::string::npos);
  EXPECT_NE(program.layout.find("head_pe.csl"), std::string::npos);
  EXPECT_NE(program.layout.find("stage_pe.csl"), std::string::npos);
}

TEST(CslCodegen, HeadImplementsFig9Relay) {
  const auto program = codegen().generate(plan_for(12, 1));
  // The Fig. 9(b) idiom: counting relay, async mov to dout or to memory,
  // compute reactivating the relay.
  EXPECT_NE(program.head_pe.find("task relay()"), std::string::npos);
  EXPECT_NE(program.head_pe.find("@mov32(dout, din"), std::string::npos);
  EXPECT_NE(program.head_pe.find(".activate = computeColor"),
            std::string::npos);
  EXPECT_NE(program.head_pe.find("@activate(relayColor)"), std::string::npos);
  EXPECT_NE(program.head_pe.find("@bind_local_task(relay, relayColor)"),
            std::string::npos);
}

TEST(CslCodegen, HeadCarriesFirstStageGroup) {
  const auto program = codegen().generate(plan_for(12, 3));
  // Group 0 always begins with the quantization multiply.
  EXPECT_NE(program.head_pe.find("Multiplication"), std::string::npos);
  // With PL = 3 the head forwards intermediates instead of emitting.
  EXPECT_NE(program.head_pe.find("send_intermediate"), std::string::npos);
}

TEST(CslCodegen, SinglePePipelineEmitsRecordAtHead) {
  const auto program = codegen().generate(plan_for(12, 1));
  EXPECT_NE(program.head_pe.find("send_record"), std::string::npos);
}

TEST(CslCodegen, StageFileHasOneTaskPerGroup) {
  const auto program = codegen().generate(plan_for(17, 4));
  for (u32 g = 1; g < 4; ++g) {
    EXPECT_NE(program.stage_pe.find("task stage_group_" + std::to_string(g)),
              std::string::npos)
        << g;
  }
}

TEST(CslCodegen, TailShuffleIsOpenEnded) {
  const auto program = codegen().generate(plan_for(8, 2));
  EXPECT_NE(program.stage_pe.find("all remaining planes"), std::string::npos);
}

TEST(CslCodegen, ReadmeDocumentsSchedule) {
  const auto program = codegen().generate(plan_for(13, 3));
  EXPECT_NE(program.readme.find("Algorithm 1"), std::string::npos);
  EXPECT_NE(program.readme.find("cslc layout.csl"), std::string::npos);
}

TEST(CslCodegen, DecompressionDirectionEmitsInverseKernels) {
  GreedyScheduler sched(core::PeCostModel{}, 32);
  const auto plan =
      sched.distribute(core::decompression_substages(12), 3);
  const auto program =
      codegen().generate(plan, PipeDirection::kDecompress);
  EXPECT_NE(program.layout.find("decompression"), std::string::npos);
  EXPECT_NE(program.head_pe.find("1-bit Unshuffle"), std::string::npos);
  EXPECT_NE(program.stage_pe.find("prefix sum"), std::string::npos);
  EXPECT_NE(program.stage_pe.find("Dequantize"), std::string::npos);
  EXPECT_NE(program.stage_pe.find("send_block"), std::string::npos);
  // No compression kernels leak into the decompression program.
  EXPECT_EQ(program.stage_pe.find("send_record"), std::string::npos);
}

TEST(CslCodegen, EmptyPlanThrows) {
  PipelinePlan empty;
  EXPECT_THROW(codegen().generate(empty), Error);
}

}  // namespace
}  // namespace ceresz::mapping
