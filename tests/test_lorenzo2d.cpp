#include "core/lorenzo2d.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/lorenzo.h"
#include "core/tiled_codec.h"
#include "data/generators.h"
#include "test_util.h"

namespace ceresz::core {
namespace {

TEST(Lorenzo2d, KnownSmallTile) {
  // 2x2 tile: p = [[1, 3], [4, 8]]
  // r(0,0)=1, r(1,0)=3-1=2, r(0,1)=4-1=3, r(1,1)=8-4-3+1=2.
  const std::vector<i32> in = {1, 3, 4, 8};
  std::vector<i32> out(4);
  lorenzo2d_forward(in, out, 2, 2);
  EXPECT_EQ(out, (std::vector<i32>{1, 2, 3, 2}));
  std::vector<i32> back(4);
  lorenzo2d_inverse(out, back, 2, 2);
  EXPECT_EQ(back, in);
}

TEST(Lorenzo2d, DegeneratesTo1dOnSingleRow) {
  const std::vector<i32> in = {5, 7, 4, 4};
  std::vector<i32> out2d(4), out1d(4);
  lorenzo2d_forward(in, out2d, 4, 1);
  lorenzo_forward(in, out1d);
  EXPECT_EQ(out2d, out1d);
}

TEST(Lorenzo2d, BilinearPlaneHasZeroInteriorResiduals) {
  // p(x,y) = 3x + 5y: second-order differences vanish in the interior.
  std::vector<i32> in(8 * 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 8; ++x) in[y * 8 + x] = 3 * x + 5 * y;
  }
  std::vector<i32> out(in.size());
  lorenzo2d_forward(in, out, 8, 4);
  for (int y = 1; y < 4; ++y) {
    for (int x = 1; x < 8; ++x) EXPECT_EQ(out[y * 8 + x], 0);
  }
}

TEST(Lorenzo2d, InPlaceRejected) {
  std::vector<i32> buf(16, 1);
  EXPECT_THROW(lorenzo2d_forward(buf, buf, 4, 4), Error);
  EXPECT_THROW(lorenzo2d_inverse(buf, buf, 4, 4), Error);
}

TEST(Lorenzo2d, DimMismatchThrows) {
  std::vector<i32> in(16), out(16);
  EXPECT_THROW(lorenzo2d_forward(in, out, 5, 4), Error);
}

class Lorenzo2dRoundTrip
    : public ::testing::TestWithParam<std::tuple<u32, u32, u64>> {};

TEST_P(Lorenzo2dRoundTrip, Holds) {
  const auto [w, h, seed] = GetParam();
  Rng rng(seed);
  std::vector<i32> in(static_cast<std::size_t>(w) * h);
  for (auto& v : in) v = static_cast<i32>(rng.next_below(1u << 16)) - (1 << 15);
  std::vector<i32> fwd(in.size()), back(in.size());
  lorenzo2d_forward(in, fwd, w, h);
  lorenzo2d_inverse(fwd, back, w, h);
  EXPECT_EQ(back, in);
}

INSTANTIATE_TEST_SUITE_P(
    Tiles, Lorenzo2dRoundTrip,
    ::testing::Combine(::testing::Values(1u, 4u, 8u, 16u),
                       ::testing::Values(1u, 4u, 8u),
                       ::testing::Values(1ull, 2ull)));

TEST(GatherScatter, RoundTripWithEdgePadding) {
  std::vector<f32> field(10 * 7);
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = static_cast<f32>(i);
  }
  std::vector<f32> tile(8 * 4);
  // Tile overlapping the right/bottom edge.
  gather_tile(field, 10, 7, 8, 4, 8, 4, tile);
  EXPECT_EQ(tile[0], field[4 * 10 + 8]);
  EXPECT_EQ(tile[2], 0.0f);  // padding beyond column 9

  std::vector<f32> out(10 * 7, -1.0f);
  scatter_tile(tile, 10, 7, 8, 4, 8, 4, out);
  EXPECT_EQ(out[4 * 10 + 8], field[4 * 10 + 8]);
  EXPECT_EQ(out[0], -1.0f);  // untouched outside the tile
}

// ---- Tiled 2-D codec ----

TEST(Tiled2dCodec, RoundTripSmoothField) {
  const data::Field f = data::generate_field(data::DatasetId::kCesmAtm, 0,
                                             42, 0.3);
  const Tiled2dCodec codec;
  const std::size_t h = f.dims[0], w = f.dims[1];
  const auto result =
      codec.compress(f.view(), w, h, ErrorBound::relative(1e-3));
  std::size_t rw = 0, rh = 0;
  const auto back = codec.decompress(result.stream, rw, rh);
  EXPECT_EQ(rw, w);
  EXPECT_EQ(rh, h);
  EXPECT_LE(test::max_err(f.view(), back),
            result.eps_abs + test::f32_ulp_slack(f.view()));
}

TEST(Tiled2dCodec, BeatsOneDOnSmooth2dData) {
  // The point of the extension: on 2-D smooth fields, tile-local 2-D
  // Lorenzo produces smaller residuals than the flattened 1-D transform.
  const data::Field f = data::generate_field(data::DatasetId::kCesmAtm, 1,
                                             42, 0.3);
  const ErrorBound bound = ErrorBound::relative(1e-3);
  const StreamCodec codec1d;
  const Tiled2dCodec codec2d;
  const f64 r1 = codec1d.compress(f.view(), bound).compression_ratio();
  const f64 r2 = codec2d.compress(f.view(), f.dims[1], f.dims[0], bound)
                     .compression_ratio();
  EXPECT_GT(r2, r1);
}

TEST(Tiled2dCodec, NonTileAlignedDims) {
  const Tiled2dCodec codec;
  std::vector<f32> field(37 * 23);
  Rng rng(9);
  for (auto& v : field) v = static_cast<f32>(rng.uniform(-1.0, 1.0));
  const auto result =
      codec.compress(field, 37, 23, ErrorBound::absolute(1e-3));
  std::size_t w = 0, h = 0;
  const auto back = codec.decompress(result.stream, w, h);
  EXPECT_EQ(w, 37u);
  EXPECT_EQ(h, 23u);
  EXPECT_LE(test::max_err(field, back), 1e-3 + test::f32_ulp_slack(field));
}

TEST(Tiled2dCodec, RejectsCorruptStreams) {
  const Tiled2dCodec codec;
  std::size_t w, h;
  std::vector<u8> junk(40, 0);
  EXPECT_THROW(codec.decompress(junk, w, h), Error);
}

TEST(Tiled2dCodec, RejectsBadConfig) {
  TiledCodecConfig cfg;
  cfg.tile_w = 3;
  cfg.tile_h = 3;  // 9 elements: not a multiple of 8
  EXPECT_THROW(Tiled2dCodec{cfg}, Error);
}

class Tiled2dProperty : public ::testing::TestWithParam<f64> {};

TEST_P(Tiled2dProperty, BoundHolds) {
  const f64 rel = GetParam();
  const data::Field f = data::generate_field(data::DatasetId::kHurricane, 1,
                                             7, 0.15);
  // Use a 2-D slice of the 3-D field.
  const std::size_t w = f.dims[2], h = f.dims[1];
  std::span<const f32> slice(f.values.data(), w * h);
  const Tiled2dCodec codec;
  const auto result =
      codec.compress(slice, w, h, ErrorBound::relative(rel));
  std::size_t rw, rh;
  const auto back = codec.decompress(result.stream, rw, rh);
  EXPECT_LE(test::max_err(slice, back),
            result.eps_abs + test::f32_ulp_slack(slice));
}

INSTANTIATE_TEST_SUITE_P(Bounds, Tiled2dProperty,
                         ::testing::Values(1e-1, 1e-2, 1e-3, 1e-4));

}  // namespace
}  // namespace ceresz::core
