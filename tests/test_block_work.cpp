// Direct coverage of the SubStageExecutor — the bridge between the
// scheduled sub-stages and the simulated PEs. Its outputs must agree with
// the host BlockCodec byte-for-byte, and its cycle charges must follow
// the calibrated cost model including the data-dependent skip/tail rules.
#include "mapping/block_work.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/block_codec.h"
#include "test_util.h"

namespace ceresz::mapping {
namespace {

using core::SubStage;
using core::SubStageKind;

SubStageExecutor executor(f64 eps = 1e-3) {
  return SubStageExecutor(core::CodecConfig{}, core::PeCostModel{}, eps);
}

BlockWork compressed_work(const std::vector<f32>& input,
                          const SubStageExecutor& exec, u32 planned_fl = 32) {
  BlockWork work;
  work.input = input;
  for (const auto& stage : core::compression_substages(planned_fl)) {
    exec.apply(work, stage);
  }
  return work;
}

TEST(SubStageExecutor, AssembledRecordMatchesBlockCodec) {
  const auto exec = executor();
  const auto data = test::smooth_signal(32, 3);
  BlockWork work = compressed_work(data, exec);

  std::vector<u8> assembled;
  exec.assemble_record(work, assembled);

  const core::BlockCodec codec{core::CodecConfig{}};
  std::vector<u8> reference;
  codec.compress(data, 1e-3, reference);
  EXPECT_EQ(assembled, reference);
}

TEST(SubStageExecutor, CycleChargesMatchCostModel) {
  const auto exec = executor();
  const core::PeCostModel cost;
  BlockWork work;
  work.input = test::smooth_signal(32, 5);
  EXPECT_EQ(exec.apply(work, {SubStageKind::kPrequantMul}),
            cost.substage_cycles({SubStageKind::kPrequantMul}, 32));
  EXPECT_EQ(exec.apply(work, {SubStageKind::kPrequantAdd}),
            cost.substage_cycles({SubStageKind::kPrequantAdd}, 32));
  EXPECT_EQ(exec.apply(work, {SubStageKind::kLorenzo}),
            cost.substage_cycles({SubStageKind::kLorenzo}, 32));
}

TEST(SubStageExecutor, PlanesBeyondActualLengthAreSkippedCheaply) {
  const auto exec = executor(1e-1);  // loose bound -> small fl
  BlockWork work;
  work.input = test::smooth_signal(32, 7);
  for (SubStageKind k : {SubStageKind::kPrequantMul, SubStageKind::kPrequantAdd,
                         SubStageKind::kLorenzo, SubStageKind::kSign,
                         SubStageKind::kMax, SubStageKind::kGetLength}) {
    exec.apply(work, {k});
  }
  ASSERT_LT(work.fl, 30u);
  const Cycles skip = exec.apply(work, {SubStageKind::kShuffleBit, 31});
  EXPECT_EQ(skip, SubStageExecutor::kSkipCycles);
}

TEST(SubStageExecutor, TailStageChargesAllRemainingPlanes) {
  const auto exec = executor(1e-4);
  BlockWork work;
  work.input = test::random_signal(32, 9, -10.0, 10.0);
  for (SubStageKind k : {SubStageKind::kPrequantMul, SubStageKind::kPrequantAdd,
                         SubStageKind::kLorenzo, SubStageKind::kSign,
                         SubStageKind::kMax, SubStageKind::kGetLength}) {
    exec.apply(work, {k});
  }
  ASSERT_GT(work.fl, 2u);
  const core::PeCostModel cost;
  // A tail stage planned at bit 0 must shuffle every plane of the block.
  const Cycles charged =
      exec.apply(work, {SubStageKind::kShuffleBit, 0, /*tail=*/true});
  EXPECT_EQ(charged,
            cost.substage_cycles({SubStageKind::kShuffleBit}, 32) * work.fl);
}

TEST(SubStageExecutor, ZeroBlockShortcutsEncoding) {
  const auto exec = executor(1e-1);
  BlockWork work;
  work.input.assign(32, 0.01f);  // quantizes to zero at eps 0.1
  for (SubStageKind k : {SubStageKind::kPrequantMul, SubStageKind::kPrequantAdd,
                         SubStageKind::kLorenzo, SubStageKind::kSign,
                         SubStageKind::kMax}) {
    exec.apply(work, {k});
  }
  const core::PeCostModel cost;
  EXPECT_EQ(exec.apply(work, {SubStageKind::kGetLength}),
            cost.zero_block_tail);
  EXPECT_TRUE(work.zero);
  EXPECT_EQ(exec.apply(work, {SubStageKind::kShuffleBit, 0, true}),
            SubStageExecutor::kSkipCycles);

  std::vector<u8> record;
  EXPECT_EQ(exec.assemble_record(work, record), 4u);  // bare header
}

TEST(SubStageExecutor, DecompressionRecoversBlock) {
  const auto exec = executor();
  const auto data = test::smooth_signal(32, 11);
  BlockWork comp = compressed_work(data, exec);
  std::vector<u8> record;
  exec.assemble_record(comp, record);

  BlockWork decomp;
  decomp.record = record;
  for (const auto& stage : core::decompression_substages(32)) {
    exec.apply(decomp, stage);
  }
  ASSERT_EQ(decomp.output.size(), 32u);
  EXPECT_LE(test::max_err(data, decomp.output), 1e-3);
}

TEST(SubStageExecutor, ShuffleBeforeGetLengthThrows) {
  const auto exec = executor();
  BlockWork work;
  work.input = test::smooth_signal(32);
  exec.apply(work, {SubStageKind::kPrequantMul});
  EXPECT_THROW(exec.apply(work, {SubStageKind::kShuffleBit, 0}), Error);
}

TEST(SubStageExecutor, TruncatedRecordThrows) {
  const auto exec = executor();
  BlockWork work;
  work.record = {5, 0, 0, 0, 1};  // claims fl = 5 but has 1 payload byte
  EXPECT_THROW(exec.apply(work, {SubStageKind::kUnshuffleBit, 0, true}),
               Error);
}

TEST(SubStageExecutor, RejectsNonPositiveEps) {
  EXPECT_THROW(SubStageExecutor(core::CodecConfig{}, core::PeCostModel{}, 0.0),
               Error);
}

class ExecutorCodecEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorCodecEquivalence, AcrossDataShapes) {
  std::vector<f32> data;
  switch (GetParam()) {
    case 0: data = test::smooth_signal(32, 13); break;
    case 1: data = test::random_signal(32, 17, -500.0, 500.0); break;
    case 2: data.assign(32, 0.0f); break;
    default: data = test::sparse_signal(32, 19, 0.3); break;
  }
  for (f64 eps : {1e-1, 1e-3, 1e-5}) {
    const SubStageExecutor exec(core::CodecConfig{}, core::PeCostModel{},
                                eps);
    BlockWork work = compressed_work(data, exec);
    std::vector<u8> assembled;
    exec.assemble_record(work, assembled);
    const core::BlockCodec codec{core::CodecConfig{}};
    std::vector<u8> reference;
    codec.compress(data, eps, reference);
    EXPECT_EQ(assembled, reference) << "eps=" << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ExecutorCodecEquivalence,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace ceresz::mapping
