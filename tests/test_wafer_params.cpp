// Parameter sweep of the wafer mapping: block sizes and header widths
// round-trip through the simulated fabric, and the simulated stream stays
// bit-identical to the host codec under every configuration.
#include <gtest/gtest.h>

#include "core/stream_codec.h"
#include "mapping/wafer_mapper.h"
#include "test_util.h"

namespace ceresz::mapping {
namespace {

class WaferParamSweep
    : public ::testing::TestWithParam<std::tuple<u32, u32, u32>> {};

TEST_P(WaferParamSweep, StreamIdentityAndRoundTrip) {
  const auto [block_size, header_bytes, pl] = GetParam();
  core::CodecConfig codec;
  codec.block_size = block_size;
  codec.header_bytes = header_bytes;

  MapperOptions opt;
  opt.rows = 1;
  opt.cols = 2 * pl;
  opt.pipeline_length = pl;
  opt.codec = codec;
  const WaferMapper mapper(opt);

  const auto data = test::smooth_signal(block_size * 12, 7);
  const core::ErrorBound bound = core::ErrorBound::relative(1e-3);

  const auto wafer = mapper.compress(data, bound);
  const core::StreamCodec host(codec);
  const auto host_result = host.compress(data, bound);
  EXPECT_EQ(wafer.stream, host_result.stream)
      << "L=" << block_size << " hb=" << header_bytes << " pl=" << pl;

  const auto decomp = mapper.decompress(wafer.stream);
  ASSERT_EQ(decomp.output.size(), data.size());
  EXPECT_LE(test::max_err(data, decomp.output),
            wafer.eps_abs + test::f32_ulp_slack(data));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WaferParamSweep,
    ::testing::Combine(::testing::Values(16u, 32u, 64u, 128u),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1u, 2u, 3u)));

TEST(WaferParams, LinkContentionConfigStillRoundTrips) {
  // The contention model changes timing, never bytes.
  MapperOptions opt;
  opt.rows = 1;
  opt.cols = 6;
  opt.wse.model_link_contention = true;
  const WaferMapper mapper(opt);
  const auto data = test::smooth_signal(32 * 24, 9);
  const auto wafer = mapper.compress(data, core::ErrorBound::relative(1e-3));

  MapperOptions plain = opt;
  plain.wse.model_link_contention = false;
  const auto wafer_plain =
      WaferMapper(plain).compress(data, core::ErrorBound::relative(1e-3));
  EXPECT_EQ(wafer.stream, wafer_plain.stream);
  // Contention can only slow the fabric down.
  EXPECT_GE(wafer.makespan, wafer_plain.makespan);
}

TEST(WaferParams, IngressRateNeverChangesBytes) {
  MapperOptions fast;
  fast.rows = 1;
  fast.cols = 4;
  MapperOptions slow = fast;
  slow.ingress_cycles_per_wavelet = 32.0;
  const auto data = test::smooth_signal(32 * 16, 11);
  const auto bound = core::ErrorBound::relative(1e-3);
  const auto a = WaferMapper(fast).compress(data, bound);
  const auto b = WaferMapper(slow).compress(data, bound);
  EXPECT_EQ(a.stream, b.stream);
  EXPECT_GT(b.makespan, a.makespan);
}

}  // namespace
}  // namespace ceresz::mapping
