#include "metrics/quality.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "test_util.h"

namespace ceresz::metrics {
namespace {

TEST(Psnr, PerfectReconstructionIsInfinite) {
  const auto a = test::smooth_signal(1000);
  EXPECT_TRUE(std::isinf(psnr(a, a)));
}

TEST(Psnr, KnownValue) {
  // Range 1, uniform error 0.01 -> RMSE 0.01 -> PSNR = 40 dB.
  std::vector<f32> a(1000), b(1000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<f32>(i % 2);  // range exactly 1
    b[i] = a[i] + 0.01f;
  }
  EXPECT_NEAR(psnr(a, b), 40.0, 0.05);
}

TEST(Psnr, SmallerErrorHigherPsnr) {
  const auto a = test::smooth_signal(4096);
  std::vector<f32> coarse(a), fine(a);
  for (std::size_t i = 0; i < a.size(); ++i) {
    coarse[i] += 0.01f * ((i % 2) ? 1 : -1);
    fine[i] += 0.001f * ((i % 2) ? 1 : -1);
  }
  EXPECT_GT(psnr(a, fine), psnr(a, coarse));
}

TEST(Rmse, Basic) {
  const std::vector<f32> a = {0.0f, 0.0f};
  const std::vector<f32> b = {3.0f, 4.0f};
  EXPECT_NEAR(rmse(a, b), std::sqrt(12.5), 1e-9);
  EXPECT_THROW(rmse(a, std::vector<f32>{1.0f}), Error);
}

TEST(Ssim2d, IdenticalIsOne) {
  const auto a = test::smooth_signal(64 * 64);
  EXPECT_NEAR(ssim_2d(a, a, 64, 64), 1.0, 1e-12);
}

TEST(Ssim2d, DegradesWithNoise) {
  const auto a = test::smooth_signal(64 * 64);
  auto slightly = a;
  auto heavily = a;
  Rng rng(3);
  for (std::size_t i = 0; i < a.size(); ++i) {
    slightly[i] += static_cast<f32>(0.001 * rng.next_gaussian());
    heavily[i] += static_cast<f32>(0.3 * rng.next_gaussian());
  }
  const f64 s_light = ssim_2d(a, slightly, 64, 64);
  const f64 s_heavy = ssim_2d(a, heavily, 64, 64);
  EXPECT_GT(s_light, 0.99);
  EXPECT_LT(s_heavy, s_light);
}

TEST(Ssim2d, DimValidation) {
  const auto a = test::smooth_signal(64);
  EXPECT_THROW(ssim_2d(a, a, 8, 9), Error);   // size mismatch with dims
  EXPECT_THROW(ssim_2d(a, a, 16, 4), Error);  // smaller than window
}

TEST(Ssim1d, IdenticalIsOne) {
  const auto a = test::smooth_signal(5000);
  EXPECT_NEAR(ssim_1d(a, a), 1.0, 1e-12);
}

TEST(Ssim1d, SensitiveToStructuralChange) {
  const auto a = test::smooth_signal(5000);
  std::vector<f32> shuffled = a;
  Rng rng(9);
  for (std::size_t i = shuffled.size() - 1; i > 0; --i) {
    std::swap(shuffled[i], shuffled[rng.next_below(i + 1)]);
  }
  EXPECT_LT(ssim_1d(a, shuffled), 0.9);
}

TEST(Throughput, Computation) {
  EXPECT_NEAR(throughput_gbps(2'000'000'000, 1.0), 2.0, 1e-12);
  EXPECT_NEAR(throughput_gbps(500'000'000, 0.5), 1.0, 1e-12);
  EXPECT_THROW(throughput_gbps(1, 0.0), Error);
}

}  // namespace
}  // namespace ceresz::metrics
