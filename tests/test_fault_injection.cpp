// Chaos suite: drives the fault-injection and fault-tolerance layer across
// all three tiers — the WSE fabric (dead/slow PEs, dropped and corrupted
// bursts), the wafer mapper (routing around dead PEs, degraded placement),
// and the host engine (retries, crashes, pool collapse, watchdog,
// quarantine). Every fault schedule is fixed-seed and explicit, so each
// run observes the same faults; the headline assertions are that output
// bytes are identical to the fault-free run whenever the faults are
// recoverable, and that unrecoverable ones surface as structured
// ceresz::Error — never a crash or a hang.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/stream_codec.h"
#include "engine/parallel_engine.h"
#include "engine/thread_pool.h"
#include "io/chunk_container.h"
#include "mapping/report.h"
#include "mapping/wafer_mapper.h"
#include "test_util.h"
#include "wse/fabric.h"
#include "wse/fault_plan.h"

namespace ceresz {
namespace {

// ---------------------------------------------------------------------
// WSE fabric layer
// ---------------------------------------------------------------------

wse::WseConfig small_mesh(u32 rows, u32 cols) {
  wse::WseConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  return cfg;
}

/// 1x2 sender/receiver program used by several fabric tests.
struct PairProgram {
  static constexpr wse::Color kData = 4;
  static constexpr wse::Color kGo = 9;

  explicit PairProgram(wse::Fabric& fabric,
                       std::vector<u32> payload = {11, 22, 33}) {
    fabric.router(0, 0).set_route(kData, {wse::Direction::kRamp},
                                  {wse::Direction::kEast});
    fabric.router(0, 1).set_route(kData, {wse::Direction::kWest},
                                  {wse::Direction::kRamp});
    fabric.bind_task(0, 0, kGo, [payload](wse::PeContext& ctx) {
      ctx.send_async(kData, wse::Message::make(kData, payload, 1));
    });
    fabric.bind_task(
        0, 1, kData,
        [this](wse::PeContext& ctx) {
          wse::Message m = ctx.take_delivered(kData);
          received = *m.payload;
          corrupted_flag = m.corrupted;
          ++deliveries;
        },
        wse::TaskTrigger::kDataTriggered);
    fabric.activate_at(0, 0, kGo, 0);
  }

  std::vector<u32> received;
  bool corrupted_flag = false;
  int deliveries = 0;
};

TEST(FabricFaults, DeadPeSwallowsTrafficAndCountsIt) {
  wse::Fabric fabric(small_mesh(1, 2));
  wse::FaultPlan plan;
  plan.kill_pe(0, 1);
  fabric.set_fault_plan(plan);
  PairProgram prog(fabric);
  const wse::RunStats rs = fabric.run();
  EXPECT_EQ(prog.deliveries, 0);
  EXPECT_EQ(rs.tasks_run, 1u);  // only the sender ran
  EXPECT_GE(rs.messages_dropped, 1u);
}

TEST(FabricFaults, DeadPeSuppressesActivations) {
  wse::Fabric fabric(small_mesh(1, 1));
  wse::FaultPlan plan;
  plan.kill_pe(0, 0);
  fabric.set_fault_plan(plan);
  int runs = 0;
  fabric.bind_task(0, 0, 5, [&](wse::PeContext&) { ++runs; });
  fabric.activate_at(0, 0, 5, 0);
  const wse::RunStats rs = fabric.run();
  EXPECT_EQ(runs, 0);
  EXPECT_EQ(rs.activations_suppressed, 1u);
  EXPECT_EQ(rs.tasks_run, 0u);
}

TEST(FabricFaults, SlowPeStretchesTheMakespan) {
  auto run_with = [](f64 multiplier) {
    wse::Fabric fabric(small_mesh(1, 1));
    if (multiplier > 1.0) {
      wse::FaultPlan plan;
      plan.slow_pe(0, 0, multiplier);
      fabric.set_fault_plan(plan);
    }
    fabric.bind_task(0, 0, 5, [](wse::PeContext& ctx) { ctx.consume(100); });
    fabric.activate_at(0, 0, 5, 0);
    return fabric.run().makespan;
  };
  const Cycles healthy = run_with(1.0);
  const Cycles slowed = run_with(3.0);
  EXPECT_GT(slowed, healthy);
  // The slow PE's task body runs 3x longer; fixed overheads are unscaled.
  EXPECT_GE(slowed, healthy + 200);
}

TEST(FabricFaults, DroppedDeliveryNeverReachesTheTask) {
  wse::Fabric fabric(small_mesh(1, 2));
  wse::FaultPlan plan;
  plan.drop_delivery(0, 1, 0);
  fabric.set_fault_plan(plan);
  PairProgram prog(fabric);
  const wse::RunStats rs = fabric.run();
  EXPECT_EQ(prog.deliveries, 0);
  EXPECT_EQ(rs.messages_dropped, 1u);
}

TEST(FabricFaults, CorruptedDeliveryFlipsExactlyOneBit) {
  wse::Fabric fabric(small_mesh(1, 2));
  wse::FaultPlan plan;
  plan.corrupt_delivery(0, 1, 0);
  fabric.set_fault_plan(plan);
  const std::vector<u32> sent = {11, 22, 33};
  PairProgram prog(fabric, sent);
  const wse::RunStats rs = fabric.run();
  ASSERT_EQ(prog.deliveries, 1);
  EXPECT_TRUE(prog.corrupted_flag);
  EXPECT_EQ(rs.messages_corrupted, 1u);
  ASSERT_EQ(prog.received.size(), sent.size());
  u32 flipped_bits = 0;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    u32 diff = prog.received[i] ^ sent[i];
    while (diff) {
      flipped_bits += diff & 1u;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1u);
}

TEST(FabricFaults, CorruptionCopiesThePayloadSoSiblingsStayIntact) {
  // Broadcast to (0,1) and (0,2); corrupt only the delivery at (0,1). The
  // multicast shares one payload buffer, so corruption must copy-on-write.
  wse::Fabric fabric(small_mesh(1, 3));
  const wse::Color c = 2;
  fabric.router(0, 0).set_route(c, {wse::Direction::kRamp},
                                {wse::Direction::kEast});
  fabric.router(0, 1).set_route(
      c, {wse::Direction::kWest},
      {wse::Direction::kRamp, wse::Direction::kEast});
  fabric.router(0, 2).set_route(c, {wse::Direction::kWest},
                                {wse::Direction::kRamp});
  wse::FaultPlan plan;
  plan.corrupt_delivery(0, 1, 0);
  fabric.set_fault_plan(plan);

  const std::vector<u32> sent = {7, 8, 9, 10};
  std::vector<u32> at_one, at_two;
  fabric.bind_task(
      0, 1, c,
      [&](wse::PeContext& ctx) { at_one = *ctx.take_delivered(c).payload; },
      wse::TaskTrigger::kDataTriggered);
  fabric.bind_task(
      0, 2, c,
      [&](wse::PeContext& ctx) { at_two = *ctx.take_delivered(c).payload; },
      wse::TaskTrigger::kDataTriggered);
  fabric.bind_task(0, 0, 8, [&](wse::PeContext& ctx) {
    ctx.send_async(c, wse::Message::make(c, sent, 1));
  });
  fabric.activate_at(0, 0, 8, 0);
  fabric.run();
  EXPECT_NE(at_one, sent);   // corrupted copy
  EXPECT_EQ(at_two, sent);   // untouched original
}

TEST(FabricFaults, SetFaultPlanAfterRunThrows) {
  wse::Fabric fabric(small_mesh(1, 1));
  fabric.bind_task(0, 0, 5, [](wse::PeContext& ctx) { ctx.consume(1); });
  fabric.activate_at(0, 0, 5, 0);
  fabric.run();
  EXPECT_THROW(fabric.set_fault_plan(wse::FaultPlan{}), Error);
}

TEST(FabricFaults, RandomPlanIsDeterministicPerSeed) {
  wse::FaultSpec spec;
  spec.dead_pes = 4;
  spec.slow_pes = 3;
  spec.dropped_bursts = 5;
  spec.corrupted_bursts = 5;
  const auto a = wse::FaultPlan::random(42, 16, 16, spec);
  const auto b = wse::FaultPlan::random(42, 16, 16, spec);
  EXPECT_EQ(a.dead_pe_count(), b.dead_pe_count());
  EXPECT_EQ(a.slow_pe_count(), b.slow_pe_count());
  EXPECT_EQ(a.delivery_fault_count(), b.delivery_fault_count());
  for (u32 r = 0; r < 16; ++r) {
    for (u32 c = 0; c < 16; ++c) {
      EXPECT_EQ(a.is_dead(r, c), b.is_dead(r, c));
      EXPECT_EQ(a.cycle_multiplier(r, c), b.cycle_multiplier(r, c));
      for (u64 i = 0; i < spec.arrival_horizon; ++i) {
        ASSERT_EQ(a.delivery_fault(r, c, i), b.delivery_fault(r, c, i));
      }
    }
  }
}

// ---------------------------------------------------------------------
// Mapper layer: routing around dead PEs
// ---------------------------------------------------------------------

mapping::MapperOptions mapper_options(u32 rows, u32 cols, u32 pl = 1) {
  mapping::MapperOptions opt;
  opt.rows = rows;
  opt.cols = cols;
  opt.pipeline_length = pl;
  return opt;
}

TEST(MapperFaults, DeadRowIsSkippedAndStreamStaysBitIdentical) {
  const auto data = test::smooth_signal(32 * 48);
  const core::ErrorBound bound = core::ErrorBound::absolute(1e-3);

  // Kill column 0 of row 1: that row cannot host any pipeline, so row 0
  // absorbs its share. The stream must still match the host codec bit for
  // bit — degraded placement changes scheduling, never bytes.
  mapping::MapperOptions opt = mapper_options(2, 8);
  opt.fault_plan.kill_pe(1, 0);
  const mapping::WaferMapper mapper(opt);
  const auto result = mapper.compress(data, bound);

  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.rows_failed, 1u);
  EXPECT_EQ(result.pipelines_lost, 8u);
  const core::StreamCodec host;
  EXPECT_EQ(result.stream, host.compress(data, bound).stream);

  const std::string summary = mapping::run_summary(result, 2, 8);
  EXPECT_NE(summary.find("DEGRADED"), std::string::npos);
}

TEST(MapperFaults, MidRowDeadPeLosesOnlyEasternPipelines) {
  const auto data = test::smooth_signal(32 * 40);
  const core::ErrorBound bound = core::ErrorBound::absolute(1e-3);

  // cols=8, pl=2 -> 4 pipelines nominally. A dead PE at column 5 leaves
  // columns [0,5) usable: 2 whole pipelines survive, 2 are lost.
  mapping::MapperOptions opt = mapper_options(1, 8, 2);
  opt.fault_plan.kill_pe(0, 5);
  const mapping::WaferMapper mapper(opt);
  const auto result = mapper.compress(data, bound);

  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.rows_failed, 0u);
  EXPECT_EQ(result.pipelines_lost, 2u);
  const core::StreamCodec host;
  EXPECT_EQ(result.stream, host.compress(data, bound).stream);
}

TEST(MapperFaults, DegradedDecompressRoundTrips) {
  const auto data = test::smooth_signal(32 * 32);
  const core::ErrorBound bound = core::ErrorBound::absolute(1e-3);
  const core::StreamCodec host;
  const auto compressed = host.compress(data, bound);

  mapping::MapperOptions opt = mapper_options(2, 6);
  opt.fault_plan.kill_pe(0, 3);  // row 0 keeps pipelines in cols [0,3)
  const mapping::WaferMapper mapper(opt);
  const auto result = mapper.decompress(compressed.stream);

  EXPECT_TRUE(result.degraded);
  ASSERT_EQ(result.output.size(), data.size());
  EXPECT_LE(test::max_err(data, result.output),
            compressed.eps_abs + test::f32_ulp_slack(data));
}

TEST(MapperFaults, DegradedRunIsSlowerThanHealthy) {
  const auto data = test::smooth_signal(32 * 64);
  const core::ErrorBound bound = core::ErrorBound::absolute(1e-3);

  const mapping::WaferMapper healthy(mapper_options(2, 8));
  mapping::MapperOptions opt = mapper_options(2, 8);
  opt.fault_plan.kill_pe(1, 0);
  const mapping::WaferMapper degraded(opt);

  EXPECT_GT(degraded.compress(data, bound).makespan,
            healthy.compress(data, bound).makespan);
}

TEST(MapperFaults, NoUsableRowsThrows) {
  mapping::MapperOptions opt = mapper_options(2, 4);
  opt.fault_plan.kill_pe(0, 0);
  opt.fault_plan.kill_pe(1, 0);
  const mapping::WaferMapper mapper(opt);
  const auto data = test::smooth_signal(256);
  EXPECT_THROW(mapper.compress(data, core::ErrorBound::absolute(1e-3)),
               Error);
}

TEST(MapperFaults, FaultPlanRequiresExactSimulation) {
  mapping::MapperOptions opt = mapper_options(8, 4);
  opt.max_exact_rows = 4;  // 8 rows would be extrapolated
  opt.fault_plan.kill_pe(0, 0);
  const mapping::WaferMapper mapper(opt);
  const auto data = test::smooth_signal(2048);
  EXPECT_THROW(mapper.compress(data, core::ErrorBound::absolute(1e-3)),
               Error);
}

TEST(MapperFaults, SameFaultPlanSameScheduleSameCounters) {
  const auto data = test::smooth_signal(32 * 32);
  const core::ErrorBound bound = core::ErrorBound::absolute(1e-3);
  mapping::MapperOptions opt = mapper_options(2, 8);
  opt.fault_plan.kill_pe(1, 4);
  opt.fault_plan.slow_pe(0, 0, 2.0);
  // Corrupt (not drop): block state rides the message's `user` attachment,
  // so a payload flip is observable in the counters without losing the
  // block — the stream must still assemble, bit-identical.
  opt.fault_plan.corrupt_delivery(0, 1, 3);

  const mapping::WaferMapper mapper(opt);
  const auto a = mapper.compress(data, bound);
  const auto b = mapper.compress(data, bound);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.run_stats.messages_dropped, b.run_stats.messages_dropped);
  EXPECT_EQ(a.run_stats.messages_corrupted, b.run_stats.messages_corrupted);
  EXPECT_EQ(a.run_stats.tasks_run, b.run_stats.tasks_run);
  EXPECT_EQ(a.stream, b.stream);
}

// ---------------------------------------------------------------------
// ThreadPool: crash and collapse mechanics
// ---------------------------------------------------------------------

TEST(ThreadPoolFaults, WorkerCrashShrinksThePool) {
  engine::ThreadPool pool(2, 4);
  pool.submit([] { throw engine::WorkerCrash{}; });
  pool.wait_idle();
  // alive() is decremented just after the crashing task is accounted for.
  for (int i = 0; i < 2000 && pool.alive() != 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.alive(), 1u);
  EXPECT_EQ(pool.crashed_workers(), 1u);
  // The survivor still serves work.
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolFaults, CollapsedPoolDrainsInline) {
  engine::ThreadPool pool(2, 8);
  pool.submit([] { throw engine::WorkerCrash{}; });
  pool.submit([] { throw engine::WorkerCrash{}; });
  pool.wait_idle();
  for (int i = 0; i < 2000 && pool.alive() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(pool.alive(), 0u);
  EXPECT_EQ(pool.crashed_workers(), 2u);

  // With no workers left, queued tasks only run via the caller.
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pool.try_submit([&] { ++ran; }));
  }
  while (pool.run_one_inline()) {
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 5);
  // A crash thrown inline is swallowed: nothing else dies.
  ASSERT_TRUE(pool.try_submit([] { throw engine::WorkerCrash{}; }));
  EXPECT_TRUE(pool.run_one_inline());
  pool.wait_idle();
  EXPECT_EQ(pool.crashed_workers(), 2u);
}

// ---------------------------------------------------------------------
// Engine layer: retries, watchdog, quarantine, graceful degradation
// ---------------------------------------------------------------------

engine::EngineOptions engine_options(u32 threads) {
  engine::EngineOptions opt;
  opt.threads = threads;
  opt.chunk_elems = 256;  // 8 chunks for the 2048-element inputs below
  return opt;
}

const core::ErrorBound kBound = core::ErrorBound::absolute(1e-3);

TEST(EngineFaults, TransientFailuresAreRetriedToByteIdenticalOutput) {
  const auto data = test::smooth_signal(2048);
  const auto clean =
      engine::ParallelEngine(engine_options(2)).compress(data, kBound);

  engine::EngineOptions opt = engine_options(2);
  opt.faults.fail_chunk(1, 2);  // attempts 0 and 1 throw; attempt 2 works
  opt.faults.fail_chunk(5, 1);
  const auto faulty = engine::ParallelEngine(opt).compress(data, kBound);

  EXPECT_EQ(faulty.stream, clean.stream);
  EXPECT_EQ(faulty.stats.retries, 3u);
  EXPECT_EQ(faulty.stats.worker_crashes, 0u);
  EXPECT_EQ(faulty.stats.quarantined, 0u);
}

TEST(EngineFaults, ExhaustedRetriesFailCompressionStructurally) {
  engine::EngineOptions opt = engine_options(2);
  opt.retry.max_attempts = 2;
  opt.faults.fail_chunk(3, 2);  // fails every allowed attempt
  const auto data = test::smooth_signal(2048);
  try {
    engine::ParallelEngine(opt).compress(data, kBound);
    FAIL() << "expected ceresz::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("chunk 3"), std::string::npos);
  }
}

TEST(EngineFaults, CrashedWorkersDoNotChangeTheBytes) {
  const auto data = test::smooth_signal(2048);
  const auto clean =
      engine::ParallelEngine(engine_options(2)).compress(data, kBound);

  // Every chunk's first attempt takes its worker down (or is swallowed
  // when run inline); the pool collapses and the run degrades to inline
  // execution — output bytes must not change.
  engine::EngineOptions opt = engine_options(2);
  for (u64 c = 0; c < 8; ++c) opt.faults.crash_chunk(c, 0);
  const auto faulty = engine::ParallelEngine(opt).compress(data, kBound);

  EXPECT_EQ(faulty.stream, clean.stream);
  EXPECT_EQ(faulty.stats.worker_crashes, 8u);
  EXPECT_EQ(faulty.stats.retries, 8u);
}

TEST(EngineFaults, WatchdogCancelsStalledChunks) {
  const auto data = test::smooth_signal(2048);
  const auto clean =
      engine::ParallelEngine(engine_options(2)).compress(data, kBound);

  engine::EngineOptions opt = engine_options(2);
  opt.retry.deadline_ms = 50;
  opt.faults.stall_ms = 10000;  // far past the deadline: must be cancelled
  opt.faults.stall_chunk(4, 1);
  const auto start = std::chrono::steady_clock::now();
  const auto faulty = engine::ParallelEngine(opt).compress(data, kBound);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_EQ(faulty.stream, clean.stream);
  EXPECT_GE(faulty.stats.timeouts, 1u);
  EXPECT_GE(faulty.stats.retries, 1u);
  // The watchdog, not the stall, bounds the run.
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(EngineFaults, CorruptChunkIsQuarantinedWithoutWastedRetries) {
  const auto data = test::smooth_signal(2048);
  engine::EngineOptions opt = engine_options(2);
  opt.lenient = true;
  const engine::ParallelEngine eng(opt);
  auto result = eng.compress(data, kBound);

  // Flip one payload byte of chunk 2.
  const auto parsed = io::parse_container(result.stream);
  result.stream[parsed.entries[2].offset] ^= 0x01;

  const auto recovered = eng.decompress(result.stream);
  ASSERT_EQ(recovered.corrupt_chunks, (std::vector<u64>{2}));
  EXPECT_EQ(recovered.stats.quarantined, 1u);
  // Data corruption is permanent: the retry ladder must not spin on it.
  EXPECT_EQ(recovered.stats.retries, 0u);
  // The quarantined range reads as zeros; every other chunk is intact.
  for (u64 i = 0; i < 2048; ++i) {
    const bool in_quarantine = i >= 2 * 256 && i < 3 * 256;
    if (in_quarantine) {
      EXPECT_EQ(recovered.values[i], 0.0f);
    } else {
      EXPECT_NEAR(recovered.values[i], data[i], 1e-3 + 1e-5);
    }
  }
}

TEST(EngineFaults, StrictModeStillThrowsOnCorruptChunks) {
  const auto data = test::smooth_signal(2048);
  engine::EngineOptions opt = engine_options(2);
  const engine::ParallelEngine eng(opt);
  auto result = eng.compress(data, kBound);
  const auto parsed = io::parse_container(result.stream);
  result.stream[parsed.entries[6].offset] ^= 0x10;
  EXPECT_THROW(eng.decompress(result.stream), Error);
}

TEST(EngineFaults, DecompressionRecoversFromTransientFaults) {
  const auto data = test::smooth_signal(2048);
  const auto compressed =
      engine::ParallelEngine(engine_options(2)).compress(data, kBound);

  engine::EngineOptions opt = engine_options(2);
  opt.faults.fail_chunk(0, 1);
  opt.faults.crash_chunk(7, 0);
  const auto result =
      engine::ParallelEngine(opt).decompress(compressed.stream);
  EXPECT_TRUE(result.corrupt_chunks.empty());
  EXPECT_GE(result.stats.retries, 2u);
  EXPECT_LE(test::max_err(data, result.values),
            1e-3 + test::f32_ulp_slack(data));
}

// ---------------------------------------------------------------------
// Determinism across thread counts and seeds
// ---------------------------------------------------------------------

TEST(FaultDeterminism, SameFaultPlanSameBytesAcrossThreadCounts) {
  const auto data = test::smooth_signal(2048);
  std::vector<u8> reference;
  for (u32 threads : {1u, 2u, 4u}) {
    engine::EngineOptions opt = engine_options(threads);
    opt.faults.fail_chunk(1, 2);
    opt.faults.crash_chunk(3, 0);
    opt.faults.fail_chunk(6, 1);
    const auto result =
        engine::ParallelEngine(opt).compress(data, kBound);
    if (reference.empty()) {
      reference = result.stream;
    } else {
      EXPECT_EQ(result.stream, reference) << threads << " threads";
    }
    EXPECT_EQ(result.stats.retries, 4u) << threads << " threads";
    EXPECT_EQ(result.stats.worker_crashes, 1u) << threads << " threads";
  }
}

TEST(FaultDeterminism, LenientQuarantineIdenticalAcrossThreadCounts) {
  const auto data = test::smooth_signal(2048);
  auto compressed =
      engine::ParallelEngine(engine_options(2)).compress(data, kBound);
  const auto parsed = io::parse_container(compressed.stream);
  compressed.stream[parsed.entries[1].offset] ^= 0x04;
  compressed.stream[parsed.entries[5].offset + 1] ^= 0x40;

  std::vector<f32> reference;
  for (u32 threads : {1u, 2u, 4u}) {
    engine::EngineOptions opt = engine_options(threads);
    opt.lenient = true;
    const auto result =
        engine::ParallelEngine(opt).decompress(compressed.stream);
    EXPECT_EQ(result.corrupt_chunks, (std::vector<u64>{1, 5}));
    EXPECT_EQ(result.stats.quarantined, 2u);
    if (reference.empty()) {
      reference = result.values;
    } else {
      EXPECT_EQ(result.values, reference) << threads << " threads";
    }
  }
}

TEST(FaultDeterminism, RandomFabricPlansReplayIdentically) {
  // Same seed -> same plan -> same simulated run, counters and makespan.
  wse::FaultSpec spec;
  spec.dropped_bursts = 2;
  spec.corrupted_bursts = 2;
  spec.slow_pes = 1;
  const auto data = test::smooth_signal(32 * 16);

  auto run_once = [&](u64 seed) {
    mapping::MapperOptions opt = mapper_options(1, 4);
    opt.fault_plan = wse::FaultPlan::random(seed, 1, 4, spec);
    opt.collect_output = false;  // dropped bursts may lose blocks
    const mapping::WaferMapper mapper(opt);
    return mapper.compress(data, core::ErrorBound::absolute(1e-3));
  };
  const auto a = run_once(123);
  const auto b = run_once(123);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.run_stats.messages_dropped, b.run_stats.messages_dropped);
  EXPECT_EQ(a.run_stats.messages_corrupted, b.run_stats.messages_corrupted);
  EXPECT_EQ(a.run_stats.events_processed, b.run_stats.events_processed);
}

}  // namespace
}  // namespace ceresz
