#include "io/archive.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/error.h"
#include "common/rng.h"
#include "data/generators.h"
#include "test_util.h"

namespace ceresz::io {
namespace {

std::vector<data::Field> sample_fields() {
  return data::generate_dataset(data::DatasetId::kQmcpack, 42, 0.2);
}

TEST(Archive, CompressAndDecompressAllFields) {
  const auto fields = sample_fields();
  const core::StreamCodec codec;
  const core::ErrorBound bound = core::ErrorBound::relative(1e-3);
  const Archive archive = Archive::compress_fields(fields, bound, codec);
  ASSERT_EQ(archive.size(), fields.size());
  EXPECT_GT(archive.total_ratio(), 1.0);

  for (std::size_t i = 0; i < fields.size(); ++i) {
    const data::Field back = archive.decompress_field(i, codec);
    EXPECT_EQ(back.name, fields[i].name);
    EXPECT_EQ(back.dims, fields[i].dims);
    // Each stream is self-describing: the bound was resolved per field.
    EXPECT_LT(test::max_err(fields[i].view(), back.values), 1.0);
  }
}

TEST(Archive, SerializeParseRoundTrip) {
  const auto fields = sample_fields();
  const core::StreamCodec codec;
  const Archive archive = Archive::compress_fields(
      fields, core::ErrorBound::relative(1e-2), codec);
  const auto bytes = archive.serialize();
  const Archive parsed = Archive::parse(bytes);
  ASSERT_EQ(parsed.size(), archive.size());
  for (std::size_t i = 0; i < archive.size(); ++i) {
    EXPECT_EQ(parsed.entries()[i].name, archive.entries()[i].name);
    EXPECT_EQ(parsed.entries()[i].dims, archive.entries()[i].dims);
    EXPECT_EQ(parsed.entries()[i].stream, archive.entries()[i].stream);
  }
}

TEST(Archive, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "ceresz_archive";
  std::filesystem::create_directories(dir);
  const auto fields = sample_fields();
  const core::StreamCodec codec;
  const Archive archive = Archive::compress_fields(
      fields, core::ErrorBound::relative(1e-3), codec);
  archive.save(dir / "qmcpack.csza");
  const Archive loaded = Archive::load(dir / "qmcpack.csza");
  EXPECT_EQ(loaded.size(), archive.size());
  const data::Field back = loaded.decompress_field(0, codec);
  EXPECT_EQ(back.values.size(), fields[0].values.size());
  std::filesystem::remove_all(dir);
}

TEST(Archive, FindByName) {
  const auto fields = sample_fields();
  const core::StreamCodec codec;
  const Archive archive = Archive::compress_fields(
      fields, core::ErrorBound::relative(1e-2), codec);
  const auto idx = archive.find(fields[1].name);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 1u);
  EXPECT_FALSE(archive.find("no-such-field").has_value());
}

TEST(Archive, ParseRejectsCorruption) {
  const auto fields = sample_fields();
  const core::StreamCodec codec;
  const auto bytes = Archive::compress_fields(
                         fields, core::ErrorBound::relative(1e-2), codec)
                         .serialize();
  // Bad magic.
  {
    auto bad = bytes;
    bad[0] = 'X';
    EXPECT_THROW(Archive::parse(bad), Error);
  }
  // Truncations at every prefix length must throw, not crash.
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t cut = 4 + rng.next_below(bytes.size() - 4);
    bool threw = false;
    try {
      Archive::parse(std::span<const u8>(bytes.data(), cut));
    } catch (const Error&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "cut=" << cut;
  }
  // Trailing garbage.
  {
    auto bad = bytes;
    bad.push_back(0);
    EXPECT_THROW(Archive::parse(bad), Error);
  }
}

TEST(Archive, EmptyArchive) {
  const core::StreamCodec codec;
  const Archive archive =
      Archive::compress_fields({}, core::ErrorBound::relative(1e-3), codec);
  const auto bytes = archive.serialize();
  const Archive parsed = Archive::parse(bytes);
  EXPECT_EQ(parsed.size(), 0u);
  EXPECT_EQ(parsed.total_ratio(), 0.0);
}

}  // namespace
}  // namespace ceresz::io
