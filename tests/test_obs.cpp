// Observability subsystem tests: registry snapshot consistency under
// concurrent writers (run these under TSan — scripts/run_sanitizer_tests.sh
// builds this binary), histogram bucket-edge semantics, trace-ring
// overflow accounting, and exporter validity (the JSON exporters are
// parsed back with a mini JSON parser; the Prometheus exporter is
// checked line-by-line against the text exposition grammar).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine_stats.h"
#include "mapping/wafer_mapper.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "wse/fabric.h"

namespace ceresz {
namespace {

// ---------------------------------------------------------------------------
// Mini JSON parser — just enough to validate and inspect exporter output.
// Numbers are parsed as f64, objects as name-sorted maps.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  f64 number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    EXPECT_NE(it, object.end()) << "missing key: " << key;
    static const JsonValue null_value;
    return it == object.end() ? null_value : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  /// Parses the whole input; EXPECT-fails and returns null on error.
  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing bytes after value");
    EXPECT_TRUE(ok_) << "JSON parse error at byte " << pos_ << ": " << error_;
    return ok_ ? v : JsonValue{};
  }

  bool ok() const { return ok_; }

 private:
  void fail(const std::string& why) {
    if (ok_) {
      ok_ = false;
      error_ = why;
    }
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    if (!ok_ || pos_ >= s_.size()) {
      fail("unexpected end of input");
      return {};
    }
    const char c = s_[pos_];
    JsonValue v;
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.str = parse_string();
      return v;
    }
    if (consume_literal("null")) return v;
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    consume('{');
    if (consume('}')) return v;
    do {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        fail("object key must be a string");
        return v;
      }
      std::string key = parse_string();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return v;
      }
      v.object.emplace(std::move(key), parse_value());
    } while (ok_ && consume(','));
    if (!consume('}')) fail("expected '}'");
    return v;
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    consume('[');
    if (consume(']')) return v;
    do {
      v.array.push_back(parse_value());
    } while (ok_ && consume(','));
    if (!consume(']')) fail("expected ']'");
    return v;
  }

  std::string parse_string() {
    std::string out;
    ++pos_;  // opening quote
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) break;
        switch (s_[pos_]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u':
            pos_ += 4;  // \uXXXX — skip, control chars only in our output
            break;
          default: fail("unsupported escape"); return out;
        }
        ++pos_;
      } else {
        out += s_[pos_++];
      }
    }
    if (pos_ >= s_.size()) {
      fail("unterminated string");
      return out;
    }
    ++pos_;  // closing quote
    return out;
  }

  JsonValue parse_number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a number");
      return v;
    }
    v.number = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Counters, gauges, snapshot consistency.

TEST(Counter, ConcurrentAddsAreExact) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("test_total");
  constexpr int kThreads = 8;
  constexpr u64 kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (u64 i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(reg.snapshot().counter_value("test_total"),
            kThreads * kPerThread);
}

TEST(Gauge, ConcurrentAddsAreExact) {
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("test_gauge");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.add(0.5);
    });
  }
  for (auto& w : workers) w.join();
  // The CAS loop makes add() lossless, and 0.5 sums exactly in binary.
  EXPECT_EQ(g.value(), 0.5 * kThreads * kPerThread);
  g.set(-3.25);
  EXPECT_EQ(g.value(), -3.25);
}

// Snapshots taken while writers are running must be internally
// consistent: monotone counter values across successive snapshots, and
// histogram count == sum of bucket counts in EVERY snapshot (the count
// is derived from the buckets, never read separately). Run under TSan.
TEST(MetricsRegistry, SnapshotConsistentUnderConcurrentWriters) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("writes_total");
  obs::Histogram& h =
      reg.histogram("lat_seconds", {0.001, 0.01, 0.1, 1.0});
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      u64 i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        c.add();
        h.observe(0.0005 * static_cast<f64>((i + t) % 5000));
        ++i;
      }
    });
  }

  u64 prev_count = 0;
  u64 prev_hist = 0;
  for (int round = 0; round < 200; ++round) {
    const obs::MetricsSnapshot snap = reg.snapshot();
    const u64 now = snap.counter_value("writes_total");
    EXPECT_GE(now, prev_count) << "counter went backwards";
    prev_count = now;
    ASSERT_EQ(snap.histograms.size(), 1u);
    const auto& hs = snap.histograms[0];
    u64 bucket_sum = 0;
    for (u64 n : hs.counts) bucket_sum += n;
    EXPECT_EQ(hs.count, bucket_sum);
    EXPECT_GE(hs.count, prev_hist) << "histogram count went backwards";
    prev_hist = hs.count;
  }
  stop.store(true);
  for (auto& w : writers) w.join();

  // Quiescent: the snapshot is exact.
  const obs::MetricsSnapshot final_snap = reg.snapshot();
  EXPECT_EQ(final_snap.counter_value("writes_total"), c.value());
  EXPECT_EQ(final_snap.histograms[0].count,
            final_snap.counter_value("writes_total"));
}

TEST(MetricsRegistry, SnapshotSortedByName) {
  obs::MetricsRegistry reg;
  reg.counter("zeta_total");
  reg.counter("alpha_total");
  reg.counter("mid_total");
  reg.gauge("z_gauge");
  reg.gauge("a_gauge");
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha_total");
  EXPECT_EQ(snap.counters[1].name, "mid_total");
  EXPECT_EQ(snap.counters[2].name, "zeta_total");
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].name, "a_gauge");
  EXPECT_EQ(snap.gauges[1].name, "z_gauge");
}

TEST(MetricsRegistry, HandlesAreStable) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("same_total");
  obs::Counter& b = reg.counter("same_total");
  EXPECT_EQ(&a, &b);
  obs::Histogram& h1 = reg.histogram("h_seconds", {1.0, 2.0});
  obs::Histogram& h2 = reg.histogram("h_seconds", {1.0, 2.0});
  EXPECT_EQ(&h1, &h2);
}

// ---------------------------------------------------------------------------
// Histogram bucket-edge semantics: inclusive upper bounds (`le`).

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("edges", {1.0, 2.0, 5.0});

  h.observe(1.0);                             // exactly on bound 0 -> bucket 0
  h.observe(std::nextafter(1.0, 2.0));        // just above -> bucket 1
  h.observe(2.0);                             // on bound 1 -> bucket 1
  h.observe(5.0);                             // on the last bound -> bucket 2
  h.observe(std::nextafter(5.0, 10.0));       // just above the last -> +Inf
  h.observe(-7.0);                            // below everything -> bucket 0
  h.observe(1e30);                            // way above -> +Inf

  const std::vector<u64> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + the +Inf overflow bucket
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 2u);

  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 7u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].sum,
                   1.0 + std::nextafter(1.0, 2.0) + 2.0 + 5.0 +
                       std::nextafter(5.0, 10.0) - 7.0 + 1e30);
}

TEST(Histogram, DefaultSecondsBucketsStrictlyIncreasing) {
  const std::vector<f64> bounds =
      obs::MetricsRegistry::default_seconds_buckets();
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_LE(bounds.front(), 1e-4);
  EXPECT_GE(bounds.back(), 10.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "at index " << i;
  }
}

TEST(MetricsRegistry, AccumulateFoldsSnapshots) {
  obs::MetricsRegistry per_run;
  per_run.counter("runs_total").add(2);
  per_run.gauge("threads").set(8.0);
  obs::Histogram& h = per_run.histogram("lat", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(99.0);  // +Inf bucket

  obs::MetricsRegistry serving;
  serving.counter("runs_total").add(1);
  serving.accumulate(per_run.snapshot());
  serving.accumulate(per_run.snapshot());

  const obs::MetricsSnapshot snap = serving.snapshot();
  EXPECT_EQ(snap.counter_value("runs_total"), 1u + 2u + 2u);  // counters add
  EXPECT_EQ(snap.gauge_value("threads"), 8.0);                // gauges set
  ASSERT_EQ(snap.histograms.size(), 1u);                      // created on demand
  const auto& hs = snap.histograms[0];
  ASSERT_EQ(hs.counts.size(), 3u);
  EXPECT_EQ(hs.counts[0], 2u);
  EXPECT_EQ(hs.counts[1], 2u);
  EXPECT_EQ(hs.counts[2], 2u);
  EXPECT_EQ(hs.count, 6u);
  EXPECT_DOUBLE_EQ(hs.sum, 2.0 * (0.5 + 1.5 + 99.0));
}

// ---------------------------------------------------------------------------
// Trace ring overflow: drop-OLDEST, drops counted, memory bounded.

TEST(TraceRing, OverflowDropsOldestAndCountsDrops) {
  obs::TraceRing ring(4);
  static const char* kNames[] = {"e0", "e1", "e2", "e3", "e4",
                                 "e5", "e6", "e7", "e8", "e9"};
  for (u64 i = 0; i < 10; ++i) {
    obs::TraceEvent ev;
    ev.name = kNames[i];
    ev.ts_ns = i;
    ring.push(ev);
  }
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const std::vector<obs::TraceEvent> kept = ring.drain_copy();
  ASSERT_EQ(kept.size(), 4u);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(std::string_view(kept[i].name), kNames[6 + i]);  // newest 4
    EXPECT_EQ(kept[i].ts_ns, 6 + i);                           // oldest first
  }
}

TEST(Tracer, RingOverflowIsBoundedPerThread) {
  obs::Tracer tracer(/*ring_capacity=*/8);
  for (int i = 0; i < 100; ++i) {
    tracer.instant("tick", "test", "i", i);
  }
  EXPECT_EQ(tracer.events_recorded(), 100u);
  EXPECT_EQ(tracer.events_dropped(), 92u);
  const auto events = tracer.snapshot_events();
  ASSERT_EQ(events.size(), 8u);
  // The survivors are the NEWEST eight (args 92..99).
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg1, static_cast<i64>(92 + i));
  }
  // The drop count is advertised in the exported file's metadata.
  const std::string json = tracer.chrome_trace_json();
  JsonValue root = JsonParser(json).parse();
  EXPECT_EQ(root.at("metadata").at("dropped_events").number, 92.0);
}

TEST(Tracer, ThreadsGetSeparateRings) {
  obs::Tracer tracer(/*ring_capacity=*/4);
  auto burst = [&tracer] {
    for (int i = 0; i < 10; ++i) tracer.instant("t", "test");
  };
  std::thread a(burst), b(burst);
  a.join();
  b.join();
  // 4 survivors per thread, 6 drops per thread — rings never share.
  EXPECT_EQ(tracer.events_recorded(), 20u);
  EXPECT_EQ(tracer.events_dropped(), 12u);
  EXPECT_EQ(tracer.snapshot_events().size(), 8u);
}

TEST(SpanGuard, NullTracerIsNoop) {
  // Must not crash or dereference anything.
  obs::SpanGuard guard(nullptr, "noop", "test");
}

// ---------------------------------------------------------------------------
// Exporter validity.

TEST(Exporters, JsonExportParsesBack) {
  obs::MetricsRegistry reg;
  reg.counter("ceresz_engine_chunks_total").add(17);
  reg.gauge("ceresz_engine_threads").set(8.0);
  reg.gauge("ceresz_bad_gauge").set(std::numeric_limits<f64>::infinity());
  obs::Histogram& h =
      reg.histogram("ceresz_engine_chunk_seconds",
                    obs::MetricsRegistry::default_seconds_buckets());
  h.observe(0.002);
  h.observe(1e9);  // +Inf bucket

  const std::string json = obs::to_json(reg.snapshot());
  JsonParser parser(json);
  JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok());

  EXPECT_EQ(root.at("counters").at("ceresz_engine_chunks_total").number, 17.0);
  EXPECT_EQ(root.at("gauges").at("ceresz_engine_threads").number, 8.0);
  // Non-finite gauges have no JSON literal and are exported as null.
  EXPECT_EQ(root.at("gauges").at("ceresz_bad_gauge").kind,
            JsonValue::Kind::kNull);

  const JsonValue& hist =
      root.at("histograms").at("ceresz_engine_chunk_seconds");
  EXPECT_EQ(hist.at("count").number, 2.0);
  const std::vector<JsonValue>& buckets = hist.at("buckets").array;
  ASSERT_EQ(buckets.size(),
            obs::MetricsRegistry::default_seconds_buckets().size() + 1);
  // The overflow bucket has le == null and holds the 1e9 observation.
  EXPECT_EQ(buckets.back().at("le").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(buckets.back().at("count").number, 1.0);
  f64 total = 0.0;
  for (const JsonValue& b : buckets) total += b.at("count").number;
  EXPECT_EQ(total, 2.0);
}

TEST(Exporters, ChromeTraceParsesBackWithMicrosecondTimestamps) {
  obs::Tracer tracer;
  tracer.set_process_name(obs::kFabricPid, "wse-fabric");
  tracer.set_thread_name(obs::kFabricPid, 3, "pe[0,2]");
  obs::TraceEvent ev;
  ev.name = "chunk.compress";
  ev.cat = "engine";
  ev.ts_ns = 2500;
  ev.dur_ns = 1500;
  ev.arg1_name = "chunk";
  ev.arg1 = 7;
  tracer.record(ev);
  tracer.instant("chunk.retry", "engine");
  tracer.counter("queue_depth", 5);

  const std::string json = tracer.chrome_trace_json();
  JsonParser parser(json);
  JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok());

  const std::vector<JsonValue>& events = root.at("traceEvents").array;
  std::map<std::string, const JsonValue*> by_name;
  int metadata_events = 0;
  for (const JsonValue& e : events) {
    ASSERT_EQ(e.kind, JsonValue::Kind::kObject);
    // Every event carries the required trace-event keys.
    EXPECT_EQ(e.at("name").kind, JsonValue::Kind::kString);
    EXPECT_EQ(e.at("ph").kind, JsonValue::Kind::kString);
    EXPECT_EQ(e.at("pid").kind, JsonValue::Kind::kNumber);
    EXPECT_EQ(e.at("tid").kind, JsonValue::Kind::kNumber);
    if (e.at("ph").str == "M") {
      ++metadata_events;
    } else {
      EXPECT_EQ(e.at("ts").kind, JsonValue::Kind::kNumber);
      by_name[e.at("name").str] = &e;
    }
  }
  // Default host process name + the two names set above.
  EXPECT_EQ(metadata_events, 3);

  ASSERT_TRUE(by_name.count("chunk.compress"));
  const JsonValue& span = *by_name["chunk.compress"];
  EXPECT_EQ(span.at("ph").str, "X");
  EXPECT_EQ(span.at("ts").number, 2.5);   // ns -> us
  EXPECT_EQ(span.at("dur").number, 1.5);  // ns -> us
  EXPECT_EQ(span.at("args").at("chunk").number, 7.0);

  ASSERT_TRUE(by_name.count("chunk.retry"));
  EXPECT_EQ(by_name["chunk.retry"]->at("ph").str, "i");
  ASSERT_TRUE(by_name.count("queue_depth"));
  const JsonValue& counter = *by_name["queue_depth"];
  EXPECT_EQ(counter.at("ph").str, "C");
  EXPECT_EQ(counter.at("args").at("value").number, 5.0);
}

TEST(Exporters, PrometheusTextFormatIsWellFormed) {
  obs::MetricsRegistry reg;
  engine::declare_engine_metrics(reg);
  wse::declare_fabric_metrics(reg);
  mapping::declare_mapper_metrics(reg);
  reg.counter(engine::kMetricChunks).add(12);
  reg.gauge(engine::kMetricThreads).set(4.0);
  reg.histogram(engine::kMetricChunkSeconds,
                obs::MetricsRegistry::default_seconds_buckets())
      .observe(0.02);

  const std::string text = obs::to_prometheus(reg.snapshot());

  const std::regex type_line(
      R"(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram))");
  const std::regex sample_line(
      R"([a-zA-Z_:][a-zA-Z0-9_:]*(_bucket\{le="[^"]+"\})? )"
      R"(-?(\d+(\.\d+)?([eE][-+]?\d+)?|[0-9.]+e[-+]?\d+|\+Inf))");
  std::istringstream is(text);
  std::string line;
  int type_lines = 0, sample_lines = 0;
  std::string prev_family;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      EXPECT_TRUE(std::regex_match(line, type_line)) << line;
      ++type_lines;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample_line)) << line;
      ++sample_lines;
    }
  }
  EXPECT_GT(type_lines, 0);
  EXPECT_GT(sample_lines, type_lines);  // histograms emit several samples

  // One family per declared metric, each announced exactly once.
  const obs::MetricsSnapshot snap = reg.snapshot();
  const std::size_t families =
      snap.counters.size() + snap.gauges.size() + snap.histograms.size();
  EXPECT_EQ(static_cast<std::size_t>(type_lines), families);

  // Histogram buckets are cumulative and end at the family count.
  const std::regex bucket_re(
      R"(ceresz_engine_chunk_seconds_bucket\{le="[^"]+"\} (\d+))");
  u64 prev = 0;
  u64 last = 0;
  std::smatch m;
  std::istringstream is2(text);
  while (std::getline(is2, line)) {
    if (std::regex_match(line, m, bucket_re)) {
      const u64 v = std::strtoull(m[1].str().c_str(), nullptr, 10);
      EXPECT_GE(v, prev) << "bucket counts must be cumulative";
      prev = last = v;
    }
  }
  EXPECT_EQ(last, 1u);
  EXPECT_NE(text.find("ceresz_engine_chunk_seconds_count 1\n"),
            std::string::npos);
}

// Pre-declaration means an export advertises every family of every
// instrumented layer even before any work ran (the acceptance criterion
// for scraping: families never appear or vanish between scrapes).
TEST(Exporters, DeclaredFamiliesCoverEngineFabricAndMapper) {
  obs::MetricsRegistry reg;
  engine::declare_engine_metrics(reg);
  wse::declare_fabric_metrics(reg);
  mapping::declare_mapper_metrics(reg);
  const std::string text = obs::to_prometheus(reg.snapshot());

  for (const char* name :
       {engine::kMetricChunks, engine::kMetricRetries,
        engine::kMetricTimeouts, engine::kMetricWorkerCrashes,
        engine::kMetricFallbackChunks, engine::kMetricQuarantined,
        engine::kMetricThreads, engine::kMetricWallSeconds,
        engine::kMetricChunkSeconds, wse::kMetricFabricTasks,
        wse::kMetricFabricSent, wse::kMetricFabricReceived,
        wse::kMetricFabricRelayed, wse::kMetricFabricBusyCycles,
        wse::kMetricFabricMakespan, mapping::kMetricMapperRuns,
        mapping::kMetricMapperBlocks, mapping::kMetricMapperMakespan,
        mapping::kMetricMapperThroughput}) {
    EXPECT_NE(text.find(std::string("# TYPE ") + name + " "),
              std::string::npos)
        << "family not advertised: " << name;
  }
}

// ---------------------------------------------------------------------------
// Histogram snapshot quantiles: linear interpolation within the
// inclusive-le bucket that crosses p * count.

TEST(Histogram, QuantileInterpolatesWithinBuckets) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("q_seconds", {1.0, 2.0, 4.0});
  h.observe(0.5);    // bucket 0 (le 1.0)
  h.observe(1.0);    // bucket 0 (inclusive edge)
  h.observe(1.5);    // bucket 1 (le 2.0)
  h.observe(2.0);    // bucket 1
  h.observe(100.0);  // +Inf overflow
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& hs = snap.histograms[0];
  ASSERT_EQ(hs.count, 5u);

  // target = p * count = 2.5 falls 0.25 into bucket 1's two samples.
  EXPECT_DOUBLE_EQ(hs.quantile(0.5), 1.25);
  // target = 1.0 is halfway through bucket 0 (lower bound 0).
  EXPECT_DOUBLE_EQ(hs.quantile(0.2), 0.5);
  // target exactly exhausts a bucket -> its upper edge.
  EXPECT_DOUBLE_EQ(hs.quantile(0.4), 1.0);
  EXPECT_DOUBLE_EQ(hs.quantile(0.8), 2.0);
  // Out-of-range p clamps.
  EXPECT_DOUBLE_EQ(hs.quantile(-1.0), hs.quantile(0.0));
}

TEST(Histogram, QuantileOverflowBucketClampsToLastFiniteBound) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("q_over", {1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(100.0);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto& hs = snap.histograms[0];
  // The +Inf bucket has no finite upper edge; the estimate saturates at
  // the last finite bound rather than inventing a value.
  EXPECT_DOUBLE_EQ(hs.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(hs.quantile(0.99), 4.0);
}

TEST(Histogram, QuantileOfEmptyHistogramIsNaN) {
  obs::MetricsRegistry reg;
  reg.histogram("q_empty", {1.0, 2.0});
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_TRUE(std::isnan(snap.histograms[0].quantile(0.5)));
}

// ---------------------------------------------------------------------------
// Prometheus path detection (the --metrics-out format switch).

TEST(Exporters, PrometheusPathDetectionIsCaseInsensitive) {
  EXPECT_TRUE(obs::is_prometheus_path("metrics.prom"));
  EXPECT_TRUE(obs::is_prometheus_path("metrics.PROM"));
  EXPECT_TRUE(obs::is_prometheus_path("out/run1.Prom"));
  EXPECT_TRUE(obs::is_prometheus_path(".prom"));
  EXPECT_FALSE(obs::is_prometheus_path("metrics.json"));
  EXPECT_FALSE(obs::is_prometheus_path("prom"));
  EXPECT_FALSE(obs::is_prometheus_path("metrics.promx"));
  EXPECT_FALSE(obs::is_prometheus_path(""));
}

// ---------------------------------------------------------------------------
// Trace-drop export: ring overflow surfaces as a metrics counter, so a
// scraped run advertises its own trace truncation.

TEST(TraceMetrics, RingOverflowExportedAsDroppedCounter) {
  obs::MetricsRegistry reg;
  obs::declare_trace_metrics(reg);
  // Pre-declared at zero, and advertised even before any export.
  EXPECT_EQ(reg.snapshot().counter_value(obs::kMetricTraceDropped), 0u);
  EXPECT_NE(obs::to_prometheus(reg.snapshot())
                .find(std::string("# TYPE ") + obs::kMetricTraceDropped +
                      " counter"),
            std::string::npos);

  obs::Tracer tracer(/*ring_capacity=*/8);
  for (int i = 0; i < 100; ++i) tracer.instant("tick", "test");
  obs::export_trace_metrics(tracer, reg);
  EXPECT_EQ(reg.snapshot().counter_value(obs::kMetricTraceDropped), 92u);

  // A clean tracer contributes nothing (export adds, so callers export
  // once per tracer at flush time).
  obs::Tracer clean;
  clean.instant("t", "test");
  obs::export_trace_metrics(clean, reg);
  EXPECT_EQ(reg.snapshot().counter_value(obs::kMetricTraceDropped), 92u);
}

TEST(EngineStats, FromSnapshotReadsRegistryValues) {
  obs::MetricsRegistry reg;
  engine::declare_engine_metrics(reg);
  reg.counter(engine::kMetricChunks).add(9);
  reg.counter(engine::kMetricUncompressedBytes).add(4096);
  reg.counter(engine::kMetricCompressedBytes).add(1024);
  reg.counter(engine::kMetricRetries).add(3);
  reg.counter(engine::kMetricWorkerCrashes).add(1);
  reg.gauge(engine::kMetricThreads).set(4.0);
  reg.gauge(engine::kMetricWallSeconds).set(0.25);
  reg.gauge(engine::kMetricQueueHighWater).set(6.0);

  const engine::EngineStats s =
      engine::EngineStats::from_snapshot(reg.snapshot());
  EXPECT_EQ(s.chunks, 9u);
  EXPECT_EQ(s.uncompressed_bytes, 4096u);
  EXPECT_EQ(s.compressed_bytes, 1024u);
  EXPECT_EQ(s.retries, 3u);
  EXPECT_EQ(s.worker_crashes, 1u);
  EXPECT_EQ(s.threads, 4u);
  EXPECT_EQ(s.wall_seconds, 0.25);
  EXPECT_EQ(s.queue_high_water, 6u);
  // Missing metrics read as zero, never throw.
  EXPECT_EQ(s.timeouts, 0u);
  EXPECT_EQ(s.quarantined, 0u);
}

}  // namespace
}  // namespace ceresz
