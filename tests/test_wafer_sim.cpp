// Differential suite for the parallel full-wafer simulator core
// (wse::WaferSimulator, docs/simulator.md):
//   - banded parallel simulation is bit-identical to a whole-mesh serial
//     Fabric run, at every thread count and band size;
//   - an exact >= 128-row simulation through the wafer mapper produces
//     byte-identical streams and stable virtual-cycle counts whether it
//     runs on 1 thread or 8;
//   - the Formula (2)-(4) extrapolation path stays within the committed
//     mapping::kExtrapolationRelTolerance of a multi-hundred-row exact
//     run;
//   - fault storms (dead/slow PEs, dropped and corrupted bursts) are
//     simulated identically across thread counts, and degraded remapping
//     is parallel == serial;
//   - FaultPlan::slice_rows conserves every fault exactly once over any
//     row partition (fuzzed) and matches the coordinator's lease filter;
//   - sharing one engine::ThreadPool between the engine and the
//     simulator — even a 1-worker pool, even invoking a simulation from
//     inside a pool task — never deadlocks.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <map>
#include <set>
#include <tuple>

#include "common/rng.h"
#include "engine/thread_pool.h"
#include "mapping/perf_model.h"
#include "mapping/wafer_mapper.h"
#include "test_util.h"
#include "wse/fabric.h"
#include "wse/fault_plan.h"
#include "wse/wafer_sim.h"

namespace ceresz {
namespace {

wse::WseConfig mesh(u32 rows, u32 cols) {
  wse::WseConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  return cfg;
}

void expect_pe_stats_eq(const wse::PeStats& a, const wse::PeStats& b,
                        u32 row, u32 col) {
  EXPECT_EQ(a.busy_cycles, b.busy_cycles) << "pe " << row << "," << col;
  EXPECT_EQ(a.finish_time, b.finish_time) << "pe " << row << "," << col;
  EXPECT_EQ(a.tasks_run, b.tasks_run) << "pe " << row << "," << col;
  EXPECT_EQ(a.messages_relayed, b.messages_relayed);
  EXPECT_EQ(a.messages_received, b.messages_received);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.messages_corrupted, b.messages_corrupted);
  EXPECT_EQ(a.activations_suppressed, b.activations_suppressed);
}

void expect_run_stats_eq(const wse::RunStats& a, const wse::RunStats& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.tasks_run, b.tasks_run);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.messages_corrupted, b.messages_corrupted);
  EXPECT_EQ(a.activations_suppressed, b.activations_suppressed);
}

// ---------------------------------------------------------------------
// Banded parallel simulation vs whole-mesh serial Fabric
// ---------------------------------------------------------------------

constexpr wse::Color kWork = 3;
constexpr wse::Color kData = 7;

/// Per-row compute + one west-to-east burst, installed identically on a
/// whole-mesh Fabric or on WaferSimulator bands (rows are global either
/// way). Row r does row-dependent work so bands genuinely differ.
template <typename FabricFor>
void install_row_program(FabricFor&& fabric_for, u32 rows) {
  for (u32 r = 0; r < rows; ++r) {
    wse::Fabric& f = fabric_for(r);
    f.router(r, 0).set_route(kData, {wse::Direction::kRamp},
                             {wse::Direction::kEast});
    f.router(r, 1).set_route(kData, {wse::Direction::kWest},
                             {wse::Direction::kRamp});
    f.bind_task(r, 0, kWork, [r](wse::PeContext& ctx) {
      ctx.consume(100 + 13 * r);
      ctx.send_async(kData,
                     wse::Message::make(kData, {r, r + 1, 2 * r}, 1));
    });
    f.bind_task(
        r, 1, kData,
        [r](wse::PeContext& ctx) {
          wse::Message m = ctx.take_delivered(kData);
          ctx.consume(10);
          std::vector<u8> bytes;
          for (const u32 w : *m.payload) {
            bytes.push_back(static_cast<u8>(w & 0xff));
          }
          bytes.push_back(m.corrupted ? 1 : 0);
          ctx.emit_result(r, std::move(bytes));
        },
        wse::TaskTrigger::kDataTriggered);
    f.activate_at(r, 0, kWork, 0);
  }
}

struct SimOutcome {
  wse::RunStats stats;
  std::map<u64, std::vector<u8>> results;  // by tag: order-independent
  std::vector<wse::PeStats> pe_stats;
};

SimOutcome run_banded(u32 rows, u32 cols, u32 threads, u32 rows_per_group,
                      const wse::FaultPlan& plan = {},
                      engine::ThreadPool* pool = nullptr) {
  wse::WaferSimOptions opt;
  opt.wse = mesh(rows, cols);
  opt.sim_threads = threads;
  opt.rows_per_group = rows_per_group;
  opt.fault_plan = plan;
  opt.pool = pool;
  wse::WaferSimulator sim(opt);
  install_row_program([&](u32 r) -> wse::Fabric& { return sim.fabric_for_row(r); },
                      rows);
  SimOutcome out;
  out.stats = sim.run();
  for (const auto& rec : sim.results()) out.results[rec.tag] = rec.bytes;
  for (u32 r = 0; r < rows; ++r) {
    for (u32 c = 0; c < cols; ++c) out.pe_stats.push_back(sim.stats(r, c));
  }
  return out;
}

TEST(WaferSimulator, BandedParallelMatchesWholeMeshSerial) {
  constexpr u32 kRows = 24, kCols = 2;

  wse::Fabric whole(mesh(kRows, kCols));
  install_row_program([&](u32) -> wse::Fabric& { return whole; }, kRows);
  const wse::RunStats serial = whole.run();
  std::map<u64, std::vector<u8>> serial_results;
  for (const auto& rec : whole.results()) serial_results[rec.tag] = rec.bytes;

  for (const auto& [threads, per_group] :
       std::vector<std::pair<u32, u32>>{{1, 0}, {4, 0}, {8, 0}, {4, 3}, {8, 7}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads) +
                 " rows_per_group=" + std::to_string(per_group));
    const SimOutcome banded = run_banded(kRows, kCols, threads, per_group);
    expect_run_stats_eq(banded.stats, serial);
    EXPECT_EQ(banded.results, serial_results);
    for (u32 r = 0; r < kRows; ++r) {
      for (u32 c = 0; c < kCols; ++c) {
        expect_pe_stats_eq(banded.pe_stats[r * kCols + c],
                           whole.stats(r, c), r, c);
      }
    }
  }
}

TEST(WaferSimulator, FaultStormDeterministicAcrossThreadCounts) {
  constexpr u32 kRows = 16, kCols = 2;
  // A cross-row storm: dead + slow PEs plus drop/corrupt delivery faults
  // spread over many rows (so row bands genuinely consult the global
  // plan).
  wse::FaultPlan plan(99);
  plan.kill_pe(3, 1);        // swallows row 3's burst and its result
  plan.slow_pe(5, 0, 2.5);   // stretches row 5's compute
  plan.slow_pe(11, 1, 3.0);
  plan.drop_delivery(7, 1, 0);
  plan.corrupt_delivery(9, 1, 0);

  const SimOutcome serial = run_banded(kRows, kCols, 1, 0, plan);
  EXPECT_GT(serial.stats.messages_dropped, 0u);
  EXPECT_GT(serial.stats.messages_corrupted, 0u);
  EXPECT_FALSE(serial.results.contains(3));  // dead PE ate it
  EXPECT_FALSE(serial.results.contains(7));  // dropped burst
  ASSERT_TRUE(serial.results.contains(9));
  EXPECT_EQ(serial.results.at(9).back(), 1);  // corrupted flag delivered

  for (const u32 threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const SimOutcome parallel = run_banded(kRows, kCols, threads, 0, plan);
    expect_run_stats_eq(parallel.stats, serial.stats);
    EXPECT_EQ(parallel.results, serial.results);
    for (std::size_t i = 0; i < serial.pe_stats.size(); ++i) {
      expect_pe_stats_eq(parallel.pe_stats[i], serial.pe_stats[i],
                         static_cast<u32>(i / kCols),
                         static_cast<u32>(i % kCols));
    }
  }
}

// ---------------------------------------------------------------------
// Wafer-mapper integration: >= 128-row exact runs, thread identity,
// extrapolation tolerance
// ---------------------------------------------------------------------

mapping::MapperOptions exact_mapper_options(u32 rows, u32 cols,
                                            u32 sim_threads) {
  mapping::MapperOptions opt;
  opt.rows = rows;
  opt.cols = cols;
  opt.pipeline_length = 1;
  opt.max_exact_rows = rows;
  opt.sim_threads = sim_threads;
  return opt;
}

TEST(WaferMapperParallelSim, Exact128RowRunByteIdenticalAcrossThreads) {
  // 512 blocks over 128 rows x 2 pipes: every row simulated exactly.
  const std::vector<f32> data = test::smooth_signal(512 * 32);
  const core::ErrorBound bound = core::ErrorBound::absolute(1e-3);

  const mapping::WaferMapper serial(exact_mapper_options(128, 2, 1));
  const auto base = serial.compress(data, bound);
  EXPECT_FALSE(base.extrapolated);
  EXPECT_EQ(base.rows_simulated, 128u);
  ASSERT_FALSE(base.stream.empty());

  for (const u32 threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const mapping::WaferMapper parallel(exact_mapper_options(128, 2, threads));
    const auto run = parallel.compress(data, bound);
    EXPECT_EQ(run.stream, base.stream);  // bit-identical output
    EXPECT_EQ(run.makespan, base.makespan);  // stable virtual cycles
    expect_run_stats_eq(run.run_stats, base.run_stats);
    ASSERT_EQ(run.row0_stats.size(), base.row0_stats.size());
    for (std::size_t c = 0; c < base.row0_stats.size(); ++c) {
      expect_pe_stats_eq(run.row0_stats[c], base.row0_stats[c], 0,
                         static_cast<u32>(c));
    }
  }

  // Round-trip through the parallel decompression path too.
  mapping::MapperOptions dopt = exact_mapper_options(128, 2, 8);
  const auto decoded = mapping::WaferMapper(dopt).decompress(base.stream);
  dopt.sim_threads = 1;
  const auto decoded_serial =
      mapping::WaferMapper(dopt).decompress(base.stream);
  EXPECT_EQ(decoded.output, decoded_serial.output);
  EXPECT_EQ(decoded.makespan, decoded_serial.makespan);
  ASSERT_EQ(decoded.output.size(), data.size());
  EXPECT_LE(test::max_err(data, decoded.output), 1e-3 + 1e-6);
}

TEST(WaferMapperParallelSim, ExtrapolationWithinCommittedTolerance) {
  // Exact multi-hundred-row run vs the Formula (2)-(4) extrapolation
  // path (16 representative rows of the same mesh). The tolerance is
  // the committed constant the benches also gate on.
  const std::vector<f32> data = test::smooth_signal(2048 * 32, 21);
  const core::ErrorBound bound = core::ErrorBound::absolute(1e-3);
  constexpr u32 kRows = 256;

  mapping::MapperOptions opt = exact_mapper_options(kRows, 2, 8);
  opt.collect_output = false;
  const auto exact = mapping::WaferMapper(opt).compress(data, bound);
  EXPECT_FALSE(exact.extrapolated);
  EXPECT_EQ(exact.rows_simulated, kRows);

  opt.max_exact_rows = 16;
  const auto extrap = mapping::WaferMapper(opt).compress(data, bound);
  EXPECT_TRUE(extrap.extrapolated);
  EXPECT_EQ(extrap.rows_simulated, 16u);

  ASSERT_GT(exact.throughput_gbps, 0.0);
  const f64 rel_err =
      std::abs(extrap.throughput_gbps - exact.throughput_gbps) /
      exact.throughput_gbps;
  EXPECT_LE(rel_err, mapping::kExtrapolationRelTolerance)
      << "extrapolated " << extrap.throughput_gbps << " GB/s vs exact "
      << exact.throughput_gbps << " GB/s";
}

TEST(WaferMapperParallelSim, DegradedRemappingParallelEqualsSerial) {
  // Dead PEs fail one row outright and narrow another; surviving rows
  // absorb the share. The degraded placement must be identical however
  // many threads simulate it.
  const std::vector<f32> data = test::smooth_signal(256 * 32, 5);
  const core::ErrorBound bound = core::ErrorBound::absolute(1e-3);

  wse::FaultPlan plan(7);
  plan.kill_pe(2, 0);  // row 2: no usable pipeline -> row fails
  plan.kill_pe(9, 2);  // row 9: pipelines east of col 2 lost
  plan.slow_pe(13, 1, 2.0);

  mapping::MapperOptions opt = exact_mapper_options(16, 4, 1);
  opt.fault_plan = plan;
  const auto serial = mapping::WaferMapper(opt).compress(data, bound);
  EXPECT_TRUE(serial.degraded);
  EXPECT_EQ(serial.rows_failed, 1u);
  EXPECT_GT(serial.pipelines_lost, 0u);
  ASSERT_FALSE(serial.stream.empty());

  for (const u32 threads : {4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    opt.sim_threads = threads;
    const auto parallel = mapping::WaferMapper(opt).compress(data, bound);
    EXPECT_EQ(parallel.stream, serial.stream);
    EXPECT_EQ(parallel.makespan, serial.makespan);
    EXPECT_EQ(parallel.rows_failed, serial.rows_failed);
    EXPECT_EQ(parallel.pipelines_lost, serial.pipelines_lost);
    expect_run_stats_eq(parallel.run_stats, serial.run_stats);
  }
}

// ---------------------------------------------------------------------
// FaultPlan::slice_rows: conservation fuzz + lease-filter equivalence
// ---------------------------------------------------------------------

using DeadSet = std::set<std::pair<u32, u32>>;
using SlowSet = std::set<std::tuple<u32, u32, i64>>;
using DeliverySet = std::set<std::tuple<u32, u32, u64, int>>;

struct FaultSets {
  DeadSet dead;
  SlowSet slow;
  DeliverySet delivery;
};

/// Every fault of `plan`, with rows shifted by +row_offset (to map a
/// slice back into wafer coordinates). Multipliers are keyed by their
/// bit pattern so set equality is exact, not epsilon-based.
FaultSets collect(const wse::FaultPlan& plan, u32 row_offset = 0) {
  FaultSets s;
  plan.for_each_dead(
      [&](u32 r, u32 c) { s.dead.emplace(r + row_offset, c); });
  plan.for_each_slow([&](u32 r, u32 c, f64 mult) {
    i64 bits;
    std::memcpy(&bits, &mult, sizeof(bits));
    s.slow.emplace(r + row_offset, c, bits);
  });
  plan.for_each_delivery_fault(
      [&](u32 r, u32 c, u64 arrival, wse::DeliveryFault fault) {
        s.delivery.emplace(r + row_offset, c, arrival,
                           static_cast<int>(fault));
      });
  return s;
}

TEST(FaultPlanSliceRows, FuzzedPartitionsConserveEveryFaultExactlyOnce) {
  constexpr u32 kRows = 48, kCols = 8;
  wse::FaultSpec spec;
  spec.dead_pes = 10;
  spec.slow_pes = 12;
  spec.dropped_bursts = 9;
  spec.corrupted_bursts = 9;

  for (u64 seed = 0; seed < 25; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const wse::FaultPlan plan =
        wse::FaultPlan::random(seed, kRows, kCols, spec);
    const FaultSets global = collect(plan);

    // A random contiguous partition of [0, kRows) drawn from the seed.
    Rng rng(seed * 7919 + 1);
    std::vector<u32> boundaries{0};
    while (boundaries.back() < kRows) {
      boundaries.push_back(boundaries.back() + 1 +
                           static_cast<u32>(rng.next_below(11)));
    }
    boundaries.back() = kRows;

    FaultSets merged;
    u64 dead_total = 0, slow_total = 0, delivery_total = 0;
    for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
      const u32 begin = boundaries[i];
      const u32 count = boundaries[i + 1] - begin;
      const wse::FaultPlan slice = plan.slice_rows(begin, count);
      EXPECT_EQ(slice.seed(), plan.seed());
      dead_total += slice.dead_pe_count();
      slow_total += slice.slow_pe_count();
      delivery_total += slice.delivery_fault_count();
      const FaultSets rebased = collect(slice, begin);
      // Exactly-once: no slice may re-report a fault another slice owns.
      for (const auto& d : rebased.dead) EXPECT_TRUE(merged.dead.insert(d).second);
      for (const auto& s : rebased.slow) EXPECT_TRUE(merged.slow.insert(s).second);
      for (const auto& d : rebased.delivery) {
        EXPECT_TRUE(merged.delivery.insert(d).second);
      }
    }
    // Nothing dropped: the union over the partition is the global plan.
    EXPECT_EQ(merged.dead, global.dead);
    EXPECT_EQ(merged.slow, global.slow);
    EXPECT_EQ(merged.delivery, global.delivery);
    EXPECT_EQ(dead_total, plan.dead_pe_count());
    EXPECT_EQ(slow_total, plan.slow_pe_count());
    EXPECT_EQ(delivery_total, plan.delivery_fault_count());
  }
}

TEST(FaultPlanSliceRows, MatchesManualLeaseFiltering) {
  // The tenant coordinator's lease slice (PR 7) re-expressed through
  // slice_rows must equal the original manual filter, including the
  // column limit (leases can be narrower than the wafer).
  constexpr u32 kRows = 32, kCols = 10;
  wse::FaultSpec spec;
  spec.dead_pes = 8;
  spec.slow_pes = 8;
  spec.dropped_bursts = 6;
  spec.corrupted_bursts = 6;

  for (u64 seed = 100; seed < 110; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const wse::FaultPlan plan =
        wse::FaultPlan::random(seed, kRows, kCols, spec);
    Rng rng(seed);
    const u32 begin = static_cast<u32>(rng.next_below(kRows - 1));
    const u32 count =
        1 + static_cast<u32>(rng.next_below(kRows - begin));
    const u32 lease_cols = 1 + static_cast<u32>(rng.next_below(kCols));

    // The manual filter the coordinator used before slice_rows existed.
    wse::FaultPlan manual;
    plan.for_each_dead([&](u32 r, u32 c) {
      if (r >= begin && r < begin + count && c < lease_cols) {
        manual.kill_pe(r - begin, c);
      }
    });
    plan.for_each_slow([&](u32 r, u32 c, f64 mult) {
      if (r >= begin && r < begin + count && c < lease_cols) {
        manual.slow_pe(r - begin, c, mult);
      }
    });
    plan.for_each_delivery_fault(
        [&](u32 r, u32 c, u64 arrival, wse::DeliveryFault fault) {
          if (r < begin || r >= begin + count || c >= lease_cols) return;
          if (fault == wse::DeliveryFault::kDrop) {
            manual.drop_delivery(r - begin, c, arrival);
          } else {
            manual.corrupt_delivery(r - begin, c, arrival);
          }
        });

    const wse::FaultPlan sliced = plan.slice_rows(begin, count, lease_cols);
    const FaultSets a = collect(manual);
    const FaultSets b = collect(sliced);
    EXPECT_EQ(a.dead, b.dead);
    EXPECT_EQ(a.slow, b.slow);
    EXPECT_EQ(a.delivery, b.delivery);
  }
}

// ---------------------------------------------------------------------
// Thread-pool sharing: no deadlock, even on a 1-worker pool
// ---------------------------------------------------------------------

/// Run `fn` with a deadline; a hang fails the test instead of wedging
/// the whole suite (the canonical symptom this guards against).
template <typename Fn>
void run_with_deadline(Fn&& fn, std::chrono::seconds deadline) {
  auto done = std::async(std::launch::async, std::forward<Fn>(fn));
  ASSERT_EQ(done.wait_for(deadline), std::future_status::ready)
      << "simulation deadlocked";
  done.get();
}

TEST(WaferSimulatorPoolSharing, OneWorkerPoolDoesNotDeadlock) {
  engine::ThreadPool pool(1);
  run_with_deadline(
      [&] {
        const SimOutcome shared = run_banded(12, 2, 1, 0, {}, &pool);
        const SimOutcome solo = run_banded(12, 2, 1, 0);
        expect_run_stats_eq(shared.stats, solo.stats);
        EXPECT_EQ(shared.results, solo.results);
      },
      std::chrono::seconds(60));
}

TEST(WaferSimulatorPoolSharing, SimulationInsidePoolTaskDoesNotDeadlock) {
  // The tenant/server request path: compression work already runs on a
  // pool task, and that task drives a simulation borrowing the SAME
  // pool. With 1 worker the simulator must make progress inline.
  engine::ThreadPool pool(1);
  run_with_deadline(
      [&] {
        SimOutcome from_task;
        pool.submit([&] { from_task = run_banded(12, 2, 1, 0, {}, &pool); });
        pool.wait_idle();
        const SimOutcome solo = run_banded(12, 2, 1, 0);
        expect_run_stats_eq(from_task.stats, solo.stats);
        EXPECT_EQ(from_task.results, solo.results);
      },
      std::chrono::seconds(60));
}

TEST(WaferSimulatorPoolSharing, MapperOnSharedPoolMatchesPrivateThreads) {
  // Engine-style reuse at the mapper level: the same pool instance
  // serves several compressions, and results match a fresh-pool run.
  const std::vector<f32> data = test::smooth_signal(128 * 32, 3);
  const core::ErrorBound bound = core::ErrorBound::absolute(1e-3);
  engine::ThreadPool pool(2);

  mapping::MapperOptions opt = exact_mapper_options(32, 2, 1);
  opt.sim_pool = &pool;
  run_with_deadline(
      [&] {
        const auto shared = mapping::WaferMapper(opt).compress(data, bound);
        mapping::MapperOptions priv = exact_mapper_options(32, 2, 4);
        const auto owned = mapping::WaferMapper(priv).compress(data, bound);
        EXPECT_EQ(shared.stream, owned.stream);
        EXPECT_EQ(shared.makespan, owned.makespan);
      },
      std::chrono::seconds(60));
}

}  // namespace
}  // namespace ceresz
