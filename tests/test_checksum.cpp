#include "common/checksum.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace ceresz {
namespace {

std::span<const u8> bytes_of(const char* s) {
  return {reinterpret_cast<const u8*>(s), std::strlen(s)};
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 (iSCSI) CRC32C test vectors.
  EXPECT_EQ(crc32c({}), 0u);
  EXPECT_EQ(crc32c(bytes_of("123456789")), 0xe3069283u);
  const std::vector<u8> zeros32(32, 0x00);
  EXPECT_EQ(crc32c(zeros32), 0x8a9136aau);
  const std::vector<u8> ones32(32, 0xff);
  EXPECT_EQ(crc32c(ones32), 0x62a8ab43u);
  std::vector<u8> ascending(32);
  for (u8 i = 0; i < 32; ++i) ascending[i] = i;
  EXPECT_EQ(crc32c(ascending), 0x46dd794eu);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  std::vector<u8> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<u8>(i * 31 + 7);
  }
  const u32 whole = crc32c(data);
  for (std::size_t split : {0u, 1u, 7u, 8u, 500u, 999u, 1000u}) {
    std::span<const u8> span(data);
    const u32 part = crc32c(span.subspan(split), crc32c(span.first(split)));
    EXPECT_EQ(part, whole) << "split=" << split;
    Crc32c acc;
    acc.update(span.first(split));
    acc.update(span.subspan(split));
    EXPECT_EQ(acc.value(), whole) << "split=" << split;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::vector<u8> data(64, 0xab);
  const u32 clean = crc32c(data);
  for (std::size_t byte : {0u, 13u, 63u}) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<u8>(1 << bit);
      EXPECT_NE(crc32c(data), clean);
      data[byte] ^= static_cast<u8>(1 << bit);
    }
  }
  EXPECT_EQ(crc32c(data), clean);
}

}  // namespace
}  // namespace ceresz
