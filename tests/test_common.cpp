#include <gtest/gtest.h>

#include <cmath>

#include "common/bitio.h"
#include "common/error.h"
#include "common/format.h"
#include "common/rng.h"
#include "common/stats.h"

namespace ceresz {
namespace {

// ---- bit I/O ----

TEST(BitIo, RoundTripMixedWidths) {
  BitWriter w;
  w.put(0b101, 3);
  w.put(0xABCD, 16);
  w.put(1, 1);
  w.put(0x1FFFFF, 21);
  const auto bytes = w.finish();
  BitReader r(bytes.data(), bytes.size());
  EXPECT_EQ(r.get(3), 0b101u);
  EXPECT_EQ(r.get(16), 0xABCDu);
  EXPECT_EQ(r.get(1), 1u);
  EXPECT_EQ(r.get(21), 0x1FFFFFu);
}

TEST(BitIo, ZeroWidthIsNoop) {
  BitWriter w;
  w.put(0xFF, 0);
  EXPECT_EQ(w.bit_count(), 0u);
}

TEST(BitIo, MasksHighBits) {
  BitWriter w;
  w.put(0xFF, 4);  // only low 4 bits stored
  const auto bytes = w.finish();
  BitReader r(bytes.data(), bytes.size());
  EXPECT_EQ(r.get(4), 0xFu);
  EXPECT_EQ(r.get(4), 0u);  // padding
}

TEST(BitIo, ReadPastEndThrows) {
  const std::vector<u8> one = {0x5A};
  BitReader r(one.data(), one.size());
  r.get(8);
  EXPECT_THROW(r.get(1), Error);
}

TEST(BitIo, PeekDoesNotConsume) {
  BitWriter w;
  w.put(0x3C, 8);
  const auto bytes = w.finish();
  BitReader r(bytes.data(), bytes.size());
  EXPECT_EQ(r.peek(4), 0xCu);
  EXPECT_EQ(r.peek(4), 0xCu);
  r.skip(4);
  EXPECT_EQ(r.get(4), 0x3u);
}

TEST(BitIo, WidthLimitEnforced) {
  BitWriter w;
  EXPECT_THROW(w.put(0, 58), Error);
  EXPECT_THROW(w.put(0, -1), Error);
}

TEST(BitIo, LongRandomRoundTrip) {
  Rng rng(99);
  std::vector<std::pair<u64, int>> items;
  BitWriter w;
  for (int i = 0; i < 5000; ++i) {
    const int width = 1 + static_cast<int>(rng.next_below(57));
    const u64 value = rng.next_u64() & ((width >= 64) ? ~0ull
                                                      : ((1ull << width) - 1));
    items.emplace_back(value, width);
    w.put(value, width);
  }
  const auto bytes = w.finish();
  BitReader r(bytes.data(), bytes.size());
  for (const auto& [value, width] : items) {
    EXPECT_EQ(r.get(width), value);
  }
}

// ---- RNG ----

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const f64 v = rng.uniform(-2.5, 4.0);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 4.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  f64 sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const f64 g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NextBelowBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

// ---- stats ----

TEST(Stats, Summary) {
  const std::vector<f32> v = {1.0f, -3.0f, 5.0f, 2.0f};
  const ArraySummary s = summarize(v);
  EXPECT_EQ(s.min, -3.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.range(), 8.0);
  EXPECT_NEAR(s.mean, 1.25, 1e-12);
  EXPECT_EQ(s.count, 4u);
}

TEST(Stats, EmptySummary) {
  const ArraySummary s = summarize(std::vector<f32>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.range(), 0.0);
}

TEST(Stats, MaxAbsDiff) {
  const std::vector<f32> a = {1.0f, 2.0f};
  const std::vector<f32> b = {1.5f, 1.0f};
  EXPECT_NEAR(max_abs_diff(a, b), 1.0, 1e-12);
  EXPECT_THROW(max_abs_diff(a, std::vector<f32>{1.0f}), Error);
}

// ---- formatting ----

TEST(Format, TableRendersAligned) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 12345 |"), std::string::npos);
}

TEST(Format, TableRejectsBadRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
  EXPECT_THROW(TextTable({}), Error);
}

TEST(Format, Bytes) {
  EXPECT_EQ(fmt_bytes(512), "512.0 B");
  EXPECT_EQ(fmt_bytes(2048), "2.00 KB");
  EXPECT_EQ(fmt_bytes(5ull * 1024 * 1024 * 1024), "5.00 GB");
}

TEST(Format, F64Digits) {
  EXPECT_EQ(fmt_f64(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_f64(1.0, 0), "1");
}

}  // namespace
}  // namespace ceresz
