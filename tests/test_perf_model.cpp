#include "mapping/perf_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "core/stage.h"
#include "mapping/wafer_mapper.h"
#include "test_util.h"

namespace ceresz::mapping {
namespace {

PipelinePlan plan_for(u32 fl, u32 pl) {
  GreedyScheduler sched(core::PeCostModel{}, 32);
  return sched.distribute(core::compression_substages(fl), pl);
}

TEST(PerfModel, C1AndC2AreBlockLinear) {
  const PerfModel model(wse::WseConfig{});
  EXPECT_GT(model.relay_c1(64), model.relay_c1(32));
  EXPECT_EQ(model.relay_c1(64) - model.relay_c1(32), 32u);
  EXPECT_EQ(model.forward_c2(64) - model.forward_c2(32), 32u);
}

TEST(PerfModel, ThroughputScalesLinearlyWithRows) {
  const PerfModel model(wse::WseConfig{});
  const PipelinePlan plan = plan_for(12, 1);
  const auto p1 = model.predict(plan, 1, 8, 8000, 32, 128);
  const auto p4 = model.predict(plan, 4, 8, 8000, 32, 128);
  EXPECT_NEAR(p4.throughput_gbps / p1.throughput_gbps, 4.0, 0.05);
}

TEST(PerfModel, ThroughputScalesNearLinearlyWithColumns) {
  // Formula 4: the relay term makes column scaling slightly sub-linear.
  const PerfModel model(wse::WseConfig{});
  const PipelinePlan plan = plan_for(12, 1);
  const auto narrow = model.predict(plan, 1, 8, 65536, 32, 128);
  const auto wide = model.predict(plan, 1, 64, 65536, 32, 128);
  const f64 speedup = wide.throughput_gbps / narrow.throughput_gbps;
  EXPECT_GT(speedup, 5.5);
  EXPECT_LT(speedup, 8.0);
}

TEST(PerfModel, LongerPipelineNeverFaster) {
  // Section 4.4: optimum at pipeline length 1.
  const PerfModel model(wse::WseConfig{});
  f64 prev = 1e30;
  for (u32 pl : {1u, 2u, 4u, 8u}) {
    const PipelinePlan plan = plan_for(17, pl);
    const auto p = model.predict(plan, 1, 16, 65536, 32, 128);
    EXPECT_LE(p.throughput_gbps, prev * 1.01) << "pl=" << pl;
    prev = p.throughput_gbps;
  }
}

TEST(PerfModel, AgreesWithSimulatorPl1) {
  // The analytic model must track the event-driven simulation within ~15%
  // for the PL = 1 mapping it was derived from.
  const auto data = test::smooth_signal(32 * 512, 3);
  MapperOptions opt;
  opt.rows = 1;
  opt.cols = 8;
  opt.collect_output = false;
  const WaferMapper mapper(opt);
  const auto run = mapper.compress(data, core::ErrorBound::absolute(1e-3));

  const PerfModel model(opt.wse);
  const auto pred = model.predict(run.plan, opt.rows, opt.cols,
                                  run.total_blocks, 32, 128);
  const f64 rel_err =
      std::fabs(pred.throughput_gbps - run.throughput_gbps) /
      run.throughput_gbps;
  EXPECT_LT(rel_err, 0.15) << "model " << pred.throughput_gbps << " sim "
                           << run.throughput_gbps;
}

TEST(PerfModel, AgreesWithSimulatorAcrossPipelineLengths) {
  const auto data = test::smooth_signal(32 * 256, 5);
  const PerfModel model(wse::WseConfig{});
  for (u32 pl : {1u, 2u, 4u}) {
    MapperOptions opt;
    opt.rows = 1;
    opt.cols = 8;
    opt.pipeline_length = pl;
    opt.collect_output = false;
    const WaferMapper mapper(opt);
    const auto run = mapper.compress(data, core::ErrorBound::absolute(1e-3));
    const auto pred =
        model.predict(run.plan, 1, 8, run.total_blocks, 32, 128);
    const f64 rel_err =
        std::fabs(pred.throughput_gbps - run.throughput_gbps) /
        run.throughput_gbps;
    EXPECT_LT(rel_err, 0.30) << "pl=" << pl;
  }
}

TEST(PerfModel, DegradedWithNoSurvivorsIsInfeasibleNotAnError) {
  // Every row dead, or every pipeline cut: a typed zero-throughput
  // verdict, not an exception or a division by zero. The tenant
  // coordinator branches on `feasible` during admission and remapping.
  const PerfModel model(wse::WseConfig{});
  const PipelinePlan plan = plan_for(12, 1);
  for (const auto [rows, pipes] : {std::pair<u32, u32>{0, 8}, {4, 0}, {0, 0}}) {
    const auto p = model.predict_degraded(plan, rows, pipes, 1000, 32, 128);
    EXPECT_FALSE(p.feasible) << rows << "x" << pipes;
    EXPECT_EQ(p.throughput_gbps, 0.0);
    EXPECT_EQ(p.total_cycles, 0u);
    EXPECT_EQ(p.rounds, 0u);
    // The per-block constants are still reported — they describe the
    // plan, not the (empty) placement.
    EXPECT_GT(p.c1, 0u);
    EXPECT_GT(p.c2, 0u);
  }
}

TEST(PerfModel, DegradedSingleSurvivingRowMatchesHealthyOneRowPredict) {
  // The last surviving row must be priced exactly like a healthy 1-row
  // mesh of the same width — degradation only removes capacity, it does
  // not change the per-row round structure.
  const PerfModel model(wse::WseConfig{});
  const PipelinePlan plan = plan_for(12, 1);
  const auto degraded = model.predict_degraded(plan, 1, 8, 4096, 32, 128);
  const auto healthy = model.predict(plan, 1, 8, 4096, 32, 128);
  EXPECT_TRUE(degraded.feasible);
  EXPECT_EQ(degraded.round_cycles, healthy.round_cycles);
  EXPECT_EQ(degraded.rounds, healthy.rounds);
  EXPECT_EQ(degraded.total_cycles, healthy.total_cycles);
  EXPECT_DOUBLE_EQ(degraded.throughput_gbps, healthy.throughput_gbps);
}

TEST(PerfModel, ZeroBlocksYieldsZeroThroughputNotNaN) {
  const PerfModel model(wse::WseConfig{});
  const PipelinePlan plan = plan_for(12, 1);
  const auto p = model.predict(plan, 2, 8, /*blocks_total=*/0, 32, 128);
  EXPECT_TRUE(p.feasible);
  EXPECT_EQ(p.rounds, 0u);
  EXPECT_EQ(p.seconds, 0.0);
  EXPECT_EQ(p.throughput_gbps, 0.0);
  EXPECT_FALSE(std::isnan(p.throughput_gbps));
}

TEST(PerfModel, InvalidGeometryThrows) {
  const PerfModel model(wse::WseConfig{});
  const PipelinePlan plan = plan_for(12, 4);
  EXPECT_THROW(model.predict(plan, 0, 8, 100, 32, 128), Error);
  EXPECT_THROW(model.predict(plan, 1, 2, 100, 32, 128), Error);  // pl > cols
}

}  // namespace
}  // namespace ceresz::mapping
