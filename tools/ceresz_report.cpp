// ceresz_report: turn an instrumented run's artifacts into the paper's
// performance views — the Fig. 10 occupancy table, per-pipeline
// bottleneck attribution, Formula 2-4 residuals, and latency digests.
//
//   ceresz_report --trace trace.json [--metrics metrics.json]
//                 [--format text|json] [--out report.txt]
//
// `--trace` is a Chrome trace file written by any --trace-out flag;
// `--metrics` is the JSON metrics export (required for the cost-model
// section — without it the report marks the model "unavailable").
// Exit codes: 0 success, 1 bad input file, 2 usage error.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "obs/analysis/report.h"

namespace {

using namespace ceresz;
using namespace ceresz::obs::analysis;

struct Args {
  std::string trace_path;
  std::string metrics_path;
  std::string format = "text";
  std::string out_path;  ///< empty = stdout
};

void usage(std::ostream& os) {
  os << "usage: ceresz_report --trace trace.json [--metrics metrics.json]\n"
        "                     [--format text|json] [--out FILE]\n";
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](std::string& dst) {
      if (i + 1 >= argc) return false;
      dst = argv[++i];
      return true;
    };
    if (a == "--trace") {
      if (!value(args.trace_path)) return false;
    } else if (a == "--metrics") {
      if (!value(args.metrics_path)) return false;
    } else if (a == "--format") {
      if (!value(args.format)) return false;
      if (args.format != "text" && args.format != "json") return false;
    } else if (a == "--out") {
      if (!value(args.out_path)) return false;
    } else if (a == "--help" || a == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      return false;
    }
  }
  return !args.trace_path.empty();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CERESZ_CHECK(in.good(), "cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  CERESZ_CHECK(!in.bad(), "error reading " + path);
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage(std::cerr);
    return 2;
  }
  try {
    const TraceData trace = load_chrome_trace(read_file(args.trace_path));
    obs::MetricsSnapshot metrics;
    if (!args.metrics_path.empty()) {
      metrics = snapshot_from_json(read_file(args.metrics_path));
    }
    const Report report = build_report(trace, metrics);
    const std::string rendered =
        args.format == "json" ? render_json(report) : render_text(report);
    if (args.out_path.empty()) {
      std::cout << rendered;
    } else {
      std::ofstream out(args.out_path, std::ios::binary);
      CERESZ_CHECK(out.good(), "cannot open " + args.out_path);
      out << rendered;
      CERESZ_CHECK(out.good(), "error writing " + args.out_path);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ceresz_report: " << e.what() << "\n";
    return 1;
  }
}
