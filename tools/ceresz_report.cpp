// ceresz_report: turn an instrumented run's artifacts into the paper's
// performance views — the Fig. 10 occupancy table, per-pipeline
// bottleneck attribution, Formula 2-4 residuals, and latency digests.
//
//   ceresz_report --trace trace.json [--metrics metrics.json]
//                 [--format text|json] [--out report.txt]
//
//   ceresz_report --stitch --client client.json --server server.json
//                 [--merged-out merged.json] [--history-out FILE]
//                 [--out report.txt]
//
// `--trace` is a Chrome trace file written by any --trace-out flag;
// `--metrics` is the JSON metrics export (required for the cost-model
// section — without it the report marks the model "unavailable").
//
// `--stitch` joins a CLIENT-side trace (bench_service_load --trace-out,
// or any CereszClient with a tracer) and a SERVER-side trace
// (ceresz_server --trace-out) on the CSNP v4 trace context into one
// cross-process view: per-request network / queue-wait / engine /
// retry-amplification breakdown, the attempt match rate, and the
// server's request-tagged span coverage. --merged-out additionally
// writes both processes as one Chrome trace on a single aligned
// timeline; --history-out appends perfgate records under the
// "service_trace" bench (docs/observability.md).
//
// Exit codes: 0 success, 1 bad input file, 2 usage error.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "obs/analysis/report.h"
#include "obs/analysis/stitch.h"

namespace {

using namespace ceresz;
using namespace ceresz::obs::analysis;

struct Args {
  std::string trace_path;
  std::string metrics_path;
  std::string format = "text";
  std::string out_path;  ///< empty = stdout
  bool stitch = false;
  std::string client_path;
  std::string server_path;
  std::string merged_out;
  std::string history_out;
};

void usage(std::ostream& os) {
  os << "usage: ceresz_report --trace trace.json [--metrics metrics.json]\n"
        "                     [--format text|json] [--out FILE]\n"
        "       ceresz_report --stitch --client client.json\n"
        "                     --server server.json [--merged-out FILE]\n"
        "                     [--history-out FILE] [--out FILE]\n";
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](std::string& dst) {
      if (i + 1 >= argc) return false;
      dst = argv[++i];
      return true;
    };
    if (a == "--trace") {
      if (!value(args.trace_path)) return false;
    } else if (a == "--metrics") {
      if (!value(args.metrics_path)) return false;
    } else if (a == "--format") {
      if (!value(args.format)) return false;
      if (args.format != "text" && args.format != "json") return false;
    } else if (a == "--out") {
      if (!value(args.out_path)) return false;
    } else if (a == "--stitch") {
      args.stitch = true;
    } else if (a == "--client") {
      if (!value(args.client_path)) return false;
    } else if (a == "--server") {
      if (!value(args.server_path)) return false;
    } else if (a == "--merged-out") {
      if (!value(args.merged_out)) return false;
    } else if (a == "--history-out") {
      if (!value(args.history_out)) return false;
    } else if (a == "--help" || a == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      return false;
    }
  }
  if (args.stitch) {
    return !args.client_path.empty() && !args.server_path.empty();
  }
  return !args.trace_path.empty();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CERESZ_CHECK(in.good(), "cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  CERESZ_CHECK(!in.bad(), "error reading " + path);
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  CERESZ_CHECK(out.good(), "cannot open " + path);
  out << content;
  CERESZ_CHECK(out.good(), "error writing " + path);
}

void emit(const Args& args, const std::string& rendered) {
  if (args.out_path.empty()) {
    std::cout << rendered;
  } else {
    write_file(args.out_path, rendered);
  }
}

int run_stitch(const Args& args) {
  const TraceData client = load_chrome_trace(read_file(args.client_path));
  const TraceData server = load_chrome_trace(read_file(args.server_path));
  const StitchReport report = stitch_traces(client, server);
  emit(args, render_stitch_report(report));
  if (!args.merged_out.empty()) {
    write_file(args.merged_out,
               merged_chrome_trace_json(client, server, report));
  }
  if (!args.history_out.empty()) {
    std::ofstream out(args.history_out, std::ios::app | std::ios::binary);
    CERESZ_CHECK(out.good(), "cannot open " + args.history_out);
    for (HistoryRecord rec : stitch_history_records(report)) {
      stamp_history_metadata(rec);
      out << rec.to_jsonl() << "\n";
    }
    CERESZ_CHECK(out.good(), "error writing " + args.history_out);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage(std::cerr);
    return 2;
  }
  try {
    if (args.stitch) return run_stitch(args);
    const TraceData trace = load_chrome_trace(read_file(args.trace_path));
    obs::MetricsSnapshot metrics;
    if (!args.metrics_path.empty()) {
      metrics = snapshot_from_json(read_file(args.metrics_path));
    }
    const Report report = build_report(trace, metrics);
    const std::string rendered =
        args.format == "json" ? render_json(report) : render_text(report);
    emit(args, rendered);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ceresz_report: " << e.what() << "\n";
    return 1;
  }
}
