// ceresz_perfgate: the CI perf-regression gate. Compares a bench run's
// history records (bench/history JSONL) against a committed baseline
// with per-metric noise bands.
//
//   ceresz_perfgate --baseline bench/history/baseline.jsonl \
//                   --current run.jsonl [--hard-factor 3.0]
//
// Deviations within a metric's noise band pass; within band x
// hard-factor they warn (exit 0, so shared runners soft-fail); beyond
// that the gate fails. To refresh the baseline after an intentional
// change, overwrite baseline.jsonl with the new run's records (see
// docs/observability.md).
// Exit codes: 0 pass/warn, 1 regression, 2 usage or unreadable input.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "obs/analysis/perfgate.h"

namespace {

using namespace ceresz;
using namespace ceresz::obs::analysis;

struct Args {
  std::string baseline_path;
  std::string current_path;
  f64 hard_factor = 3.0;
};

void usage(std::ostream& os) {
  os << "usage: ceresz_perfgate --baseline baseline.jsonl "
        "--current run.jsonl [--hard-factor N]\n";
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--baseline") {
      const char* v = value();
      if (!v) return false;
      args.baseline_path = v;
    } else if (a == "--current") {
      const char* v = value();
      if (!v) return false;
      args.current_path = v;
    } else if (a == "--hard-factor") {
      const char* v = value();
      if (!v) return false;
      args.hard_factor = std::atof(v);
      if (args.hard_factor < 1.0) return false;
    } else if (a == "--help" || a == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      return false;
    }
  }
  return !args.baseline_path.empty() && !args.current_path.empty();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CERESZ_CHECK(in.good(), "cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  CERESZ_CHECK(!in.bad(), "error reading " + path);
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage(std::cerr);
    return 2;
  }
  try {
    const auto baseline =
        parse_history_jsonl(read_file(args.baseline_path));
    const auto current = parse_history_jsonl(read_file(args.current_path));
    const GateReport report =
        evaluate_gate(baseline, current, args.hard_factor);
    std::cout << render_gate(report);
    return report.failed ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "ceresz_perfgate: " << e.what() << "\n";
    return 2;
  }
}
