// ceresz_server — the CereSZ networked compression daemon.
//
//   ceresz_server [--port P] [--workers N] [--max-inflight M]
//                 [--deadline-ms D] [--threads T] [--chunk-elems E]
//                 [--max-frame-mb MB] [--io-timeout-ms T]
//                 [--idle-timeout-ms T] [--drain-ms T]
//                 [--metrics-out FILE]
//                 [--telemetry-port P] [--trace-out FILE]
//                 [--log-level LEVEL] [--log-rate N]
//                 [--tenants N] [--tenant-quota-gbps Q]
//                 [--wafer-rows R] [--wafer-cols C]
//
// Binds 127.0.0.1:P (default 4860; 0 = ephemeral, printed on startup),
// accepts CSNP frames (docs/service.md), and serves COMPRESS /
// DECOMPRESS / STATS / PING with engine::ParallelEngine behind a
// bounded in-flight limit.
//
// Observability (docs/observability.md):
//   --telemetry-port starts a loopback HTTP endpoint next to the CSNP
//     port — GET /metrics (Prometheus), /healthz (200, or 503 while
//     draining), /tracez (recent completed-request spans as JSON).
//   --trace-out records every request's distributed span tree (CSNP v4
//     trace context; v3 clients get server-synthesized trace ids) and
//     writes a Chrome trace on exit, stitchable against a client trace
//     with `ceresz_report --stitch`.
//   Lifecycle and error-path events go to stderr as JSON lines through
//   the rate-limited obs::Logger (--log-level, --log-rate); the
//   "listening on" line CI greps stays on stdout.
//
// Shutdown: SIGTERM drains — the server stops accepting, rejects new
// work with DRAINING frames (and /healthz flips to 503), finishes what
// is in flight (bounded by --drain-ms), then exits; the
// orchestrator-friendly path. SIGINT stops immediately. With
// --metrics-out the final registry snapshot is written on exit
// (Prometheus text when FILE ends in .prom, JSON otherwise) — the same
// registry the STATS opcode serves live.
//
// Exit codes (matching the README table's convention): 0 clean
// shutdown, 1 runtime error (cannot bind, I/O failure), 2 usage error.
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "net/server.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace {

using namespace ceresz;

std::atomic<int> g_signal{0};

void handle_signal(int sig) { g_signal.store(sig); }

int usage() {
  std::fprintf(
      stderr,
      "usage: ceresz_server [options]\n"
      "  --port P          TCP port on 127.0.0.1 (default 4860; 0 picks an\n"
      "                    ephemeral port, printed on startup)\n"
      "  --workers N       connection-worker threads (default 2)\n"
      "  --max-inflight M  admitted-but-unanswered request bound; beyond\n"
      "                    it requests get a BUSY error frame\n"
      "                    (default 2 x workers)\n"
      "  --deadline-ms D   default per-request deadline for requests that\n"
      "                    do not carry one (default 0 = none)\n"
      "  --threads T       engine worker threads per request (default:\n"
      "                    hardware concurrency)\n"
      "  --chunk-elems E   engine chunk size in elements (multiple of 32)\n"
      "  --max-frame-mb MB reject frames declaring a larger payload\n"
      "                    (default 1024)\n"
      "  --io-timeout-ms T per-I/O-call deadline on every connection;\n"
      "                    slow-loris peers are dropped (default 30000,\n"
      "                    0 = unbounded)\n"
      "  --idle-timeout-ms T  reap connections idle between frames for\n"
      "                    longer than T (default 0 = keep-alive forever)\n"
      "  --drain-ms T      on SIGTERM, wait up to T for in-flight work\n"
      "                    before stopping (default 10000)\n"
      "  --metrics-out F   write the final metrics snapshot on shutdown\n"
      "                    (.prom = Prometheus text, else JSON)\n"
      "  --telemetry-port P  serve GET /metrics, /healthz, /tracez over\n"
      "                    HTTP on 127.0.0.1:P (0 picks an ephemeral\n"
      "                    port; printed on startup; default off)\n"
      "  --trace-out F     record per-request distributed span trees and\n"
      "                    write a Chrome trace file on shutdown\n"
      "  --log-level L     stderr JSON-lines log level: debug, info,\n"
      "                    warn, error (default info)\n"
      "  --log-rate N      non-error log records per second before the\n"
      "                    limiter sheds (default 200, 0 = unlimited)\n"
      "  --tenants N       enable multi-tenant wafer coordination with up\n"
      "                    to N concurrent tenants (docs/tenancy.md);\n"
      "                    CSNP v3 frames with a nonzero tenant id are\n"
      "                    admitted against a wafer lease, others bypass\n"
      "                    (default 0 = tenancy disabled)\n"
      "  --tenant-quota-gbps Q  standard-priority admission quota in\n"
      "                    GB/s; interactive asks 2x, batch 0.5x\n"
      "                    (default 0 = best effort)\n"
      "  --wafer-rows R    coordinated wafer rows (default 12)\n"
      "  --wafer-cols C    coordinated wafer columns (default 8)\n"
      "exit codes: 0 clean shutdown, 1 runtime error, 2 usage error\n");
  return 2;
}

bool parse_u64(const char* s, u64& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = static_cast<u64>(v);
  return true;
}

bool parse_f64(const char* s, f64& out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || v < 0.0) return false;
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  net::ServerOptions opt;
  opt.port = 4860;
  opt.io_timeout_ms = 30'000;  // daemons default to slow-loris defense
  u32 drain_ms = 10'000;
  std::string metrics_out;
  std::string trace_out;
  bool telemetry = false;
  u16 telemetry_port = 0;
  obs::LoggerOptions log_opt;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    u64 v = 0;
    if (a == "--port") {
      const char* s = value();
      if (!s || !parse_u64(s, v) || v > 0xffff) return usage();
      opt.port = static_cast<u16>(v);
    } else if (a == "--workers") {
      const char* s = value();
      if (!s || !parse_u64(s, v) || v == 0 || v > 1024) return usage();
      opt.workers = static_cast<u32>(v);
    } else if (a == "--max-inflight") {
      const char* s = value();
      if (!s || !parse_u64(s, v) || v == 0) return usage();
      opt.max_inflight = v;
    } else if (a == "--deadline-ms") {
      const char* s = value();
      if (!s || !parse_u64(s, v) || v > 0xffffffffull) return usage();
      opt.default_deadline_ms = static_cast<u32>(v);
    } else if (a == "--threads") {
      const char* s = value();
      if (!s || !parse_u64(s, v) || v > 1024) return usage();
      opt.engine.threads = static_cast<u32>(v);
    } else if (a == "--chunk-elems") {
      const char* s = value();
      if (!s || !parse_u64(s, v) || v == 0) return usage();
      opt.engine.chunk_elems = v;
    } else if (a == "--max-frame-mb") {
      const char* s = value();
      if (!s || !parse_u64(s, v) || v == 0 || v > 1024) return usage();
      opt.max_frame_payload = v << 20;
    } else if (a == "--io-timeout-ms") {
      const char* s = value();
      if (!s || !parse_u64(s, v) || v > 0xffffffffull) return usage();
      opt.io_timeout_ms = static_cast<u32>(v);
    } else if (a == "--idle-timeout-ms") {
      const char* s = value();
      if (!s || !parse_u64(s, v) || v > 0xffffffffull) return usage();
      opt.idle_timeout_ms = static_cast<u32>(v);
    } else if (a == "--drain-ms") {
      const char* s = value();
      if (!s || !parse_u64(s, v) || v > 0xffffffffull) return usage();
      drain_ms = static_cast<u32>(v);
    } else if (a == "--metrics-out") {
      const char* s = value();
      if (!s) return usage();
      metrics_out = s;
    } else if (a == "--telemetry-port") {
      const char* s = value();
      if (!s || !parse_u64(s, v) || v > 0xffff) return usage();
      telemetry = true;
      telemetry_port = static_cast<u16>(v);
    } else if (a == "--trace-out") {
      const char* s = value();
      if (!s) return usage();
      trace_out = s;
    } else if (a == "--log-level") {
      const char* s = value();
      if (!s || !obs::parse_log_level(s, log_opt.min_level)) return usage();
    } else if (a == "--log-rate") {
      const char* s = value();
      if (!s || !parse_u64(s, v) || v > 0xffffffffull) return usage();
      log_opt.max_events_per_sec = static_cast<u32>(v);
    } else if (a == "--tenants") {
      const char* s = value();
      if (!s || !parse_u64(s, v) || v == 0 || v > 1024) return usage();
      opt.tenancy.enabled = true;
      opt.tenancy.max_tenants = static_cast<u32>(v);
    } else if (a == "--tenant-quota-gbps") {
      const char* s = value();
      f64 q = 0.0;
      if (!s || !parse_f64(s, q)) return usage();
      opt.tenancy.default_quota_gbps = q;
    } else if (a == "--wafer-rows") {
      const char* s = value();
      if (!s || !parse_u64(s, v) || v == 0 || v > 4096) return usage();
      opt.tenancy.wafer_rows = static_cast<u32>(v);
    } else if (a == "--wafer-cols") {
      const char* s = value();
      if (!s || !parse_u64(s, v) || v == 0 || v > 4096) return usage();
      opt.tenancy.wafer_cols = static_cast<u32>(v);
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "ceresz_server: unknown flag %s\n", a.c_str());
      return usage();
    }
  }

  try {
    obs::Logger logger(log_opt);
    obs::SpanLog span_log;
    std::unique_ptr<obs::Tracer> tracer;
    if (!trace_out.empty()) {
      tracer = std::make_unique<obs::Tracer>();
      tracer->set_process_name(obs::kHostPid, "ceresz_server");
    }
    opt.logger = &logger;
    opt.span_log = &span_log;
    opt.tracer = tracer.get();

    net::ServiceServer server(std::move(opt));
    server.start();

    std::unique_ptr<obs::TelemetryEndpoint> endpoint;
    if (telemetry) {
      obs::TelemetryOptions topt;
      topt.port = telemetry_port;
      topt.metrics = &server.metrics();
      topt.spans = &span_log;
      topt.logger = &logger;
      endpoint = std::make_unique<obs::TelemetryEndpoint>(topt);
      endpoint->start();
      std::printf("ceresz_server telemetry on 127.0.0.1:%u "
                  "(/metrics /healthz /tracez)\n",
                  static_cast<unsigned>(endpoint->port()));
    }
    std::printf("ceresz_server listening on 127.0.0.1:%u "
                "(workers=%u, max-inflight=%llu, deadline-ms=%u)\n",
                static_cast<unsigned>(server.port()),
                static_cast<unsigned>(server.options().workers),
                static_cast<unsigned long long>(
                    server.resolved_max_inflight()),
                static_cast<unsigned>(server.options().default_deadline_ms));
    if (server.options().tenancy.enabled) {
      std::printf("ceresz_server tenancy: max-tenants=%u wafer=%ux%u "
                  "quota-gbps=%.3f\n",
                  static_cast<unsigned>(server.options().tenancy.max_tenants),
                  static_cast<unsigned>(server.options().tenancy.wafer_rows),
                  static_cast<unsigned>(server.options().tenancy.wafer_cols),
                  server.options().tenancy.default_quota_gbps);
    }
    std::fflush(stdout);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    while (g_signal.load() == 0) pause();  // returns on a delivered signal

    if (g_signal.load() == SIGTERM) {
      // Graceful drain: refuse new work, finish what is in flight (up
      // to --drain-ms), then stop. SIGINT skips straight to stop().
      std::printf("ceresz_server: draining (up to %u ms)\n",
                  static_cast<unsigned>(drain_ms));
      std::fflush(stdout);
      if (endpoint) endpoint->set_draining(true);
      server.drain();
      if (!server.wait_idle(drain_ms)) {
        std::fprintf(stderr,
                     "ceresz_server: drain timed out with %llu requests "
                     "still in flight\n",
                     static_cast<unsigned long long>(server.inflight()));
      }
    }
    std::printf("ceresz_server: shutting down\n");
    std::fflush(stdout);
    server.stop();
    if (endpoint) endpoint->stop();

    if (tracer != nullptr && !trace_out.empty()) {
      obs::export_trace_metrics(*tracer, server.metrics());
      std::ofstream out(trace_out, std::ios::binary);
      if (!out.good()) {
        std::fprintf(stderr, "ceresz_server: cannot write %s\n",
                     trace_out.c_str());
        return 1;
      }
      tracer->write_chrome_trace(out);
    }

    if (!metrics_out.empty()) {
      const obs::MetricsSnapshot snap = server.metrics().snapshot();
      std::ofstream out(metrics_out, std::ios::binary);
      if (!out.good()) {
        std::fprintf(stderr, "ceresz_server: cannot write %s\n",
                     metrics_out.c_str());
        return 1;
      }
      out << (obs::is_prometheus_path(metrics_out) ? obs::to_prometheus(snap)
                                                   : obs::to_json(snap));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ceresz_server: %s\n", e.what());
    return 1;
  }
}
