// ceresz — command-line front end for the CereSZ library.
//
//   ceresz compress   <in.f32> <out.csz> [--rel 1e-3 | --abs 0.01]
//   ceresz decompress <in.csz> <out.f32>
//   ceresz info       <in.csz>
//   ceresz simulate   <in.f32> [--rows R --cols C --pl N] [--rel 1e-3]
//
// compress/decompress operate on raw little-endian f32 files (the
// SDRBench convention); simulate additionally runs the data through the
// simulated wafer and reports cycle-accurate throughput.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "ceresz.h"

namespace {

using namespace ceresz;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ceresz compress   <in.f32> <out.csz> [--rel B | --abs B]"
               " [--threads N] [--chunk-elems N]\n"
               "  ceresz decompress <in.csz> <out.f32> [--threads N]"
               " [--lenient]\n"
               "  ceresz info       <in.csz>\n"
               "  ceresz simulate   <in.f32> [--rows R --cols C --pl N]"
               " [--rel B]\n"
               "  ceresz archive    <out.csza> <in1.f32> [in2.f32 ...]"
               " [--rel B]\n"
               "  ceresz list       <in.csza>\n"
               "  ceresz extract    <in.csza> <field-name> <out.f32>\n"
               "\n"
               "  --threads N      worker threads (N > 1 uses the parallel\n"
               "                   engine's chunked container; 1 = legacy\n"
               "                   single-stream format)\n"
               "  --chunk-elems N  elements per chunk (multiple of 32)\n"
               "  --lenient        zero-fill corrupt chunks on decompress\n"
               "                   instead of aborting; exits 3 (instead of\n"
               "                   0) when any chunk had to be zero-filled\n");
  return 2;
}

struct Args {
  std::vector<std::string> positional;
  core::ErrorBound bound = core::ErrorBound::relative(1e-3);
  u32 rows = 16, cols = 32, pl = 1;
  u32 threads = 1;
  u64 chunk_elems = engine::EngineOptions{}.chunk_elems;
  bool lenient = false;
};

engine::EngineOptions engine_options(const Args& args) {
  engine::EngineOptions opt;
  opt.threads = args.threads;
  opt.chunk_elems = args.chunk_elems;
  opt.lenient = args.lenient;
  return opt;
}

void print_engine_stats(const engine::EngineStats& stats) {
  std::printf("engine: %u thread(s), %llu chunk(s), %.3fs wall, "
              "%.2f GB/s, %.0f%% worker utilization, queue high-water %llu\n",
              stats.threads, static_cast<unsigned long long>(stats.chunks),
              stats.wall_seconds, stats.throughput_gbps(),
              100.0 * stats.worker_utilization(),
              static_cast<unsigned long long>(stats.queue_high_water));
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next_value = [&](f64& out) {
      if (i + 1 >= argc) return false;
      out = std::atof(argv[++i]);
      return out > 0.0;
    };
    f64 v = 0.0;
    if (a == "--rel") {
      if (!next_value(v)) return false;
      args.bound = core::ErrorBound::relative(v);
    } else if (a == "--abs") {
      if (!next_value(v)) return false;
      args.bound = core::ErrorBound::absolute(v);
    } else if (a == "--rows") {
      if (!next_value(v)) return false;
      args.rows = static_cast<u32>(v);
    } else if (a == "--cols") {
      if (!next_value(v)) return false;
      args.cols = static_cast<u32>(v);
    } else if (a == "--pl") {
      if (!next_value(v)) return false;
      args.pl = static_cast<u32>(v);
    } else if (a == "--threads") {
      if (!next_value(v)) return false;
      args.threads = static_cast<u32>(v);
    } else if (a == "--chunk-elems") {
      if (!next_value(v)) return false;
      args.chunk_elems = static_cast<u64>(v);
    } else if (a == "--lenient") {
      args.lenient = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    } else {
      args.positional.push_back(a);
    }
  }
  return true;
}

std::vector<f32> load_f32(const std::string& path) {
  const auto bytes = io::read_bytes(path);
  CERESZ_CHECK(bytes.size() % sizeof(f32) == 0,
               "input file size is not a multiple of 4 bytes");
  std::vector<f32> values(bytes.size() / sizeof(f32));
  std::memcpy(values.data(), bytes.data(), bytes.size());
  return values;
}

int cmd_compress(const Args& args) {
  if (args.positional.size() != 2) return usage();
  const auto values = load_f32(args.positional[0]);
  if (args.threads > 1) {
    const engine::ParallelEngine eng(engine_options(args));
    const auto result = eng.compress(values, args.bound);
    io::write_bytes(args.positional[1], result.stream);
    std::printf("%zu values -> %s (ratio %.2fx, eps %g, %.1f%% zero "
                "blocks)\n",
                values.size(), fmt_bytes(result.stream.size()).c_str(),
                result.compression_ratio(), result.eps_abs,
                100.0 * result.stats.stream.zero_fraction());
    print_engine_stats(result.stats);
    return 0;
  }
  const core::StreamCodec codec;
  const auto result = codec.compress(values, args.bound);
  io::write_bytes(args.positional[1], result.stream);
  std::printf("%zu values -> %s (ratio %.2fx, eps %g, %.1f%% zero blocks)\n",
              values.size(), fmt_bytes(result.stream.size()).c_str(),
              result.compression_ratio(), result.eps_abs,
              100.0 * result.stats.zero_fraction());
  return 0;
}

int cmd_decompress(const Args& args) {
  if (args.positional.size() != 2) return usage();
  const auto stream = io::read_bytes(args.positional[0]);
  std::vector<f32> values;
  std::vector<u64> corrupt_chunks;
  if (engine::ParallelEngine::is_chunked_stream(stream)) {
    const engine::ParallelEngine eng(engine_options(args));
    auto result = eng.decompress(stream);
    print_engine_stats(result.stats);
    values = std::move(result.values);
    corrupt_chunks = std::move(result.corrupt_chunks);
  } else {
    const core::StreamCodec codec;
    values = codec.decompress(stream);
  }
  std::vector<u8> bytes(values.size() * sizeof(f32));
  std::memcpy(bytes.data(), values.data(), bytes.size());
  io::write_bytes(args.positional[1], bytes);
  std::printf("%s -> %zu values\n", fmt_bytes(stream.size()).c_str(),
              values.size());
  if (!corrupt_chunks.empty()) {
    // Partial recovery: the output was written, but some ranges are
    // zero-filled. Exit 3 so scripts can tell "recovered with losses"
    // (3) apart from "failed outright" (1) and "bad usage" (2).
    std::string list;
    for (u64 c : corrupt_chunks) {
      if (!list.empty()) list += ", ";
      list += std::to_string(c);
    }
    std::fprintf(stderr,
                 "decompress: %zu corrupt chunk(s) zero-filled: %s\n",
                 corrupt_chunks.size(), list.c_str());
    return 3;
  }
  return 0;
}

int cmd_info(const Args& args) {
  if (args.positional.size() != 1) return usage();
  const auto stream = io::read_bytes(args.positional[0]);
  if (engine::ParallelEngine::is_chunked_stream(stream)) {
    // Validating the header + table is enough to describe the container;
    // payload CRCs are the reader's per-chunk job.
    const auto parsed = io::parse_container(stream);
    const f64 ratio =
        static_cast<f64>(parsed.header.element_count * sizeof(f32)) /
        static_cast<f64>(stream.size());
    std::printf("valid CereSZ chunked stream: %llu values in %u chunk(s) "
                "of %llu, %s compressed, ratio %.2fx\n",
                static_cast<unsigned long long>(parsed.header.element_count),
                parsed.header.chunk_count,
                static_cast<unsigned long long>(parsed.header.chunk_elems),
                fmt_bytes(stream.size()).c_str(), ratio);
    return 0;
  }
  const core::StreamCodec codec;
  // Decompressing validates the whole stream; report what we learn.
  const auto values = codec.decompress(stream);
  const f64 ratio = static_cast<f64>(values.size() * sizeof(f32)) /
                    static_cast<f64>(stream.size());
  std::printf("valid CereSZ stream: %zu values, %s compressed, ratio %.2fx\n",
              values.size(), fmt_bytes(stream.size()).c_str(), ratio);
  return 0;
}

int cmd_simulate(const Args& args) {
  if (args.positional.size() != 1) return usage();
  const auto values = load_f32(args.positional[0]);
  mapping::MapperOptions opt;
  opt.rows = args.rows;
  opt.cols = args.cols;
  opt.pipeline_length = args.pl;
  opt.max_exact_rows = 1;
  opt.collect_output = false;
  const mapping::WaferMapper mapper(opt);
  const auto run = mapper.compress(values, args.bound);
  std::printf("mesh %ux%u, PL %u: makespan %llu cycles (%.3f ms), "
              "throughput %.3f GB/s%s\n",
              args.rows, args.cols, args.pl,
              static_cast<unsigned long long>(run.makespan),
              run.seconds * 1e3, run.throughput_gbps,
              run.extrapolated ? " (row-extrapolated)" : "");
  std::printf("plan: %u stage group(s), bottleneck %llu cycles, "
              "estimated fl %u\n",
              run.plan.length(),
              static_cast<unsigned long long>(run.plan.bottleneck_cycles()),
              run.profile.est_fixed_length);
  return 0;
}

int cmd_archive(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const core::StreamCodec codec;
  std::vector<data::Field> fields;
  for (std::size_t i = 1; i < args.positional.size(); ++i) {
    data::Field f;
    f.dataset = "cli";
    f.name = std::filesystem::path(args.positional[i]).filename().string();
    f.values = load_f32(args.positional[i]);
    f.dims = {f.values.size()};
    fields.push_back(std::move(f));
  }
  const io::Archive archive =
      io::Archive::compress_fields(fields, args.bound, codec);
  archive.save(args.positional[0]);
  std::printf("%zu field(s) -> %s (total ratio %.2fx)\n", fields.size(),
              args.positional[0].c_str(), archive.total_ratio());
  return 0;
}

int cmd_list(const Args& args) {
  if (args.positional.size() != 1) return usage();
  const io::Archive archive = io::Archive::load(args.positional[0]);
  std::printf("%zu field(s), total ratio %.2fx\n", archive.size(),
              archive.total_ratio());
  for (const auto& entry : archive.entries()) {
    std::printf("  %-24s dims", entry.name.c_str());
    for (std::size_t d : entry.dims) std::printf(" %zu", d);
    std::printf("  %s  ratio %.2fx\n",
                fmt_bytes(entry.stream.size()).c_str(),
                entry.compression_ratio());
  }
  return 0;
}

int cmd_extract(const Args& args) {
  if (args.positional.size() != 3) return usage();
  const io::Archive archive = io::Archive::load(args.positional[0]);
  const auto idx = archive.find(args.positional[1]);
  if (!idx) {
    std::fprintf(stderr, "no field named '%s' in the archive\n",
                 args.positional[1].c_str());
    return 1;
  }
  const core::StreamCodec codec;
  const data::Field field = archive.decompress_field(*idx, codec);
  io::write_raw_f32(args.positional[2], field);
  std::printf("extracted %s: %zu values -> %s\n", field.name.c_str(),
              field.size(), args.positional[2].c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args args;
  if (!parse_args(argc, argv, args)) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "compress") return cmd_compress(args);
    if (cmd == "decompress") return cmd_decompress(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "archive") return cmd_archive(args);
    if (cmd == "list") return cmd_list(args);
    if (cmd == "extract") return cmd_extract(args);
  } catch (const ceresz::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
