// ceresz — command-line front end for the CereSZ library.
//
//   ceresz compress   <in.f32> <out.csz> [--rel 1e-3 | --abs 0.01]
//   ceresz decompress <in.csz> <out.f32>
//   ceresz info       <in.csz>
//   ceresz simulate   <in.f32> [--rows R --cols C --pl N] [--rel 1e-3]
//
// compress/decompress operate on raw little-endian f32 files (the
// SDRBench convention); simulate additionally runs the data through the
// simulated wafer and reports cycle-accurate throughput.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "ceresz.h"

namespace {

using namespace ceresz;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ceresz compress   <in.f32> <out.csz> [--rel B | --abs B]"
               " [--threads N] [--chunk-elems N]\n"
               "  ceresz decompress <in.csz> <out.f32> [--threads N]"
               " [--lenient]\n"
               "  ceresz info       <in.csz>\n"
               "  ceresz simulate   <in.f32> [--rows R --cols C --pl N]"
               " [--rel B]\n"
               "  ceresz archive    <out.csza> <in1.f32> [in2.f32 ...]"
               " [--rel B]\n"
               "  ceresz list       <in.csza>\n"
               "  ceresz extract    <in.csza> <field-name> <out.f32>\n"
               "\n"
               "  --threads N      worker threads (N > 1 uses the parallel\n"
               "                   engine's chunked container; 1 = legacy\n"
               "                   single-stream format)\n"
               "  --chunk-elems N  elements per chunk (multiple of 32)\n"
               "  --lenient        zero-fill corrupt chunks on decompress\n"
               "                   instead of aborting; exits 3 (instead of\n"
               "                   0) when any chunk had to be zero-filled\n"
               "  --trace-out F    write a Chrome trace-event JSON timeline\n"
               "                   (open in Perfetto / chrome://tracing)\n"
               "  --metrics-out F  write the run's metrics: Prometheus text\n"
               "                   if F ends in .prom, JSON otherwise\n"
               "  --stats-json F   write engine run stats as JSON (parallel\n"
               "                   engine paths, i.e. --threads > 1)\n"
               "\n"
               "exit codes: 0 success, 1 runtime error (bad stream, I/O),\n"
               "2 usage error, 3 lenient decompress recovered with losses\n");
  return 2;
}

struct Args {
  std::vector<std::string> positional;
  core::ErrorBound bound = core::ErrorBound::relative(1e-3);
  u32 rows = 16, cols = 32, pl = 1;
  u32 threads = 1;
  u64 chunk_elems = engine::EngineOptions{}.chunk_elems;
  bool lenient = false;
  std::string trace_out;
  std::string metrics_out;
  std::string stats_json;
};

/// Per-invocation observability: the tracer exists only when --trace-out
/// was given, the registry is exported only when --metrics-out was given
/// (pre-declared with every layer's families so the export always
/// advertises the full set), and both are flushed once after the command
/// finishes.
struct Observability {
  std::optional<obs::Tracer> tracer;
  obs::MetricsRegistry registry;
  bool export_metrics = false;

  explicit Observability(const Args& args) {
    if (!args.trace_out.empty()) tracer.emplace();
    export_metrics = !args.metrics_out.empty();
    if (export_metrics) {
      engine::declare_engine_metrics(registry);
      wse::declare_fabric_metrics(registry);
      mapping::declare_mapper_metrics(registry);
      obs::declare_trace_metrics(registry);
    }
  }

  obs::Tracer* tracer_ptr() { return tracer ? &*tracer : nullptr; }
  obs::MetricsRegistry* metrics_ptr() {
    return export_metrics ? &registry : nullptr;
  }

  void flush(const Args& args) {
    if (tracer) {
      std::ofstream os(args.trace_out, std::ios::binary);
      CERESZ_CHECK(os.good(), "cannot open trace output file");
      tracer->write_chrome_trace(os);
      CERESZ_CHECK(os.good(), "failed writing trace output file");
    }
    if (export_metrics) {
      if (tracer) obs::export_trace_metrics(*tracer, registry);
      const auto snap = registry.snapshot();
      const std::string text = obs::is_prometheus_path(args.metrics_out)
                                   ? obs::to_prometheus(snap)
                                   : obs::to_json(snap);
      std::ofstream os(args.metrics_out, std::ios::binary);
      CERESZ_CHECK(os.good(), "cannot open metrics output file");
      os << text;
      CERESZ_CHECK(os.good(), "failed writing metrics output file");
    }
  }
};

void write_stats_json(const std::string& path,
                      const engine::EngineStats& s) {
  std::ofstream os(path, std::ios::binary);
  CERESZ_CHECK(os.good(), "cannot open stats output file");
  char buf[256];
  os << "{\n";
  std::snprintf(buf, sizeof(buf),
                "  \"threads\": %u,\n  \"chunks\": %llu,\n",
                s.threads, static_cast<unsigned long long>(s.chunks));
  os << buf;
  std::snprintf(
      buf, sizeof(buf),
      "  \"uncompressed_bytes\": %llu,\n  \"compressed_bytes\": %llu,\n",
      static_cast<unsigned long long>(s.uncompressed_bytes),
      static_cast<unsigned long long>(s.compressed_bytes));
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"compression_ratio\": %.6f,\n  \"wall_seconds\": %.9f,\n",
                s.compression_ratio(), s.wall_seconds);
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"throughput_gbps\": %.6f,\n"
                "  \"worker_utilization\": %.6f,\n",
                s.throughput_gbps(), s.worker_utilization());
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"queue_high_water\": %llu,\n  \"retries\": %llu,\n",
                static_cast<unsigned long long>(s.queue_high_water),
                static_cast<unsigned long long>(s.retries));
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"timeouts\": %llu,\n  \"worker_crashes\": %llu,\n",
                static_cast<unsigned long long>(s.timeouts),
                static_cast<unsigned long long>(s.worker_crashes));
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"fallback_chunks\": %llu,\n  \"quarantined\": %llu,\n",
                static_cast<unsigned long long>(s.fallback_chunks),
                static_cast<unsigned long long>(s.quarantined));
  os << buf;
  os << "  \"worker_busy_seconds\": [";
  for (std::size_t i = 0; i < s.worker_busy_seconds.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%.9f", i ? ", " : "",
                  s.worker_busy_seconds[i]);
    os << buf;
  }
  os << "]\n}\n";
  CERESZ_CHECK(os.good(), "failed writing stats output file");
}

engine::EngineOptions engine_options(const Args& args, Observability& o) {
  engine::EngineOptions opt;
  opt.threads = args.threads;
  opt.chunk_elems = args.chunk_elems;
  opt.lenient = args.lenient;
  opt.tracer = o.tracer_ptr();
  opt.metrics = o.metrics_ptr();
  return opt;
}

void print_engine_stats(const engine::EngineStats& stats) {
  std::printf("engine: %u thread(s), %llu chunk(s), %.3fs wall, "
              "%.2f GB/s, %.0f%% worker utilization, queue high-water %llu\n",
              stats.threads, static_cast<unsigned long long>(stats.chunks),
              stats.wall_seconds, stats.throughput_gbps(),
              100.0 * stats.worker_utilization(),
              static_cast<unsigned long long>(stats.queue_high_water));
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next_value = [&](f64& out) {
      if (i + 1 >= argc) return false;
      out = std::atof(argv[++i]);
      return out > 0.0;
    };
    auto next_string = [&](std::string& out) {
      if (i + 1 >= argc) return false;
      out = argv[++i];
      return !out.empty();
    };
    f64 v = 0.0;
    if (a == "--rel") {
      if (!next_value(v)) return false;
      args.bound = core::ErrorBound::relative(v);
    } else if (a == "--abs") {
      if (!next_value(v)) return false;
      args.bound = core::ErrorBound::absolute(v);
    } else if (a == "--rows") {
      if (!next_value(v)) return false;
      args.rows = static_cast<u32>(v);
    } else if (a == "--cols") {
      if (!next_value(v)) return false;
      args.cols = static_cast<u32>(v);
    } else if (a == "--pl") {
      if (!next_value(v)) return false;
      args.pl = static_cast<u32>(v);
    } else if (a == "--threads") {
      if (!next_value(v)) return false;
      args.threads = static_cast<u32>(v);
    } else if (a == "--chunk-elems") {
      if (!next_value(v)) return false;
      args.chunk_elems = static_cast<u64>(v);
    } else if (a == "--lenient") {
      args.lenient = true;
    } else if (a == "--trace-out") {
      if (!next_string(args.trace_out)) return false;
    } else if (a == "--metrics-out") {
      if (!next_string(args.metrics_out)) return false;
    } else if (a == "--stats-json") {
      if (!next_string(args.stats_json)) return false;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    } else {
      args.positional.push_back(a);
    }
  }
  return true;
}

std::vector<f32> load_f32(const std::string& path) {
  const auto bytes = io::read_bytes(path);
  CERESZ_CHECK(bytes.size() % sizeof(f32) == 0,
               "input file size is not a multiple of 4 bytes");
  std::vector<f32> values(bytes.size() / sizeof(f32));
  std::memcpy(values.data(), bytes.data(), bytes.size());
  return values;
}

int cmd_compress(const Args& args, Observability& o) {
  if (args.positional.size() != 2) return usage();
  const auto values = load_f32(args.positional[0]);
  if (args.threads > 1) {
    const engine::ParallelEngine eng(engine_options(args, o));
    const auto result = eng.compress(values, args.bound);
    io::write_bytes(args.positional[1], result.stream);
    std::printf("%zu values -> %s (ratio %.2fx, eps %g, %.1f%% zero "
                "blocks)\n",
                values.size(), fmt_bytes(result.stream.size()).c_str(),
                result.compression_ratio(), result.eps_abs,
                100.0 * result.stats.stream.zero_fraction());
    print_engine_stats(result.stats);
    if (!args.stats_json.empty()) write_stats_json(args.stats_json, result.stats);
    return 0;
  }
  if (!args.stats_json.empty()) {
    std::fprintf(stderr,
                 "note: --stats-json reports parallel-engine stats; "
                 "run with --threads > 1\n");
  }
  const core::StreamCodec codec;
  const auto result = codec.compress(values, args.bound);
  io::write_bytes(args.positional[1], result.stream);
  std::printf("%zu values -> %s (ratio %.2fx, eps %g, %.1f%% zero blocks)\n",
              values.size(), fmt_bytes(result.stream.size()).c_str(),
              result.compression_ratio(), result.eps_abs,
              100.0 * result.stats.zero_fraction());
  return 0;
}

int cmd_decompress(const Args& args, Observability& o) {
  if (args.positional.size() != 2) return usage();
  const auto stream = io::read_bytes(args.positional[0]);
  std::vector<f32> values;
  std::vector<u64> corrupt_chunks;
  if (engine::ParallelEngine::is_chunked_stream(stream)) {
    const engine::ParallelEngine eng(engine_options(args, o));
    auto result = eng.decompress(stream);
    print_engine_stats(result.stats);
    if (!args.stats_json.empty()) write_stats_json(args.stats_json, result.stats);
    values = std::move(result.values);
    corrupt_chunks = std::move(result.corrupt_chunks);
  } else {
    const core::StreamCodec codec;
    values = codec.decompress(stream);
  }
  std::vector<u8> bytes(values.size() * sizeof(f32));
  std::memcpy(bytes.data(), values.data(), bytes.size());
  io::write_bytes(args.positional[1], bytes);
  std::printf("%s -> %zu values\n", fmt_bytes(stream.size()).c_str(),
              values.size());
  if (!corrupt_chunks.empty()) {
    // Partial recovery: the output was written, but some ranges are
    // zero-filled. Exit 3 so scripts can tell "recovered with losses"
    // (3) apart from "failed outright" (1) and "bad usage" (2).
    std::string list;
    for (u64 c : corrupt_chunks) {
      if (!list.empty()) list += ", ";
      list += std::to_string(c);
    }
    std::fprintf(stderr,
                 "decompress: %zu corrupt chunk(s) zero-filled: %s\n",
                 corrupt_chunks.size(), list.c_str());
    return 3;
  }
  return 0;
}

int cmd_info(const Args& args) {
  if (args.positional.size() != 1) return usage();
  const auto stream = io::read_bytes(args.positional[0]);
  if (engine::ParallelEngine::is_chunked_stream(stream)) {
    // Validating the header + table is enough to describe the container;
    // payload CRCs are the reader's per-chunk job.
    const auto parsed = io::parse_container(stream);
    const f64 ratio =
        static_cast<f64>(parsed.header.element_count * sizeof(f32)) /
        static_cast<f64>(stream.size());
    std::printf("valid CereSZ chunked stream: %llu values in %u chunk(s) "
                "of %llu, %s compressed, ratio %.2fx\n",
                static_cast<unsigned long long>(parsed.header.element_count),
                parsed.header.chunk_count,
                static_cast<unsigned long long>(parsed.header.chunk_elems),
                fmt_bytes(stream.size()).c_str(), ratio);
    return 0;
  }
  const core::StreamCodec codec;
  // Decompressing validates the whole stream; report what we learn.
  const auto values = codec.decompress(stream);
  const f64 ratio = static_cast<f64>(values.size() * sizeof(f32)) /
                    static_cast<f64>(stream.size());
  std::printf("valid CereSZ stream: %zu values, %s compressed, ratio %.2fx\n",
              values.size(), fmt_bytes(stream.size()).c_str(), ratio);
  return 0;
}

int cmd_simulate(const Args& args, Observability& o) {
  if (args.positional.size() != 1) return usage();
  const auto values = load_f32(args.positional[0]);
  mapping::MapperOptions opt;
  opt.rows = args.rows;
  opt.cols = args.cols;
  opt.pipeline_length = args.pl;
  opt.max_exact_rows = 1;
  opt.collect_output = false;
  opt.tracer = o.tracer_ptr();
  opt.metrics = o.metrics_ptr();
  const mapping::WaferMapper mapper(opt);
  const auto run = mapper.compress(values, args.bound);
  std::printf("mesh %ux%u, PL %u: makespan %llu cycles (%.3f ms), "
              "throughput %.3f GB/s%s\n",
              args.rows, args.cols, args.pl,
              static_cast<unsigned long long>(run.makespan),
              run.seconds * 1e3, run.throughput_gbps,
              run.extrapolated ? " (row-extrapolated)" : "");
  std::printf("plan: %u stage group(s), bottleneck %llu cycles, "
              "estimated fl %u\n",
              run.plan.length(),
              static_cast<unsigned long long>(run.plan.bottleneck_cycles()),
              run.profile.est_fixed_length);
  return 0;
}

int cmd_archive(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const core::StreamCodec codec;
  std::vector<data::Field> fields;
  for (std::size_t i = 1; i < args.positional.size(); ++i) {
    data::Field f;
    f.dataset = "cli";
    f.name = std::filesystem::path(args.positional[i]).filename().string();
    f.values = load_f32(args.positional[i]);
    f.dims = {f.values.size()};
    fields.push_back(std::move(f));
  }
  const io::Archive archive =
      io::Archive::compress_fields(fields, args.bound, codec);
  archive.save(args.positional[0]);
  std::printf("%zu field(s) -> %s (total ratio %.2fx)\n", fields.size(),
              args.positional[0].c_str(), archive.total_ratio());
  return 0;
}

int cmd_list(const Args& args) {
  if (args.positional.size() != 1) return usage();
  const io::Archive archive = io::Archive::load(args.positional[0]);
  std::printf("%zu field(s), total ratio %.2fx\n", archive.size(),
              archive.total_ratio());
  for (const auto& entry : archive.entries()) {
    std::printf("  %-24s dims", entry.name.c_str());
    for (std::size_t d : entry.dims) std::printf(" %zu", d);
    std::printf("  %s  ratio %.2fx\n",
                fmt_bytes(entry.stream.size()).c_str(),
                entry.compression_ratio());
  }
  return 0;
}

int cmd_extract(const Args& args) {
  if (args.positional.size() != 3) return usage();
  const io::Archive archive = io::Archive::load(args.positional[0]);
  const auto idx = archive.find(args.positional[1]);
  if (!idx) {
    std::fprintf(stderr, "no field named '%s' in the archive\n",
                 args.positional[1].c_str());
    return 1;
  }
  const core::StreamCodec codec;
  const data::Field field = archive.decompress_field(*idx, codec);
  io::write_raw_f32(args.positional[2], field);
  std::printf("extracted %s: %zu values -> %s\n", field.name.c_str(),
              field.size(), args.positional[2].c_str());
  return 0;
}

}  // namespace

int run_command(const std::string& cmd, const Args& args, Observability& o) {
  if (cmd == "compress") return cmd_compress(args, o);
  if (cmd == "decompress") return cmd_decompress(args, o);
  if (cmd == "info") return cmd_info(args);
  if (cmd == "simulate") return cmd_simulate(args, o);
  if (cmd == "archive") return cmd_archive(args);
  if (cmd == "list") return cmd_list(args);
  if (cmd == "extract") return cmd_extract(args);
  return usage();
}

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args args;
  if (!parse_args(argc, argv, args)) return usage();
  const std::string cmd = argv[1];
  try {
    Observability o(args);
    const int rc = run_command(cmd, args, o);
    // Flush even on the partial-recovery exit (3): a degraded run is
    // exactly when the trace and fault counters matter most.
    if (rc == 0 || rc == 3) o.flush(args);
    return rc;
  } catch (const ceresz::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
