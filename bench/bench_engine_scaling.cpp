// Host-engine thread scaling: measured (not simulated) compression and
// decompression throughput of the ParallelEngine at 1/2/4/8 worker
// threads on a synthetic SDRBench-style field, verifying byte-identical
// output across thread counts.
//
// The default field is 64M elements (256 MB) scaled by CERESZ_BENCH_SCALE
// (e.g. CERESZ_BENCH_SCALE=0.25 for a 16M-element quick run). Alongside
// the table, each row is emitted as one JSON object so scripted runs can
// scrape the numbers, mirroring the text-report style of bench_fig11/12.
//
// With --trace-out F and/or --metrics-out F, a final instrumented
// 8-thread compress+decompress pass runs with the observability hooks
// enabled and exports a Chrome trace / metrics file (Prometheus text for
// .prom, JSON otherwise), plus the fraction of measured worker busy time
// covered by trace task spans.
#include <cmath>
#include <fstream>
#include <thread>

#include "bench_util.h"

using namespace ceresz;

namespace {

constexpr u64 kBaseElems = u64{64} * 1024 * 1024;

/// Tile a generated field up to exactly `target` elements.
std::vector<f32> tile_to(const std::vector<f32>& src, u64 target) {
  std::vector<f32> out;
  out.reserve(target);
  while (out.size() < target) {
    const u64 take = std::min<u64>(src.size(), target - out.size());
    out.insert(out.end(), src.begin(), src.begin() + take);
  }
  return out;
}

/// Run one observability-enabled compress+decompress pass and export the
/// trace/metrics files. Returns false when a written file went bad or the
/// trace's task spans cover less than 95% of the measured busy time.
bool instrumented_run(std::span<const f32> values, core::ErrorBound bound,
                      const std::string& trace_out,
                      const std::string& metrics_out) {
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  engine::declare_engine_metrics(registry);

  engine::EngineOptions opt;
  opt.threads = 8;
  opt.tracer = &tracer;
  opt.metrics = &registry;
  const engine::ParallelEngine eng(opt);

  f64 busy_total = 0.0;
  const f64 wall = bench::time_seconds([&] {
    const auto result = eng.compress(values, bound);
    const auto back = eng.decompress(result.stream);
    busy_total = result.stats.busy_seconds_total() +
                 back.stats.busy_seconds_total();
  });

  // Span coverage: the pool's per-task spans bracket the same region its
  // busy_seconds accounting does, so their total duration should account
  // for (essentially all of) the measured busy time.
  u64 task_span_ns = 0;
  for (const auto& ev : tracer.snapshot_events()) {
    if (ev.phase == 'X' && std::string_view(ev.cat) == "pool" &&
        std::string_view(ev.name) == "task") {
      task_span_ns += ev.dur_ns;
    }
  }
  const f64 coverage =
      busy_total > 0.0 ? static_cast<f64>(task_span_ns) * 1e-9 / busy_total
                       : 1.0;

  bool ok = true;
  if (!trace_out.empty()) {
    std::ofstream os(trace_out, std::ios::binary);
    tracer.write_chrome_trace(os);
    ok = ok && os.good();
  }
  if (!metrics_out.empty()) {
    obs::export_trace_metrics(tracer, registry);
    const auto snap = registry.snapshot();
    std::ofstream os(metrics_out, std::ios::binary);
    os << (obs::is_prometheus_path(metrics_out) ? obs::to_prometheus(snap)
                                                : obs::to_json(snap));
    ok = ok && os.good();
  }
  std::printf("{\"bench\":\"engine_scaling\",\"instrumented\":true,"
              "\"wall_seconds\":%.4f,\"busy_seconds\":%.4f,"
              "\"task_span_coverage\":%.4f,\"events_recorded\":%llu,"
              "\"events_dropped\":%llu}\n",
              wall, busy_total, coverage,
              static_cast<unsigned long long>(tracer.events_recorded()),
              static_cast<unsigned long long>(tracer.events_dropped()));
  if (coverage < 0.95) {
    std::printf("instrumented run: task spans cover only %.1f%% of busy "
                "time — BUG\n", 100.0 * coverage);
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out, metrics_out, history_out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (a == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (a == "--history" && i + 1 < argc) {
      history_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_engine_scaling [--trace-out FILE] "
                   "[--metrics-out FILE] [--history FILE]\n");
      return 2;
    }
  }
  bench::HistoryWriter history(history_out);
  const u64 elems = static_cast<u64>(
      static_cast<f64>(kBaseElems) * bench::bench_scale(1.0));
  const auto base = data::generate_field(data::DatasetId::kNyx, 0, 42, 0.5);
  const auto values = tile_to(base.values, elems);
  const core::ErrorBound bound = core::ErrorBound::relative(1e-3);

  std::printf("=== engine scaling: %llu elements (%s), REL 1e-3, "
              "chunk %llu elems ===\n",
              static_cast<unsigned long long>(elems),
              fmt_bytes(elems * sizeof(f32)).c_str(),
              static_cast<unsigned long long>(
                  engine::EngineOptions{}.chunk_elems));

  TextTable table({"Threads", "Comp GB/s", "Comp speedup", "Decomp GB/s",
                   "Decomp speedup", "Util %", "Queue HW", "Ratio"});

  f64 comp_base = 0.0, decomp_base = 0.0;
  std::vector<u8> reference_stream;
  std::vector<f32> reference_values;
  bool identical = true;

  for (u32 threads : {1u, 2u, 4u, 8u}) {
    engine::EngineOptions opt;
    opt.threads = threads;
    const engine::ParallelEngine eng(opt);

    const auto result = eng.compress(values, bound);
    const auto back = eng.decompress(result.stream);

    if (reference_stream.empty()) {
      reference_stream = result.stream;
      reference_values = back.values;
    } else {
      identical = identical && result.stream == reference_stream &&
                  back.values == reference_values;
    }

    const f64 comp_gbps = result.stats.throughput_gbps();
    const f64 decomp_gbps = back.stats.throughput_gbps();
    if (threads == 1) {
      comp_base = comp_gbps;
      decomp_base = decomp_gbps;
    }
    table.add_row({std::to_string(threads), fmt_f64(comp_gbps, 3),
                   fmt_f64(comp_gbps / comp_base, 2) + "x",
                   fmt_f64(decomp_gbps, 3),
                   fmt_f64(decomp_gbps / decomp_base, 2) + "x",
                   fmt_f64(100.0 * result.stats.worker_utilization(), 0),
                   std::to_string(result.stats.queue_high_water),
                   fmt_f64(result.compression_ratio(), 2)});
    if (threads == 8) {
      // Wall-clock metrics on shared runners are noisy; give the perf
      // gate a generous band. The ratio is deterministic.
      const std::string b = "engine_scaling";
      history.add(b, "compress_gbps_t8", comp_gbps, "GB/s", "higher", 0.40);
      history.add(b, "decompress_gbps_t8", decomp_gbps, "GB/s", "higher",
                  0.40);
      history.add(b, "compression_ratio", result.compression_ratio(), "x",
                  "higher", 0.001);
    }
    std::printf("{\"bench\":\"engine_scaling\",\"threads\":%u,"
                "\"elements\":%llu,\"compress_gbps\":%.4f,"
                "\"decompress_gbps\":%.4f,\"compress_speedup\":%.3f,"
                "\"decompress_speedup\":%.3f,\"ratio\":%.3f,"
                "\"utilization\":%.3f,\"queue_high_water\":%llu}\n",
                threads, static_cast<unsigned long long>(elems), comp_gbps,
                decomp_gbps, comp_gbps / comp_base, decomp_gbps / decomp_base,
                result.compression_ratio(),
                result.stats.worker_utilization(),
                static_cast<unsigned long long>(
                    result.stats.queue_high_water));
  }

  // Degraded-mode row: one injected transient worker fault every 16
  // chunks. Every fault is retried, so the output must still be
  // byte-identical to the clean runs; the row quantifies the throughput
  // cost of riding through faults (retry work + backoff).
  {
    engine::EngineOptions opt;
    opt.threads = 8;
    const u64 n_chunks = (elems + opt.chunk_elems - 1) / opt.chunk_elems;
    opt.faults = engine::WorkerFaultPlan::every_nth(16, n_chunks);
    const engine::ParallelEngine eng(opt);

    const auto result = eng.compress(values, bound);
    identical = identical && result.stream == reference_stream;

    const f64 comp_gbps = result.stats.throughput_gbps();
    table.add_row({"8 (degraded)", fmt_f64(comp_gbps, 3),
                   fmt_f64(comp_gbps / comp_base, 2) + "x", "-", "-",
                   fmt_f64(100.0 * result.stats.worker_utilization(), 0),
                   std::to_string(result.stats.queue_high_water),
                   fmt_f64(result.compression_ratio(), 2)});
    std::printf("{\"bench\":\"engine_scaling\",\"threads\":8,"
                "\"degraded\":true,\"fault_every_n_chunks\":16,"
                "\"elements\":%llu,\"compress_gbps\":%.4f,"
                "\"compress_speedup\":%.3f,\"retries\":%llu,"
                "\"ratio\":%.3f,\"utilization\":%.3f,"
                "\"queue_high_water\":%llu}\n",
                static_cast<unsigned long long>(elems), comp_gbps,
                comp_gbps / comp_base,
                static_cast<unsigned long long>(result.stats.retries),
                result.compression_ratio(),
                result.stats.worker_utilization(),
                static_cast<unsigned long long>(
                    result.stats.queue_high_water));
  }

  bool instrumented_ok = true;
  if (!trace_out.empty() || !metrics_out.empty()) {
    instrumented_ok = instrumented_run(values, bound, trace_out, metrics_out);
  }

  std::printf("\n%s\n", table.render().c_str());
  std::printf("output byte-identical across thread counts (including the "
              "degraded run): %s\n",
              identical ? "yes" : "NO — BUG");
  std::printf("shape checks: throughput rises with threads until the "
              "machine's core count; speedup at 8 threads should be >= 3x "
              "on an 8-core host (this host: %u hardware threads).\n",
              std::max(1u, std::thread::hardware_concurrency()));
  return identical && instrumented_ok ? 0 : 1;
}
