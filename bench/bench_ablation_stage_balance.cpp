// Ablation: Algorithm 1's balanced sub-stage distribution vs the naive
// coarse 3-stage split (quantization | prediction | encoding) that
// Section 4.2 argues against. The naive split's pipeline is bottlenecked
// by Fixed-Length Encoding; Algorithm 1 divides quantization and the
// per-bit shuffles to even the load.
#include "bench_util.h"

using namespace ceresz;

namespace {

// The naive Fig. 6 (middle) mapping: one PE per coarse step.
mapping::PipelinePlan naive_three_stage_plan(u32 fl,
                                             const core::PeCostModel& cost) {
  mapping::PipelinePlan plan;
  plan.groups.resize(3);
  for (const auto& stage : core::compression_substages(fl)) {
    int g;
    switch (stage.kind) {
      case core::SubStageKind::kPrequantMul:
      case core::SubStageKind::kPrequantAdd:
        g = 0;
        break;
      case core::SubStageKind::kLorenzo:
        g = 1;
        break;
      default:
        g = 2;
        break;
    }
    plan.groups[g].stages.push_back(stage);
    plan.groups[g].cycles += cost.substage_cycles(stage, 32);
  }
  return plan;
}

}  // namespace

int main() {
  std::printf("=== Ablation: Algorithm 1 balancing vs naive 3-stage "
              "pipeline (Section 4.2) ===\n\n");

  const core::PeCostModel cost;
  const mapping::GreedyScheduler sched(cost, 32);
  TextTable table({"encoding length", "naive bottleneck", "Alg.1 (3 PEs)",
                   "Alg.1 (best PL)", "best PL", "max feasible"});
  for (u32 fl : {8u, 12u, 13u, 17u, 24u}) {
    const auto stages = core::compression_substages(fl);
    const auto naive = naive_three_stage_plan(fl, cost);
    const auto balanced3 = sched.distribute(stages, 3);
    const u32 max_pl = sched.max_feasible_length(stages);
    const auto best = sched.distribute(stages, max_pl);
    table.add_row({std::to_string(fl),
                   std::to_string(naive.bottleneck_cycles()),
                   std::to_string(balanced3.bottleneck_cycles()),
                   std::to_string(best.bottleneck_cycles()),
                   std::to_string(max_pl),
                   std::to_string(max_pl)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check: the naive split is bottlenecked by FL encoding "
              "(~2-4x the balanced bottleneck at the same 3 PEs); the "
              "feasible pipeline length is capped by the Multiplication "
              "sub-stage at ~C/t1 (Section 4.2).\n");
  return 0;
}
