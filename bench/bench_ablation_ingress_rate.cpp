// Ablation: data generation rate (Section 4.4, assumption 1: "the data is
// generated fast enough to saturate all the TC pipelines in a row").
// Sweeping the ingress rate shows the regime change: when the producer is
// slower than the row's compute capacity, throughput is ingress-bound and
// adding PEs buys nothing — the situation in which the pipeline-length
// choice stops mattering.
#include "bench_util.h"

using namespace ceresz;

int main() {
  std::printf("=== Ablation: ingress rate vs throughput "
              "(QMCPack, 1 row) ===\n\n");

  const data::Field field = data::generate_field(
      data::DatasetId::kQmcpack, 0, 42, bench::bench_scale(0.35));
  const core::ErrorBound bound = core::ErrorBound::relative(1e-3);

  for (u32 cols : {4u, 16u}) {
    std::printf("%u columns:\n", cols);
    TextTable table({"cycles/wavelet", "ingress bound (MB/s)",
                     "throughput (MB/s)", "regime"});
    for (f64 rate : {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0}) {
      mapping::MapperOptions opt;
      opt.rows = 1;
      opt.cols = cols;
      opt.collect_output = false;
      opt.ingress_cycles_per_wavelet = rate;
      const auto run =
          mapping::WaferMapper(opt).compress(field.view(), bound);
      const f64 mbps = run.throughput_gbps * 1000.0;
      const f64 ingress_mbps = 4.0 * 850.0 / rate;  // 4 B per wavelet
      table.add_row({fmt_f64(rate, 0), fmt_f64(ingress_mbps, 1),
                     fmt_f64(mbps, 1),
                     mbps > 0.8 * ingress_mbps ? "ingress-bound"
                                               : "compute-bound"});
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf("shape check: at saturated ingress (1 cycle/wavelet, the "
              "paper's evaluation setting) throughput scales with columns; "
              "once the producer is the bottleneck, both mesh widths "
              "converge to the ingress bound — assumption 1 of Section 4.4 "
              "is what makes the wafer's PE count useful.\n");
  return 0;
}
