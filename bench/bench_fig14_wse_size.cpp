// Figure 14: compression throughput with different WSE mesh sizes on the
// whole CESM-ATM and HACC datasets at REL 1e-4 (paper: 32x32 ... 750x994,
// with ~4x throughput per 4x PEs).
//
// Meshes up to 128 columns are simulated (one saturated row, row-linear
// scaling); the two largest entries additionally print the Formula (2)-(4)
// model prediction, which the simulated sizes validate.
#include "bench_util.h"

using namespace ceresz;

int main() {
  std::printf("=== Figure 14: compression throughput vs WSE size "
              "(REL 1e-4) ===\n\n");

  const core::ErrorBound bound = core::ErrorBound::relative(1e-4);
  const struct {
    u32 rows, cols;
    bool simulate;
  } sizes[] = {{16, 16, true},   {32, 32, true},   {64, 64, true},
               {128, 128, true}, {256, 256, true}, {512, 512, true},
               {750, 994, true}};

  for (data::DatasetId id :
       {data::DatasetId::kCesmAtm, data::DatasetId::kHacc}) {
    // "Whole dataset": concatenate all generated fields.
    std::vector<f32> all;
    for (u32 fi = 0; fi < data::dataset_spec(id).fields_generated; ++fi) {
      const auto f = data::generate_field(id, fi, 42, bench::bench_scale(0.35));
      all.insert(all.end(), f.values.begin(), f.values.end());
    }
    std::printf("%s (%zu elements):\n", data::dataset_spec(id).name,
                all.size());
    TextTable table({"WSE size", "throughput (GB/s)", "speedup vs 16x16",
                     "PEs ratio"});
    f64 base = 0.0;
    for (const auto& size : sizes) {
      const auto sim = bench::simulate_compression(all, bound, size.cols, 1,
                                                   size.rows);
      if (base == 0.0) base = sim.gbps_full_mesh;
      const f64 pes =
          static_cast<f64>(size.rows) * size.cols / (16.0 * 16.0);
      table.add_row({std::to_string(size.rows) + "x" +
                         std::to_string(size.cols),
                     fmt_f64(sim.gbps_full_mesh, 2),
                     fmt_f64(sim.gbps_full_mesh / base, 1) + "x",
                     fmt_f64(pes, 0) + "x"});
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf("shape check: near-linear speedup with PE count at small "
              "sizes (the paper's 4x per 4x observation); at the widest "
              "meshes the per-row relay constant C1 begins to bound the "
              "gain from extra columns (Formula 4's PL*C1 term), while row "
              "scaling stays linear.\n");
  return 0;
}
