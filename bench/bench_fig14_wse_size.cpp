// Figure 14: compression throughput with different WSE mesh sizes on the
// whole CESM-ATM and HACC datasets at REL 1e-4 (paper: 32x32 ... 750x994,
// with ~4x throughput per 4x PEs).
//
// Meshes up to 128 columns are simulated (one saturated row, row-linear
// scaling); the two largest entries additionally print the Formula (2)-(4)
// model prediction, which the simulated sizes validate.
//
// With --history, a FIXED 256x4 exact run (every row simulated through the
// parallel simulator core on --sim-threads workers, independent of
// CERESZ_BENCH_SCALE) is compared against the extrapolation path and its
// makespan / relative error / wall time are appended to the bench history
// for ceresz_perfgate. The pass exits nonzero if the error exceeds the
// committed mapping::kExtrapolationRelTolerance.
#include "bench_util.h"
#include "mapping/perf_model.h"

using namespace ceresz;

namespace {

/// The fixed 256-row differential pass behind --history.
bool validation_run(u32 sim_threads, bench::HistoryWriter& history) {
  const data::Field field =
      data::generate_field(data::DatasetId::kCesmAtm, 0, 42, 0.7);
  const core::ErrorBound bound = core::ErrorBound::relative(1e-4);
  constexpr u32 kRows = 256;
  constexpr u32 kCols = 4;

  mapping::MapperOptions opt;
  opt.rows = kRows;
  opt.cols = kCols;
  opt.pipeline_length = 1;
  opt.max_exact_rows = kRows;
  opt.sim_threads = sim_threads;
  opt.collect_output = false;
  const mapping::WaferMapper exact_mapper(opt);
  mapping::WaferRunResult exact;
  const f64 wall = bench::time_seconds(
      [&] { exact = exact_mapper.compress(field.view(), bound); });

  // 16 representative rows: the makespan is a MAX over rows, so on
  // heterogeneous data a tiny sample systematically underestimates it
  // (4 rows is ~10% off on this workload); 16 rows samples enough of the
  // round-robin block deal to capture the governing row.
  opt.max_exact_rows = 16;
  const mapping::WaferMapper extrap_mapper(opt);
  const auto extrap = extrap_mapper.compress(field.view(), bound);

  const f64 rel_err =
      std::abs(extrap.throughput_gbps - exact.throughput_gbps) /
      exact.throughput_gbps;
  std::printf("validation: exact %ux%u mesh (%u-thread sim) makespan %llu "
              "cycles, %.3f GB/s in %.3fs wall; extrapolated (16 rows) "
              "%.3f GB/s; rel err %.4f (tolerance %.2f)\n",
              kRows, kCols, sim_threads,
              static_cast<unsigned long long>(exact.makespan),
              exact.throughput_gbps, wall, extrap.throughput_gbps, rel_err,
              mapping::kExtrapolationRelTolerance);

  history.add("fig14_wse_size", "exact256x4_makespan_cycles",
              static_cast<f64>(exact.makespan), "cycles", "lower", 0.01);
  history.add("fig14_wse_size", "extrapolation_rel_err", rel_err, "frac",
              "lower", 0.01);
  history.add("fig14_wse_size", "sim_wall_seconds", wall, "s", "lower", 1.5);
  if (rel_err > mapping::kExtrapolationRelTolerance) {
    std::fprintf(stderr,
                 "validation FAILED: extrapolation error %.4f exceeds the "
                 "committed tolerance %.2f\n",
                 rel_err, mapping::kExtrapolationRelTolerance);
    return false;
  }
  return history.ok();
}

}  // namespace

int main(int argc, char** argv) {
  u32 sim_threads = 1;
  std::string history_out;
  bool validate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--sim-threads" && i + 1 < argc) {
      sim_threads = static_cast<u32>(std::atoi(argv[++i]));
    } else if (a == "--history" && i + 1 < argc) {
      history_out = argv[++i];
      validate = true;
    } else if (a == "--validate") {
      validate = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_fig14_wse_size [--sim-threads N] "
                   "[--history FILE] [--validate]\n");
      return 2;
    }
  }
  if (sim_threads < 1) sim_threads = 1;

  std::printf("=== Figure 14: compression throughput vs WSE size "
              "(REL 1e-4) ===\n\n");

  const core::ErrorBound bound = core::ErrorBound::relative(1e-4);
  const struct {
    u32 rows, cols;
    bool simulate;
  } sizes[] = {{16, 16, true},   {32, 32, true},   {64, 64, true},
               {128, 128, true}, {256, 256, true}, {512, 512, true},
               {750, 994, true}};

  for (data::DatasetId id :
       {data::DatasetId::kCesmAtm, data::DatasetId::kHacc}) {
    // "Whole dataset": concatenate all generated fields.
    std::vector<f32> all;
    for (u32 fi = 0; fi < data::dataset_spec(id).fields_generated; ++fi) {
      const auto f = data::generate_field(id, fi, 42, bench::bench_scale(0.35));
      all.insert(all.end(), f.values.begin(), f.values.end());
    }
    std::printf("%s (%zu elements):\n", data::dataset_spec(id).name,
                all.size());
    TextTable table({"WSE size", "throughput (GB/s)", "speedup vs 16x16",
                     "PEs ratio"});
    f64 base = 0.0;
    for (const auto& size : sizes) {
      const auto sim =
          bench::simulate_compression(all, bound, size.cols, 1, size.rows, 4,
                                      /*max_exact_rows=*/1, sim_threads);
      if (base == 0.0) base = sim.gbps_full_mesh;
      const f64 pes =
          static_cast<f64>(size.rows) * size.cols / (16.0 * 16.0);
      table.add_row({std::to_string(size.rows) + "x" +
                         std::to_string(size.cols),
                     fmt_f64(sim.gbps_full_mesh, 2),
                     fmt_f64(sim.gbps_full_mesh / base, 1) + "x",
                     fmt_f64(pes, 0) + "x"});
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf("shape check: near-linear speedup with PE count at small "
              "sizes (the paper's 4x per 4x observation); at the widest "
              "meshes the per-row relay constant C1 begins to bound the "
              "gain from extra columns (Formula 4's PL*C1 term), while row "
              "scaling stays linear.\n");

  bool validation_ok = true;
  if (validate) {
    bench::HistoryWriter history(history_out);
    std::printf("\n");
    validation_ok = validation_run(sim_threads, history);
  }
  return validation_ok ? 0 : 1;
}
