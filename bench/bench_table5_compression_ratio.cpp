// Table 5: compression ratios (range and average across fields) of CereSZ
// and the four baselines on all six datasets at REL 1e-2/1e-3/1e-4.
// Everything here is measured from the real codecs — no modeling.
#include <limits>

#include "bench_util.h"

using namespace ceresz;

namespace {

struct Ratios {
  f64 lo = std::numeric_limits<f64>::max();
  f64 hi = 0.0;
  f64 sum = 0.0;
  int n = 0;

  void add(f64 r) {
    lo = std::min(lo, r);
    hi = std::max(hi, r);
    sum += r;
    ++n;
  }
  std::string cell() const {
    if (n == 0) return "-";
    return fmt_f64(lo, 2) + "~" + fmt_f64(hi, 2) + " avg " +
           fmt_f64(sum / n, 2);
  }
  f64 avg() const { return n ? sum / n : 0.0; }
};

}  // namespace

int main() {
  std::printf("=== Table 5: compression ratios (measured), range ~ avg "
              "across fields ===\n\n");

  const core::StreamCodec ceresz_codec;  // 4-byte headers
  const auto szp = baselines::make_szp();
  const auto cuszp = baselines::make_cuszp();
  const auto sz3 = baselines::make_sz3();
  const auto cusz = baselines::make_cusz();

  for (f64 rel : bench::kRelBounds) {
    const core::ErrorBound bound = core::ErrorBound::relative(rel);
    std::printf("REL %s:\n", bench::rel_name(rel).c_str());
    TextTable table({"Dataset", "CereSZ", "SZp", "cuSZp", "SZ", "cuSZ"});
    for (data::DatasetId id : data::kAllDatasets) {
      Ratios r_ceresz, r_szp, r_cuszp, r_sz3, r_cusz;
      const auto& spec = data::dataset_spec(id);
      for (u32 fi = 0; fi < spec.fields_generated; ++fi) {
        const data::Field field =
            data::generate_field(id, fi, 42, bench::bench_scale(0.35));
        r_ceresz.add(
            ceresz_codec.compress(field.view(), bound).compression_ratio());
        baselines::BaselineStats s;
        szp->compress(field, bound, &s);
        r_szp.add(s.compression_ratio());
        cuszp->compress(field, bound, &s);
        r_cuszp.add(s.compression_ratio());
        sz3->compress(field, bound, &s);
        r_sz3.add(s.compression_ratio());
        cusz->compress(field, bound, &s);
        r_cusz.add(s.compression_ratio());
      }
      table.add_row({spec.name, r_ceresz.cell(), r_szp.cell(),
                     r_cuszp.cell(), r_sz3.cell(), r_cusz.cell()});
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf("shape checks (Table 5): SZ highest everywhere (spatial "
              "prediction + entropy/run coding); SZp >= cuSZp (offset "
              "table) > CereSZ (4-byte vs 1-byte block headers, caps 128x "
              "vs 32x on sparse data); CereSZ's penalty shrinks as the "
              "bound tightens.\n");
  return 0;
}
