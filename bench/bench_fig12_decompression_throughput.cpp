// Figure 12: decompression throughput (GB/s), same grid as Figure 11.
// Decompression skips the max search and the quantization addition and is
// scheduled from the stream's known fixed length, so it runs faster than
// compression (paper: 581.31 vs 457.35 GB/s average).
#include "bench_util.h"

using namespace ceresz;

namespace {
constexpr u32 kMeshRows = 512;
constexpr u32 kMeshCols = 512;
constexpr u32 kMaxFields = 2;
}  // namespace

int main() {
  std::printf("=== Figure 12: decompression throughput (GB/s), 512x512 PEs, "
              "PL=1 ===\n");
  std::printf("paper: CereSZ avg 581.31 GB/s (up to 920.67 on RTM), 4.8x "
              "over cuSZp\n\n");

  TextTable table({"Dataset", "REL", "CereSZ(sim)", "cuSZp(model)",
                   "SZp(model)", "cuSZ(model)", "SZ(model)", "vs comp."});
  const auto cuszp = baselines::make_cuszp();
  const auto szp = baselines::make_szp();
  const auto cusz = baselines::make_cusz();
  const auto sz3 = baselines::make_sz3();
  const core::StreamCodec host;

  f64 decomp_sum = 0, comp_sum = 0;
  int cells = 0;

  for (data::DatasetId id : data::kAllDatasets) {
    const auto& spec = data::dataset_spec(id);
    const u32 n_fields = std::min<u32>(kMaxFields, spec.fields_generated);
    std::vector<data::Field> fields;
    for (u32 fi = 0; fi < n_fields; ++fi) {
      fields.push_back(
          data::generate_field(id, fi, 42, bench::bench_scale(0.5)));
    }
    for (f64 rel : bench::kRelBounds) {
      const core::ErrorBound bound = core::ErrorBound::relative(rel);
      f64 ceresz_comp = 0, ceresz_decomp = 0;
      f64 m_cuszp = 0, m_szp = 0, m_cusz = 0, m_sz3 = 0;
      for (const auto& field : fields) {
        const auto comp = bench::simulate_compression(
            field.view(), bound, kMeshCols, 1, kMeshRows);
        ceresz_comp += comp.gbps_full_mesh;

        const auto stream = host.compress(field.view(), bound);
        const auto decomp = bench::simulate_decompression(
            stream.stream, field.size(), kMeshCols, 1, kMeshRows);
        ceresz_decomp += decomp.gbps_full_mesh;

        baselines::BaselineStats s;
        cuszp->compress(field, bound, &s);
        m_cuszp += baselines::cuszp_model().decompress_gbps(s);
        szp->compress(field, bound, &s);
        m_szp += baselines::szp_model().decompress_gbps(s);
        cusz->compress(field, bound, &s);
        m_cusz += baselines::cusz_model().decompress_gbps(s);
        sz3->compress(field, bound, &s);
        m_sz3 += baselines::sz3_model().decompress_gbps(s);
      }
      const f64 n = static_cast<f64>(fields.size());
      ceresz_comp /= n;
      ceresz_decomp /= n;
      decomp_sum += ceresz_decomp;
      comp_sum += ceresz_comp;
      ++cells;
      table.add_row({spec.name, bench::rel_name(rel),
                     fmt_f64(ceresz_decomp, 2), fmt_f64(m_cuszp / n, 2),
                     fmt_f64(m_szp / n, 2), fmt_f64(m_cusz / n, 2),
                     fmt_f64(m_sz3 / n, 2),
                     fmt_f64(ceresz_decomp / ceresz_comp, 2) + "x"});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("averages: decompression %.2f GB/s vs compression %.2f GB/s "
              "(paper: 581.31 vs 457.35)\n",
              decomp_sum / cells, comp_sum / cells);
  std::printf("shape check: decompression beats compression in every cell "
              "(no Max/GetLength, known fixed length).\n");
  return 0;
}
