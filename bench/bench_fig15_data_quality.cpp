// Figure 15: data quality of CereSZ vs cuSZp on the NYX velocity_x field
// at REL 1e-4. Both use the same pre-quantization, so the reconstructions
// — and hence PSNR and SSIM — are identical; only the compression ratio
// differs (paper: 3.35 vs 3.10, SSIM 0.9996, PSNR 84.77 dB).
#include "bench_util.h"

using namespace ceresz;

int main() {
  std::printf("=== Figure 15: data quality, NYX velocity_x @ REL 1e-4 ===\n\n");

  const data::Field field = data::generate_field(
      data::DatasetId::kNyx, 1 /*velocity_x*/, 42, bench::bench_scale(0.5));
  const core::ErrorBound bound = core::ErrorBound::relative(1e-4);

  const core::StreamCodec ceresz_codec;
  const auto ceresz_result = ceresz_codec.compress(field.view(), bound);
  const auto ceresz_back = ceresz_codec.decompress(ceresz_result.stream);

  const auto cuszp = baselines::make_cuszp();
  baselines::BaselineStats cuszp_stats;
  const auto cuszp_stream = cuszp->compress(field, bound, &cuszp_stats);
  const auto cuszp_back = cuszp->decompress(cuszp_stream);

  // Evaluate on a 2-D slice (the paper visualizes dim-3 panel 200) and on
  // the full field.
  const std::size_t slice = field.dims[1] * field.dims[2];
  const std::size_t panel = field.dims[0] / 2;
  std::span<const f32> orig_slice(field.values.data() + panel * slice, slice);
  std::span<const f32> ceresz_slice(ceresz_back.data() + panel * slice, slice);
  std::span<const f32> cuszp_slice(cuszp_back.data() + panel * slice, slice);

  TextTable table({"metric", "CereSZ", "cuSZp", "identical?"});
  const f64 psnr_a = metrics::psnr(field.view(), ceresz_back);
  const f64 psnr_b = metrics::psnr(field.view(), cuszp_back);
  const f64 ssim_a =
      metrics::ssim_2d(orig_slice, ceresz_slice, field.dims[2], field.dims[1]);
  const f64 ssim_b =
      metrics::ssim_2d(orig_slice, cuszp_slice, field.dims[2], field.dims[1]);
  const bool same_recon = ceresz_back == cuszp_back;

  table.add_row({"compression ratio",
                 fmt_f64(ceresz_result.compression_ratio(), 2),
                 fmt_f64(cuszp_stats.compression_ratio(), 2), "no (headers)"});
  table.add_row({"PSNR (dB)", fmt_f64(psnr_a, 2), fmt_f64(psnr_b, 2),
                 psnr_a == psnr_b ? "yes" : "NO"});
  table.add_row({"SSIM (slice)", fmt_f64(ssim_a, 4), fmt_f64(ssim_b, 4),
                 ssim_a == ssim_b ? "yes" : "NO"});
  table.add_row({"max |error|",
                 fmt_f64(max_abs_diff(field.view(), ceresz_back), 6),
                 fmt_f64(max_abs_diff(field.view(), cuszp_back), 6),
                 same_recon ? "yes" : "NO"});
  std::printf("%s\n", table.render().c_str());
  std::printf("reconstructions bit-identical: %s\n",
              same_recon ? "yes" : "NO");
  std::printf("error bound: %g (both within)\n", ceresz_result.eps_abs);
  std::printf("shape check (Fig. 15): identical quality at the same bound; "
              "CereSZ pays only a small ratio penalty for its 32-bit block "
              "headers, so its rate-distortion curve is slightly more "
              "conservative.\n");
  return same_recon ? 0 : 1;
}
