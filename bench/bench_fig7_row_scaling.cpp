// Figure 7: throughput (MB/s) of compressing the NYX temperature field
// with different numbers of PE rows, running the whole compression on the
// first PE of each row (parallelization strategy 1). The paper observes
// linear scaling because rows never communicate.
#include "bench_util.h"

using namespace ceresz;

int main() {
  std::printf("=== Figure 7: throughput vs number of PE rows "
              "(NYX temperature, block 32, first PE of each row) ===\n\n");

  const data::Field field = data::generate_field(
      data::DatasetId::kNyx, 4 /*temperature*/, 42, bench::bench_scale(0.5));
  const core::ErrorBound bound = core::ErrorBound::relative(1e-3);

  TextTable table({"PE rows", "throughput (MB/s)", "speedup", "linearity"});
  f64 base_mbps = 0.0;
  for (u32 rows : {1u, 2u, 4u, 8u, 16u, 32u}) {
    mapping::MapperOptions opt;
    opt.rows = rows;
    opt.cols = 1;  // whole kernel on the first PE of each row
    opt.max_exact_rows = rows;
    opt.collect_output = false;
    const mapping::WaferMapper mapper(opt);
    const auto run = mapper.compress(field.view(), bound);
    const f64 mbps = run.throughput_gbps * 1000.0;
    if (rows == 1) base_mbps = mbps;
    table.add_row({std::to_string(rows), fmt_f64(mbps, 2),
                   fmt_f64(mbps / base_mbps, 2) + "x",
                   fmt_f64(100.0 * mbps / (base_mbps * rows), 1) + "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check: throughput increases linearly with the row "
              "count (the paper's Fig. 7), because rows process disjoint "
              "block streams with no communication.\n");
  return 0;
}
