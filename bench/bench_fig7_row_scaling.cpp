// Figure 7: throughput (MB/s) of compressing the NYX temperature field
// with different numbers of PE rows, running the whole compression on the
// first PE of each row (parallelization strategy 1). The paper observes
// linear scaling because rows never communicate.
//
// With --history, an additional near-wafer validation pass runs a FIXED
// workload (independent of CERESZ_BENCH_SCALE) on 128 rows two ways —
// exactly, through the parallel simulator core (every row simulated, row
// bands spread over --sim-threads workers), and through the Formula
// (2)-(4) extrapolation path (4 representative rows) — and appends the
// exact makespan, the extrapolation's relative throughput error, and the
// exact run's wall time to the bench history for ceresz_perfgate. The
// pass exits nonzero if the error exceeds the committed
// mapping::kExtrapolationRelTolerance.
#include "bench_util.h"
#include "mapping/perf_model.h"

using namespace ceresz;

namespace {

/// The fixed 128-row differential pass behind --history.
bool validation_run(u32 sim_threads, bench::HistoryWriter& history) {
  const data::Field field =
      data::generate_field(data::DatasetId::kNyx, 4 /*temperature*/, 42, 0.35);
  const core::ErrorBound bound = core::ErrorBound::relative(1e-3);
  constexpr u32 kRows = 128;

  mapping::MapperOptions opt;
  opt.rows = kRows;
  opt.cols = 1;
  opt.max_exact_rows = kRows;
  opt.sim_threads = sim_threads;
  opt.collect_output = false;
  const mapping::WaferMapper exact_mapper(opt);
  mapping::WaferRunResult exact;
  const f64 wall =
      bench::time_seconds([&] { exact = exact_mapper.compress(field.view(), bound); });

  opt.max_exact_rows = 4;
  const mapping::WaferMapper extrap_mapper(opt);
  const auto extrap = extrap_mapper.compress(field.view(), bound);

  const f64 rel_err =
      std::abs(extrap.throughput_gbps - exact.throughput_gbps) /
      exact.throughput_gbps;
  std::printf("validation: exact %u rows (%u-thread sim) makespan %llu "
              "cycles, %.3f GB/s in %.3fs wall; extrapolated (4 rows) "
              "%.3f GB/s; rel err %.4f (tolerance %.2f)\n",
              kRows, sim_threads,
              static_cast<unsigned long long>(exact.makespan),
              exact.throughput_gbps, wall, extrap.throughput_gbps, rel_err,
              mapping::kExtrapolationRelTolerance);

  history.add("fig7_row_scaling", "exact128_makespan_cycles",
              static_cast<f64>(exact.makespan), "cycles", "lower", 0.01);
  history.add("fig7_row_scaling", "extrapolation_rel_err", rel_err, "frac",
              "lower", 0.01);
  history.add("fig7_row_scaling", "sim_wall_seconds", wall, "s", "lower",
              1.5);
  if (rel_err > mapping::kExtrapolationRelTolerance) {
    std::fprintf(stderr,
                 "validation FAILED: extrapolation error %.4f exceeds the "
                 "committed tolerance %.2f\n",
                 rel_err, mapping::kExtrapolationRelTolerance);
    return false;
  }
  return history.ok();
}

}  // namespace

int main(int argc, char** argv) {
  u32 sim_threads = 1;
  std::string history_out;
  bool validate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--sim-threads" && i + 1 < argc) {
      sim_threads = static_cast<u32>(std::atoi(argv[++i]));
    } else if (a == "--history" && i + 1 < argc) {
      history_out = argv[++i];
      validate = true;
    } else if (a == "--validate") {
      validate = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_fig7_row_scaling [--sim-threads N] "
                   "[--history FILE] [--validate]\n");
      return 2;
    }
  }
  if (sim_threads < 1) sim_threads = 1;

  std::printf("=== Figure 7: throughput vs number of PE rows "
              "(NYX temperature, block 32, first PE of each row) ===\n\n");

  const data::Field field = data::generate_field(
      data::DatasetId::kNyx, 4 /*temperature*/, 42, bench::bench_scale(0.5));
  const core::ErrorBound bound = core::ErrorBound::relative(1e-3);

  TextTable table({"PE rows", "throughput (MB/s)", "speedup", "linearity"});
  f64 base_mbps = 0.0;
  for (u32 rows : {1u, 2u, 4u, 8u, 16u, 32u}) {
    mapping::MapperOptions opt;
    opt.rows = rows;
    opt.cols = 1;  // whole kernel on the first PE of each row
    opt.max_exact_rows = rows;
    opt.sim_threads = sim_threads;
    opt.collect_output = false;
    const mapping::WaferMapper mapper(opt);
    const auto run = mapper.compress(field.view(), bound);
    const f64 mbps = run.throughput_gbps * 1000.0;
    if (rows == 1) base_mbps = mbps;
    table.add_row({std::to_string(rows), fmt_f64(mbps, 2),
                   fmt_f64(mbps / base_mbps, 2) + "x",
                   fmt_f64(100.0 * mbps / (base_mbps * rows), 1) + "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check: throughput increases linearly with the row "
              "count (the paper's Fig. 7), because rows process disjoint "
              "block streams with no communication.\n");

  bool validation_ok = true;
  if (validate) {
    bench::HistoryWriter history(history_out);
    std::printf("\n");
    validation_ok = validation_run(sim_threads, history);
  }
  return validation_ok ? 0 : 1;
}
