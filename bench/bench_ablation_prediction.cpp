// Ablation: 1-D vs tile-local 2-D Lorenzo prediction (the extension of
// Section 3's "higher dimensional Lorenzo prediction methods ... can lead
// to a higher compression ratio" remark, kept block-independent so the
// wafer mapping is unchanged).
#include "bench_util.h"

#include "core/tiled_codec.h"

using namespace ceresz;

int main() {
  std::printf("=== Ablation: 1-D vs tiled 2-D Lorenzo prediction ===\n\n");

  const core::StreamCodec codec1d;

  TextTable table({"Field", "REL", "1-D ratio", "2-D ratio", "gain",
                   "extra cycles/block"});
  const core::PeCostModel cost;
  // 2-D Lorenzo per element: 3 subtractions vs 1 -> ~3x the Lorenzo stage,
  // which is ~2% of the block budget.
  const Cycles lorenzo1d =
      cost.substage_cycles({core::SubStageKind::kLorenzo}, 32);
  const Cycles extra = 2 * lorenzo1d;

  for (data::DatasetId id :
       {data::DatasetId::kCesmAtm, data::DatasetId::kHurricane,
        data::DatasetId::kHacc}) {
    const data::Field f =
        data::generate_field(id, 0, 42, bench::bench_scale(0.35));
    // 2-D view: CESM is natively 2-D; 3-D fields use the trailing plane
    // dims; 1-D data (HACC) degenerates to 32x1 tiles, i.e. the 2-D
    // transform reduces to the 1-D one and the gain is ~0.
    std::size_t h = 1, w = f.size();
    if (f.dims.size() >= 2) {
      h = f.size() / f.dims.back();
      w = f.dims.back();
    }
    core::TiledCodecConfig tcfg;
    if (h == 1) {
      tcfg.tile_w = 32;
      tcfg.tile_h = 1;
    }
    const core::Tiled2dCodec codec_for_field(tcfg);
    for (f64 rel : bench::kRelBounds) {
      const core::ErrorBound bound = core::ErrorBound::relative(rel);
      const f64 r1 = codec1d.compress(f.view(), bound).compression_ratio();
      const f64 r2 = codec_for_field.compress(f.view(), w, h, bound)
                         .compression_ratio();
      table.add_row({std::string(data::dataset_spec(id).name) + "/" + f.name,
                     bench::rel_name(rel), fmt_f64(r1, 2), fmt_f64(r2, 2),
                     fmt_f64(100.0 * (r2 / r1 - 1.0), 1) + "%",
                     std::to_string(extra)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check: 2-D prediction buys ratio on 2-D-smooth fields "
              "for ~%llu extra cycles/block (~2%% of the block budget); on "
              "1-D particle data it does nothing — matching the paper's "
              "rationale for defaulting to the cheaper 1-D transform when "
              "throughput is the goal.\n",
              static_cast<unsigned long long>(extra));
  return 0;
}
