// Google-benchmark microbenchmarks of the host-side CereSZ kernels: the
// per-stage primitives, the block codec, and the stream codec. These are
// the numbers a CPU deployment of the same algorithm would care about,
// and a regression guard for the library itself.
#include <benchmark/benchmark.h>

#include "ceresz.h"
#include "core/flenc.h"
#include "core/lorenzo.h"
#include "core/prequant.h"

namespace {

using namespace ceresz;

std::vector<f32> bench_data(std::size_t n) {
  Rng rng(7);
  std::vector<f32> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<f32>(std::sin(i / 64.0) + 0.01 * rng.next_gaussian());
  }
  return v;
}

void BM_Prequant(benchmark::State& state) {
  const auto data = bench_data(static_cast<std::size_t>(state.range(0)));
  std::vector<i32> out(data.size());
  for (auto _ : state) {
    core::prequant(data, out, 2e-3);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * data.size() * sizeof(f32));
}
BENCHMARK(BM_Prequant)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_LorenzoForward(benchmark::State& state) {
  std::vector<i32> data(static_cast<std::size_t>(state.range(0)));
  Rng rng(3);
  for (auto& v : data) v = static_cast<i32>(rng.next_below(1000));
  std::vector<i32> out(data.size());
  for (auto _ : state) {
    core::lorenzo_forward(data, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * data.size() * sizeof(i32));
}
BENCHMARK(BM_LorenzoForward)->Arg(1 << 16)->Arg(1 << 20);

void BM_BitShuffle(benchmark::State& state) {
  const u32 fl = static_cast<u32>(state.range(0));
  std::vector<u32> absv(32);
  Rng rng(5);
  for (auto& v : absv) v = static_cast<u32>(rng.next_below(1u << fl));
  std::vector<u8> out(fl * 4);
  for (auto _ : state) {
    core::bit_shuffle(absv, fl, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BitShuffle)->Arg(4)->Arg(12)->Arg(17)->Arg(32);

void BM_BlockCompress(benchmark::State& state) {
  const core::BlockCodec codec{core::CodecConfig{}};
  const auto data = bench_data(32);
  std::vector<u8> out;
  for (auto _ : state) {
    out.clear();
    codec.compress(data, 1e-3, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * 128);
}
BENCHMARK(BM_BlockCompress);

void BM_StreamCompress(benchmark::State& state) {
  const core::StreamCodec codec;
  const auto data = bench_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = codec.compress(data, core::ErrorBound::absolute(1e-3));
    benchmark::DoNotOptimize(result.stream.data());
  }
  state.SetBytesProcessed(state.iterations() * data.size() * sizeof(f32));
}
BENCHMARK(BM_StreamCompress)->Arg(1 << 16)->Arg(1 << 20);

void BM_StreamDecompress(benchmark::State& state) {
  const core::StreamCodec codec;
  const auto data = bench_data(static_cast<std::size_t>(state.range(0)));
  const auto result = codec.compress(data, core::ErrorBound::absolute(1e-3));
  for (auto _ : state) {
    auto back = codec.decompress(result.stream);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(state.iterations() * data.size() * sizeof(f32));
}
BENCHMARK(BM_StreamDecompress)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
