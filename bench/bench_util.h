// Shared helpers for the experiment benches.
//
// Methodology notes (see DESIGN.md for the full substitution table):
//  - CereSZ throughput comes from the event-driven WSE simulation. Rows
//    never communicate, so by default we simulate ONE saturated row
//    (several full rounds of its pipelines) and scale by the row count
//    of the target mesh — the row-linearity this relies on is itself
//    validated by the Fig. 7 bench and, since the parallel simulator
//    core (wse::WaferSimulator, docs/simulator.md), by exact
//    multi-hundred-row runs: pass `max_exact_rows`/`sim_threads` to the
//    simulate_* helpers (or --sim-threads to the fig7/fig14 benches) to
//    simulate every row exactly across host threads instead of scaling.
//  - Baseline GPU/CPU throughput is modeled (baselines::DeviceModel),
//    calibrated to the paper's reported numbers; compression ratios and
//    quality are always measured from the real reimplementations.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "ceresz.h"
#include "obs/analysis/perfgate.h"

namespace ceresz::bench {

/// Wall time of `fn()` on the shared monotonic clock (common/timer.h
/// now_ns()) — the same clock the tracer stamps spans with, so bench
/// timings and trace timestamps are directly comparable.
template <typename F>
inline f64 time_seconds(F&& fn) {
  const u64 start = now_ns();
  fn();
  return static_cast<f64>(now_ns() - start) * 1e-9;
}

/// Scale factor for generated datasets, overridable for quick runs:
///   CERESZ_BENCH_SCALE=0.2 ./bench_...
inline f64 bench_scale(f64 default_scale = 0.5) {
  if (const char* env = std::getenv("CERESZ_BENCH_SCALE")) {
    const f64 v = std::atof(env);
    if (v > 0.0) return v;
  }
  return default_scale;
}

struct SimulatedRun {
  f64 gbps_simulated = 0.0;   ///< on the simulated rows
  f64 gbps_full_mesh = 0.0;   ///< scaled to `full_rows` rows
  u32 rows_simulated = 0;
  u32 rows_saturated = 0;     ///< rows the data can actually keep busy
  mapping::WaferRunResult run;
};

/// Simulate CereSZ compression on one saturated row of `cols` columns and
/// scale to a `full_rows`-row mesh of the same width. `max_exact_rows` > 1
/// simulates up to that many of the saturated rows exactly (the parallel
/// simulator spreads the row bands over `sim_threads` host workers);
/// the defaults preserve the single-row scaling methodology.
inline SimulatedRun simulate_compression(std::span<const f32> data,
                                         core::ErrorBound bound, u32 cols,
                                         u32 pipeline_length, u32 full_rows,
                                         u32 target_rounds = 4,
                                         u32 max_exact_rows = 1,
                                         u32 sim_threads = 1) {
  const u32 L = 32;
  const u64 blocks = (data.size() + L - 1) / L;
  const u32 n_pipes = cols / pipeline_length;
  // Rows such that each simulated row sees ~target_rounds rounds.
  u32 rows = static_cast<u32>(
      std::max<u64>(1, blocks / (static_cast<u64>(target_rounds) * n_pipes)));
  rows = std::min(rows, full_rows);

  mapping::MapperOptions opt;
  opt.rows = rows;
  opt.cols = cols;
  opt.pipeline_length = pipeline_length;
  opt.max_exact_rows = max_exact_rows;
  opt.sim_threads = sim_threads;
  opt.collect_output = false;
  const mapping::WaferMapper mapper(opt);

  SimulatedRun out;
  out.run = mapper.compress(data, bound);
  out.rows_simulated = out.run.rows_simulated;
  out.rows_saturated = rows;
  out.gbps_simulated = out.run.throughput_gbps;
  out.gbps_full_mesh =
      out.run.throughput_gbps * static_cast<f64>(full_rows) / rows;
  return out;
}

/// Same for decompression of a CereSZ stream.
inline SimulatedRun simulate_decompression(std::span<const u8> stream,
                                           u64 element_count, u32 cols,
                                           u32 pipeline_length, u32 full_rows,
                                           u32 target_rounds = 4,
                                           u32 max_exact_rows = 1,
                                           u32 sim_threads = 1) {
  const u32 L = 32;
  const u64 blocks = (element_count + L - 1) / L;
  const u32 n_pipes = cols / pipeline_length;
  u32 rows = static_cast<u32>(
      std::max<u64>(1, blocks / (static_cast<u64>(target_rounds) * n_pipes)));
  rows = std::min(rows, full_rows);

  mapping::MapperOptions opt;
  opt.rows = rows;
  opt.cols = cols;
  opt.pipeline_length = pipeline_length;
  opt.max_exact_rows = max_exact_rows;
  opt.sim_threads = sim_threads;
  opt.collect_output = false;
  const mapping::WaferMapper mapper(opt);

  SimulatedRun out;
  out.run = mapper.decompress(stream);
  out.rows_simulated = out.run.rows_simulated;
  out.rows_saturated = rows;
  out.gbps_simulated = out.run.throughput_gbps;
  out.gbps_full_mesh =
      out.run.throughput_gbps * static_cast<f64>(full_rows) / rows;
  return out;
}

/// Append-only writer for the bench history format consumed by
/// ceresz_perfgate (bench/history/*.jsonl; see obs/analysis/perfgate.h
/// for the record schema and docs/observability.md for the workflow).
/// A default-constructed / empty-path writer swallows records, so
/// benches can call add() unconditionally.
class HistoryWriter {
 public:
  HistoryWriter() = default;
  explicit HistoryWriter(const std::string& path) {
    if (!path.empty()) {
      out_.open(path, std::ios::app | std::ios::binary);
      if (!out_.good()) {
        std::fprintf(stderr, "history: cannot open %s\n", path.c_str());
      }
    }
  }

  /// `better` is "higher" or "lower"; `noise` the relative band the
  /// gate tolerates. Simulated (deterministic) metrics should use a
  /// tight band, wall-clock metrics a generous one. Every line is
  /// stamped with run provenance (UTC timestamp, git SHA when the
  /// environment provides one, hostname); ceresz_perfgate ignores the
  /// extra keys.
  void add(const std::string& bench, const std::string& metric, f64 value,
           const std::string& unit, const std::string& better, f64 noise) {
    if (!out_.is_open()) return;
    obs::analysis::HistoryRecord rec;
    rec.bench = bench;
    rec.metric = metric;
    rec.value = value;
    rec.unit = unit;
    rec.better = better;
    rec.noise = noise;
    obs::analysis::stamp_history_metadata(rec);
    out_ << rec.to_jsonl() << "\n";
  }

  /// Append a pre-built record (e.g. from stitch_history_records),
  /// stamping the same provenance metadata.
  void add_record(obs::analysis::HistoryRecord rec) {
    if (!out_.is_open()) return;
    obs::analysis::stamp_history_metadata(rec);
    out_ << rec.to_jsonl() << "\n";
  }

  bool ok() const { return !out_.is_open() || out_.good(); }

 private:
  std::ofstream out_;
};

/// The three REL bounds the paper evaluates.
inline constexpr f64 kRelBounds[] = {1e-2, 1e-3, 1e-4};

inline std::string rel_name(f64 rel) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "1E-%d",
                static_cast<int>(0.5 - std::log10(rel)));
  return buf;
}

}  // namespace ceresz::bench
