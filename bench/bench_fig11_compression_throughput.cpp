// Figure 11: compression throughput (GB/s) of CereSZ vs SZ, SZp, cuSZ,
// and cuSZp on the six datasets at REL 1e-2 / 1e-3 / 1e-4.
//
// CereSZ runs at pipeline length 1 on a 512x512 mesh, exactly as in the
// paper: one saturated row is simulated event-by-event and scaled by the
// (validated, Fig. 7) linear row count. Baseline columns are modeled from
// each reimplementation's measured stream shape via the calibrated
// DeviceModel (see DESIGN.md); CereSZ numbers are simulated, baselines are
// labeled modeled.
#include "bench_util.h"

using namespace ceresz;

namespace {
constexpr u32 kMeshRows = 512;
constexpr u32 kMeshCols = 512;
constexpr u32 kMaxFields = 2;  // per dataset, to bound bench runtime
}  // namespace

int main() {
  std::printf("=== Figure 11: compression throughput (GB/s), 512x512 PEs, "
              "PL=1 ===\n");
  std::printf("paper: CereSZ 277.93-773.8 GB/s (avg 457.35), 4.9x over "
              "cuSZp\n\n");

  TextTable table({"Dataset", "REL", "CereSZ(sim)", "cuSZp(model)",
                   "SZp(model)", "cuSZ(model)", "SZ(model)",
                   "vs cuSZp"});
  const auto cuszp = baselines::make_cuszp();
  const auto szp = baselines::make_szp();
  const auto cusz = baselines::make_cusz();
  const auto sz3 = baselines::make_sz3();

  f64 ceresz_sum = 0, cuszp_sum = 0;
  int cells = 0;

  for (data::DatasetId id : data::kAllDatasets) {
    const auto& spec = data::dataset_spec(id);
    const u32 n_fields = std::min<u32>(kMaxFields, spec.fields_generated);
    std::vector<data::Field> fields;
    for (u32 fi = 0; fi < n_fields; ++fi) {
      fields.push_back(
          data::generate_field(id, fi, 42, bench::bench_scale(0.5)));
    }
    for (f64 rel : bench::kRelBounds) {
      const core::ErrorBound bound = core::ErrorBound::relative(rel);
      f64 ceresz_gbps = 0, m_cuszp = 0, m_szp = 0, m_cusz = 0, m_sz3 = 0;
      for (const auto& field : fields) {
        const auto sim = bench::simulate_compression(
            field.view(), bound, kMeshCols, 1, kMeshRows);
        ceresz_gbps += sim.gbps_full_mesh;

        baselines::BaselineStats s;
        cuszp->compress(field, bound, &s);
        m_cuszp += baselines::cuszp_model().compress_gbps(s);
        szp->compress(field, bound, &s);
        m_szp += baselines::szp_model().compress_gbps(s);
        cusz->compress(field, bound, &s);
        m_cusz += baselines::cusz_model().compress_gbps(s);
        sz3->compress(field, bound, &s);
        m_sz3 += baselines::sz3_model().compress_gbps(s);
      }
      const f64 n = static_cast<f64>(fields.size());
      ceresz_gbps /= n;
      m_cuszp /= n;
      m_szp /= n;
      m_cusz /= n;
      m_sz3 /= n;
      ceresz_sum += ceresz_gbps;
      cuszp_sum += m_cuszp;
      ++cells;
      table.add_row({spec.name, bench::rel_name(rel),
                     fmt_f64(ceresz_gbps, 2), fmt_f64(m_cuszp, 2),
                     fmt_f64(m_szp, 2), fmt_f64(m_cusz, 2),
                     fmt_f64(m_sz3, 2),
                     fmt_f64(ceresz_gbps / m_cuszp, 2) + "x"});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("averages: CereSZ %.2f GB/s, cuSZp %.2f GB/s -> %.2fx "
              "(paper: 457.35 vs ~93, 4.9x)\n",
              ceresz_sum / cells, cuszp_sum / cells,
              ceresz_sum / cuszp_sum);
  std::printf("shape checks: CereSZ wins every cell; throughput falls as "
              "the bound tightens (fewer zero blocks, longer encoding); "
              "SZ is orders of magnitude slower.\n");
  return 0;
}
