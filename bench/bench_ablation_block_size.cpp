// Ablation: block size 16 / 32 / 64 / 128 (Section 5.1.1: "a block size of
// 32 yields the highest compression ratio among the options considered").
// Small blocks pay more header/sign overhead; large blocks let one big
// residual inflate the fixed length of many elements.
#include "bench_util.h"

using namespace ceresz;

int main() {
  std::printf("=== Ablation: block size (ratio and per-block cycles) ===\n\n");

  const core::PeCostModel cost;
  TextTable table({"Dataset", "L=16", "L=32", "L=64", "L=128", "best"});
  const core::ErrorBound bound = core::ErrorBound::relative(1e-3);
  for (data::DatasetId id : data::kAllDatasets) {
    std::vector<f64> ratios;
    for (u32 L : {16u, 32u, 64u, 128u}) {
      core::CodecConfig cfg;
      cfg.block_size = L;
      const core::StreamCodec codec(cfg);
      f64 sum = 0;
      const auto& spec = data::dataset_spec(id);
      const u32 n = std::min<u32>(3, spec.fields_generated);
      for (u32 fi = 0; fi < n; ++fi) {
        const auto field =
            data::generate_field(id, fi, 42, bench::bench_scale(0.35));
        sum += codec.compress(field.view(), bound).compression_ratio();
      }
      ratios.push_back(sum / n);
    }
    const u32 sizes[] = {16, 32, 64, 128};
    const std::size_t best =
        std::max_element(ratios.begin(), ratios.end()) - ratios.begin();
    table.add_row({data::dataset_spec(id).name, fmt_f64(ratios[0], 2),
                   fmt_f64(ratios[1], 2), fmt_f64(ratios[2], 2),
                   fmt_f64(ratios[3], 2), "L=" + std::to_string(sizes[best])});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("per-block compression cycles (fl = 12):\n");
  TextTable cyc({"L", "cycles/block", "cycles/element"});
  for (u32 L : {16u, 32u, 64u, 128u}) {
    const Cycles c = cost.compress_block_cycles(L, 12, false);
    cyc.add_row({std::to_string(L), std::to_string(c),
                 fmt_f64(static_cast<f64>(c) / L, 1)});
  }
  std::printf("%s\n", cyc.render().c_str());
  std::printf("shape check: ratios peak at small-to-mid block sizes (the "
              "paper picks 32, which also matches the fabric transfer "
              "units); per-element cycle cost is block-size independent, "
              "so the choice is ratio- and SRAM-driven.\n");
  return 0;
}
