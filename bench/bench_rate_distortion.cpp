// Rate-distortion curves (Section 5.4): PSNR vs bit rate across error
// bounds for CereSZ, cuSZp, and SZ on the NYX velocity_x field.
//
// Compressors sharing pre-quantization (CereSZ, cuSZp, cuSZ) reconstruct
// identically at a given bound, so their curves differ only horizontally
// (bit rate = 32 / ratio); CereSZ's 4-byte headers shift it slightly right
// of cuSZp. SZ sits far left (much lower bit rate at the same PSNR).
#include "bench_util.h"

using namespace ceresz;

int main() {
  std::printf("=== Rate-distortion: NYX velocity_x ===\n\n");

  const data::Field field = data::generate_field(
      data::DatasetId::kNyx, 1, 42, bench::bench_scale(0.5));
  const core::StreamCodec ceresz_codec;
  const auto cuszp = baselines::make_cuszp();
  const auto sz3 = baselines::make_sz3();

  TextTable table({"REL", "PSNR dB", "CereSZ bits/val", "cuSZp bits/val",
                   "SZ bits/val"});
  for (f64 rel : {3e-2, 1e-2, 3e-3, 1e-3, 3e-4, 1e-4, 3e-5}) {
    const core::ErrorBound bound = core::ErrorBound::relative(rel);
    const auto r = ceresz_codec.compress(field.view(), bound);
    const auto back = ceresz_codec.decompress(r.stream);
    const f64 psnr = metrics::psnr(field.view(), back);

    baselines::BaselineStats s_cuszp, s_sz3;
    cuszp->compress(field, bound, &s_cuszp);
    sz3->compress(field, bound, &s_sz3);

    table.add_row({bench::rel_name(rel).c_str(), fmt_f64(psnr, 2),
                   fmt_f64(32.0 / r.compression_ratio(), 3),
                   fmt_f64(32.0 / s_cuszp.compression_ratio(), 3),
                   fmt_f64(32.0 / s_sz3.compression_ratio(), 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check: PSNR is set by the bound alone (shared "
              "pre-quantization); at every PSNR, SZ needs the fewest bits, "
              "cuSZp fewer than CereSZ (header width) — i.e. CereSZ's "
              "rate-distortion curve is slightly more conservative than "
              "cuSZp's, as Section 5.4 states.\n");
  return 0;
}
