// Table 3: breakdown of Fixed-Length Encoding into Sign, Max, GetLength,
// and Bit-shuffle (cycles per block, max across blocks), demonstrating the
// "uniform encoding overhead per effective bit" observation.
#include "bench_util.h"
#include "mapping/block_work.h"

using namespace ceresz;

int main() {
  std::printf("=== Table 3: breakdown cycles for Fixed-Length Encoding ===\n");
  std::printf("paper: Bit-shuffle 33609@fl17, 25675@fl13, 23694@fl12 — "
              "~1975 cycles per effective bit\n\n");

  const core::CodecConfig codec;
  const core::PeCostModel cost;
  TextTable table({"Dataset", "FL Encd.", "Sign", "Max", "GetLength",
                   "Bit-shuffle", "enc. length", "cycles/bit"});
  const data::DatasetId ids[] = {data::DatasetId::kCesmAtm,
                                 data::DatasetId::kHacc,
                                 data::DatasetId::kQmcpack};
  for (data::DatasetId id : ids) {
    const data::Field field =
        data::generate_field(id, 0, 42, bench::bench_scale(0.35));
    const f64 eps = core::ErrorBound::relative(1e-4).resolve(
        summarize(field.view()).range());
    const mapping::SubStageExecutor exec(codec, cost, eps);
    Cycles sign_max = 0, max_max = 0, len_max = 0, shuffle_max = 0;
    u32 fl_at_max = 0;
    const u64 blocks = field.size() / 32;
    for (u64 b = 0; b < blocks; ++b) {
      mapping::BlockWork work;
      work.input.assign(field.values.begin() + b * 32,
                        field.values.begin() + (b + 1) * 32);
      exec.apply(work, {core::SubStageKind::kPrequantMul});
      exec.apply(work, {core::SubStageKind::kPrequantAdd});
      exec.apply(work, {core::SubStageKind::kLorenzo});
      const Cycles sign = exec.apply(work, {core::SubStageKind::kSign});
      const Cycles mx = exec.apply(work, {core::SubStageKind::kMax});
      const Cycles len = exec.apply(work, {core::SubStageKind::kGetLength});
      Cycles shuffle = 0;
      for (u32 k = 0; k < work.fl && !work.zero; ++k) {
        shuffle += exec.apply(
            work, {core::SubStageKind::kShuffleBit, k, k + 1 == work.fl});
      }
      sign_max = std::max(sign_max, sign);
      max_max = std::max(max_max, mx);
      len_max = std::max(len_max, len);
      if (shuffle > shuffle_max) {
        shuffle_max = shuffle;
        fl_at_max = work.fl;
      }
    }
    const Cycles total = sign_max + max_max + len_max + shuffle_max;
    table.add_row(
        {data::dataset_spec(id).name, std::to_string(total),
         std::to_string(sign_max), std::to_string(max_max),
         std::to_string(len_max), std::to_string(shuffle_max),
         std::to_string(fl_at_max),
         fl_at_max ? fmt_f64(static_cast<f64>(shuffle_max) / fl_at_max, 1)
                   : "-"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check: Sign/Max/GetLength are stable across datasets; "
              "Bit-shuffle varies with the encoding length at a uniform "
              "per-bit cost, so it can be segmented into 1-bit shuffle "
              "sub-stages for the pipeline scheduler.\n");
  return 0;
}
