// Multi-client load generator for the ceresz_server compression
// service: N client threads drive concurrent COMPRESS + DECOMPRESS
// streams over loopback TCP and report per-opcode p50/p95/p99 latency
// (obs::analysis::LatencyDigest), throughput, and correctness.
//
//   bench_service_load [--port P [--host H]] [--clients N] [--requests M]
//                      [--elems E] [--rel B] [--workers W] [--history F]
//                      [--connect-timeout-ms T] [--chaos] [--chaos-seed S]
//                      [--trace-out F] [--server-trace-out F]
//                      [--merged-trace-out F]
//
// With --port the bench drives an already-running ceresz_server (how
// the CI smoke step uses it, retrying the connect while the daemon
// starts); without it, a ServiceServer is hosted in-process on an
// ephemeral port with --workers connection workers.
//
// --trace-out records every client's request/attempt span tree (one
// shared obs::Tracer — per-thread rings, so N clients write without
// locking) to a Chrome trace file. When self-hosting, the server side
// is traced too (--server-trace-out to keep that file), the two traces
// are stitched on the CSNP v4 trace context (obs/analysis/stitch.h),
// and the report adds the cross-process breakdown — network vs queue
// wait vs engine time, attempt match rate, server span coverage —
// next to the latency percentiles, plus "service_trace" history
// records when --history is given. --merged-trace-out writes both
// processes on one aligned timeline for chrome://tracing. Against a
// remote daemon (--port) only the client trace is written; stitch it
// with the daemon's own --trace-out via `ceresz_report --stitch`.
//
// --chaos routes every client through an in-process net::ChaosProxy
// running a seeded NetFaultPlan (resets, delays, dribbled writes,
// mid-frame truncations, bit corruption) and switches the clients to a
// resilient RetryPolicy. The report then adds goodput (successful
// uncompressed MB/s through the storm), the success rate, and the
// retry/reconnect totals; corruption the CRC catches surfaces as typed
// errors, which are EXPECTED here — only silent corruption (a
// successful response whose bytes differ from the local engine path)
// or an untyped failure fails the run.
//
// Correctness is asserted on every request, not sampled: the container
// returned by the service must be byte-identical to a local
// ParallelEngine::compress of the same data (the CLI path), and the
// service's decompression must be byte-identical to decompressing that
// container locally. Any mismatch or unexpected error frame fails the
// run (exit 1).
//
// With --history F, latency and throughput records are appended in the
// bench-history JSONL format, so ceresz_perfgate regression-gates
// service latency against bench/history/baseline.jsonl. Wall-clock
// percentiles get a generous noise band (shared CI runners); the
// compression ratio is deterministic and gets a tight one.
#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <fstream>

#include "bench_util.h"
#include "net/chaos.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/analysis/digest.h"
#include "obs/analysis/stitch.h"
#include "obs/analysis/trace_analysis.h"
#include "obs/trace.h"

using namespace ceresz;

namespace {

struct Args {
  std::string host = "127.0.0.1";
  u16 port = 0;  ///< 0 = self-host an in-process server
  u32 clients = 4;
  u32 requests = 16;  ///< compress+decompress pairs per client
  u64 elems = u64{256} * 1024;
  f64 rel = 1e-3;
  u32 workers = 2;  ///< self-hosted server's connection workers
  u32 connect_timeout_ms = 0;
  bool chaos = false;
  u64 chaos_seed = 42;
  std::string history_path;
  std::string trace_out;         ///< client-side Chrome trace
  std::string server_trace_out;  ///< self-hosted server's trace
  std::string merged_trace_out;  ///< stitched cross-process timeline
};

int usage() {
  std::fprintf(stderr,
               "usage: bench_service_load [--port P [--host H]] "
               "[--clients N] [--requests M]\n"
               "                          [--elems E] [--rel B] "
               "[--workers W] [--history F]\n"
               "                          [--connect-timeout-ms T] "
               "[--chaos] [--chaos-seed S]\n"
               "                          [--trace-out F] "
               "[--server-trace-out F] [--merged-trace-out F]\n");
  return 2;
}

/// Latency digests shared by the client threads.
struct SharedDigests {
  std::mutex mu;
  obs::analysis::LatencyDigest compress;
  obs::analysis::LatencyDigest decompress;
};

/// Smooth sine wave plus mild noise — the same synthetic "scientific"
/// field shape the test suite uses, seeded per client.
std::vector<f32> smooth_signal(u64 n, u64 seed) {
  Rng rng(seed);
  std::vector<f32> v(n);
  for (u64 i = 0; i < n; ++i) {
    const f64 x = static_cast<f64>(i) / 64.0;
    v[i] = static_cast<f32>(std::sin(x) + 0.4 * std::cos(2.7 * x) +
                            0.01 * rng.next_gaussian());
  }
  return v;
}

/// Connect with retries: the CI smoke step races the daemon's startup
/// (and under chaos the proxy may RST the first connections).
void connect_with_retry(net::CereszClient& client, const std::string& host,
                        u16 port) {
  for (int attempt = 0;; ++attempt) {
    try {
      client.connect(host, port);
      return;
    } catch (const Error&) {
      if (attempt >= 50) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

/// What the retry machinery across every client did — summed when each
/// client thread finishes.
struct RetryTotals {
  std::atomic<u64> attempts{0};
  std::atomic<u64> retries{0};
  std::atomic<u64> reconnects{0};
  std::atomic<u64> timeouts{0};
  std::atomic<u64> busy{0};
  std::atomic<u64> draining{0};

  void absorb(const net::ClientStats& s) {
    attempts.fetch_add(s.attempts);
    retries.fetch_add(s.retries);
    reconnects.fetch_add(s.reconnects);
    timeouts.fetch_add(s.timeouts);
    busy.fetch_add(s.busy);
    draining.fetch_add(s.draining);
  }
};

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* s = nullptr;
    if (a == "--host" && (s = value())) {
      args.host = s;
    } else if (a == "--port" && (s = value())) {
      args.port = static_cast<u16>(std::atoi(s));
    } else if (a == "--clients" && (s = value())) {
      args.clients = static_cast<u32>(std::atoi(s));
    } else if (a == "--requests" && (s = value())) {
      args.requests = static_cast<u32>(std::atoi(s));
    } else if (a == "--elems" && (s = value())) {
      args.elems = static_cast<u64>(std::atoll(s));
    } else if (a == "--rel" && (s = value())) {
      args.rel = std::atof(s);
    } else if (a == "--workers" && (s = value())) {
      args.workers = static_cast<u32>(std::atoi(s));
    } else if (a == "--connect-timeout-ms" && (s = value())) {
      args.connect_timeout_ms = static_cast<u32>(std::atoi(s));
    } else if (a == "--chaos") {
      args.chaos = true;
    } else if (a == "--chaos-seed" && (s = value())) {
      args.chaos_seed = static_cast<u64>(std::atoll(s));
    } else if (a == "--history" && (s = value())) {
      args.history_path = s;
    } else if (a == "--trace-out" && (s = value())) {
      args.trace_out = s;
    } else if (a == "--server-trace-out" && (s = value())) {
      args.server_trace_out = s;
    } else if (a == "--merged-trace-out" && (s = value())) {
      args.merged_trace_out = s;
    } else {
      return usage();
    }
  }
  if (args.clients == 0 || args.requests == 0 || args.elems == 0 ||
      args.rel <= 0.0) {
    return usage();
  }

  // One tracer per process side. Client threads share client_tracer
  // (per-thread rings); the self-hosted server gets its own, standing in
  // for the daemon's --trace-out so the two can be stitched in-process.
  const bool tracing = !args.trace_out.empty() ||
                       !args.server_trace_out.empty() ||
                       !args.merged_trace_out.empty();
  std::unique_ptr<obs::Tracer> client_tracer;
  std::unique_ptr<obs::Tracer> server_tracer;
  if (tracing) {
    client_tracer = std::make_unique<obs::Tracer>();
    client_tracer->set_process_name(obs::kHostPid, "bench_service_load");
  }

  // Self-host unless pointed at a live daemon. The self-hosted server
  // uses default EngineOptions — the same configuration the daemon
  // defaults to, so the byte-identity reference below matches both.
  std::unique_ptr<net::ServiceServer> self_hosted;
  u16 port = args.port;
  if (port == 0) {
    net::ServerOptions sopt;
    sopt.workers = args.workers;
    if (tracing) {
      server_tracer = std::make_unique<obs::Tracer>();
      server_tracer->set_process_name(obs::kHostPid, "ceresz_server");
      sopt.tracer = server_tracer.get();
    }
    self_hosted = std::make_unique<net::ServiceServer>(std::move(sopt));
    self_hosted->start();
    port = self_hosted->port();
    std::printf("# self-hosted ceresz_server on 127.0.0.1:%u (workers=%u)\n",
                static_cast<unsigned>(port), args.workers);
  } else {
    std::printf("# driving ceresz_server at %s:%u\n", args.host.c_str(),
                static_cast<unsigned>(port));
    if (!args.server_trace_out.empty() || !args.merged_trace_out.empty()) {
      std::fprintf(stderr,
                   "--server-trace-out/--merged-trace-out need the "
                   "self-hosted server; with --port use the daemon's "
                   "--trace-out and `ceresz_report --stitch`\n");
      return usage();
    }
  }

  // Chaos: interpose the fault-injecting proxy and aim clients at it.
  std::unique_ptr<net::ChaosProxy> proxy;
  std::string target_host = args.host;
  u16 target_port = port;
  if (args.chaos) {
    net::NetChaosSpec spec;
    spec.reset_frac = 0.12;
    spec.blackhole_frac = 0.03;
    spec.delay_frac = 0.15;
    spec.short_write_frac = 0.08;
    spec.truncate_frac = 0.12;
    spec.corrupt_frac = 0.05;
    spec.slice_bytes = 4096;  // dribble, but not so fine that MBs crawl
    proxy = std::make_unique<net::ChaosProxy>(
        target_host, target_port,
        net::NetFaultPlan::random(args.chaos_seed, spec));
    proxy->start();
    target_host = "127.0.0.1";
    target_port = proxy->port();
    std::printf("# chaos proxy on 127.0.0.1:%u (seed=%llu)\n",
                static_cast<unsigned>(target_port),
                static_cast<unsigned long long>(args.chaos_seed));
  }

  // Fail-fast clients against a healthy network; hardened ones through
  // the storm (bounded attempts, capped jittered backoff, per-attempt
  // and connect timeouts so black holes cost seconds, not forever).
  net::RetryPolicy policy;
  policy.connect_timeout_ms = args.connect_timeout_ms;
  if (args.chaos) {
    policy.max_attempts = 10;
    policy.backoff_us = 1'000;
    policy.backoff_cap_us = 20'000;
    policy.retry_budget = u64{1} << 40;  // the bench bounds work, not budget
    policy.attempt_timeout_ms = 3'000;
    if (policy.connect_timeout_ms == 0) policy.connect_timeout_ms = 2'000;
  }

  const core::ErrorBound bound = core::ErrorBound::relative(args.rel);
  SharedDigests digests;
  std::atomic<u64> failures{0};
  std::atomic<u64> busy_retries{0};
  std::atomic<u64> typed_errors{0};
  std::atomic<u64> attempted_pairs{0};
  std::atomic<u64> success_pairs{0};
  std::atomic<u64> service_compressed_bytes{0};
  RetryTotals totals;

  // BUSY is backpressure, not an error: the server sheds load it will
  // not queue, and a well-behaved client backs off and retries. The
  // measured latency is the successful attempt only; the retry count is
  // reported so saturation is visible. DRAINING is a different animal —
  // the server is going away, so retrying against it would spin until
  // shutdown; it is counted separately and rethrown as a typed outcome.
  std::atomic<u64> draining_rejections{0};
  auto with_backoff = [&busy_retries, &draining_rejections](auto&& op) {
    for (;;) {
      try {
        return op();
      } catch (const net::ServiceError& e) {
        if (e.status() == net::Status::kDraining) {
          draining_rejections.fetch_add(1);
          throw;
        }
        if (e.status() != net::Status::kBusy) throw;
        busy_retries.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
  };

  const f64 wall = bench::time_seconds([&] {
    std::vector<std::thread> threads;
    threads.reserve(args.clients);
    for (u32 c = 0; c < args.clients; ++c) {
      threads.emplace_back([&, c] {
        net::RetryPolicy client_policy = policy;
        client_policy.jitter_seed = args.chaos_seed * 7919 + c;
        net::CereszClient client(client_policy, /*reg=*/nullptr,
                                 client_tracer.get());
        try {
          connect_with_retry(client, target_host, target_port);

          // Per-client field, deterministic per client index; the local
          // engine result is THE reference: the CLI path's bytes.
          const auto data = smooth_signal(args.elems, /*seed=*/1000 + c);
          const engine::ParallelEngine local_engine{engine::EngineOptions{}};
          const auto local = local_engine.compress(data, bound);
          const auto local_back = local_engine.decompress(local.stream);

          for (u32 r = 0; r < args.requests; ++r) {
            attempted_pairs.fetch_add(1);
            std::vector<u8> stream;
            std::vector<f32> values;
            f64 compress_s = 0.0;
            f64 decompress_s = 0.0;
            try {
              stream = with_backoff([&] {
                const u64 t0 = now_ns();
                auto out = client.compress(data, bound);
                compress_s = static_cast<f64>(now_ns() - t0) * 1e-9;
                return out;
              });

              values = with_backoff([&] {
                const u64 t0 = now_ns();
                auto out = client.decompress(stream);
                decompress_s = static_cast<f64>(now_ns() - t0) * 1e-9;
                return out;
              });
            } catch (const Error& e) {
              // Under chaos a request may still die after every retry —
              // as a TYPED outcome (CRC-caught corruption, an error
              // frame, a transport failure the budget gave up on). That
              // is the contract holding, not a bench failure. Without
              // --chaos it is a real failure.
              if (!args.chaos) throw;
              typed_errors.fetch_add(1);
              if (!client.connected()) {
                connect_with_retry(client, target_host, target_port);
              }
              continue;
            }

            bool ok = stream.size() == local.stream.size() &&
                      std::memcmp(stream.data(), local.stream.data(),
                                  stream.size()) == 0;
            ok = ok && values.size() == local_back.values.size() &&
                 std::memcmp(values.data(), local_back.values.data(),
                             values.size() * sizeof(f32)) == 0;
            if (!ok) {
              // Silent corruption: the one outcome nothing may excuse.
              failures.fetch_add(1);
              std::fprintf(stderr,
                           "client %u request %u: service output differs "
                           "from the local engine path\n",
                           c, r);
            } else {
              success_pairs.fetch_add(1);
            }
            service_compressed_bytes.store(stream.size());

            std::lock_guard lock(digests.mu);
            digests.compress.observe(compress_s);
            digests.decompress.observe(decompress_s);
          }
        } catch (const std::exception& e) {
          failures.fetch_add(1);
          std::fprintf(stderr, "client %u: %s\n", c, e.what());
        }
        totals.absorb(client.stats());
      });
    }
    for (auto& t : threads) t.join();
  });

  const u64 total_requests = u64{args.clients} * args.requests * 2;
  const f64 rps = wall > 0.0 ? static_cast<f64>(total_requests) / wall : 0.0;
  const f64 uncompressed_mb =
      static_cast<f64>(args.elems) * sizeof(f32) / 1e6;
  const f64 ratio =
      service_compressed_bytes.load() > 0
          ? static_cast<f64>(args.elems * sizeof(f32)) /
                static_cast<f64>(service_compressed_bytes.load())
          : 0.0;

  std::printf("# clients=%u requests/client=%u elems=%llu (%.1f MB) "
              "rel=%g\n",
              args.clients, args.requests,
              static_cast<unsigned long long>(args.elems), uncompressed_mb,
              args.rel);
  const auto row = [](const char* op,
                      const obs::analysis::LatencyDigest& d) {
    std::printf("%-10s  n=%-5llu  p50=%8.3f ms  p95=%8.3f ms  "
                "p99=%8.3f ms  mean=%8.3f ms  max=%8.3f ms\n",
                op, static_cast<unsigned long long>(d.count()),
                d.p50() * 1e3, d.p95() * 1e3, d.p99() * 1e3, d.mean() * 1e3,
                d.max() * 1e3);
  };
  row("compress", digests.compress);
  row("decompress", digests.decompress);
  std::printf("total       %llu requests in %.3f s  (%.1f req/s)  "
              "ratio=%.3f  busy-retries=%llu  draining=%llu  "
              "failures=%llu\n",
              static_cast<unsigned long long>(total_requests), wall, rps,
              ratio, static_cast<unsigned long long>(busy_retries.load()),
              static_cast<unsigned long long>(draining_rejections.load()),
              static_cast<unsigned long long>(failures.load()));

  // Chaos scorecard: goodput counts only byte-identical round trips,
  // so every injected fault shows up either here (as lost goodput /
  // typed errors) or in the retry totals — never as silence.
  const u64 pairs_attempted = attempted_pairs.load();
  const u64 pairs_ok = success_pairs.load();
  const f64 success_rate =
      pairs_attempted > 0
          ? static_cast<f64>(pairs_ok) / static_cast<f64>(pairs_attempted)
          : 0.0;
  const f64 goodput_mb_s =
      wall > 0.0 ? static_cast<f64>(pairs_ok) * uncompressed_mb / wall : 0.0;
  const f64 retries_per_request =
      pairs_attempted > 0
          ? static_cast<f64>(totals.retries.load()) /
                static_cast<f64>(pairs_attempted * 2)
          : 0.0;
  if (args.chaos) {
    const auto& ps = proxy->stats();
    std::printf("chaos       conns=%llu resets=%llu blackholes=%llu "
                "delays=%llu dribble-slices=%llu truncations=%llu "
                "corruptions=%llu\n",
                static_cast<unsigned long long>(ps.connections.load()),
                static_cast<unsigned long long>(ps.resets.load()),
                static_cast<unsigned long long>(ps.blackholes.load()),
                static_cast<unsigned long long>(ps.delays.load()),
                static_cast<unsigned long long>(ps.short_write_slices.load()),
                static_cast<unsigned long long>(ps.truncations.load()),
                static_cast<unsigned long long>(ps.corruptions.load()));
    std::printf("resilience  goodput=%.1f MB/s  success=%.1f%% "
                "(%llu/%llu pairs)  retries=%llu  reconnects=%llu  "
                "timeouts=%llu  busy=%llu  draining=%llu  "
                "typed-errors=%llu\n",
                goodput_mb_s, success_rate * 100.0,
                static_cast<unsigned long long>(pairs_ok),
                static_cast<unsigned long long>(pairs_attempted),
                static_cast<unsigned long long>(totals.retries.load()),
                static_cast<unsigned long long>(totals.reconnects.load()),
                static_cast<unsigned long long>(totals.timeouts.load()),
                static_cast<unsigned long long>(totals.busy.load()),
                static_cast<unsigned long long>(totals.draining.load()),
                static_cast<unsigned long long>(typed_errors.load()));
  }

  if (args.chaos) {
    // Chaos records land in their own bench ("service_chaos") with very
    // wide noise bands: fault schedules differ per seed and runner, so
    // for now the gate only warns on drift here — the hard failure
    // condition stays silent corruption, enforced by exit code.
    bench::HistoryWriter history(args.history_path);
    const f64 kChaosNoise = 5.0;
    history.add("service_chaos", "goodput_mb_s", goodput_mb_s, "MB/s",
                "higher", kChaosNoise);
    history.add("service_chaos", "success_rate", success_rate, "frac",
                "higher", kChaosNoise);
    history.add("service_chaos", "retries_per_request", retries_per_request,
                "x", "lower", kChaosNoise);
  } else {
    // Wall-clock service latency on a shared runner is noisy; the gate
    // bands are set so only a multi-x regression (a wedged queue, a
    // lost worker) trips it. The ratio is fully deterministic.
    bench::HistoryWriter history(args.history_path);
    const f64 kLatencyNoise = 1.0;
    history.add("service_load", "compress_p50_ms",
                digests.compress.p50() * 1e3, "ms", "lower", kLatencyNoise);
    history.add("service_load", "compress_p95_ms",
                digests.compress.p95() * 1e3, "ms", "lower", kLatencyNoise);
    history.add("service_load", "compress_p99_ms",
                digests.compress.p99() * 1e3, "ms", "lower", kLatencyNoise);
    history.add("service_load", "decompress_p50_ms",
                digests.decompress.p50() * 1e3, "ms", "lower",
                kLatencyNoise);
    history.add("service_load", "decompress_p95_ms",
                digests.decompress.p95() * 1e3, "ms", "lower",
                kLatencyNoise);
    history.add("service_load", "decompress_p99_ms",
                digests.decompress.p99() * 1e3, "ms", "lower",
                kLatencyNoise);
    history.add("service_load", "requests_per_sec", rps, "req/s", "higher",
                kLatencyNoise);
    history.add("service_load", "compression_ratio", ratio, "x", "higher",
                0.02);
  }

  if (proxy) proxy->stop();
  if (self_hosted) self_hosted->stop();

  // Tracing post-mortem: everything is quiescent now (clients joined,
  // server stopped), so the rings can be snapshotted and stitched.
  bool stitch_fail = false;
  if (tracing) {
    namespace analysis = obs::analysis;
    const auto write_trace = [](const std::string& path,
                                const std::string& json) {
      std::ofstream out(path, std::ios::binary);
      out << json;
      if (!out.good()) {
        std::fprintf(stderr, "trace: cannot write %s\n", path.c_str());
        return false;
      }
      return true;
    };
    if (!args.trace_out.empty()) {
      stitch_fail |=
          !write_trace(args.trace_out, client_tracer->chrome_trace_json());
    }
    if (server_tracer && !args.server_trace_out.empty()) {
      stitch_fail |= !write_trace(args.server_trace_out,
                                  server_tracer->chrome_trace_json());
    }
    if (server_tracer) {
      const analysis::TraceData client_data =
          analysis::from_tracer(*client_tracer);
      const analysis::TraceData server_data =
          analysis::from_tracer(*server_tracer);
      const analysis::StitchReport stitched =
          analysis::stitch_traces(client_data, server_data);
      const auto& t = stitched.totals;
      std::printf("stitched    requests=%llu  attempts=%llu  "
                  "matched=%llu (%.1f%%)  server-coverage=%.1f%%\n",
                  static_cast<unsigned long long>(t.requests),
                  static_cast<unsigned long long>(t.attempts),
                  static_cast<unsigned long long>(t.matched_attempts),
                  t.match_rate * 100.0, t.server_coverage * 100.0);
      std::printf("breakdown   network=%8.3f ms  queue-wait=%8.3f ms  "
                  "engine=%8.3f ms  server=%8.3f ms  "
                  "retry-overhead=%8.3f ms\n",
                  t.mean_network_ns * 1e-6, t.mean_queue_wait_ns * 1e-6,
                  t.mean_engine_ns * 1e-6, t.mean_server_ns * 1e-6,
                  t.mean_retry_overhead_ns * 1e-6);
      if (!args.merged_trace_out.empty()) {
        stitch_fail |= !write_trace(
            args.merged_trace_out,
            analysis::merged_chrome_trace_json(client_data, server_data,
                                               stitched));
      }
      bench::HistoryWriter history(args.history_path);
      for (const auto& rec : analysis::stitch_history_records(stitched)) {
        history.add_record(rec);
      }
      // The tracing acceptance contract (docs/observability.md): on a
      // clean run every attempt joins exactly one server span tree and
      // request-tagged spans cover >= 95% of server busy time. Shed /
      // faulted attempts legitimately have no server-side tree, so the
      // 1:1 check only applies when nothing was shed.
      const bool clean_run = !args.chaos && busy_retries.load() == 0 &&
                             draining_rejections.load() == 0 &&
                             typed_errors.load() == 0;
      if (clean_run && t.matched_attempts != t.attempts) {
        std::fprintf(stderr,
                     "stitch: %llu of %llu attempts missing a server "
                     "span tree on a clean run\n",
                     static_cast<unsigned long long>(t.attempts -
                                                     t.matched_attempts),
                     static_cast<unsigned long long>(t.attempts));
        stitch_fail = true;
      }
      if (t.server_coverage < 0.95) {
        std::fprintf(stderr,
                     "stitch: request-tagged spans cover only %.1f%% of "
                     "server busy time (need >= 95%%)\n",
                     t.server_coverage * 100.0);
        stitch_fail = true;
      }
    }
  }

  return failures.load() == 0 && !stitch_fail ? 0 : 1;
}
