// Multi-tenant mix bench for the tenancy-enabled compression service:
// N tenants — each a CSNP v3 client with its own tenant id, scheduling
// priority, and error bound — share one ceresz_server wafer
// coordinator, and the bench asserts the tentpole property end to end:
// every tenant's bytes under space-sharing are identical to its solo
// (local engine) run at the same bound, while per-tenant p50/p95/p99
// latency is reported and regression-gated.
//
//   bench_tenant_mix [--port P [--host H]] [--tenants N] [--requests M]
//                    [--elems E] [--workers W] [--history F]
//                    [--connect-timeout-ms T] [--warn-p95-ms MS]
//
// --warn-p95-ms arms a per-tenant latency alarm: any tenant whose
// compress or decompress p95 exceeds the threshold gets a WARN line
// naming the tenant and its priority — the bench-side mirror of the
// server's ceresz_tenant_<id>_request_seconds histograms, which let a
// scraper set the same alarm on a live daemon. Warnings do not change
// the exit code (shared-runner wall clock is advisory; byte identity
// is the hard property).
//
// With --port the bench drives an already-running daemon started with
// --tenants (the CI tenant-mix smoke step); without it, a ServiceServer
// with tenancy enabled is hosted in-process on an ephemeral port.
//
// Tenants cycle priorities interactive → standard → batch and use
// distinct relative bounds (1e-2 / id), so the mix genuinely exercises
// per-tenant ε routing, not one configuration three times. A tenant the
// coordinator sheds (BUSY) backs off and retries — shed counts land in
// the report so admission pressure is visible.
//
// With --history F, records land under bench="tenant_mix" with a wide
// warn-only noise band (5.0): shared-runner wall clock plus admission
// ordering make latency here advisory — the hard failure condition is
// byte divergence, enforced by exit code.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/analysis/digest.h"

using namespace ceresz;

namespace {

struct Args {
  std::string host = "127.0.0.1";
  u16 port = 0;  ///< 0 = self-host a tenancy-enabled server
  u32 tenants = 3;
  u32 requests = 8;  ///< compress+decompress pairs per tenant
  u64 elems = u64{64} * 1024;
  u32 workers = 2;
  u32 connect_timeout_ms = 0;
  f64 warn_p95_ms = 0.0;  ///< 0 = alarm disarmed
  std::string history_path;
};

int usage() {
  std::fprintf(stderr,
               "usage: bench_tenant_mix [--port P [--host H]] [--tenants N]\n"
               "                        [--requests M] [--elems E] "
               "[--workers W]\n"
               "                        [--history F] "
               "[--connect-timeout-ms T] [--warn-p95-ms MS]\n");
  return 2;
}

std::vector<f32> smooth_signal(u64 n, u64 seed) {
  Rng rng(seed);
  std::vector<f32> v(n);
  for (u64 i = 0; i < n; ++i) {
    const f64 x = static_cast<f64>(i) / 64.0;
    v[i] = static_cast<f32>(std::sin(x) + 0.4 * std::cos(2.7 * x) +
                            0.01 * rng.next_gaussian());
  }
  return v;
}

void connect_with_retry(net::CereszClient& client, const std::string& host,
                        u16 port) {
  for (int attempt = 0;; ++attempt) {
    try {
      client.connect(host, port);
      return;
    } catch (const Error&) {
      if (attempt >= 50) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

u8 priority_for(u32 tenant_index) {
  switch (tenant_index % 3) {
    case 0: return net::kPriorityInteractive;
    case 1: return net::kPriorityStandard;
    default: return net::kPriorityBatch;
  }
}

const char* priority_label(u8 p) {
  return p == net::kPriorityInteractive ? "interactive"
         : p == net::kPriorityBatch     ? "batch"
                                        : "standard";
}

/// Everything one tenant measured, merged after its thread joins.
struct TenantReport {
  obs::analysis::LatencyDigest compress;
  obs::analysis::LatencyDigest decompress;
  u64 busy_retries = 0;
  u64 pairs_ok = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* s = nullptr;
    if (a == "--host" && (s = value())) {
      args.host = s;
    } else if (a == "--port" && (s = value())) {
      args.port = static_cast<u16>(std::atoi(s));
    } else if (a == "--tenants" && (s = value())) {
      args.tenants = static_cast<u32>(std::atoi(s));
    } else if (a == "--requests" && (s = value())) {
      args.requests = static_cast<u32>(std::atoi(s));
    } else if (a == "--elems" && (s = value())) {
      args.elems = static_cast<u64>(std::atoll(s));
    } else if (a == "--workers" && (s = value())) {
      args.workers = static_cast<u32>(std::atoi(s));
    } else if (a == "--connect-timeout-ms" && (s = value())) {
      args.connect_timeout_ms = static_cast<u32>(std::atoi(s));
    } else if (a == "--warn-p95-ms" && (s = value())) {
      args.warn_p95_ms = std::atof(s);
    } else if (a == "--history" && (s = value())) {
      args.history_path = s;
    } else {
      return usage();
    }
  }
  if (args.tenants == 0 || args.requests == 0 || args.elems == 0) {
    return usage();
  }

  std::unique_ptr<net::ServiceServer> self_hosted;
  u16 port = args.port;
  if (port == 0) {
    net::ServerOptions sopt;
    sopt.workers = args.workers;
    sopt.tenancy.enabled = true;
    sopt.tenancy.max_tenants = args.tenants;
    self_hosted = std::make_unique<net::ServiceServer>(std::move(sopt));
    self_hosted->start();
    port = self_hosted->port();
    std::printf("# self-hosted tenancy-enabled ceresz_server on "
                "127.0.0.1:%u (workers=%u, max-tenants=%u)\n",
                static_cast<unsigned>(port), args.workers, args.tenants);
  } else {
    std::printf("# driving ceresz_server at %s:%u (start it with --tenants)\n",
                args.host.c_str(), static_cast<unsigned>(port));
  }

  net::RetryPolicy policy;
  policy.connect_timeout_ms = args.connect_timeout_ms;

  std::atomic<u64> failures{0};
  std::vector<TenantReport> reports(args.tenants);
  std::mutex report_mu;

  const f64 wall = bench::time_seconds([&] {
    std::vector<std::thread> threads;
    threads.reserve(args.tenants);
    for (u32 t = 0; t < args.tenants; ++t) {
      threads.emplace_back([&, t] {
        const u32 tenant_id = t + 1;
        const u8 priority = priority_for(t);
        // Distinct bound per tenant: ε routing is part of what the mix
        // must prove, down to the exact bytes.
        const core::ErrorBound bound =
            core::ErrorBound::relative(1e-2 / static_cast<f64>(tenant_id));
        TenantReport report;
        net::CereszClient client(policy);
        client.set_tenant(tenant_id, priority);
        try {
          connect_with_retry(client, args.host, port);

          const auto data = smooth_signal(args.elems, /*seed=*/3000 + t);
          // Solo reference: the tenant alone on the default engine path
          // — the same bytes the CLI and an untenanted request produce.
          const engine::ParallelEngine local{engine::EngineOptions{}};
          const auto solo = local.compress(data, bound);
          const auto solo_back = local.decompress(solo.stream);

          for (u32 r = 0; r < args.requests; ++r) {
            std::vector<u8> stream;
            std::vector<f32> values;
            f64 compress_s = 0.0;
            f64 decompress_s = 0.0;
            // A shed tenant (BUSY, e.g. while the coordinator has no
            // row for it yet) backs off and retries; anything else is
            // a real failure on a healthy network.
            for (;;) {
              try {
                const u64 t0 = now_ns();
                stream = client.compress(data, bound);
                compress_s = static_cast<f64>(now_ns() - t0) * 1e-9;
                const u64 t1 = now_ns();
                values = client.decompress(stream);
                decompress_s = static_cast<f64>(now_ns() - t1) * 1e-9;
                break;
              } catch (const net::ServiceError& e) {
                if (e.status() != net::Status::kBusy) throw;
                ++report.busy_retries;
                std::this_thread::sleep_for(std::chrono::milliseconds(5));
              }
            }

            const bool ok =
                stream == solo.stream &&
                values.size() == solo_back.values.size() &&
                std::memcmp(values.data(), solo_back.values.data(),
                            values.size() * sizeof(f32)) == 0;
            if (!ok) {
              failures.fetch_add(1);
              std::fprintf(stderr,
                           "tenant %u request %u: shared output differs "
                           "from the solo run\n",
                           tenant_id, r);
            } else {
              ++report.pairs_ok;
            }
            report.compress.observe(compress_s);
            report.decompress.observe(decompress_s);
          }
        } catch (const std::exception& e) {
          failures.fetch_add(1);
          std::fprintf(stderr, "tenant %u: %s\n", tenant_id, e.what());
        }
        std::lock_guard lock(report_mu);
        reports[t] = std::move(report);
      });
    }
    for (auto& th : threads) th.join();
  });

  const u64 total_requests = u64{args.tenants} * args.requests * 2;
  const f64 rps = wall > 0.0 ? static_cast<f64>(total_requests) / wall : 0.0;
  std::printf("# tenants=%u requests/tenant=%u elems=%llu (%.1f MB)\n",
              args.tenants, args.requests,
              static_cast<unsigned long long>(args.elems),
              static_cast<f64>(args.elems) * sizeof(f32) / 1e6);

  // The gate records track the WORST tenant's p95: one starved lease is
  // exactly the regression a multi-tenant scheduler can introduce while
  // the aggregate mean stays flat.
  f64 worst_compress_p95 = 0.0;
  f64 worst_decompress_p95 = 0.0;
  u64 busy_total = 0;
  u64 pairs_ok = 0;
  for (u32 t = 0; t < args.tenants; ++t) {
    const TenantReport& r = reports[t];
    std::printf("tenant %-3u %-11s  ok=%-4llu  busy=%-4llu  "
                "compress p50=%7.3f p95=%7.3f p99=%7.3f ms  "
                "decompress p50=%7.3f p95=%7.3f p99=%7.3f ms\n",
                t + 1, priority_label(priority_for(t)),
                static_cast<unsigned long long>(r.pairs_ok),
                static_cast<unsigned long long>(r.busy_retries),
                r.compress.p50() * 1e3, r.compress.p95() * 1e3,
                r.compress.p99() * 1e3, r.decompress.p50() * 1e3,
                r.decompress.p95() * 1e3, r.decompress.p99() * 1e3);
    worst_compress_p95 = std::max(worst_compress_p95, r.compress.p95());
    worst_decompress_p95 = std::max(worst_decompress_p95, r.decompress.p95());
    busy_total += r.busy_retries;
    pairs_ok += r.pairs_ok;
    if (args.warn_p95_ms > 0.0) {
      const f64 worst_ms =
          std::max(r.compress.p95(), r.decompress.p95()) * 1e3;
      if (worst_ms > args.warn_p95_ms) {
        std::printf("WARN       tenant %u (%s) p95=%.3f ms exceeds "
                    "--warn-p95-ms %.3f\n",
                    t + 1, priority_label(priority_for(t)), worst_ms,
                    args.warn_p95_ms);
      }
    }
  }
  std::printf("total      %llu requests in %.3f s  (%.1f req/s)  "
              "ok-pairs=%llu  busy-retries=%llu  failures=%llu\n",
              static_cast<unsigned long long>(total_requests), wall, rps,
              static_cast<unsigned long long>(pairs_ok),
              static_cast<unsigned long long>(busy_total),
              static_cast<unsigned long long>(failures.load()));

  // Warn-only gate records: wide bands (5.0) because shared-runner wall
  // clock plus admission ordering dominate; byte identity — the hard
  // property — is enforced by the exit code, not the gate.
  bench::HistoryWriter history(args.history_path);
  const f64 kMixNoise = 5.0;
  history.add("tenant_mix", "compress_p95_ms", worst_compress_p95 * 1e3,
              "ms", "lower", kMixNoise);
  history.add("tenant_mix", "decompress_p95_ms", worst_decompress_p95 * 1e3,
              "ms", "lower", kMixNoise);
  history.add("tenant_mix", "requests_per_sec", rps, "req/s", "higher",
              kMixNoise);
  history.add("tenant_mix", "busy_retries", static_cast<f64>(busy_total),
              "count", "lower", kMixNoise);

  if (self_hosted) self_hosted->stop();
  return failures.load() == 0 ? 0 : 1;
}
