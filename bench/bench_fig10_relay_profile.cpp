// Figure 10: profiling the relay and execution time on each PE (QMCPack).
//  (a) data-relaying time per PE vs the number of columns — linear in TC,
//      verifying Formula (2)'s TC*C1;
//  (b) per-PE execution time vs pipeline length — inversely proportional,
//      verifying Formula (3)'s C/PL (+ PL*C2 forwarding overhead).
#include "bench_util.h"

using namespace ceresz;

int main() {
  std::printf("=== Figure 10: relay and execution profiling (QMCPack) ===\n\n");

  const data::Field field = data::generate_field(
      data::DatasetId::kQmcpack, 0, 42, bench::bench_scale(0.5));
  const core::ErrorBound bound = core::ErrorBound::relative(1e-3);

  // (a) Relay time per block at head 0 vs column count. We read it from
  // the simulator as (busy cycles spent relaying) / (blocks relayed),
  // and check the per-round total grows linearly with TC.
  std::printf("(a) data relaying per round at the first PE vs #columns\n");
  TextTable ta({"columns", "relays/round", "relay cycles/block (C1)",
                "relay cycles/round"});
  const mapping::PerfModel model(wse::WseConfig{});
  for (u32 cols : {4u, 8u, 16u, 32u, 64u}) {
    const auto sim =
        bench::simulate_compression(field.view(), bound, cols, 1, cols, 4);
    const auto& head = sim.run.row0_stats[0];
    // Head 0 relays (cols-1) blocks per round.
    const u64 rounds = head.messages_received;  // one kept block per round
    const f64 relay_per_round =
        rounds ? static_cast<f64>(head.messages_relayed) / rounds : 0;
    const Cycles c1 = model.relay_c1(32);
    ta.add_row({std::to_string(cols), fmt_f64(relay_per_round, 1),
                std::to_string(c1),
                fmt_f64(relay_per_round * static_cast<f64>(c1), 0)});
  }
  std::printf("%s\n", ta.render().c_str());
  std::printf("shape check: relays/round = columns - 1, so the per-round "
              "relay time grows linearly with TC (Formula 2).\n\n");

  // (b) Execution time per PE vs pipeline length.
  std::printf("(b) per-PE execution time vs pipeline length\n");
  TextTable tb({"pipeline length", "bottleneck stage cycles",
                "ideal C/PL", "balance"});
  mapping::StageProfiler profiler(core::CodecConfig{}, core::PeCostModel{});
  const auto profile = profiler.profile(field.view(), bound);
  mapping::GreedyScheduler sched(core::PeCostModel{}, 32);
  const auto stages =
      core::compression_substages(profile.est_fixed_length);
  for (u32 pl : {1u, 2u, 3u, 4u, 6u}) {
    const auto plan = sched.distribute(stages, pl);
    const f64 ideal =
        static_cast<f64>(plan.total_cycles()) / plan.length();
    tb.add_row({std::to_string(pl),
                std::to_string(plan.bottleneck_cycles()), fmt_f64(ideal, 0),
                fmt_f64(100.0 * ideal / plan.bottleneck_cycles(), 1) + "%"});
  }
  std::printf("%s\n", tb.render().c_str());
  std::printf("shape check: the bottleneck group shrinks ~inversely with "
              "the pipeline length until the longest indivisible sub-stage "
              "(Multiplication) dominates (Formula 3 / Section 4.2).\n");
  return 0;
}
