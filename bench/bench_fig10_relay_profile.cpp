// Figure 10: profiling the relay and execution time on each PE (QMCPack).
//  (a) data-relaying time per PE vs the number of columns — linear in TC,
//      verifying Formula (2)'s TC*C1;
//  (b) per-PE execution time vs pipeline length — inversely proportional,
//      verifying Formula (3)'s C/PL (+ PL*C2 forwarding overhead).
//
// With --trace-out/--metrics-out/--history, an additional instrumented
// run (fixed size, one row of 16 columns, PL=2 — deterministic, so the
// history records gate tightly) exports the trace + metrics pair that
// ceresz_report consumes and appends its makespan/throughput to the
// bench history for ceresz_perfgate.
#include <fstream>

#include "bench_util.h"

using namespace ceresz;

namespace {

/// The deterministic instrumented pass behind --trace-out/--metrics-out/
/// --history. Returns false when an output file went bad.
bool instrumented_run(const std::string& trace_out,
                      const std::string& metrics_out,
                      bench::HistoryWriter& history) {
  // Fixed workload, independent of CERESZ_BENCH_SCALE: committed
  // baselines must reproduce bit-for-bit on any machine.
  const data::Field field =
      data::generate_field(data::DatasetId::kQmcpack, 0, 42, 0.02);
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  wse::declare_fabric_metrics(registry);
  mapping::declare_mapper_metrics(registry);
  obs::declare_trace_metrics(registry);

  mapping::MapperOptions opt;
  opt.rows = 1;
  opt.cols = 16;
  opt.pipeline_length = 2;
  opt.max_exact_rows = 1;
  opt.collect_output = false;
  opt.tracer = &tracer;
  opt.metrics = &registry;
  const mapping::WaferMapper mapper(opt);
  const auto run =
      mapper.compress(field.view(), core::ErrorBound::relative(1e-3));

  history.add("fig10_relay_profile", "makespan_cycles",
              static_cast<f64>(run.makespan), "cycles", "lower", 0.01);
  history.add("fig10_relay_profile", "sim_gbps", run.throughput_gbps,
              "GB/s", "higher", 0.01);

  bool ok = history.ok();
  if (!trace_out.empty()) {
    std::ofstream os(trace_out, std::ios::binary);
    tracer.write_chrome_trace(os);
    ok = ok && os.good();
  }
  if (!metrics_out.empty()) {
    obs::export_trace_metrics(tracer, registry);
    const auto snap = registry.snapshot();
    std::ofstream os(metrics_out, std::ios::binary);
    os << (obs::is_prometheus_path(metrics_out) ? obs::to_prometheus(snap)
                                                : obs::to_json(snap));
    ok = ok && os.good();
  }
  std::printf("instrumented run: %llu blocks, makespan %llu cycles, "
              "%.3f GB/s simulated\n",
              static_cast<unsigned long long>(run.total_blocks),
              static_cast<unsigned long long>(run.makespan),
              run.throughput_gbps);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out, metrics_out, history_out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (a == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (a == "--history" && i + 1 < argc) {
      history_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_fig10_relay_profile [--trace-out FILE] "
                   "[--metrics-out FILE] [--history FILE]\n");
      return 2;
    }
  }

  std::printf("=== Figure 10: relay and execution profiling (QMCPack) ===\n\n");

  const data::Field field = data::generate_field(
      data::DatasetId::kQmcpack, 0, 42, bench::bench_scale(0.5));
  const core::ErrorBound bound = core::ErrorBound::relative(1e-3);

  // (a) Relay time per block at head 0 vs column count. We read it from
  // the simulator as (busy cycles spent relaying) / (blocks relayed),
  // and check the per-round total grows linearly with TC.
  std::printf("(a) data relaying per round at the first PE vs #columns\n");
  TextTable ta({"columns", "relays/round", "relay cycles/block (C1)",
                "relay cycles/round"});
  const mapping::PerfModel model(wse::WseConfig{});
  for (u32 cols : {4u, 8u, 16u, 32u, 64u}) {
    const auto sim =
        bench::simulate_compression(field.view(), bound, cols, 1, cols, 4);
    const auto& head = sim.run.row0_stats[0];
    // Head 0 relays (cols-1) blocks per round.
    const u64 rounds = head.messages_received;  // one kept block per round
    const f64 relay_per_round =
        rounds ? static_cast<f64>(head.messages_relayed) / rounds : 0;
    const Cycles c1 = model.relay_c1(32);
    ta.add_row({std::to_string(cols), fmt_f64(relay_per_round, 1),
                std::to_string(c1),
                fmt_f64(relay_per_round * static_cast<f64>(c1), 0)});
  }
  std::printf("%s\n", ta.render().c_str());
  std::printf("shape check: relays/round = columns - 1, so the per-round "
              "relay time grows linearly with TC (Formula 2).\n\n");

  // (b) Execution time per PE vs pipeline length.
  std::printf("(b) per-PE execution time vs pipeline length\n");
  TextTable tb({"pipeline length", "bottleneck stage cycles",
                "ideal C/PL", "balance"});
  mapping::StageProfiler profiler(core::CodecConfig{}, core::PeCostModel{});
  const auto profile = profiler.profile(field.view(), bound);
  mapping::GreedyScheduler sched(core::PeCostModel{}, 32);
  const auto stages =
      core::compression_substages(profile.est_fixed_length);
  for (u32 pl : {1u, 2u, 3u, 4u, 6u}) {
    const auto plan = sched.distribute(stages, pl);
    const f64 ideal =
        static_cast<f64>(plan.total_cycles()) / plan.length();
    tb.add_row({std::to_string(pl),
                std::to_string(plan.bottleneck_cycles()), fmt_f64(ideal, 0),
                fmt_f64(100.0 * ideal / plan.bottleneck_cycles(), 1) + "%"});
  }
  std::printf("%s\n", tb.render().c_str());
  std::printf("shape check: the bottleneck group shrinks ~inversely with "
              "the pipeline length until the longest indivisible sub-stage "
              "(Multiplication) dominates (Formula 3 / Section 4.2).\n");

  bool instrumented_ok = true;
  if (!trace_out.empty() || !metrics_out.empty() || !history_out.empty()) {
    bench::HistoryWriter history(history_out);
    std::printf("\n");
    instrumented_ok = instrumented_run(trace_out, metrics_out, history);
  }
  return instrumented_ok ? 0 : 1;
}
