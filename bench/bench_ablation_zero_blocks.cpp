// Ablation: the zero-block shortcut (Section 5.2). A looser bound creates
// more all-zero quantized blocks; the shortcut stores a bare header and
// skips encoding, which is the mechanism behind the error-bound ->
// throughput coupling. Disabling it flattens the curve.
#include "bench_util.h"

using namespace ceresz;

int main() {
  std::printf("=== Ablation: zero-block shortcut on/off (RTM) ===\n\n");

  const data::Field field =
      data::generate_field(data::DatasetId::kRtm, 0, 42, bench::bench_scale(0.4));

  TextTable table({"REL", "zero blocks", "GB/s with shortcut",
                   "GB/s without", "gain", "ratio with", "ratio without"});
  for (f64 rel : {1e-1, 1e-2, 1e-3, 1e-4}) {
    const core::ErrorBound bound = core::ErrorBound::relative(rel);

    core::CodecConfig on;
    on.zero_block_shortcut = true;
    core::CodecConfig off;
    off.zero_block_shortcut = false;

    // Throughput on the simulated mesh.
    mapping::MapperOptions mo;
    mo.rows = 16;
    mo.cols = 32;
    mo.max_exact_rows = 1;
    mo.collect_output = false;
    mo.codec = on;
    const auto run_on = mapping::WaferMapper(mo).compress(field.view(), bound);
    mo.codec = off;
    const auto run_off = mapping::WaferMapper(mo).compress(field.view(), bound);

    const auto ratio_on =
        core::StreamCodec(on).compress(field.view(), bound);
    const auto ratio_off =
        core::StreamCodec(off).compress(field.view(), bound);

    table.add_row(
        {bench::rel_name(rel),
         fmt_f64(100.0 * ratio_on.stats.zero_fraction(), 1) + "%",
         fmt_f64(run_on.throughput_gbps, 3),
         fmt_f64(run_off.throughput_gbps, 3),
         fmt_f64(100.0 * (run_on.throughput_gbps / run_off.throughput_gbps -
                          1.0),
                 1) +
             "%",
         fmt_f64(ratio_on.compression_ratio(), 2),
         fmt_f64(ratio_off.compression_ratio(), 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check: with the shortcut, throughput rises as the "
              "bound loosens (more zero blocks skip encoding); without it "
              "the curve flattens and sparse-data ratios collapse — the "
              "Section 5.2 mechanism, isolated.\n");
  return 0;
}
