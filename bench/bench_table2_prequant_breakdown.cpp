// Table 2: breakdown of Pre-Quantization into its Multiplication and
// Addition sub-stages (cycles per block, max across blocks).
#include "bench_util.h"
#include "mapping/block_work.h"

using namespace ceresz;

int main() {
  std::printf("=== Table 2: breakdown cycles for Pre-Quantization ===\n");
  std::printf("paper: CESM-ATM 6051 = 5078 + 1033; HACC 6101 = 5081 + 1038; "
              "QMCPack 6111 = 5063 + 1049\n\n");

  const core::CodecConfig codec;
  const core::PeCostModel cost;
  TextTable table({"Dataset", "Pre-Quant.", "Multiplication", "Addition",
                   "mul share"});
  const data::DatasetId ids[] = {data::DatasetId::kCesmAtm,
                                 data::DatasetId::kHacc,
                                 data::DatasetId::kQmcpack};
  for (data::DatasetId id : ids) {
    const data::Field field =
        data::generate_field(id, 0, 42, bench::bench_scale(0.35));
    const f64 eps = core::ErrorBound::relative(1e-4).resolve(
        summarize(field.view()).range());
    const mapping::SubStageExecutor exec(codec, cost, eps);
    Cycles mul_max = 0, add_max = 0;
    const u64 blocks = field.size() / 32;
    for (u64 b = 0; b < blocks; ++b) {
      mapping::BlockWork work;
      work.input.assign(field.values.begin() + b * 32,
                        field.values.begin() + (b + 1) * 32);
      const Cycles mul =
          exec.apply(work, {core::SubStageKind::kPrequantMul});
      const Cycles add =
          exec.apply(work, {core::SubStageKind::kPrequantAdd});
      mul_max = std::max(mul_max, mul);
      add_max = std::max(add_max, add);
    }
    table.add_row({data::dataset_spec(id).name,
                   std::to_string(mul_max + add_max),
                   std::to_string(mul_max), std::to_string(add_max),
                   fmt_f64(100.0 * mul_max / (mul_max + add_max), 1) + "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check: the two sub-stages are data-independent "
              "(identical across datasets); multiplication takes ~80%% of "
              "quantization time, making it the longest indivisible "
              "sub-stage (it bounds the feasible pipeline length).\n");
  return 0;
}
