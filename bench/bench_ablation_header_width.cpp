// Ablation: 4-byte vs 1-byte block headers (Section 5.1.1 / 5.3).
// CereSZ stores each block's fixed length in 32 bits to honor the fabric's
// transfer units, capping sparse-data ratios at 32x where a byte-header
// codec caps at 128x; the penalty shrinks as the bound tightens.
#include "bench_util.h"

using namespace ceresz;

int main() {
  std::printf("=== Ablation: block header width (4B CereSZ vs 1B "
              "SZp-style) ===\n\n");

  core::CodecConfig four;
  four.header_bytes = 4;
  core::CodecConfig one;
  one.header_bytes = 1;
  const core::StreamCodec codec4(four);
  const core::StreamCodec codec1(one);

  TextTable table({"Dataset", "REL", "ratio 4B", "ratio 1B", "penalty",
                   "zero blocks"});
  for (data::DatasetId id :
       {data::DatasetId::kRtm, data::DatasetId::kNyx,
        data::DatasetId::kHacc}) {
    const data::Field field =
        data::generate_field(id, 0, 42, bench::bench_scale(0.4));
    for (f64 rel : bench::kRelBounds) {
      const core::ErrorBound bound = core::ErrorBound::relative(rel);
      const auto r4 = codec4.compress(field.view(), bound);
      const auto r1 = codec1.compress(field.view(), bound);
      table.add_row(
          {data::dataset_spec(id).name, bench::rel_name(rel),
           fmt_f64(r4.compression_ratio(), 2),
           fmt_f64(r1.compression_ratio(), 2),
           fmt_f64(100.0 * (1.0 - r4.compression_ratio() /
                                      r1.compression_ratio()),
                   1) +
               "%",
           fmt_f64(100.0 * r4.stats.zero_fraction(), 1) + "%"});
    }
  }
  std::printf("%s\n", table.render().c_str());

  // The all-zero extreme: the theoretical caps.
  const std::vector<f32> zeros(32 * 4096, 0.0f);
  const auto z4 = codec4.compress(zeros, core::ErrorBound::absolute(1e-2));
  const auto z1 = codec1.compress(zeros, core::ErrorBound::absolute(1e-2));
  std::printf("all-zero data caps: 4B header %.2fx, 1B header %.2fx "
              "(paper: RTM 31.99 vs 127.94)\n\n",
              z4.compression_ratio(), z1.compression_ratio());
  std::printf("shape check: the penalty is largest on sparse data at loose "
              "bounds (many zero blocks, header-dominated) and fades at "
              "tight bounds — Section 5.3's argument that CereSZ suits "
              "strict-bound workloads.\n");
  return 0;
}
