// Figure 13: compression throughput for pipelines of different lengths
// (1-PE / 2-PE / 4-PE) on QMCPack and Hurricane at REL 1e-4. The paper
// finds the single-PE pipeline fastest: Formula (4)'s PL and PL^2 overhead
// terms plus imperfect stage balance make longer pipelines lose.
#include "bench_util.h"

using namespace ceresz;

int main() {
  std::printf("=== Figure 13: compression throughput vs pipeline length "
              "(REL 1e-4) ===\n\n");

  const core::ErrorBound bound = core::ErrorBound::relative(1e-4);
  constexpr u32 kCols = 48;  // divisible by every pipeline length
  constexpr u32 kRows = 48;

  const core::StreamCodec host;
  for (data::DatasetId id :
       {data::DatasetId::kQmcpack, data::DatasetId::kHurricane}) {
    const data::Field field =
        data::generate_field(id, 0, 42, bench::bench_scale(0.5));
    const auto stream = host.compress(field.view(), bound);
    std::printf("%s (%s mesh %ux%u):\n", data::dataset_spec(id).name,
                field.name.c_str(), kRows, kCols);
    TextTable table({"pipeline", "compress (GB/s)", "relative",
                     "decompress (GB/s)", "relative", "bottleneck cycles"});
    f64 base_c = 0.0, base_d = 0.0;
    for (u32 pl : {1u, 2u, 4u}) {
      const auto sim = bench::simulate_compression(field.view(), bound,
                                                   kCols, pl, kRows);
      const auto dsim = bench::simulate_decompression(
          stream.stream, field.size(), kCols, pl, kRows);
      if (pl == 1) {
        base_c = sim.gbps_full_mesh;
        base_d = dsim.gbps_full_mesh;
      }
      table.add_row({std::to_string(pl) + "-PE",
                     fmt_f64(sim.gbps_full_mesh, 3),
                     fmt_f64(100.0 * sim.gbps_full_mesh / base_c, 1) + "%",
                     fmt_f64(dsim.gbps_full_mesh, 3),
                     fmt_f64(100.0 * dsim.gbps_full_mesh / base_d, 1) + "%",
                     std::to_string(sim.run.plan.bottleneck_cycles())});
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf("shape check: 1-PE > 2-PE > 4-PE on both datasets and both "
              "directions (the paper notes the same phenomenon in "
              "decompression), matching Fig. 13 and the Section 4.4 "
              "analysis: the whole kernel fits one PE's 48 KB, so longer "
              "pipelines only add forwarding overhead and balance loss.\n");
  return 0;
}
