// Ablation: fixed-length encoding vs Huffman (Section 3, rationale 2).
// Huffman squeezes more ratio out of the same residuals but costs codebook
// construction and serial bit decoding — measured here as host wall-clock
// on identical pre-quantized data (cuSZ-style codec vs CereSZ's FL codec).
#include "bench_util.h"

using namespace ceresz;

int main() {
  std::printf("=== Ablation: fixed-length vs Huffman encoding ===\n\n");

  const core::StreamCodec flc;  // CereSZ fixed-length
  const auto huff = baselines::make_cusz();  // same prequant, Huffman coded

  TextTable table({"Dataset", "FL ratio", "Huff ratio", "FL comp MB/s",
                   "Huff comp MB/s", "FL decomp MB/s", "Huff decomp MB/s"});
  const core::ErrorBound bound = core::ErrorBound::relative(1e-3);
  for (data::DatasetId id : data::kAllDatasets) {
    const data::Field field =
        data::generate_field(id, 0, 42, bench::bench_scale(0.4));
    const f64 mb = field.bytes() / 1.0e6;

    WallTimer t;
    const auto fl_result = flc.compress(field.view(), bound);
    const f64 fl_comp = mb / t.seconds();
    t.reset();
    const auto fl_back = flc.decompress(fl_result.stream);
    const f64 fl_decomp = mb / t.seconds();

    baselines::BaselineStats hs;
    t.reset();
    const auto h_stream = huff->compress(field, bound, &hs);
    const f64 h_comp = mb / t.seconds();
    t.reset();
    const auto h_back = huff->decompress(h_stream);
    const f64 h_decomp = mb / t.seconds();

    table.add_row({data::dataset_spec(id).name,
                   fmt_f64(fl_result.compression_ratio(), 2),
                   fmt_f64(hs.compression_ratio(), 2), fmt_f64(fl_comp, 0),
                   fmt_f64(h_comp, 0), fmt_f64(fl_decomp, 0),
                   fmt_f64(h_decomp, 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check: Huffman buys ratio but loses throughput "
              "(codebook build + bit-serial decode) — the trade the paper "
              "declines for CereSZ. Fixed-length also keeps each block's "
              "compressed size computable from one header, avoiding the "
              "device-level scan that variable-length codes need.\n");
  return 0;
}
