#!/usr/bin/env bash
# Build with a sanitizer and run the concurrency-sensitive tests: the
# engine, the checksum kernels, the fault-injection chaos suite, the
# observability registry/tracer suite, the network service suite
# (reader/worker threads, BufferPool, shutdown paths), the network
# chaos suite (ChaosProxy relay threads, client retry loop, drain), the
# tenant coordinator suite (mutex-guarded lease bookkeeping racing
# the server's reader threads), and the parallel-simulator differential
# suite (WaferSimulator row bands on shared thread pools).
#
#   scripts/run_sanitizer_tests.sh thread  [build-dir]   # ThreadSanitizer
#   scripts/run_sanitizer_tests.sh address [build-dir]   # AddressSanitizer
#
# Default build dir: build-<mode>.
#
# OpenMP is disabled for the TSan build: libgomp's barrier implementation
# is not TSan-instrumented and produces known false positives; the
# engine's own threading (std::thread + mutex/condvar) is what we are
# checking. The ASan build keeps OpenMP on.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-}"
case "$MODE" in
  thread|address) ;;
  *)
    echo "usage: $0 thread|address [build-dir]" >&2
    exit 2
    ;;
esac
BUILD_DIR="${2:-build-$MODE}"

EXTRA_FLAGS=()
if [ "$MODE" = "thread" ]; then
  EXTRA_FLAGS+=(-DCMAKE_DISABLE_FIND_PACKAGE_OpenMP=TRUE)
fi

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCERESZ_SANITIZE="$MODE" \
  -DCERESZ_BUILD_BENCH=OFF \
  -DCERESZ_BUILD_EXAMPLES=OFF \
  "${EXTRA_FLAGS[@]}"

cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target test_engine test_checksum test_fault_injection test_obs \
  test_service test_chaos test_tenant test_wafer_sim

cd "$BUILD_DIR"
if [ "$MODE" = "thread" ]; then
  export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
else
  export ASAN_OPTIONS="halt_on_error=1 detect_stack_use_after_return=1"
fi
ctest --output-on-failure \
  -R '^test_(engine|checksum|fault_injection|obs|service|chaos|tenant|wafer_sim)$'
echo "${MODE} sanitizer tests passed."
