#!/usr/bin/env bash
# One-shot reproduction: build, test, and regenerate every table/figure.
#
#   scripts/reproduce.sh [quick]
#
# "quick" scales the synthetic datasets down (CERESZ_BENCH_SCALE=0.2) for
# a fast smoke pass; omit it for the numbers recorded in EXPERIMENTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

if [[ "${1:-}" == "quick" ]]; then
  export CERESZ_BENCH_SCALE=0.2
fi

for b in build/bench/*; do
  "$b"
  echo
done 2>&1 | tee bench_output.txt

echo "done: see test_output.txt and bench_output.txt"
