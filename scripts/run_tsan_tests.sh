#!/usr/bin/env bash
# Back-compat wrapper: TSan build + engine/checksum/fault-injection tests.
# See scripts/run_sanitizer_tests.sh for the general (thread|address) form.
#
# Usage: scripts/run_tsan_tests.sh [build-dir]   (default: build-tsan)
set -euo pipefail
exec "$(dirname "$0")/run_sanitizer_tests.sh" thread "${1:-build-tsan}"
