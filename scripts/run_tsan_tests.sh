#!/usr/bin/env bash
# Build with ThreadSanitizer and run the engine + checksum tests to catch
# data races in the worker pool and chunk assembly.
#
# OpenMP is disabled for this build: libgomp's barrier implementation is
# not TSan-instrumented and produces known false positives; the engine's
# own threading (std::thread + mutex/condvar) is what we are checking.
#
# Usage: scripts/run_tsan_tests.sh [build-dir]   (default: build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCERESZ_SANITIZE=thread \
  -DCMAKE_DISABLE_FIND_PACKAGE_OpenMP=TRUE \
  -DCERESZ_BUILD_BENCH=OFF \
  -DCERESZ_BUILD_EXAMPLES=OFF

cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target test_engine test_checksum

cd "$BUILD_DIR"
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ctest --output-on-failure -R '^test_(engine|checksum)$'
echo "TSan engine tests passed."
