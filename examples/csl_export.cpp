// CSL export: profile a dataset, schedule the pipeline with Algorithm 1,
// and emit the Cerebras SDK (CSL) sources that would deploy it on a real
// CS-2 — the artifact the paper's authors wrote by hand (SDK 0.8.0),
// generated here from the same plan the simulator executes.
//
//   ./csl_export [pipeline_length] [output_dir]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "ceresz.h"
#include "mapping/csl_codegen.h"

int main(int argc, char** argv) {
  using namespace ceresz;
  const u32 pl = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 2;
  const std::filesystem::path dir = argc > 2 ? argv[2] : "csl_out";

  // Profile QMCPack and schedule the compression pipeline.
  const data::Field field =
      data::generate_field(data::DatasetId::kQmcpack, 0, 42, 0.25);
  mapping::StageProfiler profiler(core::CodecConfig{}, core::PeCostModel{});
  const auto profile =
      profiler.profile(field.view(), core::ErrorBound::relative(1e-3));
  mapping::GreedyScheduler sched(core::PeCostModel{}, 32);
  const auto plan = sched.distribute(
      core::compression_substages(profile.est_fixed_length), pl);

  wse::WseConfig wse;
  wse.rows = 16;
  wse.cols = 32;
  const mapping::CslCodegen codegen(wse, 32);
  const mapping::CslProgram program = codegen.generate(plan);

  std::filesystem::create_directories(dir);
  auto write = [&](const char* name, const std::string& text) {
    std::vector<u8> bytes(text.begin(), text.end());
    io::write_bytes(dir / name, bytes);
    std::printf("wrote %s (%zu bytes)\n", (dir / name).c_str(), text.size());
  };
  write("layout.csl", program.layout);
  write("head_pe.csl", program.head_pe);
  write("stage_pe.csl", program.stage_pe);
  write("README.txt", program.readme);

  std::printf("\n%s\n", program.readme.c_str());
  std::printf("--- head_pe.csl (excerpt) ---\n%.1200s...\n",
              program.head_pe.c_str());
  return 0;
}
