// Dataset archiving: compress every field of a dataset into one archive
// file, inspect it, and restore a field — the workflow a simulation
// campaign would use to keep checkpoint storage under control.
//
//   ./dataset_archive [dataset] [rel_bound]
//
// dataset: cesm | hurricane | qmcpack | nyx | rtm | hacc (default qmcpack)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "ceresz.h"

namespace {

ceresz::data::DatasetId parse_dataset(const char* name) {
  using ceresz::data::DatasetId;
  if (std::strcmp(name, "cesm") == 0) return DatasetId::kCesmAtm;
  if (std::strcmp(name, "hurricane") == 0) return DatasetId::kHurricane;
  if (std::strcmp(name, "nyx") == 0) return DatasetId::kNyx;
  if (std::strcmp(name, "rtm") == 0) return DatasetId::kRtm;
  if (std::strcmp(name, "hacc") == 0) return DatasetId::kHacc;
  return DatasetId::kQmcpack;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ceresz;
  const data::DatasetId id =
      parse_dataset(argc > 1 ? argv[1] : "qmcpack");
  const double rel = argc > 2 ? std::atof(argv[2]) : 1e-3;
  const auto& spec = data::dataset_spec(id);

  std::printf("archiving synthetic %s (%u fields) at REL %g\n\n", spec.name,
              spec.fields_generated, rel);
  const auto fields = data::generate_dataset(id, 42, 0.4);

  const core::StreamCodec codec;
  WallTimer timer;
  const io::Archive archive = io::Archive::compress_fields(
      fields, core::ErrorBound::relative(rel), codec);
  const double elapsed = timer.seconds();

  const auto path = std::filesystem::temp_directory_path() /
                    (std::string(spec.name) + ".csza");
  archive.save(path);

  std::size_t raw = 0;
  for (const auto& f : fields) raw += f.bytes();
  std::printf("wrote %s: %s raw -> %s (%.2fx) in %.2f s\n\n",
              path.c_str(), fmt_bytes(raw).c_str(),
              fmt_bytes(archive.serialize().size()).c_str(),
              archive.total_ratio(), elapsed);

  TextTable table({"field", "dims", "compressed", "ratio", "PSNR dB"});
  const io::Archive loaded = io::Archive::load(path);
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const auto& entry = loaded.entries()[i];
    const data::Field back = loaded.decompress_field(i, codec);
    std::string dims;
    for (std::size_t d : entry.dims) {
      dims += (dims.empty() ? "" : "x") + std::to_string(d);
    }
    table.add_row({entry.name, dims, fmt_bytes(entry.stream.size()),
                   fmt_f64(entry.compression_ratio(), 2),
                   fmt_f64(metrics::psnr(fields[i].view(), back.values), 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::filesystem::remove(path);
  return 0;
}
