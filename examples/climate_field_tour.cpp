// Climate field tour: compress every field of the synthetic CESM-ATM
// dataset with all five compressors and compare ratio and quality — a
// working, miniature version of the paper's Table 5 / Fig. 15 workflow.
//
//   ./climate_field_tour [rel_bound]
#include <cstdio>
#include <cstdlib>

#include "ceresz.h"

int main(int argc, char** argv) {
  using namespace ceresz;
  const double rel = argc > 1 ? std::atof(argv[1]) : 1e-3;
  const core::ErrorBound bound = core::ErrorBound::relative(rel);

  const auto fields = data::generate_dataset(data::DatasetId::kCesmAtm, 42,
                                             /*scale=*/0.5);
  const core::StreamCodec ceresz_codec;
  const auto szp = baselines::make_szp();
  const auto cuszp = baselines::make_cuszp();
  const auto sz3 = baselines::make_sz3();
  const auto cusz = baselines::make_cusz();

  std::printf("CESM-ATM tour, REL %g, %zu fields\n\n", rel, fields.size());
  TextTable table({"field", "CereSZ", "SZp", "cuSZp", "SZ", "cuSZ",
                   "PSNR dB", "SSIM"});

  for (const auto& field : fields) {
    const auto ceresz_result = ceresz_codec.compress(field.view(), bound);
    const auto restored = ceresz_codec.decompress(ceresz_result.stream);

    baselines::BaselineStats s_szp, s_cuszp, s_sz3, s_cusz;
    szp->compress(field, bound, &s_szp);
    cuszp->compress(field, bound, &s_cuszp);
    sz3->compress(field, bound, &s_sz3);
    cusz->compress(field, bound, &s_cusz);

    table.add_row(
        {field.name, fmt_f64(ceresz_result.compression_ratio(), 2),
         fmt_f64(s_szp.compression_ratio(), 2),
         fmt_f64(s_cuszp.compression_ratio(), 2),
         fmt_f64(s_sz3.compression_ratio(), 2),
         fmt_f64(s_cusz.compression_ratio(), 2),
         fmt_f64(metrics::psnr(field.view(), restored), 1),
         fmt_f64(metrics::ssim_2d(field.view(), restored, field.dims[1],
                                  field.dims[0]),
                 4)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("note: all five compressors honor the same error bound; SZ\n"
              "trades throughput for ratio, CereSZ trades a little ratio\n"
              "(32-bit block headers) for wafer-scale throughput.\n");
  return 0;
}
