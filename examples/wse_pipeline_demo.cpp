// WSE pipeline demo: map CereSZ onto the simulated Cerebras wafer and
// watch the three parallelization strategies at work.
//
//   ./wse_pipeline_demo [rows cols pipeline_length]
//
// Shows the Algorithm 1 stage schedule, runs the event-driven simulation,
// verifies the wafer's output is bit-identical to the host codec, and
// prints per-PE activity for row 0 (relay vs compute, the Fig. 10 view).
#include <cstdio>
#include <cstdlib>

#include "ceresz.h"
#include "mapping/report.h"

int main(int argc, char** argv) {
  using namespace ceresz;
  const u32 rows = argc > 1 ? std::atoi(argv[1]) : 2;
  const u32 cols = argc > 2 ? std::atoi(argv[2]) : 8;
  const u32 pl = argc > 3 ? std::atoi(argv[3]) : 2;

  const data::Field field =
      data::generate_field(data::DatasetId::kQmcpack, 0, 42, 0.25);
  const core::ErrorBound bound = core::ErrorBound::relative(1e-3);

  mapping::MapperOptions opt;
  opt.rows = rows;
  opt.cols = cols;
  opt.pipeline_length = pl;
  opt.max_exact_rows = rows;  // exact simulation for the demo
  const mapping::WaferMapper mapper(opt);

  std::printf("mesh %ux%u, pipeline length %u\n", rows, cols, pl);
  const mapping::WaferRunResult run = mapper.compress(field.view(), bound);

  std::printf("\nAlgorithm 1 stage schedule (estimated fl = %u):\n",
              run.profile.est_fixed_length);
  for (u32 g = 0; g < run.plan.length(); ++g) {
    const auto& group = run.plan.groups[g];
    std::printf("  PE %u: %llu cycles [", g,
                static_cast<unsigned long long>(group.cycles));
    for (std::size_t s = 0; s < group.stages.size(); ++s) {
      std::printf("%s%s", s ? ", " : "", group.stages[s].name().c_str());
    }
    std::printf("]\n");
  }

  std::printf("\nsimulation: %llu events, %llu tasks, makespan %llu cycles "
              "(%.3f ms at 850 MHz)\n",
              static_cast<unsigned long long>(run.run_stats.events_processed),
              static_cast<unsigned long long>(run.run_stats.tasks_run),
              static_cast<unsigned long long>(run.makespan),
              run.seconds * 1e3);
  std::printf("simulated throughput: %.3f GB/s on %u PEs\n",
              run.throughput_gbps, rows * cols);

  // Fidelity check: the wafer's bytes equal the host codec's.
  const core::StreamCodec host;
  const auto host_result = host.compress(field.view(), bound);
  std::printf("stream identical to host codec: %s (%zu bytes, ratio %.2fx)\n",
              run.stream == host_result.stream ? "yes" : "NO",
              run.stream.size(), host_result.compression_ratio());

  std::printf("\n%s\n", mapping::run_summary(run, rows, cols).c_str());
  std::printf("\nrow 0 per-PE activity:\n%s",
              mapping::utilization_report(run).c_str());
  return run.stream == host_result.stream ? 0 : 1;
}
