// Quickstart: compress and decompress a float array with CereSZ.
//
//   ./quickstart [rel_bound]
//
// Demonstrates the three-line host API (StreamCodec), the error-bound
// guarantee, and basic metrics.
#include <cstdio>
#include <cstdlib>

#include "ceresz.h"

int main(int argc, char** argv) {
  using namespace ceresz;
  const double rel = argc > 1 ? std::atof(argv[1]) : 1e-3;

  // Some scientific-looking data: a synthetic Hurricane velocity field.
  const data::Field field =
      data::generate_field(data::DatasetId::kHurricane, 0, /*seed=*/42,
                           /*scale=*/0.5);
  std::printf("field: %s/%s, %zu elements (%s)\n", field.dataset.c_str(),
              field.name.c_str(), field.size(),
              fmt_bytes(field.bytes()).c_str());

  // 1. Compress with a value-range-relative error bound.
  const core::StreamCodec codec;
  WallTimer timer;
  const core::CompressionResult result =
      codec.compress(field.view(), core::ErrorBound::relative(rel));
  const double compress_s = timer.seconds();

  // 2. Decompress.
  timer.reset();
  const std::vector<f32> restored = codec.decompress(result.stream);
  const double decompress_s = timer.seconds();

  // 3. Verify and report.
  const double worst = max_abs_diff(field.view(), restored);
  std::printf("REL bound          : %g  (abs eps = %g)\n", rel,
              result.eps_abs);
  std::printf("compression ratio  : %.2fx (%s -> %s)\n",
              result.compression_ratio(), fmt_bytes(field.bytes()).c_str(),
              fmt_bytes(result.stream.size()).c_str());
  std::printf("zero blocks        : %.1f%%\n",
              100.0 * result.stats.zero_fraction());
  std::printf("max |error|        : %g (bound %g) -> %s\n", worst,
              result.eps_abs, worst <= result.eps_abs ? "OK" : "VIOLATED");
  std::printf("PSNR               : %.2f dB\n",
              metrics::psnr(field.view(), restored));
  std::printf("host compress      : %.1f MB/s\n",
              field.bytes() / compress_s / 1e6);
  std::printf("host decompress    : %.1f MB/s\n",
              field.bytes() / decompress_s / 1e6);
  return worst <= result.eps_abs ? 0 : 1;
}
