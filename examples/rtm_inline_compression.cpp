// Inline compression for seismic imaging (the paper's motivating RTM
// workload): a Reverse Time Migration run emits one wavefield snapshot per
// time step, and each snapshot is compressed on the wafer as it is
// produced, before it ever reaches storage.
//
//   ./rtm_inline_compression [n_steps]
//
// Reports per-snapshot ratio and simulated wafer throughput, plus the
// aggregate storage saving — the quantity that matters for RTM's
// multi-TB snapshot streams (Section 1).
#include <cstdio>
#include <cstdlib>

#include "ceresz.h"

int main(int argc, char** argv) {
  using namespace ceresz;
  const int n_steps = argc > 1 ? std::atoi(argv[1]) : 4;

  mapping::MapperOptions opt;
  opt.rows = 16;
  opt.cols = 32;
  opt.max_exact_rows = 1;  // timing from one representative row
  opt.collect_output = false;
  const mapping::WaferMapper mapper(opt);
  const core::StreamCodec host;  // for the actual bytes + ratio
  const core::ErrorBound bound = core::ErrorBound::relative(1e-3);

  std::printf("RTM inline compression: %d snapshots, mesh %ux%u, REL 1e-3\n\n",
              n_steps, opt.rows, opt.cols);
  TextTable table({"step", "snapshot", "ratio", "zero blocks",
                   "wafer GB/s", "PSNR dB"});

  std::size_t raw_total = 0;
  std::size_t compressed_total = 0;
  for (int step = 0; step < n_steps; ++step) {
    // Each step expands the wavefront (the generator's per-field radius
    // growth models the time evolution).
    const data::Field snap = data::generate_field(
        data::DatasetId::kRtm, static_cast<u32>(step % 4), 42, 0.45);

    const auto wafer = mapper.compress(snap.view(), bound);
    const auto result = host.compress(snap.view(), bound);
    const auto restored = host.decompress(result.stream);

    raw_total += snap.bytes();
    compressed_total += result.stream.size();
    table.add_row({std::to_string(step), snap.name,
                   fmt_f64(result.compression_ratio(), 2) + "x",
                   fmt_f64(100.0 * result.stats.zero_fraction(), 1) + "%",
                   fmt_f64(wafer.throughput_gbps, 2),
                   fmt_f64(metrics::psnr(snap.view(), restored), 1)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("aggregate: %s raw -> %s compressed (%.2fx)\n",
              fmt_bytes(raw_total).c_str(),
              fmt_bytes(compressed_total).c_str(),
              static_cast<double>(raw_total) / compressed_total);
  std::printf("a full 2,800 TB RTM aperture at this ratio would need %s\n",
              fmt_bytes(static_cast<std::size_t>(
                            2800.0e12 * compressed_total / raw_total))
                  .c_str());
  return 0;
}
