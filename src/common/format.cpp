#include "common/format.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace ceresz {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CERESZ_CHECK(!header_.empty(), "TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
  CERESZ_CHECK(cells.size() == header_.size(),
               "TextTable: row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << (c == 0 ? "| " : " ");
      oss << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    oss << '\n';
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    oss << (c == 0 ? "|-" : "-") << std::string(widths[c], '-') << "-|";
  }
  oss << '\n';
  for (const auto& row : rows_) emit_row(row);
  return oss.str();
}

std::string fmt_f64(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt_bytes(std::size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  std::ostringstream oss;
  oss << fmt_f64(v, v < 10 ? 2 : 1) << ' ' << units[u];
  return oss.str();
}

}  // namespace ceresz
