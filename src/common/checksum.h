// CRC32C (Castagnoli) checksum, used by the chunked container to detect
// and localize payload corruption per chunk.
//
// Software implementation (slicing-by-8): the container format stores
// plain CRC32C values, so a future hardware-accelerated path (SSE4.2
// crc32 / ARMv8 CRC instructions) can be swapped in without a format
// change.
#pragma once

#include <span>

#include "common/types.h"

namespace ceresz {

/// CRC32C of `data`. `seed` is the running CRC for incremental use:
/// crc32c(ab) == crc32c(b, crc32c(a)).
u32 crc32c(std::span<const u8> data, u32 seed = 0);

/// Streaming accumulator over multiple buffers.
class Crc32c {
 public:
  void update(std::span<const u8> data) { crc_ = crc32c(data, crc_); }
  u32 value() const { return crc_; }
  void reset() { crc_ = 0; }

 private:
  u32 crc_ = 0;
};

}  // namespace ceresz
