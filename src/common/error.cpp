#include "common/error.h"

#include <sstream>

namespace ceresz::detail {

void throw_error(const char* file, int line, const char* cond,
                 const std::string& message) {
  std::ostringstream oss;
  oss << message << " [" << cond << " at " << file << ':' << line << ']';
  throw Error(oss.str());
}

}  // namespace ceresz::detail
