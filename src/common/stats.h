// Small numeric helpers: running min/max/mean and array reductions.
#pragma once

#include <span>

#include "common/types.h"

namespace ceresz {

/// Summary statistics of a float array, computed in one pass.
struct ArraySummary {
  f64 min = 0.0;
  f64 max = 0.0;
  f64 mean = 0.0;
  f64 stddev = 0.0;
  std::size_t count = 0;

  /// Value range (max - min); the basis of REL error bounds.
  f64 range() const { return max - min; }
};

/// One-pass min/max/mean/variance (Welford) over `values`.
ArraySummary summarize(std::span<const f32> values);

/// Largest absolute difference between two equal-length arrays.
f64 max_abs_diff(std::span<const f32> a, std::span<const f32> b);

}  // namespace ceresz
