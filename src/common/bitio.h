// Bit-granular writer/reader over a byte buffer.
//
// Used by the Huffman coder (SZ3/cuSZ baselines). Bits are packed LSB-first
// within each byte, which keeps the writer branch-free and matches the
// reader below; the on-disk layout is private to this library.
#pragma once

#include <cstring>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace ceresz {

class BitWriter {
 public:
  /// Append the low `nbits` bits of `value` (0 <= nbits <= 57).
  void put(u64 value, int nbits) {
    CERESZ_CHECK(nbits >= 0 && nbits <= 57, "BitWriter::put: nbits out of range");
    if (nbits == 0) return;
    acc_ |= (value & mask(nbits)) << fill_;
    fill_ += nbits;
    while (fill_ >= 8) {
      bytes_.push_back(static_cast<u8>(acc_ & 0xff));
      acc_ >>= 8;
      fill_ -= 8;
    }
  }

  /// Flush any partial byte and return the buffer. The writer is left empty.
  std::vector<u8> finish() {
    if (fill_ > 0) {
      bytes_.push_back(static_cast<u8>(acc_ & 0xff));
      acc_ = 0;
      fill_ = 0;
    }
    return std::move(bytes_);
  }

  /// Number of bits written so far (excluding flush padding).
  u64 bit_count() const { return bytes_.size() * 8 + static_cast<u64>(fill_); }

 private:
  static u64 mask(int nbits) {
    return nbits >= 64 ? ~0ull : ((1ull << nbits) - 1);
  }

  std::vector<u8> bytes_;
  u64 acc_ = 0;
  int fill_ = 0;
};

class BitReader {
 public:
  BitReader(const u8* data, std::size_t size) : data_(data), size_(size) {}

  /// Read `nbits` bits (0 <= nbits <= 57). Reading past the end throws.
  u64 get(int nbits) {
    CERESZ_CHECK(nbits >= 0 && nbits <= 57, "BitReader::get: nbits out of range");
    while (fill_ < nbits) {
      CERESZ_CHECK(pos_ < size_, "BitReader: read past end of stream");
      acc_ |= static_cast<u64>(data_[pos_++]) << fill_;
      fill_ += 8;
    }
    const u64 value = acc_ & mask(nbits);
    acc_ >>= nbits;
    fill_ -= nbits;
    return value;
  }

  /// Peek up to `nbits` without consuming; missing tail bits read as zero.
  u64 peek(int nbits) {
    CERESZ_CHECK(nbits >= 0 && nbits <= 57, "BitReader::peek: nbits out of range");
    while (fill_ < nbits && pos_ < size_) {
      acc_ |= static_cast<u64>(data_[pos_++]) << fill_;
      fill_ += 8;
    }
    return acc_ & mask(nbits);
  }

  /// Consume `nbits` previously peeked bits.
  void skip(int nbits) {
    CERESZ_CHECK(nbits <= fill_, "BitReader::skip: more bits than buffered");
    acc_ >>= nbits;
    fill_ -= nbits;
  }

  u64 bits_consumed() const { return pos_ * 8 - static_cast<u64>(fill_); }

 private:
  static u64 mask(int nbits) {
    return nbits >= 64 ? ~0ull : ((1ull << nbits) - 1);
  }

  const u8* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  u64 acc_ = 0;
  int fill_ = 0;
};

}  // namespace ceresz
