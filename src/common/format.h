// Plain-text table formatting used by the benchmark harnesses to print the
// rows/series that the paper's tables and figures report.
#pragma once

#include <string>
#include <vector>

namespace ceresz {

/// Accumulates rows of strings and renders an aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with a header rule, columns padded to the widest cell.
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` digits after the decimal point.
std::string fmt_f64(double value, int digits = 2);

/// Format a byte count as a human-readable size (e.g. "12.5 MB").
std::string fmt_bytes(std::size_t bytes);

}  // namespace ceresz
