// Fundamental type aliases shared across the CereSZ codebase.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ceresz {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using f32 = float;
using f64 = double;

/// Cycle counts on the simulated wafer-scale engine. 64 bits so that a
/// whole-dataset run at 850 MHz never overflows.
using Cycles = std::uint64_t;

}  // namespace ceresz
