#include "common/stats.h"

#include <cmath>

#include "common/error.h"

namespace ceresz {

ArraySummary summarize(std::span<const f32> values) {
  ArraySummary s;
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  f64 mean = 0.0;
  f64 m2 = 0.0;
  std::size_t n = 0;
  for (f32 v : values) {
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
    ++n;
    const f64 delta = v - mean;
    mean += delta / static_cast<f64>(n);
    m2 += delta * (v - mean);
  }
  s.mean = mean;
  s.stddev = n > 1 ? std::sqrt(m2 / static_cast<f64>(n)) : 0.0;
  s.count = n;
  return s;
}

f64 max_abs_diff(std::span<const f32> a, std::span<const f32> b) {
  CERESZ_CHECK(a.size() == b.size(), "max_abs_diff: size mismatch");
  f64 worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const f64 d = std::fabs(static_cast<f64>(a[i]) - static_cast<f64>(b[i]));
    if (d > worst) worst = d;
  }
  return worst;
}

}  // namespace ceresz
