// Deterministic random number generation for synthetic dataset creation.
//
// We use xoshiro256** (public domain, Blackman & Vigna) seeded through
// SplitMix64 so every generator state is fully determined by a single u64
// seed. Determinism matters here: compression-ratio benches must produce
// the same fields on every run for the numbers in EXPERIMENTS.md to be
// reproducible.
#pragma once

#include <array>
#include <cmath>

#include "common/types.h"

namespace ceresz {

/// SplitMix64: used only to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(u64 seed) : state_(seed) {}

  u64 next() {
    u64 z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// xoshiro256**: fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(u64 seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  u64 next_u64() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  f64 next_double() {
    return static_cast<f64>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  f64 uniform(f64 lo, f64 hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n).
  u64 next_below(u64 n) { return n == 0 ? 0 : next_u64() % n; }

  /// Standard normal via Box-Muller (cached second value).
  f64 next_gaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    f64 u1 = next_double();
    f64 u2 = next_double();
    // Avoid log(0).
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const f64 r = std::sqrt(-2.0 * std::log(u1));
    const f64 theta = 2.0 * M_PI * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

 private:
  static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<u64, 4> state_{};
  f64 cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace ceresz
