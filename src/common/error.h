// Error handling: a single exception type plus CHECK-style macros.
//
// Following the C++ Core Guidelines (E.2, E.3) we throw exceptions for
// contract violations and unrecoverable conditions rather than returning
// error codes; all public API entry points document what they throw.
#pragma once

#include <stdexcept>
#include <string>

namespace ceresz {

/// Exception thrown on any contract violation or malformed input inside the
/// CereSZ library (bad configuration, corrupt compressed stream, simulator
/// misuse such as routing a color that was never configured, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const char* cond,
                              const std::string& message);
}  // namespace detail

}  // namespace ceresz

/// Check a runtime condition; throws ceresz::Error with location info when
/// the condition is false. Used for argument validation and stream parsing,
/// so it stays enabled in release builds.
#define CERESZ_CHECK(cond, msg)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::ceresz::detail::throw_error(__FILE__, __LINE__, #cond, (msg));  \
    }                                                                   \
  } while (false)

/// Unconditional failure with a message.
#define CERESZ_FAIL(msg) \
  ::ceresz::detail::throw_error(__FILE__, __LINE__, "failure", (msg))
