#include "common/checksum.h"

#include <array>

namespace ceresz {

namespace {

constexpr u32 kPoly = 0x82f63b78u;  // CRC32C, reflected

// 8 slice tables: table[0] is the classic byte-at-a-time table, table[k]
// advances a byte that sits k bytes deeper in the message.
using SliceTables = std::array<std::array<u32, 256>, 8>;

constexpr SliceTables make_tables() {
  SliceTables t{};
  for (u32 i = 0; i < 256; ++i) {
    u32 crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    t[0][i] = crc;
  }
  for (u32 i = 0; i < 256; ++i) {
    u32 crc = t[0][i];
    for (std::size_t k = 1; k < t.size(); ++k) {
      crc = t[0][crc & 0xffu] ^ (crc >> 8);
      t[k][i] = crc;
    }
  }
  return t;
}

constexpr SliceTables kTables = make_tables();

}  // namespace

u32 crc32c(std::span<const u8> data, u32 seed) {
  u32 crc = ~seed;
  const u8* p = data.data();
  std::size_t n = data.size();

  while (n >= 8) {
    crc ^= static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
           (static_cast<u32>(p[2]) << 16) | (static_cast<u32>(p[3]) << 24);
    crc = kTables[7][crc & 0xffu] ^ kTables[6][(crc >> 8) & 0xffu] ^
          kTables[5][(crc >> 16) & 0xffu] ^ kTables[4][crc >> 24] ^
          kTables[3][p[4]] ^ kTables[2][p[5]] ^ kTables[1][p[6]] ^
          kTables[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = kTables[0][(crc ^ *p) & 0xffu] ^ (crc >> 8);
    ++p;
    --n;
  }
  return ~crc;
}

}  // namespace ceresz
