// Wall-clock timing for measured (as opposed to simulated) performance.
//
// now_ns() is THE monotonic clock of the codebase: trace timestamps
// (obs::Tracer), worker busy accounting (engine::ThreadPool), and bench
// timing all read it, so their numbers are directly comparable.
#pragma once

#include <chrono>

#include "common/types.h"

namespace ceresz {

/// Monotonic nanoseconds since an arbitrary epoch (steady_clock).
inline u64 now_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class WallTimer {
 public:
  WallTimer() : start_ns_(now_ns()) {}

  void reset() { start_ns_ = now_ns(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return static_cast<double>(now_ns() - start_ns_) * 1e-9;
  }

 private:
  u64 start_ns_;
};

}  // namespace ceresz
