// Wall-clock timer for measured (as opposed to simulated) throughput.
#pragma once

#include <chrono>

namespace ceresz {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ceresz
