// WaferCoordinator: space-shared multi-tenant scheduling of the wafer.
//
// The paper maps ONE compression job onto the whole wafer; a service
// under heavy traffic sees many small streams with different error
// bounds and priorities. Because CereSZ rows never communicate (the
// basis of Fig. 7's linear row scaling), the wafer splits naturally
// into contiguous full-width row bands — *leases* — that run completely
// independent jobs. The coordinator owns that partition:
//
//   admit(spec)      size a lease for the tenant with the Formula
//                    (2)-(4) analytic model (PerfModel::predict_degraded
//                    over each candidate row window, accounting for the
//                    dead PEs already inside it), place it best-fit in
//                    the free rows, or queue/reject when no placement
//                    meets the tenant's throughput quota — the same
//                    explicit load-shedding stance as the server's BUSY
//                    path, decided by prediction instead of a counter.
//   release(id)      free the band, then rebalance: re-grow degraded
//                    neighbors and drain the admission queue in
//                    priority order.
//   inject_faults()  merge wafer-coordinate hardware faults; every
//                    lease that took a dead PE is *elastically
//                    remapped* — re-predicted on its surviving
//                    pipelines, grown into adjacent free rows, or
//                    re-placed wholesale — while untouched leases keep
//                    their rows bit-for-bit.
//   compress()/decompress()
//                    run the tenant's job on its lease: a per-lease
//                    WaferMapper (exact simulation, lease-local slice
//                    of the fault plan) whose GreedyScheduler balances
//                    the tenant's own ε/block configuration.
//
// Output correctness under sharing is structural, not incidental: the
// mapper deals blocks round-robin by tag and reassembles the stream in
// tag order, and ε derives from the data + bound alone — so a tenant's
// bytes do not depend on which rows it got, how many, or how degraded
// they are. test_tenant asserts solo-vs-shared byte identity on exactly
// this property.
//
// Thread safety: every public method is safe to call concurrently (the
// server's reader threads admit from many connections at once). Lease
// bookkeeping is mutex-guarded; compress/decompress snapshot the lease
// under the lock and simulate outside it, so a concurrent remap applies
// to the NEXT request (in-flight work keeps its placement, like an
// in-flight request surviving drain()).
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "core/config.h"
#include "core/costmodel.h"
#include "mapping/perf_model.h"
#include "mapping/scheduler.h"
#include "mapping/wafer_mapper.h"
#include "obs/metrics.h"
#include "wse/config.h"
#include "wse/fault_plan.h"

namespace ceresz::tenant {

using TenantId = u32;

/// Scheduling priority. Wire-compatible with the CSNP v3 priority byte
/// (net::kPriorityBatch/Standard/Interactive use the same values);
/// higher priorities drain from the admission queue first.
enum class Priority : u8 {
  kBatch = 0,
  kStandard = 1,
  kInteractive = 2,
};

const char* priority_name(Priority p);

/// What a tenant declares when it asks for wafer capacity.
struct TenantSpec {
  /// Nonzero tenant identity (0 is the protocol's "untenanted" marker).
  TenantId id = 0;
  Priority priority = Priority::kStandard;
  /// The tenant's own error bound and block configuration — each lease
  /// schedules an independently balanced pipeline for them.
  core::ErrorBound bound = core::ErrorBound::relative(1e-3);
  core::CodecConfig codec{};
  /// Pipeline length inside the lease (clamped to the sub-stage count
  /// by GreedyScheduler; must fit within the wafer's columns).
  u32 pipeline_length = 1;
  /// Planning estimate of the fixed length (bit planes per block) used
  /// to build the admission-time pipeline plan; per-request runs
  /// re-profile and re-schedule with the real data.
  u32 est_fixed_length = 12;
  /// Modeled per-request workload (blocks), fed to Formula (2)-(4).
  u64 blocks_per_request = 256;
  /// Rate quota: the lease must be predicted to sustain at least this
  /// throughput. 0 = best effort (any usable row admits).
  f64 min_throughput_gbps = 0.0;
};

enum class AdmissionVerdict : u8 {
  kAdmitted,  ///< a lease was carved out and is live
  kQueued,    ///< feasible, but no fitting placement right now
  kRejected,  ///< infeasible quota, full queue, or invalid spec
};

const char* verdict_name(AdmissionVerdict v);

/// A tenant's slice of the wafer: `row_count` contiguous full-width
/// rows starting at `row_begin` (wafer coordinates).
struct Lease {
  TenantSpec spec;
  u32 row_begin = 0;
  u32 row_count = 0;
  u32 cols = 0;
  /// The admission-time pipeline plan (Algorithm 1 over the tenant's
  /// estimated sub-stages) the predictions are computed against.
  mapping::PipelinePlan plan;
  /// Current Formula (2)-(4) prediction on this placement, with the
  /// lease's dead PEs accounted (feasible = false when every pipeline
  /// inside the lease is dead).
  mapping::PerfPrediction predicted;
  u32 live_pes = 0;  ///< rows x cols minus dead PEs inside the lease
  u32 remaps = 0;    ///< elastic remaps this lease has survived
};

struct AdmissionResult {
  AdmissionVerdict verdict = AdmissionVerdict::kRejected;
  /// Human-readable verdict detail, suitable for a BUSY error frame.
  std::string reason;
  /// Snapshot of the lease when admitted.
  std::optional<Lease> lease;
};

struct CoordinatorOptions {
  /// The coordinated mesh. Leases are row bands of this wafer; tests
  /// and the server use small exactly-simulable meshes (the full
  /// 750x994 wafer admits with the same code path — only
  /// compress()/decompress() need exact simulation).
  u32 rows = 12;
  u32 cols = 8;
  /// Timing parameters for the analytic model and per-lease runs
  /// (rows/cols are overwritten per lease).
  wse::WseConfig wse{};
  core::PeCostModel cost{};
  /// Worker threads for each lease's simulator core (wse::WaferSimulator
  /// row bands). Host-side parallelism only — simulated results are
  /// bit-identical at any value — so larger leases can stay on the exact
  /// (fault-aware) simulation path instead of extrapolating.
  u32 sim_threads = 1;
  /// Active-lease cap, independent of row capacity.
  u32 max_tenants = 8;
  /// Queue jobs that fit the wafer but not the current free rows
  /// (false = reject immediately, shedding like a BUSY response).
  bool queue_when_full = true;
  std::size_t max_queued = 16;
  /// Borrowed; when non-null it must outlive the coordinator. Receives
  /// the ceresz_tenant_* families plus per-lease mapper/fabric metrics.
  obs::MetricsRegistry* metrics = nullptr;
};

// Aggregate coordinator metric families (flat Prometheus names, same
// registry conventions as ceresz_server_*).
inline constexpr const char* kMetricTenantAdmitted =
    "ceresz_tenant_admitted_total";
inline constexpr const char* kMetricTenantRejected =
    "ceresz_tenant_rejected_total";
inline constexpr const char* kMetricTenantQueued =
    "ceresz_tenant_queued_total";
inline constexpr const char* kMetricTenantReleased =
    "ceresz_tenant_released_total";
inline constexpr const char* kMetricTenantRemapped =
    "ceresz_tenant_remapped_total";
inline constexpr const char* kMetricTenantQuotaViolations =
    "ceresz_tenant_quota_violations_total";
inline constexpr const char* kMetricTenantActive = "ceresz_tenant_active";

/// Per-tenant metric name: "ceresz_tenant_<id>_<suffix>". The registry
/// has no labels, so tenant identity is encoded in the family name.
/// Suffixes in use (keep this list in sync with docs/tenancy.md):
///   lease_pes        gauge, live PEs in the tenant's lease
///   requests_total   counter, wafer runs the coordinator executed
///   seconds          histogram, wafer-run time only (coordinator-side)
///   request_seconds  histogram, END-TO-END service latency per request
///                    (decode -> engine -> encode -> write), recorded by
///                    ServiceServer for every tenant-tagged request —
///                    the SLO-grade quantile a /metrics scraper alarms
///                    on (bench_tenant_mix --warn-p95-ms mirrors it)
std::string tenant_metric_name(TenantId id, std::string_view suffix);

/// The ServiceServer-side per-tenant histogram suffix; shared constant
/// so server and benches cannot drift apart on the name.
inline constexpr const char* kTenantRequestSecondsSuffix = "request_seconds";

/// Pre-create the aggregate ceresz_tenant_* families at zero (the
/// declare-at-zero pattern of declare_server_metrics). Per-tenant
/// families appear on first admission.
void declare_tenant_metrics(obs::MetricsRegistry& reg);

class WaferCoordinator {
 public:
  explicit WaferCoordinator(CoordinatorOptions options);

  const CoordinatorOptions& options() const { return options_; }

  /// Admission control. Rejects outright when the Formula (2)-(4)
  /// prediction says the quota cannot be met even by the whole healthy
  /// wafer; otherwise places the smallest row band whose prediction
  /// (with current faults) meets the quota, queueing (or shedding) when
  /// none fits right now.
  AdmissionResult admit(const TenantSpec& spec);

  /// Free a tenant's lease. Returns false for an unknown id (also
  /// drops the id from the admission queue). On success, rebalances:
  /// degraded neighbors may grow into the freed rows, and queued
  /// tenants are admitted in priority order.
  bool release(TenantId id);

  /// Merge `plan` (wafer coordinates) into the coordinator's fault
  /// state and elastically remap every lease that took a dead PE.
  void inject_faults(const wse::FaultPlan& plan);

  /// Kill one PE (wafer coordinates) and remap the owning lease.
  void kill_pe(u32 row, u32 col);

  /// Snapshot of a tenant's lease, if active.
  std::optional<Lease> lease_of(TenantId id) const;

  /// Snapshot of every active lease, ordered by tenant id.
  std::vector<Lease> leases() const;

  std::size_t active_count() const;
  std::size_t queued_count() const;
  u32 free_rows() const;

  /// Run the tenant's compression job on its lease: exact simulation of
  /// the lease rows with the lease-local fault slice, the tenant's own
  /// bound/codec, and a freshly balanced pipeline. The stream is
  /// byte-identical to the tenant's solo run at the same ε regardless
  /// of lease placement or degradation. Throws ceresz::Error for an
  /// unknown tenant.
  mapping::WaferRunResult compress(TenantId id, std::span<const f32> data);

  /// The reverse path, same contract.
  mapping::WaferRunResult decompress(TenantId id, std::span<const u8> stream);

 private:
  struct QueuedSpec {
    TenantSpec spec;
    u64 arrival = 0;  ///< FIFO tiebreak within a priority class
  };

  // All *_locked members require mu_ to be held.
  u32 pipes_in_row_locked(u32 row, u32 pipeline_length) const;
  mapping::PerfPrediction predict_window_locked(
      const mapping::PipelinePlan& plan, const TenantSpec& spec,
      u32 row_begin, u32 row_count) const;
  bool meets_quota(const mapping::PerfPrediction& p,
                   const TenantSpec& spec) const;
  mapping::PipelinePlan plan_for(const TenantSpec& spec) const;
  u32 live_pes_locked(u32 row_begin, u32 row_count) const;

  struct Placement {
    u32 row_begin = 0;
    u32 row_count = 0;
    mapping::PerfPrediction predicted;
  };
  /// Smallest row window (earliest on ties) in the free rows whose
  /// prediction meets the quota.
  std::optional<Placement> find_placement_locked(
      const mapping::PipelinePlan& plan, const TenantSpec& spec) const;

  AdmissionResult admit_locked(const TenantSpec& spec, bool from_queue);
  void install_lease_locked(const TenantSpec& spec, const Placement& put,
                            const mapping::PipelinePlan& plan);
  void remap_lease_locked(Lease& lease);
  void rebalance_locked();
  void update_lease_gauges_locked(const Lease& lease);
  wse::FaultPlan lease_fault_slice_locked(const Lease& lease) const;

  void bump(const char* name, f64 v = 1.0) const;
  void set_gauge(const std::string& name, f64 v) const;

  CoordinatorOptions options_;
  mapping::PerfModel model_;

  mutable std::mutex mu_;
  std::map<TenantId, Lease> leases_;
  /// row -> owning tenant (0 = free); the single source of placement
  /// truth, so overlap bugs cannot hide in per-lease state.
  std::vector<TenantId> row_owner_;
  std::vector<QueuedSpec> queue_;
  u64 next_arrival_ = 0;
  wse::FaultPlan wafer_faults_;
};

}  // namespace ceresz::tenant
