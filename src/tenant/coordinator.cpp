#include "tenant/coordinator.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/timer.h"
#include "core/stage.h"

namespace ceresz::tenant {

namespace {

/// Format a throughput for verdict reasons without dragging <sstream>
/// into the hot path. Three decimals is plenty for GB/s quotas.
std::string gbps(f64 v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kBatch: return "batch";
    case Priority::kStandard: return "standard";
    case Priority::kInteractive: return "interactive";
  }
  return "unknown";
}

const char* verdict_name(AdmissionVerdict v) {
  switch (v) {
    case AdmissionVerdict::kAdmitted: return "ADMITTED";
    case AdmissionVerdict::kQueued: return "QUEUED";
    case AdmissionVerdict::kRejected: return "REJECTED";
  }
  return "unknown";
}

std::string tenant_metric_name(TenantId id, std::string_view suffix) {
  std::string name = "ceresz_tenant_";
  name += std::to_string(id);
  name += '_';
  name += suffix;
  return name;
}

void declare_tenant_metrics(obs::MetricsRegistry& reg) {
  reg.counter(kMetricTenantAdmitted);
  reg.counter(kMetricTenantRejected);
  reg.counter(kMetricTenantQueued);
  reg.counter(kMetricTenantReleased);
  reg.counter(kMetricTenantRemapped);
  reg.counter(kMetricTenantQuotaViolations);
  reg.gauge(kMetricTenantActive);
}

WaferCoordinator::WaferCoordinator(CoordinatorOptions options)
    : options_(options), model_(options.wse) {
  CERESZ_CHECK(options_.rows >= 1 && options_.cols >= 1,
               "WaferCoordinator: empty wafer");
  CERESZ_CHECK(options_.max_tenants >= 1,
               "WaferCoordinator: need room for at least one tenant");
  row_owner_.assign(options_.rows, 0);
  if (options_.metrics != nullptr) declare_tenant_metrics(*options_.metrics);
}

void WaferCoordinator::bump(const char* name, f64 v) const {
  if (options_.metrics != nullptr) options_.metrics->counter(name).add(v);
}

void WaferCoordinator::set_gauge(const std::string& name, f64 v) const {
  if (options_.metrics != nullptr) options_.metrics->gauge(name).set(v);
}

// --- prediction helpers -----------------------------------------------------

u32 WaferCoordinator::pipes_in_row_locked(u32 row, u32 pipeline_length) const {
  // Traffic streams west to east: the first dead PE truncates the row's
  // usable columns (the same rule as WaferMapper's plan_layout).
  const std::optional<u32> dead = wafer_faults_.first_dead_col(row);
  const u32 usable_cols = dead.has_value() ? *dead : options_.cols;
  return usable_cols / pipeline_length;
}

mapping::PerfPrediction WaferCoordinator::predict_window_locked(
    const mapping::PipelinePlan& plan, const TenantSpec& spec, u32 row_begin,
    u32 row_count) const {
  const u32 pl = plan.length();
  u32 surviving = 0;
  u32 min_pipes = 0;
  for (u32 r = row_begin; r < row_begin + row_count; ++r) {
    const u32 pipes = pipes_in_row_locked(r, pl);
    if (pipes == 0) continue;
    min_pipes = surviving == 0 ? pipes : std::min(min_pipes, pipes);
    ++surviving;
  }
  // surviving == 0 yields the typed feasible = false verdict.
  return model_.predict_degraded(
      plan, surviving, min_pipes, spec.blocks_per_request, spec.codec.block_size,
      spec.codec.block_size * static_cast<u32>(sizeof(f32)));
}

bool WaferCoordinator::meets_quota(const mapping::PerfPrediction& p,
                                   const TenantSpec& spec) const {
  return p.feasible && (spec.min_throughput_gbps <= 0.0 ||
                        p.throughput_gbps >= spec.min_throughput_gbps);
}

mapping::PipelinePlan WaferCoordinator::plan_for(const TenantSpec& spec) const {
  const mapping::GreedyScheduler scheduler(options_.cost,
                                           spec.codec.block_size);
  return scheduler.distribute(
      core::compression_substages(std::max<u32>(1, spec.est_fixed_length)),
      spec.pipeline_length);
}

u32 WaferCoordinator::live_pes_locked(u32 row_begin, u32 row_count) const {
  u32 dead = 0;
  wafer_faults_.for_each_dead([&](u32 r, u32 c) {
    if (r >= row_begin && r < row_begin + row_count && c < options_.cols) {
      ++dead;
    }
  });
  return row_count * options_.cols - dead;
}

std::optional<WaferCoordinator::Placement>
WaferCoordinator::find_placement_locked(const mapping::PipelinePlan& plan,
                                        const TenantSpec& spec) const {
  // Smallest window first, earliest start on ties: tight packing leaves
  // the biggest contiguous gap for the next tenant. Windows may span
  // rows the faults already killed (prediction accounts for them), but
  // never rows another tenant owns.
  for (u32 r = 1; r <= options_.rows; ++r) {
    for (u32 start = 0; start + r <= options_.rows; ++start) {
      bool free = true;
      for (u32 row = start; row < start + r && free; ++row) {
        free = row_owner_[row] == 0;
      }
      if (!free) continue;
      mapping::PerfPrediction p =
          predict_window_locked(plan, spec, start, r);
      if (meets_quota(p, spec)) {
        return Placement{start, r, std::move(p)};
      }
    }
  }
  return std::nullopt;
}

// --- admission --------------------------------------------------------------

AdmissionResult WaferCoordinator::admit(const TenantSpec& spec) {
  std::lock_guard lock(mu_);
  return admit_locked(spec, /*from_queue=*/false);
}

AdmissionResult WaferCoordinator::admit_locked(const TenantSpec& spec,
                                               bool from_queue) {
  AdmissionResult result;
  const auto reject = [&](std::string reason) {
    result.verdict = AdmissionVerdict::kRejected;
    result.reason = std::move(reason);
    bump(kMetricTenantRejected);
    return result;
  };

  if (spec.id == 0) {
    return reject("tenant admission: tenant id 0 is reserved for "
                  "untenanted traffic");
  }
  if (leases_.contains(spec.id)) {
    return reject("tenant admission: tenant is already active");
  }
  if (!from_queue) {
    for (const QueuedSpec& q : queue_) {
      if (q.spec.id == spec.id) {
        return reject("tenant admission: tenant is already queued");
      }
    }
  }
  try {
    spec.codec.validate();
  } catch (const Error& e) {
    return reject(std::string("tenant admission: ") + e.what());
  }
  if (spec.pipeline_length < 1 || spec.pipeline_length > options_.cols) {
    return reject("tenant admission: pipeline length must be in [1, cols]");
  }

  const mapping::PipelinePlan plan = plan_for(spec);

  // Formula (2)-(4) feasibility bound: the prediction for the ENTIRE
  // wafer, fully healthy. A quota even that cannot meet is rejected
  // outright — queueing would be a lie, no future placement can help.
  {
    const mapping::PerfPrediction best = model_.predict_degraded(
        plan, options_.rows, options_.cols / plan.length(),
        spec.blocks_per_request, spec.codec.block_size,
        spec.codec.block_size * static_cast<u32>(sizeof(f32)));
    if (!meets_quota(best, spec)) {
      return reject("tenant admission: quota " +
                    gbps(spec.min_throughput_gbps) +
                    " GB/s exceeds the predicted " +
                    gbps(best.throughput_gbps) +
                    " GB/s of the whole healthy wafer");
    }
  }

  std::string unfit_reason;
  if (leases_.size() >= options_.max_tenants) {
    unfit_reason = "tenant admission: at the active-tenant limit";
  } else {
    const std::optional<Placement> put = find_placement_locked(plan, spec);
    if (put.has_value()) {
      install_lease_locked(spec, *put, plan);
      result.verdict = AdmissionVerdict::kAdmitted;
      result.reason = "admitted: " + std::to_string(put->row_count) +
                      " row(s) predicted at " +
                      gbps(put->predicted.throughput_gbps) + " GB/s";
      result.lease = leases_.at(spec.id);
      return result;
    }
    unfit_reason =
        "tenant admission: no free row window meets the quota right now";
  }

  // Feasible but unplaceable: queue when allowed, shed (BUSY-style)
  // when not. A queued caller retries nothing — release()/rebalance
  // admits it the moment capacity frees up.
  if (from_queue) {
    result.verdict = AdmissionVerdict::kQueued;
    result.reason = unfit_reason;
    return result;  // already in the queue; no metric double-count
  }
  if (options_.queue_when_full && queue_.size() < options_.max_queued) {
    queue_.push_back(QueuedSpec{spec, next_arrival_++});
    bump(kMetricTenantQueued);
    result.verdict = AdmissionVerdict::kQueued;
    result.reason = unfit_reason + "; queued at position " +
                    std::to_string(queue_.size());
    return result;
  }
  return reject(unfit_reason + (options_.queue_when_full
                                    ? "; admission queue is full"
                                    : "; queueing is disabled"));
}

void WaferCoordinator::install_lease_locked(const TenantSpec& spec,
                                            const Placement& put,
                                            const mapping::PipelinePlan& plan) {
  Lease lease;
  lease.spec = spec;
  lease.row_begin = put.row_begin;
  lease.row_count = put.row_count;
  lease.cols = options_.cols;
  lease.plan = plan;
  lease.predicted = put.predicted;
  lease.live_pes = live_pes_locked(put.row_begin, put.row_count);
  for (u32 r = put.row_begin; r < put.row_begin + put.row_count; ++r) {
    row_owner_[r] = spec.id;
  }
  update_lease_gauges_locked(lease);
  leases_.emplace(spec.id, std::move(lease));
  bump(kMetricTenantAdmitted);
  set_gauge(kMetricTenantActive, static_cast<f64>(leases_.size()));
}

void WaferCoordinator::update_lease_gauges_locked(const Lease& lease) {
  set_gauge(tenant_metric_name(lease.spec.id, "lease_pes"),
            static_cast<f64>(lease.live_pes));
}

// --- departure + rebalance --------------------------------------------------

bool WaferCoordinator::release(TenantId id) {
  std::lock_guard lock(mu_);
  const auto queued = std::find_if(
      queue_.begin(), queue_.end(),
      [&](const QueuedSpec& q) { return q.spec.id == id; });
  if (queued != queue_.end()) {
    queue_.erase(queued);
    return true;
  }
  const auto it = leases_.find(id);
  if (it == leases_.end()) return false;
  for (u32 r = it->second.row_begin;
       r < it->second.row_begin + it->second.row_count; ++r) {
    row_owner_[r] = 0;
  }
  set_gauge(tenant_metric_name(id, "lease_pes"), 0.0);
  leases_.erase(it);
  bump(kMetricTenantReleased);
  set_gauge(kMetricTenantActive, static_cast<f64>(leases_.size()));
  rebalance_locked();
  return true;
}

void WaferCoordinator::rebalance_locked() {
  // 1. Degraded survivors first: a lease below its quota may now grow
  //    into the freed rows (counts as an elastic remap).
  for (auto& [id, lease] : leases_) {
    if (!meets_quota(lease.predicted, lease.spec)) {
      remap_lease_locked(lease);
    }
  }
  // 2. Drain the queue, highest priority first, FIFO within a class.
  std::vector<std::size_t> order(queue_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (queue_[a].spec.priority != queue_[b].spec.priority) {
                       return queue_[a].spec.priority > queue_[b].spec.priority;
                     }
                     return queue_[a].arrival < queue_[b].arrival;
                   });
  std::vector<TenantId> admitted;
  for (const std::size_t idx : order) {
    const AdmissionResult r = admit_locked(queue_[idx].spec,
                                           /*from_queue=*/true);
    if (r.verdict == AdmissionVerdict::kAdmitted) {
      admitted.push_back(queue_[idx].spec.id);
    }
  }
  std::erase_if(queue_, [&](const QueuedSpec& q) {
    return std::find(admitted.begin(), admitted.end(), q.spec.id) !=
           admitted.end();
  });
}

// --- faults + elastic remapping ---------------------------------------------

void WaferCoordinator::kill_pe(u32 row, u32 col) {
  std::lock_guard lock(mu_);
  CERESZ_CHECK(row < options_.rows && col < options_.cols,
               "WaferCoordinator: fault outside the wafer");
  wafer_faults_.kill_pe(row, col);
  const TenantId owner = row_owner_[row];
  if (owner != 0) remap_lease_locked(leases_.at(owner));
}

void WaferCoordinator::inject_faults(const wse::FaultPlan& plan) {
  std::lock_guard lock(mu_);
  // Merge in wafer coordinates, remembering which tenants took a dead
  // PE — only those get remapped (slow/drop/corrupt faults change the
  // simulated run, not the placement-governing prediction).
  std::vector<TenantId> hit;
  plan.for_each_dead([&](u32 r, u32 c) {
    if (r >= options_.rows || c >= options_.cols) return;
    wafer_faults_.kill_pe(r, c);
    const TenantId owner = row_owner_[r];
    if (owner != 0 &&
        std::find(hit.begin(), hit.end(), owner) == hit.end()) {
      hit.push_back(owner);
    }
  });
  plan.for_each_slow([&](u32 r, u32 c, f64 mult) {
    if (r < options_.rows && c < options_.cols) {
      wafer_faults_.slow_pe(r, c, mult);
    }
  });
  plan.for_each_delivery_fault(
      [&](u32 r, u32 c, u64 arrival, wse::DeliveryFault fault) {
        if (r >= options_.rows || c >= options_.cols) return;
        if (fault == wse::DeliveryFault::kDrop) {
          wafer_faults_.drop_delivery(r, c, arrival);
        } else if (fault == wse::DeliveryFault::kCorrupt) {
          wafer_faults_.corrupt_delivery(r, c, arrival);
        }
      });
  for (const TenantId id : hit) {
    remap_lease_locked(leases_.at(id));
  }
}

void WaferCoordinator::remap_lease_locked(Lease& lease) {
  ++lease.remaps;
  bump(kMetricTenantRemapped);

  mapping::PerfPrediction pred = predict_window_locked(
      lease.plan, lease.spec, lease.row_begin, lease.row_count);

  // Grow: annex adjacent FREE rows (south first, then north) until the
  // prediction clears the quota again. Neighboring leases are never
  // touched — elasticity spends only unowned rows.
  while (!meets_quota(pred, lease.spec)) {
    const u32 south = lease.row_begin + lease.row_count;
    if (south < options_.rows && row_owner_[south] == 0) {
      row_owner_[south] = lease.spec.id;
      ++lease.row_count;
    } else if (lease.row_begin > 0 &&
               row_owner_[lease.row_begin - 1] == 0) {
      row_owner_[lease.row_begin - 1] = lease.spec.id;
      --lease.row_begin;
      ++lease.row_count;
    } else {
      break;  // boxed in
    }
    pred = predict_window_locked(lease.plan, lease.spec, lease.row_begin,
                                 lease.row_count);
  }

  // Re-place: when growing in place cannot recover the quota, look for
  // a fresh window anywhere in the free rows (the lease's own rows are
  // candidates too — it may shrink back onto its healthy subset).
  if (!meets_quota(pred, lease.spec)) {
    for (u32 r = lease.row_begin; r < lease.row_begin + lease.row_count;
         ++r) {
      row_owner_[r] = 0;
    }
    const std::optional<Placement> put =
        find_placement_locked(lease.plan, lease.spec);
    if (put.has_value()) {
      lease.row_begin = put->row_begin;
      lease.row_count = put->row_count;
      pred = put->predicted;
    }
    // No window meets the quota either: keep the (grown) degraded
    // placement and serve best-effort, loudly.
    for (u32 r = lease.row_begin; r < lease.row_begin + lease.row_count;
         ++r) {
      row_owner_[r] = lease.spec.id;
    }
  }

  if (!meets_quota(pred, lease.spec)) {
    bump(kMetricTenantQuotaViolations);
  }
  lease.predicted = std::move(pred);
  lease.live_pes = live_pes_locked(lease.row_begin, lease.row_count);
  update_lease_gauges_locked(lease);
}

// --- queries ----------------------------------------------------------------

std::optional<Lease> WaferCoordinator::lease_of(TenantId id) const {
  std::lock_guard lock(mu_);
  const auto it = leases_.find(id);
  return it == leases_.end() ? std::nullopt
                             : std::optional<Lease>(it->second);
}

std::vector<Lease> WaferCoordinator::leases() const {
  std::lock_guard lock(mu_);
  std::vector<Lease> out;
  out.reserve(leases_.size());
  for (const auto& [id, lease] : leases_) out.push_back(lease);
  return out;
}

std::size_t WaferCoordinator::active_count() const {
  std::lock_guard lock(mu_);
  return leases_.size();
}

std::size_t WaferCoordinator::queued_count() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

u32 WaferCoordinator::free_rows() const {
  std::lock_guard lock(mu_);
  return static_cast<u32>(
      std::count(row_owner_.begin(), row_owner_.end(), TenantId{0}));
}

// --- per-lease execution ----------------------------------------------------

wse::FaultPlan WaferCoordinator::lease_fault_slice_locked(
    const Lease& lease) const {
  // Re-express the wafer faults inside the lease in lease-local row
  // coordinates (columns are shared: leases span the full width).
  return wafer_faults_.slice_rows(lease.row_begin, lease.row_count,
                                  lease.cols);
}

mapping::WaferRunResult WaferCoordinator::compress(TenantId id,
                                                   std::span<const f32> data) {
  mapping::MapperOptions mopt;
  TenantSpec spec;
  {
    std::lock_guard lock(mu_);
    const auto it = leases_.find(id);
    CERESZ_CHECK(it != leases_.end(),
                 "WaferCoordinator: compress for a tenant with no lease");
    const Lease& lease = it->second;
    spec = lease.spec;
    mopt.rows = lease.row_count;
    mopt.cols = lease.cols;
    mopt.fault_plan = lease_fault_slice_locked(lease);
  }
  mopt.pipeline_length = spec.pipeline_length;
  mopt.codec = spec.codec;
  mopt.cost = options_.cost;
  mopt.wse = options_.wse;
  // Faulted leases require exact simulation; every lease row is
  // simulated exactly, with row bands spread over sim_threads workers.
  mopt.max_exact_rows = mopt.rows;
  mopt.sim_threads = options_.sim_threads;
  mopt.collect_output = true;
  mopt.metrics = options_.metrics;

  const u64 start = now_ns();
  const mapping::WaferMapper mapper(mopt);
  mapping::WaferRunResult result = mapper.compress(data, spec.bound);
  if (options_.metrics != nullptr) {
    options_.metrics->counter(tenant_metric_name(id, "requests_total")).add();
    options_.metrics
        ->histogram(tenant_metric_name(id, "seconds"),
                    obs::MetricsRegistry::default_seconds_buckets())
        .observe(static_cast<f64>(now_ns() - start) * 1e-9);
  }
  return result;
}

mapping::WaferRunResult WaferCoordinator::decompress(
    TenantId id, std::span<const u8> stream) {
  mapping::MapperOptions mopt;
  TenantSpec spec;
  {
    std::lock_guard lock(mu_);
    const auto it = leases_.find(id);
    CERESZ_CHECK(it != leases_.end(),
                 "WaferCoordinator: decompress for a tenant with no lease");
    const Lease& lease = it->second;
    spec = lease.spec;
    mopt.rows = lease.row_count;
    mopt.cols = lease.cols;
    mopt.fault_plan = lease_fault_slice_locked(lease);
  }
  mopt.pipeline_length = spec.pipeline_length;
  mopt.codec = spec.codec;
  mopt.cost = options_.cost;
  mopt.wse = options_.wse;
  mopt.max_exact_rows = mopt.rows;
  mopt.sim_threads = options_.sim_threads;
  mopt.collect_output = true;
  mopt.metrics = options_.metrics;

  const u64 start = now_ns();
  const mapping::WaferMapper mapper(mopt);
  mapping::WaferRunResult result = mapper.decompress(stream);
  if (options_.metrics != nullptr) {
    options_.metrics->counter(tenant_metric_name(id, "requests_total")).add();
    options_.metrics
        ->histogram(tenant_metric_name(id, "seconds"),
                    obs::MetricsRegistry::default_seconds_buckets())
        .observe(static_cast<f64>(now_ns() - start) * 1e-9);
  }
  return result;
}

}  // namespace ceresz::tenant
