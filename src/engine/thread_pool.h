// Fixed-size worker pool fed by a bounded work queue.
//
// submit() applies backpressure: it blocks until a queue slot frees up, so
// a fast producer cannot buffer an unbounded number of pending tasks.
// Tasks must not throw — the engine wraps its chunk work in try/catch and
// records the first exception itself, because a task failure must not tear
// down the pool while sibling chunks are still in flight. The one sanctioned
// exception is WorkerCrash: a task that throws it takes its worker thread
// down with it (modeling a crashed worker), which the pool survives — the
// remaining workers keep draining the queue, and alive() reports how many
// are left so callers can fall back to inline execution once the pool has
// collapsed.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/types.h"
#include "engine/bounded_queue.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace ceresz::engine {

/// Thrown by a task to kill the worker executing it (fault injection and
/// genuinely unrecoverable per-thread state). The pool counts the crash and
/// carries on with one fewer worker; the task itself is considered finished
/// (failed) — record any per-task outcome before throwing.
class WorkerCrash : public std::exception {
 public:
  const char* what() const noexcept override {
    return "worker thread crashed";
  }
};

class ThreadPool {
 public:
  /// `threads` must be >= 1. `queue_capacity` bounds the number of
  /// submitted-but-not-started tasks (0 picks 2 * threads). A non-null
  /// `tracer` records worker lifetime + per-task busy spans and a
  /// "pool.queue_depth" counter track; it must outlive the pool.
  explicit ThreadPool(u32 threads, std::size_t queue_capacity = 0,
                      obs::Tracer* tracer = nullptr);

  /// Joins the workers; pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task, blocking while the queue is full. Must not be called
  /// after the destructor has begun. Unsafe once the pool may have
  /// collapsed (alive() == 0): nothing would ever free a queue slot — use
  /// try_submit() + run_one_inline() there.
  ///
  /// The submitter's ambient obs::TraceContext is captured with the task
  /// and re-installed around its execution (worker or inline), so spans
  /// recorded inside pool tasks stay attributed to the request that
  /// submitted them.
  void submit(std::function<void()> task);

  /// Non-blocking submit: false when the queue is full (caller should run
  /// a queued task inline or wait and retry).
  bool try_submit(std::function<void()> task);

  /// Pop one queued task and execute it on the calling thread. Returns
  /// false when the queue was empty. A WorkerCrash thrown by the task is
  /// swallowed (the "worker" is the borrowed caller; there is no thread to
  /// kill). This is how callers drain the queue after the pool collapses —
  /// and how they make progress while it is merely saturated.
  bool run_one_inline();

  /// Block until every submitted task has finished executing. Do not call
  /// when the pool may have collapsed with tasks still queued — drain via
  /// run_one_inline() first.
  void wait_idle();

  u32 size() const { return static_cast<u32>(workers_.size()); }

  /// Workers still running (not crashed). 0 = the pool has collapsed.
  u32 alive() const { return alive_.load(std::memory_order_acquire); }

  /// Workers lost to WorkerCrash so far.
  u32 crashed_workers() const {
    return crashed_.load(std::memory_order_acquire);
  }

  /// Tasks queued but not yet started.
  std::size_t queue_depth() const { return queue_.depth(); }

  /// Seconds each worker spent executing tasks. Call only while idle
  /// (after wait_idle() or from the destructor's thread post-join).
  std::vector<f64> busy_seconds() const;

  /// Largest backlog the work queue ever reached.
  std::size_t queue_high_water() const { return queue_.high_water(); }

 private:
  /// A queued task plus the trace context active where it was submitted.
  struct PoolTask {
    std::function<void()> fn;
    obs::TraceContext ctx;
  };

  void worker_loop(u32 index);
  void run_tasks(u32 index);

  obs::Tracer* tracer_ = nullptr;  // set before workers start, then const
  BoundedQueue<PoolTask> queue_;
  std::vector<std::thread> workers_;
  std::vector<f64> busy_seconds_;  // one slot per worker, owner-written
  std::atomic<u32> alive_{0};
  std::atomic<u32> crashed_{0};

  // in_flight_ counts submitted-but-unfinished tasks; idle_ fires when it
  // reaches zero. The mutex also orders busy_seconds_ writes (made before
  // the finishing decrement) with reads after wait_idle().
  mutable std::mutex state_mutex_;
  std::condition_variable idle_;
  u64 in_flight_ = 0;
};

}  // namespace ceresz::engine
