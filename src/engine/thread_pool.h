// Fixed-size worker pool fed by a bounded work queue.
//
// submit() applies backpressure: it blocks until a queue slot frees up, so
// a fast producer cannot buffer an unbounded number of pending tasks.
// Tasks must not throw — the engine wraps its chunk work in try/catch and
// records the first exception itself, because a task failure must not tear
// down the pool while sibling chunks are still in flight.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "common/types.h"
#include "engine/bounded_queue.h"

namespace ceresz::engine {

class ThreadPool {
 public:
  /// `threads` must be >= 1. `queue_capacity` bounds the number of
  /// submitted-but-not-started tasks (0 picks 2 * threads).
  explicit ThreadPool(u32 threads, std::size_t queue_capacity = 0);

  /// Joins the workers; pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task, blocking while the queue is full. Must not be called
  /// after the destructor has begun.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  u32 size() const { return static_cast<u32>(workers_.size()); }

  /// Seconds each worker spent executing tasks. Call only while idle
  /// (after wait_idle() or from the destructor's thread post-join).
  std::vector<f64> busy_seconds() const;

  /// Largest backlog the work queue ever reached.
  std::size_t queue_high_water() const { return queue_.high_water(); }

 private:
  void worker_loop(u32 index);

  BoundedQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::vector<f64> busy_seconds_;  // one slot per worker, owner-written

  // in_flight_ counts submitted-but-unfinished tasks; idle_ fires when it
  // reaches zero. The mutex also orders busy_seconds_ writes (made before
  // the finishing decrement) with reads after wait_idle().
  mutable std::mutex state_mutex_;
  std::condition_variable idle_;
  u64 in_flight_ = 0;
};

}  // namespace ceresz::engine
