#include "engine/parallel_engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "common/checksum.h"
#include "common/error.h"
#include "common/timer.h"
#include "engine/chunk_runner.h"
#include "engine/thread_pool.h"
#include "io/chunk_container.h"

namespace ceresz::engine {

namespace {

/// Per-chunk compression output, later assembled in chunk order.
struct ChunkOutput {
  std::vector<u8> bytes;
  core::StreamStats stats;
  f64 fl_sum = 0.0;  ///< sum of fixed lengths over non-zero blocks
  u32 crc = 0;
};

/// Handles into the per-run metrics registry — the run's single write
/// path for every scalar that EngineStats later reports (EngineStats is
/// materialized from the registry snapshot, never updated directly).
struct EngineMetrics {
  obs::Counter& chunks;
  obs::Counter& uncompressed_bytes;
  obs::Counter& compressed_bytes;
  obs::Counter& retries;
  obs::Counter& timeouts;
  obs::Counter& worker_crashes;
  obs::Counter& fallback_chunks;
  obs::Counter& quarantined;
  obs::Gauge& threads;
  obs::Gauge& queue_high_water;
  obs::Gauge& wall_seconds;
  obs::Gauge& busy_seconds;
  obs::Histogram& chunk_seconds;

  explicit EngineMetrics(obs::MetricsRegistry& reg)
      : chunks(reg.counter(kMetricChunks)),
        uncompressed_bytes(reg.counter(kMetricUncompressedBytes)),
        compressed_bytes(reg.counter(kMetricCompressedBytes)),
        retries(reg.counter(kMetricRetries)),
        timeouts(reg.counter(kMetricTimeouts)),
        worker_crashes(reg.counter(kMetricWorkerCrashes)),
        fallback_chunks(reg.counter(kMetricFallbackChunks)),
        quarantined(reg.counter(kMetricQuarantined)),
        threads(reg.gauge(kMetricThreads)),
        queue_high_water(reg.gauge(kMetricQueueHighWater)),
        wall_seconds(reg.gauge(kMetricWallSeconds)),
        busy_seconds(reg.gauge(kMetricBusySeconds)),
        chunk_seconds(reg.histogram(
            kMetricChunkSeconds,
            obs::MetricsRegistry::default_seconds_buckets())) {}

  /// Fold a ChunkRunner report into the run's counters.
  void merge(const RunReport& report) {
    retries.add(report.retries);
    timeouts.add(report.timeouts);
    worker_crashes.add(report.worker_crashes);
    fallback_chunks.add(report.fallback_chunks);
  }

  /// End-of-run gauges, set just before the snapshot is taken.
  void finish(u32 thread_count, const ThreadPool& pool, f64 wall) {
    threads.set(thread_count);
    queue_high_water.set(static_cast<f64>(pool.queue_high_water()));
    wall_seconds.set(wall);
    f64 busy = 0.0;
    for (f64 s : pool.busy_seconds()) busy += s;
    busy_seconds.set(busy);
  }
};

/// Apply the injected fault (if any) for this attempt. kStall sleeps in
/// cancellable 1 ms ticks; if the watchdog fires mid-stall the attempt
/// aborts with ChunkTimeout, otherwise it proceeds with the real work
/// (modeling a worker that was slow, not broken).
void maybe_inject(const WorkerFaultPlan& plan, u64 chunk, u32 attempt,
                  const CancelToken& cancel) {
  switch (plan.fault(chunk, attempt)) {
    case WorkerFault::kNone:
      return;
    case WorkerFault::kThrow:
      throw Error("injected transient fault at chunk " +
                  std::to_string(chunk) + " attempt " +
                  std::to_string(attempt));
    case WorkerFault::kCrash:
      throw WorkerCrash{};
    case WorkerFault::kStall: {
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(plan.stall_ms);
      while (std::chrono::steady_clock::now() < until) {
        if (cancel.cancelled()) {
          throw ChunkTimeout("injected stall at chunk " +
                             std::to_string(chunk) +
                             " was cancelled by the watchdog");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return;
    }
  }
}

}  // namespace

void declare_engine_metrics(obs::MetricsRegistry& reg) {
  EngineMetrics declared(reg);
  (void)declared;
}

ParallelEngine::ParallelEngine(EngineOptions options)
    : options_(options), block_codec_(options.codec) {
  const u32 L = block_codec_.config().block_size;
  CERESZ_CHECK(options_.chunk_elems > 0 && options_.chunk_elems % L == 0,
               "ParallelEngine: chunk_elems must be a positive multiple of "
               "the block size");
}

u32 ParallelEngine::resolved_threads() const {
  if (options_.threads > 0) return options_.threads;
  return std::max(1u, std::thread::hardware_concurrency());
}

bool ParallelEngine::is_chunked_stream(std::span<const u8> stream) {
  return io::is_chunked_stream(stream);
}

EngineResult ParallelEngine::compress(std::span<const f32> data,
                                      core::ErrorBound bound) const {
  const core::CodecConfig& cfg = block_codec_.config();
  const u32 L = cfg.block_size;
  const u64 n = data.size();
  const u64 C = options_.chunk_elems;
  const u64 n_chunks = (n + C - 1) / C;

  WallTimer timer;
  obs::Tracer* const tracer = options_.tracer;
  obs::MetricsRegistry reg;
  EngineMetrics em(reg);
  obs::SpanGuard run_span(tracer, "engine.compress", "engine", "chunks",
                          static_cast<i64>(n_chunks), "elements",
                          static_cast<i64>(n));
  const u32 threads = resolved_threads();
  ThreadPool pool(threads, options_.queue_capacity, tracer);

  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto record_error = [&] {
    std::lock_guard lock(error_mutex);
    if (!first_error) first_error = std::current_exception();
  };

  // Resolve the bound. A REL bound needs the global value range; min/max
  // reduce exactly and order-independently, so computing them per-slice on
  // the pool keeps eps (and therefore every payload byte) identical to the
  // single-threaded StreamCodec result.
  f64 eps;
  if (bound.mode == core::ErrorBound::Mode::kAbsolute || n == 0) {
    eps = bound.resolve(0.0);
  } else {
    obs::SpanGuard minmax_span(tracer, "engine.minmax", "engine");
    std::vector<f64> slice_min(n_chunks), slice_max(n_chunks);
    for (u64 c = 0; c < n_chunks; ++c) {
      pool.submit([&, c] {
        try {
          const u64 begin = c * C;
          const u64 end = std::min(n, begin + C);
          f64 lo = data[begin], hi = data[begin];
          for (u64 i = begin + 1; i < end; ++i) {
            const f64 v = data[i];
            if (v < lo) lo = v;
            if (v > hi) hi = v;
          }
          slice_min[c] = lo;
          slice_max[c] = hi;
        } catch (...) {
          record_error();
        }
      });
    }
    pool.wait_idle();
    if (first_error) std::rethrow_exception(first_error);
    f64 lo = slice_min[0], hi = slice_max[0];
    for (u64 c = 1; c < n_chunks; ++c) {
      lo = std::min(lo, slice_min[c]);
      hi = std::max(hi, slice_max[c]);
    }
    eps = bound.resolve(hi - lo);
  }

  // Compress chunks. Each attempt builds a fresh ChunkOutput and installs
  // it only on success, so a failed or retried attempt never leaves a
  // half-written slot; the payload bytes depend on chunk boundaries alone
  // — never on scheduling, retries, or which worker ran the chunk.
  std::vector<ChunkOutput> outs(n_chunks);
  ChunkRunner runner(pool, options_.retry);
  const RunReport report = runner.run(
      n_chunks, [&](u64 c, u32 attempt, const CancelToken& cancel) {
        const u64 attempt_start = now_ns();
        obs::SpanGuard span(tracer, "chunk.compress", "engine", "chunk",
                            static_cast<i64>(c), "attempt",
                            static_cast<i64>(attempt));
        if (attempt > 0 && tracer) {
          tracer->instant("chunk.retry", "engine", "chunk",
                          static_cast<i64>(c));
        }
        try {
          maybe_inject(options_.faults, c, attempt, cancel);
          const u64 begin = c * C;
          const u64 end = std::min(n, begin + C);
          ChunkOutput o;
          const u64 blocks = (end - begin + L - 1) / L;
          o.bytes.reserve(blocks * block_codec_.max_compressed_size());
          std::vector<f32> padded(L);
          for (u64 bstart = begin; bstart < end; bstart += L) {
            if (cancel.cancelled()) {
              throw ChunkTimeout("chunk " + std::to_string(c) +
                                 " exceeded its compression deadline");
            }
            const u64 count = std::min<u64>(L, end - bstart);
            std::span<const f32> block;
            if (count == L) {
              block = data.subspan(bstart, L);
            } else {
              std::fill(padded.begin(), padded.end(), 0.0f);
              std::copy_n(data.data() + bstart, count, padded.begin());
              block = padded;
            }
            const core::BlockInfo info =
                block_codec_.compress(block, eps, o.bytes);
            ++o.stats.total_blocks;
            if (info.zero_block) {
              ++o.stats.zero_blocks;
              ++o.stats.fl_histogram[0];
            } else if (info.constant_block) {
              ++o.stats.constant_blocks;
            } else {
              o.fl_sum += info.fixed_length;
              o.stats.max_fixed_length =
                  std::max(o.stats.max_fixed_length, info.fixed_length);
              ++o.stats.fl_histogram[info.fixed_length];
            }
          }
          o.crc = crc32c(o.bytes);
          outs[c] = std::move(o);
        } catch (const ChunkTimeout&) {
          if (tracer) {
            tracer->instant("chunk.timeout", "engine", "chunk",
                            static_cast<i64>(c));
          }
          throw;
        }
        em.chunk_seconds.observe(static_cast<f64>(now_ns() - attempt_start) *
                                 1e-9);
      });
  // All chunks are resolved, but a worker's final busy/span accounting
  // lands after it records the completion — wait for true idleness before
  // reading the pool's counters (see ThreadPool::busy_seconds()).
  pool.wait_idle();
  // Compression has no lenient mode: the caller asked for a complete
  // container, and a chunk that exhausted its attempts means there is
  // none to give.
  if (!report.all_succeeded()) {
    const ChunkFailure& f = report.failed.front();
    throw Error("ParallelEngine: chunk " + std::to_string(f.chunk) +
                " failed after " + std::to_string(options_.retry.max_attempts) +
                " attempt(s): " + f.message);
  }

  // Assemble the container: header + chunk table, then payloads in order.
  io::ChunkedHeader header;
  header.codec_header_bytes = cfg.header_bytes;
  header.block_size = L;
  header.chunk_count = static_cast<u32>(n_chunks);
  header.element_count = n;
  header.chunk_elems = C;
  header.eps_abs = eps;

  std::vector<io::ChunkEntry> entries(n_chunks);
  u64 offset = header.payload_start();
  for (u64 c = 0; c < n_chunks; ++c) {
    entries[c].offset = offset;
    entries[c].compressed_bytes = outs[c].bytes.size();
    entries[c].element_count = std::min(n - c * C, C);
    entries[c].crc32c = outs[c].crc;
    offset += outs[c].bytes.size();
  }

  EngineResult result;
  result.eps_abs = eps;
  result.element_count = n;
  result.stream.reserve(offset);
  {
    obs::SpanGuard assemble_span(tracer, "engine.assemble", "engine");
    io::write_container_prefix(result.stream, header, entries);
    core::StreamStats stream_stats;
    f64 fl_sum = 0.0;
    u64 nonzero = 0;
    for (u64 c = 0; c < n_chunks; ++c) {
      const ChunkOutput& o = outs[c];
      result.stream.insert(result.stream.end(), o.bytes.begin(),
                           o.bytes.end());
      stream_stats.total_blocks += o.stats.total_blocks;
      stream_stats.zero_blocks += o.stats.zero_blocks;
      stream_stats.constant_blocks += o.stats.constant_blocks;
      stream_stats.max_fixed_length =
          std::max(stream_stats.max_fixed_length, o.stats.max_fixed_length);
      for (std::size_t i = 0; i < o.stats.fl_histogram.size(); ++i) {
        stream_stats.fl_histogram[i] += o.stats.fl_histogram[i];
      }
      fl_sum += o.fl_sum;
      nonzero +=
          o.stats.total_blocks - o.stats.zero_blocks - o.stats.constant_blocks;
    }
    stream_stats.mean_fixed_length =
        nonzero > 0 ? fl_sum / static_cast<f64>(nonzero) : 0.0;
    result.stats.stream = stream_stats;
  }

  em.chunks.add(n_chunks);
  em.uncompressed_bytes.add(n * sizeof(f32));
  em.compressed_bytes.add(result.stream.size());
  em.merge(report);
  em.finish(threads, pool, timer.seconds());

  const obs::MetricsSnapshot snap = reg.snapshot();
  const core::StreamStats stream_stats = result.stats.stream;
  result.stats = EngineStats::from_snapshot(snap);
  result.stats.stream = stream_stats;
  result.stats.worker_busy_seconds = pool.busy_seconds();
  if (options_.metrics) options_.metrics->accumulate(snap);
  return result;
}

DecompressResult ParallelEngine::decompress(std::span<const u8> stream) const {
  WallTimer timer;
  obs::Tracer* const tracer = options_.tracer;
  obs::MetricsRegistry reg;
  EngineMetrics em(reg);
  const io::ParsedContainer parsed = io::parse_container(stream);
  const io::ChunkedHeader& h = parsed.header;
  const core::CodecConfig& cfg = block_codec_.config();
  CERESZ_CHECK(h.codec_header_bytes == cfg.header_bytes,
               "ParallelEngine: stream was written with a different block "
               "header width than this engine's configuration");
  CERESZ_CHECK(h.block_size == cfg.block_size,
               "ParallelEngine: stream was written with a different block "
               "size than this engine's configuration");
  const u32 L = cfg.block_size;
  const u64 n = h.element_count;

  obs::SpanGuard run_span(tracer, "engine.decompress", "engine", "chunks",
                          static_cast<i64>(parsed.entries.size()), "elements",
                          static_cast<i64>(n));

  DecompressResult result;
  result.values.assign(n, 0.0f);
  f32* out = result.values.data();

  const u32 threads = resolved_threads();
  ThreadPool pool(threads, options_.queue_capacity, tracer);

  // Each attempt decodes straight into its disjoint output range. Corrupt
  // data (CRC mismatch, undecodable record) throws PermanentChunkError —
  // retrying cannot fix bytes — while injected/transient faults and
  // timeouts go through the ChunkRunner retry ladder. A chunk that still
  // fails is quarantined below: zero-filled and reported in lenient mode,
  // fatal in strict mode.
  ChunkRunner runner(pool, options_.retry);
  const RunReport report = runner.run(
      parsed.entries.size(),
      [&](u64 c, u32 attempt, const CancelToken& cancel) {
        const u64 attempt_start = now_ns();
        obs::SpanGuard span(tracer, "chunk.decompress", "engine", "chunk",
                            static_cast<i64>(c), "attempt",
                            static_cast<i64>(attempt));
        if (attempt > 0 && tracer) {
          tracer->instant("chunk.retry", "engine", "chunk",
                          static_cast<i64>(c));
        }
        maybe_inject(options_.faults, c, attempt, cancel);
        const io::ChunkEntry& e = parsed.entries[c];
        const u64 begin = c * h.chunk_elems;
        const auto payload = stream.subspan(e.offset, e.compressed_bytes);
        if (crc32c(payload) != e.crc32c) {
          throw PermanentChunkError(
              "ParallelEngine: chunk " + std::to_string(c) +
              " failed its CRC32C check (corrupt payload)");
        }
        try {
          u64 pos = 0;
          std::vector<f32> padded(L);
          for (u64 done = 0; done < e.element_count; done += L) {
            if (cancel.cancelled()) {
              throw ChunkTimeout("chunk " + std::to_string(c) +
                                 " exceeded its decompression deadline");
            }
            const u64 count = std::min<u64>(L, e.element_count - done);
            CERESZ_CHECK(pos <= payload.size(),
                         "chunk payload ends before its last block");
            std::span<f32> dst = count == L
                                     ? std::span<f32>(out + begin + done, L)
                                     : std::span<f32>(padded);
            pos += block_codec_.decompress(payload.subspan(pos), h.eps_abs,
                                           dst);
            if (count < L) {
              std::copy_n(padded.begin(), count, out + begin + done);
            }
          }
          CERESZ_CHECK(pos == e.compressed_bytes,
                       "chunk payload has trailing bytes");
        } catch (const ChunkTimeout&) {
          // A timeout is transient, not data corruption.
          if (tracer) {
            tracer->instant("chunk.timeout", "engine", "chunk",
                            static_cast<i64>(c));
          }
          throw;
        } catch (const std::exception& ex) {
          throw PermanentChunkError("ParallelEngine: chunk " +
                                    std::to_string(c) +
                                    " is corrupt: " + ex.what());
        }
        em.chunk_seconds.observe(static_cast<f64>(now_ns() - attempt_start) *
                                 1e-9);
      });

  // See the matching wait in compress(): pool counters are only
  // consistent once every worker has finished its post-task accounting.
  pool.wait_idle();

  for (const ChunkFailure& f : report.failed) {
    if (!options_.lenient) throw Error(f.message);
    const io::ChunkEntry& e = parsed.entries[f.chunk];
    const u64 begin = f.chunk * h.chunk_elems;
    std::fill(out + begin, out + begin + e.element_count, 0.0f);
    result.corrupt_chunks.push_back(f.chunk);
    em.quarantined.add(1);
    if (tracer) {
      tracer->instant("chunk.quarantined", "engine", "chunk",
                      static_cast<i64>(f.chunk));
    }
  }

  em.chunks.add(parsed.entries.size());
  em.uncompressed_bytes.add(n * sizeof(f32));
  em.compressed_bytes.add(stream.size());
  em.merge(report);
  em.finish(threads, pool, timer.seconds());

  const obs::MetricsSnapshot snap = reg.snapshot();
  result.stats = EngineStats::from_snapshot(snap);
  result.stats.worker_busy_seconds = pool.busy_seconds();
  if (options_.metrics) options_.metrics->accumulate(snap);
  return result;
}

}  // namespace ceresz::engine
