// Metrics surface of the parallel engine.
//
// Since the observability subsystem landed, the single source of truth
// for every scalar here is the run's obs::MetricsRegistry (the engine
// increments registry counters while it works); EngineStats is a thin
// per-run VIEW materialized from a registry snapshot by from_snapshot(),
// kept as a plain struct so existing callers and tests are untouched.
// Long-lived serving registries receive the same counters via
// EngineOptions::metrics; docs/observability.md lists the names.
#pragma once

#include <vector>

#include "common/types.h"
#include "core/stream_codec.h"
#include "obs/metrics.h"

namespace ceresz::engine {

/// Canonical engine metric names (Prometheus families). The fault
/// counters mirror docs/robustness.md terminology one-to-one.
inline constexpr const char* kMetricChunks = "ceresz_engine_chunks_total";
inline constexpr const char* kMetricUncompressedBytes =
    "ceresz_engine_uncompressed_bytes_total";
inline constexpr const char* kMetricCompressedBytes =
    "ceresz_engine_compressed_bytes_total";
inline constexpr const char* kMetricRetries = "ceresz_engine_retries_total";
inline constexpr const char* kMetricTimeouts = "ceresz_engine_timeouts_total";
inline constexpr const char* kMetricWorkerCrashes =
    "ceresz_engine_worker_crashes_total";
inline constexpr const char* kMetricFallbackChunks =
    "ceresz_engine_fallback_chunks_total";
inline constexpr const char* kMetricQuarantined =
    "ceresz_engine_quarantined_total";
inline constexpr const char* kMetricThreads = "ceresz_engine_threads";
inline constexpr const char* kMetricQueueHighWater =
    "ceresz_engine_queue_high_water";
inline constexpr const char* kMetricWallSeconds =
    "ceresz_engine_wall_seconds";
inline constexpr const char* kMetricBusySeconds =
    "ceresz_engine_worker_busy_seconds";
inline constexpr const char* kMetricChunkSeconds =
    "ceresz_engine_chunk_seconds";

struct EngineStats {
  u32 threads = 1;
  u64 chunks = 0;
  u64 uncompressed_bytes = 0;
  u64 compressed_bytes = 0;
  f64 wall_seconds = 0.0;

  /// Seconds each worker spent executing chunk tasks.
  std::vector<f64> worker_busy_seconds;

  /// Largest backlog the bounded work queue ever reached.
  u64 queue_high_water = 0;

  // Fault-tolerance counters (all zero on a healthy run).
  u64 retries = 0;          ///< chunk attempts re-dispatched after a failure
  u64 timeouts = 0;         ///< attempts cancelled by the deadline watchdog
  u64 worker_crashes = 0;   ///< worker threads lost mid-run
  u64 fallback_chunks = 0;  ///< attempts run inline after the pool collapsed
  u64 quarantined = 0;      ///< chunks that terminally failed and were
                            ///< zero-filled (lenient decompression only)

  /// Per-block statistics merged across all chunks (compression runs
  /// only; zeroed for decompression).
  core::StreamStats stream;

  /// Materialize the scalar fields from a registry snapshot (the
  /// per-worker busy vector and per-block stream stats are not registry
  /// metrics; the engine fills those separately).
  static EngineStats from_snapshot(const obs::MetricsSnapshot& snap) {
    EngineStats s;
    s.threads = static_cast<u32>(snap.gauge_value(kMetricThreads));
    s.chunks = snap.counter_value(kMetricChunks);
    s.uncompressed_bytes = snap.counter_value(kMetricUncompressedBytes);
    s.compressed_bytes = snap.counter_value(kMetricCompressedBytes);
    s.wall_seconds = snap.gauge_value(kMetricWallSeconds);
    s.queue_high_water =
        static_cast<u64>(snap.gauge_value(kMetricQueueHighWater));
    s.retries = snap.counter_value(kMetricRetries);
    s.timeouts = snap.counter_value(kMetricTimeouts);
    s.worker_crashes = snap.counter_value(kMetricWorkerCrashes);
    s.fallback_chunks = snap.counter_value(kMetricFallbackChunks);
    s.quarantined = snap.counter_value(kMetricQuarantined);
    return s;
  }

  f64 busy_seconds_total() const {
    f64 sum = 0.0;
    for (f64 s : worker_busy_seconds) sum += s;
    return sum;
  }

  /// Uncompressed GB/s over wall time.
  f64 throughput_gbps() const {
    return wall_seconds > 0.0
               ? static_cast<f64>(uncompressed_bytes) / wall_seconds / 1e9
               : 0.0;
  }

  /// Fraction of worker-seconds spent busy: busy / (threads * wall).
  f64 worker_utilization() const {
    return (threads > 0 && wall_seconds > 0.0)
               ? busy_seconds_total() / (threads * wall_seconds)
               : 0.0;
  }

  f64 compression_ratio() const {
    return compressed_bytes > 0
               ? static_cast<f64>(uncompressed_bytes) /
                     static_cast<f64>(compressed_bytes)
               : 0.0;
  }
};

/// Pre-create every engine metric family in `reg` at zero, so exports
/// from a registry that has not served a run yet still advertise the
/// full engine family set.
void declare_engine_metrics(obs::MetricsRegistry& reg);

}  // namespace ceresz::engine
