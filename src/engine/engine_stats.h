// Metrics surface of the parallel engine: per-run aggregates (bytes,
// wall time, throughput), per-worker busy time, queue depth high-water
// mark, and the merged per-block StreamStats of every chunk — everything
// a serving layer needs to export to a monitoring system.
#pragma once

#include <vector>

#include "common/types.h"
#include "core/stream_codec.h"

namespace ceresz::engine {

struct EngineStats {
  u32 threads = 1;
  u64 chunks = 0;
  u64 uncompressed_bytes = 0;
  u64 compressed_bytes = 0;
  f64 wall_seconds = 0.0;

  /// Seconds each worker spent executing chunk tasks.
  std::vector<f64> worker_busy_seconds;

  /// Largest backlog the bounded work queue ever reached.
  u64 queue_high_water = 0;

  // Fault-tolerance counters (all zero on a healthy run).
  u64 retries = 0;          ///< chunk attempts re-dispatched after a failure
  u64 timeouts = 0;         ///< attempts cancelled by the deadline watchdog
  u64 worker_crashes = 0;   ///< worker threads lost mid-run
  u64 fallback_chunks = 0;  ///< attempts run inline after the pool collapsed
  u64 quarantined = 0;      ///< chunks that terminally failed and were
                            ///< zero-filled (lenient decompression only)

  /// Per-block statistics merged across all chunks (compression runs
  /// only; zeroed for decompression).
  core::StreamStats stream;

  f64 busy_seconds_total() const {
    f64 sum = 0.0;
    for (f64 s : worker_busy_seconds) sum += s;
    return sum;
  }

  /// Uncompressed GB/s over wall time.
  f64 throughput_gbps() const {
    return wall_seconds > 0.0
               ? static_cast<f64>(uncompressed_bytes) / wall_seconds / 1e9
               : 0.0;
  }

  /// Fraction of worker-seconds spent busy: busy / (threads * wall).
  f64 worker_utilization() const {
    return (threads > 0 && wall_seconds > 0.0)
               ? busy_seconds_total() / (threads * wall_seconds)
               : 0.0;
  }

  f64 compression_ratio() const {
    return compressed_bytes > 0
               ? static_cast<f64>(uncompressed_bytes) /
                     static_cast<f64>(compressed_bytes)
               : 0.0;
  }
};

}  // namespace ceresz::engine
