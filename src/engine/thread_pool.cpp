#include "engine/thread_pool.h"

#include <algorithm>
#include <string>

#include "common/timer.h"

namespace ceresz::engine {

ThreadPool::ThreadPool(u32 threads, std::size_t queue_capacity,
                       obs::Tracer* tracer)
    : tracer_(tracer),
      queue_(queue_capacity > 0 ? queue_capacity
                                : 2 * std::max<u32>(1, threads)) {
  CERESZ_CHECK(threads >= 1, "ThreadPool: need at least one worker");
  busy_seconds_.assign(threads, 0.0);
  alive_.store(threads, std::memory_order_release);
  workers_.reserve(threads);
  for (u32 i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  queue_.close();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(state_mutex_);
    ++in_flight_;
  }
  if (!queue_.push(
          PoolTask{std::move(task), obs::current_trace_context()})) {
    // Closed pool: roll the count back so wait_idle() cannot hang.
    std::lock_guard lock(state_mutex_);
    --in_flight_;
    CERESZ_FAIL("ThreadPool: submit after shutdown");
  }
  if (tracer_) {
    tracer_->counter("pool.queue_depth",
                     static_cast<i64>(queue_.depth()));
  }
}

bool ThreadPool::try_submit(std::function<void()> task) {
  {
    std::lock_guard lock(state_mutex_);
    ++in_flight_;
  }
  if (!queue_.try_push(
          PoolTask{std::move(task), obs::current_trace_context()})) {
    std::lock_guard lock(state_mutex_);
    if (--in_flight_ == 0) idle_.notify_all();
    return false;
  }
  if (tracer_) {
    tracer_->counter("pool.queue_depth",
                     static_cast<i64>(queue_.depth()));
  }
  return true;
}

bool ThreadPool::run_one_inline() {
  auto task = queue_.try_pop();
  if (!task) return false;
  const obs::TraceContextScope scope(task->ctx);
  try {
    (task->fn)();
  } catch (const WorkerCrash&) {
    // The caller's thread is only borrowed; a crash here kills nothing.
  }
  std::lock_guard lock(state_mutex_);
  if (--in_flight_ == 0) idle_.notify_all();
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(state_mutex_);
  idle_.wait(lock, [&] { return in_flight_ == 0; });
}

std::vector<f64> ThreadPool::busy_seconds() const {
  std::lock_guard lock(state_mutex_);
  return busy_seconds_;
}

void ThreadPool::worker_loop(u32 index) {
  if (!tracer_) {
    run_tasks(index);
    return;
  }
  tracer_->set_thread_name(obs::kHostPid, tracer_->thread_id(),
                           "worker-" + std::to_string(index));
  const u64 start = tracer_->now_rel_ns();
  run_tasks(index);
  obs::TraceEvent ev;
  ev.name = "worker.lifetime";
  ev.cat = "pool";
  ev.ts_ns = start;
  ev.dur_ns = tracer_->now_rel_ns() - start;
  tracer_->record(ev);
}

void ThreadPool::run_tasks(u32 index) {
  while (auto task = queue_.pop()) {
    if (tracer_) {
      tracer_->counter("pool.queue_depth",
                       static_cast<i64>(queue_.depth()));
    }
    const u64 start_ns = now_ns();
    bool crashed = false;
    {
      // The submitter's trace context wraps the busy span too, so the
      // "task" wrapper itself carries the request's trace id.
      const obs::TraceContextScope scope(task->ctx);
      // The busy span and busy_seconds_ bracket the same region, so the
      // trace's task spans account for (cover) the measured busy time.
      obs::SpanGuard span(tracer_, "task", "pool");
      try {
        (task->fn)();
      } catch (const WorkerCrash&) {
        crashed = true;
      }
    }
    const f64 elapsed = static_cast<f64>(now_ns() - start_ns) * 1e-9;
    {
      std::lock_guard lock(state_mutex_);
      busy_seconds_[index] += elapsed;
      if (--in_flight_ == 0) idle_.notify_all();
    }
    if (crashed) {
      if (tracer_) tracer_->instant("worker.crash", "pool");
      crashed_.fetch_add(1, std::memory_order_acq_rel);
      alive_.fetch_sub(1, std::memory_order_acq_rel);
      return;  // this worker is gone; survivors keep draining the queue
    }
  }
}

}  // namespace ceresz::engine
