// Bounded MPMC queue with blocking backpressure: producers block while the
// queue is full, consumers block while it is empty. close() wakes everyone;
// after close, push() is rejected and pop() drains the remaining items
// before returning nullopt. Tracks the depth high-water mark for the
// engine's metrics surface.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/error.h"
#include "common/types.h"

namespace ceresz::engine {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    CERESZ_CHECK(capacity > 0, "BoundedQueue: capacity must be positive");
  }

  /// Blocks while the queue is full. Returns false iff the queue was
  /// closed (the item is dropped).
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    high_water_ = std::max(high_water_, items_.size());
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when the queue is full or closed
  /// (the item is dropped); never waits.
  bool try_push(T item) {
    std::lock_guard lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    high_water_ = std::max(high_water_, items_.size());
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking pop. Returns nullopt when the queue is empty (closed or
  /// not); never waits.
  std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Blocks while the queue is empty. Returns nullopt once the queue is
  /// closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// No further pushes succeed; consumers drain what is left, then see
  /// nullopt.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t capacity() const { return capacity_; }

  /// Largest depth the queue ever reached.
  std::size_t high_water() const {
    std::lock_guard lock(mutex_);
    return high_water_;
  }

  std::size_t depth() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace ceresz::engine
