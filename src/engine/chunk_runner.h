// Fault-tolerant chunk execution on a ThreadPool.
//
// ChunkRunner::run() dispatches one attempt per chunk and shepherds every
// failure to a terminal state:
//   - transient failures (any std::exception, injected throws, crashed
//     workers, timeouts) are retried with capped exponential backoff, up
//     to RetryPolicy::max_attempts attempts per chunk;
//   - PermanentChunkError skips the retry ladder entirely — it marks data
//     that is wrong (bad CRC, undecodable record), which no retry fixes;
//   - with deadline_ms > 0 a watchdog thread cancels attempts that outlive
//     their deadline via the attempt's CancelToken (cooperative: chunk
//     functions poll it between blocks);
//   - a WorkerCrash kills its worker but not the run — survivors keep
//     draining, and once the pool collapses (alive() == 0) the calling
//     thread executes the remaining attempts inline, so the run always
//     terminates with every chunk either succeeded or failed.
//
// At most one attempt per chunk is ever in flight, so chunk functions may
// write their output slot in place; a retry observes the previous attempt
// fully finished. All retry decisions run on the calling thread — worker
// tasks only report outcomes — which keeps the policy single-threaded and
// easy to reason about.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/types.h"
#include "engine/thread_pool.h"

namespace ceresz::engine {

/// Retry/deadline policy for one run.
struct RetryPolicy {
  /// Total attempts per chunk (first try included). Must be >= 1.
  u32 max_attempts = 3;
  /// Backoff before retry k (k = 1, 2, ...): min(backoff_us << (k-1),
  /// backoff_cap_us) microseconds.
  u64 backoff_us = 200;
  u64 backoff_cap_us = 5000;
  /// Per-attempt deadline in milliseconds; 0 disables the watchdog.
  u64 deadline_ms = 0;
};

/// Cooperative cancellation flag for one chunk attempt. The watchdog sets
/// it; the chunk function polls it between blocks and aborts by throwing
/// ChunkTimeout.
class CancelToken {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Failure that retrying cannot fix: the chunk's bytes are wrong (CRC
/// mismatch, undecodable record). Goes straight to the failed list.
class PermanentChunkError : public Error {
 public:
  using Error::Error;
};

/// Thrown by a chunk function that observed its CancelToken fire. Treated
/// as a transient failure (the attempt timed out; a retry may succeed).
class ChunkTimeout : public Error {
 public:
  using Error::Error;
};

/// A chunk that exhausted its attempts or failed permanently.
struct ChunkFailure {
  u64 chunk = 0;
  bool permanent = false;  ///< PermanentChunkError vs retries exhausted
  std::string message;     ///< the final attempt's error
};

/// What happened during one run.
struct RunReport {
  u64 retries = 0;         ///< re-dispatched attempts (beyond the first)
  u64 timeouts = 0;        ///< attempts cancelled by the watchdog
  u64 worker_crashes = 0;  ///< attempts that took their worker down
  u64 fallback_chunks = 0; ///< attempts run inline after pool collapse
  std::vector<ChunkFailure> failed;  ///< terminally failed chunks, sorted

  bool all_succeeded() const { return failed.empty(); }
};

class ChunkRunner {
 public:
  /// `attempt` is 0-based; the function either returns (success) or throws
  /// (ChunkTimeout / PermanentChunkError / WorkerCrash / anything else =
  /// transient). It must leave its chunk re-runnable on failure.
  using ChunkFn =
      std::function<void(u64 chunk, u32 attempt, const CancelToken& cancel)>;

  ChunkRunner(ThreadPool& pool, RetryPolicy policy);

  /// Run chunks [0, n_chunks) through `fn` until each one has either
  /// succeeded or terminally failed. Never throws for chunk failures —
  /// they come back in the report for the caller's policy (strict/lenient)
  /// to apply.
  RunReport run(u64 n_chunks, const ChunkFn& fn);

 private:
  ThreadPool& pool_;
  RetryPolicy policy_;
};

}  // namespace ceresz::engine
