// Deterministic fault injection for the host engine, mirroring the WSE
// simulator's FaultPlan: a WorkerFaultPlan names exactly which (chunk,
// attempt) pairs misbehave and how, so a chaos test can replay the same
// failure schedule on every run and across thread counts. Empty plans (the
// default) cost one map lookup per attempt and inject nothing.
#pragma once

#include <map>
#include <utility>

#include "common/types.h"

namespace ceresz::engine {

/// What an injected fault does to a chunk attempt.
enum class WorkerFault : u8 {
  kNone = 0,
  kThrow,  ///< the attempt throws a transient ceresz::Error (retryable)
  kCrash,  ///< the attempt throws WorkerCrash, killing its worker thread
  kStall,  ///< the attempt sleeps (cancellably) for `stall_ms` before working
};

/// Schedule of injected engine faults, keyed by (chunk index, attempt
/// number). Attempts count from 0, so `fail_chunk(c, 2)` makes the first
/// two attempts at chunk `c` throw and lets the third succeed — the shape
/// retry logic is tested with.
struct WorkerFaultPlan {
  /// How long an injected kStall sleeps before proceeding with the real
  /// work (unless the watchdog cancels it first).
  u64 stall_ms = 50;

  bool empty() const { return faults_.empty(); }

  /// Inject `fault` on attempt `attempt` at chunk `chunk`.
  void set(u64 chunk, u32 attempt, WorkerFault fault) {
    if (fault == WorkerFault::kNone) {
      faults_.erase({chunk, attempt});
    } else {
      faults_[{chunk, attempt}] = fault;
    }
  }

  /// Make the first `attempts` attempts at `chunk` throw transiently.
  void fail_chunk(u64 chunk, u32 attempts = 1) {
    for (u32 a = 0; a < attempts; ++a) set(chunk, a, WorkerFault::kThrow);
  }

  /// Make attempt `attempt` at `chunk` take its worker thread down.
  void crash_chunk(u64 chunk, u32 attempt = 0) {
    set(chunk, attempt, WorkerFault::kCrash);
  }

  /// Make the first `attempts` attempts at `chunk` stall for stall_ms.
  void stall_chunk(u64 chunk, u32 attempts = 1) {
    for (u32 a = 0; a < attempts; ++a) set(chunk, a, WorkerFault::kStall);
  }

  /// One transient failure on every n-th chunk's first attempt — the
  /// degraded-mode workload bench_engine_scaling measures.
  static WorkerFaultPlan every_nth(u64 n, u64 n_chunks,
                                   WorkerFault fault = WorkerFault::kThrow) {
    WorkerFaultPlan plan;
    if (n > 0) {
      for (u64 c = 0; c < n_chunks; c += n) plan.set(c, 0, fault);
    }
    return plan;
  }

  WorkerFault fault(u64 chunk, u32 attempt) const {
    const auto it = faults_.find({chunk, attempt});
    return it == faults_.end() ? WorkerFault::kNone : it->second;
  }

  std::size_t fault_count() const { return faults_.size(); }

 private:
  std::map<std::pair<u64, u32>, WorkerFault> faults_;
};

}  // namespace ceresz::engine
