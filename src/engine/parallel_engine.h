// Parallel chunked compression engine.
//
// Splits input into fixed-size chunks (a multiple of the block size, so
// each chunk's payload is bit-identical to the corresponding slice of the
// single-stream core::StreamCodec output), compresses/decompresses them on
// a worker pool fed by a bounded queue, and frames the results in the
// self-describing chunked container (io/chunk_container.h) with a chunk
// table and per-chunk CRC32C. Output bytes are deterministic: chunk
// boundaries depend only on chunk_elems, never on the thread count.
//
// Robustness: decompression verifies every chunk's CRC before decoding.
// In strict mode (default) a corrupt chunk throws an Error naming the
// chunk; in lenient mode the chunk's element range is zero-filled, its
// index is reported in DecompressResult::corrupt_chunks, and every other
// chunk is still recovered.
//
// Fault tolerance: chunk work runs through a ChunkRunner — transient
// worker failures are retried with capped exponential backoff, stalled
// attempts are cancelled by a deadline watchdog, crashed workers shrink
// the pool without aborting the run, and a fully collapsed pool degrades
// to single-threaded inline execution. Output bytes are unchanged by any
// recovered fault; see docs/robustness.md.
#pragma once

#include <span>
#include <vector>

#include "core/block_codec.h"
#include "core/config.h"
#include "core/stream_codec.h"
#include "engine/chunk_runner.h"
#include "engine/engine_stats.h"
#include "engine/fault_injection.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ceresz::engine {

struct EngineOptions {
  /// Worker threads. 0 picks std::thread::hardware_concurrency().
  u32 threads = 0;

  /// Elements per chunk; must be a positive multiple of the codec's block
  /// size. 64 Ki floats (256 KiB) keeps per-chunk overhead negligible
  /// while giving even a small input enough chunks to spread over workers.
  u64 chunk_elems = u64{64} * 1024;

  /// Bounded work-queue capacity; 0 picks 2 * threads.
  u64 queue_capacity = 0;

  /// Decompression policy for chunks whose CRC (or record structure) is
  /// bad: false = throw naming the chunk, true = zero-fill just that
  /// chunk and keep going.
  bool lenient = false;

  /// Retry/backoff/deadline policy applied to every chunk attempt (see
  /// chunk_runner.h). Transient failures are retried up to
  /// `retry.max_attempts` times; data corruption is never retried.
  RetryPolicy retry;

  /// Injected worker faults, keyed by (chunk, attempt) — empty in
  /// production; chaos tests and the degraded-mode benchmark fill it in.
  WorkerFaultPlan faults;

  /// Observability (both nullable, both borrowed — they must outlive
  /// the engine's runs). `tracer` records per-chunk spans, worker busy
  /// spans, and the queue-depth counter track. `metrics` receives the
  /// run's counters on completion (accumulated, so one registry can
  /// serve many runs); the engine's own EngineStats view works without
  /// it. With both null the instrumentation cost is one pointer test
  /// per site.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  core::CodecConfig codec;
};

/// Result of ParallelEngine::compress.
struct EngineResult {
  std::vector<u8> stream;  ///< chunked container (header + table + payloads)
  f64 eps_abs = 0.0;
  u64 element_count = 0;
  EngineStats stats;

  f64 compression_ratio() const {
    return stream.empty() ? 0.0
                          : static_cast<f64>(element_count * sizeof(f32)) /
                                static_cast<f64>(stream.size());
  }
};

/// Result of ParallelEngine::decompress.
struct DecompressResult {
  std::vector<f32> values;
  /// Chunk indices that failed CRC/decoding and were zero-filled
  /// (non-empty only in lenient mode).
  std::vector<u64> corrupt_chunks;
  EngineStats stats;
};

class ParallelEngine {
 public:
  explicit ParallelEngine(EngineOptions options = {});

  const EngineOptions& options() const { return options_; }

  /// Number of worker threads a run will actually use.
  u32 resolved_threads() const;

  /// Compress `data` under `bound` into a chunked container. Thread-safe:
  /// each call builds its own worker pool.
  EngineResult compress(std::span<const f32> data,
                        core::ErrorBound bound) const;

  /// Decompress a chunked container produced by compress(). Throws on
  /// structural corruption (header/table), and on chunk corruption in
  /// strict mode; see EngineOptions::lenient.
  DecompressResult decompress(std::span<const u8> stream) const;

  /// Cheap magic sniff: true if `stream` is a chunked container (vs the
  /// legacy single-stream "CSZ1" format).
  static bool is_chunked_stream(std::span<const u8> stream);

 private:
  EngineOptions options_;
  core::BlockCodec block_codec_;
};

}  // namespace ceresz::engine
