#include "engine/chunk_runner.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

namespace ceresz::engine {

namespace {

using clock = std::chrono::steady_clock;

enum class Outcome : u8 {
  kSuccess,
  kTransient,
  kTimeout,
  kCrash,
  kPermanent,
};

struct ChunkState {
  u32 attempts_started = 0;
  bool running = false;
  bool done = false;
  Outcome outcome = Outcome::kSuccess;
  std::string message;
  clock::time_point started{};
  std::shared_ptr<CancelToken> cancel;
};

// All mutable run state lives behind one mutex: worker tasks append to
// `completions`, the watchdog cancels overdue attempts, and only the
// calling thread makes retry/failure decisions. Heap-allocated and
// shared with every task: a worker's final notify runs after it has
// released the mutex, so the calling thread can observe the completion
// and return from run() while that notify is still executing — each
// task's shared_ptr keeps the condition variable alive through it.
struct RunState {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<ChunkState> states;
  std::deque<u64> completions;
};

}  // namespace

ChunkRunner::ChunkRunner(ThreadPool& pool, RetryPolicy policy)
    : pool_(pool), policy_(policy) {
  CERESZ_CHECK(policy_.max_attempts >= 1,
               "ChunkRunner: max_attempts must be at least 1");
}

RunReport ChunkRunner::run(u64 n_chunks, const ChunkFn& fn) {
  RunReport report;
  if (n_chunks == 0) return report;

  auto rs = std::make_shared<RunState>();
  rs->states.resize(n_chunks);
  std::multimap<clock::time_point, u64> retry_at;
  u64 resolved = 0;  // chunks that succeeded or terminally failed

  // One attempt, wrapped so that nothing but WorkerCrash ever escapes into
  // the pool — and WorkerCrash only after the outcome is recorded.
  auto make_task = [&](u64 c, u32 attempt,
                       std::shared_ptr<CancelToken> cancel) {
    return [&, rs, c, attempt, cancel = std::move(cancel)] {
      Outcome oc = Outcome::kSuccess;
      std::string message;
      bool crash = false;
      try {
        fn(c, attempt, *cancel);
      } catch (const WorkerCrash&) {
        oc = Outcome::kCrash;
        crash = true;
      } catch (const PermanentChunkError& e) {
        oc = Outcome::kPermanent;
        message = e.what();
      } catch (const ChunkTimeout& e) {
        oc = Outcome::kTimeout;
        message = e.what();
      } catch (const std::exception& e) {
        oc = Outcome::kTransient;
        message = e.what();
      } catch (...) {
        oc = Outcome::kTransient;
        message = "chunk attempt failed with an unknown error";
      }
      {
        std::lock_guard lock(rs->mu);
        ChunkState& st = rs->states[c];
        st.running = false;
        st.outcome = oc;
        st.message = crash ? "chunk " + std::to_string(c) +
                                 ": worker thread crashed"
                           : std::move(message);
        rs->completions.push_back(c);
      }
      rs->cv.notify_all();
      if (crash) throw WorkerCrash{};
    };
  };

  // Start the next attempt at chunk `c`. Falls back to inline execution on
  // the calling thread once the pool has collapsed; while the pool is
  // merely saturated, helps drain it instead of blocking.
  auto dispatch = [&](u64 c) {
    u32 attempt = 0;
    auto cancel = std::make_shared<CancelToken>();
    {
      std::lock_guard lock(rs->mu);
      ChunkState& st = rs->states[c];
      attempt = st.attempts_started++;
      st.running = true;
      st.started = clock::now();
      st.cancel = cancel;
    }
    auto task = make_task(c, attempt, std::move(cancel));
    for (;;) {
      if (pool_.alive() == 0) {
        {
          std::lock_guard lock(rs->mu);
          ++report.fallback_chunks;
        }
        try {
          task();
        } catch (const WorkerCrash&) {
          // Inline execution borrows the caller's thread; nothing dies.
        }
        return;
      }
      if (pool_.try_submit(task)) return;
      if (!pool_.run_one_inline()) std::this_thread::yield();
    }
  };

  std::atomic<bool> stop_watchdog{false};
  std::thread watchdog;
  if (policy_.deadline_ms > 0) {
    // The watchdog must be its own thread: the calling thread can be busy
    // running attempts inline, and workers can all be stalled — neither
    // may be relied on to notice a deadline.
    watchdog = std::thread([&] {
      const auto deadline = std::chrono::milliseconds(policy_.deadline_ms);
      const auto tick =
          std::chrono::milliseconds(std::max<u64>(1, policy_.deadline_ms / 4));
      while (!stop_watchdog.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(tick);
        std::lock_guard lock(rs->mu);
        const auto now = clock::now();
        for (auto& st : rs->states) {
          if (st.running && st.cancel && !st.cancel->cancelled() &&
              now - st.started > deadline) {
            st.cancel->cancel();
            ++report.timeouts;
          }
        }
      }
    });
  }

  for (u64 c = 0; c < n_chunks; ++c) dispatch(c);

  std::unique_lock lock(rs->mu);
  while (resolved < n_chunks) {
    if (rs->completions.empty()) {
      if (!retry_at.empty()) {
        rs->cv.wait_until(lock, retry_at.begin()->first);
      } else {
        // Attempts are in flight; the timeout only guards against a pool
        // that collapsed with work still queued.
        rs->cv.wait_for(lock, std::chrono::milliseconds(10));
      }
    }

    while (!rs->completions.empty()) {
      const u64 c = rs->completions.front();
      rs->completions.pop_front();
      ChunkState& st = rs->states[c];
      if (st.done) continue;
      if (st.outcome == Outcome::kSuccess) {
        st.done = true;
        ++resolved;
        continue;
      }
      if (st.outcome == Outcome::kPermanent) {
        st.done = true;
        ++resolved;
        report.failed.push_back({c, true, st.message});
        continue;
      }
      if (st.outcome == Outcome::kCrash) ++report.worker_crashes;
      if (st.attempts_started >= policy_.max_attempts) {
        st.done = true;
        ++resolved;
        report.failed.push_back({c, false, st.message});
      } else {
        ++report.retries;
        const u32 k = std::min<u32>(st.attempts_started, 21) - 1;
        const u64 delay_us =
            std::min(policy_.backoff_cap_us, policy_.backoff_us << k);
        retry_at.emplace(clock::now() + std::chrono::microseconds(delay_us),
                         c);
      }
    }

    const auto now = clock::now();
    while (!retry_at.empty() && retry_at.begin()->first <= now) {
      const u64 c = retry_at.begin()->second;
      retry_at.erase(retry_at.begin());
      lock.unlock();
      dispatch(c);
      lock.lock();
    }

    if (pool_.alive() == 0) {
      // No worker will ever pop what is still queued; run it here.
      lock.unlock();
      while (pool_.run_one_inline()) {
      }
      lock.lock();
    }
  }
  lock.unlock();

  stop_watchdog.store(true, std::memory_order_release);
  if (watchdog.joinable()) watchdog.join();

  std::sort(
      report.failed.begin(), report.failed.end(),
      [](const ChunkFailure& a, const ChunkFailure& b) {
        return a.chunk < b.chunk;
      });
  return report;
}

}  // namespace ceresz::engine
