// CereSZ — error-bounded lossy compression on a simulated Cerebras CS-2.
//
// Umbrella header: the public API a downstream application needs.
//
//   StreamCodec        — host-side CereSZ compression/decompression
//   ParallelEngine     — multi-threaded chunked compression engine with
//                        per-chunk CRC32C integrity and engine metrics
//   WaferMapper        — CereSZ mapped onto the simulated wafer-scale
//                        engine (cycle-accurate throughput, bit-identical
//                        streams)
//   wse::Fabric        — the WSE simulator itself (for custom kernels)
//   baselines::*       — SZ/SZp/cuSZ/cuSZp reimplementations
//   data::*            — synthetic SDRBench-style dataset generators
//   metrics::*         — PSNR / SSIM / throughput
//   obs::*             — metrics registry (JSON/Prometheus exporters) and
//                        Chrome-trace tracer (docs/observability.md)
#pragma once

#include "baselines/compressor.h"
#include "baselines/device_model.h"
#include "common/format.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/timer.h"
#include "core/block_codec.h"
#include "core/config.h"
#include "core/costmodel.h"
#include "core/stream_codec.h"
#include "data/generators.h"
#include "engine/parallel_engine.h"
#include "io/archive.h"
#include "io/chunk_container.h"
#include "io/file_io.h"
#include "mapping/perf_model.h"
#include "mapping/profile.h"
#include "mapping/scheduler.h"
#include "mapping/wafer_mapper.h"
#include "metrics/quality.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "wse/fabric.h"
