#include "wse/fabric.h"

#include <algorithm>
#include <array>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace ceresz::wse {

void declare_fabric_metrics(obs::MetricsRegistry& reg) {
  reg.counter(kMetricFabricTasks);
  reg.counter(kMetricFabricEvents);
  reg.counter(kMetricFabricSent);
  reg.counter(kMetricFabricReceived);
  reg.counter(kMetricFabricRelayed);
  reg.counter(kMetricFabricDropped);
  reg.counter(kMetricFabricCorrupted);
  reg.counter(kMetricFabricBusyCycles);
  reg.gauge(kMetricFabricMakespan);
}

// ---------------------------------------------------------------------------
// Internal structures
// ---------------------------------------------------------------------------

struct Fabric::PendingOp {
  enum class Kind { kRecv, kForward };
  u64 id = 0;
  Kind kind = Kind::kRecv;
  Color channel = 0;
  Color out_channel = 0;  // forward only
  Color activate_color = 0;
  bool has_activate = false;
  Cycles ready_at = 0;  // earliest time the op can consume a message
  Message msg;          // attached when matched with an arrival
};

struct Fabric::Event {
  enum class Kind { kDeliver, kTaskFinish, kOpComplete, kActivate };
  Cycles time = 0;
  u64 seq = 0;
  Kind kind = Kind::kDeliver;
  u32 pe_index = 0;
  Message msg;     // kDeliver
  u64 op_id = 0;   // kOpComplete
  Color color = 0; // kActivate
};

struct Fabric::Pe {
  u32 row = 0;
  u32 col = 0;
  u32 index = 0;
  RouterConfig router;
  PeMemory memory;

  struct Binding {
    TaskFn fn;
    TaskTrigger trigger = TaskTrigger::kManual;
    bool bound = false;
  };
  std::array<Binding, kNumColors> bindings{};
  std::array<std::deque<Message>, kNumColors> inbox{};
  std::array<std::deque<Message>, kNumColors> delivered{};
  std::array<std::deque<PendingOp>, kNumColors> ops{};
  std::deque<Color> ready;
  bool busy = false;
  Cycles send_free = 0;  // serializes the PE's outgoing fabric injections
  u64 arrivals = 0;      // bursts seen so far, indexes the fault schedule

  // Actions recorded by the currently running task, applied at TaskFinish.
  struct TaskScratch {
    std::vector<Color> activations;
    std::vector<PendingOp> ops;
    struct SendReq {
      Color channel;
      Message msg;
      std::optional<Color> activate;
    };
    std::vector<SendReq> sends;
  };
  std::unique_ptr<TaskScratch> scratch;

  PeStats stats;

  explicit Pe(std::size_t sram) : memory(sram) {}
};

// ---------------------------------------------------------------------------
// Task context
// ---------------------------------------------------------------------------

class Fabric::ContextImpl final : public PeContext {
 public:
  ContextImpl(Fabric& fab, Pe& pe, Cycles start)
      : fab_(fab), pe_(pe), start_(start) {
    scratch_ = std::make_unique<Pe::TaskScratch>();
  }

  u32 row() const override { return pe_.row; }
  u32 col() const override { return pe_.col; }
  Cycles now() const override { return start_; }

  void consume(Cycles cycles) override { consumed_ += cycles; }

  void activate(Color color) override {
    check_color(color);
    scratch_->activations.push_back(color);
  }

  void recv_async(Color channel, Color activate_color) override {
    check_color(channel);
    check_color(activate_color);
    PendingOp op;
    op.id = fab_.next_op_id_++;
    op.kind = PendingOp::Kind::kRecv;
    op.channel = channel;
    op.activate_color = activate_color;
    op.has_activate = true;
    scratch_->ops.push_back(std::move(op));
  }

  void send_async(Color channel, Message msg,
                  std::optional<Color> activate_color) override {
    check_color(channel);
    if (activate_color) check_color(*activate_color);
    msg.color = channel;
    scratch_->sends.push_back({channel, std::move(msg), activate_color});
  }

  void forward_async(Color in_channel, Color out_channel,
                     Color activate_color) override {
    check_color(in_channel);
    check_color(out_channel);
    check_color(activate_color);
    PendingOp op;
    op.id = fab_.next_op_id_++;
    op.kind = PendingOp::Kind::kForward;
    op.channel = in_channel;
    op.out_channel = out_channel;
    op.activate_color = activate_color;
    op.has_activate = true;
    scratch_->ops.push_back(std::move(op));
  }

  Message take_delivered(Color channel) override {
    check_color(channel);
    auto& q = pe_.delivered[channel];
    CERESZ_CHECK(!q.empty(), "take_delivered: no completed message on channel");
    Message m = std::move(q.front());
    q.pop_front();
    return m;
  }

  bool has_delivered(Color channel) const override {
    check_color(channel);
    return !pe_.delivered[channel].empty();
  }

  PeMemory& memory() override { return pe_.memory; }

  void emit_result(u64 tag, std::vector<u8> bytes) override {
    fab_.results_.push_back(
        ResultRecord{tag, pe_.row, pe_.col, start_, std::move(bytes)});
  }

  Cycles consumed() const { return consumed_; }
  std::unique_ptr<Pe::TaskScratch> take_scratch() { return std::move(scratch_); }

 private:
  static void check_color(Color c) {
    CERESZ_CHECK(c < kNumColors, "color id out of range");
  }

  Fabric& fab_;
  Pe& pe_;
  Cycles start_;
  Cycles consumed_ = 0;
  std::unique_ptr<Pe::TaskScratch> scratch_;
};

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

// Ops matched with a message and awaiting their completion event, keyed by
// op id. Lives behind a unique_ptr so PendingOp can stay private to this
// translation unit.
struct Fabric::InFlight {
  std::unordered_map<u64, PendingOp> ops;
};

Fabric::Fabric(WseConfig config, u32 row_begin)
    : config_(config),
      row_begin_(row_begin),
      in_flight_(std::make_unique<InFlight>()) {
  CERESZ_CHECK(config_.rows >= 1 && config_.cols >= 1,
               "Fabric: mesh must be at least 1x1");
  pes_.reserve(config_.pe_count());
  for (u32 r = 0; r < config_.rows; ++r) {
    for (u32 c = 0; c < config_.cols; ++c) {
      auto pe = std::make_unique<Pe>(config_.sram_bytes);
      pe->row = row_begin_ + r;  // global wafer row
      pe->col = c;
      pe->index = r * config_.cols + c;  // local storage index
      pes_.push_back(std::move(pe));
    }
  }
  if (config_.model_link_contention) {
    link_free_.assign(static_cast<std::size_t>(config_.pe_count()) * 4, 0);
  }
}

Fabric::~Fabric() = default;

Fabric::Pe& Fabric::pe_at(u32 row, u32 col) {
  CERESZ_CHECK(row >= row_begin_ && row - row_begin_ < config_.rows &&
                   col < config_.cols,
               "Fabric: PE coordinate out of range");
  return *pes_[(row - row_begin_) * config_.cols + col];
}

const Fabric::Pe& Fabric::pe_at(u32 row, u32 col) const {
  CERESZ_CHECK(row >= row_begin_ && row - row_begin_ < config_.rows &&
                   col < config_.cols,
               "Fabric: PE coordinate out of range");
  return *pes_[(row - row_begin_) * config_.cols + col];
}

RouterConfig& Fabric::router(u32 row, u32 col) { return pe_at(row, col).router; }

PeMemory& Fabric::memory(u32 row, u32 col) { return pe_at(row, col).memory; }

const PeStats& Fabric::stats(u32 row, u32 col) const {
  return pe_at(row, col).stats;
}

void Fabric::bind_task(u32 row, u32 col, Color color, TaskFn fn,
                       TaskTrigger trigger) {
  CERESZ_CHECK(color < kNumColors, "bind_task: color id out of range");
  Pe& pe = pe_at(row, col);
  auto& b = pe.bindings[color];
  CERESZ_CHECK(!b.bound, "bind_task: color already has a task on this PE");
  b.fn = std::move(fn);
  b.trigger = trigger;
  b.bound = true;
}

void Fabric::activate_at(u32 row, u32 col, Color color, Cycles time) {
  CERESZ_CHECK(!ran_, "Fabric: cannot schedule after run()");
  Event ev;
  ev.kind = Event::Kind::kActivate;
  ev.time = time;
  ev.pe_index = pe_at(row, col).index;
  ev.color = color;
  initial_events_.push_back(std::move(ev));
}

void Fabric::inject(u32 row, u32 col, Message msg, Cycles arrival) {
  CERESZ_CHECK(!ran_, "Fabric: cannot inject after run()");
  Event ev;
  ev.kind = Event::Kind::kDeliver;
  ev.time = arrival;
  ev.pe_index = pe_at(row, col).index;
  ev.msg = std::move(msg);
  initial_events_.push_back(std::move(ev));
}

void Fabric::set_fault_plan(FaultPlan plan) {
  CERESZ_CHECK(!ran_, "Fabric: cannot install a fault plan after run()");
  fault_plan_ = std::move(plan);
}

void Fabric::push_event(Event ev) {
  ev.seq = next_seq_++;
  HeapEntry entry{ev.time, ev.seq, 0};
  if (!free_slots_.empty()) {
    entry.slot = free_slots_.back();
    free_slots_.pop_back();
    arena_[entry.slot] = std::move(ev);
  } else {
    entry.slot = static_cast<u32>(arena_.size());
    arena_.push_back(std::move(ev));
  }
  heap_.push(entry);
}

void Fabric::record_span(const Pe& pe, const char* name, Cycles start,
                         Cycles end, const char* arg1_name, i64 arg1) {
  if (!tracer_) return;
  obs::TraceEvent ev;
  ev.name = name;
  ev.cat = "fabric";
  ev.pid = obs::kFabricPid;
  // One trace row per PE, keyed by GLOBAL wafer coordinates so the bands
  // of a partitioned simulation land on distinct, stable timeline rows.
  ev.tid = pe.row * config_.cols + pe.col + 1;
  ev.ts_ns = start * kTraceNsPerCycle;
  ev.dur_ns = (end - start) * kTraceNsPerCycle;
  ev.arg1_name = arg1_name;
  ev.arg1 = arg1;
  tracer_->record(ev);
}

RunStats Fabric::run() {
  CERESZ_CHECK(!ran_, "Fabric::run may only be called once");
  ran_ = true;
  if (tracer_) {
    tracer_->set_process_name(obs::kFabricPid, "wse-fabric (virtual cycles)");
    for (const auto& pe : pes_) {
      tracer_->set_thread_name(obs::kFabricPid,
                               pe->row * config_.cols + pe->col + 1,
                               "pe[" + std::to_string(pe->row) + "," +
                                   std::to_string(pe->col) + "]");
    }
  }
  // Bulk-load the coalesced pre-run batch: stamp sequence numbers in
  // injection order, move every event into the arena, and heapify the
  // handles in one O(n) pass instead of n pushes.
  {
    std::vector<HeapEntry> entries;
    entries.reserve(initial_events_.size());
    arena_.reserve(initial_events_.size());
    for (auto& ev : initial_events_) {
      ev.seq = next_seq_++;
      entries.push_back({ev.time, ev.seq, static_cast<u32>(arena_.size())});
      arena_.push_back(std::move(ev));
    }
    initial_events_.clear();
    initial_events_.shrink_to_fit();
    heap_ = decltype(heap_)(HeapCompare{}, std::move(entries));
  }

  while (!heap_.empty()) {
    const HeapEntry entry = heap_.top();
    heap_.pop();
    Event ev = std::move(arena_[entry.slot]);
    free_slots_.push_back(entry.slot);
    ++events_processed_;
    makespan_ = std::max(makespan_, ev.time);
    Pe& pe = *pes_[ev.pe_index];
    if (fault_plan_.is_dead(pe.row, pe.col)) {
      // A dead PE is inert: deliveries vanish, activations are lost, and
      // it can have no in-flight tasks or ops to finish.
      if (ev.kind == Event::Kind::kDeliver) {
        ++pe.stats.messages_dropped;
      } else if (ev.kind == Event::Kind::kActivate) {
        ++pe.stats.activations_suppressed;
      }
      continue;
    }
    pe.stats.finish_time = std::max(pe.stats.finish_time, ev.time);
    switch (ev.kind) {
      case Event::Kind::kDeliver:
        deliver(pe, std::move(ev.msg), ev.time);
        break;
      case Event::Kind::kTaskFinish:
        finish_task(pe, ev.time);
        break;
      case Event::Kind::kOpComplete:
        complete_op(pe, ev.time, ev.op_id);
        break;
      case Event::Kind::kActivate:
        pe.ready.push_back(ev.color);
        maybe_start_task(pe, ev.time);
        break;
    }
  }

  RunStats rs;
  rs.makespan = makespan_;
  rs.events_processed = events_processed_;
  rs.tasks_run = tasks_run_total_;
  for (const auto& pe : pes_) {
    rs.messages_dropped += pe->stats.messages_dropped;
    rs.messages_corrupted += pe->stats.messages_corrupted;
    rs.activations_suppressed += pe->stats.activations_suppressed;
  }
  if (metrics_) {
    u64 sent = 0, received = 0, relayed = 0, busy = 0;
    for (const auto& pe : pes_) {
      sent += pe->stats.messages_sent;
      received += pe->stats.messages_received;
      relayed += pe->stats.messages_relayed;
      busy += pe->stats.busy_cycles;
    }
    metrics_->counter(kMetricFabricTasks).add(rs.tasks_run);
    metrics_->counter(kMetricFabricEvents).add(rs.events_processed);
    metrics_->counter(kMetricFabricSent).add(sent);
    metrics_->counter(kMetricFabricReceived).add(received);
    metrics_->counter(kMetricFabricRelayed).add(relayed);
    metrics_->counter(kMetricFabricDropped).add(rs.messages_dropped);
    metrics_->counter(kMetricFabricCorrupted).add(rs.messages_corrupted);
    metrics_->counter(kMetricFabricBusyCycles).add(busy);
    metrics_->gauge(kMetricFabricMakespan)
        .set(static_cast<f64>(rs.makespan));
  }
  return rs;
}

void Fabric::deliver(Pe& pe, Message msg, Cycles time) {
  const Color channel = msg.color;
  CERESZ_CHECK(channel < kNumColors, "deliver: color id out of range");
  switch (fault_plan_.delivery_fault(pe.row, pe.col, pe.arrivals++)) {
    case DeliveryFault::kNone:
      break;
    case DeliveryFault::kDrop:
      ++pe.stats.messages_dropped;
      return;
    case DeliveryFault::kCorrupt:
      ++pe.stats.messages_corrupted;
      msg.corrupted = true;
      if (msg.payload && !msg.payload->empty()) {
        // Copy-on-corrupt: the payload is shared with other in-flight
        // copies of the burst, which arrive intact.
        auto flipped = std::make_shared<std::vector<Wavelet>>(*msg.payload);
        const u64 bit = (pe.arrivals * 31) % (flipped->size() * 32);
        (*flipped)[bit / 32] ^= u32{1} << (bit % 32);
        msg.payload = std::move(flipped);
      }
      break;
  }
  auto& binding = pe.bindings[channel];
  const bool have_op = !pe.ops[channel].empty();
  if (!have_op && binding.bound &&
      binding.trigger == TaskTrigger::kDataTriggered) {
    // Wavelet-triggered task: auto-receive this arrival, then activate.
    PendingOp op;
    op.id = next_op_id_++;
    op.kind = PendingOp::Kind::kRecv;
    op.channel = channel;
    op.activate_color = channel;
    op.has_activate = true;
    op.ready_at = time;
    pe.ops[channel].push_back(std::move(op));
  }
  pe.inbox[channel].push_back(std::move(msg));
  try_match_ops(pe, time);
}

void Fabric::try_match_ops(Pe& pe, Cycles time) {
  for (int c = 0; c < kNumColors; ++c) {
    auto& ops = pe.ops[c];
    auto& inbox = pe.inbox[c];
    while (!ops.empty() && !inbox.empty()) {
      PendingOp op = std::move(ops.front());
      ops.pop_front();
      op.msg = std::move(inbox.front());
      inbox.pop_front();
      const Cycles start = std::max(op.ready_at, time);
      const Cycles overhead = op.kind == PendingOp::Kind::kRecv
                                  ? config_.recv_overhead_cycles
                                  : config_.relay_overhead_cycles;
      const Cycles done = start + overhead + op.msg.extent;
      record_span(pe, op.kind == PendingOp::Kind::kRecv ? "recv" : "relay",
                  start, done, "color", static_cast<i64>(c));
      Event ev;
      ev.kind = Event::Kind::kOpComplete;
      ev.time = done;
      ev.pe_index = pe.index;
      ev.op_id = op.id;
      in_flight_->ops.emplace(op.id, std::move(op));
      push_event(std::move(ev));
    }
  }
}

void Fabric::complete_op(Pe& pe, Cycles time, u64 op_id) {
  auto it = in_flight_->ops.find(op_id);
  CERESZ_CHECK(it != in_flight_->ops.end(), "complete_op: unknown op id");
  PendingOp op = std::move(it->second);
  in_flight_->ops.erase(it);

  if (op.kind == PendingOp::Kind::kRecv) {
    ++pe.stats.messages_received;
    pe.delivered[op.channel].push_back(std::move(op.msg));
  } else {
    ++pe.stats.messages_relayed;
    Message out = std::move(op.msg);
    out.color = op.out_channel;
    route_send(pe, std::move(out), time);
  }
  if (op.has_activate) {
    pe.ready.push_back(op.activate_color);
    maybe_start_task(pe, time);
  }
}

void Fabric::maybe_start_task(Pe& pe, Cycles time) {
  if (pe.busy || pe.ready.empty()) return;
  const Color color = pe.ready.front();
  pe.ready.pop_front();
  auto& binding = pe.bindings[color];
  CERESZ_CHECK(binding.bound, "activated a color with no bound task");

  ContextImpl ctx(*this, pe, time);
  binding.fn(ctx);

  Cycles duration = config_.task_overhead_cycles + ctx.consumed();
  const f64 mult = fault_plan_.cycle_multiplier(pe.row, pe.col);
  if (mult > 1.0) {
    duration = static_cast<Cycles>(static_cast<f64>(duration) * mult + 0.5);
  }
  pe.busy = true;
  pe.scratch = ctx.take_scratch();
  pe.stats.busy_cycles += duration;
  ++pe.stats.tasks_run;
  ++tasks_run_total_;
  record_span(pe, "task", time, time + duration, "color",
              static_cast<i64>(color));

  Event ev;
  ev.kind = Event::Kind::kTaskFinish;
  ev.time = time + duration;
  ev.pe_index = pe.index;
  push_event(std::move(ev));
}

void Fabric::finish_task(Pe& pe, Cycles time) {
  CERESZ_CHECK(pe.busy && pe.scratch, "finish_task: PE is not running a task");
  auto scratch = std::move(pe.scratch);
  pe.busy = false;

  for (Color c : scratch->activations) pe.ready.push_back(c);

  for (PendingOp& op : scratch->ops) {
    op.ready_at = time;
    pe.ops[op.channel].push_back(std::move(op));
  }

  for (auto& send : scratch->sends) {
    const Cycles depart = std::max(time, pe.send_free);
    const Cycles drained =
        depart + config_.send_overhead_cycles + send.msg.extent;
    pe.send_free = drained;
    ++pe.stats.messages_sent;
    record_span(pe, "send", depart, drained, "color",
                static_cast<i64>(send.msg.color));
    route_send(pe, std::move(send.msg), depart);
    if (send.activate) {
      Event ev;
      ev.kind = Event::Kind::kActivate;
      ev.time = drained;
      ev.pe_index = pe.index;
      ev.color = *send.activate;
      push_event(std::move(ev));
    }
  }

  try_match_ops(pe, time);
  maybe_start_task(pe, time);
}

void Fabric::route_send(const Pe& from, Message msg, Cycles depart) {
  // Walk the configured color route hop by hop, scheduling a delivery at
  // every PE whose route includes RAMP among its outputs. Streaming model:
  // the burst's head wavelet leaves the origin at depart + send_overhead
  // and advances one link per hop_cycles; a burst of E wavelets is fully
  // delivered E cycles after its head arrives. With link contention
  // enabled, a directed link carries one wavelet per cycle, so a burst
  // whose head reaches a busy link queues behind the burst occupying it.
  struct Frontier {
    u32 row, col;
    Cycles head_time;        // when the burst's head reaches this PE
    Direction arrived_from;  // side the wavelet enters on
  };
  const Color color = msg.color;
  const RouteEntry& origin = from.router.route(color);
  CERESZ_CHECK(origin.configured,
               "route_send: color not configured on sending PE");

  std::vector<Frontier> frontier;
  std::unordered_set<u64> visited;
  auto schedule_delivery = [&](u32 row, u32 col, Cycles head_time) {
    Event ev;
    ev.kind = Event::Kind::kDeliver;
    ev.time = head_time + msg.extent;
    ev.pe_index = (row - row_begin_) * config_.cols + col;
    ev.msg = msg;  // shared payload; cheap copy
    push_event(std::move(ev));
  };

  auto expand = [&](u32 row, u32 col, const RouteEntry& entry,
                    Cycles head_time) {
    // A RAMP output delivers to this PE's processor (a loopback when this
    // is the origin).
    if (entry.has_output(Direction::kRamp)) {
      schedule_delivery(row, col, head_time);
    }
    for (Direction d : {Direction::kEast, Direction::kWest, Direction::kNorth,
                        Direction::kSouth}) {
      if (!entry.has_output(d)) continue;
      const int nr = static_cast<int>(row) + drow(d);
      const int nc = static_cast<int>(col) + dcol(d);
      CERESZ_CHECK(nr >= static_cast<int>(row_begin_) &&
                       nr < static_cast<int>(row_begin_ + config_.rows) &&
                       nc >= 0 && nc < static_cast<int>(config_.cols),
                   "route_send: wavelet routed off the simulated fabric "
                   "(mesh edge or row-band boundary)");
      Cycles link_depart = head_time;
      if (config_.model_link_contention) {
        const std::size_t link =
            (static_cast<std::size_t>(row - row_begin_) * config_.cols +
             col) * 4 +
            (static_cast<std::size_t>(d) - 1);
        Cycles& free_at = link_free_[link];
        link_depart = std::max(link_depart, free_at);
        free_at = link_depart + msg.extent;
      }
      frontier.push_back({static_cast<u32>(nr), static_cast<u32>(nc),
                          link_depart + config_.hop_cycles, opposite(d)});
    }
  };

  expand(from.row, from.col, origin, depart + config_.send_overhead_cycles);
  while (!frontier.empty()) {
    Frontier f = frontier.back();
    frontier.pop_back();
    const u64 key = static_cast<u64>(f.row) * config_.cols + f.col;
    CERESZ_CHECK(!visited.contains(key),
                 "route_send: color route forms a cycle");
    visited.insert(key);
    Pe& pe = *pes_[(f.row - row_begin_) * config_.cols + f.col];
    if (fault_plan_.is_dead(f.row, f.col)) {
      // The burst dies at a dead PE's router; hops behind it never happen.
      ++pe.stats.messages_dropped;
      continue;
    }
    const RouteEntry& entry = pe.router.route(color);
    CERESZ_CHECK(entry.configured,
                 "route_send: wavelet reached a PE with no route for its "
                 "color");
    CERESZ_CHECK(entry.has_input(f.arrived_from),
                 "route_send: wavelet arrived on a direction the PE's route "
                 "does not accept");
    expand(f.row, f.col, entry, f.head_time);
  }
}

}  // namespace ceresz::wse
