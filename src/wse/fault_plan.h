// Deterministic fault injection for the simulated WSE.
//
// A FaultPlan is a fixed schedule of hardware failures the Fabric consults
// while it runs: dead PEs (never execute tasks, swallow traffic), slow PEs
// (a cycle-rate multiplier on task execution), dropped wavelet bursts, and
// bit-corrupted message payloads. Plans are either built explicitly
// (kill_pe, slow_pe, ...) or drawn from a seeded Rng (FaultPlan::random),
// so the same seed always yields the same fault schedule — chaos tests can
// assert exact counters and byte-identical recovered output.
//
// The plan only *describes* faults; all modeling lives in Fabric (whose
// per-band event loop is serial, so a schedule replays identically however
// many bands WaferSimulator runs in parallel). The mapping layer reads the
// same plan to place work around dead PEs before the run starts.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "common/types.h"

namespace ceresz::wse {

/// What happens to one message burst arriving at a PE.
enum class DeliveryFault : u8 {
  kNone = 0,
  kDrop,     ///< the burst vanishes on the link (router/relay failure)
  kCorrupt,  ///< the burst arrives with a flipped payload bit
};

/// Knobs for FaultPlan::random.
struct FaultSpec {
  u32 dead_pes = 0;
  u32 slow_pes = 0;
  /// Slow PEs run at a uniform multiplier in [1, max_slowdown].
  f64 max_slowdown = 4.0;
  u32 dropped_bursts = 0;
  u32 corrupted_bursts = 0;
  /// Drop/corrupt faults target per-PE arrival indices below this horizon.
  u64 arrival_horizon = 64;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(u64 seed) : seed_(seed) {}

  /// Draw a plan from `spec` with Rng(seed) over a rows x cols mesh. The
  /// same (seed, rows, cols, spec) always yields the same plan.
  static FaultPlan random(u64 seed, u32 rows, u32 cols, const FaultSpec& spec);

  u64 seed() const { return seed_; }
  bool empty() const;

  // ---- Plan construction ----
  void kill_pe(u32 row, u32 col);
  /// `cycle_multiplier` >= 1 scales the PE's task execution time.
  void slow_pe(u32 row, u32 col, f64 cycle_multiplier);
  /// Drop the `arrival_index`-th burst delivered to (row, col) (0-based,
  /// counted over the PE's whole run).
  void drop_delivery(u32 row, u32 col, u64 arrival_index);
  /// Flip one payload bit of the `arrival_index`-th burst at (row, col).
  void corrupt_delivery(u32 row, u32 col, u64 arrival_index);

  // ---- Queries (Fabric hot path + mapper placement) ----
  bool is_dead(u32 row, u32 col) const;
  f64 cycle_multiplier(u32 row, u32 col) const;
  DeliveryFault delivery_fault(u32 row, u32 col, u64 arrival_index) const;

  u64 dead_pe_count() const { return dead_pes_; }
  u64 slow_pe_count() const { return slow_.size(); }
  u64 delivery_fault_count() const { return delivery_faults_; }

  /// Westmost dead column in `row`, if any — what bounds the row's usable
  /// pipeline columns (traffic streams west to east, so everything at or
  /// east of the first dead PE is unreachable).
  std::optional<u32> first_dead_col(u32 row) const;

  // ---- Row slicing (band simulation + coordinator leases) ----
  /// The plan restricted to rows [row_begin, row_begin + row_count),
  /// re-expressed with rows rebased by -row_begin (slice row 0 is wafer
  /// row `row_begin`). `col_limit` additionally drops faults at columns
  /// >= col_limit (std::nullopt keeps every column). Slicing a plan over
  /// a disjoint partition of its rows conserves every fault exactly once
  /// — the property test_wafer_sim fuzzes. The tenant coordinator uses
  /// this to hand each lease its lease-local fault schedule.
  FaultPlan slice_rows(u32 row_begin, u32 row_count,
                       std::optional<u32> col_limit = std::nullopt) const;

  // ---- Enumeration (coordinator lease slicing, src/tenant) ----
  // The tenant coordinator tracks faults in wafer coordinates and must
  // re-express the ones inside a lease in lease-local coordinates; these
  // visit every recorded fault in deterministic (row, col) order.
  void for_each_dead(const std::function<void(u32 row, u32 col)>& fn) const;
  void for_each_slow(
      const std::function<void(u32 row, u32 col, f64 multiplier)>& fn) const;
  void for_each_delivery_fault(
      const std::function<void(u32 row, u32 col, u64 arrival_index,
                               DeliveryFault fault)>& fn) const;

 private:
  static u64 pe_key(u32 row, u32 col) {
    return (static_cast<u64>(row) << 32) | col;
  }

  u64 seed_ = 0;
  u64 dead_pes_ = 0;
  u64 delivery_faults_ = 0;
  std::map<u32, std::set<u32>> dead_by_row_;
  std::map<u64, f64> slow_;
  std::map<u64, std::map<u64, DeliveryFault>> per_arrival_;
};

}  // namespace ceresz::wse
