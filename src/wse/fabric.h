// The event-driven fabric engine: a 2-D mesh of PEs exchanging messages
// over configured color routes, with per-PE hardware cycle counters.
//
// Granularity: events are whole message bursts and task executions, not
// individual wavelets, but every latency is computed from wavelet counts
// (streaming at one wavelet per cycle per link) so the timing matches a
// wavelet-level model for the bulk-transfer patterns CereSZ uses.
//
// Measurement methodology mirrors the paper (Section 5.1.1): each PE has a
// cycle counter; a run's makespan is the largest completion time over all
// PEs, and throughput is bytes / (makespan / clock_hz).
#pragma once

#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "wse/config.h"
#include "wse/fault_plan.h"
#include "wse/memory.h"
#include "wse/program.h"
#include "wse/router.h"
#include "wse/wavelet.h"

namespace ceresz::wse {

/// Canonical fabric metric names (Prometheus families), summed over all
/// PEs at the end of run().
inline constexpr const char* kMetricFabricTasks = "ceresz_fabric_tasks_total";
inline constexpr const char* kMetricFabricEvents =
    "ceresz_fabric_events_total";
inline constexpr const char* kMetricFabricSent =
    "ceresz_fabric_messages_sent_total";
inline constexpr const char* kMetricFabricReceived =
    "ceresz_fabric_messages_received_total";
inline constexpr const char* kMetricFabricRelayed =
    "ceresz_fabric_messages_relayed_total";
inline constexpr const char* kMetricFabricDropped =
    "ceresz_fabric_messages_dropped_total";
inline constexpr const char* kMetricFabricCorrupted =
    "ceresz_fabric_messages_corrupted_total";
inline constexpr const char* kMetricFabricBusyCycles =
    "ceresz_fabric_busy_cycles_total";
inline constexpr const char* kMetricFabricMakespan =
    "ceresz_fabric_makespan_cycles";

/// Pre-create every fabric metric family in `reg` at zero.
void declare_fabric_metrics(obs::MetricsRegistry& reg);

/// Trace-time scale for the simulator's virtual clock: 1 simulated cycle
/// is exported as 1000 ns (1 us) of trace time under kFabricPid, so the
/// per-PE timeline renders at cycle granularity next to host spans.
inline constexpr u64 kTraceNsPerCycle = 1000;

/// Per-PE activity counters, reported after a run.
struct PeStats {
  Cycles busy_cycles = 0;    ///< processor time spent in tasks
  Cycles finish_time = 0;    ///< time of the PE's last activity
  u64 tasks_run = 0;
  u64 messages_relayed = 0;  ///< forward_async completions
  u64 messages_received = 0; ///< recv_async / data-triggered deliveries
  u64 messages_sent = 0;     ///< send_async completions
  // Fault-injection counters (nonzero only under a FaultPlan).
  u64 messages_dropped = 0;    ///< bursts swallowed at this PE
  u64 messages_corrupted = 0;  ///< bursts delivered with a flipped bit
  u64 activations_suppressed = 0;  ///< task activations lost to a dead PE
};

/// Whole-run summary.
struct RunStats {
  Cycles makespan = 0;       ///< last event time across the fabric
  u64 events_processed = 0;
  u64 tasks_run = 0;
  // Fault-injection totals, summed over all PEs after the run.
  u64 messages_dropped = 0;
  u64 messages_corrupted = 0;
  u64 activations_suppressed = 0;
};

/// One emitted result record (see PeContext::emit_result).
struct ResultRecord {
  u64 tag = 0;
  u32 row = 0;
  u32 col = 0;
  Cycles time = 0;
  std::vector<u8> bytes;
};

class Fabric {
 public:
  /// Simulate `config.rows` x `config.cols` PEs. When `row_begin` is
  /// nonzero the fabric models the row band [row_begin, row_begin +
  /// config.rows) of a conceptually larger wafer: every public row
  /// coordinate (router/memory/bind_task/inject/stats, PeStats rows,
  /// ResultRecord::row, trace thread ids, FaultPlan queries) is a GLOBAL
  /// wafer row. This is what lets wse::WaferSimulator carve a wafer into
  /// independently simulated bands whose outputs merge seamlessly — a
  /// route that tries to leave the band (north of row_begin or south of
  /// its last row) fails the same check as one leaving the wafer edge.
  explicit Fabric(WseConfig config, u32 row_begin = 0);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  const WseConfig& config() const { return config_; }

  /// First global row this fabric simulates (0 for a whole-mesh fabric).
  u32 row_begin() const { return row_begin_; }

  /// Router configuration of the PE at (row, col). Must be set up before
  /// run(); routes are static for the duration of a run.
  RouterConfig& router(u32 row, u32 col);

  /// Local SRAM accounting of the PE at (row, col).
  PeMemory& memory(u32 row, u32 col);

  /// Install a deterministic fault schedule consulted during run(): dead
  /// PEs swallow every event addressed to (or routed through) them, slow
  /// PEs stretch task execution by their cycle multiplier, and scheduled
  /// delivery faults drop or bit-corrupt arriving bursts. Must be called
  /// before run().
  void set_fault_plan(FaultPlan plan);

  const FaultPlan& fault_plan() const { return fault_plan_; }

  /// Bind `fn` to `color` on one PE. A color can hold at most one task.
  void bind_task(u32 row, u32 col, Color color, TaskFn fn,
                 TaskTrigger trigger = TaskTrigger::kManual);

  /// Schedule an initial activation of `color` at `time`.
  void activate_at(u32 row, u32 col, Color color, Cycles time = 0);

  /// Deliver `msg` into the inbox of (row, col) at `arrival` — models data
  /// arriving from the host over the ingress links without simulating the
  /// off-mesh routing PEs.
  void inject(u32 row, u32 col, Message msg, Cycles arrival);

  /// Run the simulation until no events remain. May be called once.
  RunStats run();

  /// Results emitted during the run, in emission order.
  const std::vector<ResultRecord>& results() const { return results_; }

  /// Move the emitted results out (valid after run(); results() is empty
  /// afterwards). Used by WaferSimulator to merge band results without
  /// copying payload bytes.
  std::vector<ResultRecord> take_results() { return std::move(results_); }

  /// Per-PE statistics (valid after run()).
  const PeStats& stats(u32 row, u32 col) const;

  Cycles makespan() const { return makespan_; }

  /// Record per-PE task/recv/relay/send occupancy spans on the virtual
  /// cycle clock (Fig. 10-style timeline) into `tracer`. Borrowed, must
  /// outlive run(); call before run().
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Accumulate the run's fabric totals into `reg` when run() returns.
  /// Borrowed, must outlive run(); call before run().
  void set_metrics(obs::MetricsRegistry* reg) { metrics_ = reg; }

 private:
  struct Pe;
  struct Event;
  struct PendingOp;
  struct InFlight;
  class ContextImpl;
  friend class ContextImpl;

  Pe& pe_at(u32 row, u32 col);
  const Pe& pe_at(u32 row, u32 col) const;
  void push_event(Event ev);
  void deliver(Pe& pe, Message msg, Cycles time);
  void try_match_ops(Pe& pe, Cycles time);
  void maybe_start_task(Pe& pe, Cycles time);
  void finish_task(Pe& pe, Cycles time);
  void complete_op(Pe& pe, Cycles time, u64 op_id);
  void route_send(const Pe& from, Message msg, Cycles depart);
  void record_span(const Pe& pe, const char* name, Cycles start, Cycles end,
                   const char* arg1_name = nullptr, i64 arg1 = 0);

  WseConfig config_;
  u32 row_begin_ = 0;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  FaultPlan fault_plan_;
  std::vector<std::unique_ptr<Pe>> pes_;
  std::vector<ResultRecord> results_;
  std::unique_ptr<InFlight> in_flight_;
  /// Per directed link: time until which it is occupied (only used when
  /// config_.model_link_contention is set). Key: pe_index * 4 + direction.
  std::vector<Cycles> link_free_;

  // Event storage is arena-allocated: Events (which carry a Message with
  // two shared_ptrs) live in fixed `arena_` slots recycled through
  // `free_slots_`, and the heap orders 20-byte (time, seq, slot) handles
  // instead of sifting whole Events. Peak memory is the maximum number
  // of concurrently scheduled events, not the run's total event count.
  struct HeapEntry {
    Cycles time = 0;
    u64 seq = 0;
    u32 slot = 0;
  };
  struct HeapCompare {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // min-heap: earlier seq first for determinism
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCompare> heap_;
  std::vector<Event> arena_;
  std::vector<u32> free_slots_;
  /// Pre-run injections and activations, staged as one coalesced batch
  /// and bulk-heapified (O(n)) when run() starts.
  std::vector<Event> initial_events_;

  Cycles makespan_ = 0;
  u64 next_seq_ = 0;
  u64 next_op_id_ = 0;
  u64 events_processed_ = 0;
  u64 tasks_run_total_ = 0;
  bool ran_ = false;
};

}  // namespace ceresz::wse
