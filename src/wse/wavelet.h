// Fabric-level primitives of the simulated wafer-scale engine: wavelets,
// cardinal dataflow directions, colors, and messages.
//
// A real CS-2 moves 32-bit wavelets one hop per clock cycle over logical
// channels called colors (24 available). Our simulator transports whole
// message bursts (a block's worth of wavelets) per event for speed, but all
// timing is expressed in wavelet-hops so the cycle accounting matches the
// hardware granularity.
#pragma once

#include <memory>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace ceresz::wse {

/// One 32-bit fabric message unit.
using Wavelet = u32;

/// The five cardinal dataflow directions of a PE: the on-PE RAMP link plus
/// the four mesh neighbors.
enum class Direction : u8 {
  kRamp = 0,
  kEast = 1,
  kWest = 2,
  kNorth = 3,
  kSouth = 4,
};

inline constexpr int kNumDirections = 5;

/// Number of logical routing channels available on the fabric.
inline constexpr int kNumColors = 24;

/// A logical channel id in [0, kNumColors).
using Color = u8;

inline const char* to_string(Direction d) {
  switch (d) {
    case Direction::kRamp: return "RAMP";
    case Direction::kEast: return "E";
    case Direction::kWest: return "W";
    case Direction::kNorth: return "N";
    case Direction::kSouth: return "S";
  }
  return "?";
}

/// Direction a wavelet arrives from when sent out of `d`.
inline Direction opposite(Direction d) {
  switch (d) {
    case Direction::kRamp: return Direction::kRamp;
    case Direction::kEast: return Direction::kWest;
    case Direction::kWest: return Direction::kEast;
    case Direction::kNorth: return Direction::kSouth;
    case Direction::kSouth: return Direction::kNorth;
  }
  CERESZ_FAIL("opposite: invalid direction");
}

/// Column delta when moving out of `d` (east = +1).
inline int dcol(Direction d) {
  return d == Direction::kEast ? 1 : d == Direction::kWest ? -1 : 0;
}

/// Row delta when moving out of `d` (south = +1).
inline int drow(Direction d) {
  return d == Direction::kSouth ? 1 : d == Direction::kNorth ? -1 : 0;
}

/// A burst of consecutive wavelets traveling on one color.
///
/// The payload is shared so that software relays (which forward the same
/// data unchanged) do not copy; `extent` is the wavelet count and is what
/// all timing is derived from. A null payload is allowed ("token mode") for
/// timing-only simulations where the data contents do not matter.
struct Message {
  Color color = 0;
  u32 extent = 0;  ///< number of 32-bit wavelets in the burst
  std::shared_ptr<const std::vector<Wavelet>> payload;
  u64 tag = 0;  ///< caller-defined identifier (e.g. global block index)

  /// Set by fault injection when the burst arrived with a flipped payload
  /// bit (receivers that carry end-to-end integrity checks can consult it;
  /// the flip itself only touches `payload`, never `user`).
  bool corrupted = false;

  /// Host-side attachment for typed in-flight state (e.g. a compression
  /// pipeline's partially processed block). Purely a simulation
  /// convenience: it does not affect timing — `extent` must still honestly
  /// describe the wavelets the burst would occupy on hardware.
  std::shared_ptr<void> user;

  /// Construct a message owning a copy of `words`.
  static Message make(Color color, std::vector<Wavelet> words, u64 tag = 0) {
    Message m;
    m.color = color;
    m.extent = static_cast<u32>(words.size());
    m.payload = std::make_shared<const std::vector<Wavelet>>(std::move(words));
    m.tag = tag;
    return m;
  }

  /// Construct a payload-less message of `extent` wavelets (timing only).
  static Message token(Color color, u32 extent, u64 tag = 0) {
    Message m;
    m.color = color;
    m.extent = extent;
    m.tag = tag;
    return m;
  }
};

}  // namespace ceresz::wse
