// Per-PE local memory accounting.
//
// Each CS-2 PE has 48 KB of SRAM holding all code and data; there is no
// global memory. Programs in this simulator must allocate their buffers
// through PeMemory so that configurations which would not fit on real
// hardware (e.g. too long a block for a 1-PE pipeline) fail loudly instead
// of silently using host memory.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>

#include "common/error.h"
#include "common/types.h"

namespace ceresz::wse {

class PeMemory {
 public:
  explicit PeMemory(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Reserve `bytes` under `name`. Throws ceresz::Error if the allocation
  /// would exceed the PE's SRAM capacity or the name is already in use.
  void allocate(const std::string& name, std::size_t bytes) {
    CERESZ_CHECK(!allocations_.contains(name),
                 "PeMemory: duplicate allocation '" + name + "'");
    CERESZ_CHECK(used_ + bytes <= capacity_,
                 "PeMemory: allocation '" + name + "' of " +
                     std::to_string(bytes) + " bytes exceeds SRAM capacity");
    allocations_.emplace(name, bytes);
    used_ += bytes;
    if (used_ > peak_) peak_ = used_;
  }

  /// Release a named allocation. Throws if the name is unknown.
  void release(const std::string& name) {
    auto it = allocations_.find(name);
    CERESZ_CHECK(it != allocations_.end(),
                 "PeMemory: release of unknown allocation '" + name + "'");
    used_ -= it->second;
    allocations_.erase(it);
  }

  std::size_t used() const { return used_; }
  std::size_t peak() const { return peak_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t available() const { return capacity_ - used_; }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
  std::unordered_map<std::string, std::size_t> allocations_;
};

}  // namespace ceresz::wse
