#include "wse/fault_plan.h"

#include "common/error.h"
#include "common/rng.h"

namespace ceresz::wse {

bool FaultPlan::empty() const {
  return dead_by_row_.empty() && slow_.empty() && per_arrival_.empty();
}

void FaultPlan::kill_pe(u32 row, u32 col) {
  if (dead_by_row_[row].insert(col).second) ++dead_pes_;
}

void FaultPlan::slow_pe(u32 row, u32 col, f64 cycle_multiplier) {
  CERESZ_CHECK(cycle_multiplier >= 1.0,
               "FaultPlan: a slow PE cannot run faster than the clock");
  slow_[pe_key(row, col)] = cycle_multiplier;
}

void FaultPlan::drop_delivery(u32 row, u32 col, u64 arrival_index) {
  auto& faults = per_arrival_[pe_key(row, col)];
  if (faults.emplace(arrival_index, DeliveryFault::kDrop).second) {
    ++delivery_faults_;
  }
}

void FaultPlan::corrupt_delivery(u32 row, u32 col, u64 arrival_index) {
  auto& faults = per_arrival_[pe_key(row, col)];
  if (faults.emplace(arrival_index, DeliveryFault::kCorrupt).second) {
    ++delivery_faults_;
  }
}

bool FaultPlan::is_dead(u32 row, u32 col) const {
  const auto it = dead_by_row_.find(row);
  return it != dead_by_row_.end() && it->second.contains(col);
}

f64 FaultPlan::cycle_multiplier(u32 row, u32 col) const {
  const auto it = slow_.find(pe_key(row, col));
  return it == slow_.end() ? 1.0 : it->second;
}

DeliveryFault FaultPlan::delivery_fault(u32 row, u32 col,
                                        u64 arrival_index) const {
  const auto pe = per_arrival_.find(pe_key(row, col));
  if (pe == per_arrival_.end()) return DeliveryFault::kNone;
  const auto it = pe->second.find(arrival_index);
  return it == pe->second.end() ? DeliveryFault::kNone : it->second;
}

void FaultPlan::for_each_dead(
    const std::function<void(u32 row, u32 col)>& fn) const {
  for (const auto& [row, cols] : dead_by_row_) {
    for (const u32 col : cols) fn(row, col);
  }
}

void FaultPlan::for_each_slow(
    const std::function<void(u32 row, u32 col, f64 multiplier)>& fn) const {
  for (const auto& [key, multiplier] : slow_) {
    fn(static_cast<u32>(key >> 32), static_cast<u32>(key), multiplier);
  }
}

void FaultPlan::for_each_delivery_fault(
    const std::function<void(u32 row, u32 col, u64 arrival_index,
                             DeliveryFault fault)>& fn) const {
  for (const auto& [key, faults] : per_arrival_) {
    for (const auto& [arrival, fault] : faults) {
      fn(static_cast<u32>(key >> 32), static_cast<u32>(key), arrival, fault);
    }
  }
}

FaultPlan FaultPlan::slice_rows(u32 row_begin, u32 row_count,
                                std::optional<u32> col_limit) const {
  FaultPlan slice(seed_);
  const u64 end = static_cast<u64>(row_begin) + row_count;
  const auto in_slice = [&](u32 row, u32 col) {
    return row >= row_begin && row < end &&
           (!col_limit.has_value() || col < *col_limit);
  };
  for_each_dead([&](u32 r, u32 c) {
    if (in_slice(r, c)) slice.kill_pe(r - row_begin, c);
  });
  for_each_slow([&](u32 r, u32 c, f64 mult) {
    if (in_slice(r, c)) slice.slow_pe(r - row_begin, c, mult);
  });
  for_each_delivery_fault([&](u32 r, u32 c, u64 arrival, DeliveryFault f) {
    if (!in_slice(r, c)) return;
    if (f == DeliveryFault::kDrop) {
      slice.drop_delivery(r - row_begin, c, arrival);
    } else {
      slice.corrupt_delivery(r - row_begin, c, arrival);
    }
  });
  return slice;
}

std::optional<u32> FaultPlan::first_dead_col(u32 row) const {
  const auto it = dead_by_row_.find(row);
  if (it == dead_by_row_.end() || it->second.empty()) return std::nullopt;
  return *it->second.begin();
}

FaultPlan FaultPlan::random(u64 seed, u32 rows, u32 cols,
                            const FaultSpec& spec) {
  CERESZ_CHECK(rows >= 1 && cols >= 1, "FaultPlan::random: empty mesh");
  FaultPlan plan(seed);
  Rng rng(seed);
  const auto pick_pe = [&](u32& row, u32& col) {
    row = static_cast<u32>(rng.next_below(rows));
    col = static_cast<u32>(rng.next_below(cols));
  };
  for (u32 i = 0; i < spec.dead_pes; ++i) {
    u32 r, c;
    pick_pe(r, c);
    plan.kill_pe(r, c);
  }
  for (u32 i = 0; i < spec.slow_pes; ++i) {
    u32 r, c;
    pick_pe(r, c);
    plan.slow_pe(r, c, rng.uniform(1.0, spec.max_slowdown));
  }
  const u64 horizon = spec.arrival_horizon > 0 ? spec.arrival_horizon : 1;
  for (u32 i = 0; i < spec.dropped_bursts; ++i) {
    u32 r, c;
    pick_pe(r, c);
    plan.drop_delivery(r, c, rng.next_below(horizon));
  }
  for (u32 i = 0; i < spec.corrupted_bursts; ++i) {
    u32 r, c;
    pick_pe(r, c);
    plan.corrupt_delivery(r, c, rng.next_below(horizon));
  }
  return plan;
}

}  // namespace ceresz::wse
