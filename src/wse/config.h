// Static configuration of the simulated wafer-scale engine.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace ceresz::wse {

/// Geometry and timing parameters of the simulated WSE.
///
/// Defaults follow the CS-2 numbers reported in the paper (Section 5.1.1):
/// a 757x996 mesh of which 750x994 PEs are usable for computation, 48 KB of
/// SRAM per PE, and an 850 MHz clock. Meshes used in experiments are
/// sub-rectangles of the usable area.
struct WseConfig {
  u32 rows = 1;
  u32 cols = 1;

  /// Clock frequency used to convert cycle counts into seconds.
  f64 clock_hz = 850.0e6;

  /// Local SRAM per PE; allocations beyond this throw.
  std::size_t sram_bytes = 48 * 1024;

  /// Cycles for a wavelet to cross one router-to-router link.
  Cycles hop_cycles = 1;

  /// Model per-link serialization: a directed link carries one wavelet per
  /// cycle, so overlapping bursts on the same link queue behind each
  /// other. Off by default for backwards-compatible timing; the CereSZ
  /// mapping's software relays serialize traffic anyway, so enabling this
  /// changes its results only when colors genuinely share links.
  bool model_link_contention = false;

  /// Fixed scheduling overhead added to every task execution (models task
  /// switch / activation dispatch on the PE).
  Cycles task_overhead_cycles = 8;

  /// Fixed overhead of a software relay (counter update + async mov /
  /// microthread setup) on top of the streaming extent. Together these
  /// give the paper's C1: relaying one block of L wavelets through a PE
  /// costs relay_overhead_cycles + L cycles. The fixed part dominates for
  /// tiny bursts (e.g. 1-wavelet zero-block records on the decompression
  /// side), which is what keeps their relay cost realistic.
  Cycles relay_overhead_cycles = 24;

  /// Fixed overhead of an async send (memory -> fabric DSD setup). Together
  /// with the streaming extent this forms the paper's C2.
  Cycles send_overhead_cycles = 32;

  /// Fixed overhead of completing an async receive into local memory.
  Cycles recv_overhead_cycles = 4;

  /// Largest usable mesh on a CS-2 per the paper.
  static WseConfig full_wafer() {
    WseConfig c;
    c.rows = 750;
    c.cols = 994;
    return c;
  }

  /// Convert a cycle count into seconds at this configuration's clock.
  f64 seconds(Cycles cycles) const {
    return static_cast<f64>(cycles) / clock_hz;
  }

  u64 pe_count() const { return static_cast<u64>(rows) * cols; }
};

}  // namespace ceresz::wse
