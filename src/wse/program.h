// CSL-inspired programming model for the simulated WSE.
//
// Mirrors the concepts the paper programs against (Figures 4 and 9):
//   - tasks are bound to colors (`bind_task`) and run when their color is
//     activated;
//   - `activate` schedules another task on the same PE after the current
//     one finishes;
//   - `recv_async` models `@mov32(local, fabin_dsd, .{.async=true,
//     .activate=...})`: when a message is available on the channel it is
//     moved into local delivery storage and the given color is activated;
//   - `send_async` models moving a local buffer out through a fabout DSD;
//   - `forward_async` models the relay idiom `@mov32(dout, din, ...)`,
//     streaming an incoming burst straight back out at one wavelet/cycle.
//
// All methods may only be called from inside a running task handler; the
// requested operations take effect when the task finishes, matching the
// asynchronous semantics of the hardware.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/types.h"
#include "wse/memory.h"
#include "wse/wavelet.h"

namespace ceresz::wse {

/// How a bound task gets started.
enum class TaskTrigger {
  kManual,         ///< runs only when explicitly activated
  kDataTriggered,  ///< an arriving message on the color delivers itself and
                   ///< activates the task (wavelet-triggered task in CSL)
};

/// Interface handed to task handlers while they execute.
class PeContext {
 public:
  virtual ~PeContext() = default;

  virtual u32 row() const = 0;
  virtual u32 col() const = 0;

  /// Simulated time at which the current task started.
  virtual Cycles now() const = 0;

  /// Charge `cycles` of processor time to the current task.
  virtual void consume(Cycles cycles) = 0;

  /// Activate `color`'s task on this PE once the current task finishes.
  virtual void activate(Color color) = 0;

  /// Asynchronously receive the next message on `channel` into local
  /// delivery storage, then activate `activate_color`.
  virtual void recv_async(Color channel, Color activate_color) = 0;

  /// Asynchronously send `msg` out along `channel`'s configured route.
  /// Optionally activate `activate_color` once the send has drained.
  virtual void send_async(Color channel, Message msg,
                          std::optional<Color> activate_color = {}) = 0;

  /// Stream the next message arriving on `in_channel` straight out on
  /// `out_channel` without touching memory, then activate `activate_color`.
  virtual void forward_async(Color in_channel, Color out_channel,
                             Color activate_color) = 0;

  /// Retrieve a message previously completed by recv_async (or delivered to
  /// a data-triggered task). Throws if none is available.
  virtual Message take_delivered(Color channel) = 0;

  virtual bool has_delivered(Color channel) const = 0;

  /// This PE's local SRAM accounting.
  virtual PeMemory& memory() = 0;

  /// Host-side escape hatch: record a finished unit of output (e.g. one
  /// compressed block) so the harness can reassemble and verify it. Models
  /// streaming results off-wafer without simulating the egress links.
  virtual void emit_result(u64 tag, std::vector<u8> bytes) = 0;
};

/// A task body. Handlers must be deterministic functions of the PE state
/// they capture plus the messages they take; they run to completion.
using TaskFn = std::function<void(PeContext&)>;

}  // namespace ceresz::wse
