#include "wse/wafer_sim.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"

namespace ceresz::wse {

void declare_simulator_metrics(obs::MetricsRegistry& reg) {
  reg.counter(kMetricSimRuns);
  reg.gauge(kMetricSimRowGroups);
  reg.gauge(kMetricSimThreads);
}

// ---------------------------------------------------------------------------
// RowSimulator
// ---------------------------------------------------------------------------

namespace {

WseConfig band_config(const WseConfig& wafer, u32 row_count) {
  WseConfig band = wafer;
  band.rows = row_count;
  return band;
}

}  // namespace

RowSimulator::RowSimulator(const WseConfig& wafer, u32 row_begin,
                           u32 row_count)
    : row_begin_(row_begin),
      row_count_(row_count),
      fabric_(band_config(wafer, row_count), row_begin) {}

RunStats RowSimulator::run() {
  run_stats_ = fabric_.run();
  return run_stats_;
}

// ---------------------------------------------------------------------------
// WaferSimulator
// ---------------------------------------------------------------------------

WaferSimulator::WaferSimulator(WaferSimOptions options)
    : options_(std::move(options)) {
  CERESZ_CHECK(options_.wse.rows >= 1 && options_.wse.cols >= 1,
               "WaferSimulator: mesh must be at least 1x1");
  // The band partition must not depend on thread count: a fixed
  // rows_per_group makes the merged output a pure function of the
  // installed programs, whatever parallelism executes it.
  const u32 per_group = std::max<u32>(1, options_.rows_per_group);
  group_of_row_.resize(options_.wse.rows);
  for (u32 begin = 0; begin < options_.wse.rows; begin += per_group) {
    const u32 count = std::min(per_group, options_.wse.rows - begin);
    const u32 index = static_cast<u32>(groups_.size());
    groups_.push_back(
        std::make_unique<RowSimulator>(options_.wse, begin, count));
    Fabric& fabric = groups_.back()->fabric();
    if (!options_.fault_plan.empty()) {
      fabric.set_fault_plan(options_.fault_plan);
    }
    // Bands record traces directly (per-thread rings; thread ids are
    // global PE coordinates) but never metrics — the driver accumulates
    // those once, after the deterministic merge.
    fabric.set_tracer(options_.tracer);
    for (u32 r = begin; r < begin + count; ++r) group_of_row_[r] = index;
  }
}

Fabric& WaferSimulator::fabric_for_row(u32 row) {
  CERESZ_CHECK(row < options_.wse.rows,
               "WaferSimulator: row outside the simulated mesh");
  return groups_[group_of_row_[row]]->fabric();
}

void WaferSimulator::run_group_task(std::size_t i) {
  // Band work inherits the trace context of the request that called
  // run(), whatever thread executes it (pool worker, inline drain, or
  // the caller itself), so fabric spans stay request-attributable.
  const obs::TraceContextScope scope(run_ctx_);
  try {
    groups_[i]->run();
  } catch (...) {
    std::lock_guard lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  // Notify while still holding the mutex: the waiter in run() may see
  // remaining_ == 0 and destroy this WaferSimulator (and cv_) the moment
  // it can reacquire mu_, so a notify after unlocking would race the
  // condvar's destruction.
  std::lock_guard lock(mu_);
  --remaining_;
  cv_.notify_all();
}

RunStats WaferSimulator::run() {
  CERESZ_CHECK(!ran_, "WaferSimulator::run may only be called once");
  ran_ = true;
  run_ctx_ = obs::current_trace_context();

  engine::ThreadPool* pool = options_.pool;
  std::unique_ptr<engine::ThreadPool> owned;
  if (pool == nullptr && options_.sim_threads > 1 && groups_.size() > 1) {
    const u32 threads =
        std::min<u32>(options_.sim_threads,
                      static_cast<u32>(groups_.size()));
    owned = std::make_unique<engine::ThreadPool>(threads);
    pool = owned.get();
  }

  if (pool == nullptr || groups_.size() == 1) {
    for (std::size_t i = 0; i < groups_.size(); ++i) {
      remaining_ = 1;
      run_group_task(i);
    }
  } else {
    {
      std::lock_guard lock(mu_);
      remaining_ = groups_.size();
    }
    for (std::size_t i = 0; i < groups_.size(); ++i) {
      // Never the blocking submit(): a full queue (or a collapsed pool)
      // means this thread runs the band itself, so sharing a pool with
      // other submitters — including being *called from* one of its
      // tasks — cannot deadlock.
      if (!pool->try_submit([this, i] { run_group_task(i); })) {
        run_group_task(i);
      }
    }
    std::unique_lock lock(mu_);
    while (remaining_ > 0) {
      lock.unlock();
      const bool ran_one = pool->run_one_inline();
      lock.lock();
      if (!ran_one && remaining_ > 0) {
        // Queue momentarily empty: the outstanding bands are executing
        // on workers. Their completion notifies; the timeout is a
        // belt-and-suspenders bound, not a correctness requirement.
        cv_.wait_for(lock, std::chrono::milliseconds(2));
      }
    }
  }
  if (first_error_) std::rethrow_exception(first_error_);

  // Deterministic merge, fixed band order.
  run_stats_ = RunStats{};
  for (const auto& group : groups_) {
    const RunStats& rs = group->run_stats();
    run_stats_.makespan = std::max(run_stats_.makespan, rs.makespan);
    run_stats_.events_processed += rs.events_processed;
    run_stats_.tasks_run += rs.tasks_run;
    run_stats_.messages_dropped += rs.messages_dropped;
    run_stats_.messages_corrupted += rs.messages_corrupted;
    run_stats_.activations_suppressed += rs.activations_suppressed;
    auto band_results = group->fabric().take_results();
    results_.insert(results_.end(),
                    std::make_move_iterator(band_results.begin()),
                    std::make_move_iterator(band_results.end()));
  }

  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    u64 sent = 0, received = 0, relayed = 0, busy = 0;
    for (const auto& group : groups_) {
      const u32 begin = group->row_begin();
      for (u32 r = begin; r < begin + group->row_count(); ++r) {
        for (u32 c = 0; c < options_.wse.cols; ++c) {
          const PeStats& ps = group->fabric().stats(r, c);
          sent += ps.messages_sent;
          received += ps.messages_received;
          relayed += ps.messages_relayed;
          busy += ps.busy_cycles;
        }
      }
    }
    reg.counter(kMetricFabricTasks).add(run_stats_.tasks_run);
    reg.counter(kMetricFabricEvents).add(run_stats_.events_processed);
    reg.counter(kMetricFabricSent).add(sent);
    reg.counter(kMetricFabricReceived).add(received);
    reg.counter(kMetricFabricRelayed).add(relayed);
    reg.counter(kMetricFabricDropped).add(run_stats_.messages_dropped);
    reg.counter(kMetricFabricCorrupted).add(run_stats_.messages_corrupted);
    reg.counter(kMetricFabricBusyCycles).add(busy);
    reg.gauge(kMetricFabricMakespan)
        .set(static_cast<f64>(run_stats_.makespan));
    reg.counter(kMetricSimRuns).add(1);
    reg.gauge(kMetricSimRowGroups).set(static_cast<f64>(groups_.size()));
    reg.gauge(kMetricSimThreads)
        .set(static_cast<f64>(pool != nullptr ? std::max<u32>(1, pool->size())
                                              : 1));
  }
  return run_stats_;
}

const PeStats& WaferSimulator::stats(u32 row, u32 col) const {
  CERESZ_CHECK(row < options_.wse.rows,
               "WaferSimulator: row outside the simulated mesh");
  return groups_[group_of_row_[row]]->fabric().stats(row, col);
}

}  // namespace ceresz::wse
