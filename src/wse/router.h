// Per-PE fabric router configuration.
//
// As on the real hardware, every color must be configured on every PE it
// crosses: a set of input directions it may arrive from and a set of output
// directions it is forwarded to. An output containing RAMP delivers the
// wavelets to the PE's processor; other outputs forward to neighbors.
#pragma once

#include <array>
#include <initializer_list>

#include "common/error.h"
#include "wse/wavelet.h"

namespace ceresz::wse {

/// Routing entry of one color on one PE: bitmasks over Direction.
struct RouteEntry {
  u8 input_mask = 0;
  u8 output_mask = 0;
  bool configured = false;

  bool has_input(Direction d) const {
    return (input_mask >> static_cast<int>(d)) & 1;
  }
  bool has_output(Direction d) const {
    return (output_mask >> static_cast<int>(d)) & 1;
  }
};

class RouterConfig {
 public:
  /// Configure `color` to accept wavelets from `inputs` and forward them to
  /// `outputs`. Reconfiguring an already-set color throws (the hardware
  /// requires teardown first); use `clear_route` to reconfigure.
  void set_route(Color color, std::initializer_list<Direction> inputs,
                 std::initializer_list<Direction> outputs) {
    check_color(color);
    RouteEntry& e = entries_[color];
    CERESZ_CHECK(!e.configured,
                 "RouterConfig: color already configured on this PE");
    CERESZ_CHECK(outputs.size() > 0, "RouterConfig: route with no outputs");
    for (Direction d : inputs) e.input_mask |= u8{1} << static_cast<int>(d);
    for (Direction d : outputs) e.output_mask |= u8{1} << static_cast<int>(d);
    e.configured = true;
  }

  void clear_route(Color color) {
    check_color(color);
    entries_[color] = RouteEntry{};
  }

  const RouteEntry& route(Color color) const {
    check_color(color);
    return entries_[color];
  }

  bool is_configured(Color color) const {
    check_color(color);
    return entries_[color].configured;
  }

 private:
  static void check_color(Color color) {
    CERESZ_CHECK(color < kNumColors, "RouterConfig: color id out of range");
  }

  std::array<RouteEntry, kNumColors> entries_{};
};

}  // namespace ceresz::wse
