// Parallel full-wafer simulation: RowSimulator bands + WaferSimulator
// driver.
//
// CereSZ rows never communicate (the basis of the paper's Fig. 7 linear
// row scaling), so a wafer-sized mesh splits into independent row bands
// that can be simulated concurrently. A RowSimulator owns one band: a
// Fabric addressed in GLOBAL wafer rows (per-row PE state, the arena-
// allocated event heap, the coalesced pre-run injection batch). The
// WaferSimulator partitions the mesh into bands, runs them on worker
// threads, and merges PeStats/RunStats/results in fixed band order — so
// the merged output is bit-identical and every virtual-cycle count is
// stable regardless of thread count (or of running serially).
//
// Determinism contract: for a fixed `rows_per_group`, every observable
// of run() — merged ResultRecords, RunStats, per-PE PeStats, metric
// totals, the makespan — is a pure function of the installed programs
// and fault plan. Thread count only changes which host worker executes
// which band. (Trace event *file order* can vary with threading; the
// events themselves, stamped on the virtual clock with global-PE thread
// ids, are the same set.) tests/test_wafer_sim.cpp locks this in.
//
// Thread-pool reuse: the driver can borrow an existing engine::ThreadPool
// (WaferSimOptions::pool) instead of spawning its own. It only ever uses
// try_submit() — never the blocking submit() — and the waiting thread
// helps drain the queue via run_one_inline(), so sharing a pool with the
// compression engine (or invoking a simulation from inside a pool task,
// as the tenant coordinator's request paths do) cannot deadlock, even on
// a 1-worker pool. test_wafer_sim regression-tests exactly that.
//
// Fault storms: each band consults the full FaultPlan in global
// coordinates, so a cross-row fault storm is exactly simulable — no
// slicing or re-basing is involved in the simulator path itself
// (FaultPlan::slice_rows exists for the tenant coordinator's
// lease-local plans and is property-tested against this).
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/thread_pool.h"
#include "wse/fabric.h"

namespace ceresz::wse {

/// Simulator-driver metric families, accumulated once per run() by the
/// WaferSimulator (band fabrics write no metrics themselves, so totals
/// stay identical across thread counts).
inline constexpr const char* kMetricSimRuns = "ceresz_fabric_sim_runs_total";
inline constexpr const char* kMetricSimRowGroups =
    "ceresz_fabric_sim_row_groups";
inline constexpr const char* kMetricSimThreads = "ceresz_fabric_sim_threads";

/// Pre-create the simulator metric families in `reg` at zero.
void declare_simulator_metrics(obs::MetricsRegistry& reg);

/// One contiguous band of wafer rows, simulated in isolation. Owns the
/// band's Fabric (per-row PE state, event arena, injection batch); all
/// row coordinates are global wafer rows in [row_begin, row_begin +
/// row_count).
class RowSimulator {
 public:
  RowSimulator(const WseConfig& wafer, u32 row_begin, u32 row_count);

  RowSimulator(const RowSimulator&) = delete;
  RowSimulator& operator=(const RowSimulator&) = delete;

  u32 row_begin() const { return row_begin_; }
  u32 row_count() const { return row_count_; }

  /// The band fabric, for program installation (routes, tasks, injections)
  /// before run() and stats queries after.
  Fabric& fabric() { return fabric_; }
  const Fabric& fabric() const { return fabric_; }

  /// Run the band to completion. May be called once; thread-safe with
  /// respect to other bands (they share nothing mutable).
  RunStats run();

  /// The band's RunStats (valid after run()).
  const RunStats& run_stats() const { return run_stats_; }

 private:
  u32 row_begin_ = 0;
  u32 row_count_ = 0;
  Fabric fabric_;
  RunStats run_stats_;
};

struct WaferSimOptions {
  /// Full simulated mesh (rows x cols); bands partition `wse.rows`.
  WseConfig wse{};
  /// Worker threads for band execution. <= 1 runs bands serially on the
  /// calling thread (still through the same band partition, so results
  /// are identical to any threaded run). Ignored when `pool` is set.
  u32 sim_threads = 1;
  /// Rows per band. 0 picks the default of 1 (one RowSimulator per row —
  /// deliberately independent of sim_threads, so the band partition, and
  /// with it the merged result order, never varies with thread count).
  u32 rows_per_group = 0;
  /// Consulted by every band in global coordinates; cross-row fault
  /// storms are exact.
  FaultPlan fault_plan{};
  /// Observability; both borrowed, both nullable, must outlive run().
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Borrowed worker pool to run bands on (e.g. the compression engine's
  /// pool). Null with sim_threads > 1 spawns a private pool for the run.
  engine::ThreadPool* pool = nullptr;
};

class WaferSimulator {
 public:
  explicit WaferSimulator(WaferSimOptions options);

  const WaferSimOptions& options() const { return options_; }

  std::size_t group_count() const { return groups_.size(); }
  RowSimulator& group(std::size_t i) { return *groups_[i]; }

  /// The band fabric owning global `row` — install programs through it
  /// exactly as on a whole-mesh Fabric (build_row_program works
  /// unchanged: row coordinates are global).
  Fabric& fabric_for_row(u32 row);

  /// Run every band to completion and merge. May be called once. Bands
  /// execute concurrently when a pool is available; the merge (stats
  /// sums, result concatenation, metric accumulation) happens in fixed
  /// band order on the calling thread.
  RunStats run();

  /// Merged results: band order (ascending row), emission order within a
  /// band. Valid after run().
  const std::vector<ResultRecord>& results() const { return results_; }

  /// Per-PE statistics by global coordinates (valid after run()).
  const PeStats& stats(u32 row, u32 col) const;

  Cycles makespan() const { return run_stats_.makespan; }
  const RunStats& run_stats() const { return run_stats_; }

 private:
  void run_group_task(std::size_t i);

  WaferSimOptions options_;
  std::vector<std::unique_ptr<RowSimulator>> groups_;
  std::vector<u32> group_of_row_;  ///< global row -> band index
  std::vector<ResultRecord> results_;
  RunStats run_stats_;
  bool ran_ = false;
  /// Trace context captured at run() entry; re-installed around every
  /// band so fabric spans inherit the originating request's trace id.
  obs::TraceContext run_ctx_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t remaining_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace ceresz::wse
