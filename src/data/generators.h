// Deterministic synthetic stand-ins for the six SDRBench datasets of
// Table 4.
//
// We do not ship the real datasets (multi-GB, external), so each generator
// produces fields with the *statistical character* that drives a
// prediction-based block compressor: local smoothness (which sets the
// Lorenzo residual magnitude and hence each block's fixed length),
// sparsity (which sets the zero-block fraction, the mechanism behind the
// error-bound/throughput coupling of Section 5.2), and dynamic range.
// Generators are tuned so per-dataset compression ratios land in the
// ballpark of Table 5; EXPERIMENTS.md records the achieved values.
//
// All generation is deterministic in (dataset, field index, seed).
#pragma once

#include <vector>

#include "common/types.h"
#include "data/field.h"

namespace ceresz::data {

enum class DatasetId : u8 {
  kCesmAtm,
  kHurricane,
  kQmcpack,
  kNyx,
  kRtm,
  kHacc,
};

inline constexpr DatasetId kAllDatasets[] = {
    DatasetId::kCesmAtm, DatasetId::kHurricane, DatasetId::kQmcpack,
    DatasetId::kNyx,     DatasetId::kRtm,       DatasetId::kHacc,
};

/// Catalog entry: the real dataset's shape (Table 4) plus the default
/// generated shape (scaled down so benches run on one host core).
struct DatasetSpec {
  DatasetId id;
  const char* name;
  const char* domain;
  u32 fields_full;                       ///< field count in SDRBench
  std::vector<std::size_t> dims_full;    ///< per-field dims in SDRBench
  u32 fields_generated;                  ///< fields we synthesize
  std::vector<std::size_t> dims_generated;
};

const std::vector<DatasetSpec>& dataset_catalog();
const DatasetSpec& dataset_spec(DatasetId id);

/// Generate one field. `field_index` < spec.fields_generated selects the
/// field's character (per-field smoothness/sparsity variation, mirroring
/// the wide per-field ratio ranges of Table 5). `scale` multiplies every
/// dimension (1.0 = the catalog's generated shape).
Field generate_field(DatasetId id, u32 field_index, u64 seed = 42,
                     f64 scale = 1.0);

/// Generate all of a dataset's fields.
std::vector<Field> generate_dataset(DatasetId id, u64 seed = 42,
                                    f64 scale = 1.0);

}  // namespace ceresz::data
