// A scientific field: named, multi-dimensional, single-precision — the unit
// the paper's evaluation compresses (each SDRBench dataset is a set of
// fields; Table 4).
#pragma once

#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace ceresz::data {

struct Field {
  std::string dataset;
  std::string name;
  std::vector<std::size_t> dims;  ///< row-major, last dimension fastest
  std::vector<f32> values;

  std::size_t size() const { return values.size(); }
  std::size_t bytes() const { return values.size() * sizeof(f32); }

  std::span<const f32> view() const { return values; }

  /// Product of dims (should equal values.size()).
  std::size_t dim_product() const {
    return std::accumulate(dims.begin(), dims.end(), std::size_t{1},
                           std::multiplies<>());
  }
};

}  // namespace ceresz::data
