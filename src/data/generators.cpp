#include "data/generators.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace ceresz::data {

namespace {

std::vector<std::size_t> scaled_dims(const std::vector<std::size_t>& dims,
                                     f64 scale) {
  std::vector<std::size_t> out;
  out.reserve(dims.size());
  for (std::size_t d : dims) {
    out.push_back(std::max<std::size_t>(
        8, static_cast<std::size_t>(std::llround(d * scale))));
  }
  return out;
}

/// Sum of `n_modes` random low-frequency cosine waves over the unit cube,
/// evaluated at normalized coordinates. The workhorse for smooth fields.
class WaveMix {
 public:
  WaveMix(Rng& rng, int n_modes, f64 max_freq) {
    modes_.reserve(n_modes);
    for (int k = 0; k < n_modes; ++k) {
      Mode m;
      for (auto& f : m.freq) f = rng.uniform(-max_freq, max_freq);
      m.phase = rng.uniform(0.0, 2.0 * M_PI);
      m.amp = rng.uniform(0.3, 1.0) / std::sqrt(static_cast<f64>(n_modes));
      modes_.push_back(m);
    }
  }

  f64 operator()(f64 x, f64 y, f64 z) const {
    f64 v = 0.0;
    for (const Mode& m : modes_) {
      v += m.amp * std::cos(2.0 * M_PI *
                                (m.freq[0] * x + m.freq[1] * y + m.freq[2] * z) +
                            m.phase);
    }
    return v;
  }

 private:
  struct Mode {
    f64 freq[3];
    f64 phase;
    f64 amp;
  };
  std::vector<Mode> modes_;
};

/// Iterate a (up to 3-D) grid in row-major order, calling
/// fn(x, y, z, flat_index) with coordinates normalized to [0, 1).
template <typename Fn>
void for_grid(const std::vector<std::size_t>& dims, Fn&& fn) {
  // Treat missing leading dims as size 1: dims {a} -> 1 x 1 x a, {a, b} ->
  // 1 x a x b, {a, b, c} stays.
  std::size_t dz = 1, dy = 1, dx = 1;
  if (dims.size() == 1) {
    dx = dims[0];
  } else if (dims.size() == 2) {
    dy = dims[0];
    dx = dims[1];
  } else if (dims.size() == 3) {
    dz = dims[0];
    dy = dims[1];
    dx = dims[2];
  } else {
    CERESZ_FAIL("for_grid: only 1-3 dimensional fields supported");
  }
  std::size_t idx = 0;
  for (std::size_t z = 0; z < dz; ++z) {
    const f64 nz = static_cast<f64>(z) / static_cast<f64>(dz);
    for (std::size_t y = 0; y < dy; ++y) {
      const f64 ny = static_cast<f64>(y) / static_cast<f64>(dy);
      for (std::size_t x = 0; x < dx; ++x) {
        const f64 nx = static_cast<f64>(x) / static_cast<f64>(dx);
        fn(nx, ny, nz, idx++);
      }
    }
  }
}

u64 field_seed(u64 seed, DatasetId id, u32 field_index) {
  SplitMix64 sm(seed ^ (static_cast<u64>(id) << 32) ^ field_index);
  return sm.next();
}

// ---------------------------------------------------------------------------
// Per-dataset generators
// ---------------------------------------------------------------------------

// CESM-ATM: 2-D climate fields shaped like the cloud/moisture fraction
// fields that dominate SDRBench CESM: exact-zero plateaus (no cloud) with
// smooth bumps. The zero plateau keeps the ratio healthy even at REL 1e-4
// (Table 5: 8.73 -> 5.11), because zero blocks do not depend on the bound.
void gen_cesm(Field& f, u32 field_index, Rng& rng) {
  const WaveMix base(rng, 8, 2.5);
  const WaveMix detail(rng, 12, 14.0);
  const f64 threshold = 0.03 * (field_index % 4);
  const f64 detail_amp = 0.01 + 0.01 * (field_index % 3);
  for_grid(f.dims, [&](f64 x, f64 y, f64, std::size_t i) {
    const f64 b = base(x, y, 0.0) + detail_amp * detail(x, y, 0.0);
    const f64 v = b > threshold ? (b - threshold) * (b - threshold) : 0.0;
    f.values[i] = static_cast<f32>(v);
  });
}

// Hurricane: 3-D vortex flow, strong near the tilted core and decaying to
// (near) zero outside it — most of the volume away from the storm is calm.
void gen_hurricane(Field& f, u32 field_index, Rng& rng) {
  const f64 cx = rng.uniform(0.4, 0.6);
  const f64 cy = rng.uniform(0.4, 0.6);
  const f64 radius = rng.uniform(0.06, 0.10);
  const f64 strength = rng.uniform(30.0, 60.0);
  const bool tangential = field_index % 2 == 0;
  for_grid(f.dims, [&](f64 x, f64 y, f64 z, std::size_t i) {
    const f64 dx = x - cx;
    const f64 dy = y - cy - 0.1 * (z - 0.5);  // tilted eye
    const f64 r2 = dx * dx + dy * dy;
    const f64 swirl = strength * std::exp(-r2 / (radius * radius));
    const f64 v = (tangential ? -dy : dx) * swirl;
    // Calm regions are exactly calm at single precision.
    f.values[i] = std::fabs(v) < 2e-3 * strength ? 0.0f : static_cast<f32>(v);
  });
}

// QMCPack: orbitals — oscillatory structure under a steeply decaying
// envelope. At loose bounds the tail region quantizes to zero; tightening
// the bound exposes more of the tail, which is why QMCPack's ratio falls
// steeply from REL 1e-2 to 1e-4 in Table 5 (14.6 -> 4.2).
void gen_qmcpack(Field& f, u32 field_index, Rng& rng) {
  const WaveMix oscillation(rng, 14, 8.0 + 3.0 * field_index);
  for_grid(f.dims, [&](f64 x, f64 y, f64 z, std::size_t i) {
    const f64 rx = x - 0.5, ry = y - 0.5, rz = z - 0.5;
    const f64 envelope = std::exp(-22.0 * (rx * rx + ry * ry + rz * rz));
    f.values[i] = static_cast<f32>(envelope * oscillation(x, y, z));
  });
}

// NYX: cosmology. Baryon density and temperature are log-normal (huge
// dynamic range: most of the volume is orders of magnitude below the
// range-defining peaks and quantizes to zero); velocities are smooth bulk
// flows around zero mean.
void gen_nyx(Field& f, u32 field_index, Rng& rng) {
  if (field_index == 0 || field_index == 4) {  // density / temperature
    const WaveMix logfield(rng, 12, 4.0);
    const f64 sharpness = field_index == 0 ? 8.0 : 6.0;
    for_grid(f.dims, [&](f64 x, f64 y, f64 z, std::size_t i) {
      const f64 g = logfield(x, y, z);
      f.values[i] = static_cast<f32>(std::exp(sharpness * g));
    });
    return;
  }
  const WaveMix flow(rng, 8, 2.0);
  const WaveMix turbulence(rng, 10, 10.0);
  for_grid(f.dims, [&](f64 x, f64 y, f64 z, std::size_t i) {
    const f64 base = flow(x, y, z) + 0.01 * turbulence(x, y, z);
    // Cubing concentrates velocities near zero while rare collapsed
    // regions define the range, as in the real velocity fields.
    const f64 v = base * base * base;
    f.values[i] = static_cast<f32>(v * 1.0e7);  // cm/s velocity scale
  });
}

// RTM: one time-step of a seismic wavefield — an expanding spherical
// wavefront band; the volume outside the band is exactly zero, producing
// the near-cap ratios (31.99 at the 32x zero-block cap) of Table 5.
void gen_rtm(Field& f, u32 field_index, Rng& rng) {
  const f64 front_radius = 0.12 + 0.08 * field_index;
  const f64 width = 0.012;
  const f64 wavenumber = 60.0 + 10.0 * field_index;
  const f64 cx = 0.5, cy = 0.5, cz = 0.1;
  (void)rng;
  for_grid(f.dims, [&](f64 x, f64 y, f64 z, std::size_t i) {
    const f64 dx = x - cx, dy = y - cy, dz = z - cz;
    const f64 r = std::sqrt(dx * dx + dy * dy + dz * dz);
    const f64 band = (r - front_radius) / width;
    f64 v = 0.0;
    if (std::fabs(band) < 2.0) {
      v = std::exp(-band * band) * std::cos(wavenumber * r) /
          (1.0 + 60.0 * r * r);
    }
    f.values[i] = static_cast<f32>(v);
  });
}

// HACC: 1-D particle data. Positions are a jittered cluster walk and
// velocities heavy-tailed correlated noise — low smoothness, hence the
// flat, low ratios of Table 5 (6.8 -> 2.8) that barely improve with a
// looser bound.
void gen_hacc(Field& f, u32 field_index, Rng& rng) {
  const bool is_position = field_index < 3;
  if (is_position) {
    // Particles laid out cluster by cluster: most positions sit near their
    // cluster center (small quantized magnitudes), with the box size set
    // by the farthest clusters.
    f64 cluster_center = rng.uniform(0.0, 64.0);
    std::size_t until_jump = 64 + rng.next_below(192);
    for (std::size_t i = 0; i < f.values.size(); ++i) {
      if (until_jump-- == 0) {
        // Cluster centers concentrate near the origin corner of the box
        // (squared uniform), with rare far clusters defining the range.
        const f64 u = rng.next_double();
        cluster_center = 256.0 * u * u * u;
        until_jump = 64 + rng.next_below(192);
      }
      f.values[i] =
          static_cast<f32>(cluster_center + 1.5 * rng.next_gaussian());
    }
  } else {
    // Velocities: heavy-tailed AR(1) noise. Typical magnitudes are far
    // below the range-defining tail, keeping quantized values modest.
    f64 v = 0.0;
    for (std::size_t i = 0; i < f.values.size(); ++i) {
      const f64 g = rng.next_gaussian();
      v = 0.85 * v + 120.0 * g * g * g;  // cubed: heavy tails
      f.values[i] = static_cast<f32>(v);
    }
  }
}

const char* cesm_names[] = {"CLDHGH", "CLDLOW", "FLDSC", "FREQSH",
                            "PHIS",   "PSL",    "TS",    "UBOT"};
const char* hurricane_names[] = {"Uf", "Vf", "Wf", "Pf", "TCf", "QVAPORf"};
const char* qmcpack_names[] = {"einspline_288", "einspline_115"};
const char* nyx_names[] = {"baryon_density", "velocity_x", "velocity_y",
                           "velocity_z", "temperature"};
const char* rtm_names[] = {"snapshot_0800", "snapshot_1600", "snapshot_2400",
                           "snapshot_3200"};
const char* hacc_names[] = {"x", "y", "z", "vx", "vy", "vz"};

}  // namespace

const std::vector<DatasetSpec>& dataset_catalog() {
  static const std::vector<DatasetSpec> catalog = {
      {DatasetId::kCesmAtm, "CESM-ATM", "Climate Simulation", 79,
       {1800, 3600}, 8, {320, 640}},
      {DatasetId::kHurricane, "Hurricane", "Weather Simulation", 13,
       {100, 500, 500}, 6, {40, 160, 160}},
      {DatasetId::kQmcpack, "QMCPack", "Quantum Monte Carlo", 2,
       {33120, 69, 69}, 2, {144, 69, 69}},
      {DatasetId::kNyx, "NYX", "Cosmic Simulation", 6, {512, 512, 512}, 5,
       {96, 96, 96}},
      {DatasetId::kRtm, "RTM", "Seismic Imaging", 36, {235, 449, 449}, 4,
       {64, 112, 112}},
      {DatasetId::kHacc, "HACC", "Cosmic Simulation", 6, {280953867}, 6,
       {1 << 21}},
  };
  return catalog;
}

const DatasetSpec& dataset_spec(DatasetId id) {
  for (const auto& spec : dataset_catalog()) {
    if (spec.id == id) return spec;
  }
  CERESZ_FAIL("dataset_spec: unknown dataset id");
}

Field generate_field(DatasetId id, u32 field_index, u64 seed, f64 scale) {
  const DatasetSpec& spec = dataset_spec(id);
  CERESZ_CHECK(field_index < spec.fields_generated,
               "generate_field: field index out of range");
  CERESZ_CHECK(scale > 0.0, "generate_field: scale must be positive");

  Field f;
  f.dataset = spec.name;
  f.dims = scale == 1.0 ? spec.dims_generated
                        : scaled_dims(spec.dims_generated, scale);
  f.values.resize(f.dim_product());

  Rng rng(field_seed(seed, id, field_index));
  switch (id) {
    case DatasetId::kCesmAtm:
      f.name = cesm_names[field_index % 8];
      gen_cesm(f, field_index, rng);
      break;
    case DatasetId::kHurricane:
      f.name = hurricane_names[field_index % 6];
      gen_hurricane(f, field_index, rng);
      break;
    case DatasetId::kQmcpack:
      f.name = qmcpack_names[field_index % 2];
      gen_qmcpack(f, field_index, rng);
      break;
    case DatasetId::kNyx:
      f.name = nyx_names[field_index % 5];
      gen_nyx(f, field_index, rng);
      break;
    case DatasetId::kRtm:
      f.name = rtm_names[field_index % 4];
      gen_rtm(f, field_index, rng);
      break;
    case DatasetId::kHacc:
      f.name = hacc_names[field_index % 6];
      gen_hacc(f, field_index, rng);
      break;
  }
  return f;
}

std::vector<Field> generate_dataset(DatasetId id, u64 seed, f64 scale) {
  const DatasetSpec& spec = dataset_spec(id);
  std::vector<Field> fields;
  fields.reserve(spec.fields_generated);
  for (u32 i = 0; i < spec.fields_generated; ++i) {
    fields.push_back(generate_field(id, i, seed, scale));
  }
  return fields;
}

}  // namespace ceresz::data
