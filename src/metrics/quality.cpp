#include "metrics/quality.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.h"
#include "common/stats.h"

namespace ceresz::metrics {

namespace {

// Mean/variance/covariance of one window pair.
struct WindowMoments {
  f64 mean_a = 0, mean_b = 0, var_a = 0, var_b = 0, cov = 0;
};

WindowMoments window_moments(std::span<const f32> a, std::span<const f32> b) {
  WindowMoments m;
  const f64 n = static_cast<f64>(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    m.mean_a += a[i];
    m.mean_b += b[i];
  }
  m.mean_a /= n;
  m.mean_b /= n;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const f64 da = a[i] - m.mean_a;
    const f64 db = b[i] - m.mean_b;
    m.var_a += da * da;
    m.var_b += db * db;
    m.cov += da * db;
  }
  m.var_a /= n;
  m.var_b /= n;
  m.cov /= n;
  return m;
}

f64 ssim_from_moments(const WindowMoments& m, f64 c1, f64 c2) {
  const f64 numerator =
      (2.0 * m.mean_a * m.mean_b + c1) * (2.0 * m.cov + c2);
  const f64 denominator = (m.mean_a * m.mean_a + m.mean_b * m.mean_b + c1) *
                          (m.var_a + m.var_b + c2);
  return denominator == 0.0 ? 1.0 : numerator / denominator;
}

}  // namespace

f64 rmse(std::span<const f32> original, std::span<const f32> reconstructed) {
  CERESZ_CHECK(original.size() == reconstructed.size(), "rmse: size mismatch");
  if (original.empty()) return 0.0;
  f64 sum = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const f64 d = static_cast<f64>(original[i]) - reconstructed[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<f64>(original.size()));
}

f64 psnr(std::span<const f32> original, std::span<const f32> reconstructed) {
  if (original.empty()) return 0.0;
  const f64 err = rmse(original, reconstructed);
  if (err == 0.0) return std::numeric_limits<f64>::infinity();
  const ArraySummary s = summarize(original);
  const f64 range = s.range();
  if (range == 0.0) return std::numeric_limits<f64>::infinity();
  return 20.0 * std::log10(range / err);
}

f64 ssim_2d(std::span<const f32> original, std::span<const f32> reconstructed,
            std::size_t width, std::size_t height) {
  CERESZ_CHECK(original.size() == reconstructed.size(),
               "ssim_2d: size mismatch");
  CERESZ_CHECK(original.size() == width * height,
               "ssim_2d: dims do not match data size");
  constexpr std::size_t kWin = 8;
  CERESZ_CHECK(width >= kWin && height >= kWin,
               "ssim_2d: field smaller than the SSIM window");

  const f64 range = summarize(original).range();
  const f64 c1 = (0.01 * range) * (0.01 * range);
  const f64 c2 = (0.03 * range) * (0.03 * range);

  f64 total = 0.0;
  std::size_t windows = 0;
  std::vector<f32> wa(kWin * kWin), wb(kWin * kWin);
  for (std::size_t y = 0; y + kWin <= height; y += kWin) {
    for (std::size_t x = 0; x + kWin <= width; x += kWin) {
      for (std::size_t r = 0; r < kWin; ++r) {
        for (std::size_t c = 0; c < kWin; ++c) {
          wa[r * kWin + c] = original[(y + r) * width + (x + c)];
          wb[r * kWin + c] = reconstructed[(y + r) * width + (x + c)];
        }
      }
      total += ssim_from_moments(window_moments(wa, wb), c1, c2);
      ++windows;
    }
  }
  return windows == 0 ? 1.0 : total / static_cast<f64>(windows);
}

f64 ssim_1d(std::span<const f32> original, std::span<const f32> reconstructed,
            std::size_t window) {
  CERESZ_CHECK(original.size() == reconstructed.size(),
               "ssim_1d: size mismatch");
  CERESZ_CHECK(window >= 2, "ssim_1d: window must hold at least 2 elements");
  if (original.size() < window) window = original.size();
  if (original.empty()) return 1.0;

  const f64 range = summarize(original).range();
  const f64 c1 = (0.01 * range) * (0.01 * range);
  const f64 c2 = (0.03 * range) * (0.03 * range);

  f64 total = 0.0;
  std::size_t windows = 0;
  for (std::size_t i = 0; i + window <= original.size(); i += window) {
    total += ssim_from_moments(
        window_moments(original.subspan(i, window),
                       reconstructed.subspan(i, window)),
        c1, c2);
    ++windows;
  }
  return windows == 0 ? 1.0 : total / static_cast<f64>(windows);
}

f64 throughput_gbps(std::size_t bytes, f64 seconds) {
  CERESZ_CHECK(seconds > 0.0, "throughput_gbps: non-positive time");
  return static_cast<f64>(bytes) / seconds / 1.0e9;
}

}  // namespace ceresz::metrics
