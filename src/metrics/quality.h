// Data-quality metrics for lossy compression: PSNR, SSIM, and throughput
// helpers (Section 5.1.4 of the paper).
#pragma once

#include <span>

#include "common/types.h"

namespace ceresz::metrics {

/// Peak signal-to-noise ratio in dB:
///   PSNR = 20·log10(range(original) / RMSE).
/// Returns +inf when the reconstruction is exact, and 0 for empty input.
f64 psnr(std::span<const f32> original, std::span<const f32> reconstructed);

/// Structural similarity over a 2-D field, using the standard constants
/// (K1 = 0.01, K2 = 0.03) and non-overlapping 8x8 mean/variance windows,
/// with the dynamic range taken from the original field. Values in [−1, 1];
/// 1 means structurally identical.
f64 ssim_2d(std::span<const f32> original, std::span<const f32> reconstructed,
            std::size_t width, std::size_t height);

/// SSIM over arbitrary-dimensional data flattened to 1-D, using windows of
/// `window` consecutive elements — the form used for 3-D fields where we
/// evaluate a representative slice is ssim_2d; this covers 1-D sets (HACC).
f64 ssim_1d(std::span<const f32> original, std::span<const f32> reconstructed,
            std::size_t window = 256);

/// Root-mean-square error.
f64 rmse(std::span<const f32> original, std::span<const f32> reconstructed);

/// Throughput in GB/s given original bytes and elapsed seconds.
f64 throughput_gbps(std::size_t bytes, f64 seconds);

}  // namespace ceresz::metrics
