#include "io/file_io.h"

#include <cstring>
#include <fstream>

#include "common/error.h"

namespace ceresz::io {

void write_bytes(const std::filesystem::path& path,
                 std::span<const u8> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CERESZ_CHECK(out.good(), "write_bytes: cannot open " + path.string());
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  CERESZ_CHECK(out.good(), "write_bytes: write failed for " + path.string());
}

std::vector<u8> read_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  CERESZ_CHECK(in.good(), "read_bytes: cannot open " + path.string());
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<u8> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  CERESZ_CHECK(in.good(), "read_bytes: read failed for " + path.string());
  return bytes;
}

data::Field read_raw_f32(const std::filesystem::path& path,
                         std::vector<std::size_t> dims, std::string dataset,
                         std::string name) {
  data::Field field;
  field.dataset = std::move(dataset);
  field.name = name.empty() ? path.filename().string() : std::move(name);
  field.dims = std::move(dims);

  const std::vector<u8> bytes = read_bytes(path);
  CERESZ_CHECK(bytes.size() % sizeof(f32) == 0,
               "read_raw_f32: file size is not a multiple of 4");
  field.values.resize(bytes.size() / sizeof(f32));
  std::memcpy(field.values.data(), bytes.data(), bytes.size());
  CERESZ_CHECK(field.dim_product() == field.values.size(),
               "read_raw_f32: dims do not match file size");
  return field;
}

void write_raw_f32(const std::filesystem::path& path,
                   const data::Field& field) {
  std::vector<u8> bytes(field.values.size() * sizeof(f32));
  std::memcpy(bytes.data(), field.values.data(), bytes.size());
  write_bytes(path, bytes);
}

}  // namespace ceresz::io
