// Chunked container framing for the parallel engine: a self-describing
// format holding independently compressed chunks with a chunk table
// (offsets, element counts, per-chunk CRC32C) so readers can decompress
// chunks in parallel, access chunks randomly, and localize corruption to
// a single chunk.
//
// Layout (all integers little-endian):
//
//   header (48 bytes)
//     0  magic "CSZC"
//     4  u8  version (= 1)
//     5  u8  codec header_bytes (per-block header width of the payload)
//     6  u16 block_size
//     8  u32 flags (reserved, 0)
//     12 u32 chunk_count
//     16 u64 element_count
//     24 u64 chunk_elems       (elements per chunk; last chunk may be short)
//     32 u64 eps_abs bits      (resolved absolute bound, f64 bit pattern)
//     40 u32 reserved (0)
//     44 u32 CRC32C of bytes [0, 44)
//
//   chunk table (32 bytes per entry, chunk_count entries)
//     u64 offset             (payload start, from byte 0 of the stream)
//     u64 compressed_bytes
//     u64 element_count
//     u32 CRC32C of the payload bytes
//     u32 reserved (0)
//   followed by u32 CRC32C of the whole table
//
//   payloads, in chunk order. Each payload is a run of CereSZ block
//   records exactly as core::StreamCodec emits them — chunk_elems is a
//   multiple of the block size, so the concatenated payloads are
//   bit-identical to the body of the equivalent single-stream container.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"

namespace ceresz::io {

struct ChunkEntry {
  u64 offset = 0;            ///< payload start from byte 0 of the stream
  u64 compressed_bytes = 0;
  u64 element_count = 0;
  u32 crc32c = 0;            ///< CRC32C of the payload bytes
};

struct ChunkedHeader {
  u32 version = 1;
  u32 codec_header_bytes = 4;
  u32 block_size = 32;
  u32 chunk_count = 0;
  u64 element_count = 0;
  u64 chunk_elems = 0;
  f64 eps_abs = 0.0;

  static constexpr std::size_t kHeaderBytes = 48;
  static constexpr std::size_t kEntryBytes = 32;

  /// Bytes of the chunk table including its trailing CRC.
  std::size_t table_bytes() const {
    return static_cast<std::size_t>(chunk_count) * kEntryBytes + 4;
  }
  /// Offset of the first payload byte.
  std::size_t payload_start() const { return kHeaderBytes + table_bytes(); }
};

/// True if `stream` starts with the chunked-container magic "CSZC"
/// (cheap sniff; does not validate anything else).
bool is_chunked_stream(std::span<const u8> stream);

/// Serialize header + chunk table (with CRCs) into `out`, which must be
/// empty. Entry offsets must already be absolute and in ascending order.
void write_container_prefix(std::vector<u8>& out, const ChunkedHeader& header,
                            std::span<const ChunkEntry> entries);

/// Parsed view of a chunked stream.
struct ParsedContainer {
  ChunkedHeader header;
  std::vector<ChunkEntry> entries;
};

/// Parse and validate header + chunk table: magic, version, header CRC,
/// table CRC, offset monotonicity and bounds, and that per-chunk element
/// counts sum to the header's element count. Throws ceresz::Error on any
/// violation. Payload CRCs are NOT checked here — that is the reader's
/// per-chunk job, so corruption stays localized.
ParsedContainer parse_container(std::span<const u8> stream);

}  // namespace ceresz::io
