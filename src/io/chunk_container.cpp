#include "io/chunk_container.h"

#include <cstring>

#include "common/checksum.h"
#include "common/error.h"

namespace ceresz::io {

namespace {

constexpr char kMagic[4] = {'C', 'S', 'Z', 'C'};

void append_u16(std::vector<u8>& out, u16 v) {
  out.push_back(static_cast<u8>(v & 0xff));
  out.push_back(static_cast<u8>(v >> 8));
}

void append_u32(std::vector<u8>& out, u32 v) {
  for (int b = 0; b < 4; ++b) out.push_back(static_cast<u8>((v >> (8 * b)) & 0xff));
}

void append_u64(std::vector<u8>& out, u64 v) {
  for (int b = 0; b < 8; ++b) out.push_back(static_cast<u8>((v >> (8 * b)) & 0xff));
}

u16 read_u16(const u8* p) {
  return static_cast<u16>(p[0] | (static_cast<u16>(p[1]) << 8));
}

u32 read_u32(const u8* p) {
  u32 v = 0;
  for (int b = 0; b < 4; ++b) v |= static_cast<u32>(p[b]) << (8 * b);
  return v;
}

u64 read_u64(const u8* p) {
  u64 v = 0;
  for (int b = 0; b < 8; ++b) v |= static_cast<u64>(p[b]) << (8 * b);
  return v;
}

}  // namespace

bool is_chunked_stream(std::span<const u8> stream) {
  return stream.size() >= 4 && std::memcmp(stream.data(), kMagic, 4) == 0;
}

void write_container_prefix(std::vector<u8>& out, const ChunkedHeader& header,
                            std::span<const ChunkEntry> entries) {
  CERESZ_CHECK(out.empty(), "chunk container: output buffer must be empty");
  CERESZ_CHECK(entries.size() == header.chunk_count,
               "chunk container: entry count does not match header");
  CERESZ_CHECK(header.version <= 0xff && header.codec_header_bytes > 0 &&
                   header.codec_header_bytes <= 0xff,
               "chunk container: codec header width does not fit the u8 "
               "header field");
  CERESZ_CHECK(header.block_size > 0 && header.block_size <= 0xffff,
               "chunk container: block size does not fit the u16 header "
               "field");

  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(static_cast<u8>(header.version));
  out.push_back(static_cast<u8>(header.codec_header_bytes));
  append_u16(out, static_cast<u16>(header.block_size));
  append_u32(out, 0);  // flags
  append_u32(out, header.chunk_count);
  append_u64(out, header.element_count);
  append_u64(out, header.chunk_elems);
  u64 eps_bits;
  static_assert(sizeof(eps_bits) == sizeof(header.eps_abs));
  std::memcpy(&eps_bits, &header.eps_abs, sizeof(eps_bits));
  append_u64(out, eps_bits);
  append_u32(out, 0);  // reserved
  append_u32(out, crc32c(std::span<const u8>(out.data(), out.size())));
  CERESZ_CHECK(out.size() == ChunkedHeader::kHeaderBytes,
               "chunk container: header size drift");

  const std::size_t table_start = out.size();
  for (const ChunkEntry& e : entries) {
    append_u64(out, e.offset);
    append_u64(out, e.compressed_bytes);
    append_u64(out, e.element_count);
    append_u32(out, e.crc32c);
    append_u32(out, 0);  // reserved
  }
  append_u32(out, crc32c(std::span<const u8>(out.data() + table_start,
                                             out.size() - table_start)));
  CERESZ_CHECK(out.size() == header.payload_start(),
               "chunk container: table size drift");
}

ParsedContainer parse_container(std::span<const u8> stream) {
  CERESZ_CHECK(stream.size() >= ChunkedHeader::kHeaderBytes,
               "chunk container: stream shorter than header");
  CERESZ_CHECK(is_chunked_stream(stream),
               "chunk container: bad magic — not a CereSZ chunked stream");

  const u32 stored_header_crc = read_u32(stream.data() + 44);
  CERESZ_CHECK(crc32c(stream.subspan(0, 44)) == stored_header_crc,
               "chunk container: header CRC mismatch (corrupt header)");

  ParsedContainer parsed;
  ChunkedHeader& h = parsed.header;
  h.version = stream[4];
  h.codec_header_bytes = stream[5];
  h.block_size = read_u16(stream.data() + 6);
  h.chunk_count = read_u32(stream.data() + 12);
  h.element_count = read_u64(stream.data() + 16);
  h.chunk_elems = read_u64(stream.data() + 24);
  const u64 eps_bits = read_u64(stream.data() + 32);
  std::memcpy(&h.eps_abs, &eps_bits, sizeof(h.eps_abs));

  CERESZ_CHECK(h.version == 1, "chunk container: unsupported version");
  CERESZ_CHECK(h.block_size > 0, "chunk container: corrupt header (block size)");
  CERESZ_CHECK(h.codec_header_bytes > 0,
               "chunk container: corrupt header (zero codec header width)");
  CERESZ_CHECK(h.eps_abs > 0.0 || h.element_count == 0,
               "chunk container: corrupt header (non-positive error bound)");
  CERESZ_CHECK(h.chunk_elems > 0 || h.element_count == 0,
               "chunk container: corrupt header (zero chunk size)");
  // Structural consistency: the chunk count must be exactly the one implied
  // by element_count / chunk_elems. Computed without ceil-style addition so
  // hostile 2^64-scale values cannot wrap.
  const u64 expected_chunks =
      h.element_count == 0
          ? 0
          : h.element_count / h.chunk_elems +
                (h.element_count % h.chunk_elems != 0 ? 1 : 0);
  CERESZ_CHECK(h.chunk_count == expected_chunks,
               "chunk container: chunk count does not match element count "
               "and chunk size");
  // Bound the table size by the stream before allocating for it.
  CERESZ_CHECK(stream.size() >= ChunkedHeader::kHeaderBytes + h.table_bytes(),
               "chunk container: truncated chunk table");

  const u8* table = stream.data() + ChunkedHeader::kHeaderBytes;
  const std::size_t entry_bytes =
      static_cast<std::size_t>(h.chunk_count) * ChunkedHeader::kEntryBytes;
  const u32 stored_table_crc = read_u32(table + entry_bytes);
  CERESZ_CHECK(
      crc32c(std::span<const u8>(table, entry_bytes)) == stored_table_crc,
      "chunk container: chunk table CRC mismatch (corrupt table)");

  parsed.entries.resize(h.chunk_count);
  u64 expected_offset = h.payload_start();
  u64 total_elems = 0;
  for (u32 i = 0; i < h.chunk_count; ++i) {
    const u8* p = table + static_cast<std::size_t>(i) * ChunkedHeader::kEntryBytes;
    ChunkEntry& e = parsed.entries[i];
    e.offset = read_u64(p);
    e.compressed_bytes = read_u64(p + 8);
    e.element_count = read_u64(p + 16);
    e.crc32c = read_u32(p + 24);
    CERESZ_CHECK(e.offset == expected_offset,
                 "chunk container: chunk offsets are not contiguous");
    // expected_offset <= stream.size() holds inductively, so the subtraction
    // cannot wrap — unlike `offset + compressed_bytes`, which a hostile
    // compressed_bytes near 2^64 would overflow past the bound.
    CERESZ_CHECK(e.compressed_bytes <= stream.size() - e.offset,
                 "chunk container: chunk payload extends past the stream");
    CERESZ_CHECK(e.element_count > 0 && e.element_count <= h.chunk_elems,
                 "chunk container: chunk element count out of range");
    // Overflow-checked accumulation: each entry may claim at most the
    // elements still unaccounted for, so the sum can never wrap around to
    // h.element_count and smuggle oversized chunks past the total check.
    CERESZ_CHECK(e.element_count <= h.element_count - total_elems,
                 "chunk container: chunk element counts exceed the header's "
                 "element count");
    CERESZ_CHECK(i + 1 == h.chunk_count || e.element_count == h.chunk_elems,
                 "chunk container: only the last chunk may be short");
    // Anti-bomb bound: every block record is at least codec_header_bytes
    // wide, so a chunk of element_count elements needs at least
    // ceil(element_count / block_size) * codec_header_bytes payload bytes.
    // This ties the decoded size to the actual stream size before the
    // reader allocates anything. Division form avoids overflow.
    const u64 min_blocks = e.element_count / h.block_size +
                           (e.element_count % h.block_size != 0 ? 1 : 0);
    CERESZ_CHECK(min_blocks <= e.compressed_bytes / h.codec_header_bytes,
                 "chunk container: chunk payload too small for its element "
                 "count");
    expected_offset += e.compressed_bytes;
    total_elems += e.element_count;
  }
  CERESZ_CHECK(total_elems == h.element_count,
               "chunk container: chunk element counts do not sum to the "
               "header's element count");
  CERESZ_CHECK(expected_offset == stream.size(),
               "chunk container: trailing bytes after the last chunk");
  return parsed;
}

}  // namespace ceresz::io
