#include "io/archive.h"

#include <cstring>
#include <numeric>

#include "common/error.h"
#include "io/file_io.h"

namespace ceresz::io {

namespace {

constexpr char kMagic[4] = {'C', 'S', 'Z', 'A'};
constexpr u32 kVersion = 1;

void append_u32(std::vector<u8>& out, u32 v) {
  for (int b = 0; b < 4; ++b) out.push_back(static_cast<u8>((v >> (8 * b)) & 0xff));
}
void append_u64(std::vector<u8>& out, u64 v) {
  for (int b = 0; b < 8; ++b) out.push_back(static_cast<u8>((v >> (8 * b)) & 0xff));
}

class Reader {
 public:
  explicit Reader(std::span<const u8> bytes) : bytes_(bytes) {}

  u32 u32_at() { return static_cast<u32>(u_bytes(4)); }
  u64 u64_at() { return u_bytes(8); }

  std::string string_at() {
    const u64 len = u32_at();
    CERESZ_CHECK(len <= 4096, "Archive: absurd string length");
    need(len);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  std::span<const u8> blob_at() {
    const u64 len = u64_at();
    need(len);
    auto out = bytes_.subspan(pos_, len);
    pos_ += len;
    return out;
  }

  bool done() const { return pos_ == bytes_.size(); }

 private:
  u64 u_bytes(int n) {
    need(n);
    u64 v = 0;
    for (int b = 0; b < n; ++b) v |= static_cast<u64>(bytes_[pos_ + b]) << (8 * b);
    pos_ += n;
    return v;
  }
  void need(u64 n) {
    CERESZ_CHECK(pos_ + n <= bytes_.size(), "Archive: truncated input");
  }

  std::span<const u8> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

f64 ArchiveEntry::compression_ratio() const {
  const std::size_t original = std::accumulate(dims.begin(), dims.end(),
                                               std::size_t{1},
                                               std::multiplies<>()) *
                               sizeof(f32);
  return stream.empty() ? 0.0
                        : static_cast<f64>(original) /
                              static_cast<f64>(stream.size());
}

Archive Archive::compress_fields(const std::vector<data::Field>& fields,
                                 core::ErrorBound bound,
                                 const core::StreamCodec& codec) {
  Archive archive;
  archive.entries_.reserve(fields.size());
  for (const auto& field : fields) {
    ArchiveEntry entry;
    entry.name = field.name;
    entry.dims = field.dims;
    entry.stream = codec.compress(field.view(), bound).stream;
    archive.entries_.push_back(std::move(entry));
  }
  return archive;
}

std::vector<u8> Archive::serialize() const {
  std::vector<u8> out;
  out.insert(out.end(), kMagic, kMagic + 4);
  append_u32(out, kVersion);
  append_u32(out, static_cast<u32>(entries_.size()));
  for (const auto& entry : entries_) {
    append_u32(out, static_cast<u32>(entry.name.size()));
    out.insert(out.end(), entry.name.begin(), entry.name.end());
    append_u32(out, static_cast<u32>(entry.dims.size()));
    for (std::size_t d : entry.dims) append_u64(out, d);
    append_u64(out, entry.stream.size());
    out.insert(out.end(), entry.stream.begin(), entry.stream.end());
  }
  return out;
}

Archive Archive::parse(std::span<const u8> bytes) {
  CERESZ_CHECK(bytes.size() >= 12 && std::memcmp(bytes.data(), kMagic, 4) == 0,
               "Archive: bad magic");
  Reader r(bytes.subspan(4));
  const u32 version = r.u32_at();
  CERESZ_CHECK(version == kVersion, "Archive: unsupported version");
  const u32 count = r.u32_at();
  CERESZ_CHECK(count <= 1u << 20, "Archive: absurd entry count");

  Archive archive;
  archive.entries_.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    ArchiveEntry entry;
    entry.name = r.string_at();
    const u32 ndims = r.u32_at();
    CERESZ_CHECK(ndims >= 1 && ndims <= 8, "Archive: corrupt dims");
    entry.dims.resize(ndims);
    for (u32 d = 0; d < ndims; ++d) entry.dims[d] = r.u64_at();
    const auto blob = r.blob_at();
    entry.stream.assign(blob.begin(), blob.end());
    archive.entries_.push_back(std::move(entry));
  }
  CERESZ_CHECK(r.done(), "Archive: trailing bytes after last entry");
  return archive;
}

void Archive::save(const std::filesystem::path& path) const {
  write_bytes(path, serialize());
}

Archive Archive::load(const std::filesystem::path& path) {
  return parse(read_bytes(path));
}

data::Field Archive::decompress_field(std::size_t index,
                                      const core::StreamCodec& codec) const {
  CERESZ_CHECK(index < entries_.size(), "Archive: entry index out of range");
  const auto& entry = entries_[index];
  data::Field field;
  field.name = entry.name;
  field.dataset = "archive";
  field.dims = entry.dims;
  field.values = codec.decompress(entry.stream);
  CERESZ_CHECK(field.values.size() == field.dim_product(),
               "Archive: decompressed size does not match entry dims");
  return field;
}

std::optional<std::size_t> Archive::find(const std::string& name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return i;
  }
  return std::nullopt;
}

f64 Archive::total_ratio() const {
  std::size_t original = 0;
  std::size_t compressed = 0;
  for (const auto& entry : entries_) {
    original += std::accumulate(entry.dims.begin(), entry.dims.end(),
                                std::size_t{1}, std::multiplies<>()) *
                sizeof(f32);
    compressed += entry.stream.size();
  }
  return compressed == 0 ? 0.0
                         : static_cast<f64>(original) /
                               static_cast<f64>(compressed);
}

}  // namespace ceresz::io
