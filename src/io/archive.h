// Multi-field archive: one file holding every compressed field of a
// dataset, with names and dims — the unit the paper's evaluation operates
// on (each SDRBench dataset is a set of fields, Table 4).
//
// Layout: magic "CSZA", u32 version, u32 field count, then per field a
// self-delimiting entry (name, dims, original element count, compressed
// CereSZ stream). All integers little-endian.
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/stream_codec.h"
#include "data/field.h"

namespace ceresz::io {

/// One compressed field inside an archive.
struct ArchiveEntry {
  std::string name;
  std::vector<std::size_t> dims;
  std::vector<u8> stream;  ///< CereSZ stream (self-describing)

  f64 compression_ratio() const;
};

class Archive {
 public:
  /// Compress `fields` under `bound` with `codec` into an archive.
  static Archive compress_fields(const std::vector<data::Field>& fields,
                                 core::ErrorBound bound,
                                 const core::StreamCodec& codec);

  /// Serialize to bytes / parse from bytes. Parsing validates structure
  /// and throws ceresz::Error on corruption.
  std::vector<u8> serialize() const;
  static Archive parse(std::span<const u8> bytes);

  /// Convenience file round trip.
  void save(const std::filesystem::path& path) const;
  static Archive load(const std::filesystem::path& path);

  /// Decompress one entry back into a Field.
  data::Field decompress_field(std::size_t index,
                               const core::StreamCodec& codec) const;

  /// Entry lookup by name (nullopt if absent).
  std::optional<std::size_t> find(const std::string& name) const;

  const std::vector<ArchiveEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// Aggregate ratio across all entries.
  f64 total_ratio() const;

 private:
  std::vector<ArchiveEntry> entries_;
};

}  // namespace ceresz::io
