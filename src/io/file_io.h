// File I/O for compressed streams and fields: the minimal container layer
// a downstream user needs to persist CereSZ output or feed real SDRBench
// binaries (raw little-endian f32, the SDRBench convention) into the
// library.
#pragma once

#include <filesystem>
#include <span>
#include <vector>

#include "common/types.h"
#include "data/field.h"

namespace ceresz::io {

/// Write raw bytes; throws ceresz::Error on failure.
void write_bytes(const std::filesystem::path& path, std::span<const u8> bytes);

/// Read a whole file; throws ceresz::Error on failure.
std::vector<u8> read_bytes(const std::filesystem::path& path);

/// Read an SDRBench-style raw field: little-endian f32, row-major, with
/// dims supplied by the caller (SDRBench ships them out-of-band).
data::Field read_raw_f32(const std::filesystem::path& path,
                         std::vector<std::size_t> dims,
                         std::string dataset = "file",
                         std::string name = "");

/// Write a field as raw little-endian f32.
void write_raw_f32(const std::filesystem::path& path, const data::Field& field);

}  // namespace ceresz::io
