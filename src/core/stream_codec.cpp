#include "core/stream_codec.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "common/stats.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ceresz::core {

namespace {

constexpr char kMagic[4] = {'C', 'S', 'Z', '1'};

void append_u16(std::vector<u8>& out, u16 v) {
  out.push_back(static_cast<u8>(v & 0xff));
  out.push_back(static_cast<u8>(v >> 8));
}

void append_u64(std::vector<u8>& out, u64 v) {
  for (int b = 0; b < 8; ++b) out.push_back(static_cast<u8>((v >> (8 * b)) & 0xff));
}

u16 read_u16(const u8* p) {
  return static_cast<u16>(p[0] | (static_cast<u16>(p[1]) << 8));
}

u64 read_u64(const u8* p) {
  u64 v = 0;
  for (int b = 0; b < 8; ++b) v |= static_cast<u64>(p[b]) << (8 * b);
  return v;
}

}  // namespace

StreamCodec::StreamCodec(CodecConfig config) : block_codec_(config) {}

CompressionResult StreamCodec::compress(std::span<const f32> data,
                                        ErrorBound bound) const {
  const CodecConfig& cfg = block_codec_.config();
  const u32 L = cfg.block_size;

  const ArraySummary summary = summarize(data);
  const f64 eps = bound.resolve(summary.range());

  CompressionResult result;
  result.eps_abs = eps;
  result.element_count = data.size();

  // Container header.
  auto& out = result.stream;
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(static_cast<u8>(cfg.header_bytes));
  out.push_back(cfg.zero_block_shortcut ? u8{1} : u8{0});
  append_u16(out, static_cast<u16>(L));
  append_u64(out, data.size());
  u64 eps_bits;
  static_assert(sizeof(eps_bits) == sizeof(eps));
  std::memcpy(&eps_bits, &eps, sizeof(eps));
  append_u64(out, eps_bits);
  CERESZ_CHECK(out.size() == header_size(), "StreamCodec: header size drift");

  const u64 n_blocks = (data.size() + L - 1) / L;
  result.stats.total_blocks = n_blocks;
  if (n_blocks == 0) return result;

  // Compress blocks in parallel chunks; each chunk encodes into its own
  // buffer, spliced in order afterwards so the stream layout is identical
  // regardless of thread count.
  int n_threads = 1;
#ifdef _OPENMP
  n_threads = omp_get_max_threads();
#endif
  const u64 chunk_blocks =
      std::max<u64>(1, (n_blocks + n_threads - 1) / n_threads);
  const u64 n_chunks = (n_blocks + chunk_blocks - 1) / chunk_blocks;

  std::vector<std::vector<u8>> chunk_bytes(n_chunks);
  std::vector<StreamStats> chunk_stats(n_chunks);
  std::vector<f64> chunk_fl_sum(n_chunks, 0.0);

  // Exceptions may not escape an OpenMP region; capture the first one and
  // rethrow after the join.
  std::exception_ptr first_error;

#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (i64 chunk = 0; chunk < static_cast<i64>(n_chunks); ++chunk) {
    try {
      const u64 first = static_cast<u64>(chunk) * chunk_blocks;
      const u64 last = std::min(first + chunk_blocks, n_blocks);
      auto& bytes = chunk_bytes[chunk];
      auto& stats = chunk_stats[chunk];
      bytes.reserve((last - first) * block_codec_.max_compressed_size());
      std::vector<f32> padded(L);
      for (u64 b = first; b < last; ++b) {
        const u64 begin = b * L;
        const u64 count = std::min<u64>(L, data.size() - begin);
        std::span<const f32> block;
        if (count == L) {
          block = data.subspan(begin, L);
        } else {
          std::fill(padded.begin(), padded.end(), 0.0f);
          std::copy_n(data.data() + begin, count, padded.begin());
          block = padded;
        }
        const BlockInfo info = block_codec_.compress(block, eps, bytes);
        ++stats.total_blocks;
        if (info.zero_block) {
          ++stats.zero_blocks;
          ++stats.fl_histogram[0];
        } else if (info.constant_block) {
          ++stats.constant_blocks;
        } else {
          chunk_fl_sum[chunk] += info.fixed_length;
          stats.max_fixed_length =
              std::max(stats.max_fixed_length, info.fixed_length);
          ++stats.fl_histogram[info.fixed_length];
        }
      }
    } catch (...) {
#ifdef _OPENMP
#pragma omp critical
#endif
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  f64 fl_sum = 0.0;
  u64 nonzero = 0;
  for (u64 chunk = 0; chunk < n_chunks; ++chunk) {
    out.insert(out.end(), chunk_bytes[chunk].begin(), chunk_bytes[chunk].end());
    const auto& cs = chunk_stats[chunk];
    result.stats.zero_blocks += cs.zero_blocks;
    result.stats.constant_blocks += cs.constant_blocks;
    result.stats.max_fixed_length =
        std::max(result.stats.max_fixed_length, cs.max_fixed_length);
    for (std::size_t i = 0; i < cs.fl_histogram.size(); ++i) {
      result.stats.fl_histogram[i] += cs.fl_histogram[i];
    }
    fl_sum += chunk_fl_sum[chunk];
    nonzero += cs.total_blocks - cs.zero_blocks - cs.constant_blocks;
  }
  result.stats.mean_fixed_length =
      nonzero > 0 ? fl_sum / static_cast<f64>(nonzero) : 0.0;
  return result;
}

StreamCodec::StreamHeader StreamCodec::parse_header(
    std::span<const u8> stream) const {
  CERESZ_CHECK(stream.size() >= header_size(),
               "StreamCodec: stream shorter than container header");
  CERESZ_CHECK(std::memcmp(stream.data(), kMagic, 4) == 0,
               "StreamCodec: bad magic — not a CereSZ stream");
  StreamHeader h;
  h.header_bytes = stream[4];
  h.block_size = read_u16(stream.data() + 6);
  h.element_count = read_u64(stream.data() + 8);
  const u64 eps_bits = read_u64(stream.data() + 16);
  std::memcpy(&h.eps_abs, &eps_bits, sizeof(h.eps_abs));
  const CodecConfig& cfg = block_codec_.config();
  CERESZ_CHECK(h.header_bytes == cfg.header_bytes,
               "StreamCodec: stream was written with a different block "
               "header width than this codec's configuration");
  CERESZ_CHECK(h.block_size == cfg.block_size,
               "StreamCodec: stream was written with a different block size "
               "than this codec's configuration");
  CERESZ_CHECK(h.eps_abs > 0.0 || h.element_count == 0,
               "StreamCodec: corrupt header (non-positive error bound)");
  return h;
}

std::vector<f32> StreamCodec::decompress(std::span<const u8> stream) const {
  const StreamHeader h = parse_header(stream);
  const u32 L = block_codec_.config().block_size;
  const u64 n_blocks = (h.element_count + L - 1) / L;

  // Sanity-check the claimed element count against the stream size before
  // allocating anything: every block record is at least header_bytes, so a
  // corrupt count cannot make us reserve unbounded memory.
  const u64 max_possible_blocks =
      (stream.size() - header_size()) / block_codec_.config().header_bytes;
  CERESZ_CHECK(n_blocks <= max_possible_blocks,
               "StreamCodec: corrupt header (element count exceeds what the "
               "stream could hold)");

  // Index pass: block records have variable size, so walk the headers once
  // to find every record offset, then decode in parallel.
  std::vector<u64> offsets(n_blocks + 1);
  u64 pos = header_size();
  for (u64 b = 0; b < n_blocks; ++b) {
    offsets[b] = pos;
    pos += block_codec_.record_size(stream.subspan(pos));
    CERESZ_CHECK(pos <= stream.size(), "StreamCodec: truncated stream");
  }
  offsets[n_blocks] = pos;

  std::vector<f32> output(n_blocks * L);
  std::exception_ptr first_error;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (i64 b = 0; b < static_cast<i64>(n_blocks); ++b) {
    try {
      std::span<f32> dst(output.data() + static_cast<u64>(b) * L, L);
      block_codec_.decompress(
          stream.subspan(offsets[b], offsets[b + 1] - offsets[b]), h.eps_abs,
          dst);
    } catch (...) {
#ifdef _OPENMP
#pragma omp critical
#endif
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  output.resize(h.element_count);
  return output;
}

}  // namespace ceresz::core
