// Configuration types of the CereSZ codec.
#pragma once

#include "common/error.h"
#include "common/types.h"

namespace ceresz::core {

/// Error-bound specification.
///
/// The paper evaluates with value-range-based relative (REL) bounds: a REL
/// bound λ on a field with value range r means every reconstructed element
/// differs from the original by at most λ·r. Absolute bounds are supported
/// directly.
struct ErrorBound {
  enum class Mode : u8 {
    kAbsolute,           ///< value is ε itself
    kValueRangeRelative  ///< value is λ; ε = λ · (max - min of the field)
  };

  Mode mode = Mode::kValueRangeRelative;
  f64 value = 1e-3;

  static ErrorBound absolute(f64 eps) {
    return ErrorBound{Mode::kAbsolute, eps};
  }
  static ErrorBound relative(f64 lambda) {
    return ErrorBound{Mode::kValueRangeRelative, lambda};
  }

  /// Resolve to an absolute ε given the field's value range.
  f64 resolve(f64 value_range) const {
    CERESZ_CHECK(value > 0.0, "ErrorBound: bound must be positive");
    if (mode == Mode::kAbsolute) return value;
    // A constant field has zero range; any positive ε preserves it exactly.
    return value_range > 0.0 ? value * value_range : value;
  }
};

/// Static configuration of the block codec.
struct CodecConfig {
  /// Elements per block. The paper uses 32 (highest ratio among the options
  /// considered, and compatible with the 16/32-bit fabric transfer units).
  /// Must be a positive multiple of 8 so sign bits pack into whole bytes.
  u32 block_size = 32;

  /// Bytes used to store each block's fixed-length header. CereSZ uses 4
  /// (32-bit fabric messages); SZp/cuSZp use 1. Must be 1, 2, or 4.
  u32 header_bytes = 4;

  /// Store all-zero quantized blocks as a bare header (fixed length 0),
  /// skipping sign extraction and bit-shuffle entirely (Section 5.2).
  bool zero_block_shortcut = true;

  /// Extension (cuSZx-inspired): store a block whose quantized values are
  /// all equal (but non-zero) as a header marker plus the single value —
  /// 8 bytes instead of header + signs + fl planes. Off by default: the
  /// paper's CereSZ does not include it, and the WSE mapping currently
  /// supports only the paper's record format.
  bool constant_block_shortcut = false;

  void validate() const {
    CERESZ_CHECK(block_size >= 8 && block_size % 8 == 0,
                 "CodecConfig: block_size must be a positive multiple of 8");
    CERESZ_CHECK(header_bytes == 1 || header_bytes == 2 || header_bytes == 4,
                 "CodecConfig: header_bytes must be 1, 2, or 4");
  }
};

}  // namespace ceresz::core
