// Per-block compression/decompression: the complete three-stage CereSZ
// kernel on one block of L floats. This is exactly the computation that a
// pipeline (of whatever length) performs on one PE group; the stream codec
// and the WSE mapping both delegate to it, so the bytes coming out of the
// simulated wafer are bit-identical to the host codec's.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "core/config.h"

namespace ceresz::core {

/// Outcome of compressing one block.
struct BlockInfo {
  u32 fixed_length = 0;   ///< effective bits of the max |residual| (0 = zero block)
  bool zero_block = false;
  bool constant_block = false;  ///< constant-block shortcut taken (extension)
  u32 compressed_bytes = 0;
};

class BlockCodec {
 public:
  /// Header value marking a constant block (extension); valid fixed
  /// lengths are 0..32, so 33 is free on the wire.
  static constexpr u32 kConstantMarker = 33;

  explicit BlockCodec(CodecConfig config);

  const CodecConfig& config() const { return config_; }

  /// Compressed size of a block with fixed length `fl` (0 for zero blocks).
  std::size_t compressed_size(u32 fl) const;

  /// Upper bound on any block's compressed size (fl = 32).
  std::size_t max_compressed_size() const { return compressed_size(32); }

  /// Compress `input` (exactly block_size floats) with absolute bound
  /// `eps`; append the encoded bytes to `out`.
  BlockInfo compress(std::span<const f32> input, f64 eps,
                     std::vector<u8>& out) const;

  /// Decode one block starting at `in`; write block_size floats. Returns
  /// the number of input bytes consumed. Throws on a truncated or corrupt
  /// record.
  std::size_t decompress(std::span<const u8> in, f64 eps,
                         std::span<f32> output) const;

  /// Parse only the header at `in` and return the full record size —
  /// used to index a stream for parallel decoding. Throws if truncated.
  std::size_t record_size(std::span<const u8> in) const;

 private:
  u32 read_header(std::span<const u8> in) const;
  void write_header(u32 fl, std::vector<u8>& out) const;

  CodecConfig config_;
};

}  // namespace ceresz::core
