// Extension: the tiled 2-D CereSZ codec — identical pipeline to the 1-D
// StreamCodec except that stage 2 is the tile-local 2-D Lorenzo transform
// of lorenzo2d.h. Each tile is one block (tile_w * tile_h elements), so
// the WSE mapping properties (block independence, fixed-length records)
// carry over unchanged.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "core/config.h"
#include "core/stream_codec.h"

namespace ceresz::core {

struct TiledCodecConfig {
  u32 tile_w = 8;
  u32 tile_h = 4;  ///< 8x4 = 32 elements, matching the 1-D block size
  u32 header_bytes = 4;
  bool zero_block_shortcut = true;

  u32 block_size() const { return tile_w * tile_h; }

  void validate() const;
};

class Tiled2dCodec {
 public:
  explicit Tiled2dCodec(TiledCodecConfig config = {});

  const TiledCodecConfig& config() const { return config_; }

  /// Compress a row-major width x height field.
  CompressionResult compress(std::span<const f32> field, std::size_t width,
                             std::size_t height, ErrorBound bound) const;

  /// Decompress; `width`/`height` receive the field dims from the stream.
  std::vector<f32> decompress(std::span<const u8> stream, std::size_t& width,
                              std::size_t& height) const;

  static constexpr std::size_t header_size() { return 40; }

 private:
  TiledCodecConfig config_;
};

}  // namespace ceresz::core
