// Calibrated per-PE cycle model of the CereSZ kernels.
//
// We cannot run CSL on real hardware, so per-operation cycle costs are
// calibrated against the paper's own profiling of CereSZ on the CS-2
// (Tables 1-3, block size 32, 850 MHz):
//
//   Multiplication ~5074 cycles/block, Addition ~1040, Lorenzo 975,
//   Sign ~1044, Max ~1037, GetLength ~1380, and Bit-shuffle ~1975.5 cycles
//   per effective bit (33609/17 ≈ 25675/13 ≈ 23694/12 — "a uniform
//   encoding overhead per effective bit", Section 4.2).
//
// Costs scale linearly with block size (all kernels are element-wise
// loops), except GetLength which is per block. Decompression reuses the
// same constants: un-shuffle per bit at a configurable factor of shuffle
// (slightly cheaper: gather instead of scatter plus no max search),
// prefix-sum at the Lorenzo rate, and the dequant multiply at the
// quantization multiply rate — reproducing Section 3's observation that
// decompression does strictly less work.
#pragma once

#include "common/types.h"
#include "core/stage.h"

namespace ceresz::core {

struct PeCostModel {
  // Per-element compression costs (cycles), calibrated at block size 32.
  f64 mul_per_elem = 5074.0 / 32;       // 158.56
  f64 add_per_elem = 1040.0 / 32;       // 32.50
  f64 lorenzo_per_elem = 975.0 / 32;    // 30.47
  f64 sign_per_elem = 1044.0 / 32;      // 32.63
  f64 max_per_elem = 1037.0 / 32;       // 32.41
  Cycles getlength_per_block = 1380;
  f64 shuffle_per_elem_bit = 1975.5 / 32;  // 61.73

  // Decompression.
  f64 unshuffle_factor = 0.80;  ///< un-shuffle cost relative to shuffle

  // A zero block skips everything after Max; the residual cost is the
  // header write (Section 5.2: "only needs to store a byte flag").
  Cycles zero_block_tail = 60;

  /// Cycles of one sub-stage on a block of `block_size` elements.
  Cycles substage_cycles(const SubStage& stage, u32 block_size) const;

  /// Total cycles to compress one block with fixed length `fl`
  /// (`zero_block` = true means the shortcut path).
  Cycles compress_block_cycles(u32 block_size, u32 fl, bool zero_block) const;

  /// Total cycles to decompress such a block.
  Cycles decompress_block_cycles(u32 block_size, u32 fl,
                                 bool zero_block) const;
};

}  // namespace ceresz::core
