#include "core/stage.h"

namespace ceresz::core {

const char* to_string(SubStageKind kind) {
  switch (kind) {
    case SubStageKind::kPrequantMul: return "Multiplication";
    case SubStageKind::kPrequantAdd: return "Addition";
    case SubStageKind::kLorenzo: return "Lorenzo";
    case SubStageKind::kSign: return "Sign";
    case SubStageKind::kMax: return "Max";
    case SubStageKind::kGetLength: return "GetLength";
    case SubStageKind::kShuffleBit: return "1-bit Shuffle";
    case SubStageKind::kUnshuffleBit: return "1-bit Unshuffle";
    case SubStageKind::kPrefixSum: return "PrefixSum";
    case SubStageKind::kDequantMul: return "DequantMul";
  }
  return "?";
}

std::string SubStage::name() const {
  std::string n = to_string(kind);
  if (kind == SubStageKind::kShuffleBit || kind == SubStageKind::kUnshuffleBit) {
    n += " #" + std::to_string(bit_index);
  }
  return n;
}

std::vector<SubStage> compression_substages(u32 fixed_length) {
  std::vector<SubStage> stages;
  stages.reserve(6 + fixed_length);
  stages.push_back({SubStageKind::kPrequantMul});
  stages.push_back({SubStageKind::kPrequantAdd});
  stages.push_back({SubStageKind::kLorenzo});
  stages.push_back({SubStageKind::kSign});
  stages.push_back({SubStageKind::kMax});
  stages.push_back({SubStageKind::kGetLength});
  for (u32 k = 0; k < fixed_length; ++k) {
    stages.push_back({SubStageKind::kShuffleBit, k, k + 1 == fixed_length});
  }
  return stages;
}

std::vector<SubStage> decompression_substages(u32 fixed_length) {
  std::vector<SubStage> stages;
  stages.reserve(2 + fixed_length);
  for (u32 k = 0; k < fixed_length; ++k) {
    stages.push_back({SubStageKind::kUnshuffleBit, k, k + 1 == fixed_length});
  }
  stages.push_back({SubStageKind::kPrefixSum});
  stages.push_back({SubStageKind::kDequantMul});
  return stages;
}

}  // namespace ceresz::core
