// Stage 2: 1-D Lorenzo prediction.
//
// Within one block the forward transform emits the first-order difference
// (p_1, p_2 - p_1, ..., p_L - p_{L-1}); smooth data turns into small
// residuals that fixed-length encoding packs tightly. The inverse is a
// sequential prefix sum (Section 3, Decompression Steps). Blocks never
// reference each other, which is what lets every block compress
// independently on its own PE.
#pragma once

#include <span>

#include "common/types.h"

namespace ceresz::core {

/// Forward 1-D Lorenzo: out[0] = in[0], out[i] = in[i] - in[i-1].
/// Throws if a difference overflows 32 bits. In-place operation (aliasing
/// input and output) is supported.
void lorenzo_forward(std::span<const i32> input, std::span<i32> output);

/// Inverse 1-D Lorenzo (prefix sum): out[i] = sum of in[0..i].
/// In-place operation is supported.
void lorenzo_inverse(std::span<const i32> input, std::span<i32> output);

}  // namespace ceresz::core
