// Extension: block-wise 2-D Lorenzo prediction (Section 3 notes CereSZ
// "can support such prediction methods"; Section 7 lists more compression
// algorithms for the dataflow architecture as future work).
//
// To stay block-independent — the property that lets every block compress
// on its own PE with no communication — the 2-D predictor works on tiles:
// a block of L elements is a tile_h x tile_w patch of the field, and every
// element is predicted only from neighbors inside its own tile:
//
//   r(0,0)  = p(0,0)
//   r(x,0)  = p(x,0) - p(x-1,0)             (top row: 1-D)
//   r(0,y)  = p(0,y) - p(0,y-1)             (left column: 1-D)
//   r(x,y)  = p(x,y) - p(x-1,y) - p(x,y-1) + p(x-1,y-1)
//
// The residuals then go through the same fixed-length encoding as the 1-D
// codec, so only stage 2 changes. On 2-D smooth fields the residuals are
// second-order differences and pack tighter; on rough data the extra
// subtraction adds nothing (see bench_ablation_prediction).
#pragma once

#include <span>

#include "common/types.h"

namespace ceresz::core {

/// Forward tiled 2-D Lorenzo on a tile of tile_h rows x tile_w columns
/// stored row-major in `input` (tile_h * tile_w elements). In-place
/// operation is NOT supported (the transform reads original neighbors).
void lorenzo2d_forward(std::span<const i32> input, std::span<i32> output,
                       u32 tile_w, u32 tile_h);

/// Inverse: reconstruct quantized values from residuals (2-D prefix sum).
void lorenzo2d_inverse(std::span<const i32> input, std::span<i32> output,
                       u32 tile_w, u32 tile_h);

/// Gather a tile from a row-major field into a dense tile buffer; tiles on
/// the right/bottom edge are zero-padded. `x0`, `y0` are the tile origin.
void gather_tile(std::span<const f32> field, std::size_t width,
                 std::size_t height, std::size_t x0, std::size_t y0,
                 u32 tile_w, u32 tile_h, std::span<f32> tile_out);

/// Scatter a dense tile back into a row-major field (padding discarded).
void scatter_tile(std::span<const f32> tile, std::size_t width,
                  std::size_t height, std::size_t x0, std::size_t y0,
                  u32 tile_w, u32 tile_h, std::span<f32> field_out);

}  // namespace ceresz::core
