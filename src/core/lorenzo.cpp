#include "core/lorenzo.h"

#include <limits>

#include "common/error.h"

namespace ceresz::core {

void lorenzo_forward(std::span<const i32> input, std::span<i32> output) {
  CERESZ_CHECK(input.size() == output.size(), "lorenzo_forward: size mismatch");
  if (input.empty()) return;
  i32 prev = input[0];
  output[0] = prev;
  for (std::size_t i = 1; i < input.size(); ++i) {
    const i32 cur = input[i];
    const i64 diff = static_cast<i64>(cur) - static_cast<i64>(prev);
    CERESZ_CHECK(diff >= std::numeric_limits<i32>::min() &&
                     diff <= std::numeric_limits<i32>::max(),
                 "lorenzo_forward: difference overflows 32 bits");
    output[i] = static_cast<i32>(diff);
    prev = cur;
  }
}

void lorenzo_inverse(std::span<const i32> input, std::span<i32> output) {
  CERESZ_CHECK(input.size() == output.size(), "lorenzo_inverse: size mismatch");
  i64 acc = 0;
  for (std::size_t i = 0; i < input.size(); ++i) {
    acc += input[i];
    CERESZ_CHECK(acc >= std::numeric_limits<i32>::min() &&
                     acc <= std::numeric_limits<i32>::max(),
                 "lorenzo_inverse: prefix sum overflows 32 bits");
    output[i] = static_cast<i32>(acc);
  }
}

}  // namespace ceresz::core
