#include "core/prequant.h"

#include <cmath>

#include "common/error.h"

namespace ceresz::core {

namespace {
// The quantization arithmetic runs in double precision so the ε guarantee
// of Section 3 is exact even at extreme magnitude ratios; the stored
// quantized values are 32-bit integers as on the PE.
constexpr f64 kMaxQuant = 2147483647.0;
}  // namespace

void prequant_multiply(std::span<const f32> input, std::span<f64> scratch,
                       f64 recip_two_eps) {
  CERESZ_CHECK(input.size() == scratch.size(),
               "prequant_multiply: size mismatch");
  for (std::size_t i = 0; i < input.size(); ++i) {
    scratch[i] = static_cast<f64>(input[i]) * recip_two_eps;
  }
}

void prequant_add_floor(std::span<const f64> scratch, std::span<i32> output) {
  CERESZ_CHECK(scratch.size() == output.size(),
               "prequant_add_floor: size mismatch");
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    const f64 rounded = std::floor(scratch[i] + 0.5);
    CERESZ_CHECK(rounded >= -kMaxQuant - 1.0 && rounded <= kMaxQuant,
                 "prequant: quantized value exceeds 32 bits; the error bound "
                 "is too small for this data's magnitude");
    output[i] = static_cast<i32>(rounded);
  }
}

void prequant(std::span<const f32> input, std::span<i32> output, f64 two_eps) {
  CERESZ_CHECK(input.size() == output.size(), "prequant: size mismatch");
  CERESZ_CHECK(two_eps > 0.0, "prequant: error bound must be positive");
  const f64 recip = 1.0 / two_eps;
  for (std::size_t i = 0; i < input.size(); ++i) {
    const f64 rounded = std::floor(static_cast<f64>(input[i]) * recip + 0.5);
    CERESZ_CHECK(rounded >= -kMaxQuant - 1.0 && rounded <= kMaxQuant,
                 "prequant: quantized value exceeds 32 bits; the error bound "
                 "is too small for this data's magnitude");
    output[i] = static_cast<i32>(rounded);
  }
}

void dequant(std::span<const i32> input, std::span<f32> output, f64 two_eps) {
  CERESZ_CHECK(input.size() == output.size(), "dequant: size mismatch");
  for (std::size_t i = 0; i < input.size(); ++i) {
    output[i] = static_cast<f32>(static_cast<f64>(input[i]) * two_eps);
  }
}

}  // namespace ceresz::core
