#include "core/block_codec.h"

#include <algorithm>

#include "common/error.h"
#include "core/flenc.h"
#include "core/lorenzo.h"
#include "core/prequant.h"

namespace ceresz::core {

BlockCodec::BlockCodec(CodecConfig config) : config_(config) {
  config_.validate();
}

std::size_t BlockCodec::compressed_size(u32 fl) const {
  const std::size_t plane_bytes = config_.block_size / 8;
  if (fl == 0) return config_.header_bytes;
  if (fl == kConstantMarker) return config_.header_bytes + sizeof(i32);
  return config_.header_bytes + plane_bytes + fl * plane_bytes;
}

void BlockCodec::write_header(u32 fl, std::vector<u8>& out) const {
  // Little-endian, header_bytes wide. fl <= 32 always fits in one byte;
  // CereSZ pads to 4 bytes to honor the fabric's 32-bit transfer units.
  for (u32 b = 0; b < config_.header_bytes; ++b) {
    out.push_back(static_cast<u8>((fl >> (8 * b)) & 0xff));
  }
}

u32 BlockCodec::read_header(std::span<const u8> in) const {
  CERESZ_CHECK(in.size() >= config_.header_bytes,
               "BlockCodec: truncated block header");
  u32 fl = 0;
  for (u32 b = 0; b < config_.header_bytes; ++b) {
    fl |= static_cast<u32>(in[b]) << (8 * b);
  }
  const u32 max_valid =
      config_.constant_block_shortcut ? kConstantMarker : 32;
  CERESZ_CHECK(fl <= max_valid, "BlockCodec: corrupt header");
  return fl;
}

BlockInfo BlockCodec::compress(std::span<const f32> input, f64 eps,
                               std::vector<u8>& out) const {
  const u32 L = config_.block_size;
  CERESZ_CHECK(input.size() == L, "BlockCodec::compress: wrong block size");
  CERESZ_CHECK(eps > 0.0, "BlockCodec::compress: eps must be positive");

  // Stage 1: pre-quantization.
  std::vector<i32> quant(L);
  prequant(input, quant, 2.0 * eps);

  // Stage 2: 1-D Lorenzo prediction (in place).
  lorenzo_forward(quant, quant);

  // Stage 3: fixed-length encoding.
  std::vector<u32> abs_values(L);
  std::vector<u8> signs(L / 8);
  split_sign(quant, abs_values, signs);
  const u32 maxval = block_max(abs_values);
  const u32 fl = effective_bits(maxval);

  BlockInfo info;
  if (config_.zero_block_shortcut && maxval == 0) {
    // All-zero quantized block: a bare header with fixed length 0.
    write_header(0, out);
    info.fixed_length = 0;
    info.zero_block = true;
    info.compressed_bytes = config_.header_bytes;
    return info;
  }

  if (config_.constant_block_shortcut) {
    // Extension: residuals (p0, p1-p0, ...) of a constant block are
    // (p0, 0, 0, ...) — detect and store just the value.
    bool constant = true;
    for (std::size_t i = 1; i < quant.size(); ++i) {
      if (quant[i] != 0) {
        constant = false;
        break;
      }
    }
    if (constant) {
      write_header(kConstantMarker, out);
      const u32 value = static_cast<u32>(quant[0]);
      for (int b = 0; b < 4; ++b) {
        out.push_back(static_cast<u8>((value >> (8 * b)) & 0xff));
      }
      info.fixed_length = 0;
      info.constant_block = true;
      info.compressed_bytes =
          static_cast<u32>(compressed_size(kConstantMarker));
      return info;
    }
  }

  // A non-zero block always has fl >= 1; fl == 0 on the wire means "zero
  // block", so when the shortcut is disabled an all-zero block is encoded
  // with fl = 1 (one explicit zero plane).
  const u32 encoded_fl = std::max(fl, 1u);
  write_header(encoded_fl, out);
  out.insert(out.end(), signs.begin(), signs.end());
  const std::size_t plane_bytes = L / 8;
  const std::size_t payload_at = out.size();
  out.resize(out.size() + encoded_fl * plane_bytes);
  bit_shuffle(abs_values, encoded_fl,
              std::span<u8>(out.data() + payload_at, encoded_fl * plane_bytes));

  info.fixed_length = encoded_fl;
  info.zero_block = false;
  info.compressed_bytes =
      static_cast<u32>(compressed_size(encoded_fl));
  return info;
}

std::size_t BlockCodec::decompress(std::span<const u8> in, f64 eps,
                                   std::span<f32> output) const {
  const u32 L = config_.block_size;
  CERESZ_CHECK(output.size() == L, "BlockCodec::decompress: wrong block size");
  const u32 fl = read_header(in);
  const std::size_t total = compressed_size(fl);
  CERESZ_CHECK(in.size() >= total, "BlockCodec: truncated block record");

  if (fl == 0) {
    std::fill(output.begin(), output.end(), 0.0f);
    return total;
  }

  if (fl == kConstantMarker) {
    u32 bits = 0;
    for (int b = 0; b < 4; ++b) {
      bits |= static_cast<u32>(in[config_.header_bytes + b]) << (8 * b);
    }
    const f32 value =
        static_cast<f32>(static_cast<f64>(static_cast<i32>(bits)) * 2.0 * eps);
    std::fill(output.begin(), output.end(), value);
    return total;
  }

  const std::size_t plane_bytes = L / 8;
  const std::span<const u8> signs = in.subspan(config_.header_bytes, plane_bytes);
  const std::span<const u8> planes =
      in.subspan(config_.header_bytes + plane_bytes, fl * plane_bytes);

  std::vector<u32> abs_values(L);
  bit_unshuffle(planes, fl, abs_values);
  std::vector<i32> quant(L);
  apply_sign(abs_values, signs, quant);
  lorenzo_inverse(quant, quant);
  dequant(quant, output, 2.0 * eps);
  return total;
}

std::size_t BlockCodec::record_size(std::span<const u8> in) const {
  return compressed_size(read_header(in));
}

}  // namespace ceresz::core
