#include "core/flenc.h"

#include <bit>
#include <cstring>

#include "common/error.h"

namespace ceresz::core {

void split_sign(std::span<const i32> input, std::span<u32> abs_out,
                std::span<u8> sign_bytes) {
  CERESZ_CHECK(input.size() == abs_out.size(), "split_sign: size mismatch");
  CERESZ_CHECK(input.size() % 8 == 0,
               "split_sign: block size must be a multiple of 8");
  CERESZ_CHECK(sign_bytes.size() == input.size() / 8,
               "split_sign: sign buffer size mismatch");
  std::memset(sign_bytes.data(), 0, sign_bytes.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const i32 v = input[i];
    if (v < 0) {
      sign_bytes[i / 8] |= static_cast<u8>(1u << (i % 8));
      abs_out[i] = static_cast<u32>(-static_cast<i64>(v));
    } else {
      abs_out[i] = static_cast<u32>(v);
    }
  }
}

u32 block_max(std::span<const u32> abs_values) {
  u32 m = 0;
  for (u32 v : abs_values) {
    if (v > m) m = v;
  }
  return m;
}

u32 effective_bits(u32 value) {
  return static_cast<u32>(std::bit_width(value));
}

void bit_shuffle_plane(std::span<const u32> abs_values, u32 bit,
                       std::span<u8> plane_out) {
  CERESZ_CHECK(abs_values.size() % 8 == 0,
               "bit_shuffle_plane: block size must be a multiple of 8");
  CERESZ_CHECK(plane_out.size() == abs_values.size() / 8,
               "bit_shuffle_plane: plane buffer size mismatch");
  CERESZ_CHECK(bit < 32, "bit_shuffle_plane: bit index out of range");
  std::memset(plane_out.data(), 0, plane_out.size());
  for (std::size_t j = 0; j < abs_values.size(); ++j) {
    const u8 b = static_cast<u8>((abs_values[j] >> bit) & 1u);
    plane_out[j / 8] |= static_cast<u8>(b << (j % 8));
  }
}

void bit_shuffle(std::span<const u32> abs_values, u32 fixed_length,
                 std::span<u8> out) {
  const std::size_t plane_bytes = abs_values.size() / 8;
  CERESZ_CHECK(out.size() == plane_bytes * fixed_length,
               "bit_shuffle: output buffer size mismatch");
  for (u32 k = 0; k < fixed_length; ++k) {
    bit_shuffle_plane(abs_values, k,
                      out.subspan(k * plane_bytes, plane_bytes));
  }
}

void bit_unshuffle(std::span<const u8> planes, u32 fixed_length,
                   std::span<u32> abs_out) {
  CERESZ_CHECK(abs_out.size() % 8 == 0,
               "bit_unshuffle: block size must be a multiple of 8");
  const std::size_t plane_bytes = abs_out.size() / 8;
  CERESZ_CHECK(planes.size() == plane_bytes * fixed_length,
               "bit_unshuffle: input buffer size mismatch");
  CERESZ_CHECK(fixed_length <= 32, "bit_unshuffle: fixed length exceeds 32");
  for (auto& v : abs_out) v = 0;
  for (u32 k = 0; k < fixed_length; ++k) {
    const u8* plane = planes.data() + k * plane_bytes;
    for (std::size_t j = 0; j < abs_out.size(); ++j) {
      const u32 b = (plane[j / 8] >> (j % 8)) & 1u;
      abs_out[j] |= b << k;
    }
  }
}

void apply_sign(std::span<const u32> abs_values,
                std::span<const u8> sign_bytes, std::span<i32> output) {
  CERESZ_CHECK(abs_values.size() == output.size(),
               "apply_sign: size mismatch");
  CERESZ_CHECK(sign_bytes.size() == abs_values.size() / 8,
               "apply_sign: sign buffer size mismatch");
  for (std::size_t i = 0; i < abs_values.size(); ++i) {
    const bool negative = (sign_bytes[i / 8] >> (i % 8)) & 1u;
    const i64 magnitude = static_cast<i64>(abs_values[i]);
    output[i] = static_cast<i32>(negative ? -magnitude : magnitude);
  }
}

}  // namespace ceresz::core
