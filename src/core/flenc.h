// Stage 3: fixed-length encoding.
//
// Per block: store each element's sign as one packed bit, find the maximum
// absolute value, derive the number of effective bits ("fixed length"), and
// bit-shuffle: for every effective bit position k, gather the k-th bit of
// all elements into a contiguous bit-plane of L/8 bytes (Figure 8). A block
// of L elements with fixed length f therefore encodes into L/8 sign bytes
// plus f·L/8 payload bytes.
//
// The four sub-stages (Sign, Max, GetLength, Bit-shuffle) are exposed
// individually because the pipeline scheduler distributes them — and the
// per-bit slices of Bit-shuffle — across PEs (Section 4.2).
#pragma once

#include <span>

#include "common/types.h"

namespace ceresz::core {

/// Sub-stage "Sign": pack sign bits (1 = negative) into sign_bytes
/// (input.size()/8 bytes, LSB-first within each byte) and write absolute
/// values. |INT32_MIN| is rejected by prequant/lorenzo so abs is exact.
void split_sign(std::span<const i32> input, std::span<u32> abs_out,
                std::span<u8> sign_bytes);

/// Sub-stage "Max": maximum of the absolute values (0 for an empty span).
u32 block_max(std::span<const u32> abs_values);

/// Sub-stage "GetLength": number of effective bits of `value`
/// (bit_width; 0 for value 0).
u32 effective_bits(u32 value);

/// Sub-stage "Bit-shuffle": scatter the low `fixed_length` bits of every
/// element into bit-planes. Plane k (k in [0, fixed_length)) occupies
/// L/8 bytes; element j's k-th bit lands in plane k, byte j/8, bit j%8.
/// `out` must hold fixed_length * L/8 bytes and is fully overwritten.
void bit_shuffle(std::span<const u32> abs_values, u32 fixed_length,
                 std::span<u8> out);

/// Shuffle a single bit-plane — the unit the pipeline scheduler assigns to
/// PEs ("1-bit Shuffle" in Section 4.2). Writes L/8 bytes for plane `bit`.
void bit_shuffle_plane(std::span<const u32> abs_values, u32 bit,
                       std::span<u8> plane_out);

/// Inverse of bit_shuffle: reassemble absolute values from planes.
void bit_unshuffle(std::span<const u8> planes, u32 fixed_length,
                   std::span<u32> abs_out);

/// Reapply packed signs to absolute values.
void apply_sign(std::span<const u32> abs_values,
                std::span<const u8> sign_bytes, std::span<i32> output);

}  // namespace ceresz::core
