// Whole-array compression: block partitioning, REL bound resolution, the
// self-describing stream container, and (de)compression statistics.
//
// This is the host-side reference implementation of CereSZ — the WSE
// mapping in src/mapping produces bit-identical streams, which the
// integration tests assert.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/types.h"
#include "core/block_codec.h"
#include "core/config.h"

namespace ceresz::core {

/// Aggregate statistics of one compression run.
struct StreamStats {
  u64 total_blocks = 0;
  u64 zero_blocks = 0;
  u64 constant_blocks = 0;  ///< constant-block shortcut hits (extension)
  u32 max_fixed_length = 0;
  f64 mean_fixed_length = 0.0;  ///< over non-zero blocks
  std::array<u64, 33> fl_histogram{};  ///< count of blocks per fixed length

  f64 zero_fraction() const {
    return total_blocks == 0
               ? 0.0
               : static_cast<f64>(zero_blocks) / static_cast<f64>(total_blocks);
  }
};

/// Result of StreamCodec::compress.
struct CompressionResult {
  std::vector<u8> stream;  ///< container header + block records
  f64 eps_abs = 0.0;       ///< resolved absolute bound
  u64 element_count = 0;
  StreamStats stats;

  f64 compression_ratio() const {
    return stream.empty() ? 0.0
                          : static_cast<f64>(element_count * sizeof(f32)) /
                                static_cast<f64>(stream.size());
  }
};

class StreamCodec {
 public:
  explicit StreamCodec(CodecConfig config = {});

  const CodecConfig& config() const { return block_codec_.config(); }
  const BlockCodec& block_codec() const { return block_codec_; }

  /// Compress `data` under `bound`. A REL bound is resolved against the
  /// data's value range. The input may have any length; a partial tail
  /// block is zero-padded internally and trimmed on decompression.
  CompressionResult compress(std::span<const f32> data,
                             ErrorBound bound) const;

  /// Decompress a stream produced by compress(). Throws on corrupt input.
  std::vector<f32> decompress(std::span<const u8> stream) const;

  /// Container header size in bytes.
  static constexpr std::size_t header_size() { return 24; }

 private:
  struct StreamHeader {
    u32 header_bytes = 0;
    u32 block_size = 0;
    u64 element_count = 0;
    f64 eps_abs = 0.0;
  };
  StreamHeader parse_header(std::span<const u8> stream) const;

  BlockCodec block_codec_;
};

}  // namespace ceresz::core
