#include "core/costmodel.h"

#include <cmath>

#include "common/error.h"

namespace ceresz::core {

namespace {
Cycles to_cycles(f64 v) { return static_cast<Cycles>(std::llround(v)); }
}  // namespace

Cycles PeCostModel::substage_cycles(const SubStage& stage,
                                    u32 block_size) const {
  const f64 L = static_cast<f64>(block_size);
  switch (stage.kind) {
    case SubStageKind::kPrequantMul: return to_cycles(mul_per_elem * L);
    case SubStageKind::kPrequantAdd: return to_cycles(add_per_elem * L);
    case SubStageKind::kLorenzo: return to_cycles(lorenzo_per_elem * L);
    case SubStageKind::kSign: return to_cycles(sign_per_elem * L);
    case SubStageKind::kMax: return to_cycles(max_per_elem * L);
    case SubStageKind::kGetLength: return getlength_per_block;
    case SubStageKind::kShuffleBit: return to_cycles(shuffle_per_elem_bit * L);
    case SubStageKind::kUnshuffleBit:
      return to_cycles(shuffle_per_elem_bit * unshuffle_factor * L);
    case SubStageKind::kPrefixSum: return to_cycles(lorenzo_per_elem * L);
    case SubStageKind::kDequantMul: return to_cycles(mul_per_elem * L);
  }
  CERESZ_FAIL("substage_cycles: unknown sub-stage kind");
}

Cycles PeCostModel::compress_block_cycles(u32 block_size, u32 fl,
                                          bool zero_block) const {
  const f64 L = static_cast<f64>(block_size);
  // Quantization, prediction, and the max search always run — the block is
  // only known to be zero after Max.
  Cycles total = to_cycles((mul_per_elem + add_per_elem + lorenzo_per_elem +
                            sign_per_elem + max_per_elem) *
                           L);
  if (zero_block) return total + zero_block_tail;
  total += getlength_per_block;
  total += to_cycles(shuffle_per_elem_bit * L * static_cast<f64>(fl));
  return total;
}

Cycles PeCostModel::decompress_block_cycles(u32 block_size, u32 fl,
                                            bool zero_block) const {
  const f64 L = static_cast<f64>(block_size);
  if (zero_block) {
    // Reading the flag and emitting zeros: memset-rate output.
    return zero_block_tail + to_cycles(add_per_elem * L);
  }
  Cycles total =
      to_cycles(shuffle_per_elem_bit * unshuffle_factor * L * fl);
  total += to_cycles((lorenzo_per_elem + mul_per_elem) * L);
  return total;
}

}  // namespace ceresz::core
