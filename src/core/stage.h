// Sub-stage registry: the fine-grained decomposition of the compression and
// decompression kernels that the pipeline scheduler (Algorithm 1)
// distributes across PEs.
//
// Compression decomposes into Multiplication, Addition (the two halves of
// pre-quantization, Table 2), Lorenzo, Sign, Max, GetLength, and one 1-bit
// Shuffle sub-stage per effective bit (Table 3 and Figure 8). Decompression
// decomposes into one 1-bit Unshuffle per effective bit, an indivisible
// prefix sum, and an indivisible dequantization multiply (Section 4.2).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace ceresz::core {

enum class SubStageKind : u8 {
  // Compression.
  kPrequantMul,
  kPrequantAdd,
  kLorenzo,
  kSign,
  kMax,
  kGetLength,
  kShuffleBit,  ///< one bit-plane of Bit-shuffle
  // Decompression.
  kUnshuffleBit,  ///< one bit-plane of the reverse Bit-shuffle
  kPrefixSum,     ///< reverse Lorenzo (indivisible)
  kDequantMul,    ///< reverse pre-quantization (indivisible)
};

const char* to_string(SubStageKind kind);

/// One schedulable unit of work on a block.
struct SubStage {
  SubStageKind kind;
  u32 bit_index = 0;  ///< which plane, for kShuffleBit / kUnshuffleBit

  /// Set on the last planned shuffle/unshuffle sub-stage: it handles every
  /// remaining plane (bit_index and above). The plan is built from the
  /// *sampled* fixed-length estimate (Section 4.2); blocks whose true
  /// length exceeds the estimate overflow into this tail stage — a real
  /// imbalance source the simulator should reproduce, not an error.
  bool tail = false;

  std::string name() const;
};

/// The ordered sub-stages of compressing a block whose fixed length is
/// `fixed_length` (the per-bit shuffle count is data-dependent, which is
/// why the scheduler estimates it by sampling — Section 4.2).
std::vector<SubStage> compression_substages(u32 fixed_length);

/// The ordered sub-stages of decompressing such a block.
std::vector<SubStage> decompression_substages(u32 fixed_length);

}  // namespace ceresz::core
