#include "core/tiled_codec.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "common/stats.h"
#include "core/flenc.h"
#include "core/lorenzo2d.h"
#include "core/prequant.h"

namespace ceresz::core {

namespace {

constexpr char kMagic[4] = {'C', 'S', 'Z', '2'};

void append_u64(std::vector<u8>& out, u64 v) {
  for (int b = 0; b < 8; ++b) out.push_back(static_cast<u8>((v >> (8 * b)) & 0xff));
}
u64 read_u64(const u8* p) {
  u64 v = 0;
  for (int b = 0; b < 8; ++b) v |= static_cast<u64>(p[b]) << (8 * b);
  return v;
}

}  // namespace

void TiledCodecConfig::validate() const {
  CERESZ_CHECK(tile_w >= 1 && tile_h >= 1, "TiledCodecConfig: empty tile");
  CERESZ_CHECK(block_size() % 8 == 0,
               "TiledCodecConfig: tile element count must be a multiple of 8");
  CERESZ_CHECK(header_bytes == 1 || header_bytes == 2 || header_bytes == 4,
               "TiledCodecConfig: header_bytes must be 1, 2, or 4");
}

Tiled2dCodec::Tiled2dCodec(TiledCodecConfig config) : config_(config) {
  config_.validate();
}

CompressionResult Tiled2dCodec::compress(std::span<const f32> field,
                                         std::size_t width,
                                         std::size_t height,
                                         ErrorBound bound) const {
  CERESZ_CHECK(field.size() == width * height,
               "Tiled2dCodec: field size does not match dims");
  const u32 L = config_.block_size();
  const f64 eps = bound.resolve(summarize(field).range());

  CompressionResult result;
  result.eps_abs = eps;
  result.element_count = field.size();

  auto& out = result.stream;
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(static_cast<u8>(config_.header_bytes));
  out.push_back(config_.zero_block_shortcut ? u8{1} : u8{0});
  out.push_back(static_cast<u8>(config_.tile_w));
  out.push_back(static_cast<u8>(config_.tile_h));
  append_u64(out, width);
  append_u64(out, height);
  u64 eps_bits;
  std::memcpy(&eps_bits, &eps, sizeof(eps_bits));
  append_u64(out, eps_bits);
  out.insert(out.end(), 8, 0);  // reserved
  CERESZ_CHECK(out.size() == header_size(), "Tiled2dCodec: header drift");
  if (field.empty()) return result;

  const std::size_t tiles_x = (width + config_.tile_w - 1) / config_.tile_w;
  const std::size_t tiles_y = (height + config_.tile_h - 1) / config_.tile_h;

  std::vector<f32> tile(L);
  std::vector<i32> quant(L), resid(L);
  std::vector<u32> absv(L);
  std::vector<u8> signs(L / 8);

  auto write_header = [&](u32 fl) {
    for (u32 b = 0; b < config_.header_bytes; ++b) {
      out.push_back(static_cast<u8>((fl >> (8 * b)) & 0xff));
    }
  };

  for (std::size_t ty = 0; ty < tiles_y; ++ty) {
    for (std::size_t tx = 0; tx < tiles_x; ++tx) {
      gather_tile(field, width, height, tx * config_.tile_w,
                  ty * config_.tile_h, config_.tile_w, config_.tile_h, tile);
      prequant(tile, quant, 2.0 * eps);
      lorenzo2d_forward(quant, resid, config_.tile_w, config_.tile_h);
      split_sign(resid, absv, signs);
      const u32 maxval = block_max(absv);
      ++result.stats.total_blocks;
      if (config_.zero_block_shortcut && maxval == 0) {
        write_header(0);
        ++result.stats.zero_blocks;
        ++result.stats.fl_histogram[0];
        continue;
      }
      const u32 fl = std::max(effective_bits(maxval), 1u);
      write_header(fl);
      out.insert(out.end(), signs.begin(), signs.end());
      const std::size_t at = out.size();
      out.resize(out.size() + static_cast<std::size_t>(fl) * (L / 8));
      bit_shuffle(absv, fl,
                  std::span<u8>(out.data() + at, fl * (L / 8)));
      result.stats.max_fixed_length =
          std::max(result.stats.max_fixed_length, fl);
      ++result.stats.fl_histogram[fl];
      result.stats.mean_fixed_length += fl;  // normalized below
    }
  }
  const u64 nonzero = result.stats.total_blocks - result.stats.zero_blocks;
  if (nonzero > 0) result.stats.mean_fixed_length /= static_cast<f64>(nonzero);
  return result;
}

std::vector<f32> Tiled2dCodec::decompress(std::span<const u8> stream,
                                          std::size_t& width,
                                          std::size_t& height) const {
  CERESZ_CHECK(stream.size() >= header_size(),
               "Tiled2dCodec: truncated stream");
  CERESZ_CHECK(std::memcmp(stream.data(), kMagic, 4) == 0,
               "Tiled2dCodec: bad magic — not a tiled CereSZ stream");
  CERESZ_CHECK(stream[4] == config_.header_bytes &&
                   stream[6] == config_.tile_w && stream[7] == config_.tile_h,
               "Tiled2dCodec: stream written with a different configuration");
  width = read_u64(stream.data() + 8);
  height = read_u64(stream.data() + 16);
  f64 eps;
  const u64 eps_bits = read_u64(stream.data() + 24);
  std::memcpy(&eps, &eps_bits, sizeof(eps));
  CERESZ_CHECK(width < (u64{1} << 32) && height < (u64{1} << 32),
               "Tiled2dCodec: corrupt header (absurd dims)");
  CERESZ_CHECK(eps > 0.0 || width * height == 0,
               "Tiled2dCodec: corrupt header (non-positive bound)");
  // Every tile record is at least header_bytes: a corrupt dim pair cannot
  // claim more tiles than the stream could hold.
  {
    const u64 claim_tiles = ((width + config_.tile_w - 1) / config_.tile_w) *
                            ((height + config_.tile_h - 1) / config_.tile_h);
    CERESZ_CHECK(claim_tiles <= (stream.size() - header_size()) /
                                    config_.header_bytes,
                 "Tiled2dCodec: corrupt header (tile count exceeds what the "
                 "stream could hold)");
  }

  std::vector<f32> field(width * height, 0.0f);
  if (field.empty()) return field;

  const u32 L = config_.block_size();
  const std::size_t tiles_x = (width + config_.tile_w - 1) / config_.tile_w;
  const std::size_t tiles_y = (height + config_.tile_h - 1) / config_.tile_h;

  std::vector<f32> tile(L);
  std::vector<i32> quant(L), resid(L);
  std::vector<u32> absv(L);
  std::size_t pos = header_size();

  for (std::size_t ty = 0; ty < tiles_y; ++ty) {
    for (std::size_t tx = 0; tx < tiles_x; ++tx) {
      CERESZ_CHECK(pos + config_.header_bytes <= stream.size(),
                   "Tiled2dCodec: truncated tile header");
      u32 fl = 0;
      for (u32 b = 0; b < config_.header_bytes; ++b) {
        fl |= static_cast<u32>(stream[pos + b]) << (8 * b);
      }
      pos += config_.header_bytes;
      CERESZ_CHECK(fl <= 32, "Tiled2dCodec: corrupt tile header");
      if (fl == 0) {
        std::fill(tile.begin(), tile.end(), 0.0f);
      } else {
        const std::size_t plane_bytes = L / 8;
        CERESZ_CHECK(pos + plane_bytes * (1 + fl) <= stream.size(),
                     "Tiled2dCodec: truncated tile payload");
        std::span<const u8> signs = stream.subspan(pos, plane_bytes);
        pos += plane_bytes;
        bit_unshuffle(stream.subspan(pos, fl * plane_bytes), fl, absv);
        pos += fl * plane_bytes;
        apply_sign(absv, signs, resid);
        lorenzo2d_inverse(resid, quant, config_.tile_w, config_.tile_h);
        dequant(quant, tile, 2.0 * eps);
      }
      scatter_tile(tile, width, height, tx * config_.tile_w,
                   ty * config_.tile_h, config_.tile_w, config_.tile_h,
                   field);
    }
  }
  return field;
}

}  // namespace ceresz::core
