#include "core/lorenzo2d.h"

#include <limits>

#include "common/error.h"

namespace ceresz::core {

namespace {
void check_tile(std::size_t in, std::size_t out, u32 tile_w, u32 tile_h) {
  CERESZ_CHECK(tile_w >= 1 && tile_h >= 1, "lorenzo2d: empty tile");
  CERESZ_CHECK(in == static_cast<std::size_t>(tile_w) * tile_h,
               "lorenzo2d: input size does not match tile dims");
  CERESZ_CHECK(in == out, "lorenzo2d: size mismatch");
}

i32 checked_narrow(i64 v, const char* what) {
  CERESZ_CHECK(v >= std::numeric_limits<i32>::min() &&
                   v <= std::numeric_limits<i32>::max(),
               what);
  return static_cast<i32>(v);
}
}  // namespace

void lorenzo2d_forward(std::span<const i32> input, std::span<i32> output,
                       u32 tile_w, u32 tile_h) {
  check_tile(input.size(), output.size(), tile_w, tile_h);
  CERESZ_CHECK(input.data() != output.data(),
               "lorenzo2d_forward: in-place operation not supported");
  for (u32 y = 0; y < tile_h; ++y) {
    for (u32 x = 0; x < tile_w; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * tile_w + x;
      i64 r = input[i];
      if (x > 0) r -= input[i - 1];
      if (y > 0) r -= input[i - tile_w];
      if (x > 0 && y > 0) r += input[i - tile_w - 1];
      output[i] =
          checked_narrow(r, "lorenzo2d_forward: residual overflows 32 bits");
    }
  }
}

void lorenzo2d_inverse(std::span<const i32> input, std::span<i32> output,
                       u32 tile_w, u32 tile_h) {
  check_tile(input.size(), output.size(), tile_w, tile_h);
  CERESZ_CHECK(input.data() != output.data(),
               "lorenzo2d_inverse: in-place operation not supported");
  for (u32 y = 0; y < tile_h; ++y) {
    for (u32 x = 0; x < tile_w; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * tile_w + x;
      i64 p = input[i];
      if (x > 0) p += output[i - 1];
      if (y > 0) p += output[i - tile_w];
      if (x > 0 && y > 0) p -= output[i - tile_w - 1];
      output[i] =
          checked_narrow(p, "lorenzo2d_inverse: value overflows 32 bits");
    }
  }
}

void gather_tile(std::span<const f32> field, std::size_t width,
                 std::size_t height, std::size_t x0, std::size_t y0,
                 u32 tile_w, u32 tile_h, std::span<f32> tile_out) {
  CERESZ_CHECK(field.size() == width * height,
               "gather_tile: field size does not match dims");
  CERESZ_CHECK(tile_out.size() == static_cast<std::size_t>(tile_w) * tile_h,
               "gather_tile: tile buffer size mismatch");
  for (u32 ty = 0; ty < tile_h; ++ty) {
    for (u32 tx = 0; tx < tile_w; ++tx) {
      const std::size_t x = x0 + tx;
      const std::size_t y = y0 + ty;
      tile_out[static_cast<std::size_t>(ty) * tile_w + tx] =
          (x < width && y < height) ? field[y * width + x] : 0.0f;
    }
  }
}

void scatter_tile(std::span<const f32> tile, std::size_t width,
                  std::size_t height, std::size_t x0, std::size_t y0,
                  u32 tile_w, u32 tile_h, std::span<f32> field_out) {
  CERESZ_CHECK(field_out.size() == width * height,
               "scatter_tile: field size does not match dims");
  CERESZ_CHECK(tile.size() == static_cast<std::size_t>(tile_w) * tile_h,
               "scatter_tile: tile buffer size mismatch");
  for (u32 ty = 0; ty < tile_h; ++ty) {
    for (u32 tx = 0; tx < tile_w; ++tx) {
      const std::size_t x = x0 + tx;
      const std::size_t y = y0 + ty;
      if (x < width && y < height) {
        field_out[y * width + x] =
            tile[static_cast<std::size_t>(ty) * tile_w + tx];
      }
    }
  }
}

}  // namespace ceresz::core
