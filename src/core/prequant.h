// Stage 1: pre-quantization — the only lossy step of CereSZ.
//
// p_i = round(e_i / 2ε), reconstructed as e'_i = p_i · 2ε, guaranteeing
// |e_i - e'_i| ≤ ε. Following the paper's implementation (Section 4.2) the
// division is a multiplication by the precomputed reciprocal of 2ε and the
// rounding is an addition of 0.5 followed by a floor; the two halves are
// exposed separately because they are distinct pipeline sub-stages with
// very different cycle costs (Table 2).
#pragma once

#include <span>

#include "common/types.h"

namespace ceresz::core {

/// Sub-stage 1a (Multiplication): scratch_i = e_i · (1/2ε).
void prequant_multiply(std::span<const f32> input, std::span<f64> scratch,
                       f64 recip_two_eps);

/// Sub-stage 1b (Addition): p_i = floor(scratch_i + 0.5).
/// Throws if a quantized value does not fit in 32 bits (error bound too
/// small for the data's magnitude).
void prequant_add_floor(std::span<const f64> scratch, std::span<i32> output);

/// Fused convenience form of the two sub-stages.
void prequant(std::span<const f32> input, std::span<i32> output, f64 two_eps);

/// Inverse: e'_i = p_i · 2ε.
void dequant(std::span<const i32> input, std::span<f32> output, f64 two_eps);

}  // namespace ceresz::core
