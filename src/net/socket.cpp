#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstring>
#include <string>

#include "common/error.h"
#include "common/timer.h"

namespace ceresz::net {

namespace {

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Block until `events` (or error/hang-up) on `fd`, up to `deadline_ns`
/// on the shared monotonic clock (0 = wait forever). Returns false on
/// timeout; readiness — including POLLERR/POLLHUP, which the following
/// recv/send will surface as a proper errno — returns true. Retries
/// EINTR with the remaining budget.
bool wait_for(int fd, short events, u64 deadline_ns) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline_ns != 0) {
      const u64 now = now_ns();
      if (now >= deadline_ns) return false;
      const u64 remaining_ms = (deadline_ns - now + 999'999) / 1'000'000;
      timeout_ms = remaining_ms > static_cast<u64>(INT_MAX)
                       ? INT_MAX
                       : static_cast<int>(remaining_ms);
    }
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw Error(errno_message("Socket: poll"));
  }
}

u64 io_deadline(u32 timeout_ms) {
  return timeout_ms == 0 ? 0
                         : now_ns() + static_cast<u64>(timeout_ms) * 1'000'000;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    io_timeout_ms_ = other.io_timeout_ms_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::shutdown_write() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::reset_hard() noexcept {
  if (fd_ < 0) return;
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;  // close() sends RST instead of FIN
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd_);
  fd_ = -1;
}

void Socket::set_nodelay() noexcept {
  if (fd_ < 0) return;
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool Socket::wait_readable(u32 timeout_ms) const {
  CERESZ_CHECK(fd_ >= 0, "Socket::wait_readable: socket is closed");
  return wait_for(fd_, POLLIN, io_deadline(timeout_ms));
}

void Socket::write_all(std::span<const u8> bytes) const {
  CERESZ_CHECK(fd_ >= 0, "Socket::write_all: socket is closed");
  const u64 deadline = io_deadline(io_timeout_ms_);
  std::size_t done = 0;
  while (done < bytes.size()) {
    if (deadline != 0 && !wait_for(fd_, POLLOUT, deadline)) {
      throw NetTimeout("Socket::write_all: timed out after " +
                       std::to_string(io_timeout_ms_) +
                       " ms (slow or stalled peer)");
    }
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
    const ssize_t n = ::send(fd_, bytes.data() + done, bytes.size() - done,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(errno_message("Socket::write_all"));
    }
    done += static_cast<std::size_t>(n);
  }
}

void Socket::read_exact(std::span<u8> out) const {
  if (!read_exact_or_eof(out)) {
    throw Error("Socket::read_exact: connection closed by peer");
  }
}

bool Socket::read_exact_or_eof(std::span<u8> out) const {
  CERESZ_CHECK(fd_ >= 0, "Socket::read_exact: socket is closed");
  const u64 deadline = io_deadline(io_timeout_ms_);
  std::size_t done = 0;
  while (done < out.size()) {
    if (deadline != 0 && !wait_for(fd_, POLLIN, deadline)) {
      throw NetTimeout("Socket::read_exact: timed out after " +
                       std::to_string(io_timeout_ms_) +
                       " ms (slow or stalled peer)");
    }
    const ssize_t n = ::recv(fd_, out.data() + done, out.size() - done, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(errno_message("Socket::read_exact"));
    }
    if (n == 0) {
      if (done == 0) return false;  // clean EOF between frames
      throw Error("Socket::read_exact: connection truncated mid-frame");
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

std::size_t Socket::read_some(std::span<u8> out) const {
  CERESZ_CHECK(fd_ >= 0, "Socket::read_some: socket is closed");
  for (;;) {
    const ssize_t n = ::recv(fd_, out.data(), out.size(), 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    throw Error(errno_message("Socket::read_some"));
  }
}

TcpListener::TcpListener(u16 port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw Error(errno_message("TcpListener: socket"));

  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string msg = errno_message("TcpListener: bind");
    close();
    throw Error(msg);
  }
  if (::listen(fd_, backlog) != 0) {
    const std::string msg = errno_message("TcpListener: listen");
    close();
    throw Error(msg);
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string msg = errno_message("TcpListener: getsockname");
    close();
    throw Error(msg);
  }
  port_ = ntohs(bound.sin_port);
}

Socket TcpListener::accept_connection() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // shutdown() (EINVAL on Linux) or close() ends the accept loop; any
    // other error also reads as "listener is done" rather than crashing
    // the server, matching how long-running daemons treat accept errors.
    return Socket();
  }
}

void TcpListener::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket connect_to(const std::string& host, u16 port, u32 connect_timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    throw Error("connect_to: cannot resolve " + host + ": " +
                gai_strerror(rc));
  }

  int last_errno = 0;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    bool connected = false;
    if (connect_timeout_ms == 0) {
      connected = ::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0;
      if (!connected) last_errno = errno;
    } else {
      // Bounded handshake: non-blocking connect, poll for writability,
      // then read the handshake's verdict out of SO_ERROR. The fd is
      // restored to blocking before use — timeouts on an *established*
      // socket are set_io_timeout()'s job, enforced per call with poll.
      const int flags = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      const int crc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
      if (crc == 0) {
        connected = true;
      } else if (errno == EINPROGRESS) {
        const u64 deadline =
            now_ns() + static_cast<u64>(connect_timeout_ms) * 1'000'000;
        if (!wait_for(fd, POLLOUT, deadline)) {
          ::close(fd);
          ::freeaddrinfo(res);
          throw NetTimeout("connect_to: no response from " + host + ":" +
                           service + " within " +
                           std::to_string(connect_timeout_ms) + " ms");
        }
        int so_error = 0;
        socklen_t len = sizeof(so_error);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
        if (so_error == 0) {
          connected = true;
        } else {
          last_errno = so_error;
        }
      } else {
        last_errno = errno;
      }
      if (connected) ::fcntl(fd, F_SETFL, flags);
    }
    if (connected) {
      ::freeaddrinfo(res);
      Socket sock(fd);
      sock.set_nodelay();
      return sock;
    }
    ::close(fd);
  }
  ::freeaddrinfo(res);
  throw Error("connect_to: cannot connect to " + host + ":" + service + ": " +
              std::strerror(last_errno));
}

}  // namespace ceresz::net
