#include "net/socket.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "common/error.h"

namespace ceresz::net {

namespace {

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::set_nodelay() noexcept {
  if (fd_ < 0) return;
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void Socket::write_all(std::span<const u8> bytes) const {
  CERESZ_CHECK(fd_ >= 0, "Socket::write_all: socket is closed");
  std::size_t done = 0;
  while (done < bytes.size()) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
    const ssize_t n = ::send(fd_, bytes.data() + done, bytes.size() - done,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(errno_message("Socket::write_all"));
    }
    done += static_cast<std::size_t>(n);
  }
}

void Socket::read_exact(std::span<u8> out) const {
  if (!read_exact_or_eof(out)) {
    throw Error("Socket::read_exact: connection closed by peer");
  }
}

bool Socket::read_exact_or_eof(std::span<u8> out) const {
  CERESZ_CHECK(fd_ >= 0, "Socket::read_exact: socket is closed");
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::recv(fd_, out.data() + done, out.size() - done, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(errno_message("Socket::read_exact"));
    }
    if (n == 0) {
      if (done == 0) return false;  // clean EOF between frames
      throw Error("Socket::read_exact: connection truncated mid-frame");
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

TcpListener::TcpListener(u16 port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw Error(errno_message("TcpListener: socket"));

  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string msg = errno_message("TcpListener: bind");
    close();
    throw Error(msg);
  }
  if (::listen(fd_, backlog) != 0) {
    const std::string msg = errno_message("TcpListener: listen");
    close();
    throw Error(msg);
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string msg = errno_message("TcpListener: getsockname");
    close();
    throw Error(msg);
  }
  port_ = ntohs(bound.sin_port);
}

Socket TcpListener::accept_connection() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // shutdown() (EINVAL on Linux) or close() ends the accept loop; any
    // other error also reads as "listener is done" rather than crashing
    // the server, matching how long-running daemons treat accept errors.
    return Socket();
  }
}

void TcpListener::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket connect_to(const std::string& host, u16 port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    throw Error("connect_to: cannot resolve " + host + ": " +
                gai_strerror(rc));
  }

  int last_errno = 0;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(res);
      Socket sock(fd);
      sock.set_nodelay();
      return sock;
    }
    last_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(res);
  throw Error("connect_to: cannot connect to " + host + ":" + service + ": " +
              std::strerror(last_errno));
}

}  // namespace ceresz::net
