// Pooled request/response buffers for the compression service, after
// memec's chunk/packet pools: a service handling a steady request
// stream should recycle its large I/O buffers instead of hitting the
// allocator once per frame.
//
// BufferPool keeps up to `max_pooled` retired std::vector<u8> buffers
// (capacity intact, size reset to 0) on a mutex-guarded free list.
// acquire() hands out a pooled buffer when one is available (a HIT —
// its grown capacity is reused) or a fresh one otherwise (a MISS); the
// RAII PooledBuffer returns the vector on destruction, so buffers flow
// back no matter which thread finishes the request. Optional hit/miss
// counters feed the ceresz_server_pool_* metrics.
#pragma once

#include <mutex>
#include <utility>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"

namespace ceresz::net {

class BufferPool;

/// Move-only handle to a pooled byte buffer. Dereferences to the
/// underlying std::vector<u8>; releases it back to its pool (if any)
/// when destroyed. A default-constructed PooledBuffer owns a plain
/// unpooled vector, so code paths without a pool work unchanged.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(BufferPool* pool, std::vector<u8> bytes)
      : pool_(pool), bytes_(std::move(bytes)) {}

  PooledBuffer(PooledBuffer&& other) noexcept
      : pool_(other.pool_), bytes_(std::move(other.bytes_)) {
    other.pool_ = nullptr;
  }
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      release();
      pool_ = other.pool_;
      bytes_ = std::move(other.bytes_);
      other.pool_ = nullptr;
    }
    return *this;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  ~PooledBuffer() { release(); }

  std::vector<u8>& operator*() { return bytes_; }
  std::vector<u8>* operator->() { return &bytes_; }
  const std::vector<u8>& operator*() const { return bytes_; }
  const std::vector<u8>* operator->() const { return &bytes_; }

  void release();

 private:
  BufferPool* pool_ = nullptr;
  std::vector<u8> bytes_;
};

class BufferPool {
 public:
  /// `max_pooled` caps the free list; beyond it, retired buffers are
  /// simply freed (bounding idle memory). `hits`/`misses` are optional
  /// borrowed counters (must outlive the pool).
  explicit BufferPool(std::size_t max_pooled, obs::Counter* hits = nullptr,
                      obs::Counter* misses = nullptr)
      : max_pooled_(max_pooled), hits_(hits), misses_(misses) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  PooledBuffer acquire() {
    {
      std::lock_guard lock(mu_);
      if (!free_.empty()) {
        std::vector<u8> buf = std::move(free_.back());
        free_.pop_back();
        if (hits_) hits_->add(1);
        return PooledBuffer(this, std::move(buf));
      }
    }
    if (misses_) misses_->add(1);
    return PooledBuffer(this, {});
  }

  /// Buffers currently idle on the free list.
  std::size_t pooled() const {
    std::lock_guard lock(mu_);
    return free_.size();
  }

 private:
  friend class PooledBuffer;

  void put_back(std::vector<u8> bytes) {
    bytes.clear();  // keeps capacity — that is the point of the pool
    std::lock_guard lock(mu_);
    if (free_.size() < max_pooled_) free_.push_back(std::move(bytes));
  }

  const std::size_t max_pooled_;
  obs::Counter* const hits_;
  obs::Counter* const misses_;
  mutable std::mutex mu_;
  std::vector<std::vector<u8>> free_;
};

inline void PooledBuffer::release() {
  if (pool_ != nullptr) {
    pool_->put_back(std::move(bytes_));
    pool_ = nullptr;
  }
  bytes_ = std::vector<u8>();
}

}  // namespace ceresz::net
