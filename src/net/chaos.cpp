#include "net/chaos.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "obs/log.h"

namespace ceresz::net {

namespace {

/// The relay buffer. Small enough that byte-positioned faults (truncate,
/// corrupt) land inside a chunk with fine granularity, big enough that
/// multi-MB payloads do not crawl.
constexpr std::size_t kRelayChunk = 16 * 1024;

}  // namespace

const char* chaos_fault_name(ChaosFaultKind kind) {
  switch (kind) {
    case ChaosFaultKind::kNone: return "none";
    case ChaosFaultKind::kResetOnAccept: return "reset_on_accept";
    case ChaosFaultKind::kBlackhole: return "blackhole";
    case ChaosFaultKind::kDelay: return "delay";
    case ChaosFaultKind::kShortWrite: return "short_write";
    case ChaosFaultKind::kTruncate: return "truncate";
    case ChaosFaultKind::kCorrupt: return "corrupt";
  }
  return "unknown";
}

// --- NetFaultPlan -----------------------------------------------------------

NetFaultPlan NetFaultPlan::random(u64 seed, const NetChaosSpec& spec) {
  NetFaultPlan plan(seed);
  plan.has_spec_ = true;
  plan.spec_ = spec;
  return plan;
}

void NetFaultPlan::reset_on_accept(u64 conn) {
  explicit_[conn] = ConnFault{.kind = ChaosFaultKind::kResetOnAccept};
}

void NetFaultPlan::blackhole(u64 conn) {
  explicit_[conn] = ConnFault{.kind = ChaosFaultKind::kBlackhole};
}

void NetFaultPlan::delay(u64 conn, u32 ms) {
  explicit_[conn] = ConnFault{.kind = ChaosFaultKind::kDelay, .delay_ms = ms};
}

void NetFaultPlan::short_write(u64 conn, ChaosDir dir, u32 slice_bytes,
                               u32 slice_delay_ms) {
  CERESZ_CHECK(slice_bytes > 0,
               "NetFaultPlan::short_write: slice_bytes must be positive");
  explicit_[conn] = ConnFault{.kind = ChaosFaultKind::kShortWrite,
                              .dir = dir,
                              .delay_ms = slice_delay_ms,
                              .slice_bytes = slice_bytes};
}

void NetFaultPlan::truncate(u64 conn, ChaosDir dir, u64 after_bytes) {
  explicit_[conn] = ConnFault{.kind = ChaosFaultKind::kTruncate,
                              .dir = dir,
                              .trigger_offset = after_bytes};
}

void NetFaultPlan::corrupt_byte(u64 conn, ChaosDir dir, u64 byte_offset,
                                u8 bit) {
  CERESZ_CHECK(bit < 8, "NetFaultPlan::corrupt_byte: bit must be 0..7");
  explicit_[conn] = ConnFault{.kind = ChaosFaultKind::kCorrupt,
                              .dir = dir,
                              .trigger_offset = byte_offset,
                              .bit = bit};
}

ConnFault NetFaultPlan::fault_for(u64 conn) const {
  if (const auto it = explicit_.find(conn); it != explicit_.end()) {
    return it->second;
  }
  if (!has_spec_) return ConnFault{};

  // A per-connection stream seeded from (plan seed, connection index):
  // the fault for index i never depends on how many other indices were
  // queried, so concurrent accepts see the same schedule as a fresh
  // replay of the plan.
  Rng rng(seed_ ^ SplitMix64(conn * 0x9e3779b97f4a7c15ULL + 1).next());
  const f64 roll = rng.next_double();
  const NetChaosSpec& s = spec_;
  f64 edge = s.reset_frac;
  if (roll < edge) return ConnFault{.kind = ChaosFaultKind::kResetOnAccept};
  edge += s.blackhole_frac;
  if (roll < edge) return ConnFault{.kind = ChaosFaultKind::kBlackhole};
  edge += s.delay_frac;
  if (roll < edge) {
    const u32 span = s.max_delay_ms > s.min_delay_ms
                         ? s.max_delay_ms - s.min_delay_ms
                         : 0;
    const u32 ms =
        s.min_delay_ms +
        (span == 0 ? 0 : static_cast<u32>(rng.next_below(span + 1)));
    return ConnFault{.kind = ChaosFaultKind::kDelay, .delay_ms = ms};
  }
  const auto dir_for = [&rng] {
    return rng.next_u64() % 2 == 0 ? ChaosDir::kClientToServer
                                   : ChaosDir::kServerToClient;
  };
  edge += s.short_write_frac;
  if (roll < edge) {
    return ConnFault{.kind = ChaosFaultKind::kShortWrite,
                     .dir = dir_for(),
                     .delay_ms = s.slice_delay_ms,
                     .slice_bytes = s.slice_bytes == 0 ? 1 : s.slice_bytes};
  }
  edge += s.truncate_frac;
  if (roll < edge) {
    const u64 window = s.truncate_window < 2 ? 2 : s.truncate_window;
    return ConnFault{.kind = ChaosFaultKind::kTruncate,
                     .dir = dir_for(),
                     .trigger_offset = 1 + rng.next_below(window - 1)};
  }
  edge += s.corrupt_frac;
  if (roll < edge) {
    const u64 window = s.corrupt_window < 2 ? 2 : s.corrupt_window;
    const ChaosDir dir = dir_for();
    const u64 offset = 1 + rng.next_below(window - 1);
    return ConnFault{.kind = ChaosFaultKind::kCorrupt,
                     .dir = dir,
                     .trigger_offset = offset,
                     .bit = static_cast<u8>(rng.next_below(8))};
  }
  return ConnFault{};
}

// --- ChaosProxy -------------------------------------------------------------

/// One proxied connection: the accepted client socket, the upstream
/// server socket, the fault to apply, and the relay threads serving it.
/// Held by shared_ptr so stop() can hang up sockets while relay threads
/// are still running.
struct ChaosProxy::Link {
  Socket client;
  Socket upstream;
  ConnFault fault;
  std::thread c2s;
  std::thread s2c;
  std::atomic<int> live_threads{0};
};

ChaosProxy::ChaosProxy(std::string upstream_host, u16 upstream_port,
                       NetFaultPlan plan)
    : upstream_host_(std::move(upstream_host)),
      upstream_port_(upstream_port),
      plan_(std::move(plan)) {}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::start() {
  CERESZ_CHECK(!running_.load(), "ChaosProxy::start: already running");
  listener_ = std::make_unique<TcpListener>(0);
  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

u16 ChaosProxy::port() const {
  CERESZ_CHECK(listener_ != nullptr, "ChaosProxy::port: not started");
  return listener_->port();
}

void ChaosProxy::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  if (listener_) listener_->shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<Link>> links;
  {
    std::lock_guard<std::mutex> lock(links_mu_);
    links.swap(links_);
  }
  for (auto& link : links) {
    link->client.shutdown_both();
    link->upstream.shutdown_both();
  }
  for (auto& link : links) {
    if (link->c2s.joinable()) link->c2s.join();
    if (link->s2c.joinable()) link->s2c.join();
  }
  listener_.reset();
}

void ChaosProxy::reap_finished_locked() {
  std::erase_if(links_, [](const std::shared_ptr<Link>& link) {
    if (link->live_threads.load() != 0) return false;
    if (link->c2s.joinable()) link->c2s.join();
    if (link->s2c.joinable()) link->s2c.join();
    return true;
  });
}

void ChaosProxy::accept_loop() {
  for (;;) {
    Socket client = listener_->accept_connection();
    if (!client.valid() || stopping_.load()) return;
    const u64 index = next_conn_index_++;
    const ConnFault fault = plan_.fault_for(index);
    stats_.connections.fetch_add(1);
    if (logger_ != nullptr && fault.kind != ChaosFaultKind::kNone) {
      logger_->info("chaos.fault",
                    {{"conn", index},
                     {"kind", chaos_fault_name(fault.kind)},
                     {"dir", fault.dir == ChaosDir::kClientToServer
                                 ? "c2s"
                                 : "s2c"}});
    }

    if (fault.kind == ChaosFaultKind::kResetOnAccept) {
      stats_.resets.fetch_add(1);
      client.reset_hard();
      continue;
    }

    auto link = std::make_shared<Link>();
    link->client = std::move(client);
    link->fault = fault;

    if (fault.kind == ChaosFaultKind::kBlackhole) {
      stats_.blackholes.fetch_add(1);
      link->live_threads.store(1);
      link->c2s = std::thread([this, link] { blackhole_loop(link); });
    } else {
      try {
        link->upstream = connect_to(upstream_host_, upstream_port_);
      } catch (const Error& e) {
        stats_.upstream_failures.fetch_add(1);
        if (logger_ != nullptr) {
          logger_->warn("chaos.upstream_failure",
                        {{"conn", index}, {"error", e.what()}});
        }
        link->client.reset_hard();
        continue;
      }
      link->live_threads.store(2);
      link->c2s = std::thread(
          [this, link] { relay(link, ChaosDir::kClientToServer); });
      link->s2c = std::thread(
          [this, link] { relay(link, ChaosDir::kServerToClient); });
    }

    std::lock_guard<std::mutex> lock(links_mu_);
    reap_finished_locked();
    links_.push_back(std::move(link));
  }
}

void ChaosProxy::blackhole_loop(std::shared_ptr<Link> link) {
  // Swallow whatever arrives, answer nothing, until the client gives up
  // or stop() hangs us up. The probe interval keeps stop() latency low.
  std::vector<u8> sink(kRelayChunk);
  try {
    while (!stopping_.load()) {
      if (!link->client.wait_readable(50)) continue;
      if (link->client.read_some(sink) == 0) break;  // EOF
    }
  } catch (const Error&) {
    // Hung-up socket: the client reset or stop() intervened.
  }
  link->live_threads.fetch_sub(1);
}

void ChaosProxy::relay(std::shared_ptr<Link> link, ChaosDir dir) {
  Socket& src = dir == ChaosDir::kClientToServer ? link->client
                                                 : link->upstream;
  Socket& dst = dir == ChaosDir::kClientToServer ? link->upstream
                                                 : link->client;
  const ConnFault& fault = link->fault;
  const bool armed = fault.dir == dir;
  u64 forwarded = 0;
  bool delayed = false;

  std::vector<u8> buf(kRelayChunk);
  try {
    for (;;) {
      std::size_t n = src.read_some(buf);
      if (n == 0) {
        // Clean EOF: propagate the half-close so in-flight responses in
        // the other direction still drain.
        dst.shutdown_write();
        break;
      }
      std::span<u8> chunk(buf.data(), n);

      if (fault.kind == ChaosFaultKind::kDelay && !delayed) {
        // kDelay holds the first byte in *both* directions (dir unused):
        // request latency and response latency, like a congested path.
        delayed = true;
        stats_.delays.fetch_add(1);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(fault.delay_ms));
      }

      if (armed && fault.kind == ChaosFaultKind::kCorrupt &&
          fault.trigger_offset >= forwarded &&
          fault.trigger_offset < forwarded + n) {
        chunk[static_cast<std::size_t>(fault.trigger_offset - forwarded)] ^=
            static_cast<u8>(1u << fault.bit);
        stats_.corruptions.fetch_add(1);
      }

      if (armed && fault.kind == ChaosFaultKind::kTruncate) {
        const u64 budget = fault.trigger_offset > forwarded
                               ? fault.trigger_offset - forwarded
                               : 0;
        if (budget < n) {
          if (budget > 0) {
            dst.write_all(chunk.first(static_cast<std::size_t>(budget)));
          }
          stats_.truncations.fetch_add(1);
          link->client.shutdown_both();
          link->upstream.shutdown_both();
          break;
        }
      }

      if (armed && fault.kind == ChaosFaultKind::kShortWrite) {
        // Dribble: forward in slices with a pause between each, the
        // impolite-peer pattern the server's io_timeout must tolerate
        // (bytes do keep flowing) and a stalled-peer timeout must not
        // trip on.
        std::size_t off = 0;
        while (off < n) {
          const std::size_t slice =
              std::min<std::size_t>(fault.slice_bytes, n - off);
          dst.write_all(chunk.subspan(off, slice));
          stats_.short_write_slices.fetch_add(1);
          off += slice;
          if (off < n && fault.delay_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(fault.delay_ms));
          }
        }
      } else {
        dst.write_all(chunk);
      }
      forwarded += n;
      stats_.relayed_bytes.fetch_add(n);
    }
  } catch (const Error&) {
    // Reset, EPIPE, or stop()'s shutdown: hang up both sides so the
    // opposite relay thread unblocks too.
    link->client.shutdown_both();
    link->upstream.shutdown_both();
  }
  link->live_threads.fetch_sub(1);
}

}  // namespace ceresz::net
