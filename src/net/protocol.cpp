#include "net/protocol.h"

#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/checksum.h"
#include "common/error.h"

namespace ceresz::net {

namespace {

constexpr char kMagic[4] = {'C', 'S', 'N', 'P'};

void append_u16(std::vector<u8>& out, u16 v) {
  out.push_back(static_cast<u8>(v & 0xff));
  out.push_back(static_cast<u8>(v >> 8));
}

void append_u32(std::vector<u8>& out, u32 v) {
  for (int b = 0; b < 4; ++b) {
    out.push_back(static_cast<u8>((v >> (8 * b)) & 0xff));
  }
}

void append_u64(std::vector<u8>& out, u64 v) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<u8>((v >> (8 * b)) & 0xff));
  }
}

u16 read_u16(const u8* p) {
  return static_cast<u16>(p[0] | (static_cast<u16>(p[1]) << 8));
}

u32 read_u32(const u8* p) {
  u32 v = 0;
  for (int b = 0; b < 4; ++b) v |= static_cast<u32>(p[b]) << (8 * b);
  return v;
}

u64 read_u64(const u8* p) {
  u64 v = 0;
  for (int b = 0; b < 8; ++b) v |= static_cast<u64>(p[b]) << (8 * b);
  return v;
}

u64 f64_bits(f64 v) {
  u64 bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

f64 bits_f64(u64 bits) {
  f64 v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// The bulk f32 payload is accessed in place (no copy of multi-MB
/// request bodies); that needs 4-byte alignment, which every buffer the
/// service allocates provides (vector data + a 4-multiple offset). A
/// misaligned view can only come from a hand-built hostile frame slice,
/// so it is rejected like any other malformed payload.
std::span<const f32> f32_view(const u8* p, u64 count) {
  CERESZ_CHECK(reinterpret_cast<std::uintptr_t>(p) % alignof(f32) == 0,
               "net: f32 payload is misaligned");
  return {reinterpret_cast<const f32*>(p), static_cast<std::size_t>(count)};
}

}  // namespace

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kPing: return "PING";
    case Opcode::kCompress: return "COMPRESS";
    case Opcode::kDecompress: return "DECOMPRESS";
    case Opcode::kStats: return "STATS";
  }
  return "UNKNOWN";
}

const char* status_name(Status st) {
  switch (st) {
    case Status::kOk: return "OK";
    case Status::kMalformed: return "MALFORMED";
    case Status::kUnsupported: return "UNSUPPORTED";
    case Status::kBusy: return "BUSY";
    case Status::kDeadlineExpired: return "DEADLINE_EXPIRED";
    case Status::kBadRequest: return "BAD_REQUEST";
    case Status::kCorruptStream: return "CORRUPT_STREAM";
    case Status::kInternal: return "INTERNAL";
    case Status::kDraining: return "DRAINING";
  }
  return "UNKNOWN";
}

void append_frame_header(std::vector<u8>& out, const FrameHeader& header) {
  CERESZ_CHECK(header.version == kProtocolVersion ||
                   header.version == kProtocolVersionV3,
               "net: cannot build a frame with an unknown version");
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(header.version);
  out.push_back(static_cast<u8>(header.opcode));
  append_u16(out, static_cast<u16>(header.status));
  append_u64(out, header.request_id);
  append_u64(out, header.payload_bytes);
  append_u32(out, header.payload_crc);
  append_u32(out, header.tenant.tenant_id);
  out.push_back(header.tenant.priority);
  out.push_back(0);  // reserved
  out.push_back(0);  // reserved
  out.push_back(0);  // reserved
  if (header.version == kProtocolVersion) {
    append_u64(out, header.trace.trace_id);
    append_u64(out, header.trace.parent_span_id);
  }
}

FrameHeader parse_frame_header(std::span<const u8> bytes, u64 max_payload) {
  CERESZ_CHECK(bytes.size() >= kFrameHeaderBytes,
               "net: frame header is truncated");
  const u8* p = bytes.data();
  CERESZ_CHECK(std::memcmp(p, kMagic, 4) == 0,
               "net: bad frame magic (not a CSNP frame)");
  FrameHeader h;
  h.version = p[4];
  CERESZ_CHECK(h.version == kProtocolVersion ||
                   h.version == kProtocolVersionV3,
               "net: unsupported protocol version");
  const u8 op = p[5];
  CERESZ_CHECK(op >= static_cast<u8>(Opcode::kPing) &&
                   op <= static_cast<u8>(Opcode::kStats),
               "net: unknown opcode");
  h.opcode = static_cast<Opcode>(op);
  const u16 st = read_u16(p + 6);
  CERESZ_CHECK(st <= static_cast<u16>(Status::kDraining),
               "net: unknown status code");
  h.status = static_cast<Status>(st);
  h.request_id = read_u64(p + 8);
  h.payload_bytes = read_u64(p + 16);
  CERESZ_CHECK(h.payload_bytes <= max_payload,
               "net: declared payload exceeds the frame-size bound");
  h.payload_crc = read_u32(p + 24);
  h.tenant.tenant_id = read_u32(p + 28);
  h.tenant.priority = p[32];
  CERESZ_CHECK(h.tenant.priority <= kPriorityMax,
               "net: unknown frame priority");
  CERESZ_CHECK(p[33] == 0 && p[34] == 0 && p[35] == 0,
               "net: frame header has reserved bytes set");
  if (h.version == kProtocolVersion) {
    CERESZ_CHECK(bytes.size() >= kFrameHeaderBytesV4,
                 "net: v4 frame header is truncated");
    h.trace.trace_id = read_u64(p + 36);
    h.trace.parent_span_id = read_u64(p + 44);
  }
  return h;
}

// --- COMPRESS ---------------------------------------------------------------

void append_compress_request(std::vector<u8>& out,
                             const CompressRequest& req) {
  append_u32(out, req.bound.mode == core::ErrorBound::Mode::kAbsolute ? 0 : 1);
  append_u32(out, req.deadline_ms);
  append_u64(out, f64_bits(req.bound.value));
  append_u64(out, req.data.size());
  const std::size_t pos = out.size();
  out.resize(pos + req.data.size() * sizeof(f32));
  if (!req.data.empty()) {
    std::memcpy(out.data() + pos, req.data.data(),
                req.data.size() * sizeof(f32));
  }
}

CompressRequest decode_compress_request(std::span<const u8> payload) {
  constexpr std::size_t kFixed = 24;
  CERESZ_CHECK(payload.size() >= kFixed,
               "net: COMPRESS payload is truncated");
  const u8* p = payload.data();
  const u32 mode = read_u32(p);
  CERESZ_CHECK(mode <= 1, "net: COMPRESS payload has an unknown bound mode");
  CompressRequest req;
  req.bound.mode = mode == 0 ? core::ErrorBound::Mode::kAbsolute
                             : core::ErrorBound::Mode::kValueRangeRelative;
  req.deadline_ms = read_u32(p + 4);
  req.bound.value = bits_f64(read_u64(p + 8));
  CERESZ_CHECK(std::isfinite(req.bound.value) && req.bound.value > 0.0,
               "net: COMPRESS payload has a non-positive or non-finite "
               "error bound");
  const u64 count = read_u64(p + 16);
  // Overflow-safe cross-check: the element count must account for the
  // remaining payload exactly, so count * 4 never needs to be computed
  // before it is known to fit.
  const u64 remaining = payload.size() - kFixed;
  CERESZ_CHECK(remaining % sizeof(f32) == 0,
               "net: COMPRESS payload size is not a whole number of f32s");
  CERESZ_CHECK(count == remaining / sizeof(f32),
               "net: COMPRESS element count disagrees with the payload size");
  req.data = f32_view(p + kFixed, count);
  return req;
}

// --- DECOMPRESS -------------------------------------------------------------

void append_decompress_request(std::vector<u8>& out,
                               const DecompressRequest& req) {
  append_u32(out, 0);  // flags, reserved
  append_u32(out, req.deadline_ms);
  append_u64(out, req.stream.size());
  out.insert(out.end(), req.stream.begin(), req.stream.end());
}

DecompressRequest decode_decompress_request(std::span<const u8> payload) {
  constexpr std::size_t kFixed = 16;
  CERESZ_CHECK(payload.size() >= kFixed,
               "net: DECOMPRESS payload is truncated");
  const u8* p = payload.data();
  CERESZ_CHECK(read_u32(p) == 0,
               "net: DECOMPRESS payload has unknown flags set");
  DecompressRequest req;
  req.deadline_ms = read_u32(p + 4);
  const u64 stream_bytes = read_u64(p + 8);
  CERESZ_CHECK(stream_bytes == payload.size() - kFixed,
               "net: DECOMPRESS stream length disagrees with the payload "
               "size");
  req.stream = payload.subspan(kFixed);
  return req;
}

// --- DECOMPRESS response ----------------------------------------------------

void append_decompress_response(std::vector<u8>& out,
                                std::span<const f32> values) {
  append_u64(out, values.size());
  const std::size_t pos = out.size();
  out.resize(pos + values.size() * sizeof(f32));
  if (!values.empty()) {
    std::memcpy(out.data() + pos, values.data(),
                values.size() * sizeof(f32));
  }
}

void decode_decompress_response(std::span<const u8> payload,
                                std::vector<f32>& values) {
  constexpr std::size_t kFixed = 8;
  CERESZ_CHECK(payload.size() >= kFixed,
               "net: DECOMPRESS response is truncated");
  const u64 count = read_u64(payload.data());
  const u64 remaining = payload.size() - kFixed;
  CERESZ_CHECK(remaining % sizeof(f32) == 0 &&
                   count == remaining / sizeof(f32),
               "net: DECOMPRESS response element count disagrees with its "
               "size");
  values.resize(static_cast<std::size_t>(count));
  if (remaining > 0) {
    std::memcpy(values.data(), payload.data() + kFixed, remaining);
  }
}

// --- whole frames -----------------------------------------------------------

FrameMeta echo_meta(const FrameHeader& request) {
  return FrameMeta(request.tenant, request.trace, request.version);
}

void append_frame(std::vector<u8>& out, Opcode op, Status status,
                  u64 request_id, std::span<const u8> payload,
                  FrameMeta meta) {
  FrameHeader h;
  h.version = meta.version;
  h.opcode = op;
  h.status = status;
  h.request_id = request_id;
  h.payload_bytes = payload.size();
  h.payload_crc = payload.empty() ? 0 : crc32c(payload);
  h.tenant = meta.tenant;
  h.trace = meta.trace;
  out.reserve(out.size() + frame_header_bytes(meta.version) +
              payload.size());
  append_frame_header(out, h);
  out.insert(out.end(), payload.begin(), payload.end());
}

bool payload_crc_ok(const FrameHeader& header, std::span<const u8> payload) {
  return header.payload_crc == (payload.empty() ? 0 : crc32c(payload));
}

void append_error_frame(std::vector<u8>& out, Opcode op, Status status,
                        u64 request_id, std::string_view message,
                        FrameMeta meta) {
  append_frame(out, op, status, request_id,
               std::span<const u8>(
                   reinterpret_cast<const u8*>(message.data()),
                   message.size()),
               meta);
}

}  // namespace ceresz::net
