#include "net/server.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/timer.h"
#include "engine/bounded_queue.h"
#include "net/buffer_pool.h"
#include "net/socket.h"
#include "obs/log.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "tenant/coordinator.h"

namespace ceresz::net {

namespace {

/// Handles into the server registry; looked up once at construction so
/// the serving hot path never takes the registry's creation mutex.
struct ServerMetrics {
  obs::Counter& connections;
  obs::Gauge& active_connections;
  obs::Counter& requests;
  obs::Counter& ping_requests;
  obs::Counter& stats_requests;
  obs::Counter& compress_requests;
  obs::Counter& decompress_requests;
  obs::Counter& busy_rejected;
  obs::Counter& deadline_expired;
  obs::Counter& malformed;
  obs::Counter& error_responses;
  obs::Counter& request_bytes;
  obs::Counter& response_bytes;
  obs::Gauge& inflight;
  obs::Gauge& inflight_high_water;
  obs::Histogram& compress_seconds;
  obs::Histogram& decompress_seconds;
  obs::Counter& pool_hits;
  obs::Counter& pool_misses;
  obs::Counter& idle_reaped;
  obs::Counter& io_timeouts;
  obs::Counter& crc_rejected;
  obs::Counter& drain_rejected;
  obs::Gauge& draining;
  obs::Counter& tenant_shed;

  explicit ServerMetrics(obs::MetricsRegistry& reg)
      : connections(reg.counter(kMetricConnections)),
        active_connections(reg.gauge(kMetricActiveConnections)),
        requests(reg.counter(kMetricRequests)),
        ping_requests(reg.counter(kMetricPingRequests)),
        stats_requests(reg.counter(kMetricStatsRequests)),
        compress_requests(reg.counter(kMetricCompressRequests)),
        decompress_requests(reg.counter(kMetricDecompressRequests)),
        busy_rejected(reg.counter(kMetricBusyRejected)),
        deadline_expired(reg.counter(kMetricDeadlineExpired)),
        malformed(reg.counter(kMetricMalformed)),
        error_responses(reg.counter(kMetricErrorResponses)),
        request_bytes(reg.counter(kMetricRequestBytes)),
        response_bytes(reg.counter(kMetricResponseBytes)),
        inflight(reg.gauge(kMetricInflight)),
        inflight_high_water(reg.gauge(kMetricInflightHighWater)),
        compress_seconds(reg.histogram(
            kMetricCompressSeconds,
            obs::MetricsRegistry::default_seconds_buckets())),
        decompress_seconds(reg.histogram(
            kMetricDecompressSeconds,
            obs::MetricsRegistry::default_seconds_buckets())),
        pool_hits(reg.counter(kMetricPoolHits)),
        pool_misses(reg.counter(kMetricPoolMisses)),
        idle_reaped(reg.counter(kMetricIdleReaped)),
        io_timeouts(reg.counter(kMetricIoTimeouts)),
        crc_rejected(reg.counter(kMetricPayloadCrcRejected)),
        drain_rejected(reg.counter(kMetricDrainRejected)),
        draining(reg.gauge(kMetricDraining)),
        tenant_shed(reg.counter(kMetricTenantShed)) {}
};

/// One client connection. The reader thread owns the receive side; the
/// write mutex serializes responses from workers with BUSY/error frames
/// from the reader. `open` goes false on the first transport failure so
/// later sends become no-ops instead of repeated errors.
struct Connection {
  Socket sock;
  std::mutex write_mu;
  std::atomic<bool> open{true};
};

}  // namespace

void declare_server_metrics(obs::MetricsRegistry& reg) {
  ServerMetrics declared(reg);
  (void)declared;
}

struct ServiceServer::Impl {
  /// A COMPRESS/DECOMPRESS frame admitted past the in-flight limit,
  /// waiting for (or being executed by) a worker.
  struct PendingRequest {
    std::shared_ptr<Connection> conn;
    FrameHeader header;
    PooledBuffer payload;
    u64 arrival_ns = 0;
  };

  struct ReaderSlot {
    std::thread thread;
    std::shared_ptr<Connection> conn;
  };

  Impl(ServiceServer& server, u64 max_inflight)
      : server_(server),
        options_(server.options_),
        m_(server.registry_),
        max_inflight_(max_inflight),
        pool_(options_.pool_buffers, &m_.pool_hits, &m_.pool_misses),
        queue_(static_cast<std::size_t>(max_inflight)) {
    if (options_.tenancy.enabled) {
      tenant::CoordinatorOptions copt;
      copt.rows = options_.tenancy.wafer_rows;
      copt.cols = options_.tenancy.wafer_cols;
      copt.max_tenants = options_.tenancy.max_tenants;
      copt.metrics = &server.registry_;
      coordinator_ = std::make_unique<tenant::WaferCoordinator>(copt);
    }
  }

  ServiceServer& server_;
  const ServerOptions& options_;
  ServerMetrics m_;
  const u64 max_inflight_;
  BufferPool pool_;
  engine::BoundedQueue<PendingRequest> queue_;  // after pool_: drains first
  std::unique_ptr<tenant::WaferCoordinator> coordinator_;

  std::unique_ptr<TcpListener> listener_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex conn_mu_;
  std::vector<ReaderSlot> readers_;

  std::atomic<u64> inflight_{0};
  std::atomic<u64> inflight_high_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};

  // --- response plumbing ----------------------------------------------------

  void send(Connection& conn, std::span<const u8> frame) {
    std::lock_guard lock(conn.write_mu);
    if (!conn.open.load(std::memory_order_acquire)) return;
    try {
      conn.sock.write_all(frame);
      m_.response_bytes.add(frame.size());
    } catch (const Error&) {
      // The peer is gone; the reader will notice on its next read.
      conn.open.store(false, std::memory_order_release);
      conn.sock.shutdown_both();
    }
  }

  void send_error(Connection& conn, Opcode op, Status status, u64 request_id,
                  std::string_view message, FrameMeta meta = {}) {
    m_.error_responses.add(1);
    PooledBuffer out = pool_.acquire();
    append_error_frame(*out, op, status, request_id, message, meta);
    send(conn, *out);
  }

  // --- tenancy --------------------------------------------------------------

  /// First sight of a tenant admits it against the configured quota
  /// (scaled by the frame's priority); later frames just check the
  /// lease. Returns false — with the coordinator's verdict in `reason`
  /// — when the tenant has no lease and cannot get one right now.
  bool tenant_admitted(const FrameHeader& header, std::string& reason) {
    const tenant::TenantId id = header.tenant.tenant_id;
    if (coordinator_->lease_of(id).has_value()) return true;
    tenant::TenantSpec spec;
    spec.id = id;
    spec.priority = static_cast<tenant::Priority>(header.tenant.priority);
    const f64 scale = spec.priority == tenant::Priority::kInteractive ? 2.0
                      : spec.priority == tenant::Priority::kBatch     ? 0.5
                                                                      : 1.0;
    spec.min_throughput_gbps = options_.tenancy.default_quota_gbps * scale;
    const tenant::AdmissionResult r = coordinator_->admit(spec);
    if (r.verdict == tenant::AdmissionVerdict::kAdmitted) return true;
    // Two readers can race the first admission; the loser's "already
    // active" rejection means the tenant IS admitted.
    if (coordinator_->lease_of(id).has_value()) return true;
    reason = r.reason;
    return false;
  }

  // --- admission ------------------------------------------------------------

  void note_inflight(u64 now_inflight) {
    m_.inflight.set(static_cast<f64>(now_inflight));
    u64 high = inflight_high_.load(std::memory_order_relaxed);
    while (now_inflight > high &&
           !inflight_high_.compare_exchange_weak(high, now_inflight,
                                                 std::memory_order_relaxed)) {
    }
    m_.inflight_high_water.set(
        static_cast<f64>(inflight_high_.load(std::memory_order_relaxed)));
  }

  // --- reader ---------------------------------------------------------------

  void reader_loop(std::shared_ptr<Connection> conn) {
    std::array<u8, kFrameHeaderBytesV4> hdr_bytes;
    for (;;) {
      // Between frames: wait for the next header byte without
      // committing to a read. Idle time is budgeted separately
      // (idle_timeout_ms; 0 = unbounded) from mid-frame stalls
      // (io_timeout_ms), so a polite keep-alive connection is never
      // reaped by the slow-loris defense — only by the idle reaper.
      // stop()'s shutdown_both wakes this poll as readable-EOF.
      if (!conn->sock.wait_readable(options_.idle_timeout_ms)) {
        m_.idle_reaped.add(1);
        break;
      }
      // Pull the 36-byte common prefix, peek the version byte, and read
      // the v4 trace tail when it is there — v3 clients are parsed from
      // the prefix alone, exactly as before.
      std::size_t hdr_len = kFrameHeaderBytes;
      try {
        if (!conn->sock.read_exact_or_eof(
                std::span<u8>(hdr_bytes.data(), kFrameHeaderBytes))) {
          break;
        }
        hdr_len = frame_header_bytes(hdr_bytes[4]);
        if (hdr_len > kFrameHeaderBytes) {
          conn->sock.read_exact(
              std::span<u8>(hdr_bytes.data() + kFrameHeaderBytes,
                            hdr_len - kFrameHeaderBytes));
        }
      } catch (const NetTimeout&) {
        m_.io_timeouts.add(1);  // slow-loris: header dribbled too slowly
        break;
      } catch (const Error&) {
        break;  // reset / shutdown-in-progress
      }

      FrameHeader header;
      try {
        header = parse_frame_header(
            std::span<const u8>(hdr_bytes.data(), hdr_len),
            options_.max_frame_payload);
      } catch (const Error& e) {
        // Framing is lost — there is no way to find the next frame
        // boundary in a byte stream with a corrupt header. Report and
        // hang up (the anti-bomb payload bound is enforced here too,
        // before any allocation).
        m_.malformed.add(1);
        if (options_.logger != nullptr) {
          options_.logger->warn("server.malformed_header",
                                {{"error", e.what()}});
        }
        send_error(*conn, Opcode::kPing, Status::kMalformed, 0, e.what());
        break;
      }

      PooledBuffer payload = pool_.acquire();
      payload->resize(static_cast<std::size_t>(header.payload_bytes));
      try {
        conn->sock.read_exact(*payload);
      } catch (const NetTimeout&) {
        m_.io_timeouts.add(1);  // payload stalled mid-frame
        break;
      } catch (const Error&) {
        break;  // truncated frame: peer died mid-send
      }
      m_.requests.add(1);
      m_.request_bytes.add(hdr_len + header.payload_bytes);

      if (!payload_crc_ok(header, *payload)) {
        // The frame arrived whole but its bytes do not match the CRC the
        // sender computed: in-flight corruption. Framing is intact, so
        // the connection survives — reject just this request, loudly.
        m_.crc_rejected.add(1);
        m_.malformed.add(1);
        if (options_.logger != nullptr) {
          options_.logger->warn("server.crc_rejected",
                                {{"request_id", header.request_id},
                                 {"tenant_id", header.tenant.tenant_id}});
        }
        send_error(*conn, header.opcode, Status::kMalformed,
                   header.request_id,
                   "request payload failed its CRC check "
                   "(in-flight corruption)",
                   echo_meta(header));
        continue;
      }

      switch (header.opcode) {
        case Opcode::kPing: {
          m_.ping_requests.add(1);
          // The PING payload doubles as a lifecycle probe: retrying
          // clients and load balancers read DRAINING here and move on.
          const std::string_view state =
              draining_.load(std::memory_order_acquire) ? "DRAINING"
                                                        : "SERVING";
          PooledBuffer out = pool_.acquire();
          append_frame(*out, Opcode::kPing, Status::kOk, header.request_id,
                       std::span<const u8>(
                           reinterpret_cast<const u8*>(state.data()),
                           state.size()),
                       echo_meta(header));
          send(*conn, *out);
          break;
        }
        case Opcode::kStats: {
          m_.stats_requests.add(1);
          const std::string json =
              obs::to_json(server_.registry_.snapshot());
          PooledBuffer out = pool_.acquire();
          append_frame(*out, Opcode::kStats, Status::kOk, header.request_id,
                       std::span<const u8>(
                           reinterpret_cast<const u8*>(json.data()),
                           json.size()),
                       echo_meta(header));
          send(*conn, *out);
          break;
        }
        case Opcode::kCompress:
        case Opcode::kDecompress: {
          // Every work request gets a trace id: v4 frames carry the
          // client's, v3 (and zero-trace v4) frames get one synthesized
          // here so server-side spans are always attributable. The
          // response echoes whatever the request carried, so v3 clients
          // see byte-identical frames.
          if (header.trace.trace_id == 0) {
            header.trace.trace_id = obs::next_trace_id();
          }
          const obs::TraceContextScope admit_scope(obs::TraceContext{
              header.trace.trace_id, header.trace.parent_span_id});
          const obs::SpanGuard admit_span(
              options_.tracer, "server.admit", "server", "request_id",
              static_cast<i64>(header.request_id), "tenant_id",
              static_cast<i64>(header.tenant.tenant_id));
          if (draining_.load(std::memory_order_acquire)) {
            // Drain mode: finish what was admitted, take nothing new.
            // The reader hangs up after the rejection so lingering
            // keep-alive connections cannot stall the exit.
            m_.drain_rejected.add(1);
            if (options_.logger != nullptr) {
              options_.logger->info("server.drain_rejected",
                                    {{"request_id", header.request_id},
                                     {"tenant_id", header.tenant.tenant_id}});
            }
            send_error(*conn, header.opcode, Status::kDraining,
                       header.request_id,
                       "server is draining; no new work accepted",
                       echo_meta(header));
            conn->open.store(false, std::memory_order_release);
            conn->sock.shutdown_both();
            m_.active_connections.add(-1.0);
            return;
          }
          // Tenant admission (CSNP v3): a nonzero tenant id must hold a
          // wafer lease before its work is accepted. A tenant the
          // coordinator rejects or queues is shed with BUSY — the same
          // retryable verdict as the in-flight limit, but decided by
          // the Formula (2)-(4) prediction instead of a counter.
          if (coordinator_ != nullptr && header.tenant.tenant_id != 0) {
            std::string reason;
            if (!tenant_admitted(header, reason)) {
              m_.tenant_shed.add(1);
              if (options_.logger != nullptr) {
                options_.logger->warn(
                    "server.tenant_shed",
                    {{"request_id", header.request_id},
                     {"tenant_id", header.tenant.tenant_id},
                     {"reason", reason}});
              }
              send_error(*conn, header.opcode, Status::kBusy,
                         header.request_id, reason, echo_meta(header));
              break;
            }
          }
          // Bounded in-flight admission (queued + executing). Beyond
          // the limit, shed load NOW: an explicit BUSY beats an
          // unbounded queue melting down under a traffic spike.
          const u64 now_inflight =
              inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
          if (now_inflight > max_inflight_) {
            inflight_.fetch_sub(1, std::memory_order_acq_rel);
            m_.busy_rejected.add(1);
            send_error(*conn, header.opcode, Status::kBusy,
                       header.request_id,
                       "server is at its in-flight request limit",
                       echo_meta(header));
            break;
          }
          note_inflight(now_inflight);
          PendingRequest req;
          req.conn = conn;
          req.header = header;
          req.payload = std::move(payload);
          req.arrival_ns = now_ns();
          // Capacity == max_inflight and admission counts executing
          // requests too, so the queue always has room; push can only
          // be refused once stop() closed the queue.
          if (!queue_.try_push(std::move(req))) {
            inflight_.fetch_sub(1, std::memory_order_acq_rel);
            return;  // shutting down
          }
          break;
        }
      }
    }
    conn->open.store(false, std::memory_order_release);
    conn->sock.shutdown_both();
    m_.active_connections.add(-1.0);
  }

  // --- workers --------------------------------------------------------------

  void worker_loop() {
    while (auto req = queue_.pop()) {
      handle(*req);
      const u64 now_inflight =
          inflight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
      m_.inflight.set(static_cast<f64>(now_inflight));
    }
  }

  /// Deadline for a request: its own deadline_ms, else the server
  /// default; 0 = none. The clock starts at frame arrival, so time
  /// spent waiting in the queue counts against the budget.
  u64 deadline_ns_for(u32 request_deadline_ms, u64 arrival_ns) const {
    const u32 ms = request_deadline_ms != 0 ? request_deadline_ms
                                            : options_.default_deadline_ms;
    return ms == 0 ? 0 : arrival_ns + static_cast<u64>(ms) * 1'000'000;
  }

  /// Engine options for one request: metrics flow into the server
  /// registry, and with a deadline the per-attempt watchdog is clamped
  /// to the remaining budget so a wedged chunk is cancelled through its
  /// CancelToken instead of wedging the connection.
  engine::EngineOptions engine_options(u64 deadline_ns) const {
    engine::EngineOptions eopt = options_.engine;
    eopt.metrics = &server_.registry_;
    if (options_.tracer != nullptr) {
      // The per-request engine records into the server tracer; its
      // chunk/pool spans inherit the request's trace id through the
      // ambient context installed by handle().
      eopt.tracer = options_.tracer;
    }
    if (deadline_ns != 0) {
      const u64 now = now_ns();
      const u64 remaining_ms =
          deadline_ns > now ? std::max<u64>(1, (deadline_ns - now) / 1'000'000)
                            : 1;
      if (eopt.retry.deadline_ms == 0 ||
          eopt.retry.deadline_ms > remaining_ms) {
        eopt.retry.deadline_ms = remaining_ms;
      }
    }
    return eopt;
  }

  void handle(PendingRequest& req) {
    const Opcode op = req.header.opcode;
    const u64 id = req.header.request_id;
    const TenantTag tag = req.header.tenant;
    const TraceTag trace = req.header.trace;  // trace_id synthesized on admit
    const FrameMeta meta = echo_meta(req.header);
    Connection& conn = *req.conn;
    obs::Histogram& latency = op == Opcode::kCompress
                                  ? m_.compress_seconds
                                  : m_.decompress_seconds;
    (op == Opcode::kCompress ? m_.compress_requests : m_.decompress_requests)
        .add(1);

    // Server-side span tree for this request: a "server.request" root
    // (recorded by finish, spanning arrival → response) whose span id
    // every worker-side span parents to through the ambient context,
    // and whose parent_span_id is the client attempt span that sent the
    // frame — the stitcher's join key.
    const u64 root_span = obs::next_span_id();
    const obs::TraceContextScope trace_scope(
        obs::TraceContext{trace.trace_id, root_span});
    if (options_.tracer != nullptr) {
      // Queue wait: frame arrival → a worker picked it up (now).
      obs::TraceEvent qe;
      qe.name = "server.queue_wait";
      qe.cat = "server";
      qe.ts_ns = options_.tracer->to_rel_ns(req.arrival_ns);
      const u64 picked = options_.tracer->now_rel_ns();
      qe.dur_ns = picked > qe.ts_ns ? picked - qe.ts_ns : 0;
      qe.arg1_name = "request_id";
      qe.arg1 = static_cast<i64>(id);
      options_.tracer->record(qe);
    }

    const auto finish = [&](const char* status) {
      const u64 end_ns = now_ns();
      const u64 total_ns =
          end_ns > req.arrival_ns ? end_ns - req.arrival_ns : 0;
      const f64 seconds = static_cast<f64>(total_ns) * 1e-9;
      latency.observe(seconds);
      if (options_.tracer != nullptr) {
        obs::TraceEvent ev;
        ev.name = "server.request";
        ev.cat = "server";
        ev.ts_ns = options_.tracer->to_rel_ns(req.arrival_ns);
        ev.dur_ns = total_ns;
        ev.arg1_name = "request_id";
        ev.arg1 = static_cast<i64>(id);
        ev.arg2_name = "tenant_id";
        ev.arg2 = static_cast<i64>(tag.tenant_id);
        ev.trace_id = trace.trace_id;
        ev.span_id = root_span;
        ev.parent_span_id = trace.parent_span_id;
        options_.tracer->record(ev);
      }
      if (options_.span_log != nullptr) {
        obs::SpanRecord rec;
        rec.trace_id = trace.trace_id;
        rec.request_id = id;
        rec.tenant_id = tag.tenant_id;
        rec.name = opcode_name(op);
        rec.status = status;
        rec.ts_ns = req.arrival_ns;
        rec.dur_ns = total_ns;
        options_.span_log->push(rec);
      }
      if (coordinator_ != nullptr && tag.tenant_id != 0) {
        // Per-tenant accounting next to the coordinator's lease
        // gauges: a queue-inclusive latency histogram and a request
        // counter per tenant id.
        server_.registry_
            .counter(tenant::tenant_metric_name(tag.tenant_id,
                                                "requests_total"))
            .add(1);
        server_.registry_
            .histogram(tenant::tenant_metric_name(
                           tag.tenant_id, tenant::kTenantRequestSecondsSuffix),
                       obs::MetricsRegistry::default_seconds_buckets())
            .observe(seconds);
      }
    };

    u64 deadline_ns = 0;
    try {
      if (op == Opcode::kCompress) {
        CompressRequest creq;
        {
          const obs::SpanGuard decode_span(options_.tracer, "server.decode",
                                           "server", "request_id",
                                           static_cast<i64>(id));
          creq = decode_compress_request(*req.payload);
        }
        deadline_ns = deadline_ns_for(creq.deadline_ms, req.arrival_ns);
        if (deadline_ns != 0 && now_ns() >= deadline_ns) {
          m_.deadline_expired.add(1);
          send_error(conn, op, Status::kDeadlineExpired, id,
                     "request deadline expired before execution started",
                     meta);
          finish("DEADLINE_EXPIRED");
          return;
        }
        const engine::ParallelEngine eng(engine_options(deadline_ns));
        engine::EngineResult result;
        {
          const obs::SpanGuard engine_span(options_.tracer, "server.engine",
                                           "server", "request_id",
                                           static_cast<i64>(id));
          result = eng.compress(creq.data, creq.bound);
        }
        if (deadline_ns != 0 && now_ns() >= deadline_ns) {
          m_.deadline_expired.add(1);
          send_error(conn, op, Status::kDeadlineExpired, id,
                     "request deadline expired during compression", meta);
          finish("DEADLINE_EXPIRED");
          return;
        }
        PooledBuffer out = pool_.acquire();
        {
          const obs::SpanGuard encode_span(options_.tracer, "server.encode",
                                           "server", "request_id",
                                           static_cast<i64>(id));
          append_frame(*out, op, Status::kOk, id, result.stream, meta);
        }
        const obs::SpanGuard write_span(options_.tracer, "server.write",
                                        "server", "request_id",
                                        static_cast<i64>(id));
        send(conn, *out);
      } else {
        DecompressRequest dreq;
        {
          const obs::SpanGuard decode_span(options_.tracer, "server.decode",
                                           "server", "request_id",
                                           static_cast<i64>(id));
          dreq = decode_decompress_request(*req.payload);
        }
        deadline_ns = deadline_ns_for(dreq.deadline_ms, req.arrival_ns);
        if (deadline_ns != 0 && now_ns() >= deadline_ns) {
          m_.deadline_expired.add(1);
          send_error(conn, op, Status::kDeadlineExpired, id,
                     "request deadline expired before execution started",
                     meta);
          finish("DEADLINE_EXPIRED");
          return;
        }
        const engine::ParallelEngine eng(engine_options(deadline_ns));
        engine::DecompressResult result;
        {
          const obs::SpanGuard engine_span(options_.tracer, "server.engine",
                                           "server", "request_id",
                                           static_cast<i64>(id));
          result = eng.decompress(dreq.stream);
        }
        if (deadline_ns != 0 && now_ns() >= deadline_ns) {
          m_.deadline_expired.add(1);
          send_error(conn, op, Status::kDeadlineExpired, id,
                     "request deadline expired during decompression", meta);
          finish("DEADLINE_EXPIRED");
          return;
        }
        PooledBuffer out = pool_.acquire();
        {
          const obs::SpanGuard encode_span(options_.tracer, "server.encode",
                                           "server", "request_id",
                                           static_cast<i64>(id));
          std::vector<u8> body;
          append_decompress_response(body, result.values);
          append_frame(*out, op, Status::kOk, id, body, meta);
        }
        const obs::SpanGuard write_span(options_.tracer, "server.write",
                                        "server", "request_id",
                                        static_cast<i64>(id));
        send(conn, *out);
      }
    } catch (const Error& e) {
      // Map the failure the way the CLI maps exit codes: a passed
      // deadline wins (the engine's timeouts are a symptom of it), an
      // undecodable payload is the client's frame, a bad DECOMPRESS
      // stream is corrupt data, anything else is on the server.
      Status status;
      if (deadline_ns != 0 && now_ns() >= deadline_ns) {
        m_.deadline_expired.add(1);
        status = Status::kDeadlineExpired;
      } else if (std::string_view(e.what()).find("net:") !=
                 std::string_view::npos) {
        m_.malformed.add(1);
        status = Status::kMalformed;
      } else if (op == Opcode::kDecompress) {
        status = Status::kCorruptStream;
      } else {
        status = Status::kInternal;
      }
      if (options_.logger != nullptr) {
        options_.logger->warn("server.request_failed",
                              {{"request_id", id},
                               {"tenant_id", tag.tenant_id},
                               {"status", status_name(status)},
                               {"error", e.what()}});
      }
      send_error(conn, op, status, id, e.what(), meta);
      finish(status_name(status));
      return;
    } catch (const std::exception& e) {
      if (options_.logger != nullptr) {
        options_.logger->error("server.request_failed",
                               {{"request_id", id},
                                {"tenant_id", tag.tenant_id},
                                {"status", "INTERNAL"},
                                {"error", e.what()}});
      }
      send_error(conn, op, Status::kInternal, id, e.what(), meta);
      finish("INTERNAL");
      return;
    }
    finish("OK");
  }

  // --- lifecycle ------------------------------------------------------------

  void accept_loop() {
    for (;;) {
      Socket sock = listener_->accept_connection();
      if (!sock.valid() || stopping_.load(std::memory_order_acquire)) break;
      sock.set_nodelay();
      // Every read and write on this connection runs under the per-call
      // deadline; a peer that stalls mid-frame (or never drains our
      // response) is dropped without affecting its neighbors.
      sock.set_io_timeout(options_.io_timeout_ms);
      auto conn = std::make_shared<Connection>();
      conn->sock = std::move(sock);
      m_.connections.add(1);
      m_.active_connections.add(1.0);
      std::lock_guard lock(conn_mu_);
      reap_finished_locked();
      ReaderSlot slot;
      slot.conn = conn;
      slot.thread = std::thread([this, conn] { reader_loop(conn); });
      readers_.push_back(std::move(slot));
    }
  }

  /// Join reader threads whose connection has closed, so a long-running
  /// server does not accumulate one dead thread per past connection.
  /// Called with conn_mu_ held.
  void reap_finished_locked() {
    auto it = readers_.begin();
    while (it != readers_.end()) {
      if (!it->conn->open.load(std::memory_order_acquire)) {
        it->thread.join();
        it = readers_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void start() {
    listener_ = std::make_unique<TcpListener>(options_.port);
    for (u32 w = 0; w < std::max(1u, options_.workers); ++w) {
      workers_.emplace_back([this] { worker_loop(); });
    }
    accept_thread_ = std::thread([this] { accept_loop(); });
    if (options_.logger != nullptr) {
      options_.logger->info("server.started",
                            {{"port", listener_->port()},
                             {"workers", options_.workers},
                             {"max_inflight", max_inflight_}});
    }
  }

  void drain() {
    if (draining_.exchange(true, std::memory_order_acq_rel)) return;
    m_.draining.set(1.0);
    if (options_.logger != nullptr) {
      options_.logger->info(
          "server.draining",
          {{"inflight", inflight_.load(std::memory_order_acquire)}});
    }
    // Stop accepting: the accept loop exits on the invalid socket; the
    // listener itself is closed later by stop(). Existing readers keep
    // running so in-flight work can answer and PING can say DRAINING.
    if (listener_) listener_->shutdown();
  }

  bool wait_idle(u32 timeout_ms) {
    const u64 deadline =
        timeout_ms == 0 ? 0
                        : now_ns() + static_cast<u64>(timeout_ms) * 1'000'000;
    while (inflight_.load(std::memory_order_acquire) != 0) {
      if (deadline != 0 && now_ns() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
  }

  void stop() {
    stopping_.store(true, std::memory_order_release);
    if (listener_) listener_->shutdown();
    if (accept_thread_.joinable()) accept_thread_.join();
    {
      std::lock_guard lock(conn_mu_);
      for (ReaderSlot& slot : readers_) {
        slot.conn->open.store(false, std::memory_order_release);
        slot.conn->sock.shutdown_both();
      }
      for (ReaderSlot& slot : readers_) {
        if (slot.thread.joinable()) slot.thread.join();
      }
      readers_.clear();
    }
    queue_.close();  // workers drain what is queued, then exit
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
    workers_.clear();
    if (listener_) listener_->close();
    if (options_.logger != nullptr) {
      options_.logger->info("server.stopped", {});
    }
  }
};

ServiceServer::ServiceServer(ServerOptions options)
    : options_(std::move(options)) {
  CERESZ_CHECK(options_.workers > 0, "ServiceServer: need at least 1 worker");
  CERESZ_CHECK(options_.max_frame_payload > 0 &&
                   options_.max_frame_payload <= kDefaultMaxPayload,
               "ServiceServer: max_frame_payload must be in (0, 1 GiB]");
  declare_server_metrics(registry_);
  engine::declare_engine_metrics(registry_);
}

ServiceServer::~ServiceServer() { stop(); }

u64 ServiceServer::resolved_max_inflight() const {
  return options_.max_inflight != 0 ? options_.max_inflight
                                    : u64{2} * options_.workers;
}

void ServiceServer::start() {
  CERESZ_CHECK(!running_.load(std::memory_order_acquire),
               "ServiceServer: already running");
  impl_ = std::make_unique<Impl>(*this, resolved_max_inflight());
  impl_->start();
  running_.store(true, std::memory_order_release);
}

void ServiceServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  impl_->stop();
  impl_.reset();
}

void ServiceServer::drain() {
  if (running_.load(std::memory_order_acquire) && impl_ != nullptr) {
    impl_->drain();
  }
}

bool ServiceServer::draining() const {
  return running_.load(std::memory_order_acquire) && impl_ != nullptr &&
         impl_->draining_.load(std::memory_order_acquire);
}

u64 ServiceServer::inflight() const {
  return impl_ != nullptr
             ? impl_->inflight_.load(std::memory_order_acquire)
             : 0;
}

bool ServiceServer::wait_idle(u32 timeout_ms) {
  return impl_ == nullptr || impl_->wait_idle(timeout_ms);
}

tenant::WaferCoordinator* ServiceServer::coordinator() {
  return impl_ != nullptr ? impl_->coordinator_.get() : nullptr;
}

u16 ServiceServer::port() const {
  CERESZ_CHECK(impl_ != nullptr && impl_->listener_ != nullptr,
               "ServiceServer: not started");
  return impl_->listener_->port();
}

}  // namespace ceresz::net
