// Thin RAII layer over POSIX TCP sockets for the compression service.
//
// Three pieces: Socket (an owned connected fd with read_exact/write_all
// helpers that retry short transfers and EINTR), TcpListener (bind +
// listen + accept, with shutdown() to wake a thread blocked in accept),
// and connect_to() for clients. Everything throws ceresz::Error on OS
// failures; nothing here knows about frames — that is net/protocol.h.
//
// Timeouts: set_io_timeout() arms a per-call deadline on every
// read_exact/write_all (enforced with poll(), so the fd stays blocking
// for everyone else); an expired deadline throws NetTimeout, a subclass
// of Error that retry layers can catch typed. wait_readable() is the
// idle-side primitive: "is there a next frame within T ms?" without
// committing to a read. connect_to() takes an optional connect timeout
// (non-blocking connect + poll) so a black-holed address cannot wedge a
// client forever.
//
// Scope: loopback/LAN transport for the service layer. TLS and IPv6 are
// out of scope for the repro; the framing above this layer is
// transport-agnostic, so swapping in a richer transport later touches
// only this file.
#pragma once

#include <span>
#include <string>

#include "common/error.h"
#include "common/types.h"

namespace ceresz::net {

/// An I/O deadline expired (read, write, or connect). Subclass of Error
/// so existing catch sites keep working; retry layers catch it typed to
/// count timeouts separately from resets.
class NetTimeout : public Error {
 public:
  explicit NetTimeout(const std::string& what) : Error(what) {}
};

/// An owned socket file descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept
      : fd_(other.fd_), io_timeout_ms_(other.io_timeout_ms_) {
    other.fd_ = -1;
  }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void close() noexcept;

  /// Half-close both directions without releasing the fd: wakes any
  /// thread blocked in read()/write()/poll() on this socket (they see
  /// EOF / EPIPE). Safe to call from another thread; close() is not,
  /// because the fd number could be reused mid-read.
  void shutdown_both() noexcept;

  /// Half-close the send direction only: the peer sees EOF after the
  /// bytes in flight, reads still work. How a proxy propagates one
  /// side's clean close to the other.
  void shutdown_write() noexcept;

  /// Abortive close: SO_LINGER(0) + close, so the peer sees an RST
  /// (ECONNRESET) instead of a clean FIN. The chaos layer's "connection
  /// reset" fault; also the right way to drop a peer judged hostile.
  void reset_hard() noexcept;

  /// Disable Nagle's algorithm — request/response frames should not wait
  /// for a coalescing timer. Best-effort (ignored on failure).
  void set_nodelay() noexcept;

  /// Arm a deadline, in milliseconds, applied to each subsequent
  /// read_exact/read_exact_or_eof/write_all call as a whole (the clock
  /// starts when the call starts, so a peer dribbling one byte per
  /// second cannot stretch a 4 KiB read forever). 0 = block
  /// indefinitely (the default). Not thread-safe against concurrent
  /// I/O; set it right after connect/accept.
  void set_io_timeout(u32 ms) { io_timeout_ms_ = ms; }
  u32 io_timeout_ms() const { return io_timeout_ms_; }

  /// Block until the socket is readable (data, EOF, or error — anything
  /// a read would not block on), up to `timeout_ms` (0 = forever).
  /// Returns false on timeout. The idle-connection probe: it commits to
  /// nothing, so a false return can reap the connection without having
  /// consumed bytes.
  bool wait_readable(u32 timeout_ms) const;

  /// Write all of `bytes`, retrying short writes and EINTR. Throws
  /// ceresz::Error when the peer is gone or the fd is invalid, and
  /// NetTimeout when an armed I/O deadline expires first.
  void write_all(std::span<const u8> bytes) const;

  /// Read exactly out.size() bytes. Throws ceresz::Error on EOF or
  /// error, NetTimeout on an expired I/O deadline.
  void read_exact(std::span<u8> out) const;

  /// Like read_exact, but a clean EOF *before the first byte* returns
  /// false instead of throwing (how a peer politely ends a connection
  /// between frames). EOF mid-buffer still throws: a truncated frame.
  bool read_exact_or_eof(std::span<u8> out) const;

  /// One recv(): up to out.size() bytes, whatever is available. Returns
  /// 0 on EOF, throws on error. The relay primitive — it must see bytes
  /// as they arrive, not wait for a full buffer.
  std::size_t read_some(std::span<u8> out) const;

 private:
  int fd_ = -1;
  u32 io_timeout_ms_ = 0;
};

/// Listening TCP socket bound to 127.0.0.1 (the service is fronted by a
/// local proxy in any real deployment; binding loopback keeps the repro
/// from opening a public port). Port 0 binds an ephemeral port — read
/// the real one back with port().
class TcpListener {
 public:
  /// Binds and listens immediately; throws ceresz::Error on failure.
  explicit TcpListener(u16 port, int backlog = 64);
  ~TcpListener() { close(); }

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The bound port (resolved for ephemeral binds).
  u16 port() const { return port_; }

  bool valid() const { return fd_ >= 0; }

  /// Block until a client connects. Returns an invalid Socket (instead
  /// of throwing) once shutdown() has been called — the accept loop's
  /// clean exit signal.
  Socket accept_connection();

  /// Wake a thread blocked in accept_connection(); it returns an
  /// invalid Socket. Callable from any thread.
  void shutdown() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
  u16 port_ = 0;
};

/// Connect to `host:port` (numeric IPv4 or a resolvable name). With
/// `connect_timeout_ms` > 0 the TCP handshake itself is bounded
/// (non-blocking connect + poll): a black-holed address throws
/// NetTimeout instead of blocking for the kernel's SYN-retry eternity.
/// Throws ceresz::Error when the connection cannot be established.
Socket connect_to(const std::string& host, u16 port,
                  u32 connect_timeout_ms = 0);

}  // namespace ceresz::net
