// Thin RAII layer over POSIX TCP sockets for the compression service.
//
// Three pieces: Socket (an owned connected fd with read_exact/write_all
// helpers that retry short transfers and EINTR), TcpListener (bind +
// listen + accept, with shutdown() to wake a thread blocked in accept),
// and connect_to() for clients. Everything throws ceresz::Error on OS
// failures; nothing here knows about frames — that is net/protocol.h.
//
// Scope: loopback/LAN transport for the service layer. TLS, IPv6, and
// non-blocking I/O are out of scope for the repro; the framing above
// this layer is transport-agnostic, so swapping in a richer transport
// later touches only this file.
#pragma once

#include <span>
#include <string>

#include "common/types.h"

namespace ceresz::net {

/// An owned socket file descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void close() noexcept;

  /// Half-close both directions without releasing the fd: wakes any
  /// thread blocked in read()/write() on this socket (they see EOF /
  /// EPIPE). Safe to call from another thread; close() is not, because
  /// the fd number could be reused mid-read.
  void shutdown_both() noexcept;

  /// Disable Nagle's algorithm — request/response frames should not wait
  /// for a coalescing timer. Best-effort (ignored on failure).
  void set_nodelay() noexcept;

  /// Write all of `bytes`, retrying short writes and EINTR. Throws
  /// ceresz::Error when the peer is gone or the fd is invalid.
  void write_all(std::span<const u8> bytes) const;

  /// Read exactly out.size() bytes. Throws ceresz::Error on EOF or error.
  void read_exact(std::span<u8> out) const;

  /// Like read_exact, but a clean EOF *before the first byte* returns
  /// false instead of throwing (how a peer politely ends a connection
  /// between frames). EOF mid-buffer still throws: a truncated frame.
  bool read_exact_or_eof(std::span<u8> out) const;

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to 127.0.0.1 (the service is fronted by a
/// local proxy in any real deployment; binding loopback keeps the repro
/// from opening a public port). Port 0 binds an ephemeral port — read
/// the real one back with port().
class TcpListener {
 public:
  /// Binds and listens immediately; throws ceresz::Error on failure.
  explicit TcpListener(u16 port, int backlog = 64);
  ~TcpListener() { close(); }

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The bound port (resolved for ephemeral binds).
  u16 port() const { return port_; }

  bool valid() const { return fd_ >= 0; }

  /// Block until a client connects. Returns an invalid Socket (instead
  /// of throwing) once shutdown() has been called — the accept loop's
  /// clean exit signal.
  Socket accept_connection();

  /// Wake a thread blocked in accept_connection(); it returns an
  /// invalid Socket. Callable from any thread.
  void shutdown() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
  u16 port_ = 0;
};

/// Connect to `host:port` (numeric IPv4 or a resolvable name). Throws
/// ceresz::Error when the connection cannot be established.
Socket connect_to(const std::string& host, u16 port);

}  // namespace ceresz::net
