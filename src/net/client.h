// CereszClient: blocking request/response client for the ceresz_server
// CSNP protocol (net/protocol.h). One client drives one connection;
// it is NOT thread-safe — give each client thread its own instance
// (connections are cheap; the load generator opens one per worker).
//
// Resilience: a RetryPolicy makes the client survive a flaky network.
// Each logical request keeps ONE request id across every attempt (so a
// retried request that already executed shows up server-side as a
// duplicate of the same id — observable, never silent), reconnects on
// transport failure, and backs off with capped exponential delays and
// full jitter. Retries draw from a client-lifetime retry *budget*, so
// a dying server cannot convert a fleet of clients into a retry storm.
// The default policy (max_attempts = 1) is the old fail-fast client.
//
// Error surface, and what the retry loop does with each:
//   retryable — transport ceresz::Error (connection refused, reset,
//     EOF, truncated or garbled frame; reconnects first), NetTimeout
//     (stalled peer or black hole; reconnects), ServiceError kBusy
//     (server shed load; the connection is still good) and kDraining
//     (server is going away; reconnects).
//   terminal — CorruptResponse (the response payload failed its frame
//     CRC: re-requesting cannot be trusted to mask a corrupting path,
//     the caller must know) and every other ServiceError status
//     (BAD_REQUEST, MALFORMED, CORRUPT_STREAM, DEADLINE_EXPIRED,
//     INTERNAL — the request itself is the problem).
// When attempts, budget, or the overall deadline run out, the LAST
// failure is rethrown unchanged.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/config.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace ceresz::net {

/// An error frame returned by the server, as an exception.
class ServiceError : public Error {
 public:
  ServiceError(Status status, const std::string& message)
      : Error(std::string(status_name(status)) + ": " + message),
        status_(status) {}

  Status status() const { return status_; }

 private:
  Status status_;
};

/// A response payload that failed its frame CRC. Terminal: the bytes on
/// this path cannot be trusted, so the client refuses to guess and the
/// caller decides (new connection, different server, alarm).
class CorruptResponse : public Error {
 public:
  explicit CorruptResponse(const std::string& what) : Error(what) {}
};

/// How hard the client fights for each logical request. The defaults
/// are the legacy fail-fast client: one attempt, no timeouts.
struct RetryPolicy {
  /// Attempts per logical request (1 = never retry).
  u32 max_attempts = 1;
  /// First backoff; attempt k waits uniform(0, min(cap, base << (k-1)))
  /// — capped exponential with full jitter, so a thundering herd of
  /// retrying clients decorrelates.
  u64 backoff_us = 2'000;
  u64 backoff_cap_us = 100'000;
  /// Client-LIFETIME retry budget, spent one per retry (not per
  /// request). When it runs out the client fails fast until recreated;
  /// this is the storm brake.
  u64 retry_budget = 64;
  /// Bound on each TCP connect (0 = the kernel's eternity). See
  /// connect_to().
  u32 connect_timeout_ms = 0;
  /// Armed as the socket's per-I/O-call deadline for every attempt
  /// (0 = block forever). An attempt does at most three timed calls
  /// (write, header read, payload read), so a wedged attempt is over
  /// within ~3x this bound.
  u32 attempt_timeout_ms = 0;
  /// Wall-clock bound over ALL attempts of one logical request,
  /// including the backoff sleeps (0 = unbounded).
  u32 overall_deadline_ms = 0;
  /// Seed for the jitter stream — deterministic backoff in tests.
  u64 jitter_seed = 0x5eed;
};

/// What the retry machinery did, over the client's lifetime. Plain
/// values (the client is single-threaded); mirrored into the optional
/// MetricsRegistry as the ceresz_client_* counters.
struct ClientStats {
  u64 requests = 0;          ///< logical requests started
  u64 attempts = 0;          ///< wire attempts (>= requests)
  u64 retries = 0;           ///< budget spent
  u64 reconnects = 0;        ///< connections re-established after the first
  u64 timeouts = 0;          ///< attempts ended by NetTimeout
  u64 busy = 0;              ///< BUSY shed responses seen
  u64 draining = 0;          ///< DRAINING rejections seen
  u64 corrupt_responses = 0; ///< response frames that failed their CRC
  u64 budget_exhausted = 0;  ///< requests abandoned with budget at zero
};

// Client-side metric names (docs/observability.md naming convention).
inline constexpr const char* kClientMetricRequests =
    "ceresz_client_requests_total";
inline constexpr const char* kClientMetricAttempts =
    "ceresz_client_attempts_total";
inline constexpr const char* kClientMetricRetries =
    "ceresz_client_retries_total";
inline constexpr const char* kClientMetricReconnects =
    "ceresz_client_reconnects_total";
inline constexpr const char* kClientMetricTimeouts =
    "ceresz_client_timeouts_total";
inline constexpr const char* kClientMetricBusy =
    "ceresz_client_busy_total";
inline constexpr const char* kClientMetricDraining =
    "ceresz_client_draining_total";
inline constexpr const char* kClientMetricCorruptResponses =
    "ceresz_client_corrupt_responses_total";
inline constexpr const char* kClientMetricBudgetExhausted =
    "ceresz_client_budget_exhausted_total";

/// Materialize every ceresz_client_* metric at zero, so dashboards and
/// snapshots see the full family before the first fault (the same
/// declare-at-zero pattern as declare_server_metrics).
void declare_client_metrics(obs::MetricsRegistry& reg);

class CereszClient {
 public:
  /// Legacy fail-fast client: one attempt, no timeouts, no metrics.
  CereszClient() : CereszClient(RetryPolicy{}) {}

  /// A client with retry behavior. When `reg` is non-null (and must
  /// then outlive the client), the ceresz_client_* counters are bumped
  /// alongside ClientStats — registries are thread-safe, so concurrent
  /// clients can share one. A non-null `tracer` (same lifetime rule;
  /// per-thread rings, so concurrent clients can share one) records a
  /// span tree per logical request: a "client.request" root, one
  /// "client.attempt" span per wire attempt with nested connect/write/
  /// wait/read spans, and "client.backoff" spans between attempts.
  explicit CereszClient(RetryPolicy policy,
                        obs::MetricsRegistry* reg = nullptr,
                        obs::Tracer* tracer = nullptr);

  /// Record the server endpoint. A fail-fast policy (max_attempts <=
  /// 1) dials eagerly and throws ceresz::Error / NetTimeout here on
  /// failure; a retrying policy defers establishment to the first
  /// request, where connect-time faults are retried like any other
  /// transport failure. The host:port is remembered for automatic
  /// reconnects either way.
  void connect(const std::string& host, u16 port);

  bool connected() const { return sock_.valid(); }

  void close() { sock_.close(); }

  /// Stamp every subsequent request with a tenant id and scheduling
  /// priority (the CSNP v3 tenant fields). Tenant 0 — the default — is
  /// the untenanted legacy path; a tenancy-enabled server routes nonzero
  /// ids through its WaferCoordinator, which may shed a tenant whose
  /// quota cannot be met with a BUSY error frame (surfaced here as a
  /// retryable ServiceError, exactly like in-flight-limit shedding).
  void set_tenant(u32 tenant_id, u8 priority = kPriorityStandard) {
    tag_ = TenantTag{tenant_id, priority};
  }

  const TenantTag& tenant() const { return tag_; }

  /// Wire protocol version to emit: kProtocolVersion (default) or
  /// kProtocolVersionV3 for compatibility testing against newer
  /// servers. v3 frames cannot carry the trace context — the server
  /// synthesizes a trace id for them.
  void set_protocol_version(u8 version);

  u8 protocol_version() const { return wire_version_; }

  /// Tracer for client-side request/attempt spans; null disables
  /// recording (trace ids are still generated and sent on the wire, so
  /// server-side attribution works regardless).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// The trace id stamped on the most recent logical request (0 before
  /// the first). The stitcher's join key, exposed for tests.
  u64 last_trace_id() const { return last_trace_id_; }

  /// Round-trip a PING; returns the wall-clock round-trip in seconds.
  /// Also refreshes server_state().
  f64 ping();

  /// What the last PING said the server was doing: "SERVING",
  /// "DRAINING", or "" before the first ping. (v1 servers answer PING
  /// with an empty payload; that reads as "SERVING".)
  const std::string& server_state() const { return server_state_; }

  /// Compress `data` under `bound` on the server; returns the chunked
  /// "CSZC" container, byte-identical to a local
  /// ParallelEngine::compress with the server's engine configuration.
  /// `deadline_ms` = 0 uses the server's default deadline (if any).
  std::vector<u8> compress(std::span<const f32> data,
                           core::ErrorBound bound, u32 deadline_ms = 0);

  /// Decompress a chunked container on the server.
  std::vector<f32> decompress(std::span<const u8> stream,
                              u32 deadline_ms = 0);

  /// The server's metrics snapshot as JSON (ceresz_server_* and
  /// ceresz_engine_* families).
  std::string stats_json();

  const RetryPolicy& policy() const { return policy_; }
  const ClientStats& stats() const { return stats_; }

 private:
  /// Run one logical request through the retry loop: reconnect when
  /// disconnected, attempt, classify failures, back off, repeat.
  std::vector<u8> roundtrip(Opcode op, std::span<const u8> payload);

  /// One wire attempt: send the frame, read the response, verify the
  /// payload CRC, unwrap error frames into ServiceError. `trace` is the
  /// attempt's wire trace context (parent_span_id = this attempt's span
  /// id, so the server's span tree joins to exactly this attempt).
  std::vector<u8> attempt_once(Opcode op, u64 id,
                               std::span<const u8> payload,
                               TraceTag trace);

  /// (Re-)establish the connection per the policy's timeouts.
  void establish_connection();

  /// Full-jitter backoff before retry number `retry_index` (1-based),
  /// clipped so it cannot sleep past `overall_deadline_ns` (0 = none).
  void backoff_sleep(u32 retry_index, u64 overall_deadline_ns);

  RetryPolicy policy_;
  obs::MetricsRegistry* reg_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  ClientStats stats_;
  Rng jitter_;

  Socket sock_;
  TenantTag tag_;  ///< stamped into every request frame
  u8 wire_version_ = kProtocolVersion;
  std::string host_;
  u16 port_ = 0;
  bool ever_connected_ = false;
  std::string server_state_;
  std::vector<u8> frame_;  ///< reused send buffer
  u64 next_request_id_ = 1;
  u64 last_trace_id_ = 0;
};

}  // namespace ceresz::net
