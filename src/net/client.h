// CereszClient: blocking request/response client for the ceresz_server
// CSNP protocol (net/protocol.h). One client drives one connection;
// it is NOT thread-safe — give each client thread its own instance
// (connections are cheap; the load generator opens one per worker).
//
// Error surface: transport failures (connect refused, peer vanished,
// garbled response) throw plain ceresz::Error; an error FRAME from the
// server throws ServiceError carrying the protocol Status, so callers
// can tell BUSY (back off and retry) from DEADLINE_EXPIRED (give up or
// re-budget) from CORRUPT_STREAM (the data is bad) without string
// matching.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/config.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace ceresz::net {

/// An error frame returned by the server, as an exception.
class ServiceError : public Error {
 public:
  ServiceError(Status status, const std::string& message)
      : Error(std::string(status_name(status)) + ": " + message),
        status_(status) {}

  Status status() const { return status_; }

 private:
  Status status_;
};

class CereszClient {
 public:
  CereszClient() = default;

  /// Connect to a ceresz_server. Throws ceresz::Error on failure.
  void connect(const std::string& host, u16 port);

  bool connected() const { return sock_.valid(); }

  void close() { sock_.close(); }

  /// Round-trip a PING; returns the wall-clock round-trip in seconds.
  f64 ping();

  /// Compress `data` under `bound` on the server; returns the chunked
  /// "CSZC" container, byte-identical to a local
  /// ParallelEngine::compress with the server's engine configuration.
  /// `deadline_ms` = 0 uses the server's default deadline (if any).
  std::vector<u8> compress(std::span<const f32> data,
                           core::ErrorBound bound, u32 deadline_ms = 0);

  /// Decompress a chunked container on the server.
  std::vector<f32> decompress(std::span<const u8> stream,
                              u32 deadline_ms = 0);

  /// The server's metrics snapshot as JSON (ceresz_server_* and
  /// ceresz_engine_* families).
  std::string stats_json();

 private:
  /// Send one frame, receive its response, unwrap error frames into
  /// ServiceError. Returns the response payload.
  std::vector<u8> roundtrip(Opcode op, std::span<const u8> payload);

  Socket sock_;
  std::vector<u8> frame_;  ///< reused send buffer
  u64 next_request_id_ = 1;
};

}  // namespace ceresz::net
