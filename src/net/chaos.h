// Deterministic network fault injection for the compression service —
// the wse::FaultPlan philosophy (docs/robustness.md) applied to TCP.
//
// NetFaultPlan is a fixed schedule of connection-level faults, keyed by
// the order in which connections arrive at the proxy: connection i gets
// exactly one ConnFault (possibly kNone). Plans are built explicitly
// (reset_on_accept, truncate, corrupt_byte, ...) or drawn procedurally
// from a seeded spec (NetFaultPlan::random), in which case the fault
// for ANY connection index is a pure function of (seed, index) — the
// same seed always yields the same storm, however many connections a
// retrying client ends up opening. That determinism is what lets
// test_chaos assert byte-identical recovered output and exact typed
// errors.
//
// ChaosProxy is the in-process injector: a loopback TCP proxy that sits
// between CereszClient and ServiceServer, relaying bytes both ways and
// applying the plan's fault for each accepted connection:
//
//   kResetOnAccept  accept, then RST immediately (connection refused-ish)
//   kBlackhole      accept, swallow everything, answer nothing
//   kDelay          hold the first byte in each direction for delay_ms
//   kShortWrite     dribble: forward in slice_bytes pieces with a pause
//   kTruncate       forward trigger_offset bytes in one direction, then
//                   hang up both sides (mid-frame truncation)
//   kCorrupt        flip one bit of one byte at trigger_offset in one
//                   direction (in-flight corruption the frame CRC must
//                   catch)
//
// The proxy only *transports* faults; what they mean is the client's
// RetryPolicy's and the server's timeout machinery's problem — exactly
// the split between wse::FaultPlan and the Fabric.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "net/socket.h"

namespace ceresz::obs {
class Logger;
}  // namespace ceresz::obs

namespace ceresz::net {

/// Which relay direction a byte-positioned fault applies to.
enum class ChaosDir : u8 {
  kClientToServer = 0,  ///< request path
  kServerToClient = 1,  ///< response path
};

enum class ChaosFaultKind : u8 {
  kNone = 0,
  kResetOnAccept,
  kBlackhole,
  kDelay,
  kShortWrite,
  kTruncate,
  kCorrupt,
};

/// Stable lowercase name ("reset_on_accept", ...), for logs and tests.
const char* chaos_fault_name(ChaosFaultKind kind);

/// The one fault scheduled for a connection.
struct ConnFault {
  ChaosFaultKind kind = ChaosFaultKind::kNone;
  ChaosDir dir = ChaosDir::kServerToClient;
  u64 trigger_offset = 0;  ///< byte offset for kTruncate / kCorrupt
  u32 delay_ms = 0;        ///< kDelay first-byte hold; kShortWrite per-slice
  u32 slice_bytes = 0;     ///< kShortWrite forwarding granularity
  u8 bit = 0;              ///< kCorrupt: which bit of the byte to flip
};

/// Knobs for NetFaultPlan::random — per-connection fault probabilities
/// (evaluated in the order below; they should sum to <= 1) and the
/// parameter ranges faults draw from.
struct NetChaosSpec {
  f64 reset_frac = 0.0;
  f64 blackhole_frac = 0.0;
  f64 delay_frac = 0.0;
  f64 short_write_frac = 0.0;
  f64 truncate_frac = 0.0;
  f64 corrupt_frac = 0.0;
  u32 min_delay_ms = 2;
  u32 max_delay_ms = 20;
  u32 slice_bytes = 64;
  u32 slice_delay_ms = 1;
  /// Truncation/corruption offsets are drawn uniformly in
  /// [1, window) — early enough to hit headers and small frames.
  u64 truncate_window = 2048;
  u64 corrupt_window = 4096;
};

class NetFaultPlan {
 public:
  NetFaultPlan() = default;
  explicit NetFaultPlan(u64 seed) : seed_(seed) {}

  /// Procedural plan: connection i's fault is derived from Rng mixed
  /// over (seed, i), so any index is defined and the schedule is fully
  /// reproducible. Explicit entries set afterwards override.
  static NetFaultPlan random(u64 seed, const NetChaosSpec& spec);

  // ---- Plan construction (explicit schedules for targeted tests) ----
  void reset_on_accept(u64 conn);
  void blackhole(u64 conn);
  void delay(u64 conn, u32 ms);
  void short_write(u64 conn, ChaosDir dir, u32 slice_bytes,
                   u32 slice_delay_ms);
  void truncate(u64 conn, ChaosDir dir, u64 after_bytes);
  void corrupt_byte(u64 conn, ChaosDir dir, u64 byte_offset, u8 bit);

  /// The fault scheduled for the `conn`-th accepted connection.
  ConnFault fault_for(u64 conn) const;

  u64 seed() const { return seed_; }
  bool empty() const { return explicit_.empty() && !has_spec_; }

 private:
  u64 seed_ = 0;
  bool has_spec_ = false;
  NetChaosSpec spec_;
  std::map<u64, ConnFault> explicit_;
};

/// Counters the proxy bumps as it injects — chaos tests assert against
/// them, and bench_service_load --chaos reports them. All atomics;
/// readable while the proxy runs.
struct ChaosProxyStats {
  std::atomic<u64> connections{0};
  std::atomic<u64> upstream_failures{0};
  std::atomic<u64> resets{0};
  std::atomic<u64> blackholes{0};
  std::atomic<u64> delays{0};
  std::atomic<u64> short_write_slices{0};
  std::atomic<u64> truncations{0};
  std::atomic<u64> corruptions{0};
  std::atomic<u64> relayed_bytes{0};
};

class ChaosProxy {
 public:
  /// Proxy for `upstream_host:upstream_port`, applying `plan`. Listens
  /// on an ephemeral loopback port (read it back with port()).
  ChaosProxy(std::string upstream_host, u16 upstream_port,
             NetFaultPlan plan);

  /// Stops the proxy if it is still running.
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Bind, listen, launch the accept loop. Throws ceresz::Error when
  /// the ephemeral port cannot be bound.
  void start();

  /// Hang up every proxied connection and join all relay threads.
  /// Idempotent.
  void stop();

  /// The proxy's listening port (valid after start()).
  u16 port() const;

  /// Structured log for injected faults (one record per faulted
  /// connection, plus upstream failures) — the observable side channel
  /// chaos runs use instead of ad-hoc stderr prints. Null disables.
  /// Must outlive the proxy; set before start().
  void set_logger(obs::Logger* logger) { logger_ = logger; }

  const ChaosProxyStats& stats() const { return stats_; }

 private:
  struct Link;

  void accept_loop();
  void relay(std::shared_ptr<Link> link, ChaosDir dir);
  void blackhole_loop(std::shared_ptr<Link> link);
  void reap_finished_locked();

  const std::string upstream_host_;
  const u16 upstream_port_;
  const NetFaultPlan plan_;
  ChaosProxyStats stats_;
  obs::Logger* logger_ = nullptr;

  std::unique_ptr<TcpListener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  u64 next_conn_index_ = 0;  // accept thread only

  std::mutex links_mu_;
  std::vector<std::shared_ptr<Link>> links_;
};

}  // namespace ceresz::net
