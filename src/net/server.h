// ServiceServer: the long-running network front end of ParallelEngine.
//
// Architecture (docs/service.md has the full picture):
//
//   accept loop ──▶ one reader thread per connection
//                     │  parses CSNP frames (net/protocol.h), answers
//                     │  PING/STATS inline, and admits COMPRESS /
//                     │  DECOMPRESS work under a bounded in-flight
//                     │  limit — beyond it the request is rejected
//                     │  immediately with a BUSY error frame instead of
//                     │  queueing without bound (load shedding, not
//                     │  collapse).
//                     ▼
//            BoundedQueue<PendingRequest>   (capacity = max in-flight)
//                     ▼
//          N connection-worker threads ──▶ engine::ParallelEngine
//
// Request/response payload buffers come from a memec-style BufferPool,
// so steady-state traffic recycles its large buffers instead of
// allocating per frame.
//
// Deadlines: a request may carry deadline_ms (or inherit the server
// default). The clock starts at frame arrival; a request whose deadline
// passed while queued is answered DEADLINE_EXPIRED without touching the
// engine, and one that makes it to a worker runs with the engine's
// per-attempt watchdog clamped to the remaining budget — the watchdog
// cancels a slow or wedged chunk through its CancelToken, so one bad
// chunk can never wedge the connection (see engine/chunk_runner.h).
//
// Hostile-peer hardening: io_timeout_ms bounds every socket read and
// write per call (a slow-loris peer dribbling header bytes, or one that
// never drains its receive window, is timed out and dropped without
// touching other connections); idle_timeout_ms reaps connections that
// sit silent between frames; and every payload is checked against the
// frame CRC (v2 header) before decoding — a corrupted request draws a
// MALFORMED error frame on a still-usable connection, never a silent
// compress of garbage. drain() is the graceful-exit half: new work is
// refused with DRAINING frames while in-flight requests finish, which
// is what ceresz_server does on SIGTERM.
//
// Observability: every counter/gauge/histogram below lands in the
// server's MetricsRegistry (exported by the STATS opcode and the
// daemon's --metrics-out flag), alongside the ceresz_engine_* families
// the per-request engines accumulate into the same registry.
#pragma once

#include <memory>
#include <string>

#include "common/types.h"
#include "engine/parallel_engine.h"
#include "net/protocol.h"
#include "obs/metrics.h"

namespace ceresz::tenant {
class WaferCoordinator;
}  // namespace ceresz::tenant

namespace ceresz::obs {
class Logger;
class SpanLog;
class Tracer;
}  // namespace ceresz::obs

namespace ceresz::net {

// Canonical server metric names (Prometheus families; see
// docs/service.md for semantics).
inline constexpr const char* kMetricConnections =
    "ceresz_server_connections_total";
inline constexpr const char* kMetricActiveConnections =
    "ceresz_server_active_connections";
inline constexpr const char* kMetricRequests =
    "ceresz_server_requests_total";
inline constexpr const char* kMetricPingRequests =
    "ceresz_server_ping_total";
inline constexpr const char* kMetricStatsRequests =
    "ceresz_server_stats_total";
inline constexpr const char* kMetricCompressRequests =
    "ceresz_server_compress_total";
inline constexpr const char* kMetricDecompressRequests =
    "ceresz_server_decompress_total";
inline constexpr const char* kMetricBusyRejected =
    "ceresz_server_busy_rejected_total";
inline constexpr const char* kMetricDeadlineExpired =
    "ceresz_server_deadline_expired_total";
inline constexpr const char* kMetricMalformed =
    "ceresz_server_malformed_total";
inline constexpr const char* kMetricErrorResponses =
    "ceresz_server_error_responses_total";
inline constexpr const char* kMetricRequestBytes =
    "ceresz_server_request_bytes_total";
inline constexpr const char* kMetricResponseBytes =
    "ceresz_server_response_bytes_total";
inline constexpr const char* kMetricInflight = "ceresz_server_inflight";
inline constexpr const char* kMetricInflightHighWater =
    "ceresz_server_inflight_high_water";
inline constexpr const char* kMetricCompressSeconds =
    "ceresz_server_compress_seconds";
inline constexpr const char* kMetricDecompressSeconds =
    "ceresz_server_decompress_seconds";
inline constexpr const char* kMetricPoolHits =
    "ceresz_server_pool_hits_total";
inline constexpr const char* kMetricPoolMisses =
    "ceresz_server_pool_misses_total";
inline constexpr const char* kMetricIdleReaped =
    "ceresz_server_idle_reaped_total";
inline constexpr const char* kMetricIoTimeouts =
    "ceresz_server_io_timeouts_total";
inline constexpr const char* kMetricPayloadCrcRejected =
    "ceresz_server_payload_crc_rejected_total";
inline constexpr const char* kMetricDrainRejected =
    "ceresz_server_drain_rejected_total";
inline constexpr const char* kMetricDraining = "ceresz_server_draining";
inline constexpr const char* kMetricTenantShed =
    "ceresz_server_tenant_shed_total";

struct ServerOptions {
  /// Port to bind on 127.0.0.1; 0 binds an ephemeral port (read it back
  /// with ServiceServer::port() — how tests avoid collisions).
  u16 port = 0;

  /// Connection-worker threads executing COMPRESS/DECOMPRESS requests.
  /// Each runs the engine with EngineOptions::threads workers of its
  /// own, so total parallelism is workers x engine threads.
  u32 workers = 2;

  /// Bound on requests admitted but not yet answered (queued +
  /// executing). Beyond it new work is rejected with a BUSY error frame.
  /// 0 picks 2 * workers.
  u64 max_inflight = 0;

  /// Deadline applied to requests that do not carry their own
  /// deadline_ms. 0 = no default deadline.
  u32 default_deadline_ms = 0;

  /// Anti-bomb bound on a frame's declared payload size; frames
  /// declaring more are rejected as malformed before any allocation.
  u64 max_frame_payload = kDefaultMaxPayload;

  /// Retired I/O buffers kept for reuse (BufferPool free-list cap).
  std::size_t pool_buffers = 32;

  /// Per-I/O-call deadline on every connection socket (reads AND
  /// response writes), enforced with poll so one slow-loris peer —
  /// dribbling a header byte at a time, or never draining its receive
  /// window — times out and is dropped while every other connection
  /// keeps serving. 0 = no bound (the library default; ceresz_server
  /// defaults to 30 s).
  u32 io_timeout_ms = 0;

  /// How long a connection may sit idle BETWEEN frames before the
  /// reaper hangs it up. Distinct from io_timeout_ms: idle-between-
  /// frames is polite (a keep-alive client), so the default 0 allows it
  /// forever; set a bound when fd exhaustion matters more than
  /// keep-alive convenience.
  u32 idle_timeout_ms = 0;

  /// Engine configuration used for every request. `metrics` is
  /// overridden to point at the server's registry; `tracer` is
  /// overridden by the server-level `tracer` below when that is set.
  /// `faults` is kept — chaos tests inject engine faults to exercise
  /// the service's deadline/error paths.
  engine::EngineOptions engine;

  /// Distributed tracing (docs/observability.md). When set (and
  /// outliving the server), every COMPRESS/DECOMPRESS request records a
  /// span tree — queue-wait / decode / admission / engine-run / encode /
  /// write — tagged with the request id, tenant id, and the trace
  /// context from the v4 frame header (v3 and zero-trace requests get a
  /// synthesized server-side trace id). The per-request engine runs
  /// record into the same tracer, so chunk spans inherit the trace id.
  obs::Tracer* tracer = nullptr;

  /// Structured JSON-lines log for server lifecycle and error paths
  /// (replaces ad-hoc stderr prints). Null disables. Must outlive the
  /// server.
  obs::Logger* logger = nullptr;

  /// Recent-span ring fed with one record per completed request, served
  /// by the telemetry endpoint's /tracez. Null disables. Must outlive
  /// the server.
  obs::SpanLog* span_log = nullptr;

  /// Multi-tenant wafer coordination (docs/tenancy.md). When enabled,
  /// COMPRESS/DECOMPRESS frames carrying a nonzero tenant id (CSNP v3)
  /// are routed through a WaferCoordinator: the first frame from a new
  /// tenant admits it — a wafer lease sized by the Formula (2)-(4)
  /// prediction against `default_quota_gbps` scaled by the frame's
  /// priority — and a tenant the coordinator cannot place is shed with
  /// a BUSY error frame carrying the admission verdict. Tenant id 0
  /// (the default tag) always bypasses the coordinator, so legacy
  /// clients are unaffected. The ceresz_tenant_* families land in the
  /// server's registry next to ceresz_server_*.
  struct TenancyOptions {
    bool enabled = false;
    /// The coordinated wafer's geometry. Sized like the test meshes,
    /// not the full 750x994 wafer: leases must stay exactly simulable.
    u32 wafer_rows = 12;
    u32 wafer_cols = 8;
    u32 max_tenants = 8;
    /// Admission quota of a standard-priority tenant in GB/s;
    /// interactive tenants ask for 2x, batch for 0.5x. 0 = best effort
    /// (any free usable row admits).
    f64 default_quota_gbps = 0.0;
  };
  TenancyOptions tenancy;
};

class ServiceServer {
 public:
  explicit ServiceServer(ServerOptions options);

  /// Stops the server if it is still running.
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Bind, listen, and launch the accept loop and worker threads.
  /// Throws ceresz::Error when the port cannot be bound.
  void start();

  /// Graceful shutdown: stop accepting, wake and join every reader,
  /// drain the request queue, join the workers. Idempotent.
  void stop();

  /// Enter drain mode: stop accepting new connections, reject new
  /// COMPRESS/DECOMPRESS work with DRAINING error frames, keep
  /// answering PING (payload "DRAINING") and STATS, and let in-flight
  /// requests finish. Pair with wait_idle() then stop() — the daemon's
  /// SIGTERM path. Idempotent; a no-op when not running.
  void drain();

  /// True once drain() has been called (and the server is running).
  bool draining() const;

  /// Requests admitted but not yet answered (queued + executing).
  u64 inflight() const;

  /// Block until inflight() reaches 0 or `timeout_ms` passes (0 = wait
  /// forever). Returns true when idle was reached.
  bool wait_idle(u32 timeout_ms);

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (valid after start(); resolves ephemeral binds).
  u16 port() const;

  u64 resolved_max_inflight() const;

  /// The server's registry: ceresz_server_* plus the ceresz_engine_*
  /// families accumulated by per-request engine runs. Safe to snapshot
  /// concurrently with serving.
  obs::MetricsRegistry& metrics() { return registry_; }

  /// The wafer coordinator when tenancy is enabled and the server is
  /// running; nullptr otherwise. Thread-safe to use while serving
  /// (tests inject fault storms into live leases through it).
  tenant::WaferCoordinator* coordinator();

  const ServerOptions& options() const { return options_; }

 private:
  struct Impl;
  ServerOptions options_;
  obs::MetricsRegistry registry_;
  std::atomic<bool> running_{false};
  std::unique_ptr<Impl> impl_;
};

/// Pre-create every ceresz_server_* metric family at zero (mirrors
/// engine::declare_engine_metrics) so exports advertise the full family
/// set before the first request.
void declare_server_metrics(obs::MetricsRegistry& reg);

}  // namespace ceresz::net
