#include "net/client.h"

#include <array>

#include "common/timer.h"

namespace ceresz::net {

void CereszClient::connect(const std::string& host, u16 port) {
  sock_ = connect_to(host, port);
}

std::vector<u8> CereszClient::roundtrip(Opcode op,
                                        std::span<const u8> payload) {
  CERESZ_CHECK(sock_.valid(), "CereszClient: not connected");
  const u64 id = next_request_id_++;
  frame_.clear();
  append_frame(frame_, op, Status::kOk, id, payload);
  sock_.write_all(frame_);

  std::array<u8, kFrameHeaderBytes> hdr_bytes;
  sock_.read_exact(hdr_bytes);
  // The client accepts responses up to the protocol-wide bound — the
  // server's configured limit may be tighter, but a response cannot
  // exceed what the server was willing to build.
  const FrameHeader header = parse_frame_header(hdr_bytes, kDefaultMaxPayload);
  std::vector<u8> response(static_cast<std::size_t>(header.payload_bytes));
  sock_.read_exact(response);

  if (header.status != Status::kOk) {
    // Error frames carry a UTF-8 message; the connection stays usable.
    throw ServiceError(header.status,
                       std::string(response.begin(), response.end()));
  }
  CERESZ_CHECK(header.request_id == id,
               "CereszClient: response id does not match the request");
  CERESZ_CHECK(header.opcode == op,
               "CereszClient: response opcode does not match the request");
  return response;
}

f64 CereszClient::ping() {
  const u64 start = now_ns();
  (void)roundtrip(Opcode::kPing, {});
  return static_cast<f64>(now_ns() - start) * 1e-9;
}

std::vector<u8> CereszClient::compress(std::span<const f32> data,
                                       core::ErrorBound bound,
                                       u32 deadline_ms) {
  CompressRequest req;
  req.bound = bound;
  req.deadline_ms = deadline_ms;
  req.data = data;
  std::vector<u8> payload;
  payload.reserve(24 + data.size() * sizeof(f32));
  append_compress_request(payload, req);
  return roundtrip(Opcode::kCompress, payload);
}

std::vector<f32> CereszClient::decompress(std::span<const u8> stream,
                                          u32 deadline_ms) {
  DecompressRequest req;
  req.deadline_ms = deadline_ms;
  req.stream = stream;
  std::vector<u8> payload;
  payload.reserve(16 + stream.size());
  append_decompress_request(payload, req);
  const std::vector<u8> response = roundtrip(Opcode::kDecompress, payload);
  std::vector<f32> values;
  decode_decompress_response(response, values);
  return values;
}

std::string CereszClient::stats_json() {
  const std::vector<u8> response = roundtrip(Opcode::kStats, {});
  return std::string(response.begin(), response.end());
}

}  // namespace ceresz::net
