#include "net/client.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <thread>

#include "common/timer.h"

namespace ceresz::net {

namespace {

void bump(obs::MetricsRegistry* reg, const char* name) {
  if (reg != nullptr) reg->counter(name).add();
}

}  // namespace

void declare_client_metrics(obs::MetricsRegistry& reg) {
  reg.counter(kClientMetricRequests);
  reg.counter(kClientMetricAttempts);
  reg.counter(kClientMetricRetries);
  reg.counter(kClientMetricReconnects);
  reg.counter(kClientMetricTimeouts);
  reg.counter(kClientMetricBusy);
  reg.counter(kClientMetricDraining);
  reg.counter(kClientMetricCorruptResponses);
  reg.counter(kClientMetricBudgetExhausted);
}

CereszClient::CereszClient(RetryPolicy policy, obs::MetricsRegistry* reg,
                           obs::Tracer* tracer)
    : policy_(policy), reg_(reg), tracer_(tracer),
      jitter_(policy.jitter_seed) {
  if (reg_ != nullptr) declare_client_metrics(*reg_);
}

void CereszClient::set_protocol_version(u8 version) {
  CERESZ_CHECK(version == kProtocolVersion ||
                   version == kProtocolVersionV3,
               "CereszClient: unsupported protocol version");
  wire_version_ = version;
}

void CereszClient::connect(const std::string& host, u16 port) {
  host_ = host;
  port_ = port;
  // A fail-fast client (no retries) connects eagerly so the caller
  // gets the error here. A retrying client defers establishment to the
  // request loop: a connect-time fault (reset, unreachable peer) is
  // then retried exactly like any other transport failure, instead of
  // surfacing from connect() where no retry machinery exists.
  if (policy_.max_attempts <= 1) establish_connection();
}

void CereszClient::establish_connection() {
  CERESZ_CHECK(!host_.empty(),
               "CereszClient: connect() must be called before requests");
  // Count the reconnect before dialing: a re-establishment ATTEMPT is
  // the observable event, whether or not the peer answers.
  if (ever_connected_) {
    ++stats_.reconnects;
    bump(reg_, kClientMetricReconnects);
  }
  ever_connected_ = true;
  sock_ = connect_to(host_, port_, policy_.connect_timeout_ms);
  sock_.set_io_timeout(policy_.attempt_timeout_ms);
}

void CereszClient::backoff_sleep(u32 retry_index, u64 overall_deadline_ns) {
  // Full jitter: uniform(0, min(cap, base << (k-1))). Shift clamped so
  // huge attempt counts cannot overflow the exponent.
  const u32 shift = std::min(retry_index - 1, u32{20});
  u64 ceiling = policy_.backoff_us << shift;
  ceiling = std::min(ceiling, policy_.backoff_cap_us);
  u64 sleep_us = ceiling == 0 ? 0 : jitter_.next_below(ceiling + 1);
  if (overall_deadline_ns != 0) {
    const u64 now = now_ns();
    if (now >= overall_deadline_ns) return;
    sleep_us = std::min(sleep_us, (overall_deadline_ns - now) / 1'000);
  }
  if (sleep_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  }
}

std::vector<u8> CereszClient::attempt_once(Opcode op, u64 id,
                                           std::span<const u8> payload,
                                           TraceTag trace) {
  CERESZ_CHECK(sock_.valid(), "CereszClient: not connected");
  frame_.clear();
  append_frame(frame_, op, Status::kOk, id, payload,
               FrameMeta(tag_, trace, wire_version_));
  {
    obs::SpanGuard write_span(tracer_, "client.write", "client");
    sock_.write_all(frame_);
  }

  // The server echoes the request's wire version, but read defensively:
  // pull the 36-byte common prefix, then the v4 trace tail if the
  // version byte says so.
  std::array<u8, kFrameHeaderBytesV4> hdr_bytes;
  const std::span<u8> prefix(hdr_bytes.data(), kFrameHeaderBytes);
  {
    obs::SpanGuard wait_span(tracer_, "client.wait", "client");
    sock_.read_exact(prefix);
  }
  std::size_t hdr_len = frame_header_bytes(hdr_bytes[4]);
  if (hdr_len > kFrameHeaderBytes) {
    sock_.read_exact(
        std::span<u8>(hdr_bytes.data() + kFrameHeaderBytes,
                      hdr_len - kFrameHeaderBytes));
  }
  // The client accepts responses up to the protocol-wide bound — the
  // server's configured limit may be tighter, but a response cannot
  // exceed what the server was willing to build.
  const FrameHeader header = parse_frame_header(
      std::span<const u8>(hdr_bytes.data(), hdr_len), kDefaultMaxPayload);
  std::vector<u8> response(static_cast<std::size_t>(header.payload_bytes));
  {
    obs::SpanGuard read_span(tracer_, "client.read", "client");
    sock_.read_exact(response);
  }

  if (!payload_crc_ok(header, response)) {
    // The framing survived but the bytes did not: nothing else read
    // from this connection deserves trust, so hang it up before the
    // caller sees the typed verdict.
    sock_.close();
    throw CorruptResponse(
        "CereszClient: response payload failed its CRC check "
        "(in-flight corruption)");
  }
  if (header.status != Status::kOk) {
    // Error frames carry a UTF-8 message; the connection stays usable.
    throw ServiceError(header.status,
                       std::string(response.begin(), response.end()));
  }
  CERESZ_CHECK(header.request_id == id,
               "CereszClient: response id does not match the request");
  CERESZ_CHECK(header.opcode == op,
               "CereszClient: response opcode does not match the request");
  return response;
}

std::vector<u8> CereszClient::roundtrip(Opcode op,
                                        std::span<const u8> payload) {
  // ONE id for the logical request, reused by every attempt: a retry
  // of a request the server already executed is a visible duplicate
  // (same id, bumped server counters), never an invisible one.
  const u64 id = next_request_id_++;
  ++stats_.requests;
  bump(reg_, kClientMetricRequests);
  const u64 overall_deadline =
      policy_.overall_deadline_ms == 0
          ? 0
          : now_ns() + static_cast<u64>(policy_.overall_deadline_ms) *
                           1'000'000;

  // One trace per logical request, one child span per wire attempt.
  // Ids are generated even without a tracer: the wire context still
  // reaches the server, so server-side attribution works regardless.
  const u64 trace_id = obs::next_trace_id();
  const u64 request_span = obs::next_span_id();
  last_trace_id_ = trace_id;
  const u64 request_start = tracer_ ? tracer_->now_rel_ns() : 0;

  // Record the "client.request" root when the loop exits, success or
  // throw, covering every attempt and backoff underneath it.
  struct RequestSpan {
    obs::Tracer* t;
    obs::TraceEvent ev;
    ~RequestSpan() {
      if (t == nullptr) return;
      ev.dur_ns = t->now_rel_ns() - ev.ts_ns;
      t->record(ev);
    }
  } request_guard{tracer_, {}};
  if (tracer_ != nullptr) {
    request_guard.ev.name = "client.request";
    request_guard.ev.cat = "client";
    request_guard.ev.ts_ns = request_start;
    request_guard.ev.trace_id = trace_id;
    request_guard.ev.span_id = request_span;
    request_guard.ev.arg1_name = "request_id";
    request_guard.ev.arg1 = static_cast<i64>(id);
    request_guard.ev.arg2_name = "tenant_id";
    request_guard.ev.arg2 = static_cast<i64>(tag_.tenant_id);
  }

  std::exception_ptr last;
  for (u32 attempt = 1;; ++attempt) {
    // A fresh span id per attempt is the stitcher's join key: the wire
    // parent_span_id below makes the server's span tree for THIS
    // attempt a child of THIS attempt span, so a retried request shows
    // up as sibling attempt spans each with their own server tree.
    const u64 attempt_span = obs::next_span_id();
    const obs::TraceContextScope scope({trace_id, attempt_span});
    struct AttemptSpan {
      obs::Tracer* t;
      obs::TraceEvent ev;
      ~AttemptSpan() {
        if (t == nullptr) return;
        ev.dur_ns = t->now_rel_ns() - ev.ts_ns;
        t->record(ev);
      }
    } attempt_guard{tracer_, {}};
    if (tracer_ != nullptr) {
      attempt_guard.ev.name = "client.attempt";
      attempt_guard.ev.cat = "client";
      attempt_guard.ev.ts_ns = tracer_->now_rel_ns();
      attempt_guard.ev.trace_id = trace_id;
      attempt_guard.ev.span_id = attempt_span;
      attempt_guard.ev.parent_span_id = request_span;
      attempt_guard.ev.arg1_name = "request_id";
      attempt_guard.ev.arg1 = static_cast<i64>(id);
      attempt_guard.ev.arg2_name = "attempt";
      attempt_guard.ev.arg2 = static_cast<i64>(attempt);
    }
    try {
      // Establishment is part of the attempt: a connect that fails is
      // an attempt that failed, and is counted and retried as one.
      ++stats_.attempts;
      bump(reg_, kClientMetricAttempts);
      if (!sock_.valid()) {
        obs::SpanGuard connect_span(tracer_, "client.connect", "client");
        establish_connection();
      }
      return attempt_once(op, id, payload,
                          TraceTag{trace_id, attempt_span});
    } catch (const CorruptResponse&) {
      ++stats_.corrupt_responses;
      bump(reg_, kClientMetricCorruptResponses);
      throw;  // terminal: see the class comment
    } catch (const ServiceError& e) {
      if (e.status() == Status::kBusy) {
        ++stats_.busy;
        bump(reg_, kClientMetricBusy);
        // The connection is fine; the server shed us. Retry on it.
      } else if (e.status() == Status::kDraining) {
        ++stats_.draining;
        bump(reg_, kClientMetricDraining);
        sock_.close();  // this server is going away; reconnect fresh
      } else {
        throw;  // terminal: the request itself is the problem
      }
      last = std::current_exception();
    } catch (const NetTimeout&) {
      ++stats_.timeouts;
      bump(reg_, kClientMetricTimeouts);
      sock_.close();
      last = std::current_exception();
    } catch (const Error&) {
      // Transport failure: reset, EOF, truncated or garbled frame.
      sock_.close();
      last = std::current_exception();
    }

    if (attempt >= policy_.max_attempts) std::rethrow_exception(last);
    if (stats_.retries >= policy_.retry_budget) {
      ++stats_.budget_exhausted;
      bump(reg_, kClientMetricBudgetExhausted);
      std::rethrow_exception(last);
    }
    if (overall_deadline != 0 && now_ns() >= overall_deadline) {
      std::rethrow_exception(last);
    }
    ++stats_.retries;
    bump(reg_, kClientMetricRetries);
    {
      obs::SpanGuard backoff_span(tracer_, "client.backoff", "client",
                                  "attempt", static_cast<i64>(attempt));
      backoff_sleep(attempt, overall_deadline);
    }
  }
}

f64 CereszClient::ping() {
  const u64 start = now_ns();
  const std::vector<u8> payload = roundtrip(Opcode::kPing, {});
  server_state_ = payload.empty()
                      ? "SERVING"
                      : std::string(payload.begin(), payload.end());
  return static_cast<f64>(now_ns() - start) * 1e-9;
}

std::vector<u8> CereszClient::compress(std::span<const f32> data,
                                       core::ErrorBound bound,
                                       u32 deadline_ms) {
  CompressRequest req;
  req.bound = bound;
  req.deadline_ms = deadline_ms;
  req.data = data;
  std::vector<u8> payload;
  payload.reserve(24 + data.size() * sizeof(f32));
  append_compress_request(payload, req);
  return roundtrip(Opcode::kCompress, payload);
}

std::vector<f32> CereszClient::decompress(std::span<const u8> stream,
                                          u32 deadline_ms) {
  DecompressRequest req;
  req.deadline_ms = deadline_ms;
  req.stream = stream;
  std::vector<u8> payload;
  payload.reserve(16 + stream.size());
  append_decompress_request(payload, req);
  const std::vector<u8> response = roundtrip(Opcode::kDecompress, payload);
  std::vector<f32> values;
  decode_decompress_response(response, values);
  return values;
}

std::string CereszClient::stats_json() {
  const std::vector<u8> response = roundtrip(Opcode::kStats, {});
  return std::string(response.begin(), response.end());
}

}  // namespace ceresz::net
